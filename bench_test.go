package overton

import (
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/labelmodel"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/workload"
)

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (plus the Section 2.2 slice claim and the DESIGN.md
// ablations). Each runs its experiment once per iteration and prints the
// paper-formatted table, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Key scalar results are also attached as
// custom benchmark metrics. CI-scale options are used; EXPERIMENTS.md
// records the full-profile runs.

func benchOpts() experiments.Options { return experiments.Quick() }

// BenchmarkFigure3ErrorReduction regenerates the Figure 3 table: error
// reduction vs the previous production system at four resource levels.
func BenchmarkFigure3ErrorReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure3(os.Stdout, rows)
		var minF, maxF float64 = 1e9, 0
		for _, r := range rows {
			if r.Factor < minF {
				minF = r.Factor
			}
			if r.Factor > maxF {
				maxF = r.Factor
			}
		}
		b.ReportMetric(minF, "min-factor")
		b.ReportMetric(maxF, "max-factor")
	}
}

// BenchmarkFigure4aScaling regenerates Figure 4a: relative quality vs
// weak-supervision scale for the three task granularities.
func BenchmarkFigure4aScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure4a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure4a(os.Stdout, points)
		last := points[len(points)-1]
		b.ReportMetric(last.Relative["singleton"], "rel-singleton")
		b.ReportMetric(last.Relative["sequence"], "rel-sequence")
		b.ReportMetric(last.Relative["set"], "rel-set")
	}
}

// BenchmarkFigure4bPretraining regenerates Figure 4b: with-BERT vs
// without-BERT quality ratio per scale.
func BenchmarkFigure4bPretraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure4b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderFigure4b(os.Stdout, points)
		last := points[len(points)-1]
		b.ReportMetric(last.Ratio["singleton"], "ratio-singleton")
		b.ReportMetric(last.Ratio["set"], "ratio-set")
	}
}

// BenchmarkSliceImprovement regenerates the Section 2.2 slice study:
// production system vs Overton (plain and slice-aware) on the
// complex-disambiguation slice.
func BenchmarkSliceImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SliceExperiment(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderSlice(os.Stdout, res)
		b.ReportMetric(100*(res.HardWith-res.BaselineHard), "hard-gain-points")
		b.ReportMetric(100*(res.SliceWith-res.BaselineSlice), "slice-gain-points")
	}
}

// BenchmarkAblations regenerates the design-choice ablation table.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		experiments.RenderAblations(os.Stdout, rows)
	}
}

// BenchmarkBuildPipeline measures the full engineer loop: combine
// supervision, train the default model on a mid-sized product.
func BenchmarkBuildPipeline(b *testing.B) {
	app, err := Open([]byte(workload.SchemaJSON))
	if err != nil {
		b.Fatal(err)
	}
	tun := `{"embeddings": ["hash-24"], "encoders": ["CNN"], "hidden": [32],
	         "query_agg": ["mean"], "entity_agg": ["mean"],
	         "lr": [0.02], "epochs": [5], "dropout": [0], "batch_size": [32]}`
	if err := app.SetTuning([]byte(tun)); err != nil {
		b.Fatal(err)
	}
	ds := workload.StandardDataset(400, 1, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := app.Build(ds, BuildOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictLatency measures single-query inference latency on the
// deployable model (the SLA number production teams pin), at both serving
// precisions. The model uses the recurrent encoder at a production hidden
// size: that is the latency-critical configuration, and the one where
// serving precision touches the critical path (tiny feed-forward models
// are overhead-bound and serve the same at either width — see
// PERFORMANCE.md). The table-bytes metric records the folded
// encoder-table footprint each plane serves from — the f64/f32 ratio is
// the headline memory win of the reduced-precision path.
func BenchmarkPredictLatency(b *testing.B) {
	app, err := Open([]byte(workload.SchemaJSON))
	if err != nil {
		b.Fatal(err)
	}
	tun := `{"embeddings": ["hash-24"], "encoders": ["GRU"], "hidden": [64],
	         "query_agg": ["mean"], "entity_agg": ["mean"],
	         "lr": [0.02], "epochs": [2], "dropout": [0], "batch_size": [32]}`
	if err := app.SetTuning([]byte(tun)); err != nil {
		b.Fatal(err)
	}
	ds := workload.StandardDataset(200, 2, 0.2)
	m, _, err := app.Build(ds, BuildOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rec := ds.WithTag(record.TagTest)[0]
	for _, prec := range []string{"f64", "f32"} {
		b.Run(prec, func(b *testing.B) {
			if err := m.SetPrecision(model.Precision(prec)); err != nil {
				b.Fatal(err)
			}
			if _, err := m.PredictOne(rec); err != nil { // warm fold caches
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictOne(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.FoldedTableBytes()), "table-bytes")
		})
	}
}

// BenchmarkSupervisionCombination measures the label-model pass over a
// product-sized data file (all four tasks).
func BenchmarkSupervisionCombination(b *testing.B) {
	ds := workload.StandardDataset(2000, 3, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, task := range ds.Schema.TaskNames() {
			if _, err := labelmodel.Combine(ds.Records, ds.Schema, task, labelmodel.CombineConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
