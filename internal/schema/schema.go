// Package schema implements Overton's declarative schema: payloads, which
// describe sources of data (a query, its tokens, a set of candidate
// entities), and tasks, which describe what the compiled model must predict
// over those payloads. The schema is the contract between supervision data,
// the model compiler, and serving — it deliberately contains no
// hyperparameters (model independence): the same schema is reused across
// tuning choices, locales, and applications.
package schema

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// PayloadType enumerates the payload shapes Overton supports.
type PayloadType string

// Payload shapes.
const (
	Singleton PayloadType = "singleton" // one value per example (e.g. the query)
	Sequence  PayloadType = "sequence"  // ordered tokens per example
	Set       PayloadType = "set"       // unordered candidates per example (e.g. entities)
)

// TaskType enumerates the classification task families.
type TaskType string

// Task families.
const (
	Multiclass TaskType = "multiclass" // exactly one class per unit
	Bitvector  TaskType = "bitvector"  // independent binary labels per unit
	Select     TaskType = "select"     // choose one member of a set payload
)

// Payload declares one source of data in the schema.
type Payload struct {
	Name      string      `json:"-"`
	Type      PayloadType `json:"type"`
	MaxLength int         `json:"max_length,omitempty"` // sequences: padding length
	Base      []string    `json:"base,omitempty"`       // payloads this aggregates
	Range     string      `json:"range,omitempty"`      // sets: sequence payload its spans index
}

// Task declares one prediction the compiled model must emit.
type Task struct {
	Name    string   `json:"-"`
	Payload string   `json:"payload"`
	Type    TaskType `json:"type"`
	// Classes fixes the label space for multiclass/bitvector tasks. Select
	// tasks have no classes (they choose among set members).
	Classes []string `json:"classes,omitempty"`
}

// Schema is a parsed, validated Overton schema.
type Schema struct {
	Payloads map[string]*Payload `json:"payloads"`
	Tasks    map[string]*Task    `json:"tasks"`
}

// Parse reads and validates a schema from JSON.
func Parse(data []byte) (*Schema, error) {
	var s Schema
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("schema: parse: %w", err)
	}
	for name, p := range s.Payloads {
		p.Name = name
	}
	for name, t := range s.Tasks {
		t.Name = name
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseReader parses a schema from r.
func ParseReader(r io.Reader) (*Schema, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("schema: read: %w", err)
	}
	return Parse(data)
}

// LoadFile parses a schema from a file path.
func LoadFile(path string) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("schema: %w", err)
	}
	return Parse(data)
}

// MarshalJSON renders the schema in its canonical JSON form.
func (s *Schema) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks structural invariants: payload references resolve, no
// dataflow cycles, tasks are typed consistently with their payloads.
func (s *Schema) Validate() error {
	if len(s.Payloads) == 0 {
		return fmt.Errorf("schema: no payloads")
	}
	if len(s.Tasks) == 0 {
		return fmt.Errorf("schema: no tasks")
	}
	for name, p := range s.Payloads {
		if name == "" {
			return fmt.Errorf("schema: empty payload name")
		}
		switch p.Type {
		case Singleton, Sequence, Set:
		default:
			return fmt.Errorf("schema: payload %q: unknown type %q", name, p.Type)
		}
		if p.Type == Sequence && p.MaxLength <= 0 {
			return fmt.Errorf("schema: sequence payload %q: max_length must be > 0", name)
		}
		if p.Type != Sequence && p.MaxLength != 0 {
			return fmt.Errorf("schema: payload %q: max_length only valid for sequences", name)
		}
		for _, b := range p.Base {
			bp, ok := s.Payloads[b]
			if !ok {
				return fmt.Errorf("schema: payload %q: base %q not declared", name, b)
			}
			if bp == p {
				return fmt.Errorf("schema: payload %q: self-referential base", name)
			}
		}
		if p.Type == Set {
			if p.Range == "" {
				return fmt.Errorf("schema: set payload %q: range required", name)
			}
			rp, ok := s.Payloads[p.Range]
			if !ok {
				return fmt.Errorf("schema: set payload %q: range %q not declared", name, p.Range)
			}
			if rp.Type != Sequence {
				return fmt.Errorf("schema: set payload %q: range %q must be a sequence", name, p.Range)
			}
		} else if p.Range != "" {
			return fmt.Errorf("schema: payload %q: range only valid for sets", name)
		}
	}
	if err := s.checkAcyclic(); err != nil {
		return err
	}
	for name, t := range s.Tasks {
		p, ok := s.Payloads[t.Payload]
		if !ok {
			return fmt.Errorf("schema: task %q: payload %q not declared", name, t.Payload)
		}
		switch t.Type {
		case Multiclass, Bitvector:
			if len(t.Classes) < 2 && t.Type == Multiclass {
				return fmt.Errorf("schema: task %q: multiclass needs >= 2 classes", name)
			}
			if len(t.Classes) < 1 && t.Type == Bitvector {
				return fmt.Errorf("schema: task %q: bitvector needs >= 1 class", name)
			}
			seen := map[string]bool{}
			for _, c := range t.Classes {
				if seen[c] {
					return fmt.Errorf("schema: task %q: duplicate class %q", name, c)
				}
				seen[c] = true
			}
		case Select:
			if p.Type != Set {
				return fmt.Errorf("schema: task %q: select requires a set payload, %q is %s", name, t.Payload, p.Type)
			}
			if len(t.Classes) != 0 {
				return fmt.Errorf("schema: task %q: select tasks have no classes", name)
			}
		default:
			return fmt.Errorf("schema: task %q: unknown type %q", name, t.Type)
		}
	}
	return nil
}

// checkAcyclic detects cycles in payload base references.
func (s *Schema) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(s.Payloads))
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("schema: payload dataflow cycle through %q", name)
		case black:
			return nil
		}
		color[name] = gray
		for _, b := range s.Payloads[name].Base {
			if err := visit(b); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for name := range s.Payloads {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// PayloadNames returns payload names sorted alphabetically (deterministic
// iteration order for compilation).
func (s *Schema) PayloadNames() []string {
	names := make([]string, 0, len(s.Payloads))
	for n := range s.Payloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TaskNames returns task names sorted alphabetically.
func (s *Schema) TaskNames() []string {
	names := make([]string, 0, len(s.Tasks))
	for n := range s.Tasks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClassIndex returns the index of class c in task t's class list, or -1.
func (t *Task) ClassIndex(c string) int {
	for i, name := range t.Classes {
		if name == c {
			return i
		}
	}
	return -1
}

// Granularity describes how many prediction units a task emits per example.
type Granularity string

// Granularities.
const (
	PerExample Granularity = "per-example" // singleton payloads
	PerToken   Granularity = "per-token"   // sequence payloads
	PerSet     Granularity = "per-set"     // select over a set payload
)

// Granularity returns the prediction granularity of task t under schema s.
func (s *Schema) Granularity(t *Task) Granularity {
	p := s.Payloads[t.Payload]
	if t.Type == Select {
		return PerSet
	}
	switch p.Type {
	case Sequence:
		return PerToken
	case Set:
		return PerSet
	default:
		return PerExample
	}
}

// Signature is the serving contract generated from a schema: what a
// deployed model consumes and produces. Serving infrastructure depends only
// on this, never on model internals (model independence).
type Signature struct {
	Inputs  []SignatureInput  `json:"inputs"`
	Outputs []SignatureOutput `json:"outputs"`
}

// SignatureInput describes one payload the server accepts.
type SignatureInput struct {
	Name      string      `json:"name"`
	Type      PayloadType `json:"type"`
	MaxLength int         `json:"max_length,omitempty"`
	Range     string      `json:"range,omitempty"`
}

// SignatureOutput describes one task prediction the server returns.
type SignatureOutput struct {
	Name        string      `json:"name"`
	Type        TaskType    `json:"type"`
	Granularity Granularity `json:"granularity"`
	Classes     []string    `json:"classes,omitempty"`
}

// Signature derives the serving signature.
func (s *Schema) Signature() *Signature {
	sig := &Signature{}
	for _, name := range s.PayloadNames() {
		p := s.Payloads[name]
		// Derived payloads (pure aggregations of other payloads with no
		// raw data of their own) still appear: servers accept their raw
		// form when present (e.g. the query string) but may pass null.
		sig.Inputs = append(sig.Inputs, SignatureInput{
			Name: name, Type: p.Type, MaxLength: p.MaxLength, Range: p.Range,
		})
	}
	for _, name := range s.TaskNames() {
		t := s.Tasks[name]
		sig.Outputs = append(sig.Outputs, SignatureOutput{
			Name:        name,
			Type:        t.Type,
			Granularity: s.Granularity(t),
			Classes:     t.Classes,
		})
	}
	return sig
}
