package schema

import (
	"strings"
	"testing"
)

// testSchemaJSON mirrors the running example in Figure 2a of the paper.
const testSchemaJSON = `{
  "payloads": {
    "tokens":   {"type": "sequence", "max_length": 16},
    "query":    {"type": "singleton", "base": ["tokens"]},
    "entities": {"type": "set", "range": "tokens"}
  },
  "tasks": {
    "POS":        {"payload": "tokens", "type": "multiclass",
                   "classes": ["NOUN", "VERB", "ADJ", "ADV", "ADP", "DET", "NUM", "PRON"]},
    "EntityType": {"payload": "tokens", "type": "bitvector",
                   "classes": ["person", "location", "country", "food"]},
    "Intent":     {"payload": "query", "type": "multiclass",
                   "classes": ["Height", "Capital", "Calories"]},
    "IntentArg":  {"payload": "entities", "type": "select"}
  }
}`

func mustParse(t *testing.T, js string) *Schema {
	t.Helper()
	s, err := Parse([]byte(js))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseRunningExample(t *testing.T) {
	s := mustParse(t, testSchemaJSON)
	if len(s.Payloads) != 3 || len(s.Tasks) != 4 {
		t.Fatalf("wrong counts: %d payloads %d tasks", len(s.Payloads), len(s.Tasks))
	}
	if s.Payloads["tokens"].Type != Sequence || s.Payloads["tokens"].MaxLength != 16 {
		t.Fatalf("tokens payload wrong: %+v", s.Payloads["tokens"])
	}
	if s.Payloads["entities"].Range != "tokens" {
		t.Fatalf("entities range wrong")
	}
	if s.Tasks["IntentArg"].Type != Select {
		t.Fatalf("IntentArg type wrong")
	}
	if s.Payloads["query"].Name != "query" || s.Tasks["POS"].Name != "POS" {
		t.Fatalf("names not backfilled")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := mustParse(t, testSchemaJSON)
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(data)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if len(s2.Payloads) != len(s.Payloads) || len(s2.Tasks) != len(s.Tasks) {
		t.Fatalf("round trip lost entries")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		js   string
		want string
	}{
		{"no payloads", `{"payloads": {}, "tasks": {"t": {"payload": "x", "type": "multiclass"}}}`, "no payloads"},
		{"no tasks", `{"payloads": {"p": {"type": "singleton"}}, "tasks": {}}`, "no tasks"},
		{"bad payload type", `{"payloads": {"p": {"type": "blob"}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","b"]}}}`, "unknown type"},
		{"seq needs max_length", `{"payloads": {"p": {"type": "sequence"}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","b"]}}}`, "max_length"},
		{"max_length on singleton", `{"payloads": {"p": {"type": "singleton", "max_length": 4}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","b"]}}}`, "max_length only valid"},
		{"unknown base", `{"payloads": {"p": {"type": "singleton", "base": ["zzz"]}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","b"]}}}`, "base"},
		{"set needs range", `{"payloads": {"p": {"type": "set"}}, "tasks": {"t": {"payload": "p", "type": "select"}}}`, "range required"},
		{"set range must be sequence", `{"payloads": {"q": {"type": "singleton"}, "p": {"type": "set", "range": "q"}}, "tasks": {"t": {"payload": "p", "type": "select"}}}`, "must be a sequence"},
		{"range on singleton", `{"payloads": {"s": {"type": "sequence", "max_length": 3}, "p": {"type": "singleton", "range": "s"}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","b"]}}}`, "range only valid"},
		{"task unknown payload", `{"payloads": {"p": {"type": "singleton"}}, "tasks": {"t": {"payload": "zzz", "type": "multiclass", "classes": ["a","b"]}}}`, "not declared"},
		{"task bad type", `{"payloads": {"p": {"type": "singleton"}}, "tasks": {"t": {"payload": "p", "type": "regress"}}}`, "unknown type"},
		{"multiclass one class", `{"payloads": {"p": {"type": "singleton"}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a"]}}}`, ">= 2 classes"},
		{"duplicate classes", `{"payloads": {"p": {"type": "singleton"}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","a"]}}}`, "duplicate class"},
		{"select on non-set", `{"payloads": {"p": {"type": "singleton"}}, "tasks": {"t": {"payload": "p", "type": "select"}}}`, "requires a set"},
		{"select with classes", `{"payloads": {"s": {"type": "sequence", "max_length": 3}, "p": {"type": "set", "range": "s"}}, "tasks": {"t": {"payload": "p", "type": "select", "classes": ["a"]}}}`, "no classes"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.js))
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	js := `{
	  "payloads": {
	    "a": {"type": "singleton", "base": ["b"]},
	    "b": {"type": "singleton", "base": ["a"]}
	  },
	  "tasks": {"t": {"payload": "a", "type": "multiclass", "classes": ["x","y"]}}
	}`
	if _, err := Parse([]byte(js)); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
}

func TestDeterministicNameOrder(t *testing.T) {
	s := mustParse(t, testSchemaJSON)
	pn := s.PayloadNames()
	want := []string{"entities", "query", "tokens"}
	for i, n := range want {
		if pn[i] != n {
			t.Fatalf("PayloadNames[%d]=%s want %s", i, pn[i], n)
		}
	}
	tn := s.TaskNames()
	wantT := []string{"EntityType", "Intent", "IntentArg", "POS"}
	for i, n := range wantT {
		if tn[i] != n {
			t.Fatalf("TaskNames[%d]=%s want %s", i, tn[i], n)
		}
	}
}

func TestGranularity(t *testing.T) {
	s := mustParse(t, testSchemaJSON)
	cases := map[string]Granularity{
		"POS":        PerToken,
		"EntityType": PerToken,
		"Intent":     PerExample,
		"IntentArg":  PerSet,
	}
	for task, want := range cases {
		if got := s.Granularity(s.Tasks[task]); got != want {
			t.Errorf("Granularity(%s)=%s want %s", task, got, want)
		}
	}
}

func TestClassIndex(t *testing.T) {
	s := mustParse(t, testSchemaJSON)
	intent := s.Tasks["Intent"]
	if intent.ClassIndex("Capital") != 1 {
		t.Fatalf("ClassIndex wrong")
	}
	if intent.ClassIndex("nope") != -1 {
		t.Fatalf("ClassIndex missing should be -1")
	}
}

func TestSignature(t *testing.T) {
	s := mustParse(t, testSchemaJSON)
	sig := s.Signature()
	if len(sig.Inputs) != 3 || len(sig.Outputs) != 4 {
		t.Fatalf("signature counts wrong: %d/%d", len(sig.Inputs), len(sig.Outputs))
	}
	// Outputs sorted by task name; check a couple of fields.
	if sig.Outputs[1].Name != "Intent" || sig.Outputs[1].Granularity != PerExample {
		t.Fatalf("Intent output wrong: %+v", sig.Outputs[1])
	}
	if sig.Outputs[2].Name != "IntentArg" || sig.Outputs[2].Type != Select {
		t.Fatalf("IntentArg output wrong: %+v", sig.Outputs[2])
	}
	if sig.Inputs[2].MaxLength != 16 {
		t.Fatalf("tokens input missing max_length")
	}
}

func TestTuningDefaults(t *testing.T) {
	tun := DefaultTuning()
	if err := tun.Validate(); err != nil {
		t.Fatalf("default tuning invalid: %v", err)
	}
	c := tun.Default()
	if c.Embedding != tun.Embeddings[0] || c.Encoder != tun.Encoders[0] {
		t.Fatalf("Default() not first options: %+v", c)
	}
	if c.String() == "" {
		t.Fatalf("empty choice string")
	}
}

func TestParseTuningOverrides(t *testing.T) {
	tun, err := ParseTuning([]byte(`{"encoders": ["BOW"], "hidden": [16]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tun.Encoders) != 1 || tun.Encoders[0] != "BOW" {
		t.Fatalf("override lost")
	}
	if len(tun.LR) == 0 {
		t.Fatalf("defaults not filled")
	}
	if _, err := ParseTuning([]byte(`{"encoders": ["Transformer9000"]}`)); err == nil {
		t.Fatalf("unknown encoder accepted")
	}
	if _, err := ParseTuning([]byte(`{"query_agg": ["median"]}`)); err == nil {
		t.Fatalf("unknown agg accepted")
	}
	if _, err := ParseTuning([]byte(`{"hidden": []}`)); err == nil {
		t.Fatalf("empty dimension accepted")
	}
}

func TestTuningEnumerateMatchesSizeAndAt(t *testing.T) {
	tun := &Tuning{
		Embeddings: []string{"hash-16", "hash-32"},
		Encoders:   []string{"BOW", "CNN"},
		Hidden:     []int{8},
		QueryAgg:   []string{"mean", "max"},
		EntityAgg:  []string{"mean"},
		LR:         []float64{0.1, 0.01},
		Epochs:     []int{1},
		Dropout:    []float64{0},
		BatchSize:  []int{4},
	}
	all := tun.Enumerate()
	if len(all) != tun.Size() {
		t.Fatalf("Enumerate len %d != Size %d", len(all), tun.Size())
	}
	seen := map[string]bool{}
	for i, c := range all {
		if seen[c.String()] {
			t.Fatalf("duplicate choice %s", c)
		}
		seen[c.String()] = true
		if got := tun.At(i); got != c {
			t.Fatalf("At(%d)=%+v != Enumerate[%d]=%+v", i, got, i, c)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/schema.json"); err == nil {
		t.Fatalf("expected error")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	js := `{"payloads": {"p": {"type": "singleton"}}, "tasks": {"t": {"payload": "p", "type": "multiclass", "classes": ["a","b"]}}, "hyperparams": {}}`
	if _, err := Parse([]byte(js)); err == nil {
		t.Fatalf("unknown top-level field accepted (schema must stay hyperparameter-free)")
	}
}
