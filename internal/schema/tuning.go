package schema

import (
	"encoding/json"
	"fmt"
)

// Tuning is the model-tuning search space (Figure 2a, right column): the
// coarse-grained blocks Overton may search over. It deliberately lives
// outside the schema so the schema stays hyperparameter-free.
type Tuning struct {
	// Token payload options.
	Embeddings []string `json:"embeddings"` // e.g. "hash-32", "pretrained-64", "bertsim-64"
	Encoders   []string `json:"encoders"`   // "BOW", "CNN", "GRU", "BiGRU"
	Hidden     []int    `json:"hidden"`     // encoder width

	// Aggregation options for derived payloads.
	QueryAgg  []string `json:"query_agg"`  // "mean", "max"
	EntityAgg []string `json:"entity_agg"` // "mean", "attn"

	// Trainer options.
	LR        []float64 `json:"lr"`
	Epochs    []int     `json:"epochs"`
	Dropout   []float64 `json:"dropout"`
	BatchSize []int     `json:"batch_size"`
}

// Choice is one concrete point in the tuning space — the "red components"
// Overton selects via model search in Figure 2b.
type Choice struct {
	Embedding string  `json:"embedding"`
	Encoder   string  `json:"encoder"`
	Hidden    int     `json:"hidden"`
	QueryAgg  string  `json:"query_agg"`
	EntityAgg string  `json:"entity_agg"`
	LR        float64 `json:"lr"`
	Epochs    int     `json:"epochs"`
	Dropout   float64 `json:"dropout"`
	BatchSize int     `json:"batch_size"`
}

// String renders a compact, stable description of the choice.
func (c Choice) String() string {
	return fmt.Sprintf("emb=%s enc=%s h=%d qagg=%s eagg=%s lr=%g ep=%d do=%g bs=%d",
		c.Embedding, c.Encoder, c.Hidden, c.QueryAgg, c.EntityAgg, c.LR, c.Epochs, c.Dropout, c.BatchSize)
}

// DefaultTuning returns the search space used when the engineer supplies
// none. First entries of each dimension form the default Choice, so keep
// the cheap-and-robust options first.
func DefaultTuning() *Tuning {
	return &Tuning{
		Embeddings: []string{"hash-32", "hash-64"},
		Encoders:   []string{"CNN", "BOW", "GRU"},
		Hidden:     []int{32, 64},
		QueryAgg:   []string{"mean", "max"},
		EntityAgg:  []string{"mean", "attn"},
		LR:         []float64{0.01, 0.003},
		Epochs:     []int{8, 15},
		Dropout:    []float64{0, 0.1},
		BatchSize:  []int{32},
	}
}

// ParseTuning reads a tuning spec from JSON, filling unset dimensions from
// the defaults.
func ParseTuning(data []byte) (*Tuning, error) {
	t := DefaultTuning()
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("schema: tuning: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate rejects empty dimensions and unknown block names.
func (t *Tuning) Validate() error {
	if len(t.Embeddings) == 0 || len(t.Encoders) == 0 || len(t.Hidden) == 0 ||
		len(t.QueryAgg) == 0 || len(t.EntityAgg) == 0 || len(t.LR) == 0 ||
		len(t.Epochs) == 0 || len(t.Dropout) == 0 || len(t.BatchSize) == 0 {
		return fmt.Errorf("schema: tuning: every dimension needs at least one option")
	}
	for _, e := range t.Encoders {
		switch e {
		case "BOW", "CNN", "GRU", "BiGRU":
		default:
			return fmt.Errorf("schema: tuning: unknown encoder %q", e)
		}
	}
	for _, a := range t.QueryAgg {
		if a != "mean" && a != "max" {
			return fmt.Errorf("schema: tuning: unknown query_agg %q", a)
		}
	}
	for _, a := range t.EntityAgg {
		if a != "mean" && a != "attn" {
			return fmt.Errorf("schema: tuning: unknown entity_agg %q", a)
		}
	}
	return nil
}

// Default returns the first option of every dimension.
func (t *Tuning) Default() Choice {
	return Choice{
		Embedding: t.Embeddings[0],
		Encoder:   t.Encoders[0],
		Hidden:    t.Hidden[0],
		QueryAgg:  t.QueryAgg[0],
		EntityAgg: t.EntityAgg[0],
		LR:        t.LR[0],
		Epochs:    t.Epochs[0],
		Dropout:   t.Dropout[0],
		BatchSize: t.BatchSize[0],
	}
}

// Size returns the number of points in the full grid.
func (t *Tuning) Size() int {
	return len(t.Embeddings) * len(t.Encoders) * len(t.Hidden) *
		len(t.QueryAgg) * len(t.EntityAgg) * len(t.LR) * len(t.Epochs) *
		len(t.Dropout) * len(t.BatchSize)
}

// Enumerate returns the full grid in deterministic order. Callers doing
// random search should sample indices instead for large spaces.
func (t *Tuning) Enumerate() []Choice {
	var out []Choice
	for _, em := range t.Embeddings {
		for _, en := range t.Encoders {
			for _, h := range t.Hidden {
				for _, qa := range t.QueryAgg {
					for _, ea := range t.EntityAgg {
						for _, lr := range t.LR {
							for _, ep := range t.Epochs {
								for _, do := range t.Dropout {
									for _, bs := range t.BatchSize {
										out = append(out, Choice{
											Embedding: em, Encoder: en, Hidden: h,
											QueryAgg: qa, EntityAgg: ea,
											LR: lr, Epochs: ep, Dropout: do, BatchSize: bs,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// At returns the i-th point of the grid without materialising it
// (mixed-radix decoding in the same order as Enumerate).
func (t *Tuning) At(i int) Choice {
	dims := []int{len(t.BatchSize), len(t.Dropout), len(t.Epochs), len(t.LR),
		len(t.EntityAgg), len(t.QueryAgg), len(t.Hidden), len(t.Encoders), len(t.Embeddings)}
	idx := make([]int, len(dims))
	for d, n := range dims {
		idx[d] = i % n
		i /= n
	}
	return Choice{
		BatchSize: t.BatchSize[idx[0]],
		Dropout:   t.Dropout[idx[1]],
		Epochs:    t.Epochs[idx[2]],
		LR:        t.LR[idx[3]],
		EntityAgg: t.EntityAgg[idx[4]],
		QueryAgg:  t.QueryAgg[idx[5]],
		Hidden:    t.Hidden[idx[6]],
		Encoder:   t.Encoders[idx[7]],
		Embedding: t.Embeddings[idx[8]],
	}
}
