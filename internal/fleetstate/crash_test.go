package fleetstate

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/record"
	"repro/internal/sliceql"
	"repro/internal/telemetry"
)

// These are the deterministic crash-recovery tests the fault-injection
// harness exists for: kill a lifecycle mutation at an exact journal or
// snapshot write, recover from the surviving bytes, and assert the fleet
// lands on a consistent state — pre- or post-mutation, never a mix,
// never a lost accepted record. All of them run under -race in CI.

// TestCrashMidPromoteTornJournal kills the promote by tearing its
// journal append mid-line (the bytes a mid-write crash leaves). The
// promote must fail, and recovery must land on the exact pre-promote
// state: primary v1, shadow v2 still installed and promotable.
func TestCrashMidPromoteTornJournal(t *testing.T) {
	dir := t.TempDir()
	st, _, d := newFleet(t, dir)
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}

	fi := faultinject.NewRegistry()
	// Hit 1 of the journal site from here on is the promote event.
	fi.Arm("fleetstate.journal.append", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 17})
	faultinject.Enable(fi)
	if _, err := d.Promote(); err == nil {
		faultinject.Disable()
		t.Fatal("promote survived a torn journal write")
	}
	faultinject.Disable()
	if v := d.Version(); v != 1 {
		t.Fatalf("failed promote changed the live version to %d", v)
	}
	// Crash: abandon st and d without Close or Checkpoint.
	_ = st

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	rd, ok := fleet.Registry.Get("main")
	if !ok {
		t.Fatal("deployment lost")
	}
	if v := rd.Version(); v != 1 {
		t.Fatalf("recovered v%d, want pre-promote 1", v)
	}
	if stats := rd.Stats(); stats.ShadowVersion != 2 {
		t.Fatalf("shadow v2 lost in recovery: %+v", stats)
	}
	// The recovered fleet must be able to finish the interrupted promote.
	if v, err := rd.Promote(); err != nil || v != 2 {
		t.Fatalf("recovered fleet cannot promote: v=%d err=%v", v, err)
	}
}

// TestCrashAfterPromoteJournaled is the other half of the consistency
// claim: once the promote event is durably journaled, a crash before
// anything else recovers at the post-promote version.
func TestCrashAfterPromoteJournaled(t *testing.T) {
	dir := t.TempDir()
	_, _, d := newFleet(t, dir)
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Promote(); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after the promote applied: no checkpoint.
	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	rd, _ := fleet.Registry.Get("main")
	if v := rd.Version(); v != 2 {
		t.Fatalf("recovered v%d, want post-promote 2", v)
	}
	if stats := rd.Stats(); stats.ShadowVersion != 0 {
		t.Fatalf("promoted shadow still installed after recovery: %+v", stats)
	}
	if fleet.CleanShutdown {
		t.Fatal("crash reported as clean shutdown")
	}
}

// TestTornSnapshotFailsMutationCleanly injects the torn snapshot write —
// partial bytes at the final path, as a non-atomic filesystem could
// leave — into a swap. The swap must fail leaving v1 serving, and
// recovery must route around the torn file back to the last good
// snapshot.
func TestTornSnapshotFailsMutationCleanly(t *testing.T) {
	dir := t.TempDir()
	_, _, d := newFleet(t, dir)

	fi := faultinject.NewRegistry()
	fi.Arm("fleetstate.snapshot.main", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 100})
	faultinject.Enable(fi)
	err := d.Swap(freshModel(t, 2), 2)
	faultinject.Disable()
	if err == nil {
		t.Fatal("swap survived a torn snapshot write")
	}
	if v := d.Version(); v != 1 {
		t.Fatalf("failed swap changed the live version to %d", v)
	}
	// The torn v2 snapshot file exists on disk but was never journaled;
	// recovery must come back at v1 regardless.
	if _, err := os.Stat(filepath.Join(dir, "snapshots", "main-v2.snap")); err != nil {
		t.Fatalf("test setup: torn snapshot file missing: %v", err)
	}
	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	rd, _ := fleet.Registry.Get("main")
	if v := rd.Version(); v != 1 {
		t.Fatalf("recovered v%d, want 1", v)
	}
	if _, _, err := rd.Predict(goodRecord(t, freshModel(t, 1))); err != nil {
		t.Fatalf("recovered deployment cannot serve: %v", err)
	}
}

// TestCorruptNewestSnapshotFallsBack damages the newest journaled
// snapshot on disk (post-crash bit rot) and asserts recovery falls back
// to the previous version with a warning instead of failing the fleet —
// and that a sibling deployment is untouched by the fallback.
func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, reg, d := newFleet(t, dir)
	other := deploy.New("other", freshModel(t, 7), 3)
	if err := reg.Add(other); err != nil {
		t.Fatal(err)
	}
	if err := d.Swap(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	st.Close()

	// Flip one payload byte of the newest snapshot.
	p := filepath.Join(dir, "snapshots", "main-v2.snap")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x20
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	rd, _ := fleet.Registry.Get("main")
	if v := rd.Version(); v != 1 {
		t.Fatalf("recovered v%d, want fallback to 1", v)
	}
	if len(fleet.Warnings) == 0 {
		t.Fatal("silent fallback: corrupt snapshot must surface a warning")
	}
	ro, ok := fleet.Registry.Get("other")
	if !ok || ro.Version() != 3 {
		t.Fatalf("sibling deployment damaged by fallback: ok=%v", ok)
	}
	if _, _, err := ro.Predict(goodRecord(t, freshModel(t, 1))); err != nil {
		t.Fatalf("sibling cannot serve: %v", err)
	}
}

// TestAllSnapshotsCorruptIsHardError destroys every snapshot of a
// deployment; recovery must refuse rather than invent a model.
func TestAllSnapshotsCorruptIsHardError(t *testing.T) {
	dir := t.TempDir()
	st, reg, _ := newFleet(t, dir)
	reg.Close()
	st.Close()
	p := filepath.Join(dir, "snapshots", "main-v1.snap")
	if err := os.WriteFile(p, []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("recovery succeeded with no loadable snapshot")
	}
}

// TestDiskErrorOnJournalWedgesFailStop pins the fail-stop contract: after
// a journal write error the store refuses further events (every mutation
// fails, nothing silently unjournaled), the in-memory fleet keeps
// serving, and a restart recovers to the last good state.
func TestDiskErrorOnJournalWedgesFailStop(t *testing.T) {
	dir := t.TempDir()
	_, _, d := newFleet(t, dir)

	fi := faultinject.NewRegistry()
	fi.Arm("fleetstate.journal.append", 1, faultinject.Fault{Kind: faultinject.KindError, Err: errors.New("EIO")})
	faultinject.Enable(fi)
	err := d.Swap(freshModel(t, 2), 2)
	faultinject.Disable()
	if err == nil {
		t.Fatal("swap survived a journal disk error")
	}
	// Wedged: even with the disk "healthy" again, mutations fail until
	// restart (the on-disk suffix is unknowable after a failed append).
	if err := d.Swap(freshModel(t, 3), 3); err == nil {
		t.Fatal("store accepted an event after a journal write failure")
	}
	if v := d.Version(); v != 1 {
		t.Fatalf("failed mutations changed the version to %d", v)
	}
	// Serving is unaffected by the wedged journal.
	if _, _, err := d.Predict(goodRecord(t, freshModel(t, 1))); err != nil {
		t.Fatalf("wedged store stopped serving: %v", err)
	}

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	rd, _ := fleet.Registry.Get("main")
	if v := rd.Version(); v != 1 {
		t.Fatalf("recovered v%d, want 1", v)
	}
	// The fresh store handle is unwedged: mutations journal again.
	if err := rd.Swap(freshModel(t, 4), 4); err != nil {
		t.Fatalf("recovered store cannot journal: %v", err)
	}
}

// TestTornWALAppendRejectsIngest tears a WAL append mid-frame: the
// ingest must be rejected (the producer knows the records are not
// durable), and recovery must replay only fully accepted records — the
// no-record-loss, no-record-invention property.
func TestTornWALAppendRejectsIngest(t *testing.T) {
	dir := t.TempDir()
	_, _, d := newFleet(t, dir)
	rec := goodRecord(t, freshModel(t, 1))
	for i := 0; i < 3; i++ {
		if _, err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	fi := faultinject.NewRegistry()
	fi.Arm("fleetstate.wal.main", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 25})
	faultinject.Enable(fi)
	_, err := d.Ingest(rec)
	faultinject.Disable()
	if err == nil {
		t.Fatal("ingest survived a torn WAL append")
	}

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	if got := fleet.Replayed["main"]; got != 3 {
		t.Fatalf("replayed %d records, want the 3 accepted ones", got)
	}
	// The rejected fourth record must be re-ingestable on the recovered
	// fleet (seq continuity after the torn tail was dropped).
	rd, _ := fleet.Registry.Get("main")
	if _, err := rd.Ingest(rec); err != nil {
		t.Fatalf("recovered WAL rejects new ingest: %v", err)
	}
	if _, buffered, _ := rd.IngestStats(); buffered != 4 {
		t.Fatalf("buffered=%d, want 4", buffered)
	}
}

// TestTornTailTruncatedBeforeNewAppends is the recover → mutate →
// recover-again cycle: the partial bytes a crash left at the journal
// tail must be truncated when the store reopens, or the first new event
// appended after recovery merges into them — silently dropping that
// event if it stays last, and turning it into fatal mid-file corruption
// once anything else is appended.
func TestTornTailTruncatedBeforeNewAppends(t *testing.T) {
	dir := t.TempDir()
	_, _, d := newFleet(t, dir)
	fi := faultinject.NewRegistry()
	fi.Arm("fleetstate.journal.append", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 17})
	faultinject.Enable(fi)
	err := d.Swap(freshModel(t, 2), 2)
	faultinject.Disable()
	if err == nil {
		t.Fatal("swap survived a torn journal write")
	}
	// Crash, recover over the torn tail, and journal new events after it.
	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := fleet.Registry.Get("main")
	if err := rd.Swap(freshModel(t, 3), 3); err != nil {
		t.Fatal(err)
	}
	if err := rd.Swap(freshModel(t, 4), 4); err != nil {
		t.Fatal(err)
	}
	fleet.Registry.Close()
	fleet.Store.Close()

	fleet2, err := Recover(dir)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer fleet2.Store.Close()
	defer fleet2.Registry.Close()
	rd2, _ := fleet2.Registry.Get("main")
	if v := rd2.Version(); v != 4 {
		t.Fatalf("recovered v%d, want 4 (events after the torn tail lost)", v)
	}
}

// TestTornWALTailTruncatedBeforeNewAppends is the WAL half of the same
// property, on the Open-without-Recover path (which does not get the
// recovery-time WAL rewrite): a record appended after a torn tail must
// not merge into the partial line and vanish from the next replay.
func TestTornWALTailTruncatedBeforeNewAppends(t *testing.T) {
	dir := t.TempDir()
	st, reg, d := newFleet(t, dir)
	rec := goodRecord(t, freshModel(t, 1))
	for i := 0; i < 2; i++ {
		if _, err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	fi := faultinject.NewRegistry()
	fi.Arm("fleetstate.wal.main", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 25})
	faultinject.Enable(fi)
	_, err := d.Ingest(rec)
	faultinject.Disable()
	if err == nil {
		t.Fatal("ingest survived a torn WAL append")
	}
	reg.Close()
	st.Close()

	// Second process: open the store directly and keep ingesting into
	// the same WAL.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := deploy.NewRegistry()
	reg2.SetPersister(st2)
	d2 := deploy.New("main", freshModel(t, 1), 1)
	if err := reg2.Add(d2); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Ingest(rec); err != nil {
		t.Fatal(err)
	}
	reg2.Close()
	st2.Close()

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	if got := fleet.Replayed["main"]; got != 3 {
		t.Fatalf("replayed %d records, want 3 (2 pre-crash + 1 post-crash; torn one dropped)", got)
	}
}

// TestTornBatchIngestDropsWholeBatch pins ingest batch atomicity: a
// multi-record ingest whose WAL append tears mid-batch was rejected, so
// recovery must replay none of its records — not the complete prefix a
// per-record framing would leave — or a retrying producer creates
// phantom duplicates.
func TestTornBatchIngestDropsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	_, _, d := newFleet(t, dir)
	m := freshModel(t, 1)
	rec := goodRecord(t, m)
	if _, err := d.Ingest(rec, rec); err != nil {
		t.Fatal(err)
	}
	// Tear past the first record's worth of bytes, so a framing that
	// wrote one line per record would leave record 1 of the rejected
	// batch complete on disk.
	body, err := record.MarshalRecord(rec, m.Prog.Schema)
	if err != nil {
		t.Fatal(err)
	}
	fi := faultinject.NewRegistry()
	fi.Arm("fleetstate.wal.main", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: len(body) + 30})
	faultinject.Enable(fi)
	_, err = d.Ingest(rec, rec, rec)
	faultinject.Disable()
	if err == nil {
		t.Fatal("ingest survived a torn WAL append")
	}

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	if got := fleet.Replayed["main"]; got != 2 {
		t.Fatalf("replayed %d records, want 2 (no record of the rejected batch may survive)", got)
	}
}

// TestTornTelemetryTailRecoveredByNextStart is the telemetry half of the
// torn-tail property: a crash mid-append on a telemetry stream leaves a
// partial JSONL line; the next start's logger must truncate it before
// appending, so queries over the directory see every intact event from
// both lives with zero malformed lines. Serving itself must never notice
// — the torn write costs a WriteError counter, not a Predict error.
func TestTornTelemetryTailRecoveredByNextStart(t *testing.T) {
	dir := t.TempDir()
	_, reg, d := newFleet(t, dir)
	telDir := filepath.Join(dir, "telemetry")
	l, err := telemetry.New(telDir, telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg.SetTelemetry(l)
	rec := goodRecord(t, freshModel(t, 1))

	for i := 0; i < 3; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()

	// The 4th predict's append tears mid-line — the bytes a crash
	// mid-write leaves. Predict must not observe the failure.
	fi := faultinject.NewRegistry()
	fi.Arm("telemetry.append.predict", 1, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 20})
	faultinject.Enable(fi)
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatalf("torn telemetry append surfaced to the caller: %v", err)
	}
	l.Flush()
	faultinject.Disable()
	if st := l.Stats()[telemetry.StreamPredict]; st.WriteErrors != 1 {
		t.Fatalf("torn append not counted: %+v", st)
	}
	// Crash: abandon the logger without Close — the partial line stays.

	// Next start: a fresh logger over the same directory.
	l2, err := telemetry.New(telDir, telemetry.Options{})
	if err != nil {
		t.Fatalf("reopen over a torn tail failed: %v", err)
	}
	defer l2.Close()
	reg.SetTelemetry(l2)
	for i := 0; i < 2; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	l2.Flush()

	res, err := sliceql.QueryDir(telDir, "SELECT COUNT(*) FROM predict", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 5.0 {
		t.Fatalf("events across the crash = %v, want 5 (3 pre-crash + 2 post)", res.Rows[0][0])
	}
	if res.Malformed != 0 {
		t.Fatalf("torn tail survived the reopen: %d malformed lines", res.Malformed)
	}
}

// TestSeededFaultScheduleIsDeterministic runs the same seeded disk-error
// schedule against the same mutation sequence twice and asserts the
// fleet lands in the same place — the determinism that makes these
// crash tests debuggable.
func TestSeededFaultScheduleIsDeterministic(t *testing.T) {
	run := func() (versions []int) {
		dir := t.TempDir()
		_, _, d := newFleet(t, dir)
		fi := faultinject.NewRegistry()
		fi.ArmSeeded("fleetstate.snapshot.main", 42, 0.5, faultinject.Fault{Kind: faultinject.KindError})
		faultinject.Enable(fi)
		defer faultinject.Disable()
		for v := 2; v <= 9; v++ {
			if err := d.Swap(freshModel(t, int64(v)), v); err == nil {
				versions = append(versions, v)
			}
		}
		return versions
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 8 {
		t.Fatalf("schedule degenerate: %v", a)
	}
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a, b)
		}
	}
}
