package fleetstate

import (
	"errors"
	"fmt"

	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/record"
)

// Fleet is what Recover rebuilds from a state directory: the registry at
// its exact pre-crash state (with the Store already attached, so new
// mutations journal immediately), plus the pieces the caller wires up
// itself — which deployment was the default, the fleet concurrency
// budget, and the improvement loops that were running (Recover does not
// start goroutines; call StartLoop per entry once serving is ready).
type Fleet struct {
	// Registry holds the recovered deployments with the Store attached.
	Registry *deploy.Registry
	// Store is the open durable store; journal writes continue its
	// sequence. The caller owns Close.
	Store *Store
	// Default is the recovered default deployment name ("" when none).
	Default string
	// Budget is the journaled fleet-wide concurrency cap (0 = none).
	Budget int
	// Loops maps deployment name to the config of the improvement loop
	// that was running at crash time (explicitly stopped loops excluded).
	Loops map[string]deploy.LoopConfig
	// Replayed counts WAL records restored into ingest buffers, per
	// deployment.
	Replayed map[string]int
	// CleanShutdown reports whether the journal ends at a checkpoint
	// event — the previous process exited through its drain path.
	CleanShutdown bool
	// Warnings lists non-fatal damage recovery routed around (a corrupt
	// newest snapshot it fell back from, a dropped shadow).
	Warnings []string
}

// depState is one deployment's journal-replay accumulator. history is
// the stack of (version, snapshot) pairs that have been installed as the
// primary, newest last — the fallback chain when the newest snapshot
// fails its CRC on load.
type depState struct {
	name    string
	version int
	history []versionSnap
	// shadow
	hasShadow  bool
	shadowVer  int
	shadowSnap string
	// config
	limits *deploy.Limits
	loop   *deploy.LoopConfig
	// snapshots seen per version (promote events carry no snapshot name;
	// the set-shadow that introduced the version does)
	snaps map[int]string
}

type versionSnap struct {
	version int
	snap    string
}

func (ds *depState) install(version int, snap string) {
	if snap == "" {
		snap = ds.snaps[version]
	} else {
		ds.snaps[version] = snap
	}
	ds.version = version
	ds.history = append(ds.history, versionSnap{version: version, snap: snap})
}

// Recover opens the store at dir and replays its manifest journal into a
// live fleet. An empty or absent state directory recovers to an empty
// registry — first boot and restart share one code path.
//
// Consistency: events were journaled before they applied, and a torn
// final journal entry is dropped, so replay lands on a fleet state the
// process actually reached (or durably committed to) — kill a promote at
// any instant and recovery serves the pre- or post-promote version,
// never a mix. If the newest snapshot of a deployment fails its
// checksum, recovery falls back down that deployment's version history
// to the newest loadable snapshot (with a warning) rather than failing
// the fleet; a deployment with no loadable snapshot at all is a hard
// error. The unprocessed ingest WAL tail (records after the checkpoint
// mark) is replayed into the rebuilt ingest buffers, then each WAL is
// rewritten with sequences renumbered from 1 to match the rebuilt
// buffers' counters.
//
// opts are applied to every rebuilt deployment (batching, buffer
// capacity — the serve-level tuning that is not part of durable state).
func Recover(dir string, opts ...deploy.Option) (*Fleet, error) {
	st, err := Open(dir)
	if err != nil {
		return nil, err
	}
	fleet, err := recoverFrom(st, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	return fleet, nil
}

// fold is a journal reduced to the fleet state it describes — pass 1 of
// recovery, and the input journal compaction synthesizes back into a
// minimal event list.
type fold struct {
	deps     map[string]*depState
	order    []string // first-journaled order of deps
	def      string
	budget   int
	clean    bool // journal ends at a checkpoint event
	warnings []string
}

// foldEvents folds journal events into per-deployment states plus the
// fleet-level settings.
func foldEvents(evs []deploy.Event) *fold {
	f := &fold{deps: map[string]*depState{}}
	state := func(name string) *depState {
		ds, ok := f.deps[name]
		if !ok {
			ds = &depState{name: name, snaps: map[int]string{}}
			f.deps[name] = ds
			f.order = append(f.order, name)
		}
		return ds
	}
	for _, ev := range evs {
		f.clean = ev.Type == deploy.EventCheckpoint
		switch ev.Type {
		case deploy.EventDeploy:
			ds := state(ev.Dep)
			ds.install(ev.Version, ev.Snap)
			if f.def == "" {
				f.def = ev.Dep
			}
		case deploy.EventSwap:
			state(ev.Dep).install(ev.Version, ev.Snap)
		case deploy.EventSetShadow:
			ds := state(ev.Dep)
			if ev.Clear {
				ds.hasShadow = false
			} else {
				ds.hasShadow, ds.shadowVer, ds.shadowSnap = true, ev.Version, ev.Snap
				ds.snaps[ev.Version] = ev.Snap
			}
		case deploy.EventPromote:
			ds := state(ev.Dep)
			ds.install(ev.Version, ds.snaps[ev.Version])
			ds.hasShadow = false
		case deploy.EventRollback:
			state(ev.Dep).install(ev.Version, "")
		case deploy.EventLimits:
			if ev.Limits != nil {
				lim := *ev.Limits
				state(ev.Dep).limits = &lim
			}
		case deploy.EventLoopStart:
			if ev.Loop != nil {
				cfg := *ev.Loop
				state(ev.Dep).loop = &cfg
			}
		case deploy.EventLoopStop:
			state(ev.Dep).loop = nil
		case deploy.EventSetDefault:
			f.def = ev.Dep
		case deploy.EventBudget:
			f.budget = ev.Budget
		case deploy.EventCheckpoint:
			// clean already latched above.
		default:
			f.warnings = append(f.warnings,
				fmt.Sprintf("journal: unknown event type %q (seq %d) ignored", ev.Type, ev.Seq))
		}
	}
	return f
}

// journalHistoryKeep is how many distinct versions of a deployment's
// install history a compacted journal retains (newest first) — the
// depth of the corrupt-snapshot fallback chain recovery can still walk
// after compaction.
const journalHistoryKeep = 8

// synthesizeEvents turns a fold back into the minimal event list that
// folds to the same fleet state — what journal compaction writes.
// Per-deployment install history is capped at journalHistoryKeep
// distinct versions; unknown event types are not representable and are
// dropped. Folding the result must reproduce the input fold exactly
// (TestJournalCompaction pins this).
func synthesizeEvents(f *fold) []deploy.Event {
	var evs []deploy.Event
	for _, name := range f.order {
		ds := f.deps[name]
		// Newest journalHistoryKeep distinct installed versions, with each
		// install's snapshot name resolved the way loadNewest resolves it.
		var chain []versionSnap
		seen := map[int]bool{}
		for i := len(ds.history) - 1; i >= 0 && len(chain) < journalHistoryKeep; i-- {
			vs := ds.history[i]
			if seen[vs.version] {
				continue
			}
			seen[vs.version] = true
			if vs.snap == "" {
				vs.snap = ds.snaps[vs.version]
			}
			chain = append(chain, vs)
		}
		for i := len(chain) - 1; i >= 0; i-- {
			typ := deploy.EventSwap
			if i == len(chain)-1 {
				typ = deploy.EventDeploy
			}
			evs = append(evs, deploy.Event{Type: typ, Dep: name, Version: chain[i].version, Snap: chain[i].snap})
		}
		if ds.hasShadow {
			evs = append(evs, deploy.Event{Type: deploy.EventSetShadow, Dep: name, Version: ds.shadowVer, Snap: ds.shadowSnap})
		}
		if ds.limits != nil {
			lim := *ds.limits
			evs = append(evs, deploy.Event{Type: deploy.EventLimits, Dep: name, Limits: &lim})
		}
		if ds.loop != nil {
			cfg := *ds.loop
			evs = append(evs, deploy.Event{Type: deploy.EventLoopStart, Dep: name, Loop: &cfg})
		}
	}
	if f.def != "" {
		evs = append(evs, deploy.Event{Type: deploy.EventSetDefault, Dep: f.def})
	}
	if f.budget > 0 {
		evs = append(evs, deploy.Event{Type: deploy.EventBudget, Budget: f.budget})
	}
	if f.clean {
		evs = append(evs, deploy.Event{Type: deploy.EventCheckpoint})
	}
	return evs
}

func recoverFrom(st *Store, opts []deploy.Option) (*Fleet, error) {
	evs, _, _, err := st.readJournal()
	if err != nil {
		return nil, err
	}

	// Pass 1: fold the journal into per-deployment states.
	f := foldEvents(evs)
	fleet := &Fleet{
		Store:         st,
		Loops:         map[string]deploy.LoopConfig{},
		Replayed:      map[string]int{},
		Default:       f.def,
		Budget:        f.budget,
		CleanShutdown: f.clean,
		Warnings:      f.warnings,
	}

	// Pass 2: materialise each deployment — newest loadable snapshot from
	// its history, shadow, limits, WAL tail.
	reg := deploy.NewRegistry()
	fleet.Registry = reg
	for _, name := range f.order {
		ds := f.deps[name]
		m, version, warns, err := loadNewest(st, ds)
		fleet.Warnings = append(fleet.Warnings, warns...)
		if err != nil {
			return nil, err
		}
		d := deploy.New(name, m, version, opts...)
		if ds.limits != nil {
			if err := d.SetLimits(*ds.limits); err != nil {
				fleet.Warnings = append(fleet.Warnings,
					fmt.Sprintf("%s: journaled limits rejected: %v", name, err))
			}
		}
		if ds.hasShadow && ds.shadowSnap != "" {
			if sm, err := st.loadSnapshot(ds.shadowSnap); err != nil {
				fleet.Warnings = append(fleet.Warnings,
					fmt.Sprintf("%s: shadow v%d snapshot unusable, shadow dropped: %v", name, ds.shadowVer, err))
			} else if err := d.SetShadow(sm, ds.shadowVer); err != nil {
				fleet.Warnings = append(fleet.Warnings,
					fmt.Sprintf("%s: shadow v%d rejected, shadow dropped: %v", name, ds.shadowVer, err))
			}
		}
		replayed, err := replayWAL(st, d)
		if err != nil {
			d.Close()
			return nil, err
		}
		fleet.Replayed[name] = replayed
		if err := reg.Add(d); err != nil {
			d.Close()
			return nil, fmt.Errorf("fleetstate: recover: %w", err)
		}
		st.noteSchema(name, m.Prog.Schema)
		if ds.loop != nil {
			fleet.Loops[name] = *ds.loop
		}
	}
	if fleet.Default != "" {
		if _, ok := f.deps[fleet.Default]; ok {
			if err := reg.SetDefault(fleet.Default); err != nil {
				return nil, fmt.Errorf("fleetstate: recover: %w", err)
			}
		}
	}
	if fleet.Budget > 0 {
		reg.SetConcurrencyBudget(fleet.Budget)
	}
	// Attach the store last: rebuilding must not re-journal history. From
	// here every new mutation persists before it applies.
	reg.SetPersister(st)
	return fleet, nil
}

// loadNewest walks a deployment's version history newest-first and
// returns the first snapshot that passes its checksum and decodes — the
// corrupt-snapshot fallback that keeps one flipped bit from taking a
// deployment (or the fleet) down with it.
func loadNewest(st *Store, ds *depState) (*model.Model, int, []string, error) {
	var warns []string
	seen := map[int]bool{}
	for i := len(ds.history) - 1; i >= 0; i-- {
		vs := ds.history[i]
		if seen[vs.version] {
			continue
		}
		seen[vs.version] = true
		if vs.snap == "" {
			warns = append(warns, fmt.Sprintf("%s: v%d has no journaled snapshot, skipping", ds.name, vs.version))
			continue
		}
		m, err := st.loadSnapshot(vs.snap)
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, model.ErrCorruptArtifact) {
				warns = append(warns, fmt.Sprintf("%s: v%d snapshot corrupt, falling back: %v", ds.name, vs.version, err))
				continue
			}
			return nil, 0, warns, fmt.Errorf("fleetstate: recover %s v%d: %w", ds.name, vs.version, err)
		}
		if vs.version != ds.version {
			warns = append(warns, fmt.Sprintf("%s: recovered at v%d (newest journaled was v%d)", ds.name, vs.version, ds.version))
		}
		return m, vs.version, warns, nil
	}
	return nil, 0, warns, fmt.Errorf("fleetstate: recover %s: no loadable snapshot in %d journaled versions",
		ds.name, len(seen))
}

// replayWAL restores the deployment's unprocessed WAL tail (records
// after the checkpoint mark) into its ingest buffer, then rewrites the
// WAL with sequences renumbered from 1 and the checkpoint cleared — the
// rebuilt buffer's cumulative ingested count restarts at the replayed
// record count, and the renumbering keeps WAL sequences identical to it,
// which is the invariant checkpoint marks depend on.
func replayWAL(st *Store, d *deploy.Deployment) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	name := d.Name()
	w, err := st.openWAL(name)
	if err != nil {
		return 0, err
	}
	recs, _, _, err := readWALFile(w.path)
	if err != nil {
		return 0, err
	}
	sch := d.Schema()
	var restored []*record.Record
	var buf []byte
	for _, wr := range recs {
		if wr.seq <= w.mark {
			continue
		}
		r, err := record.ParseRecord(wr.body, sch)
		if err != nil {
			return 0, corruptf("wal %s: seq %d: %v", name, wr.seq, err)
		}
		if err := record.Validate(r, sch); err != nil {
			return 0, corruptf("wal %s: seq %d: %v", name, wr.seq, err)
		}
		restored = append(restored, r)
		buf = append(buf, frameWALRec(int64(len(restored)), wr.body)...)
	}
	if err := writeFileAtomic(w.path, buf, "fleetstate.wal.rewrite."+name); err != nil {
		return 0, fmt.Errorf("fleetstate: wal %s: rewrite: %w", name, err)
	}
	if err := writeFileAtomic(w.ckptPath, []byte("0"), "fleetstate.ckpt."+name); err != nil {
		return 0, fmt.Errorf("fleetstate: checkpoint %s: reset: %w", name, err)
	}
	w.f.Close()
	f, err := openAppend(w.path)
	if err != nil {
		return 0, fmt.Errorf("fleetstate: wal %s: %w", name, err)
	}
	w.f = f
	w.mark = 0
	w.seq = int64(len(restored))
	if len(restored) > 0 {
		w.firstSeq = 1
		d.RestoreIngest(restored...)
	} else {
		w.firstSeq = 0
	}
	return len(restored), nil
}
