package fleetstate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
)

// walCompactThreshold is how many already-checkpointed records may sit at
// the head of a WAL file before a checkpoint rewrites it — the bound that
// keeps the WAL proportional to unprocessed work, not ingest history.
const walCompactThreshold = 4096

// journalCompactThreshold is how many events the manifest journal may
// accumulate before it is rewritten as a compact snapshot of the folded
// fleet state (see synthesizeEvents) — the bound that keeps the journal
// (and every boot's replay) proportional to the fleet, not its lifetime
// of swaps, limit changes, and per-restart loop-start events. Applied at
// Open and again whenever a live store crosses it.
const journalCompactThreshold = 1024

// Store is the durable side of a fleet: it implements deploy.Persister
// over a -state-dir. Attach it with Registry.SetPersister (or let
// Recover hand back a registry with it already attached); every
// lifecycle mutation is then journaled — and its model snapshotted —
// before it applies in memory. Safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	journal *os.File
	// bad wedges the journal after a failed append: the on-disk suffix is
	// unknowable, so the store fails stop (every later event errors, so
	// every later mutation fails) until a restart recovers. Fail-stop is
	// the only honest answer — journaling over a torn line would turn the
	// next replay's "torn tail" into "mid-file corruption".
	bad     bool
	seq     int64 // last journaled event sequence
	events  int   // events in the journal file (compaction trigger)
	schemas map[string]*schema.Schema
	wals    map[string]*wal
}

// wal is one deployment's ingest write-ahead log. Sequence numbers count
// accepted records from 1 and match the deployment buffer's cumulative
// ingested count exactly (deploy.Ingest holds its ingestMu across the
// WAL append and the buffer append), which is what makes a drain-time
// checkpoint mark precise.
type wal struct {
	path     string
	ckptPath string
	f        *os.File
	bad      bool
	seq      int64 // last appended record sequence
	firstSeq int64 // lowest sequence still in the file (compaction base)
	mark     int64 // last checkpointed sequence
}

// Open opens (creating if needed) the durable store rooted at dir. The
// existing journal is validated — a torn final entry is tolerated as an
// unapplied write and its partial bytes are truncated away (so the next
// append starts on a clean line instead of merging into the leftover
// fragment); damage earlier in the file is an error — and new events
// continue its sequence. A journal past the compaction threshold is
// rewritten as a compact state snapshot before serving. Most callers
// want Recover, which opens the store and rebuilds the fleet it
// describes.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{dir, filepath.Join(dir, "snapshots"), filepath.Join(dir, "wal")} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("fleetstate: %w", err)
		}
	}
	s := &Store{dir: dir, schemas: map[string]*schema.Schema{}, wals: map[string]*wal{}}
	evs, valid, torn, err := s.readJournal()
	if err != nil {
		return nil, err
	}
	switch {
	case len(evs) >= journalCompactThreshold:
		// The atomic rewrite also discards any torn tail bytes.
		if evs, err = s.rewriteJournal(evs); err != nil {
			return nil, err
		}
		torn = false
	case torn:
		if err := os.Truncate(s.journalPath(), valid); err != nil {
			return nil, fmt.Errorf("fleetstate: journal: truncate torn tail: %w", err)
		}
	}
	if len(evs) > 0 {
		s.seq = evs[len(evs)-1].Seq
	}
	s.events = len(evs)
	f, err := openAppend(s.journalPath())
	if err != nil {
		return nil, fmt.Errorf("fleetstate: %w", err)
	}
	if torn {
		// Make the truncation durable before anything is appended after it.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleetstate: journal: %w", err)
		}
	}
	s.journal = f
	return s, nil
}

// Dir returns the state directory the store is rooted at.
func (s *Store) Dir() string { return s.dir }

// openAppend opens path for appending, creating it if absent.
func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.log") }

// safeName makes a deployment name filesystem-safe for snapshot and WAL
// filenames (names arrive from flags and HTTP paths).
func safeName(dep string) string { return url.PathEscape(dep) }

func (s *Store) snapshotPath(name string) string {
	return filepath.Join(s.dir, "snapshots", name)
}

// readJournal reads and validates the whole journal, dropping a torn
// tail; valid is the byte length of the validated prefix and torn
// reports dangling partial bytes past it. Used by Open (to continue the
// sequence and truncate a torn tail) and Recover (to replay).
func (s *Store) readJournal() (evs []deploy.Event, valid int64, torn bool, err error) {
	data, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("fleetstate: journal: %w", err)
	}
	contents, n, err := parseFramedLines(data)
	if err != nil {
		return nil, 0, false, fmt.Errorf("fleetstate: journal: %w", err)
	}
	evs = make([]deploy.Event, 0, len(contents))
	for i, c := range contents {
		var ev deploy.Event
		if err := json.Unmarshal(c, &ev); err != nil {
			return nil, 0, false, corruptf("journal: entry %d: %v", i, err)
		}
		evs = append(evs, ev)
	}
	return evs, int64(n), n < len(data), nil
}

// rewriteJournal atomically replaces the journal file with a compact
// synthesis of the given events' folded fleet state, renumbering
// sequences from 1, and returns the events now in the file. It does not
// touch the store's open append handle — Open calls it before that
// handle exists; compactLocked reopens afterwards.
func (s *Store) rewriteJournal(evs []deploy.Event) ([]deploy.Event, error) {
	synth := synthesizeEvents(foldEvents(evs))
	var buf []byte
	for i := range synth {
		synth[i].Seq = int64(i + 1)
		body, err := json.Marshal(synth[i])
		if err != nil {
			return nil, fmt.Errorf("fleetstate: journal: compact: %w", err)
		}
		buf = append(buf, frameLine(body)...)
	}
	if err := writeFileAtomic(s.journalPath(), buf, "fleetstate.journal.compact"); err != nil {
		return nil, fmt.Errorf("fleetstate: journal: compact: %w", err)
	}
	return synth, nil
}

// compactLocked rewrites a live store's journal compactly and moves the
// append handle to the new file. Caller holds s.mu. Failure before the
// rewrite leaves everything as it was (the rewrite is all-or-nothing);
// failure to reopen the append handle afterwards wedges the store — the
// old handle points at the replaced inode, so appending to it would
// silently journal nothing.
func (s *Store) compactLocked() error {
	evs, _, _, err := s.readJournal()
	if err != nil {
		return err
	}
	synth, err := s.rewriteJournal(evs)
	if err != nil {
		return err
	}
	s.journal.Close()
	f, err := openAppend(s.journalPath())
	if err != nil {
		s.bad = true
		return fmt.Errorf("fleetstate: journal: reopen after compact: %w", err)
	}
	s.journal = f
	s.seq = int64(len(synth))
	s.events = len(synth)
	return nil
}

// PersistEvent snapshots the event's model (when it carries one) and
// appends the event to the manifest journal, fsyncing both before
// returning — the write-ahead half of deploy's persist-before-apply
// contract. Snapshot failures leave the journal untouched (the event
// never happened); journal append failures wedge the store fail-stop.
func (s *Store) PersistEvent(ev deploy.Event, m *model.Model) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bad {
		return corruptf("journal wedged by an earlier write failure; restart to recover")
	}
	if s.events >= journalCompactThreshold {
		// Best-effort: a failed compaction (all-or-nothing rewrite) leaves
		// the journal as it was and the append below proceeds — unless the
		// append handle was lost, which compactLocked reports by wedging.
		_ = s.compactLocked()
		if s.bad {
			return corruptf("journal wedged reopening after compaction; restart to recover")
		}
	}
	if m != nil {
		payload, err := m.Bytes()
		if err != nil {
			return fmt.Errorf("fleetstate: snapshot %s v%d: %w", ev.Dep, ev.Version, err)
		}
		snapName := fmt.Sprintf("%s-v%d.snap", safeName(ev.Dep), ev.Version)
		site := "fleetstate.snapshot." + ev.Dep
		if err := writeFileAtomic(s.snapshotPath(snapName), encodeSnapshot(payload), site); err != nil {
			return fmt.Errorf("fleetstate: snapshot %s v%d: %w", ev.Dep, ev.Version, err)
		}
		ev.Snap = snapName
		s.schemas[ev.Dep] = m.Prog.Schema
	}
	ev.Seq = s.seq + 1
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("fleetstate: journal: %w", err)
	}
	if err := s.appendJournal(frameLine(body)); err != nil {
		s.bad = true
		return fmt.Errorf("fleetstate: journal: %w", err)
	}
	s.seq = ev.Seq
	s.events++
	return nil
}

// appendJournal writes one framed line and fsyncs. The faultinject site
// "fleetstate.journal.append" injects disk errors and torn line writes —
// the torn case leaves exactly the partial tail a mid-append crash
// leaves, which replay must drop.
func (s *Store) appendJournal(line []byte) error {
	if keep, f := faultinject.Torn("fleetstate.journal.append"); f != nil {
		if f.Kind == faultinject.KindTorn {
			if keep > len(line) {
				keep = len(line)
			}
			_, _ = s.journal.Write(line[:keep])
			_ = s.journal.Sync()
			return f.Error()
		}
		return f.Error()
	}
	if _, err := s.journal.Write(line); err != nil {
		return err
	}
	return s.journal.Sync()
}

// noteSchema primes the per-deployment schema used to frame WAL records
// (recovery calls it for rebuilt deployments, whose deploy events —
// and with them, their schemas — predate this store handle).
func (s *Store) noteSchema(dep string, sch *schema.Schema) {
	s.mu.Lock()
	s.schemas[dep] = sch
	s.mu.Unlock()
}

// openWAL returns (opening or creating as needed) the deployment's WAL,
// truncating any torn tail left by a crash mid-append so new entries
// never merge into the leftover partial line. Caller holds s.mu.
func (s *Store) openWAL(dep string) (*wal, error) {
	if w, ok := s.wals[dep]; ok {
		return w, nil
	}
	w := &wal{
		path:     filepath.Join(s.dir, "wal", safeName(dep)+".wal"),
		ckptPath: filepath.Join(s.dir, "wal", safeName(dep)+".ckpt"),
	}
	recs, valid, torn, err := readWALFile(w.path)
	if err != nil {
		return nil, err
	}
	if torn {
		if err := os.Truncate(w.path, valid); err != nil {
			return nil, fmt.Errorf("fleetstate: wal %s: truncate torn tail: %w", dep, err)
		}
	}
	if n := len(recs); n > 0 {
		w.firstSeq = recs[0].seq
		w.seq = recs[n-1].seq
	}
	w.mark, err = readCheckpoint(w.ckptPath)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleetstate: wal %s: %w", dep, err)
	}
	if torn {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleetstate: wal %s: %w", dep, err)
		}
	}
	w.f = f
	s.wals[dep] = w
	return w, nil
}

// AppendIngest durably appends recs to the deployment's ingest WAL (one
// fsync per call), assigning consecutive sequence numbers. The whole
// batch is framed as a single WAL entry, so it is atomic on disk: a
// crash mid-append leaves a torn line that replay drops entirely —
// never a prefix of a batch the producer was told was rejected. Called
// by deploy.Ingest before the records enter the in-memory buffer; an
// error here rejects the ingest, so an accepted record is always
// replayable and a rejected one never is.
func (s *Store) AppendIngest(dep string, recs []*record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sch, ok := s.schemas[dep]
	if !ok {
		return fmt.Errorf("fleetstate: wal %s: deployment unknown to the store (no deploy event journaled)", dep)
	}
	w, err := s.openWAL(dep)
	if err != nil {
		return err
	}
	if w.bad {
		return corruptf("wal %s wedged by an earlier write failure; restart to recover", dep)
	}
	content := []byte(strconv.FormatInt(w.seq+1, 10) + " [")
	for i, r := range recs {
		body, err := record.MarshalRecord(r, sch)
		if err != nil {
			return fmt.Errorf("fleetstate: wal %s: %w", dep, err)
		}
		if i > 0 {
			content = append(content, ',')
		}
		content = append(content, body...)
	}
	content = append(content, ']')
	if err := w.append(dep, frameLine(content)); err != nil {
		w.bad = true
		return fmt.Errorf("fleetstate: wal %s: %w", dep, err)
	}
	w.seq += int64(len(recs))
	if w.firstSeq == 0 {
		w.firstSeq = 1
	}
	return nil
}

// append writes framed WAL lines and fsyncs, with the per-deployment
// faultinject site "fleetstate.wal.<dep>" for disk errors and torn
// appends.
func (w *wal) append(dep string, buf []byte) error {
	if keep, f := faultinject.Torn("fleetstate.wal." + dep); f != nil {
		if f.Kind == faultinject.KindTorn {
			if keep > len(buf) {
				keep = len(buf)
			}
			_, _ = w.f.Write(buf[:keep])
			_ = w.f.Sync()
			return f.Error()
		}
		return f.Error()
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

// CheckpointIngest durably marks every WAL record with sequence <= mark
// as processed (atomic write of the .ckpt file), and compacts the WAL
// file once enough processed records have accumulated at its head — the
// bound that keeps crash-replay work proportional to unprocessed ingest.
func (s *Store) CheckpointIngest(dep string, mark int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, err := s.openWAL(dep)
	if err != nil {
		return err
	}
	if mark <= w.mark {
		return nil // stale or duplicate checkpoint; the durable mark only advances
	}
	site := "fleetstate.ckpt." + dep
	if err := writeFileAtomic(w.ckptPath, []byte(strconv.FormatInt(mark, 10)), site); err != nil {
		return fmt.Errorf("fleetstate: checkpoint %s: %w", dep, err)
	}
	w.mark = mark
	if !w.bad && w.firstSeq > 0 && mark-w.firstSeq+1 >= walCompactThreshold {
		if err := s.compactWAL(dep, w); err != nil {
			return fmt.Errorf("fleetstate: compact wal %s: %w", dep, err)
		}
	}
	return nil
}

// compactWAL rewrites the WAL keeping only records after the checkpoint
// mark, preserving their sequence numbers. Caller holds s.mu.
func (s *Store) compactWAL(dep string, w *wal) error {
	recs, _, _, err := readWALFile(w.path)
	if err != nil {
		return err
	}
	var buf []byte
	first := int64(0)
	for _, r := range recs {
		if r.seq <= w.mark {
			continue
		}
		if first == 0 {
			first = r.seq
		}
		buf = append(buf, frameWALRec(r.seq, r.body)...)
	}
	if err := writeFileAtomic(w.path, buf, "fleetstate.wal.compact."+dep); err != nil {
		return err
	}
	// Reopen the append handle on the new inode.
	w.f.Close()
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	if first == 0 {
		first = w.mark + 1
	}
	w.firstSeq = first
	return nil
}

// walRec is one replayed WAL record: its sequence and the record JSON.
type walRec struct {
	seq  int64
	body []byte
}

// frameWALRec frames one record as a single-record batch entry —
// "<seq> [<body>]" — the shape compaction and recovery rewrites use.
func frameWALRec(seq int64, body []byte) []byte {
	content := make([]byte, 0, len(body)+22)
	content = strconv.AppendInt(content, seq, 10)
	content = append(content, ' ', '[')
	content = append(content, body...)
	content = append(content, ']')
	return frameLine(content)
}

// readWALFile reads and validates a WAL, expanding each entry — one
// atomically framed ingest batch, "<firstSeq> [rec,rec,...]" — into its
// records. A torn tail is dropped whole: the batch that wrote it was
// rejected, so none of its records were ever accepted (framing the
// batch as one entry is what makes that true for multi-record ingests
// too). valid/torn report the validated byte prefix so openWAL can
// truncate the dangling bytes before appending again.
func readWALFile(path string) (recs []walRec, valid int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, fmt.Errorf("fleetstate: wal: %w", err)
	}
	contents, n, err := parseFramedLines(data)
	if err != nil {
		return nil, 0, false, fmt.Errorf("fleetstate: wal: %w", err)
	}
	for i, c := range contents {
		sp := bytes.IndexByte(c, ' ')
		if sp < 1 {
			return nil, 0, false, corruptf("wal: entry %d: no sequence prefix", i)
		}
		first, err := strconv.ParseInt(string(c[:sp]), 10, 64)
		if err != nil {
			return nil, 0, false, corruptf("wal: entry %d: bad sequence: %v", i, err)
		}
		var bodies []json.RawMessage
		if err := json.Unmarshal(c[sp+1:], &bodies); err != nil {
			return nil, 0, false, corruptf("wal: entry %d: bad batch: %v", i, err)
		}
		for j, b := range bodies {
			recs = append(recs, walRec{seq: first + int64(j), body: b})
		}
	}
	return recs, int64(n), n < len(data), nil
}

// readCheckpoint reads a .ckpt mark (0 when none exists). The file is
// written atomically, so it is either absent or whole.
func readCheckpoint(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("fleetstate: checkpoint: %w", err)
	}
	mark, err := strconv.ParseInt(string(data), 10, 64)
	if err != nil {
		return 0, corruptf("checkpoint %s: %v", path, err)
	}
	return mark, nil
}

// Checkpoint journals an EventCheckpoint — the clean-shutdown marker a
// later Recover reports via Fleet.CleanShutdown. Call it after draining,
// as the last write before exit.
func (s *Store) Checkpoint() error {
	return s.PersistEvent(deploy.Event{Type: deploy.EventCheckpoint}, nil)
}

// Close releases the journal and WAL file handles. It does not journal
// anything — pair it with Checkpoint for a clean shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && first == nil {
			first = err
		}
		s.journal = nil
		s.bad = true // no appends after Close
	}
	for _, w := range s.wals {
		if w.f != nil {
			if err := w.f.Close(); err != nil && first == nil {
				first = err
			}
			w.f = nil
			w.bad = true
		}
	}
	return first
}

// loadSnapshot reads and CRC-validates a snapshot file and decodes the
// model inside it. Both layers report typed corruption (ErrCorrupt /
// model.ErrCorruptArtifact) so recovery can fall back to an older
// version instead of serving damaged weights.
func (s *Store) loadSnapshot(name string) (*model.Model, error) {
	data, err := os.ReadFile(s.snapshotPath(name))
	if err != nil {
		return nil, fmt.Errorf("fleetstate: snapshot %s: %w", name, err)
	}
	payload, err := decodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("fleetstate: snapshot %s: %w", name, err)
	}
	m, err := model.Load(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("fleetstate: snapshot %s: %w", name, err)
	}
	return m, nil
}
