// Package fleetstate makes an Overton fleet crash-safe: a -state-dir
// rooted durable store holding atomic, checksummed model snapshots, an
// append-only fleet manifest journal recording every lifecycle event
// (deploy, swap, shadow, promote, rollback, limits, loop start/stop), and
// a bounded per-deployment ingest write-ahead log — plus Recover, which
// replays them after a crash to rebuild the registry at its exact
// pre-crash state: versions, shadows, limits, loop policies, and every
// accepted-but-unprocessed ingest record.
//
// Durability discipline, shared with internal/deploy's persist hooks:
// everything is written before the in-memory mutation it describes
// applies (write-ahead), snapshots and checkpoint marks go through
// write-temp → fsync → rename (never a partial file at the final path),
// and both line-oriented logs frame every entry with a CRC so replay
// distinguishes a torn final write (dropped: the mutation never applied)
// from mid-file corruption (an error: history is damaged, refuse to
// guess).
//
// Both logs are bounded: a checkpoint compacts a WAL once enough
// processed records sit at its head, and the manifest journal is folded
// into a minimal snapshot of current fleet state (at Open, and whenever
// a live store crosses journalCompactThreshold), so replay cost tracks
// the fleet, not its lifetime. Torn tail bytes are truncated away when
// a log is opened for append, so a post-crash append never merges into
// a leftover partial line.
//
// Layout under the state dir:
//
//	journal.log              fleet manifest journal (framed JSONL)
//	snapshots/<dep>-v<N>.snap checksummed model artifacts
//	wal/<dep>.wal            ingest WAL (framed JSONL; one entry is one
//	                         atomic seq-numbered ingest batch)
//	wal/<dep>.ckpt           last processed WAL sequence
package fleetstate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
)

// ErrCorrupt is the sentinel wrapped by every torn-or-damaged-state error
// this package reports; use errors.Is.
var ErrCorrupt = errors.New("fleetstate: corrupt state")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// castagnoli is the CRC32-C table used for every checksum in the store.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameLine wraps one log entry as "%08x %s\n" — the CRC32-C of the
// content, a space, the content. Content must not contain a newline.
func frameLine(content []byte) []byte {
	out := make([]byte, 0, len(content)+10)
	out = fmt.Appendf(out, "%08x ", crc32.Checksum(content, castagnoli))
	out = append(out, content...)
	return append(out, '\n')
}

// parseFramedLines splits framed log data back into entry contents.
// A final entry that is incomplete or fails its CRC is a torn tail — the
// write it belonged to never finished, so the entry is dropped (valid <
// len(data); the caller truncates the file to valid before appending
// again, or the next append would merge with the leftover partial line).
// The same damage anywhere before the tail is corruption.
func parseFramedLines(data []byte) (contents [][]byte, valid int, err error) {
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		last := nl < 0 || nl == len(rest)-1
		var line []byte
		var consumed int
		if nl < 0 {
			line, consumed = rest, len(rest)
		} else {
			line, consumed = rest[:nl], nl+1
		}
		content, ok := checkFrame(line)
		if !ok {
			if last {
				return contents, valid, nil
			}
			return nil, 0, corruptf("framed log: entry %d damaged before the tail", len(contents))
		}
		contents = append(contents, content)
		valid += consumed
		rest = rest[consumed:]
	}
	return contents, valid, nil
}

// checkFrame validates one framed line, returning its content.
func checkFrame(line []byte) ([]byte, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, false
	}
	content := line[9:]
	return content, crc32.Checksum(content, castagnoli) == want
}

// writeFileAtomic writes data to path via temp file + fsync + rename +
// directory fsync, so the final path only ever holds the whole payload.
// The faultinject site lets tests inject disk errors and — with a torn
// fault — simulate the non-atomic failure this helper exists to prevent
// (partial bytes at the final path, as a dying kernel could leave).
func writeFileAtomic(path string, data []byte, site string) error {
	if keep, f := faultinject.Torn(site); f != nil {
		switch f.Kind {
		case faultinject.KindTorn:
			if keep > len(data) {
				keep = len(data)
			}
			_ = os.WriteFile(path, data[:keep], 0o644)
			return f.Error()
		case faultinject.KindDelay:
			time.Sleep(f.Delay)
		default:
			return f.Error()
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Snapshot framing: magic, format version, payload length, CRC32-C,
// payload. The explicit length catches truncation before the CRC pass.
const (
	snapMagic   = "OVSN"
	snapVersion = 1
	snapHeader  = 4 + 1 + 8 + 4
)

// encodeSnapshot frames a model artifact for disk.
func encodeSnapshot(payload []byte) []byte {
	out := make([]byte, snapHeader, snapHeader+len(payload))
	copy(out, snapMagic)
	out[4] = snapVersion
	binary.BigEndian.PutUint64(out[5:13], uint64(len(payload)))
	binary.BigEndian.PutUint32(out[13:17], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// decodeSnapshot validates a framed snapshot and returns its payload.
// Every failure wraps ErrCorrupt — the caller's cue to fall back to an
// older snapshot rather than serve damaged weights.
func decodeSnapshot(b []byte) ([]byte, error) {
	if len(b) < snapHeader {
		return nil, corruptf("snapshot: %d bytes, shorter than the header", len(b))
	}
	if string(b[:4]) != snapMagic {
		return nil, corruptf("snapshot: bad magic %q", b[:4])
	}
	if b[4] != snapVersion {
		return nil, corruptf("snapshot: unknown format version %d", b[4])
	}
	n := binary.BigEndian.Uint64(b[5:13])
	payload := b[snapHeader:]
	if uint64(len(payload)) != n {
		return nil, corruptf("snapshot: header claims %d payload bytes, file has %d", n, len(payload))
	}
	if got := crc32.Checksum(payload, castagnoli); got != binary.BigEndian.Uint32(b[13:17]) {
		return nil, corruptf("snapshot: payload checksum mismatch")
	}
	return payload, nil
}
