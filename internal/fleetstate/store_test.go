package fleetstate

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/deploy"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/workload"
)

func freshModel(t testing.TB, seed int64) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, Dropout: 0, BatchSize: 8,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func goodRecord(t testing.TB, m *model.Model) *record.Record {
	t.Helper()
	rec := &record.Record{Payloads: map[string]record.PayloadValue{
		"tokens":   {Tokens: []string{"how", "tall", "is", "obama"}},
		"query":    {String: "how tall is obama"},
		"entities": {Set: []record.SetMember{{ID: "Barack_Obama", Start: 3, End: 4}}},
	}}
	if err := record.Validate(rec, m.Prog.Schema); err != nil {
		t.Fatal(err)
	}
	return rec
}

// newFleet opens a store in dir and registers one deployment "main" at
// version 1 through it, returning both plus the registry.
func newFleet(t *testing.T, dir string) (*Store, *deploy.Registry, *deploy.Deployment) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := deploy.NewRegistry()
	reg.SetPersister(st)
	d := deploy.New("main", freshModel(t, 1), 1)
	if err := reg.Add(d); err != nil {
		t.Fatal(err)
	}
	return st, reg, d
}

// TestRecoverEmptyDir pins the first-boot path: an absent state dir
// recovers to an empty fleet, ready for deploys.
func TestRecoverEmptyDir(t *testing.T) {
	fleet, err := Recover(filepath.Join(t.TempDir(), "fresh"))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	if n := len(fleet.Registry.Names()); n != 0 {
		t.Fatalf("empty dir recovered %d deployments", n)
	}
	if fleet.CleanShutdown {
		t.Fatal("empty journal reported a clean shutdown")
	}
}

// TestRecoverRoundTrip drives the full lifecycle through a persisted
// registry — deploy, limits, shadow, promote, loop start, ingest — shuts
// down cleanly, and asserts recovery rebuilds every piece of it exactly.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, reg, d := newFleet(t, dir)

	if err := d.SetLimits(deploy.Limits{QPS: 50, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := d.SetShadow(freshModel(t, 3), 3); err != nil {
		t.Fatal(err)
	}
	if err := d.StartLoop(deploy.LoopConfig{Interval: time.Hour, MinRetrainBatch: 7}); err != nil {
		t.Fatal(err)
	}
	rec := goodRecord(t, freshModel(t, 1))
	for i := 0; i < 5; i++ {
		if _, err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Graceful shutdown: close (journals nothing) and checkpoint.
	reg.Close()
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	if !fleet.CleanShutdown {
		t.Fatal("checkpointed journal not reported as a clean shutdown")
	}
	rd, ok := fleet.Registry.Get("main")
	if !ok {
		t.Fatal("deployment not recovered")
	}
	if v := rd.Version(); v != 2 {
		t.Fatalf("recovered version %d, want promoted 2", v)
	}
	if lim := rd.Limits(); lim.QPS != 50 || lim.QueueDepth != 8 {
		t.Fatalf("limits not recovered: %+v", lim)
	}
	st2 := rd.Stats()
	if st2.ShadowVersion != 3 {
		t.Fatalf("shadow v3 not recovered: %+v", st2)
	}
	if st2.Buffered != 5 || fleet.Replayed["main"] != 5 {
		t.Fatalf("WAL replay wrong: buffered=%d replayed=%d, want 5", st2.Buffered, fleet.Replayed["main"])
	}
	cfg, ok := fleet.Loops["main"]
	if !ok || cfg.MinRetrainBatch != 7 || cfg.Interval != time.Hour {
		t.Fatalf("loop config not recovered: %+v (ok=%v)", cfg, ok)
	}
	if fleet.Default != "main" {
		t.Fatalf("default = %q, want main", fleet.Default)
	}
	// The recovered deployment must serve, and new mutations must journal
	// (recover again and see them).
	if _, _, err := rd.Predict(goodRecord(t, freshModel(t, 1))); err != nil {
		t.Fatalf("recovered deployment cannot serve: %v", err)
	}
	if err := rd.Swap(freshModel(t, 9), 9); err != nil {
		t.Fatal(err)
	}
	fleet.Registry.Close()
	fleet.Store.Close()
	fleet2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet2.Store.Close()
	defer fleet2.Registry.Close()
	rd2, _ := fleet2.Registry.Get("main")
	if v := rd2.Version(); v != 9 {
		t.Fatalf("post-recovery swap not journaled: recovered v%d, want 9", v)
	}
}

// TestExplicitLoopStopSurvivesRecovery pins the loop-state semantics: an
// operator's StopLoop is durable (the loop must NOT restart), while a
// crash with the loop running leaves it in Fleet.Loops for restart.
func TestExplicitLoopStopSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	st, reg, d := newFleet(t, dir)
	if err := d.StartLoop(deploy.LoopConfig{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	d.StopLoop()
	reg.Close()
	st.Close()

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Store.Close()
	defer fleet.Registry.Close()
	if _, ok := fleet.Loops["main"]; ok {
		t.Fatal("explicitly stopped loop came back after recovery")
	}
}

// TestTornJournalTailDropped pins torn-write tolerance: a partial final
// journal line (the write a crash interrupted) is dropped — the fleet
// recovers at the last fully journaled state — while damage earlier in
// the journal is corruption and must refuse to recover.
func TestTornJournalTailDropped(t *testing.T) {
	dir := t.TempDir()
	st, reg, d := newFleet(t, dir)
	if err := d.Swap(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	st.Close()

	jpath := filepath.Join(dir, "journal.log")
	// Tear the tail: append half of a plausible frame.
	pristine, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, pristine...), []byte(`deadbeef {"type":"swap","dep":"ma`)...)
	if err := os.WriteFile(jpath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	fleet, err := Recover(dir)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	rd, _ := fleet.Registry.Get("main")
	if v := rd.Version(); v != 2 {
		t.Fatalf("recovered v%d, want 2 (the last whole event)", v)
	}
	fleet.Registry.Close()
	fleet.Store.Close()

	// Mid-file damage: flip a byte inside the first line.
	damaged := append([]byte{}, pristine...)
	damaged[12] ^= 0xff
	if err := os.WriteFile(jpath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-journal damage must refuse recovery with ErrCorrupt, got %v", err)
	}
}

// TestWALCheckpointBoundsReplay pins the checkpoint contract: records at
// or below the mark are not replayed, records above it all are, and the
// post-recovery WAL renumbering keeps a second crash-recover cycle
// exact.
func TestWALCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _, d := newFleet(t, dir)
	rec := goodRecord(t, freshModel(t, 1))
	for i := 0; i < 10; i++ {
		if _, err := d.Ingest(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckpointIngest("main", 4); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Checkpoint.
	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := fleet.Registry.Get("main")
	if got := fleet.Replayed["main"]; got != 6 {
		t.Fatalf("replayed %d records, want 6 (10 ingested - 4 checkpointed)", got)
	}
	ingested, buffered, _ := rd.IngestStats()
	if ingested != 6 || buffered != 6 {
		t.Fatalf("buffer counters wrong after replay: ingested=%d buffered=%d", ingested, buffered)
	}
	// Drain with the store attached checkpoints immediately; a second
	// crash-recovery must replay nothing.
	if got := len(rd.Drain()); got != 6 {
		t.Fatalf("drained %d, want 6", got)
	}
	fleet2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet2.Store.Close()
	defer fleet2.Registry.Close()
	if got := fleet2.Replayed["main"]; got != 0 {
		t.Fatalf("drained records replayed after second crash: %d", got)
	}
	fleet.Registry.Close()
	fleet.Store.Close()
}

// TestJournalCompaction pins the journal growth bound: once the event
// count crosses journalCompactThreshold the live store folds the
// journal into a compact snapshot of fleet state, and recovery from the
// compacted journal reproduces that state exactly — versions, shadow,
// latest limits, default, clean-shutdown marker — with new mutations
// journaling (and recovering) on top of it.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	st, reg, d := newFleet(t, dir)
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	churn := journalCompactThreshold + 50
	for i := 0; i < churn; i++ {
		if err := d.SetLimits(deploy.Limits{QPS: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	evs, _, _, err := st.readJournal()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) >= journalCompactThreshold {
		t.Fatalf("journal holds %d events after %d mutations; compaction never ran", len(evs), churn)
	}
	reg.Close()
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	fleet, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.CleanShutdown {
		t.Fatal("checkpoint lost in compaction")
	}
	if fleet.Default != "main" {
		t.Fatalf("default = %q, want main", fleet.Default)
	}
	rd, ok := fleet.Registry.Get("main")
	if !ok {
		t.Fatal("deployment lost in compaction")
	}
	if v := rd.Version(); v != 1 {
		t.Fatalf("recovered v%d, want 1", v)
	}
	if stats := rd.Stats(); stats.ShadowVersion != 2 {
		t.Fatalf("shadow lost in compaction: %+v", stats)
	}
	if lim := rd.Limits(); lim.QPS != float64(churn) {
		t.Fatalf("limits QPS = %v, want the last set value %d", lim.QPS, churn)
	}
	// The compacted journal keeps accepting and replaying new events.
	if err := rd.Swap(freshModel(t, 3), 3); err != nil {
		t.Fatal(err)
	}
	fleet.Registry.Close()
	fleet.Store.Close()
	fleet2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet2.Store.Close()
	defer fleet2.Registry.Close()
	rd2, _ := fleet2.Registry.Get("main")
	if v := rd2.Version(); v != 3 {
		t.Fatalf("post-compaction swap lost: recovered v%d, want 3", v)
	}
}

// TestSnapshotFrameRejectsDamage covers the snapshot codec directly:
// truncation, magic damage, payload bit flips.
func TestSnapshotFrameRejectsDamage(t *testing.T) {
	payload := []byte("not quite a model but bytes all the same")
	framed := encodeSnapshot(payload)
	if got, err := decodeSnapshot(framed); err != nil || string(got) != string(payload) {
		t.Fatalf("pristine round-trip failed: %v", err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated-header":  func(b []byte) []byte { return b[:snapHeader-2] },
		"truncated-payload": func(b []byte) []byte { return b[:len(b)-3] },
		"bad-magic":         func(b []byte) []byte { b[0] = 'X'; return b },
		"bad-version":       func(b []byte) []byte { b[4] = 99; return b },
		"payload-flip":      func(b []byte) []byte { b[snapHeader+5] ^= 0x01; return b },
		"crc-flip":          func(b []byte) []byte { b[14] ^= 0x01; return b },
	} {
		b := mutate(append([]byte{}, framed...))
		if _, err := decodeSnapshot(b); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}
