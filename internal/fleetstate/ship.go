package fleetstate

// Snapshot shipping: the cluster tier moves model artifacts between the
// router and its replicas over HTTP, and it reuses the exact on-disk
// snapshot framing (magic + format version + length + CRC32-C) so a
// shipped artifact is validated the same way a recovered one is — a torn
// or bit-flipped transfer fails decode with ErrCorrupt instead of
// loading damaged weights.

// EncodeSnapshot frames a model artifact with the store's checksummed
// snapshot header — the wire format for shipping a snapshot between
// processes.
func EncodeSnapshot(payload []byte) []byte { return encodeSnapshot(payload) }

// DecodeSnapshot validates a framed snapshot and returns its payload.
// Every failure wraps ErrCorrupt.
func DecodeSnapshot(b []byte) ([]byte, error) { return decodeSnapshot(b) }
