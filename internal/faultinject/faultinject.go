// Package faultinject is a deterministic, test-only failpoint registry.
// Production code threads named sites through its crash-critical paths
// (snapshot writes, journal appends, model inference); tests arm faults
// against those sites — an error return, a panic, a delay, or a torn
// write — on exact hit numbers or seeded pseudo-random schedules, then
// assert the system recovers. With no registry enabled (the production
// default) a site check is one atomic pointer load and a nil test.
//
// Determinism is the point: a schedule is a pure function of how it was
// armed (hit numbers, or a seed), never of wall-clock time or map order,
// so a crash-recovery test that kills a promote on the third journal
// append kills it on the third append every run, including under -race.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind selects what a triggered fault does at its site.
type Kind int

// The fault kinds.
const (
	// KindError makes the site return Err.
	KindError Kind = iota
	// KindPanic makes the site panic with Err (or a default message).
	KindPanic
	// KindDelay makes the site sleep for Delay, then proceed normally.
	KindDelay
	// KindTorn makes a write site persist only the first Bytes bytes of
	// its payload and then fail as if the process died mid-write.
	KindTorn
)

// ErrInjected is the default error carried by injected faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is one armed failure. The zero value is a KindError fault
// carrying ErrInjected.
type Fault struct {
	// Kind selects the failure mode.
	Kind Kind
	// Err is the error to return (KindError) or panic value (KindPanic);
	// nil defaults to ErrInjected.
	Err error
	// Delay is how long a KindDelay fault sleeps.
	Delay time.Duration
	// Bytes is how many payload bytes a KindTorn write keeps.
	Bytes int
}

// Error returns the fault's error, defaulting to ErrInjected.
func (f *Fault) Error() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// site is the per-site schedule state: an exact-hit table, an optional
// every-hit fault, an optional seeded schedule, and the hit counter.
type site struct {
	hits   int
	at     map[int]Fault
	every  *Fault
	seeded *seededSchedule
}

type seededSchedule struct {
	rng   *rand.Rand
	prob  float64
	fault Fault
}

// Registry holds armed faults keyed by site name. Arm it before the code
// under test runs, Enable it, and Disable it when done (tests should
// defer Disable). Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	sites map[string]*site
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sites: map[string]*site{}}
}

func (r *Registry) site(name string) *site {
	s, ok := r.sites[name]
	if !ok {
		s = &site{at: map[int]Fault{}}
		r.sites[name] = s
	}
	return s
}

// Arm schedules f to fire on exactly the hit-th Check of the named site
// (1-based). Arming the same hit twice replaces the earlier fault.
func (r *Registry) Arm(name string, hit int, f Fault) *Registry {
	if hit < 1 {
		panic(fmt.Sprintf("faultinject: hit %d must be >= 1", hit))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.site(name).at[hit] = f
	return r
}

// ArmEvery schedules f to fire on every Check of the named site.
// Exact-hit arms take precedence on their hits.
func (r *Registry) ArmEvery(name string, f Fault) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := f
	r.site(name).every = &cp
	return r
}

// ArmSeeded schedules f to fire on each Check of the named site with
// probability prob, driven by a private rand.Rand seeded with seed — the
// schedule is fully determined by (seed, prob, hit sequence). Exact-hit
// and every-hit arms take precedence.
func (r *Registry) ArmSeeded(name string, seed int64, prob float64, f Fault) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.site(name).seeded = &seededSchedule{
		rng: rand.New(rand.NewSource(seed)), prob: prob, fault: f,
	}
	return r
}

// Hits reports how many times the named site has been checked since the
// registry was created (0 for a never-hit site).
func (r *Registry) Hits(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return s.hits
	}
	return 0
}

// check counts a hit and returns the fault scheduled for it, if any.
func (r *Registry) check(name string) *Fault {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.site(name)
	s.hits++
	if f, ok := s.at[s.hits]; ok {
		return &f
	}
	if s.every != nil {
		cp := *s.every
		return &cp
	}
	if sch := s.seeded; sch != nil && sch.rng.Float64() < sch.prob {
		cp := sch.fault
		return &cp
	}
	return nil
}

// active is the globally enabled registry (nil in production).
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide active registry. Tests that
// enable a registry must Disable it before finishing; the global is
// process-wide, so faultinject tests cannot run in parallel with each
// other.
func Enable(r *Registry) { active.Store(r) }

// Disable removes the active registry; every site check becomes a no-op.
func Disable() { active.Store(nil) }

// Check counts one hit of the named site against the active registry and
// returns the fault scheduled for that hit, or nil (always nil when no
// registry is enabled). Callers decide how to apply the fault; most use
// the Fire or Torn helpers instead.
func Check(name string) *Fault {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.check(name)
}

// Fire evaluates the named site for the common non-write case: it
// returns the fault's error (KindError), panics (KindPanic), sleeps then
// returns nil (KindDelay), or returns the error for a KindTorn fault
// armed at a non-write site. Returns nil when nothing fires.
func Fire(name string) error {
	f := Check(name)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindPanic:
		panic(f.Error())
	case KindDelay:
		time.Sleep(f.Delay)
		return nil
	default:
		return f.Error()
	}
}

// Torn evaluates the named site for a write: ok is false when no fault
// fires (write everything). When a KindTorn fault fires, keep is how
// many payload bytes to persist before failing with the fault's error;
// other kinds behave as in Fire (with keep undefined).
func Torn(name string) (keep int, f *Fault) {
	f = Check(name)
	if f == nil {
		return 0, nil
	}
	if f.Kind == KindTorn {
		return f.Bytes, f
	}
	return 0, f
}
