package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFaultInjectDisabledIsNoop(t *testing.T) {
	Disable()
	if f := Check("any.site"); f != nil {
		t.Fatalf("disabled check returned %+v", f)
	}
	if err := Fire("any.site"); err != nil {
		t.Fatalf("disabled fire returned %v", err)
	}
}

func TestFaultInjectExactHit(t *testing.T) {
	r := NewRegistry()
	r.Arm("s", 3, Fault{Kind: KindError})
	Enable(r)
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := Fire("s")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit 3: want injected error, got %v", err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
	if got := r.Hits("s"); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
}

func TestFaultInjectCustomError(t *testing.T) {
	boom := errors.New("boom")
	r := NewRegistry().Arm("s", 1, Fault{Kind: KindError, Err: boom})
	Enable(r)
	defer Disable()
	if err := Fire("s"); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestFaultInjectEvery(t *testing.T) {
	r := NewRegistry().ArmEvery("s", Fault{Kind: KindError})
	Enable(r)
	defer Disable()
	for i := 0; i < 3; i++ {
		if err := Fire("s"); err == nil {
			t.Fatalf("hit %d: want error", i+1)
		}
	}
}

func TestFaultInjectPanic(t *testing.T) {
	r := NewRegistry().Arm("s", 1, Fault{Kind: KindPanic})
	Enable(r)
	defer Disable()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	_ = Fire("s")
}

func TestFaultInjectDelay(t *testing.T) {
	r := NewRegistry().Arm("s", 1, Fault{Kind: KindDelay, Delay: 10 * time.Millisecond})
	Enable(r)
	defer Disable()
	start := time.Now()
	if err := Fire("s"); err != nil {
		t.Fatalf("delay fault must not error: %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("delay fault did not sleep")
	}
}

func TestFaultInjectTorn(t *testing.T) {
	r := NewRegistry().Arm("w", 2, Fault{Kind: KindTorn, Bytes: 7})
	Enable(r)
	defer Disable()
	if keep, f := Torn("w"); f != nil {
		t.Fatalf("hit 1: unexpected fault %+v (keep=%d)", f, keep)
	}
	keep, f := Torn("w")
	if f == nil || f.Kind != KindTorn || keep != 7 {
		t.Fatalf("hit 2: want torn keep=7, got keep=%d fault=%+v", keep, f)
	}
}

// TestFaultInjectSeededDeterministic pins that a seeded schedule fires on
// the same hit sequence every run: two registries with the same seed make
// identical decisions, and a different seed makes different ones (for
// this particular seed pair).
func TestFaultInjectSeededDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		r := NewRegistry().ArmSeeded("s", seed, 0.5, Fault{Kind: KindError})
		Enable(r)
		defer Disable()
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Fire("s") != nil)
		}
		return out
	}
	a, b := fire(42), fire(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := fire(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 64-hit schedules")
	}
}
