package model

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/labelmodel"
	"repro/internal/opt"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/workload"
)

// trainRun drives `steps` optimisation steps over fixed contiguous batches
// of ds using step (either Model.TrainStep or ParallelTrainer.TrainStep)
// and returns the per-step losses.
func trainRun(t *testing.T, ds *record.Dataset,
	step func([]*record.Record, []int, map[string]*labelmodel.TaskTargets, LossConfig, opt.Optimizer, float64, float64, *rand.Rand) (float64, error),
	optimizer opt.Optimizer, targets map[string]*labelmodel.TaskTargets, steps, batch int, seed int64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var losses []float64
	n := len(ds.Records)
	for s := 0; s < steps; s++ {
		lo := (s * batch) % n
		hi := lo + batch
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		loss, err := step(ds.Records[lo:hi], idx, targets, LossConfig{}, optimizer, 0.01, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return losses
}

// TestParallelTrainW1Bitwise: a one-worker ParallelTrainer must be
// bitwise identical to the serial TrainStep — same per-step losses, same
// parameters after training — across encoders, with dropout active (the
// single worker borrows the caller's rng, so even the masks replay), and
// through the full fused reduce+clip+step path.
func TestParallelTrainW1Bitwise(t *testing.T) {
	for _, tc := range []struct {
		name    string
		encoder string
		dropout float64
	}{
		{"cnn", "CNN", 0},
		{"cnn-dropout", "CNN", 0.25},
		{"gru", "GRU", 0},
		{"bow", "BOW", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := testChoice()
			c.Encoder = tc.encoder
			c.Dropout = tc.dropout
			serial := buildModel(t, c, nil)
			parallel := buildModel(t, c, nil)
			ds := smallDataset(t, 48, 17)
			targets := combineAll(t, ds)

			pt, err := NewParallelTrainer(parallel, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer pt.Close()

			lossesS := trainRun(t, ds, serial.TrainStep, opt.NewAdam(serial.PS.All()), targets, 8, 16, 1)
			lossesP := trainRun(t, ds, pt.TrainStep, opt.NewAdam(parallel.PS.All()), targets, 8, 16, 1)
			for i := range lossesS {
				if lossesS[i] != lossesP[i] {
					t.Fatalf("step %d loss differs: serial %v parallel %v", i, lossesS[i], lossesP[i])
				}
			}
			for _, p := range serial.PS.All() {
				q := parallel.PS.Get(p.Name)
				for j, v := range p.Node.Value.Data {
					if v != q.Node.Value.Data[j] {
						t.Fatalf("param %s[%d] differs bitwise: %v vs %v", p.Name, j, v, q.Node.Value.Data[j])
					}
				}
			}
		})
	}
}

// TestParallelTrainShardedMatchesSerial: W in {2,4,8} must track the
// serial loss trajectory within 1e-9 (table-driven; dropout 0 so the only
// divergence is float re-association across shard boundaries) and leave
// parameters within 1e-9 of the serial run's.
func TestParallelTrainShardedMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		choice  func() schema.Choice
		slices  []string
	}{
		{"W2", 2, testChoice, nil},
		{"W4", 4, testChoice, nil},
		{"W8", 8, testChoice, nil},
		{"W4-gru", 4, func() schema.Choice { c := testChoice(); c.Encoder = "GRU"; return c }, nil},
		{"W4-sliced", 4, testChoice, []string{workload.SliceNutrition, workload.SliceDisambig}},
		// Dropout on: record-keyed masks replay the serial schedule
		// bitwise under any shard split, so the 1e-9 re-association bound
		// holds with stochastic regularisation active too.
		{"W2-dropout", 2, func() schema.Choice { c := testChoice(); c.Dropout = 0.25; return c }, nil},
		{"W4-dropout", 4, func() schema.Choice { c := testChoice(); c.Dropout = 0.25; return c }, nil},
		{"W4-gru-dropout", 4, func() schema.Choice {
			c := testChoice()
			c.Encoder = "GRU"
			c.Dropout = 0.3
			return c
		}, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := buildModel(t, tc.choice(), tc.slices)
			parallel := buildModel(t, tc.choice(), tc.slices)
			ds := smallDataset(t, 48, 23)
			targets := combineAll(t, ds)

			pt, err := NewParallelTrainer(parallel, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			defer pt.Close()

			lossesS := trainRun(t, ds, serial.TrainStep, opt.NewAdam(serial.PS.All()), targets, 12, 24, 1)
			lossesP := trainRun(t, ds, pt.TrainStep, opt.NewAdam(parallel.PS.All()), targets, 12, 24, 1)
			for i := range lossesS {
				if d := math.Abs(lossesS[i] - lossesP[i]); d > 1e-9 {
					t.Fatalf("step %d loss diverged by %.3g: serial %v parallel %v", i, d, lossesS[i], lossesP[i])
				}
			}
			for _, p := range serial.PS.All() {
				q := parallel.PS.Get(p.Name)
				for j, v := range p.Node.Value.Data {
					if d := math.Abs(v - q.Node.Value.Data[j]); d > 1e-9 {
						t.Fatalf("param %s[%d] diverged by %.3g", p.Name, j, d)
					}
				}
			}
		})
	}
}

// TestParallelTrainDeterministic: two identical W=3 runs must produce
// bitwise-identical losses and parameters — the fixed shard split, tree
// reduction order, and record-keyed dropout streams make the parallel
// path reproducible run-to-run even with dropout active.
func TestParallelTrainDeterministic(t *testing.T) {
	for _, dropout := range []float64{0, 0.25} {
		t.Run(fmt.Sprintf("dropout=%g", dropout), func(t *testing.T) {
			run := func() ([]float64, *Model) {
				c := testChoice()
				c.Dropout = dropout
				m := buildModel(t, c, nil)
				ds := smallDataset(t, 40, 29)
				targets := combineAll(t, ds)
				pt, err := NewParallelTrainer(m, 3)
				if err != nil {
					t.Fatal(err)
				}
				defer pt.Close()
				return trainRun(t, ds, pt.TrainStep, opt.NewAdam(m.PS.All()), targets, 10, 20, 5), m
			}
			lossesA, mA := run()
			lossesB, mB := run()
			for i := range lossesA {
				if lossesA[i] != lossesB[i] {
					t.Fatalf("step %d nondeterministic: %v vs %v", i, lossesA[i], lossesB[i])
				}
			}
			for _, p := range mA.PS.All() {
				q := mB.PS.Get(p.Name)
				for j, v := range p.Node.Value.Data {
					if v != q.Node.Value.Data[j] {
						t.Fatalf("param %s[%d] nondeterministic", p.Name, j)
					}
				}
			}
		})
	}
}

// TestParallelTrainReducesLoss: the data-parallel trainer actually
// optimises (W=4 over repeated full-dataset batches), and the trained
// model serves predictions afterwards (worker views must not leak into
// the serving path).
func TestParallelTrainReducesLoss(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 32, 17)
	targets := combineAll(t, ds)
	pt, err := NewParallelTrainer(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	losses := trainRun(t, ds, pt.TrainStep, opt.NewAdam(m.PS.All()), targets, 30, 32, 1)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", losses[0], losses[len(losses)-1])
	}
	pt.Close()
	if _, err := m.Predict(ds.Records[:4]); err != nil {
		t.Fatalf("predict after parallel training: %v", err)
	}
	if _, err := pt.TrainStep(ds.Records[:4], []int{0, 1, 2, 3}, targets, LossConfig{}, opt.NewAdam(m.PS.All()), 0.01, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("TrainStep on a closed trainer should fail")
	}
}

// TestParallelTrainEdgeCases: empty batches error, batches smaller than W
// clamp the shard count, and a batch with no supervision reproduces the
// serial error.
func TestParallelTrainEdgeCases(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 8, 31)
	targets := combineAll(t, ds)
	pt, err := NewParallelTrainer(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Close()
	optimizer := opt.NewAdam(m.PS.All())
	rng := rand.New(rand.NewSource(2))

	if _, err := pt.TrainStep(nil, nil, targets, LossConfig{}, optimizer, 0.01, 5, rng); err == nil {
		t.Fatalf("empty batch should error")
	}
	// Two records across four workers: must clamp to two shards and work.
	if _, err := pt.TrainStep(ds.Records[:2], []int{0, 1}, targets, LossConfig{}, optimizer, 0.01, 5, rng); err != nil {
		t.Fatal(err)
	}
	// No supervision at all mirrors the serial error.
	if _, err := pt.TrainStep(ds.Records[:2], []int{0, 1}, map[string]*labelmodel.TaskTargets{}, LossConfig{}, optimizer, 0.01, 5, rng); err == nil {
		t.Fatalf("unsupervised batch should error")
	}
	// Zeroing every task weight also mirrors the serial error: the serial
	// Loss drops zero-coefficient terms and errors with none left.
	zeroed := LossConfig{TaskWeights: map[string]float64{}}
	for tname := range targets {
		zeroed.TaskWeights[tname] = 0
	}
	if _, serr := m.TrainStep(ds.Records[:2], []int{0, 1}, targets, zeroed, optimizer, 0.01, 5, rng); serr == nil {
		t.Fatalf("serial zero-weight batch should error")
	}
	if _, perr := pt.TrainStep(ds.Records[:2], []int{0, 1}, targets, zeroed, optimizer, 0.01, 5, rng); perr == nil {
		t.Fatalf("parallel zero-weight batch should error like serial")
	}

	if _, err := NewParallelTrainer(m, 0); err == nil {
		t.Fatalf("zero workers should error")
	}
}

// TestParallelTrainErrorLeavesNoResidue: when one worker fails mid-step
// (here: a record with no token payload), gradients other workers already
// accumulated must be dropped — a trainer that skips the failed batch and
// keeps going must behave exactly like one that never saw it (the serial
// TrainStep errors before backward, leaving no residue either).
func TestParallelTrainErrorLeavesNoResidue(t *testing.T) {
	ds := smallDataset(t, 8, 41)
	targets := combineAll(t, ds)
	mA := buildModel(t, testChoice(), nil)
	mB := buildModel(t, testChoice(), nil)
	ptA, err := NewParallelTrainer(mA, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ptA.Close()
	ptB, err := NewParallelTrainer(mB, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ptB.Close()

	// Worker 0's shard is fine, worker 1's record has no token payload.
	bad := *ds.Records[1]
	bad.Payloads = map[string]record.PayloadValue{}
	optA := opt.NewAdam(mA.PS.All())
	if _, err := ptA.TrainStep([]*record.Record{ds.Records[0], &bad}, []int{0, 1}, targets, LossConfig{}, optA, 0.01, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatalf("step with a payload-less record should fail")
	}
	lossA, err := ptA.TrainStep(ds.Records[:4], []int{0, 1, 2, 3}, targets, LossConfig{}, optA, 0.01, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	lossB, err := ptB.TrainStep(ds.Records[:4], []int{0, 1, 2, 3}, targets, LossConfig{}, opt.NewAdam(mB.PS.All()), 0.01, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if lossA != lossB {
		t.Fatalf("failed step left gradient residue: loss %v vs %v", lossA, lossB)
	}
	for _, p := range mA.PS.All() {
		q := mB.PS.Get(p.Name)
		for j, v := range p.Node.Value.Data {
			if v != q.Node.Value.Data[j] {
				t.Fatalf("param %s[%d] differs after recovered error", p.Name, j)
			}
		}
	}
}

// TestParallelTrainRace exercises the cross-worker machinery under the
// race detector: W=4 workers share parameter values and the task targets
// while writing private grads, arenas, and batch scratch.
func TestParallelTrainRace(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 64, 37)
	targets := combineAll(t, ds)
	pt, err := NewParallelTrainer(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pt.Close()
	trainRun(t, ds, pt.TrainStep, opt.NewAdam(m.PS.All()), targets, 12, 32, 3)
}
