package model

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Reduced-precision folded forward (see fold32.go for the snapshot).
//
// forward32 mirrors the folded serve path op for op in plain float32
// loops — encoder tables, pooling, and every decoder head — with no
// graph tape at all: the only nodes it creates are the float64-converted
// final logits, so decode/calibration/monitor comparisons downstream are
// untouched. Intermediates come from a per-session bump allocator
// (scratch32), so the steady state allocates nothing beyond the f64
// output tensors the f64 path also produces. Arithmetic follows the same
// accumulation orders as the f64 folded path; the parity harness pins
// logit deltas at 1e-4 relative and decision agreement at 100%.

// scratch32 is a grow-only bump allocator for float32 intermediates,
// owned by a session's forwardState and reset per pass.
type scratch32 struct {
	buf []float32
	off int
}

func (s *scratch32) reset() { s.off = 0 }

// alloc returns a zeroed rows x cols tensor view over the scratch
// buffer. On growth the old buffer is abandoned (outstanding views stay
// valid); the next pass reuses the larger one.
func (s *scratch32) alloc(rows, cols int) tensor.Tensor32 {
	n := rows * cols
	if s.off+n > len(s.buf) {
		grow := 2 * len(s.buf)
		if grow < s.off+n {
			grow = s.off + n
		}
		s.buf = make([]float32, grow)
		s.off = 0
	}
	data := s.buf[s.off : s.off+n]
	s.off += n
	for i := range data {
		data[i] = 0
	}
	return tensor.Tensor32{Rows: rows, Cols: cols, Data: data}
}

// constF64 widens a float32 tensor into an arena-backed f64 constant
// node — the only crossing point back into the graph world.
func constF64(g *nn.Graph, t *tensor.Tensor32) *nn.Node {
	out := g.NewTensor(t.Rows, t.Cols)
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return g.Const(out)
}

// The float32 plane uses float32-accuracy transcendentals (~1 ulp, see
// tensor/math32.go) rather than rounding 53-bit math.Exp results: on
// recurrent encoders the gate nonlinearities rival the matmuls for serve
// time, and the approximation error (~1e-7 relative) sits at the same
// order as float32 storage rounding — inside the 1e-4 parity budget.
func sigmoid32(v float32) float32 { return tensor.Sigmoid32(v) }

func tanh32(v float32) float32 { return tensor.Tanh32(v) }

func relu32(data []float32) {
	for i, v := range data {
		if v < 0 {
			data[i] = 0
		}
	}
}

// forward applies the affine map dst = x @ W + b. dst must be x.Rows x
// w.Cols scratch distinct from x.
func (l *linear32) forward(dst, x *tensor.Tensor32) {
	tensor.MatMul32(dst, x, l.w)
	for r := 0; r < dst.Rows; r++ {
		tensor.AddRow32(dst.Row(r), l.b)
	}
}

// forward32 runs the reduced-precision folded forward, populating st
// with float64-converted outputs. Returns false when the fast path does
// not apply (caller falls back to the f64 path).
func (m *Model) forward32(g *nn.Graph, b *Batch, st *forwardState) bool {
	s := m.serve32Snapshot()
	if s == nil {
		return false
	}
	sc := &st.sc32
	sc.reset()
	B, L, H := b.B, b.L, s.H

	// Encoder.
	h := sc.alloc(B*L, H)
	switch {
	case s.conv != nil:
		convForward32(s.conv, b, &h)
	case s.gru != nil:
		gruScan32(sc, s.gru, b, &h, 0, false)
	case s.biF != nil:
		hw := s.biF.uz.Rows
		gruScan32(sc, s.biF, b, &h, 0, false)
		gruScan32(sc, s.biB, b, &h, hw, true)
	default: // BOW: token t's representation is the embedding row.
		for r, id := range b.TokenIDs[:B*L] {
			copy(h.Row(r), s.emb.Row(id))
		}
	}
	st.tokenRep = constF64(g, &h)

	// Query payload: pooled token representation.
	q := sc.alloc(B, H)
	if m.Prog.Choice.QueryAgg == "max" {
		maskedMaxPool32(&q, &h, b.Mask, B, L)
	} else {
		maskedMeanPool32(&q, &h, b.Mask, B, L)
	}
	st.queryRep = constF64(g, &q)

	// Token-task heads.
	for _, tname := range m.Prog.TokenTasks {
		lh := s.tokenHeads[tname]
		logits := sc.alloc(B*L, lh.w.Cols)
		lh.forward(&logits, &h)
		st.tokenLogits[tname] = constF64(g, &logits)
	}

	// Example-task heads.
	for _, tname := range m.Prog.ExampleTasks {
		exampleForward32(g, st, sc, tname, s.exampleHeads[tname], &q)
	}

	// Set payload candidate representations + heads.
	if len(m.Prog.SetPayloads) > 0 {
		if st.cand32 == nil {
			st.cand32 = map[string]tensor.Tensor32{}
		}
		clear(st.cand32)
		entDim := s.entEmb.Cols
		for _, sp := range m.Prog.SetPayloads {
			sb := b.Sets[sp]
			n := len(sb.Spans)
			spanRep := sc.alloc(n, H)
			if s.spanQ != nil && m.Prog.Choice.EntityAgg == "attn" {
				spanAttnPool32(&spanRep, &h, sb.Spans, L, s.spanQ)
			} else {
				spanMeanPool32(&spanRep, &h, sb.Spans, L)
			}
			cand := sc.alloc(n, H+entDim+H)
			for i, span := range sb.Spans {
				crow := cand.Row(i)
				copy(crow[:H], spanRep.Row(i))
				copy(crow[H:H+entDim], s.entEmb.Row(sb.CandEnt[i]))
				copy(crow[H+entDim:], q.Row(span.Example))
			}
			st.cand32[sp] = cand
		}
		for _, tname := range m.Prog.SetTasks {
			m.setForward32(g, st, sc, b, tname, s.setHeads[tname], &q)
		}
	}
	return true
}

// convForward32 assembles post-ReLU conv activations from the quantized
// tables, mirroring foldedConvForward's window walk and fused bias+ReLU.
func convForward32(f *convFold32, b *Batch, out *tensor.Tensor32) {
	ids := b.TokenIDs
	for r := 0; r < b.B*b.L; r++ {
		t := r % b.L
		orow := out.Row(r)
		if t > 0 {
			copy(orow, f.p0.Row(ids[r-1]))
			tensor.AddRow32(orow, f.p1.Row(ids[r]))
		} else {
			copy(orow, f.p1.Row(ids[r]))
		}
		if t < b.L-1 {
			tensor.AddRow32(orow, f.p2.Row(ids[r+1]))
		}
		for j := range orow {
			v := orow[j] + f.bias[j]
			if v > 0 {
				orow[j] = v
			} else {
				orow[j] = 0
			}
		}
	}
}

// gruScan32 runs one direction's folded GRU recurrence in float32,
// writing hidden states into out columns [colOff, colOff+H) — the BiGRU
// runs it twice with opposite directions and column halves. Mirrors
// foldedGRUForward: masked positions keep the previous state. Output
// indexing mirrors nn.GRU exactly: the row written at timestep index
// `step` is the state after scan step `step` — for the reverse
// direction, nn.GRU's hs/order double re-index means output row t holds
// the state after processing timesteps L-1 down to L-1-t, and the fold
// must reproduce that, not a naive right-to-left state-at-t scan.
func gruScan32(sc *scratch32, f *gruFold32, b *Batch, out *tensor.Tensor32, colOff int, reverse bool) {
	H := f.uz.Rows
	B, L := b.B, b.L
	ids, mask := b.TokenIDs, b.Mask

	h := sc.alloc(B, H) // h0 = 0
	hn := sc.alloc(B, H)
	hz := sc.alloc(B, H)
	hr := sc.alloc(B, H)
	hh := sc.alloc(B, H)
	zt := sc.alloc(B, H)
	rh := sc.alloc(B, H)

	for step := 0; step < L; step++ {
		t := step
		if reverse {
			t = L - 1 - step
		}
		// Hidden-half recurrences for the update and reset gates.
		tensor.MatMul32(&hz, &h, f.uz)
		tensor.MatMul32(&hr, &h, f.ur)
		for bi := 0; bi < B; bi++ {
			id := ids[bi*L+t]
			pzr, prr := f.pz.Row(id), f.pr.Row(id)
			hzr, hrr := hz.Row(bi), hr.Row(bi)
			ztr, rhr := zt.Row(bi), rh.Row(bi)
			hrow := h.Row(bi)
			for j := 0; j < H; j++ {
				ztr[j] = sigmoid32(pzr[j] + hzr[j] + f.bz[j])
				rv := sigmoid32(prr[j] + hrr[j] + f.br[j])
				rhr[j] = rv * hrow[j]
			}
		}
		// Candidate state from the reset-gated hidden half.
		tensor.MatMul32(&hh, &rh, f.uh)
		for bi := 0; bi < B; bi++ {
			row := bi*L + t // position processed this scan step
			hrow := h.Row(bi)
			nrow := hn.Row(bi)
			orow := out.Row(bi*L + step)[colOff : colOff+H]
			if mask[row] == 0 {
				copy(nrow, hrow)
				copy(orow, hrow)
				continue
			}
			phr := f.ph.Row(ids[row])
			hhr := hh.Row(bi)
			ztr := zt.Row(bi)
			for j := 0; j < H; j++ {
				ht := tanh32(phr[j] + hhr[j] + f.bh[j])
				z := ztr[j]
				nrow[j] = (1-z)*hrow[j] + z*ht
			}
			copy(orow, nrow)
		}
		h, hn = hn, h
	}
}

// maskedMeanPool32 mirrors nn.MaskedMeanPool. out must be zeroed B x d.
func maskedMeanPool32(out, x *tensor.Tensor32, mask []float64, B, L int) {
	for bi := 0; bi < B; bi++ {
		orow := out.Row(bi)
		var count float32
		for t := 0; t < L; t++ {
			mv := mask[bi*L+t]
			if mv <= 0 {
				continue
			}
			mf := float32(mv)
			count += mf
			xrow := x.Row(bi*L + t)
			for c, v := range xrow {
				orow[c] += mf * v
			}
		}
		if count > 0 {
			inv := 1 / count
			for c := range orow {
				orow[c] *= inv
			}
		}
	}
}

// maskedMaxPool32 mirrors nn.MaskedMaxPool. out must be zeroed B x d
// (fully masked examples pool to zero).
func maskedMaxPool32(out, x *tensor.Tensor32, mask []float64, B, L int) {
	for bi := 0; bi < B; bi++ {
		orow := out.Row(bi)
		seen := false
		for t := 0; t < L; t++ {
			if mask[bi*L+t] <= 0 {
				continue
			}
			xrow := x.Row(bi*L + t)
			if !seen {
				copy(orow, xrow)
				seen = true
				continue
			}
			for c, v := range xrow {
				if v > orow[c] {
					orow[c] = v
				}
			}
		}
	}
}

// spanMeanPool32 mirrors nn.SpanMeanPool. out must be zeroed len(spans) x d.
func spanMeanPool32(out, x *tensor.Tensor32, spans []nn.Span, L int) {
	for i, sp := range spans {
		width := sp.End - sp.Start
		if width <= 0 {
			continue
		}
		orow := out.Row(i)
		for t := sp.Start; t < sp.End; t++ {
			tensor.AddRow32(orow, x.Row(sp.Example*L+t))
		}
		inv := 1 / float32(width)
		for c := range orow {
			orow[c] *= inv
		}
	}
}

// spanAttnPool32 mirrors nn.SpanAttnPool: scaled dot-product attention
// against the learned query with a max-subtracted softmax.
func spanAttnPool32(out, x *tensor.Tensor32, spans []nn.Span, L int, q []float32) {
	d := x.Cols
	scale := float32(1 / math.Sqrt(float64(d)))
	var scores []float32
	for i, sp := range spans {
		width := sp.End - sp.Start
		if width <= 0 {
			continue
		}
		if cap(scores) < width {
			scores = make([]float32, width)
		}
		scores = scores[:width]
		maxv := float32(math.Inf(-1))
		for k := 0; k < width; k++ {
			s := tensor.Dot32(x.Row(sp.Example*L+sp.Start+k), q) * scale
			scores[k] = s
			if s > maxv {
				maxv = s
			}
		}
		var z float32
		for k := range scores {
			scores[k] = tensor.Exp32(scores[k] - maxv)
			z += scores[k]
		}
		inv := 1 / z
		orow := out.Row(i)
		for k := 0; k < width; k++ {
			a := scores[k] * inv
			xrow := x.Row(sp.Example*L + sp.Start + k)
			for c, v := range xrow {
				orow[c] += a * v
			}
		}
	}
}

// softmaxRows32 applies a max-subtracted softmax to each row in place.
func softmaxRows32(t *tensor.Tensor32) {
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var z float32
		for i, v := range row {
			e := tensor.Exp32(v - maxv)
			row[i] = e
			z += e
		}
		inv := 1 / z
		for i := range row {
			row[i] *= inv
		}
	}
}

// exampleForward32 computes final logits for one per-example task,
// mirroring forwardExampleHead (expert aux predictions are loss-only and
// skipped).
func exampleForward32(g *nn.Graph, st *forwardState, sc *scratch32, tname string, head *exampleHead32, q *tensor.Tensor32) {
	B := q.Rows
	if head.plain != nil {
		logits := sc.alloc(B, head.plain.w.Cols)
		head.plain.forward(&logits, q)
		st.exampleFinal[tname] = constF64(g, &logits)
		return
	}
	S := len(head.membership)
	expertDim := head.experts[0].w.Cols
	reps := make([]tensor.Tensor32, len(head.experts))
	for e, ex := range head.experts {
		reps[e] = sc.alloc(B, expertDim)
		ex.forward(&reps[e], q)
		relu32(reps[e].Data)
	}
	// Membership logits; the base expert has a fixed 0 logit (column 0).
	attn := sc.alloc(B, S+1)
	u := sc.alloc(B, 1)
	for s := 0; s < S; s++ {
		head.membership[s].forward(&u, q)
		for bi := 0; bi < B; bi++ {
			attn.Row(bi)[s+1] = u.Data[bi]
		}
	}
	softmaxRows32(&attn)
	mixed := sc.alloc(B, expertDim)
	for e := range reps {
		rep := &reps[e]
		for bi := 0; bi < B; bi++ {
			w := attn.Row(bi)[e]
			if w == 0 {
				continue
			}
			mrow := mixed.Row(bi)
			for c, v := range rep.Row(bi) {
				mrow[c] += w * v
			}
		}
	}
	final := sc.alloc(B, head.out.w.Cols)
	head.out.forward(&final, &mixed)
	st.exampleFinal[tname] = constF64(g, &final)
}

// setForward32 scores one select task's candidates, mirroring
// forwardSetHead (expert/membership internals are loss-only and not
// materialised as nodes).
func (m *Model) setForward32(g *nn.Graph, st *forwardState, sc *scratch32, b *Batch, tname string, head *setHead32, q *tensor.Tensor32) {
	payload := m.Prog.Schema.Tasks[tname].Payload
	cand, ok := st.cand32[payload]
	if !ok || cand.Rows == 0 {
		st.setScores[tname] = g.Const(g.NewTensor(0, 1))
		return
	}
	n, hdn := cand.Rows, head.mlp.w.Cols
	hid := sc.alloc(n, hdn)
	head.mlp.forward(&hid, &cand)
	relu32(hid.Data)
	total := sc.alloc(n, 1)
	head.score.forward(&total, &hid)
	if S := len(head.membership); S > 0 {
		sb := b.Sets[payload]
		u := sc.alloc(q.Rows, 1)
		es := sc.alloc(n, 1)
		for s := 0; s < S; s++ {
			head.membership[s].forward(&u, q)
			head.expertMLP[s].forward(&hid, &cand)
			relu32(hid.Data)
			head.expertScore[s].forward(&es, &hid)
			for i, span := range sb.Spans {
				total.Data[i] += sigmoid32(u.Data[span.Example]) * es.Data[i]
			}
		}
	}
	st.setScores[tname] = constF64(g, &total)
}
