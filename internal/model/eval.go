package model

import (
	"repro/internal/metrics"
	"repro/internal/record"
	"repro/internal/schema"
)

// Evaluate scores the model against gold labels on recs, returning per-task
// metrics. Records lacking gold for a task are skipped for that task.
// Multiclass and select tasks report accuracy as the primary metric;
// bitvector tasks report micro-F1 over (token, bit) positives.
func (m *Model) Evaluate(recs []*record.Record) (map[string]metrics.TaskMetrics, error) {
	outs, err := m.Predict(recs)
	if err != nil {
		return nil, err
	}
	return ScoreOutputs(m.Prog.Schema, recs, outs), nil
}

// ScoreOutputs compares predictions to gold labels (separated from
// Evaluate so baselines and stored predictions can reuse the scorer).
func ScoreOutputs(sch *schema.Schema, recs []*record.Record, outs []Output) map[string]metrics.TaskMetrics {
	result := map[string]metrics.TaskMetrics{}
	for _, tname := range sch.TaskNames() {
		task := sch.Tasks[tname]
		gran := sch.Granularity(task)
		tm := metrics.TaskMetrics{Task: tname}
		switch {
		case task.Type == schema.Multiclass && gran == schema.PerExample:
			conf := metrics.NewConfusion(task.Classes)
			for i, rec := range recs {
				gold, ok := rec.Gold(tname)
				if !ok {
					continue
				}
				gi := task.ClassIndex(gold.Class)
				pi := task.ClassIndex(outs[i][tname].Class)
				if gi < 0 || pi < 0 {
					continue
				}
				conf.Add(gi, pi)
			}
			tm.Accuracy = conf.Accuracy()
			tm.Primary = tm.Accuracy
			tm.PrimaryName = "accuracy"
			tm.N = conf.Total()
			tm.Confusion = conf
		case task.Type == schema.Multiclass && gran == schema.PerToken:
			conf := metrics.NewConfusion(task.Classes)
			for i, rec := range recs {
				gold, ok := rec.Gold(tname)
				if !ok {
					continue
				}
				pred := outs[i][tname].TokenClasses
				for t, gc := range gold.Seq {
					if t >= len(pred) {
						break
					}
					gi := task.ClassIndex(gc)
					pi := task.ClassIndex(pred[t])
					if gi < 0 || pi < 0 {
						continue
					}
					conf.Add(gi, pi)
				}
			}
			tm.Accuracy = conf.Accuracy()
			tm.Primary = tm.Accuracy
			tm.PrimaryName = "accuracy"
			tm.N = conf.Total()
			tm.Confusion = conf
		case task.Type == schema.Bitvector:
			var c metrics.Counter
			for i, rec := range recs {
				gold, ok := rec.Gold(tname)
				if !ok {
					continue
				}
				pred := outs[i][tname].TokenBits
				for t, goldBits := range gold.Bits {
					if t >= len(pred) {
						break
					}
					goldSet := toSet(goldBits)
					predSet := toSet(pred[t])
					for _, cls := range task.Classes {
						c.Add(goldSet[cls], predSet[cls])
					}
				}
			}
			prf := c.PRF1()
			tm.F1 = prf
			tm.Primary = prf.F1
			tm.PrimaryName = "f1"
			tm.Accuracy = metrics.Accuracy(c.TP+c.TN, c.Total())
			tm.N = c.Total()
		case task.Type == schema.Select:
			var correct, total float64
			for i, rec := range recs {
				gold, ok := rec.Gold(tname)
				if !ok {
					continue
				}
				out := outs[i][tname]
				if out.Select < 0 {
					continue
				}
				total++
				if out.Select == gold.Select {
					correct++
				}
			}
			tm.Accuracy = metrics.Accuracy(correct, total)
			tm.Primary = tm.Accuracy
			tm.PrimaryName = "accuracy"
			tm.N = total
		}
		result[tname] = tm
	}
	return result
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// EvaluateTag scores only the records carrying tag (per-tag monitoring).
func (m *Model) EvaluateTag(recs []*record.Record, tag string) (map[string]metrics.TaskMetrics, error) {
	var sub []*record.Record
	for _, r := range recs {
		if r.HasTag(tag) {
			sub = append(sub, r)
		}
	}
	return m.Evaluate(sub)
}
