package model

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/tensor"
)

// Info is compact artifact metadata: what a fleet listing or provenance
// record needs to identify a model without loading anything heavy.
type Info struct {
	Encoder   string `json:"encoder"`
	Embedding string `json:"embedding"`
	Hidden    int    `json:"hidden"`
	Params    int    `json:"params"`
	Tasks     int    `json:"tasks"`
	Seed      int64  `json:"seed"`
	Precision string `json:"precision"`
}

// Info returns the model's artifact metadata.
func (m *Model) Info() Info {
	return Info{
		Encoder:   m.Prog.Choice.Encoder,
		Embedding: m.Prog.Choice.Embedding,
		Hidden:    m.Prog.Choice.Hidden,
		Params:    m.PS.NumParams(),
		Tasks:     len(m.Prog.Schema.Tasks),
		Seed:      m.Seed,
		Precision: string(m.Precision()),
	}
}

// Clone builds an independent copy of m: a fresh parameter set with copied
// tensors, its own session pools and fold caches, sharing no mutable state
// with the original. Much cheaper than a Save/Load round trip (no gob
// encode), it is how a deployment seeds a shadow candidate from a live
// model before fine-tuning it on ingested traffic. A frozen contextual
// encoder, when present, is shared — it is immutable by contract.
func (m *Model) Clone() (*Model, error) {
	c, err := m.rebuild()
	if err != nil {
		return nil, fmt.Errorf("model: clone: %w", err)
	}
	for _, p := range c.PS.All() {
		src := m.PS.Get(p.Name)
		if src == nil {
			return nil, fmt.Errorf("model: clone: original missing parameter %q", p.Name)
		}
		if !src.Node.Value.SameShape(p.Node.Value) {
			return nil, fmt.Errorf("model: clone: parameter %q shape mismatch", p.Name)
		}
		copy(p.Node.Value.Data, src.Node.Value.Data)
		p.Frozen = src.Frozen
	}
	c.prec.Store(m.prec.Load()) // serving precision travels with the clone
	return c, nil
}

// rebuild reconstructs an architecturally identical model from m's program
// and derived resources, with freshly initialised parameters. Clone copies
// m's parameter data over them; paramView discards them for aliases.
func (m *Model) rebuild() (*Model, error) {
	prog, err := compile.Plan(m.Prog.Schema, m.Prog.Choice, m.Prog.Slices)
	if err != nil {
		return nil, err
	}
	res := &compile.Resources{
		TokenVocab:  vocabPayload(m.vocab.Tokens()),
		EntityVocab: vocabPayload(m.entVocab.Tokens()),
		Contextual:  m.contextual,
	}
	family, dim, err := compile.EmbeddingFamily(m.Prog.Choice.Embedding)
	if err != nil {
		return nil, err
	}
	if family == "pretrained" {
		// Shape placeholder; the real weights are copied or aliased by the
		// caller.
		res.StaticVectors = tensor.New(m.vocab.Size(), dim)
	}
	return New(prog, res, m.Seed)
}

// paramView builds a training-worker view of m: an architecturally
// identical model whose parameters alias m's value tensors while owning
// private gradient accumulators (nn.ParamSet.AliasValues). A view's
// forward/backward reads the live primary weights and accumulates
// gradients without contending on the primary's heap grads — the
// ownership unit of the data-parallel trainer, which gives each view its
// own graph+arena session per PR 1's rules. Views must never step an
// optimizer themselves; the fused reduce in internal/opt consumes their
// grads.
//
// Views are pooled: a trainer Close releases its views back to m, and the
// next paramView re-aliases a pooled view instead of paying the full
// rebuild (plan + parameter init the aliasing immediately discards). The
// pooled view keeps its training session (arena chunks, tape, batch
// scratch) and grad accumulators, so repeated trainer builds — the
// improvement loop fine-tunes one candidate per retrain batch — are
// init-free after the first.
func (m *Model) paramView() (*Model, error) {
	m.viewMu.Lock()
	var v *Model
	if n := len(m.viewPool); n > 0 {
		v, m.viewPool = m.viewPool[n-1], m.viewPool[:n-1]
	}
	m.viewMu.Unlock()
	if v == nil {
		var err error
		v, err = m.rebuild()
		if err != nil {
			return nil, fmt.Errorf("model: param view: %w", err)
		}
	}
	// Both paths re-alias: a fresh view to discard its init weights, a
	// pooled one because AliasValues also zeroes its kept accumulators.
	if err := v.PS.AliasValues(m.PS); err != nil {
		return nil, fmt.Errorf("model: param view: %w", err)
	}
	return v, nil
}

// releaseView returns a worker view to m's pool for the next trainer
// build. Deliberately NOT EndTraining: the view's arenas and grads are
// the reuse payload. A model that stops training for good can still shed
// them by dropping the model itself (views are unreachable outside the
// pool).
func (m *Model) releaseView(v *Model) {
	if v == nil {
		return
	}
	m.viewMu.Lock()
	m.viewPool = append(m.viewPool, v)
	m.viewMu.Unlock()
}
