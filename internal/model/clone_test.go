package model

import (
	"reflect"
	"testing"
)

// TestCloneIndependence verifies a clone predicts identically to the
// original and that mutating either side's parameters afterwards does not
// leak into the other — the contract shadow deployments rely on.
func TestCloneIndependence(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 8, 3)

	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c == m || c.PS == m.PS {
		t.Fatalf("clone shares identity with original")
	}
	want, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("clone predictions diverge from original")
	}

	// Perturb the clone the way a fine-tuning step would; the original's
	// outputs must not move.
	for _, p := range c.PS.All() {
		p.Node.Value.Data[0] += 1.0
	}
	c.ParamsChanged()
	after, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, after) {
		t.Fatalf("mutating the clone changed the original's predictions")
	}
}

func TestModelInfo(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	info := m.Info()
	if info.Encoder != "CNN" || info.Hidden != 24 || info.Params == 0 || info.Tasks == 0 {
		t.Fatalf("info wrong: %+v", info)
	}
}
