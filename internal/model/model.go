// Package model instantiates a compiled Program into an executable
// multitask network and implements its training losses (noise-aware, soft
// targets), slice-based learning heads (Chen et al., NeurIPS 2019),
// prediction, evaluation against gold, and artifact serialization.
package model

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/compile"
	"repro/internal/embeddings"
	"repro/internal/nn"
	"repro/internal/schema"
	"repro/internal/tensor"
)

// entityEmbDim is the width of learned KB-entity embeddings. It is a fixed
// block (not searched): entity ids are a side payload, not the main input.
const entityEmbDim = 24

// Model is an instantiated multitask network.
type Model struct {
	Prog *compile.Program
	PS   *nn.ParamSet

	vocab      *embeddings.Vocab
	entVocab   *embeddings.Vocab
	contextual compile.ContextualEncoder

	tokEmb *nn.Embedding
	entEmb *nn.Embedding

	conv  *nn.Conv1D
	gru   *nn.GRU
	bigru *nn.BiGRU

	spanQ *nn.Param // span-attention query (entity_agg = "attn")

	tokenHeads   map[string]*nn.Linear
	exampleHeads map[string]*exampleHead
	setHeads     map[string]*setHead

	// Seed records the initialisation seed for reproducibility metadata.
	Seed int64

	// inferPool recycles arena-backed inference sessions (graph + batch +
	// forward-state scratch) so concurrent Predict calls allocate nothing
	// per pass in steady state. Training reuses a single session because
	// optimisation serialises on the shared parameters.
	inferPool sync.Pool
	train     *session

	// gen counts parameter mutations; fold/gruFoldCache/serveCache32
	// cache the serving-path projection tables (and their float32
	// quantization) for the generation they were built from.
	gen          atomic.Uint64
	fold         atomic.Pointer[convFold]
	gruFoldCache atomic.Pointer[gruFold]
	serveCache32 atomic.Pointer[serve32]

	// prec selects the serving precision (0 = f64, 1 = f32); see
	// precision.go.
	prec atomic.Uint32

	// viewPool recycles parameter views released by trainer Close so the
	// next trainer construction skips the full rebuild (plan + discarded
	// init) and reuses the views' grad accumulators and sessions.
	viewMu   sync.Mutex
	viewPool []*Model
}

// exampleHead predicts a per-example task, optionally with slice experts.
type exampleHead struct {
	task *schema.Task
	// Plain path (no slices): direct head on the query representation.
	plain *nn.Linear
	// Sliced path: expert 0 is the base expert; experts[1..] align with
	// Prog.Slices. Each expert re-represents the shared rep; membership
	// heads gate them; out maps the combined representation to classes.
	experts    []*nn.Linear
	expertPred []*nn.Linear
	membership []*nn.Linear // one per slice (not base)
	out        *nn.Linear
}

// setHead scores candidates of a select task, optionally with slice
// experts gated by example-level membership.
type setHead struct {
	task        *schema.Task
	mlp         *nn.Linear
	score       *nn.Linear
	expertMLP   []*nn.Linear // per slice
	expertScore []*nn.Linear
	membership  []*nn.Linear // on query rep
}

// New instantiates prog with the given resources. Deterministic in seed.
func New(prog *compile.Program, res *compile.Resources, seed int64) (*Model, error) {
	family, _, err := compile.EmbeddingFamily(prog.Choice.Embedding)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Prog:         prog,
		PS:           nn.NewParamSet(),
		vocab:        embeddings.NewVocab(res.TokenVocab),
		entVocab:     embeddings.NewVocab(res.EntityVocab),
		tokenHeads:   map[string]*nn.Linear{},
		exampleHeads: map[string]*exampleHead{},
		setHeads:     map[string]*setHead{},
		Seed:         seed,
	}
	rng := rand.New(rand.NewSource(seed))

	// Token embedding by family.
	switch family {
	case "hash":
		vecs := embeddings.HashVectors(m.vocab, prog.EmbDim, seed)
		m.tokEmb = nn.NewPretrainedEmbedding(m.PS, "tok.emb", vecs, false)
	case "pretrained":
		if res.StaticVectors == nil {
			return nil, fmt.Errorf("model: choice %q needs Resources.StaticVectors", prog.Choice.Embedding)
		}
		if res.StaticVectors.Rows != m.vocab.Size() || res.StaticVectors.Cols != prog.EmbDim {
			return nil, fmt.Errorf("model: static vectors %dx%d, want %dx%d",
				res.StaticVectors.Rows, res.StaticVectors.Cols, m.vocab.Size(), prog.EmbDim)
		}
		m.tokEmb = nn.NewPretrainedEmbedding(m.PS, "tok.emb", res.StaticVectors, false)
	case "bertsim":
		if res.Contextual == nil {
			return nil, fmt.Errorf("model: choice %q needs Resources.Contextual", prog.Choice.Embedding)
		}
		m.contextual = res.Contextual
		prog.ContextDim = res.Contextual.Dim()
		vecs := embeddings.HashVectors(m.vocab, prog.EmbDim, seed)
		m.tokEmb = nn.NewPretrainedEmbedding(m.PS, "tok.emb", vecs, false)
	}
	inDim := prog.EmbDim + prog.ContextDim

	// Encoder block.
	switch prog.Choice.Encoder {
	case "BOW":
		prog.EncoderOut = inDim
	case "CNN":
		m.conv = nn.NewConv1D(m.PS, "enc.cnn", inDim, prog.Choice.Hidden, rng)
		prog.EncoderOut = prog.Choice.Hidden
	case "GRU":
		m.gru = nn.NewGRU(m.PS, "enc.gru", inDim, prog.Choice.Hidden, rng)
		prog.EncoderOut = prog.Choice.Hidden
	case "BiGRU":
		m.bigru = nn.NewBiGRU(m.PS, "enc.bigru", inDim, prog.Choice.Hidden, rng)
		prog.EncoderOut = 2 * prog.Choice.Hidden
	default:
		return nil, fmt.Errorf("model: unknown encoder %q", prog.Choice.Encoder)
	}
	H := prog.EncoderOut

	if len(prog.SetPayloads) > 0 {
		m.entEmb = nn.NewEmbedding(m.PS, "ent.emb", m.entVocab.Size(), entityEmbDim, rng)
		if prog.Choice.EntityAgg == "attn" {
			m.spanQ = m.PS.New("ent.spanq", 1, H, nn.Randn(rng, 0.1))
		}
	}

	// Task heads.
	for _, tname := range prog.TokenTasks {
		t := prog.Schema.Tasks[tname]
		m.tokenHeads[tname] = nn.NewLinear(m.PS, "head."+tname, H, len(t.Classes), rng)
	}
	S := len(prog.Slices)
	for _, tname := range prog.ExampleTasks {
		t := prog.Schema.Tasks[tname]
		h := &exampleHead{task: t}
		if prog.HasSliceTask(tname) && S > 0 {
			expertDim := maxInt(H/2, 8)
			for e := 0; e <= S; e++ {
				h.experts = append(h.experts, nn.NewLinear(m.PS, fmt.Sprintf("head.%s.expert%d", tname, e), H, expertDim, rng))
				h.expertPred = append(h.expertPred, nn.NewLinear(m.PS, fmt.Sprintf("head.%s.expertpred%d", tname, e), expertDim, len(t.Classes), rng))
			}
			for s := 0; s < S; s++ {
				h.membership = append(h.membership, nn.NewLinear(m.PS, fmt.Sprintf("head.%s.member%d", tname, s), H, 1, rng))
			}
			h.out = nn.NewLinear(m.PS, "head."+tname+".out", expertDim, len(t.Classes), rng)
		} else {
			h.plain = nn.NewLinear(m.PS, "head."+tname, H, len(t.Classes), rng)
		}
		m.exampleHeads[tname] = h
	}
	for _, tname := range prog.SetTasks {
		t := prog.Schema.Tasks[tname]
		candDim := H + entityEmbDim + H // span ; entity ; query context
		hdn := maxInt(H/2, 16)
		sh := &setHead{
			task:  t,
			mlp:   nn.NewLinear(m.PS, "head."+tname+".mlp", candDim, hdn, rng),
			score: nn.NewLinear(m.PS, "head."+tname+".score", hdn, 1, rng),
		}
		if prog.HasSliceTask(tname) && S > 0 {
			for s := 0; s < S; s++ {
				sh.expertMLP = append(sh.expertMLP, nn.NewLinear(m.PS, fmt.Sprintf("head.%s.exmlp%d", tname, s), candDim, hdn, rng))
				sh.expertScore = append(sh.expertScore, nn.NewLinear(m.PS, fmt.Sprintf("head.%s.exscore%d", tname, s), hdn, 1, rng))
				sh.membership = append(sh.membership, nn.NewLinear(m.PS, fmt.Sprintf("head.%s.member%d", tname, s), H, 1, rng))
			}
		}
		m.setHeads[tname] = sh
	}
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Vocab exposes the token vocabulary (for diagnostics and serving).
func (m *Model) Vocab() *embeddings.Vocab { return m.vocab }

// EntityVocab exposes the entity-id vocabulary.
func (m *Model) EntityVocab() *embeddings.Vocab { return m.entVocab }

// forwardState carries everything one forward pass produced.
type forwardState struct {
	batch    *Batch
	tokenRep *nn.Node // (B*L, H)
	queryRep *nn.Node // (B, H)

	tokenLogits   map[string]*nn.Node // per token task: (B*L, C)
	exampleFinal  map[string]*nn.Node // per example task: (B, C) final logits
	exampleExpert map[string][]*nn.Node
	exampleMember map[string][]*nn.Node // membership logits (B,1) per slice
	setScores     map[string]*nn.Node   // per set task: (N, 1) final scores
	setExpert     map[string][]*nn.Node // per-slice expert-only scores (N,1)
	setMember     map[string][]*nn.Node
	candRep       map[string]*nn.Node

	// Reduced-precision scratch (forward32.go): a bump allocator for
	// float32 intermediates and the per-payload f32 candidate reps.
	sc32   scratch32
	cand32 map[string]tensor.Tensor32
}

func newForwardState() *forwardState {
	return &forwardState{
		tokenLogits:   map[string]*nn.Node{},
		exampleFinal:  map[string]*nn.Node{},
		exampleExpert: map[string][]*nn.Node{},
		exampleMember: map[string][]*nn.Node{},
		setScores:     map[string]*nn.Node{},
		setExpert:     map[string][]*nn.Node{},
		setMember:     map[string][]*nn.Node{},
		candRep:       map[string]*nn.Node{},
	}
}

// reset rebinds the state to a batch, keeping map storage for reuse.
func (st *forwardState) reset(b *Batch) {
	st.batch = b
	st.tokenRep, st.queryRep = nil, nil
	clear(st.tokenLogits)
	clear(st.exampleFinal)
	clear(st.exampleExpert)
	clear(st.exampleMember)
	clear(st.setScores)
	clear(st.setExpert)
	clear(st.setMember)
	clear(st.candRep)
}

// forward runs the network over a batch under graph g.
func (m *Model) forward(g *nn.Graph, b *Batch) *forwardState {
	st := newForwardState()
	m.forwardInto(g, b, st)
	return st
}

// forwardInto runs the network over a batch under graph g, reusing st's
// scratch storage.
func (m *Model) forwardInto(g *nn.Graph, b *Batch, st *forwardState) {
	st.reset(b)
	if g.Training {
		// Record-keyed dropout: masks depend on (record, step salt), not
		// batch position or shard padding — see nn.Graph.SetDropoutKeys.
		g.SetDropoutKeys(b.Keys, b.L)
	}
	// Reduced-precision serving fast path: quantized folded tables and a
	// graph-free float32 forward, converting to float64 only at the
	// final logits (forward32.go). Falls through to the standard f64
	// path when it does not apply.
	if g.NoGrad() && m.prec.Load() == 1 && m.forward32(g, b, st) {
		return
	}
	// Serving fast path: fold the encoder — cached per-vocab projection
	// tables for the CNN, direct embedding-row gather for BOW (no-grad
	// graphs only; see fold.go).
	if h := m.foldedEncoderForward(g, b); h != nil {
		m.forwardHeads(g, b, st, h)
		return
	}
	// Token input: learned embedding (+ frozen contextual features).
	x := m.tokEmb.Forward(g, b.TokenIDs)
	if m.contextual != nil {
		ctx := g.NewTensor(b.B*b.L, m.contextual.Dim())
		for r, toks := range b.RawTokens {
			if len(toks) == 0 {
				continue
			}
			enc := m.contextual.Encode(toks)
			for t := 0; t < len(toks) && t < b.L; t++ {
				copy(ctx.Row(r*b.L+t), enc.Row(t))
			}
		}
		x = g.Concat(x, g.Const(ctx))
	}
	x = g.Dropout(x, m.Prog.Choice.Dropout)

	// Encoder.
	var h *nn.Node
	switch {
	case m.conv != nil:
		h = g.ReLU(m.conv.Forward(g, x, b.B, b.L))
	case m.gru != nil:
		h = m.gru.Forward(g, x, b.Mask, b.B, b.L)
	case m.bigru != nil:
		h = m.bigru.Forward(g, x, b.Mask, b.B, b.L)
	default:
		h = x // BOW
	}
	h = g.Dropout(h, m.Prog.Choice.Dropout)
	m.forwardHeads(g, b, st, h)
}

// forwardHeads runs pooling and every task head over the encoded token
// representation h. Shared by the standard and folded-conv forward paths.
func (m *Model) forwardHeads(g *nn.Graph, b *Batch, st *forwardState, h *nn.Node) {
	st.tokenRep = h

	// Query payload: pooled token representation.
	if m.Prog.Choice.QueryAgg == "max" {
		st.queryRep = g.MaskedMaxPool(h, b.Mask, b.B, b.L)
	} else {
		st.queryRep = g.MaskedMeanPool(h, b.Mask, b.B, b.L)
	}

	// Token-task heads (sorted task order keeps the tape, and therefore
	// float summation order, deterministic).
	for _, tname := range m.Prog.TokenTasks {
		st.tokenLogits[tname] = m.tokenHeads[tname].Forward(g, h)
	}

	// Example-task heads.
	for _, tname := range m.Prog.ExampleTasks {
		m.forwardExampleHead(g, st, tname, m.exampleHeads[tname])
	}

	// Set payload representation + heads.
	for _, sp := range m.Prog.SetPayloads {
		sb := b.Sets[sp]
		var spanRep *nn.Node
		if m.spanQ != nil && m.Prog.Choice.EntityAgg == "attn" {
			spanRep = g.SpanAttnPool(h, sb.Spans, b.L, m.spanQ.Node)
		} else {
			spanRep = g.SpanMeanPool(h, sb.Spans, b.L)
		}
		entRep := m.entEmb.Forward(g, sb.CandEnt)
		// Query context per candidate: gather the owning example's rep.
		owner := make([]int, len(sb.Spans))
		for i, s := range sb.Spans {
			owner[i] = s.Example
		}
		qctx := g.GatherRows(st.queryRep, owner)
		cand := g.Concat3(spanRep, entRep, qctx)
		st.candRep[sp] = cand
	}
	for _, tname := range m.Prog.SetTasks {
		m.forwardSetHead(g, st, tname, m.setHeads[tname])
	}
}

// forwardExampleHead computes final logits (and slice internals) for one
// per-example task.
func (m *Model) forwardExampleHead(g *nn.Graph, st *forwardState, tname string, head *exampleHead) {
	q := st.queryRep
	if head.plain != nil {
		st.exampleFinal[tname] = head.plain.Forward(g, q)
		return
	}
	B := st.batch.B
	S := len(head.membership)
	// Expert representations (0 = base).
	var reps []*nn.Node
	for _, ex := range head.experts {
		reps = append(reps, g.ReLU(ex.Forward(g, q)))
	}
	// Membership logits; the base expert has a fixed 0 logit, so the
	// attention input is [zeros, u_1, ..., u_S] per example.
	memberNodes := make([]*nn.Node, 0, S)
	for s := 0; s < S; s++ {
		memberNodes = append(memberNodes, head.membership[s].Forward(g, q))
	}
	st.exampleMember[tname] = memberNodes
	attnIn := g.Const(g.NewTensor(B, 1)) // base column of zeros
	for s := 0; s < S; s++ {
		attnIn = g.Concat(attnIn, memberNodes[s])
	}
	weights := g.Softmax(attnIn)
	mixed := g.MixExperts(weights, reps)
	st.exampleFinal[tname] = head.out.Forward(g, mixed)
	// Expert-specific predictions for aux losses.
	var preds []*nn.Node
	for e, pred := range head.expertPred {
		preds = append(preds, pred.Forward(g, reps[e]))
	}
	st.exampleExpert[tname] = preds
}

// forwardSetHead computes candidate scores for one select task.
func (m *Model) forwardSetHead(g *nn.Graph, st *forwardState, tname string, head *setHead) {
	cand := st.candRep[head.task.Payload]
	if cand == nil || cand.Value.Rows == 0 {
		st.setScores[tname] = g.Const(g.NewTensor(0, 1))
		return
	}
	base := head.score.Forward(g, g.ReLU(head.mlp.Forward(g, cand)))
	total := base
	S := len(head.membership)
	if S > 0 {
		sb := st.batch.Sets[head.task.Payload]
		owner := make([]int, len(sb.Spans))
		for i, s := range sb.Spans {
			owner[i] = s.Example
		}
		var members []*nn.Node
		var experts []*nn.Node
		for s := 0; s < S; s++ {
			u := head.membership[s].Forward(g, st.queryRep) // (B,1)
			members = append(members, u)
			gate := g.Sigmoid(u)                  // (B,1)
			gateCand := g.GatherRows(gate, owner) // (N,1)
			es := head.expertScore[s].Forward(g, g.ReLU(head.expertMLP[s].Forward(g, cand)))
			experts = append(experts, es)
			total = g.Add(total, g.Mul(gateCand, es))
		}
		st.setMember[tname] = members
		st.setExpert[tname] = experts
	}
	st.setScores[tname] = total
}
