package model

import (
	"fmt"

	"repro/internal/embeddings"
	"repro/internal/nn"
	"repro/internal/record"
)

// setBatch is the flattened candidate view of one set payload across a
// batch: candidate i has span Spans[i] and entity id CandEnt[i]; Segs[r]
// delimits record r's candidates (empty segment when it has none).
type setBatch struct {
	Spans   []nn.Span
	CandEnt []int
	Segs    []nn.Segment
}

// Batch is the padded tensor view of a record slice.
type Batch struct {
	Recs []*record.Record
	// Idx are the positions of Recs in the originating dataset, used to
	// align label-model targets.
	Idx []int

	B, L      int
	TokenIDs  []int     // B*L, example-major, PadID-padded
	Mask      []float64 // B*L, 1 on real tokens
	RawTokens [][]string

	Sets map[string]*setBatch
}

// makeBatch assembles a batch for the model's program from records at
// dataset indices idx.
func (m *Model) makeBatch(recs []*record.Record, idx []int) (*Batch, error) {
	B := len(recs)
	L := m.Prog.MaxLen
	b := &Batch{
		Recs:      recs,
		Idx:       idx,
		B:         B,
		L:         L,
		TokenIDs:  make([]int, B*L),
		Mask:      make([]float64, B*L),
		RawTokens: make([][]string, B),
		Sets:      make(map[string]*setBatch, len(m.Prog.SetPayloads)),
	}
	for _, sp := range m.Prog.SetPayloads {
		b.Sets[sp] = &setBatch{Segs: make([]nn.Segment, B)}
	}
	for r, rec := range recs {
		pv, ok := rec.Payloads[m.Prog.TokenPayload]
		if !ok || pv.Null {
			return nil, fmt.Errorf("model: record %s: missing %s payload", rec.ID, m.Prog.TokenPayload)
		}
		toks := pv.Tokens
		if len(toks) > L {
			toks = toks[:L]
		}
		b.RawTokens[r] = toks
		for t := 0; t < L; t++ {
			if t < len(toks) {
				b.TokenIDs[r*L+t] = m.vocab.ID(toks[t])
				b.Mask[r*L+t] = 1
			} else {
				b.TokenIDs[r*L+t] = embeddings.PadID
			}
		}
		for _, sp := range m.Prog.SetPayloads {
			sb := b.Sets[sp]
			start := len(sb.Spans)
			if cpv, ok := rec.Payloads[sp]; ok && !cpv.Null {
				for _, member := range cpv.Set {
					end := member.End
					if end > len(toks) {
						end = len(toks)
					}
					st := member.Start
					if st > end {
						st = end
					}
					sb.Spans = append(sb.Spans, nn.Span{Example: r, Start: st, End: end})
					sb.CandEnt = append(sb.CandEnt, m.entVocab.ID(member.ID))
				}
			}
			sb.Segs[r] = nn.Segment{Start: start, End: len(sb.Spans)}
		}
	}
	return b, nil
}

// batches splits indices into batch-size chunks (last one ragged).
func batchIndices(n, size int) [][]int {
	if size <= 0 {
		size = 32
	}
	var out [][]int
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		idx := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idx = append(idx, i)
		}
		out = append(out, idx)
	}
	return out
}
