package model

import (
	"fmt"

	"repro/internal/embeddings"
	"repro/internal/nn"
	"repro/internal/record"
)

// setBatch is the flattened candidate view of one set payload across a
// batch: candidate i has span Spans[i] and entity id CandEnt[i]; Segs[r]
// delimits record r's candidates (empty segment when it has none).
type setBatch struct {
	Spans   []nn.Span
	CandEnt []int
	Segs    []nn.Segment
}

// Batch is the padded tensor view of a record slice.
type Batch struct {
	Recs []*record.Record
	// Idx are the positions of Recs in the originating dataset, used to
	// align label-model targets.
	Idx []int

	B, L      int
	TokenIDs  []int     // B*L, example-major, PadID-padded
	Mask      []float64 // B*L, 1 on real tokens
	RawTokens [][]string
	// Keys are per-record dropout-stream keys (FNV-1a of the record ID):
	// the forward pass hands them to nn.Graph.SetDropoutKeys so training
	// masks depend on record identity rather than batch position, making
	// every shard split reproducible with dropout on.
	Keys []uint64

	Sets map[string]*setBatch
}

// makeBatch assembles a fresh batch for the model's program from records at
// dataset indices idx.
func (m *Model) makeBatch(recs []*record.Record, idx []int) (*Batch, error) {
	b := &Batch{}
	if err := m.makeBatchInto(b, recs, idx); err != nil {
		return nil, err
	}
	return b, nil
}

// makeBatchInto assembles the batch in place, reusing b's slices and maps
// so a steady-state loop performs no per-batch allocation. b must not be in
// use by a concurrent pass.
func (m *Model) makeBatchInto(b *Batch, recs []*record.Record, idx []int) error {
	B := len(recs)
	// Pad to the longest sequence in this batch plus one trailing pad row,
	// capped at the schema's MaxLen, instead of always padding to MaxLen.
	// The +1 keeps the trained pad embedding inside the width-3 conv window
	// of the last real token, so outputs are identical to full padding
	// while short batches (single-record serving!) skip the dead rows.
	maxToks := 0
	for _, rec := range recs {
		pv, ok := rec.Payloads[m.Prog.TokenPayload]
		if !ok || pv.Null {
			return fmt.Errorf("model: record %s: missing %s payload", rec.ID, m.Prog.TokenPayload)
		}
		n := len(pv.Tokens)
		if n > maxToks {
			maxToks = n
		}
	}
	L := maxToks + 1
	if L > m.Prog.MaxLen {
		L = m.Prog.MaxLen
	}
	b.Recs = recs
	b.Idx = idx
	b.B, b.L = B, L
	b.TokenIDs = growInts(b.TokenIDs, B*L)
	b.Mask = growFloats(b.Mask, B*L)
	if cap(b.Keys) >= B {
		b.Keys = b.Keys[:B]
	} else {
		b.Keys = make([]uint64, B)
	}
	for r, rec := range recs {
		b.Keys[r] = recordKey(rec.ID)
	}
	if cap(b.RawTokens) >= B {
		b.RawTokens = b.RawTokens[:B]
	} else {
		b.RawTokens = make([][]string, B)
	}
	if b.Sets == nil {
		b.Sets = make(map[string]*setBatch, len(m.Prog.SetPayloads))
	}
	for _, sp := range m.Prog.SetPayloads {
		sb := b.Sets[sp]
		if sb == nil {
			sb = &setBatch{}
			b.Sets[sp] = sb
		}
		sb.Spans = sb.Spans[:0]
		sb.CandEnt = sb.CandEnt[:0]
		if cap(sb.Segs) >= B {
			sb.Segs = sb.Segs[:B]
		} else {
			sb.Segs = make([]nn.Segment, B)
		}
	}
	for r, rec := range recs {
		pv, ok := rec.Payloads[m.Prog.TokenPayload]
		if !ok || pv.Null {
			return fmt.Errorf("model: record %s: missing %s payload", rec.ID, m.Prog.TokenPayload)
		}
		toks := pv.Tokens
		if len(toks) > L {
			toks = toks[:L]
		}
		b.RawTokens[r] = toks
		for t := 0; t < L; t++ {
			if t < len(toks) {
				b.TokenIDs[r*L+t] = m.vocab.ID(toks[t])
				b.Mask[r*L+t] = 1
			} else {
				b.TokenIDs[r*L+t] = embeddings.PadID
				b.Mask[r*L+t] = 0 // scratch is reused; clear stale mask bits
			}
		}
		for _, sp := range m.Prog.SetPayloads {
			sb := b.Sets[sp]
			start := len(sb.Spans)
			if cpv, ok := rec.Payloads[sp]; ok && !cpv.Null {
				for _, member := range cpv.Set {
					end := member.End
					if end > len(toks) {
						end = len(toks)
					}
					st := member.Start
					if st > end {
						st = end
					}
					sb.Spans = append(sb.Spans, nn.Span{Example: r, Start: st, End: end})
					sb.CandEnt = append(sb.CandEnt, m.entVocab.ID(member.ID))
				}
			}
			sb.Segs[r] = nn.Segment{Start: start, End: len(sb.Spans)}
		}
	}
	return nil
}

// recordKey hashes a record ID to its dropout-stream key (FNV-1a 64).
// Records with equal IDs share masks by design; an empty ID hashes to the
// FNV offset basis, still deterministic.
func recordKey(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// growInts resizes s to n entries, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// growFloats resizes s to n entries, reusing capacity when possible. The
// caller overwrites every entry, so stale contents are fine.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
