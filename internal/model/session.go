package model

import (
	"repro/internal/nn"
	"repro/internal/record"
	"repro/internal/tensor"
)

// session bundles the reusable per-pass machinery: an arena-backed graph,
// batch scratch, and forward-state maps. Predict draws sessions from a
// sync.Pool (one per in-flight call); training owns a single dedicated
// session because optimisation serialises on the shared parameters.
//
// Everything inside a session is recycled on the next use — callers must
// copy out anything that should outlive the pass (decode already does).
type session struct {
	arena *tensor.Arena
	g     *nn.Graph
	b     *Batch
	st    *forwardState
}

// inferSession takes a pooled inference session (no-grad graph) or builds
// a fresh one.
func (m *Model) inferSession() *session {
	if s, ok := m.inferPool.Get().(*session); ok {
		return s
	}
	arena := tensor.NewArena()
	return &session{
		arena: arena,
		g:     nn.NewInferenceGraph(arena),
		b:     &Batch{},
		st:    newForwardState(),
	}
}

// releaseInfer returns a session to the pool after clearing tape state so
// pooled memory does not pin tensors between calls.
func (m *Model) releaseInfer(s *session) {
	s.g.Reset()
	m.inferPool.Put(s)
}

// trainSession returns the model's dedicated training session, creating it
// on first use. Not safe for concurrent use — training steps serialise on
// the parameters anyway.
func (m *Model) trainSession() *session {
	if m.train == nil {
		arena := tensor.NewArena()
		m.train = &session{
			arena: arena,
			g:     nn.NewGraphArena(true, nil, arena),
			b:     &Batch{},
			st:    newForwardState(),
		}
	}
	return m.train
}

// EndTraining releases the dedicated training session (tape, arena chunks,
// batch scratch) so a model kept around for serving does not pin
// training-sized buffers. A later TrainStep lazily recreates it.
func (m *Model) EndTraining() {
	m.train = nil
}

// run prepares the session for a new pass over recs: recycles the tape and
// arena, rebuilds batch scratch, and runs the forward pass.
func (s *session) run(m *Model, recs []*record.Record, idx []int) error {
	s.g.Reset()
	if err := m.makeBatchInto(s.b, recs, idx); err != nil {
		return err
	}
	m.forwardInto(s.g, s.b, s.st)
	return nil
}
