package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/compile"
	"repro/internal/schema"
	"repro/internal/tensor"
)

// state is the gob-serialisable snapshot of a trained model: everything a
// server needs to reload and answer queries (the deployable artifact of
// Figure 1). The serving signature is derivable from the embedded schema.
type state struct {
	SchemaJSON  []byte
	Choice      schema.Choice
	Slices      []string
	TokenVocab  []string
	EntityVocab []string
	Params      map[string]*tensor.Tensor
	Frozen      map[string]bool
	Seed        int64
	// ContextualState holds the frozen BERT-sim encoder when the choice
	// uses one (nil otherwise). Stored as an opaque gob blob produced by
	// the embeddings package.
	ContextualBlob []byte
	// Precision records the serving precision so snapshots recover it
	// (empty in pre-precision artifacts; treated as f64).
	Precision string
}

// ContextualCodec serialises a ContextualEncoder. The embeddings package
// registers its implementation via RegisterContextualCodec; keeping the
// hook indirect avoids a dependency cycle.
type ContextualCodec interface {
	Encode(enc compile.ContextualEncoder) ([]byte, error)
	Decode(blob []byte) (compile.ContextualEncoder, error)
}

var contextualCodec ContextualCodec

// RegisterContextualCodec installs the codec used for saving/loading
// contextual encoders.
func RegisterContextualCodec(c ContextualCodec) { contextualCodec = c }

// Save writes the model artifact to w.
func (m *Model) Save(w io.Writer) error {
	schemaJSON, err := m.Prog.Schema.JSON()
	if err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	st := state{
		SchemaJSON:  schemaJSON,
		Choice:      m.Prog.Choice,
		Slices:      m.Prog.Slices,
		TokenVocab:  vocabPayload(m.vocab.Tokens()),
		EntityVocab: vocabPayload(m.entVocab.Tokens()),
		Params:      map[string]*tensor.Tensor{},
		Frozen:      map[string]bool{},
		Seed:        m.Seed,
		Precision:   string(m.Precision()),
	}
	for _, p := range m.PS.All() {
		st.Params[p.Name] = p.Node.Value
		if p.Frozen {
			st.Frozen[p.Name] = true
		}
	}
	if m.contextual != nil {
		if contextualCodec == nil {
			return fmt.Errorf("model: save: no contextual codec registered")
		}
		blob, err := contextualCodec.Encode(m.contextual)
		if err != nil {
			return fmt.Errorf("model: save contextual: %w", err)
		}
		st.ContextualBlob = blob
	}
	return gob.NewEncoder(w).Encode(&st)
}

// vocabPayload strips the two reserved slots (they are re-added on load).
func vocabPayload(tokens []string) []string {
	if len(tokens) >= 2 {
		return tokens[2:]
	}
	return nil
}

// SaveFile writes the artifact to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	return m.Save(f)
}

// ErrCorruptArtifact marks a model artifact that failed to decode or
// validate on Load: truncated input, garbage gob, or a structurally
// inconsistent payload (parameter shape/data mismatches). Use
// errors.Is(err, ErrCorruptArtifact) to distinguish a damaged artifact
// from an I/O failure.
var ErrCorruptArtifact = errors.New("model: corrupt artifact")

// corruptf wraps a load failure so it reports as ErrCorruptArtifact.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptArtifact, fmt.Sprintf(format, args...))
}

// Load reads a model artifact written by Save. A damaged artifact —
// short read, garbage bytes, or an internally inconsistent payload —
// returns an error wrapping ErrCorruptArtifact and never panics: serving
// infrastructure loads artifacts from disks and networks that can hand
// it anything.
func Load(r io.Reader) (m *Model, err error) {
	// Decoding attacker-shaped bytes can trip panics deep inside gob or
	// the model constructors (e.g. a tensor whose header lies about its
	// length); convert any such panic into a typed corrupt-artifact error.
	defer func() {
		if v := recover(); v != nil {
			m, err = nil, corruptf("load panicked: %v", v)
		}
	}()
	var st state
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, corruptf("load: %v", err)
	}
	sch, err := schema.Parse(st.SchemaJSON)
	if err != nil {
		return nil, corruptf("load schema: %v", err)
	}
	prog, err := compile.Plan(sch, st.Choice, st.Slices)
	if err != nil {
		return nil, corruptf("load plan: %v", err)
	}
	res := &compile.Resources{TokenVocab: st.TokenVocab, EntityVocab: st.EntityVocab}
	family, dim, err := compile.EmbeddingFamily(st.Choice.Embedding)
	if err != nil {
		return nil, corruptf("load embedding: %v", err)
	}
	switch family {
	case "pretrained":
		// Placeholder with the right shape; real weights land below.
		res.StaticVectors = tensor.New(len(st.TokenVocab)+2, dim)
	case "bertsim":
		if contextualCodec == nil {
			return nil, fmt.Errorf("model: load: no contextual codec registered")
		}
		enc, err := contextualCodec.Decode(st.ContextualBlob)
		if err != nil {
			return nil, corruptf("load contextual: %v", err)
		}
		res.Contextual = enc
	}
	m, err = New(prog, res, st.Seed)
	if err != nil {
		return nil, corruptf("load: %v", err)
	}
	for _, p := range m.PS.All() {
		saved, ok := st.Params[p.Name]
		if !ok || saved == nil {
			return nil, corruptf("load: artifact missing parameter %q", p.Name)
		}
		if !saved.SameShape(p.Node.Value) {
			return nil, corruptf("load: parameter %q shape %dx%d, want %dx%d",
				p.Name, saved.Rows, saved.Cols, p.Node.Value.Rows, p.Node.Value.Cols)
		}
		// A tail-truncated or bit-flipped artifact can decode to a tensor
		// whose header shape disagrees with its data length; a bare copy
		// would silently load a partial parameter.
		if len(saved.Data) != saved.Rows*saved.Cols {
			return nil, corruptf("load: parameter %q has %d values for shape %dx%d",
				p.Name, len(saved.Data), saved.Rows, saved.Cols)
		}
		copy(p.Node.Value.Data, saved.Data)
		p.Frozen = st.Frozen[p.Name]
	}
	if err := m.SetPrecision(Precision(st.Precision)); err != nil {
		return nil, corruptf("load: %v", err)
	}
	return m, nil
}

// LoadFile reads a model artifact from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Bytes serialises the model to a byte slice (for the artifact store).
func (m *Model) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
