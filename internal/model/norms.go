package model

import (
	"repro/internal/labelmodel"
	"repro/internal/record"
)

// lossNorms carries the full-batch weight normalisers for every loss term
// Loss can build. The noise-aware losses are weighted means (normalised by
// the total weight of the rows they see), so a naive shard-wise loss would
// normalise by shard weight and the shard gradients would no longer sum to
// the full-batch gradient. The data-parallel trainer therefore precomputes
// each term's full-batch total here and passes it to the *Norm loss
// variants, making the decomposition exact: Σ_shards loss_s == loss_batch
// and Σ_shards grad_s == grad_batch, up to float re-association across
// shard boundaries (and bitwise for a single shard, because every total is
// accumulated in the same element order the serial op uses).
type lossNorms struct {
	rows         float64            // batch rows: membership-BCE normaliser
	token        map[string]float64 // per token task
	example      map[string]float64 // per example task (final + base expert)
	exampleSlice map[string][]float64
	set          map[string]float64 // per set task (segment weights)
	setSlice     map[string][]float64
}

// computeLossNorms walks the full batch (recs at dataset indices idx) in
// record order and accumulates, for every loss term, exactly the weight
// sum the corresponding op in Loss would compute over the whole batch:
// same skip conditions (mirroring Loss and makeBatchInto), same ascending
// record/position order, so each total is bitwise identical to the one the
// op would have summed internally. The W=1 trainer parity tests pin the
// mirror.
func (m *Model) computeLossNorms(recs []*record.Record, idx []int, targets map[string]*labelmodel.TaskTargets) *lossNorms {
	n := &lossNorms{
		rows:         float64(len(recs)),
		token:        map[string]float64{},
		example:      map[string]float64{},
		exampleSlice: map[string][]float64{},
		set:          map[string]float64{},
		setSlice:     map[string][]float64{},
	}

	// Full-batch padded length, exactly as makeBatchInto derives it: the
	// serial token-task loop bounds t by it, so the mirror must too.
	maxToks := 0
	for _, rec := range recs {
		if pv, ok := rec.Payloads[m.Prog.TokenPayload]; ok && !pv.Null {
			if len(pv.Tokens) > maxToks {
				maxToks = len(pv.Tokens)
			}
		}
	}
	L := maxToks + 1
	if L > m.Prog.MaxLen {
		L = m.Prog.MaxLen
	}

	for _, tname := range m.Prog.TokenTasks {
		tt := targets[tname]
		if tt == nil {
			continue
		}
		var tot float64
		for _, di := range idx {
			rd := tt.Dist[di]
			rw := tt.Weight[di]
			for t := 0; t < L && t < len(rd); t++ {
				if rw[t] <= 0 || rd[t] == nil {
					continue
				}
				tot += rw[t]
			}
		}
		n.token[tname] = tot
	}

	for _, tname := range m.Prog.ExampleTasks {
		tt := targets[tname]
		if tt == nil {
			continue
		}
		var tot float64
		sliceTots := make([]float64, len(m.Prog.Slices))
		for r, di := range idx {
			if len(tt.Dist[di]) == 0 || tt.Dist[di][0] == nil || tt.Weight[di][0] <= 0 {
				continue
			}
			w := tt.Weight[di][0]
			tot += w
			for s, sliceName := range m.Prog.Slices {
				if recs[r].InSlice(sliceName) {
					sliceTots[s] += w
				}
			}
		}
		n.example[tname] = tot
		n.exampleSlice[tname] = sliceTots
	}

	for _, tname := range m.Prog.SetTasks {
		tt := targets[tname]
		if tt == nil {
			continue
		}
		sp := m.Prog.Schema.Tasks[tname].Payload
		var tot float64
		sliceTots := make([]float64, len(m.Prog.Slices))
		for r, di := range idx {
			rec := recs[r]
			nCand := 0
			if cpv, ok := rec.Payloads[sp]; ok && !cpv.Null {
				nCand = len(cpv.Set)
			}
			if nCand == 0 {
				continue
			}
			if len(tt.Dist[di]) == 0 || tt.Dist[di][0] == nil || tt.Weight[di][0] <= 0 {
				continue
			}
			if len(tt.Dist[di][0]) != nCand {
				// Candidate count drifted; Loss skips the segment too.
				continue
			}
			w := tt.Weight[di][0]
			tot += w
			for s, sliceName := range m.Prog.Slices {
				if rec.InSlice(sliceName) {
					sliceTots[s] += w
				}
			}
		}
		n.set[tname] = tot
		n.setSlice[tname] = sliceTots
	}
	return n
}
