package model

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Serving-path GRU folding.
//
// At inference the GRU's input rows are exactly rows of the token
// embedding table (dropout is identity, no contextual features), so the
// input half of each gate matmul — x @ W_{z,r,h}[:in] over the
// concatenated [x ; h] — is a fixed linear map of the token embedding.
// Folding precomputes the three per-vocab input projections P_w = E @
// W_w[:in] once per parameter generation; a serving forward then runs the
// recurrence with one table-row read plus an H x H hidden matmul per gate,
// instead of gathering embeddings, concatenating [x ; h], and multiplying
// (in+H)-wide every timestep. Invalidation mirrors the conv fold: tables
// carry the Model.gen they were built from and rebuild on mismatch. The
// hidden-half weights and biases are copied, not aliased, so a fold
// snapshot stays immutable if parameters are mutated in place later.

// gruFold is an immutable snapshot of the folded GRU projections.
type gruFold struct {
	gen        uint64
	pz, pr, ph *tensor.Tensor // V x H: per-vocab input projections E @ W[:in]
	uz, ur, uh *tensor.Tensor // H x H: hidden-half recurrence weights W[in:]
	bz, br, bh []float64
}

// foldedGRU returns the folded projections for the current generation,
// rebuilding them when stale, or nil when folding does not apply.
func (m *Model) foldedGRU() *gruFold {
	if m.gru == nil || m.contextual != nil || m.vocab.Size() > maxFoldVocab {
		return nil
	}
	gen := m.gen.Load()
	if f := m.gruFoldCache.Load(); f != nil && f.gen == gen {
		return f
	}
	E := m.tokEmb.Table.Node.Value // V x in
	in, H := m.gru.In, m.gru.Hidden
	V := E.Rows
	f := &gruFold{gen: gen}
	split := func(w, b *nn.Param) (*tensor.Tensor, *tensor.Tensor, []float64) {
		W := w.Node.Value // (in+H) x H
		wx := &tensor.Tensor{Rows: in, Cols: H, Data: W.Data[:in*H]}
		wh := tensor.New(H, H)
		copy(wh.Data, W.Data[in*H:])
		p := tensor.MatMul(tensor.New(V, H), E, wx)
		return p, wh, append([]float64(nil), b.Node.Value.Data...)
	}
	f.pz, f.uz, f.bz = split(m.gru.Wz, m.gru.Bz)
	f.pr, f.ur, f.br = split(m.gru.Wr, m.gru.Br)
	f.ph, f.uh, f.bh = split(m.gru.Wh, m.gru.Bh)
	m.gruFoldCache.Store(f)
	return f
}

// foldedGRUForward runs the GRU recurrence straight from token ids using
// the folded input-projection tables. Only valid on no-grad graphs.
// Returns nil when folding does not apply. The arithmetic per element
// mirrors the unfolded op sequence (gate preactivations sum input
// projection + hidden matmul + bias; hNew = (1-z)*h + z*h̃; masked
// positions keep the previous state), so outputs match the standard path
// within float re-association — the parity test pins 1e-12.
func (m *Model) foldedGRUForward(g *nn.Graph, b *Batch) *nn.Node {
	if !g.NoGrad() {
		return nil
	}
	f := m.foldedGRU()
	if f == nil {
		return nil
	}
	B, L, H := b.B, b.L, m.gru.Hidden
	ids := b.TokenIDs
	mask := b.Mask

	h := g.NewTensor(B, H) // h0 = 0
	hn := g.NewTensor(B, H)
	hz := g.NewTensor(B, H)
	hr := g.NewTensor(B, H)
	hh := g.NewTensor(B, H)
	zt := g.NewTensor(B, H)
	rh := g.NewTensor(B, H)
	out := g.NewTensor(B*L, H)

	for t := 0; t < L; t++ {
		// Hidden-half recurrences for the update and reset gates.
		tensor.MatMul(hz, h, f.uz)
		tensor.MatMul(hr, h, f.ur)
		for bi := 0; bi < B; bi++ {
			id := ids[bi*L+t]
			pzr, prr := f.pz.Row(id), f.pr.Row(id)
			hzr, hrr := hz.Row(bi), hr.Row(bi)
			ztr, rhr := zt.Row(bi), rh.Row(bi)
			hrow := h.Row(bi)
			for j := 0; j < H; j++ {
				ztr[j] = sigmoidVal(pzr[j] + hzr[j] + f.bz[j])
				rv := sigmoidVal(prr[j] + hrr[j] + f.br[j])
				rhr[j] = rv * hrow[j]
			}
		}
		// Candidate state from the reset-gated hidden half.
		tensor.MatMul(hh, rh, f.uh)
		for bi := 0; bi < B; bi++ {
			row := bi*L + t
			hrow := h.Row(bi)
			nrow := hn.Row(bi)
			if mask[row] == 0 {
				// Padded position: state unchanged (the unfolded path
				// multiplies the update away; same value, fewer flops).
				copy(nrow, hrow)
				copy(out.Row(row), hrow)
				continue
			}
			phr := f.ph.Row(ids[row])
			hhr := hh.Row(bi)
			ztr := zt.Row(bi)
			for j := 0; j < H; j++ {
				ht := math.Tanh(phr[j] + hhr[j] + f.bh[j])
				z := ztr[j]
				nrow[j] = (1-z)*hrow[j] + z*ht
			}
			copy(out.Row(row), nrow)
		}
		h, hn = hn, h
	}
	return g.Const(out)
}
