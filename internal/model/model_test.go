package model

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compile"
	"repro/internal/embeddings"
	"repro/internal/labelmodel"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/workload"
)

func testChoice() schema.Choice {
	return schema.Choice{
		Embedding: "hash-16", Encoder: "CNN", Hidden: 24,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 2, Dropout: 0, BatchSize: 8,
	}
}

func testResources() *compile.Resources {
	kb := workload.DefaultKB()
	var entIDs []string
	for _, e := range kb.Entities {
		entIDs = append(entIDs, e.ID)
	}
	return &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: entIDs,
	}
}

func buildModel(t *testing.T, choice schema.Choice, slices []string) *Model {
	t.Helper()
	prog, err := compile.Plan(workload.FactoidSchema(), choice, slices)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, testResources(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallDataset(t *testing.T, n int, seed int64) *record.Dataset {
	t.Helper()
	return workload.StandardDataset(n, seed, 0.2)
}

func TestNewModelAllEncoders(t *testing.T) {
	for _, enc := range []string{"BOW", "CNN", "GRU", "BiGRU"} {
		c := testChoice()
		c.Encoder = enc
		m := buildModel(t, c, nil)
		if m.PS.NumParams() == 0 {
			t.Fatalf("%s: no parameters", enc)
		}
		// One forward pass must succeed and produce outputs for all tasks.
		ds := smallDataset(t, 12, 3)
		outs, err := m.Predict(ds.Records)
		if err != nil {
			t.Fatalf("%s: predict: %v", enc, err)
		}
		for i, out := range outs {
			for _, task := range []string{"POS", "EntityType", "Intent", "IntentArg"} {
				if _, ok := out[task]; !ok {
					t.Fatalf("%s: record %d missing task %s", enc, i, task)
				}
			}
		}
	}
}

func TestPredictShapes(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 20, 5)
	outs, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range ds.Records {
		out := outs[i]
		nTok := len(rec.Payloads["tokens"].Tokens)
		if len(out["POS"].TokenClasses) != nTok {
			t.Fatalf("POS length %d != %d", len(out["POS"].TokenClasses), nTok)
		}
		if len(out["EntityType"].TokenBits) != nTok {
			t.Fatalf("EntityType rows wrong")
		}
		if out["Intent"].Class == "" {
			t.Fatalf("Intent missing")
		}
		var probSum float64
		for _, p := range out["Intent"].Probs {
			probSum += p
		}
		if math.Abs(probSum-1) > 1e-9 {
			t.Fatalf("Intent probs sum %g", probSum)
		}
		nCand := len(rec.Payloads["entities"].Set)
		if nCand > 0 {
			if out["IntentArg"].Select < 0 || out["IntentArg"].Select >= nCand {
				t.Fatalf("IntentArg out of range")
			}
			if len(out["IntentArg"].SelectProbs) != nCand {
				t.Fatalf("SelectProbs wrong length")
			}
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 10, 7)
	o1, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1 {
		if o1[i]["Intent"].Class != o2[i]["Intent"].Class {
			t.Fatalf("prediction not deterministic")
		}
	}
}

func TestModelGradCheck(t *testing.T) {
	// Gradient-check the full compiled model (CNN encoder, all four task
	// losses) — the definitive autodiff integration test.
	c := testChoice()
	c.Hidden = 8
	c.Embedding = "hash-6"
	m := buildModel(t, c, nil)
	ds := smallDataset(t, 4, 11)
	idx := []int{0, 1, 2, 3}
	targets := combineAll(t, ds)
	build := func() (*nn.Graph, *nn.Node) {
		g, st, err := m.Forward(ds.Records[:4], idx, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := m.LossForTest(g, st, targets, LossConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return g, loss
	}
	// Check a subset of parameters (full set is slow): embedding rows get
	// sparse grads; heads and encoder get dense ones.
	var check []*nn.Param
	for _, p := range m.PS.All() {
		switch p.Name {
		case "enc.cnn.W", "enc.cnn.b", "head.Intent.W", "head.Intent.b",
			"head.POS.W", "head.EntityType.b", "head.IntentArg.mlp.b", "head.IntentArg.score.W",
			"ent.emb":
			check = append(check, p)
		}
	}
	if len(check) < 5 {
		t.Fatalf("parameter names drifted; only %d matched", len(check))
	}
	if _, err := nn.GradCheck(check, build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestModelGradCheckSliced(t *testing.T) {
	c := testChoice()
	c.Hidden = 8
	c.Embedding = "hash-6"
	m := buildModel(t, c, []string{workload.SliceNutrition, workload.SliceDisambig})
	ds := smallDataset(t, 4, 13)
	idx := []int{0, 1, 2, 3}
	targets := combineAll(t, ds)
	build := func() (*nn.Graph, *nn.Node) {
		g, st, err := m.Forward(ds.Records[:4], idx, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		loss, err := m.LossForTest(g, st, targets, LossConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return g, loss
	}
	var check []*nn.Param
	for _, p := range m.PS.All() {
		switch p.Name {
		case "head.Intent.expert0.W", "head.Intent.expert1.W", "head.Intent.member0.W",
			"head.Intent.out.W", "head.IntentArg.exmlp0.W", "head.IntentArg.member1.W",
			"head.IntentArg.exscore1.W":
			check = append(check, p)
		}
	}
	if len(check) < 5 {
		t.Fatalf("sliced parameter names drifted; only %d matched", len(check))
	}
	if _, err := nn.GradCheck(check, build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func combineAll(t *testing.T, ds *record.Dataset) map[string]*labelmodel.TaskTargets {
	t.Helper()
	targets := map[string]*labelmodel.TaskTargets{}
	for _, tname := range ds.Schema.TaskNames() {
		tt, err := labelmodel.Combine(ds.Records, ds.Schema, tname, labelmodel.CombineConfig{})
		if err != nil {
			t.Fatal(err)
		}
		targets[tname] = tt
	}
	return targets
}

func TestTrainStepReducesLoss(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 32, 17)
	targets := combineAll(t, ds)
	idx := make([]int, len(ds.Records))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(1))
	optimizer := opt.NewAdam(m.PS.All())
	var first, last float64
	for step := 0; step < 30; step++ {
		loss, err := m.TrainStep(ds.Records, idx, targets, LossConfig{}, optimizer, 0.01, 5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestEvaluateAgainstGold(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 40, 19)
	ms, err := m.Evaluate(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"POS", "EntityType", "Intent", "IntentArg"} {
		tm, ok := ms[task]
		if !ok {
			t.Fatalf("missing metrics for %s", task)
		}
		if tm.N == 0 {
			t.Fatalf("%s evaluated over zero units", task)
		}
		if tm.Primary < 0 || tm.Primary > 1 {
			t.Fatalf("%s primary out of range: %g", task, tm.Primary)
		}
	}
	if ms["Intent"].PrimaryName != "accuracy" || ms["EntityType"].PrimaryName != "f1" {
		t.Fatalf("primary metric names wrong")
	}
	// EvaluateTag filters.
	tagged, err := m.EvaluateTag(ds.Records, record.TagTest)
	if err != nil {
		t.Fatal(err)
	}
	if tagged["Intent"].N >= ms["Intent"].N {
		t.Fatalf("EvaluateTag did not filter")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := buildModel(t, testChoice(), []string{workload.SliceNutrition})
	ds := smallDataset(t, 10, 23)
	before, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m2.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i]["Intent"].Class != after[i]["Intent"].Class {
			t.Fatalf("Intent drift after reload")
		}
		if before[i]["IntentArg"].Select != after[i]["IntentArg"].Select {
			t.Fatalf("IntentArg drift after reload")
		}
		for c, p := range before[i]["Intent"].Probs {
			if math.Abs(p-after[i]["Intent"].Probs[c]) > 1e-12 {
				t.Fatalf("prob drift after reload")
			}
		}
	}
}

func TestSaveLoadBERTSim(t *testing.T) {
	RegisterContextualCodec(embeddings.BERTSimCodec{})
	corpus := workload.Corpus(60, 29)
	vocab := embeddings.NewVocab(workload.Vocabulary(workload.DefaultKB()))
	enc := embeddings.PretrainBERTSim(corpus, vocab, embeddings.BERTSimConfig{Dim: 8, Hidden: 8, Epochs: 1, Seed: 31})
	c := testChoice()
	c.Embedding = "bertsim-8"
	prog, err := compile.Plan(workload.FactoidSchema(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := testResources()
	res.Contextual = enc
	m, err := New(prog, res, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 8, 31)
	before, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := m2.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i]["Intent"].Class != after[i]["Intent"].Class {
			t.Fatalf("bertsim model drift after reload")
		}
	}
}

func TestMissingResourcesErrors(t *testing.T) {
	c := testChoice()
	c.Embedding = "pretrained-16"
	prog, err := compile.Plan(workload.FactoidSchema(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, testResources(), 1); err == nil {
		t.Fatalf("pretrained without vectors accepted")
	}
	c.Embedding = "bertsim-16"
	prog2, err := compile.Plan(workload.FactoidSchema(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog2, testResources(), 1); err == nil {
		t.Fatalf("bertsim without encoder accepted")
	}
}

func TestEmptyCandidateSets(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 4, 37)
	// Remove the candidates from one record.
	ds.Records[1].Payloads["entities"] = record.PayloadValue{Set: nil}
	outs, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if outs[1]["IntentArg"].Select != -1 {
		t.Fatalf("empty candidate set should predict -1")
	}
	if outs[0]["IntentArg"].Select < 0 {
		t.Fatalf("non-empty candidate set affected")
	}
}

// TestConcurrentPredict exercises the pooled inference sessions from many
// goroutines (run with -race): each call must get its own arena-backed
// graph and produce outputs identical to a serial pass.
func TestConcurrentPredict(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 16, 5)
	want, err := m.Predict(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				outs, err := m.Predict(ds.Records)
				if err != nil {
					errs <- err
					return
				}
				for r := range outs {
					for task, to := range outs[r] {
						if to.Class != want[r][task].Class || to.Select != want[r][task].Select {
							errs <- fmt.Errorf("record %d task %s diverged under concurrency", r, task)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
