package model

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/labelmodel"
	"repro/internal/opt"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/workload"
)

// benchFixture builds the epoch-benchmark setup: a GRU model (the
// heaviest encoder — tiny per-timestep matmuls stay under the kernel
// pool's parallel threshold, so the serial path is effectively
// single-core and data parallelism is the only lever) over a mid-sized
// supervised dataset.
func benchFixture(b *testing.B) (*Model, *record.Dataset, map[string]*labelmodel.TaskTargets) {
	b.Helper()
	choice := schema.Choice{
		Embedding: "hash-24", Encoder: "GRU", Hidden: 32,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.02, Epochs: 1, Dropout: 0, BatchSize: 32,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		b.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := New(prog, &compile.Resources{TokenVocab: workload.Vocabulary(kb), EntityVocab: ents}, 7)
	if err != nil {
		b.Fatal(err)
	}
	ds := workload.StandardDataset(256, 3, 0.2)
	targets := map[string]*labelmodel.TaskTargets{}
	for _, tname := range ds.Schema.TaskNames() {
		tt, err := labelmodel.Combine(ds.Records, ds.Schema, tname, labelmodel.CombineConfig{})
		if err != nil {
			b.Fatal(err)
		}
		targets[tname] = tt
	}
	return m, ds, targets
}

// BenchmarkTrainEpochParallel measures one full training epoch (batch 32
// over 256 records) for the serial TrainStep and the data-parallel
// trainer at W in {1, 2, 4, 8}. On a multi-core runner the W>1 variants
// should approach linear epoch-time scaling (PERFORMANCE.md records the
// serial/parallel comparison); on a single-core machine they measure the
// engine's coordination overhead instead. recs/s is attached as a custom
// metric so BENCH_train.json captures throughput directly.
func BenchmarkTrainEpochParallel(b *testing.B) {
	const batch = 32
	run := func(b *testing.B, step func([]*record.Record, []int, map[string]*labelmodel.TaskTargets, LossConfig, opt.Optimizer, float64, float64, *rand.Rand) (float64, error), optimizer opt.Optimizer, ds *record.Dataset, targets map[string]*labelmodel.TaskTargets) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(ds.Records); lo += batch {
				hi := lo + batch
				if hi > len(ds.Records) {
					hi = len(ds.Records)
				}
				idx := make([]int, hi-lo)
				for j := range idx {
					idx[j] = lo + j
				}
				if _, err := step(ds.Records[lo:hi], idx, targets, LossConfig{}, optimizer, 0.02, 5, rng); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(ds.Records))*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
	}

	b.Run("serial", func(b *testing.B) {
		m, ds, targets := benchFixture(b)
		run(b, m.TrainStep, opt.NewAdam(m.PS.All()), ds, targets)
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("W"+string(rune('0'+w)), func(b *testing.B) {
			m, ds, targets := benchFixture(b)
			pt, err := NewParallelTrainer(m, w)
			if err != nil {
				b.Fatal(err)
			}
			defer pt.Close()
			run(b, pt.TrainStep, opt.NewAdam(m.PS.All()), ds, targets)
		})
	}
}
