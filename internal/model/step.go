package model

import (
	"math/rand"

	"repro/internal/labelmodel"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/record"
)

// TrainStep runs one optimisation step on a batch of records (at dataset
// indices idx) and returns the batch loss. Exposed so the trainer and the
// search harness share one code path.
func (m *Model) TrainStep(recs []*record.Record, idx []int, targets map[string]*labelmodel.TaskTargets, lossCfg LossConfig, optimizer opt.Optimizer, lr, clipNorm float64, rng *rand.Rand) (float64, error) {
	s := m.trainSession()
	s.g.SetRand(rng)
	// One salt per step, drawn before any other rng use so the parallel
	// trainer (which draws at the same stream position) replays the same
	// keyed dropout masks. Dropout-free models skip the draw entirely and
	// keep their pre-keying rng stream bit-for-bit.
	if m.Prog.Choice.Dropout > 0 {
		s.g.SetDropoutSalt(rng.Uint64())
	}
	if err := s.run(m, recs, idx); err != nil {
		return 0, err
	}
	loss, err := m.Loss(s.g, s.st, targets, lossCfg)
	if err != nil {
		return 0, err
	}
	s.g.Backward(loss)
	opt.ClipGradNorm(m.PS.All(), clipNorm)
	optimizer.Step(lr)
	m.ParamsChanged()
	return loss.Value.Data[0], nil
}

// Forward exposes a raw forward pass for diagnostic tooling (gradient
// checks in tests, probing representations). Training callers should use
// TrainStep.
func (m *Model) Forward(recs []*record.Record, idx []int, training bool, rng *rand.Rand) (*nn.Graph, *forwardState, error) {
	b, err := m.makeBatch(recs, idx)
	if err != nil {
		return nil, nil, err
	}
	g := nn.NewGraph(training, rng)
	st := m.forward(g, b)
	return g, st, nil
}

// LossForTest builds the training loss for a forward state (test hook for
// gradient checking the full compiled model).
func (m *Model) LossForTest(g *nn.Graph, st *forwardState, targets map[string]*labelmodel.TaskTargets, cfg LossConfig) (*nn.Node, error) {
	return m.Loss(g, st, targets, cfg)
}
