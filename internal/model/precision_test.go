package model

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Reduced-precision parity harness: the f32 serve path must track the
// f64 path within 1e-4 relative on every logit surface, agree 100% on
// decisions over the seed corpora, and survive adversarial parameter
// magnitudes. Tolerance tiers: 1e-12 pins f64 fold-vs-unfolded
// (fold_test.go); 1e-4 relative pins f32-vs-f64 logits; decisions are
// pinned exactly.

// f32Encoders lists every encoder the parity harness covers. BiGRU has
// no f64 folded path, so its f32 comparison baseline is the unfolded
// standard forward (as are all the others', via a grad-tracking graph).
var f32Encoders = []string{"CNN", "BOW", "GRU", "BiGRU"}

// relLogitDelta returns max_i |a_i - b_i| / max(1, |b_i|).
func relLogitDelta(a, b *tensor.Tensor) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	worst := 0.0
	for i, v := range a.Data {
		ref := b.Data[i]
		d := math.Abs(v-ref) / math.Max(1, math.Abs(ref))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// forwardBothPrecisions runs the standard f64 forward (grad graph, no
// folds) and the f32 forward on the same batch and returns both states.
func forwardBothPrecisions(t *testing.T, m *Model, b *Batch) (f64st, f32st *forwardState, gInf *nn.Graph) {
	t.Helper()
	gStd := nn.NewGraph(false, nil)
	f64st = newForwardState()
	m.forwardInto(gStd, b, f64st)

	gInf = nn.NewInferenceGraph(tensor.NewArena())
	f32st = newForwardState()
	if !m.forward32(gInf, b, f32st) {
		t.Fatalf("f32 path did not engage")
	}
	return f64st, f32st, gInf
}

func checkLogitParity(t *testing.T, m *Model, f64st, f32st *forwardState, tol float64, ctx string) {
	t.Helper()
	for _, tname := range m.Prog.TokenTasks {
		if d := relLogitDelta(f32st.tokenLogits[tname].Value, f64st.tokenLogits[tname].Value); d > tol {
			t.Fatalf("%s: token task %s rel logit delta %.3g > %.3g", ctx, tname, d, tol)
		}
	}
	for _, tname := range m.Prog.ExampleTasks {
		if d := relLogitDelta(f32st.exampleFinal[tname].Value, f64st.exampleFinal[tname].Value); d > tol {
			t.Fatalf("%s: example task %s rel logit delta %.3g > %.3g", ctx, tname, d, tol)
		}
	}
	for _, tname := range m.Prog.SetTasks {
		if d := relLogitDelta(f32st.setScores[tname].Value, f64st.setScores[tname].Value); d > tol {
			t.Fatalf("%s: set task %s rel score delta %.3g > %.3g", ctx, tname, d, tol)
		}
	}
}

// TestF32LogitParityPerEncoder pins the 1e-4-relative logit bound for
// every encoder the serve path supports.
func TestF32LogitParityPerEncoder(t *testing.T) {
	for _, enc := range f32Encoders {
		t.Run(enc, func(t *testing.T) {
			c := testChoice()
			c.Encoder = enc
			m := buildModel(t, c, nil)
			ds := smallDataset(t, 16, 5)
			b, err := m.makeBatch(ds.Records, nil)
			if err != nil {
				t.Fatal(err)
			}
			f64st, f32st, _ := forwardBothPrecisions(t, m, b)
			checkLogitParity(t, m, f64st, f32st, 1e-4, enc)
			// tokenRep/queryRep parity too — looser: intermediate, not a
			// decision surface.
			if d := relLogitDelta(f32st.tokenRep.Value, f64st.tokenRep.Value); d > 1e-4 {
				t.Fatalf("%s: tokenRep rel delta %.3g", enc, d)
			}
		})
	}
}

// sameDecisions compares the decision surfaces of two outputs: class
// argmax, token class argmax, bitvector thresholds, select argmax.
func sameDecisions(a, b Output) error {
	for tname, ta := range a {
		tb := b[tname]
		if ta.Class != tb.Class {
			return fmt.Errorf("%s: class %q vs %q", tname, ta.Class, tb.Class)
		}
		if len(ta.TokenClasses) != len(tb.TokenClasses) {
			return fmt.Errorf("%s: token class count", tname)
		}
		for i := range ta.TokenClasses {
			if ta.TokenClasses[i] != tb.TokenClasses[i] {
				return fmt.Errorf("%s: token %d class %q vs %q", tname, i, ta.TokenClasses[i], tb.TokenClasses[i])
			}
		}
		if len(ta.TokenBits) != len(tb.TokenBits) {
			return fmt.Errorf("%s: token bits count", tname)
		}
		for i := range ta.TokenBits {
			if len(ta.TokenBits[i]) != len(tb.TokenBits[i]) {
				return fmt.Errorf("%s: token %d bit count", tname, i)
			}
			for j := range ta.TokenBits[i] {
				if ta.TokenBits[i][j] != tb.TokenBits[i][j] {
					return fmt.Errorf("%s: token %d bit %d", tname, i, j)
				}
			}
		}
		if ta.Select != tb.Select {
			return fmt.Errorf("%s: select %d vs %d", tname, ta.Select, tb.Select)
		}
	}
	return nil
}

// TestF32DecisionAgreementOnSeedCorpus requires 100% argmax/span-decision
// agreement between the f32 and f64 serve paths over the seed corpus,
// per encoder, through the public Predict API.
func TestF32DecisionAgreementOnSeedCorpus(t *testing.T) {
	for _, enc := range f32Encoders {
		t.Run(enc, func(t *testing.T) {
			c := testChoice()
			c.Encoder = enc
			m := buildModel(t, c, nil)
			ds := smallDataset(t, 120, 9)

			outs64, err := m.Predict(ds.Records)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.SetPrecision(PrecisionF32); err != nil {
				t.Fatal(err)
			}
			outs32, err := m.Predict(ds.Records)
			if err != nil {
				t.Fatal(err)
			}
			for i := range outs64 {
				if err := sameDecisions(outs64[i], outs32[i]); err != nil {
					t.Fatalf("record %d decisions diverge: %v", i, err)
				}
			}
		})
	}
}

// TestF32AdversarialMagnitudeSweep is the gradcheck-style sweep: scale
// the embedding table across extreme magnitudes and require the relative
// logit bound to hold at each point (float32 relative error is
// scale-free; this guards against hidden absolute-error assumptions).
func TestF32AdversarialMagnitudeSweep(t *testing.T) {
	for _, scale := range []float64{1e-3, 1e3} {
		t.Run(fmt.Sprintf("scale=%g", scale), func(t *testing.T) {
			m := buildModel(t, testChoice(), nil) // CNN
			ds := smallDataset(t, 8, 3)
			b, err := m.makeBatch(ds.Records, nil)
			if err != nil {
				t.Fatal(err)
			}
			E := m.tokEmb.Table.Node.Value
			for i := range E.Data {
				E.Data[i] *= scale
			}
			m.ParamsChanged()
			f64st, f32st, _ := forwardBothPrecisions(t, m, b)
			checkLogitParity(t, m, f64st, f32st, 1e-4, fmt.Sprintf("scale %g", scale))
		})
	}
}

// TestF32GuardsAndInvalidation: the f32 path must not engage on grad
// graphs, the snapshot must be cached per generation and rebuilt after
// ParamsChanged, and a rebuilt snapshot must reflect the new weights.
func TestF32GuardsAndInvalidation(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	if err := m.SetPrecision(PrecisionF32); err != nil {
		t.Fatal(err)
	}
	ds := smallDataset(t, 4, 4)
	b, err := m.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Grad graphs never take the f32 path: forwardInto must produce
	// bit-identical results to a plain f64 model on the same graph type.
	gStd := nn.NewGraph(false, nil)
	st := newForwardState()
	m.forwardInto(gStd, b, st)
	if st.tokenRep == nil || st.tokenRep.Value == nil {
		t.Fatalf("standard forward did not run")
	}

	s1 := m.serve32Snapshot()
	if s1 == nil {
		t.Fatalf("snapshot did not build")
	}
	if m.serve32Snapshot() != s1 {
		t.Fatalf("snapshot rebuilt without a parameter change")
	}
	m.conv.W.Node.Value.Data[0] += 0.5
	m.ParamsChanged()
	s2 := m.serve32Snapshot()
	if s2 == s1 {
		t.Fatalf("snapshot not rebuilt after ParamsChanged")
	}
	if s2.conv.p0.At(2, 0) == s1.conv.p0.At(2, 0) {
		t.Fatalf("rebuilt snapshot does not reflect the new weights")
	}
}

// TestF32TableFootprint pins the headline memory win: quantized folded
// tables must be at least 1.9x smaller than the f64 tables.
func TestF32TableFootprint(t *testing.T) {
	for _, enc := range []string{"CNN", "GRU", "BOW"} {
		t.Run(enc, func(t *testing.T) {
			c := testChoice()
			c.Encoder = enc
			m := buildModel(t, c, nil)
			f64bytes := m.FoldedTableBytes()
			if f64bytes == 0 {
				t.Fatalf("no f64 folded tables for %s", enc)
			}
			if err := m.SetPrecision(PrecisionF32); err != nil {
				t.Fatal(err)
			}
			f32bytes := m.FoldedTableBytes()
			if f32bytes == 0 {
				t.Fatalf("no f32 folded tables for %s", enc)
			}
			ratio := float64(f64bytes) / float64(f32bytes)
			if ratio < 1.9 {
				t.Fatalf("%s table footprint ratio %.2f < 1.9 (f64 %d, f32 %d)", enc, ratio, f64bytes, f32bytes)
			}
		})
	}
}

// TestPrecisionTravelsWithArtifactsAndClones: Save/Load round trips the
// precision (so fleet snapshots recover it) and Clone inherits it (so
// fine-tuned shadow candidates serve at the primary's precision).
func TestPrecisionTravelsWithArtifactsAndClones(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	if m.Precision() != PrecisionF64 {
		t.Fatalf("default precision %q", m.Precision())
	}
	if err := m.SetPrecision(PrecisionF32); err != nil {
		t.Fatal(err)
	}
	if m.Info().Precision != "f32" {
		t.Fatalf("Info precision %q", m.Info().Precision)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Precision() != PrecisionF32 {
		t.Fatalf("loaded precision %q", loaded.Precision())
	}

	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision() != PrecisionF32 {
		t.Fatalf("clone precision %q", c.Precision())
	}

	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatalf("ParsePrecision accepted f16")
	}
	if p, err := ParsePrecision(""); err != nil || p != PrecisionF64 {
		t.Fatalf("ParsePrecision empty: %v %v", p, err)
	}
	if err := m.SetPrecision("int8"); err == nil {
		t.Fatalf("SetPrecision accepted int8")
	}
}

// TestF32PredictAllocsNoWorseThanF64 pins the f32 plane's per-predict
// allocation count at (no worse than) the f64 path's: the scratch bump
// allocator plus value-captured matmul fan-out mean the steady state
// heap-allocates only what decode copies out. Guards against escape
// regressions in the f32 kernels (e.g. a closure capturing a scratch
// tensor header would add ~a dozen allocs per op).
func TestF32PredictAllocsNoWorseThanF64(t *testing.T) {
	c := testChoice()
	c.Encoder = "GRU"
	m := buildModel(t, c, nil)
	ds := smallDataset(t, 8, 11)
	rec := ds.Records[0]

	measure := func(p Precision) float64 {
		if err := m.SetPrecision(p); err != nil {
			t.Fatal(err)
		}
		if _, err := m.PredictOne(rec); err != nil { // warm session pool + fold caches
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := m.PredictOne(rec); err != nil {
				t.Fatal(err)
			}
		})
	}
	a64 := measure(PrecisionF64)
	a32 := measure(PrecisionF32)
	if a32 > a64+2 {
		t.Fatalf("f32 predict allocates %.0f/op vs f64 %.0f/op", a32, a64)
	}
	t.Logf("allocs/op: f64 %.0f, f32 %.0f", a64, a32)
}
