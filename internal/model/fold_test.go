package model

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestFoldedConvParity pins the folded serving encoder directly against
// the standard embedding+conv path: same batch, same parameters, token
// representations within 1e-12. This is the direct guard for fold.go's
// block offsets and example-boundary handling (the end-to-end quality
// gates would only catch gross divergence).
func TestFoldedConvParity(t *testing.T) {
	m := buildModel(t, testChoice(), nil) // CNN encoder
	ds := smallDataset(t, 10, 4)

	b, err := m.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Standard path: grad-tracking graph never folds.
	gStd := nn.NewGraph(false, nil)
	stStd := newForwardState()
	m.forwardInto(gStd, b, stStd)

	// Serving path: no-grad graph takes the folded tables.
	gInf := nn.NewInferenceGraph(tensor.NewArena())
	if m.foldedConvForward(gInf, b) == nil {
		t.Fatalf("folded path did not engage for a CNN model")
	}
	gInf.Reset()
	stInf := newForwardState()
	m.forwardInto(gInf, b, stInf)

	if !tensor.Equal(stInf.tokenRep.Value, stStd.tokenRep.Value, 1e-12) {
		t.Fatalf("folded tokenRep diverges from standard encoder")
	}
	for _, tname := range m.Prog.ExampleTasks {
		if !tensor.Equal(stInf.exampleFinal[tname].Value, stStd.exampleFinal[tname].Value, 1e-12) {
			t.Fatalf("folded %s logits diverge", tname)
		}
	}
	for _, tname := range m.Prog.SetTasks {
		if !tensor.Equal(stInf.setScores[tname].Value, stStd.setScores[tname].Value, 1e-12) {
			t.Fatalf("folded %s scores diverge", tname)
		}
	}
}

// TestFoldedBOWParity pins the folded BOW serving path against the
// standard embedding+dropout forward: same batch, same parameters, every
// task output within 1e-12.
func TestFoldedBOWParity(t *testing.T) {
	c := testChoice()
	c.Encoder = "BOW"
	m := buildModel(t, c, nil)
	ds := smallDataset(t, 10, 4)

	b, err := m.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Standard path: grad-tracking graph never folds.
	gStd := nn.NewGraph(false, nil)
	stStd := newForwardState()
	m.forwardInto(gStd, b, stStd)

	// Serving path: no-grad graph takes the direct row gather.
	gInf := nn.NewInferenceGraph(tensor.NewArena())
	if m.foldedBOWForward(gInf, b) == nil {
		t.Fatalf("folded path did not engage for a BOW model")
	}
	gInf.Reset()
	stInf := newForwardState()
	m.forwardInto(gInf, b, stInf)

	if !tensor.Equal(stInf.tokenRep.Value, stStd.tokenRep.Value, 1e-12) {
		t.Fatalf("folded BOW tokenRep diverges from standard encoder")
	}
	for _, tname := range m.Prog.TokenTasks {
		if !tensor.Equal(stInf.tokenLogits[tname].Value, stStd.tokenLogits[tname].Value, 1e-12) {
			t.Fatalf("folded %s logits diverge", tname)
		}
	}
	for _, tname := range m.Prog.ExampleTasks {
		if !tensor.Equal(stInf.exampleFinal[tname].Value, stStd.exampleFinal[tname].Value, 1e-12) {
			t.Fatalf("folded %s logits diverge", tname)
		}
	}
	for _, tname := range m.Prog.SetTasks {
		if !tensor.Equal(stInf.setScores[tname].Value, stStd.setScores[tname].Value, 1e-12) {
			t.Fatalf("folded %s scores diverge", tname)
		}
	}
}

// TestFoldedGRUParity pins the folded GRU serving path (per-vocab input
// projections + H x H hidden recurrences) against the standard
// embedding+GRU forward: same batch, same parameters, every task output
// within 1e-12.
func TestFoldedGRUParity(t *testing.T) {
	c := testChoice()
	c.Encoder = "GRU"
	m := buildModel(t, c, nil)
	ds := smallDataset(t, 10, 4)

	b, err := m.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Standard path: grad-tracking graph never folds.
	gStd := nn.NewGraph(false, nil)
	stStd := newForwardState()
	m.forwardInto(gStd, b, stStd)

	// Serving path: no-grad graph takes the folded recurrence.
	gInf := nn.NewInferenceGraph(tensor.NewArena())
	if m.foldedGRUForward(gInf, b) == nil {
		t.Fatalf("folded path did not engage for a GRU model")
	}
	gInf.Reset()
	stInf := newForwardState()
	m.forwardInto(gInf, b, stInf)

	if !tensor.Equal(stInf.tokenRep.Value, stStd.tokenRep.Value, 1e-12) {
		t.Fatalf("folded GRU tokenRep diverges from standard encoder")
	}
	for _, tname := range m.Prog.TokenTasks {
		if !tensor.Equal(stInf.tokenLogits[tname].Value, stStd.tokenLogits[tname].Value, 1e-12) {
			t.Fatalf("folded %s logits diverge", tname)
		}
	}
	for _, tname := range m.Prog.ExampleTasks {
		if !tensor.Equal(stInf.exampleFinal[tname].Value, stStd.exampleFinal[tname].Value, 1e-12) {
			t.Fatalf("folded %s logits diverge", tname)
		}
	}
	for _, tname := range m.Prog.SetTasks {
		if !tensor.Equal(stInf.setScores[tname].Value, stStd.setScores[tname].Value, 1e-12) {
			t.Fatalf("folded %s scores diverge", tname)
		}
	}
}

// TestFoldedGRUGuardsAndInvalidation: the fold must not engage on grad
// graphs or BiGRU models, and stale tables must rebuild after a parameter
// mutation signalled via ParamsChanged — with the rebuilt projections
// reflecting the new weights.
func TestFoldedGRUGuardsAndInvalidation(t *testing.T) {
	c := testChoice()
	c.Encoder = "GRU"
	m := buildModel(t, c, nil)
	ds := smallDataset(t, 4, 4)
	b, err := m.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.foldedGRUForward(nn.NewGraph(false, nil), b) != nil {
		t.Fatalf("folded GRU engaged on a grad-tracking graph")
	}
	cb := testChoice()
	cb.Encoder = "BiGRU"
	bi := buildModel(t, cb, nil)
	bb, err := bi.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bi.foldedGRUForward(nn.NewInferenceGraph(tensor.NewArena()), bb) != nil {
		t.Fatalf("folded GRU engaged for a BiGRU model")
	}

	f1 := m.foldedGRU()
	if f1 == nil {
		t.Fatalf("fold did not build")
	}
	if m.foldedGRU() != f1 {
		t.Fatalf("fold rebuilt without a parameter change")
	}
	m.gru.Wz.Node.Value.Data[0] += 0.5
	m.ParamsChanged()
	f2 := m.foldedGRU()
	if f2 == f1 {
		t.Fatalf("fold not rebuilt after ParamsChanged")
	}
	// Row 0 is the zero pad embedding, so probe a real token's projection.
	if math.Abs(f2.pz.At(2, 0)-f1.pz.At(2, 0)) < 1e-15 {
		t.Fatalf("rebuilt fold does not reflect the new weights")
	}
}

// TestFoldedBOWDoesNotEngageOffPath checks the guards: grad graphs and
// non-BOW encoders must fall through to the standard forward.
func TestFoldedBOWDoesNotEngageOffPath(t *testing.T) {
	c := testChoice()
	c.Encoder = "BOW"
	m := buildModel(t, c, nil)
	ds := smallDataset(t, 4, 4)
	b, err := m.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.foldedBOWForward(nn.NewGraph(false, nil), b) != nil {
		t.Fatalf("folded BOW engaged on a grad-tracking graph")
	}
	cnn := buildModel(t, testChoice(), nil)
	bc, err := cnn.makeBatch(ds.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cnn.foldedBOWForward(nn.NewInferenceGraph(tensor.NewArena()), bc) != nil {
		t.Fatalf("folded BOW engaged for a CNN model")
	}
}

// TestFoldInvalidation verifies stale tables are rebuilt after a
// parameter mutation signalled via ParamsChanged.
func TestFoldInvalidation(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	f1 := m.foldedConv()
	if f1 == nil {
		t.Fatalf("fold did not build")
	}
	if m.foldedConv() != f1 {
		t.Fatalf("fold rebuilt without a parameter change")
	}
	// Mutate the conv weight the way an optimizer would, then signal.
	m.conv.W.Node.Value.Data[0] += 0.5
	m.ParamsChanged()
	f2 := m.foldedConv()
	if f2 == f1 {
		t.Fatalf("fold not rebuilt after ParamsChanged")
	}
	// Row 0 is the zero pad embedding, so probe a real token's projection.
	if math.Abs(f2.p0.At(2, 0)-f1.p0.At(2, 0)) < 1e-15 {
		t.Fatalf("rebuilt fold does not reflect the new weights")
	}
}
