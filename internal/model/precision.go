package model

import "fmt"

// Precision selects the numeric width of the serving fast path. Training
// is always float64; the knob only changes what Predict streams.
type Precision string

const (
	// PrecisionF64 is the default full-precision serve path.
	PrecisionF64 Precision = "f64"
	// PrecisionF32 serves from float32-quantized folded tables and runs
	// the folded forward in float32 end to end, converting to float64
	// only at the final logits. Halves the table cache footprint; logit
	// error is bounded by the 1e-4-relative parity harness.
	PrecisionF32 Precision = "f32"
)

// ParsePrecision validates a precision string; empty means f64.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", PrecisionF64:
		return PrecisionF64, nil
	case PrecisionF32:
		return PrecisionF32, nil
	}
	return "", fmt.Errorf("model: unknown precision %q (want f64 or f32)", s)
}

// SetPrecision switches the serving precision. Safe to call while other
// goroutines serve: in-flight passes finish on the path they started on,
// later passes pick up the new width. When the f32 fast path does not
// apply to this model (contextual features, oversized vocabulary), f32
// falls back to the f64 path per pass — precision is a request, parity
// is the guarantee.
func (m *Model) SetPrecision(p Precision) error {
	switch p {
	case "", PrecisionF64:
		m.prec.Store(0)
	case PrecisionF32:
		m.prec.Store(1)
	default:
		return fmt.Errorf("model: unknown precision %q (want f64 or f32)", p)
	}
	return nil
}

// Precision reports the current serving precision.
func (m *Model) Precision() Precision {
	if m.prec.Load() == 1 {
		return PrecisionF32
	}
	return PrecisionF64
}
