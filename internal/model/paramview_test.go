package model

import (
	"math/rand"
	"testing"

	"repro/internal/opt"
)

// TestParamViewPoolRecycles: trainer Close must return views to the
// model's pool and the next trainer must pick up the same view objects
// (sessions, grad accumulators) instead of rebuilding.
func TestParamViewPoolRecycles(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	tr1, err := NewParallelTrainer(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := map[*Model]bool{}
	for _, w := range tr1.workers {
		first[w.view] = true
	}
	tr1.Close()

	tr2, err := NewParallelTrainer(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	for i, w := range tr2.workers {
		if !first[w.view] {
			t.Fatalf("worker %d view was rebuilt, not recycled", i)
		}
	}
}

// TestParamViewPoolReusesGrads: grad accumulators allocated by a training
// step must survive the Close/New cycle (same tensors, zeroed), and a
// recycled trainer must still train correctly.
func TestParamViewPoolReusesGrads(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	ds := smallDataset(t, 8, 3)
	targets := combineAll(t, ds)
	idx := make([]int, len(ds.Records))
	for i := range idx {
		idx[i] = i
	}
	optimizer := opt.NewSGD(m.PS.All(), 0, 0)

	tr1, err := NewParallelTrainer(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := tr1.TrainStep(ds.Records, idx, targets, LossConfig{}, optimizer, 0.05, 5, rng); err != nil {
		t.Fatal(err)
	}
	type gradKey struct {
		view *Model
		i    int
	}
	before := map[gradKey]*[]float64{}
	views := map[*Model]bool{}
	for _, w := range tr1.workers {
		views[w.view] = true
		for i, g := range w.view.PS.Grads() {
			if g != nil {
				before[gradKey{w.view, i}] = &g.Data
			}
		}
	}
	if len(before) == 0 {
		t.Fatalf("training step allocated no grad accumulators")
	}
	tr1.Close()

	tr2, err := NewParallelTrainer(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	reused := 0
	for _, w := range tr2.workers {
		if !views[w.view] {
			t.Fatalf("view not recycled")
		}
		for i, g := range w.view.PS.Grads() {
			if g == nil {
				continue
			}
			want, ok := before[gradKey{w.view, i}]
			if !ok {
				t.Fatalf("grad %d appeared without a backward pass", i)
			}
			if &g.Data != want {
				t.Fatalf("grad %d accumulator was reallocated", i)
			}
			for _, v := range g.Data {
				if v != 0 {
					t.Fatalf("recycled grad %d not zeroed", i)
				}
			}
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("no grad accumulators survived recycling")
	}
	if _, err := tr2.TrainStep(ds.Records, idx, targets, LossConfig{}, optimizer, 0.05, 5, rng); err != nil {
		t.Fatalf("recycled trainer failed to train: %v", err)
	}
}

// TestParamViewRebuildAllocs pins the init-free rebuild: after the pool
// is warm, a full NewParallelTrainer+Close cycle must cost a small
// constant number of allocations (re-alias + trainer bookkeeping), not a
// model rebuild. The bound has generous headroom over the measured cost
// but sits orders of magnitude below a cold rebuild (which pays
// compile.Plan + parameter init for every layer).
func TestParamViewRebuildAllocs(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	tr, err := NewParallelTrainer(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close() // warm the pool

	allocs := testing.AllocsPerRun(20, func() {
		tr, err := NewParallelTrainer(m, 2)
		if err != nil {
			t.Fatal(err)
		}
		tr.Close()
	})
	if allocs > 64 {
		t.Fatalf("warm trainer build costs %.0f allocs/op, want <= 64 (view pool not engaging?)", allocs)
	}
}
