package model

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/labelmodel"
	"repro/internal/opt"
	"repro/internal/record"
	"repro/internal/tensor"
)

// ParallelTrainer runs data-parallel training steps: a batch is split into
// W contiguous shards, each worker runs forward/backward over its shard in
// its own session (graph + arena + batch scratch, per PR 1's ownership
// rules) against a parameter view that aliases the primary's weights but
// owns private gradient accumulators, and a fused all-reduce in
// internal/opt sums the shard gradients in a fixed deterministic tree
// order straight into the clip+optimizer update.
//
// Equivalence with the serial trainer:
//
//   - W=1 is bitwise identical to Model.TrainStep: one shard is the whole
//     batch, the loss normalisers are accumulated in the same element
//     order the serial ops use, the tree reduce of one shard is a copy,
//     and the fused clip+step rounds exactly like ClipGradNorm + Step.
//   - W>1 matches the serial loss trajectory to float re-association
//     (~1e-15/step; the parity tests allow 1e-9 over whole runs) —
//     including with dropout on: masks are record-keyed (one per-step
//     salt shared by all workers, per-record splitmix64 streams), so
//     every shard split replays the serial dropout schedule bitwise and
//     only summation order differs. One documented decomposition edge: a shard
//     holding no candidates of a sliced `select` task contributes no
//     membership loss for its rows, where the serial batch would.
//
// Results are reproducible run-to-run: shard boundaries depend only on
// (batch, W) and the reduction order only on worker index.
//
// A trainer is not safe for concurrent TrainStep calls (training
// serialises on the shared parameters); build one per training run and
// Close it when done so worker arenas do not outlive training.
type ParallelTrainer struct {
	m       *Model
	workers []*trainWorker
	shards  [][]*tensor.Tensor
	losses  []float64
}

type trainWorker struct {
	view *Model
	rng  *rand.Rand // workers 1..W-1; worker 0 borrows the step rng
	loss float64
	err  error
}

// NewParallelTrainer builds a trainer with `workers` worker sessions over
// m. workers < 1 is an error; workers = 1 yields a serial-equivalent
// trainer that still exercises the full reduce path.
func NewParallelTrainer(m *Model, workers int) (*ParallelTrainer, error) {
	if workers < 1 {
		return nil, fmt.Errorf("model: parallel trainer needs >= 1 worker, got %d", workers)
	}
	t := &ParallelTrainer{m: m}
	for w := 0; w < workers; w++ {
		view, err := m.paramView()
		if err != nil {
			return nil, err
		}
		tw := &trainWorker{view: view}
		if w > 0 {
			// Independent deterministic dropout streams per worker; worker
			// 0 uses the caller's rng so W=1 replays the serial schedule.
			tw.rng = rand.New(rand.NewSource(m.Seed + int64(w)*1_000_003))
		}
		t.workers = append(t.workers, tw)
	}
	t.shards = make([][]*tensor.Tensor, workers)
	t.losses = make([]float64, workers)
	return t, nil
}

// Workers returns the configured worker count.
func (t *ParallelTrainer) Workers() int { return len(t.workers) }

// Close releases every worker view back to the model's view pool, where
// the next NewParallelTrainer over the same model picks them up with
// their sessions and grad accumulators intact (init-free rebuild). The
// trainer must not be used afterwards.
func (t *ParallelTrainer) Close() {
	for _, w := range t.workers {
		t.m.releaseView(w.view)
		w.view = nil
	}
	t.workers = nil
}

// TrainStep runs one data-parallel optimisation step on a batch of records
// (at dataset indices idx) and returns the batch loss; it is the sharded
// counterpart of Model.TrainStep and shares its contract. optimizer must
// be built over the primary model's parameters; optimizers implementing
// opt.ShardedOptimizer (SGD, Adam) take the fused reduce+clip+step path,
// others fall back to an unfused all-reduce followed by ClipGradNorm+Step.
func (t *ParallelTrainer) TrainStep(recs []*record.Record, idx []int, targets map[string]*labelmodel.TaskTargets, lossCfg LossConfig, optimizer opt.Optimizer, lr, clipNorm float64, rng *rand.Rand) (float64, error) {
	if len(t.workers) == 0 {
		return 0, fmt.Errorf("model: parallel trainer is closed")
	}
	if len(recs) == 0 {
		return 0, fmt.Errorf("model: empty training batch")
	}
	if !t.m.batchHasLossTerms(recs, targets, lossCfg) {
		return 0, fmt.Errorf("model: batch has no supervised units for any task")
	}
	n := len(t.workers)
	if n > len(recs) {
		n = len(recs)
	}
	// Same stream position (and the same dropout-gate) as the serial
	// TrainStep's salt draw: all workers share one per-step salt, and
	// record-keyed masks make every shard split replay the serial dropout
	// schedule bitwise.
	var salt uint64
	if t.m.Prog.Choice.Dropout > 0 {
		salt = rng.Uint64()
	}
	norms := t.m.computeLossNorms(recs, idx, targets)

	// Contiguous balanced split: the first rem shards get one extra record.
	base, rem := len(recs)/n, len(recs)%n
	var wg sync.WaitGroup
	start := 0
	var b0lo, b0hi int
	for w := 0; w < n; w++ {
		size := base
		if w < rem {
			size++
		}
		lo, hi := start, start+size
		start = hi
		if w == 0 {
			b0lo, b0hi = lo, hi
			continue // run on the calling goroutine below
		}
		wg.Add(1)
		go func(tw *trainWorker, lo, hi int) {
			defer wg.Done()
			tw.run(recs[lo:hi], idx[lo:hi], targets, lossCfg, norms, tw.rng, salt)
		}(t.workers[w], lo, hi)
	}
	t.workers[0].run(recs[b0lo:b0hi], idx[b0lo:b0hi], targets, lossCfg, norms, rng, salt)
	wg.Wait()

	for w := 0; w < n; w++ {
		if err := t.workers[w].err; err != nil {
			// Workers that did complete have gradients sitting in their
			// accumulators; drop them so a caller that skips the failed
			// batch and keeps training does not double-count them (serial
			// TrainStep errors leave no residue either).
			for v := 0; v < n; v++ {
				for _, g := range t.workers[v].view.PS.Grads() {
					if g != nil {
						g.Zero()
					}
				}
			}
			return 0, err
		}
		t.shards[w] = t.workers[w].view.PS.Grads()
		t.losses[w] = t.workers[w].loss
	}
	shards := t.shards[:n]

	if so, ok := optimizer.(opt.ShardedOptimizer); ok {
		so.StepShards(lr, shards, clipNorm)
	} else {
		opt.AllReduceGrads(t.m.PS.All(), shards)
		opt.ClipGradNorm(t.m.PS.All(), clipNorm)
		optimizer.Step(lr)
	}
	t.m.ParamsChanged()
	return treeSum(t.losses[:n]), nil
}

// treeSum adds shard losses in the same fixed balanced-tree order the
// gradient reduce uses, so the reported batch loss is deterministic too.
func treeSum(vals []float64) float64 {
	switch len(vals) {
	case 1:
		return vals[0]
	case 2:
		return vals[0] + vals[1]
	}
	buf := append([]float64(nil), vals...)
	for width := len(buf); width > 1; width = (width + 1) / 2 {
		half := width / 2
		for i := 0; i < half; i++ {
			buf[i] = buf[2*i] + buf[2*i+1]
		}
		if width%2 == 1 {
			buf[half] = buf[width-1]
		}
	}
	return buf[0]
}

// run executes one worker's shard: forward, loss with full-batch
// normalisers, backward into the view's private grad accumulators.
func (w *trainWorker) run(recs []*record.Record, idx []int, targets map[string]*labelmodel.TaskTargets, lossCfg LossConfig, norms *lossNorms, rng *rand.Rand, salt uint64) {
	w.loss, w.err = 0, nil
	s := w.view.trainSession()
	s.g.SetRand(rng)
	s.g.SetDropoutSalt(salt)
	if err := s.run(w.view, recs, idx); err != nil {
		w.err = err
		return
	}
	loss, err := w.view.lossWithNorms(s.g, s.st, targets, lossCfg, norms)
	if err != nil {
		w.err = err
		return
	}
	s.g.Backward(loss)
	w.loss = loss.Value.Data[0]
}

// batchHasLossTerms mirrors the serial Loss's "no supervised units" error
// condition over the full batch: at least one task must contribute a loss
// term with a non-zero coefficient (token/example tasks need targets and a
// non-zero task weight — or a sliced head, whose membership BCE carries
// cfg.MembershipWeight regardless; set tasks additionally need at least
// one candidate in the batch).
func (m *Model) batchHasLossTerms(recs []*record.Record, targets map[string]*labelmodel.TaskTargets, cfg LossConfig) bool {
	cfg = cfg.withDefaults()
	for _, tname := range m.Prog.TokenTasks {
		if targets[tname] != nil && cfg.taskWeight(tname) != 0 {
			return true
		}
	}
	for _, tname := range m.Prog.ExampleTasks {
		if targets[tname] == nil {
			continue
		}
		if cfg.taskWeight(tname) != 0 {
			return true
		}
		if h := m.exampleHeads[tname]; h != nil && len(h.membership) > 0 && cfg.MembershipWeight != 0 {
			return true
		}
	}
	for _, tname := range m.Prog.SetTasks {
		if targets[tname] == nil {
			continue
		}
		sp := m.Prog.Schema.Tasks[tname].Payload
		hasCand := false
		for _, rec := range recs {
			if cpv, ok := rec.Payloads[sp]; ok && !cpv.Null && len(cpv.Set) > 0 {
				hasCand = true
				break
			}
		}
		if !hasCand {
			continue
		}
		if cfg.taskWeight(tname) != 0 {
			return true
		}
		if sh := m.setHeads[tname]; sh != nil && len(sh.membership) > 0 && cfg.MembershipWeight != 0 {
			return true
		}
	}
	return false
}
