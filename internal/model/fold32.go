package model

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Float32 serving plane: quantized fold tables + head weights.
//
// The folded serve-path tables (conv E@W_{prev,cur,next}, GRU input
// projections E@W_{z,r,h}[:in], the BOW embedding gather) are rebuilt per
// parameter generation and never written at serve time, so storing them
// at float32 is a pure cache-footprint and bandwidth win — the predict
// loop streams half the bytes per token. serve32 snapshots those tables
// plus every decoder head's weights in float32 so the whole folded
// forward runs reduced-precision end to end (forward32.go), converting
// to float64 only at the final logits. Invalidation mirrors the f64
// folds: the snapshot carries the Model.gen it was built from and is
// rebuilt on mismatch (ParamsChanged).
//
// Quantization happens once per generation from the float64 tables
// (round-to-nearest), so table entries carry a single rounding step, not
// accumulated float32 arithmetic error.

// linear32 is a float32 snapshot of an nn.Linear.
type linear32 struct {
	w *tensor.Tensor32
	b []float32
}

func newLinear32(l *nn.Linear) *linear32 {
	return &linear32{w: tensor.FromF64(l.W.Node.Value), b: f32s(l.B.Node.Value.Data)}
}

// convFold32 is the float32 twin of convFold.
type convFold32 struct {
	p0, p1, p2 *tensor.Tensor32 // V x hidden: prev/cur/next projections
	bias       []float32
}

// gruFold32 is the float32 twin of gruFold (one scan direction).
type gruFold32 struct {
	pz, pr, ph *tensor.Tensor32 // V x H: input projections E @ W[:in]
	uz, ur, uh *tensor.Tensor32 // H x H: hidden-half recurrence weights
	bz, br, bh []float32
}

// exampleHead32 / setHead32 mirror the serve-relevant half of their f64
// structs: expert prediction heads (aux-loss only) are omitted.
type exampleHead32 struct {
	plain      *linear32
	experts    []*linear32
	membership []*linear32
	out        *linear32
}

type setHead32 struct {
	mlp, score  *linear32
	expertMLP   []*linear32
	expertScore []*linear32
	membership  []*linear32
}

// serve32 is an immutable float32 snapshot of everything the folded
// forward reads.
type serve32 struct {
	gen uint64
	H   int // encoder output width

	// Exactly one encoder group is set.
	emb  *tensor.Tensor32 // BOW: V x in embedding table
	conv *convFold32
	gru  *gruFold32
	biF  *gruFold32 // BiGRU forward direction
	biB  *gruFold32 // BiGRU backward direction

	tokenHeads   map[string]*linear32
	exampleHeads map[string]*exampleHead32
	setHeads     map[string]*setHead32
	entEmb       *tensor.Tensor32
	spanQ        []float32
}

func f32s(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// foldGRU32 builds one direction's float32 fold straight from the
// embedding table and gate weights (used for BiGRU, which has no f64
// folded path to convert from). The V x H projections are computed in
// float64 and rounded once.
func foldGRU32(gru *nn.GRU, E *tensor.Tensor) *gruFold32 {
	in, H := gru.In, gru.Hidden
	V := E.Rows
	split := func(w, b *nn.Param) (*tensor.Tensor32, *tensor.Tensor32, []float32) {
		W := w.Node.Value // (in+H) x H
		wx := &tensor.Tensor{Rows: in, Cols: H, Data: W.Data[:in*H]}
		uh := &tensor.Tensor{Rows: H, Cols: H, Data: W.Data[in*H:]}
		p := tensor.MatMul(tensor.New(V, H), E, wx)
		return tensor.FromF64(p), tensor.FromF64(uh), f32s(b.Node.Value.Data)
	}
	f := &gruFold32{}
	f.pz, f.uz, f.bz = split(gru.Wz, gru.Bz)
	f.pr, f.ur, f.br = split(gru.Wr, gru.Br)
	f.ph, f.uh, f.bh = split(gru.Wh, gru.Bh)
	return f
}

func convertGRUFold(f *gruFold) *gruFold32 {
	return &gruFold32{
		pz: tensor.FromF64(f.pz), pr: tensor.FromF64(f.pr), ph: tensor.FromF64(f.ph),
		uz: tensor.FromF64(f.uz), ur: tensor.FromF64(f.ur), uh: tensor.FromF64(f.uh),
		bz: f32s(f.bz), br: f32s(f.br), bh: f32s(f.bh),
	}
}

// serve32Snapshot returns the float32 snapshot for the current
// generation, rebuilding it when stale, or nil when the reduced-precision
// fast path does not apply (contextual features, oversized vocabulary).
func (m *Model) serve32Snapshot() *serve32 {
	if m.contextual != nil || m.vocab.Size() > maxFoldVocab {
		return nil
	}
	gen := m.gen.Load()
	if s := m.serveCache32.Load(); s != nil && s.gen == gen {
		return s
	}
	s := &serve32{
		gen:          gen,
		H:            m.Prog.EncoderOut,
		tokenHeads:   map[string]*linear32{},
		exampleHeads: map[string]*exampleHead32{},
		setHeads:     map[string]*setHead32{},
	}
	E := m.tokEmb.Table.Node.Value
	switch {
	case m.conv != nil:
		f := m.foldedConv()
		if f == nil {
			return nil
		}
		s.conv = &convFold32{
			p0: tensor.FromF64(f.p0), p1: tensor.FromF64(f.p1), p2: tensor.FromF64(f.p2),
			bias: f32s(f.bias),
		}
	case m.gru != nil:
		f := m.foldedGRU()
		if f == nil {
			return nil
		}
		s.gru = convertGRUFold(f)
	case m.bigru != nil:
		s.biF = foldGRU32(m.bigru.Fwd, E)
		s.biB = foldGRU32(m.bigru.Bwd, E)
	default: // BOW
		s.emb = tensor.FromF64(E)
	}
	for name, h := range m.tokenHeads {
		s.tokenHeads[name] = newLinear32(h)
	}
	for name, h := range m.exampleHeads {
		h32 := &exampleHead32{}
		if h.plain != nil {
			h32.plain = newLinear32(h.plain)
		} else {
			for _, ex := range h.experts {
				h32.experts = append(h32.experts, newLinear32(ex))
			}
			for _, mb := range h.membership {
				h32.membership = append(h32.membership, newLinear32(mb))
			}
			h32.out = newLinear32(h.out)
		}
		s.exampleHeads[name] = h32
	}
	for name, h := range m.setHeads {
		h32 := &setHead32{mlp: newLinear32(h.mlp), score: newLinear32(h.score)}
		for i := range h.membership {
			h32.expertMLP = append(h32.expertMLP, newLinear32(h.expertMLP[i]))
			h32.expertScore = append(h32.expertScore, newLinear32(h.expertScore[i]))
			h32.membership = append(h32.membership, newLinear32(h.membership[i]))
		}
		s.setHeads[name] = h32
	}
	if m.entEmb != nil {
		s.entEmb = tensor.FromF64(m.entEmb.Table.Node.Value)
	}
	if m.spanQ != nil {
		s.spanQ = f32s(m.spanQ.Node.Value.Data)
	}
	m.serveCache32.Store(s)
	return s
}

// encoderTableBytes is the byte footprint of the quantized encoder
// projection tables — the serve-loop working set the f32 path halves.
func (s *serve32) encoderTableBytes() int {
	elems := 0
	switch {
	case s.conv != nil:
		elems = len(s.conv.p0.Data) + len(s.conv.p1.Data) + len(s.conv.p2.Data) + len(s.conv.bias)
	case s.gru != nil:
		elems = s.gru.elems()
	case s.biF != nil:
		elems = s.biF.elems() + s.biB.elems()
	case s.emb != nil:
		elems = len(s.emb.Data)
	}
	return 4 * elems
}

func (f *gruFold32) elems() int {
	return len(f.pz.Data) + len(f.pr.Data) + len(f.ph.Data) +
		len(f.uz.Data) + len(f.ur.Data) + len(f.uh.Data) +
		len(f.bz) + len(f.br) + len(f.bh)
}

// FoldedTableBytes reports the byte footprint of the serving-path folded
// tables at the model's current precision: what the predict loop streams
// per pass over the vocabulary-sized projections. Returns 0 when no
// folded path applies (contextual features, oversized vocabulary, or a
// f64 BiGRU, which serves unfolded).
func (m *Model) FoldedTableBytes() int {
	if m.Precision() == PrecisionF32 {
		if s := m.serve32Snapshot(); s != nil {
			return s.encoderTableBytes()
		}
		return 0
	}
	if f := m.foldedConv(); f != nil {
		return 8 * (len(f.p0.Data) + len(f.p1.Data) + len(f.p2.Data) + len(f.bias))
	}
	if f := m.foldedGRU(); f != nil {
		return 8 * (len(f.pz.Data) + len(f.pr.Data) + len(f.ph.Data) +
			len(f.uz.Data) + len(f.ur.Data) + len(f.uh.Data) +
			len(f.bz) + len(f.br) + len(f.bh))
	}
	if m.conv == nil && m.gru == nil && m.bigru == nil && m.contextual == nil {
		// BOW: the embedding table itself is the folded form.
		E := m.tokEmb.Table.Node.Value
		return 8 * len(E.Data)
	}
	return 0
}
