package model

import (
	"math"

	"repro/internal/nn"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/tensor"
)

// TaskOutput is the model's prediction for one task on one record. Exactly
// one group of fields is populated depending on the task's type and
// granularity.
type TaskOutput struct {
	// Per-example multiclass.
	Class string    `json:"class,omitempty"`
	Probs []float64 `json:"probs,omitempty"`
	// Per-token multiclass.
	TokenClasses []string `json:"token_classes,omitempty"`
	// Bitvector (per token): set bits and per-bit probabilities.
	TokenBits     [][]string  `json:"token_bits,omitempty"`
	TokenBitProbs [][]float64 `json:"token_bit_probs,omitempty"`
	// Select: chosen candidate index (-1 when the set is empty) and
	// per-candidate probabilities.
	Select      int       `json:"select,omitempty"`
	SelectProbs []float64 `json:"select_probs,omitempty"`
}

// Output maps task name to prediction for one record.
type Output map[string]TaskOutput

// Predict runs inference over records in batches. The output is aligned
// with the input order. Safe for concurrent use: each call draws its own
// pooled no-grad session (arena-backed graph + batch scratch), so the
// steady state allocates only the returned outputs.
func (m *Model) Predict(recs []*record.Record) ([]Output, error) {
	outs := make([]Output, len(recs))
	size := m.Prog.Choice.BatchSize
	if size <= 0 {
		size = 32
	}
	s := m.inferSession()
	defer m.releaseInfer(s)
	for start := 0; start < len(recs); start += size {
		end := start + size
		if end > len(recs) {
			end = len(recs)
		}
		if err := s.run(m, recs[start:end], nil); err != nil {
			return nil, err
		}
		for i := 0; i < end-start; i++ {
			outs[start+i] = m.decode(s.g, s.st, i)
		}
	}
	return outs, nil
}

// PredictOne is the single-record convenience wrapper used by serving.
func (m *Model) PredictOne(rec *record.Record) (Output, error) {
	outs, err := m.Predict([]*record.Record{rec})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// decode extracts row r of a forward pass into an Output. Temporaries come
// from g's arena; everything stored in the Output is freshly copied so it
// survives the session's next Reset.
func (m *Model) decode(g *nn.Graph, st *forwardState, r int) Output {
	out := Output{}
	b := st.batch
	nTok := len(b.RawTokens[r])

	for tname, logits := range st.tokenLogits {
		task := m.Prog.Schema.Tasks[tname]
		switch task.Type {
		case schema.Multiclass:
			// Softmax is monotone, so the class argmax reads straight off
			// the logits; no exponentials needed on this path.
			view := sliceRows(logits.Value, r*b.L, nTok)
			to := TaskOutput{TokenClasses: make([]string, nTok)}
			for t := 0; t < nTok; t++ {
				to.TokenClasses[t] = task.Classes[view.ArgmaxRow(t)]
			}
			out[tname] = to
		case schema.Bitvector:
			to := TaskOutput{
				TokenBits:     make([][]string, nTok),
				TokenBitProbs: make([][]float64, nTok),
			}
			for t := 0; t < nTok; t++ {
				row := logits.Value.Row(r*b.L + t)
				bits := []string{}
				probs := make([]float64, len(row))
				for c, v := range row {
					p := sigmoidVal(v)
					probs[c] = p
					if p >= 0.5 {
						bits = append(bits, task.Classes[c])
					}
				}
				to.TokenBits[t] = bits
				to.TokenBitProbs[t] = probs
			}
			out[tname] = to
		}
	}

	for tname, final := range st.exampleFinal {
		task := m.Prog.Schema.Tasks[tname]
		switch task.Type {
		case schema.Multiclass:
			view := sliceRows(final.Value, r, 1)
			probs := tensor.SoftmaxRows(g.NewTensor(1, final.Value.Cols), &view)
			out[tname] = TaskOutput{
				Class: task.Classes[probs.ArgmaxRow(0)],
				Probs: append([]float64(nil), probs.Row(0)...),
			}
		case schema.Bitvector:
			row := final.Value.Row(r)
			bits := []string{}
			probs := make([]float64, len(row))
			for c, v := range row {
				p := sigmoidVal(v)
				probs[c] = p
				if p >= 0.5 {
					bits = append(bits, task.Classes[c])
				}
			}
			out[tname] = TaskOutput{TokenBits: [][]string{bits}, TokenBitProbs: [][]float64{probs}}
		}
	}

	for tname, scores := range st.setScores {
		task := m.Prog.Schema.Tasks[tname]
		sb := b.Sets[task.Payload]
		seg := sb.Segs[r]
		if seg.End <= seg.Start {
			out[tname] = TaskOutput{Select: -1}
			continue
		}
		n := seg.End - seg.Start
		probs := softmaxSlice(scores.Value.Data[seg.Start:seg.End])
		best := 0
		for i := 1; i < n; i++ {
			if probs[i] > probs[best] {
				best = i
			}
		}
		out[tname] = TaskOutput{Select: best, SelectProbs: probs}
	}
	return out
}

// sliceRows views rows [start, start+n) of t as a stack-allocated tensor
// header over the aliased data (copy-free, allocation-free).
func sliceRows(t *tensor.Tensor, start, n int) tensor.Tensor {
	return tensor.Tensor{Rows: n, Cols: t.Cols, Data: t.Data[start*t.Cols : (start+n)*t.Cols]}
}

func sigmoidVal(v float64) float64 {
	if v >= 0 {
		z := math.Exp(-v)
		return 1 / (1 + z)
	}
	z := math.Exp(v)
	return z / (1 + z)
}

func softmaxSlice(scores []float64) []float64 {
	out := make([]float64, len(scores))
	maxv := scores[0]
	for _, v := range scores {
		if v > maxv {
			maxv = v
		}
	}
	var z float64
	for i, v := range scores {
		out[i] = math.Exp(v - maxv)
		z += out[i]
	}
	for i := range out {
		out[i] /= z
	}
	return out
}
