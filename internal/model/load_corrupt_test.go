package model

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// TestLoadCorruptArtifacts is the fuzz-style table over mutated snapshot
// bytes: truncations at every interesting depth, bit flips across the
// artifact, garbage, and empty input. The contract under test is the one
// serving infrastructure depends on — Load never panics, and every
// structural failure reports as ErrCorruptArtifact. A byte flip landing
// in float payload data may legitimately still load; what it must never
// do is panic or return an untyped decode failure.
func TestLoadCorruptArtifacts(t *testing.T) {
	m := buildModel(t, testChoice(), nil)
	valid, err := m.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine artifact failed to load: %v", err)
	}

	type mutation struct {
		name string
		data []byte
		// mayLoad marks mutations that can legitimately decode to a
		// working model (e.g. a flipped bit inside a float parameter).
		mayLoad bool
	}
	var muts []mutation

	// Truncations: short reads at the header, mid-stream, and the tail
	// (where the parameter map's data lives) must all fail cleanly.
	for _, frac := range []float64{0, 0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		n := int(float64(len(valid)) * frac)
		muts = append(muts, mutation{
			name: fmt.Sprintf("truncate-to-%d-of-%d", n, len(valid)),
			data: append([]byte(nil), valid[:n]...),
		})
	}
	// Drop just the final byte — the classic torn tail.
	muts = append(muts, mutation{name: "drop-last-byte", data: append([]byte(nil), valid[:len(valid)-1]...)})

	// Bit flips spread deterministically across the artifact.
	for i := 0; i < 32; i++ {
		off := (len(valid) - 1) * i / 31
		data := append([]byte(nil), valid...)
		data[off] ^= 0x40
		muts = append(muts, mutation{name: fmt.Sprintf("flip-byte-%d", off), data: data, mayLoad: true})
	}

	// Garbage and empty input.
	muts = append(muts, mutation{name: "empty", data: nil})
	garbage := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef}, 256)
	muts = append(muts, mutation{name: "garbage", data: garbage})
	muts = append(muts, mutation{name: "garbage-prefix", data: append(append([]byte(nil), garbage...), valid...)})

	for _, mu := range muts {
		t.Run(mu.name, func(t *testing.T) {
			// The deferred recover proves "never panic" per mutation.
			defer func() {
				if v := recover(); v != nil {
					t.Fatalf("Load panicked: %v", v)
				}
			}()
			got, err := Load(bytes.NewReader(mu.data))
			if err == nil {
				if !mu.mayLoad {
					t.Fatal("corrupt artifact loaded without error")
				}
				if got == nil {
					t.Fatal("nil model with nil error")
				}
				return
			}
			if !errors.Is(err, ErrCorruptArtifact) {
				t.Fatalf("error not typed as ErrCorruptArtifact: %v", err)
			}
		})
	}
}

// TestLoadRejectsShapeDataMismatch pins the shape-vs-data validation: a
// decoded tensor whose header shape disagrees with its payload length
// (a tail-truncation artifact gob can still "successfully" decode) must
// be rejected, not silently half-copied into the parameter.
func TestLoadRejectsShapeDataMismatch(t *testing.T) {
	m := buildModel(t, testChoice(), nil)

	// Re-encode the artifact with one parameter's data shorter than its
	// claimed shape. Round-trip through the package's own gob state via
	// Save, then surgically rebuild with a lying tensor.
	var name string
	for _, p := range m.PS.All() {
		name = p.Name
		break
	}
	lying := m
	for _, p := range lying.PS.All() {
		if p.Name == name {
			// Shrink the data slice without touching Rows/Cols.
			p.Node.Value = &tensor.Tensor{
				Rows: p.Node.Value.Rows,
				Cols: p.Node.Value.Cols,
				Data: p.Node.Value.Data[:len(p.Node.Value.Data)/2],
			}
			break
		}
	}
	data, err := lying.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(data))
	if err == nil {
		t.Fatal("shape/data mismatch loaded without error")
	}
	if !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("error not typed as ErrCorruptArtifact: %v", err)
	}
}
