package model

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Serving-path conv folding.
//
// At inference the CNN encoder's input rows are exactly rows of the token
// embedding table (dropout is identity, no contextual features), so the
// width-3 convolution is a fixed linear map of (e_{t-1}, e_t, e_{t+1}).
// Folding precomputes the three per-vocab projections P_w = E @ W_w once
// per parameter generation; a serving forward then assembles each token's
// encoder activation with three 32-wide adds instead of a 3*emb-wide
// matmul row. For the factoid workload this removes ~95% of serve-path
// flops in the encoder.
//
// Invalidation: Model.gen is bumped by ParamsChanged (called from
// TrainStep and the trainer's checkpoint restore); the cached tables carry
// the generation they were built from and are rebuilt on mismatch.

// maxFoldVocab bounds the folded tables' memory (3 * V * hidden floats).
const maxFoldVocab = 8192

// convFold is an immutable snapshot of the folded projections.
type convFold struct {
	gen        uint64
	p0, p1, p2 *tensor.Tensor // V x hidden: prev/cur/next projections
	bias       []float64
}

// ParamsChanged invalidates derived caches after an external parameter
// mutation (optimizer step, checkpoint restore). TrainStep calls it; any
// other code that writes parameter tensors directly must too.
func (m *Model) ParamsChanged() {
	m.gen.Add(1)
}

// foldedConv returns the folded projections for the current generation,
// rebuilding them when stale, or nil when folding does not apply.
func (m *Model) foldedConv() *convFold {
	if m.conv == nil || m.contextual != nil || m.vocab.Size() > maxFoldVocab {
		return nil
	}
	gen := m.gen.Load()
	if f := m.fold.Load(); f != nil && f.gen == gen {
		return f
	}
	E := m.tokEmb.Table.Node.Value // V x in
	W := m.conv.W.Node.Value       // (3*in) x out
	in, out := m.conv.In, m.conv.Out
	V := E.Rows
	f := &convFold{
		gen:  gen,
		p0:   tensor.New(V, out),
		p1:   tensor.New(V, out),
		p2:   tensor.New(V, out),
		bias: append([]float64(nil), m.conv.B.Node.Value.Data...),
	}
	w0 := tensor.Tensor{Rows: in, Cols: out, Data: W.Data[:in*out]}
	w1 := tensor.Tensor{Rows: in, Cols: out, Data: W.Data[in*out : 2*in*out]}
	w2 := tensor.Tensor{Rows: in, Cols: out, Data: W.Data[2*in*out : 3*in*out]}
	tensor.MatMul(f.p0, E, &w0)
	tensor.MatMul(f.p1, E, &w1)
	tensor.MatMul(f.p2, E, &w2)
	m.fold.Store(f)
	return f
}

// foldedConvForward computes the post-ReLU encoder activations straight
// from token ids using the folded tables. Only valid on no-grad graphs.
// Returns nil when folding does not apply.
func (m *Model) foldedConvForward(g *nn.Graph, b *Batch) *nn.Node {
	if !g.NoGrad() {
		return nil
	}
	f := m.foldedConv()
	if f == nil {
		return nil
	}
	H := m.conv.Out
	out := g.NewTensor(b.B*b.L, H)
	ids := b.TokenIDs
	bias := f.bias
	for r := 0; r < b.B*b.L; r++ {
		t := r % b.L
		orow := out.Row(r)
		// Accumulation mirrors the matmul's column walk over the
		// [prev; cur; next] window: prev block first, then cur, then next;
		// window positions outside the example contribute nothing (the
		// shift op zero-pads at example boundaries).
		if t > 0 {
			copy(orow, f.p0.Row(ids[r-1]))
			addRow(orow, f.p1.Row(ids[r]))
		} else {
			copy(orow, f.p1.Row(ids[r]))
		}
		if t < b.L-1 {
			addRow(orow, f.p2.Row(ids[r+1]))
		}
		// Fused bias + ReLU.
		for j := range orow {
			v := orow[j] + bias[j]
			if v > 0 {
				orow[j] = v
			} else {
				orow[j] = 0
			}
		}
	}
	return g.Const(out)
}

// foldedEncoderForward dispatches to whichever folded serving path applies
// for this model's encoder (CNN projection tables, GRU input-projection
// tables, or the direct BOW row gather), returning nil when none does and
// the standard op-by-op forward must run.
func (m *Model) foldedEncoderForward(g *nn.Graph, b *Batch) *nn.Node {
	if h := m.foldedConvForward(g, b); h != nil {
		return h
	}
	if h := m.foldedGRUForward(g, b); h != nil {
		return h
	}
	return m.foldedBOWForward(g, b)
}

// foldedBOWForward is the BOW analogue of the conv fold. At inference the
// BOW encoder is dropout(identity) over the embedding lookup, so token t's
// representation is exactly the embedding row E[id_t]; assembling the
// activation tensor straight from the table skips the gather node and
// dropout op (and their tape bookkeeping) entirely. Unlike the conv fold
// there is nothing to precompute or invalidate — the table itself is the
// folded form. Only valid on no-grad graphs without contextual features.
func (m *Model) foldedBOWForward(g *nn.Graph, b *Batch) *nn.Node {
	if !g.NoGrad() || m.conv != nil || m.gru != nil || m.bigru != nil || m.contextual != nil {
		return nil
	}
	E := m.tokEmb.Table.Node.Value
	out := g.NewTensor(b.B*b.L, E.Cols)
	for r, id := range b.TokenIDs[:b.B*b.L] {
		copy(out.Row(r), E.Row(id))
	}
	return g.Const(out)
}

func addRow(dst, src []float64) {
	src = src[:len(dst)]
	for j, v := range src {
		dst[j] += v
	}
}
