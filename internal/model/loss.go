package model

import (
	"fmt"

	"repro/internal/labelmodel"
	"repro/internal/nn"
	"repro/internal/schema"
)

// LossConfig weights the multitask objective.
type LossConfig struct {
	// TaskWeights scales each task's loss (default 1).
	TaskWeights map[string]float64
	// SliceExpertWeight scales the per-expert auxiliary task losses.
	SliceExpertWeight float64 // default 0.5
	// MembershipWeight scales the slice-membership BCE losses.
	MembershipWeight float64 // default 0.2
}

func (c LossConfig) withDefaults() LossConfig {
	if c.SliceExpertWeight == 0 {
		c.SliceExpertWeight = 0.5
	}
	if c.MembershipWeight == 0 {
		c.MembershipWeight = 0.2
	}
	return c
}

func (c LossConfig) taskWeight(task string) float64 {
	if w, ok := c.TaskWeights[task]; ok {
		return w
	}
	return 1
}

// Loss builds the training objective for one forward pass against the label
// model's targets (indexed by dataset position, aligned via batch.Idx).
// Returns the scalar loss node.
func (m *Model) Loss(g *nn.Graph, st *forwardState, targets map[string]*labelmodel.TaskTargets, cfg LossConfig) (*nn.Node, error) {
	return m.lossWithNorms(g, st, targets, cfg, nil)
}

// lossWithNorms is Loss with optional externally supplied weight
// normalisers. norms == nil normalises every term by its weight total over
// this batch (the serial path). The data-parallel trainer passes the
// full-batch norms so a shard's loss is the shard's exact share of the
// full-batch loss (see lossNorms).
func (m *Model) lossWithNorms(g *nn.Graph, st *forwardState, targets map[string]*labelmodel.TaskTargets, cfg LossConfig, norms *lossNorms) (*nn.Node, error) {
	cfg = cfg.withDefaults()
	b := st.batch
	var losses []*nn.Node
	var coeffs []float64
	add := func(n *nn.Node, w float64) {
		if n != nil && w != 0 {
			losses = append(losses, n)
			coeffs = append(coeffs, w)
		}
	}
	// Normaliser lookups; -1 means "sum locally" (serial behaviour).
	local := norms == nil
	tokNorm := func(tname string) float64 {
		if local {
			return -1
		}
		return norms.token[tname]
	}
	exNorm := func(tname string) float64 {
		if local {
			return -1
		}
		return norms.example[tname]
	}
	exSliceNorm := func(tname string, s int) float64 {
		if local {
			return -1
		}
		return norms.exampleSlice[tname][s]
	}
	setNorm := func(tname string) float64 {
		if local {
			return -1
		}
		return norms.set[tname]
	}
	setSliceNorm := func(tname string, s int) float64 {
		if local {
			return -1
		}
		return norms.setSlice[tname][s]
	}
	rowNorm := func() float64 {
		if local {
			return -1
		}
		return norms.rows
	}

	// Token tasks (program order for deterministic summation).
	for _, tname := range m.Prog.TokenTasks {
		logits := st.tokenLogits[tname]
		tt := targets[tname]
		if logits == nil || tt == nil {
			continue
		}
		task := m.Prog.Schema.Tasks[tname]
		C := len(task.Classes)
		dist := g.NewTensor(b.B*b.L, C)
		weights := make([]float64, b.B*b.L)
		for r, di := range b.Idx {
			rd := tt.Dist[di]
			rw := tt.Weight[di]
			for t := 0; t < b.L && t < len(rd); t++ {
				if rw[t] <= 0 || rd[t] == nil {
					continue
				}
				copy(dist.Row(r*b.L+t), rd[t])
				weights[r*b.L+t] = rw[t]
			}
		}
		switch task.Type {
		case schema.Multiclass:
			loss, _ := g.SoftmaxCENorm(logits, dist, weights, tokNorm(tname))
			add(loss, cfg.taskWeight(tname))
		case schema.Bitvector:
			loss, _ := g.SigmoidBCENorm(logits, dist, weights, nil, tokNorm(tname))
			add(loss, cfg.taskWeight(tname))
		default:
			return nil, fmt.Errorf("model: token task %s has unsupported type %s", tname, task.Type)
		}
	}

	// Example tasks (final head + slice auxiliaries).
	for _, tname := range m.Prog.ExampleTasks {
		final := st.exampleFinal[tname]
		tt := targets[tname]
		if final == nil || tt == nil {
			continue
		}
		task := m.Prog.Schema.Tasks[tname]
		C := len(task.Classes)
		dist := g.NewTensor(b.B, C)
		weights := make([]float64, b.B)
		for r, di := range b.Idx {
			if len(tt.Dist[di]) == 0 || tt.Dist[di][0] == nil || tt.Weight[di][0] <= 0 {
				continue
			}
			copy(dist.Row(r), tt.Dist[di][0])
			weights[r] = tt.Weight[di][0]
		}
		switch task.Type {
		case schema.Multiclass:
			loss, _ := g.SoftmaxCENorm(final, dist, weights, exNorm(tname))
			add(loss, cfg.taskWeight(tname))
		case schema.Bitvector:
			loss, _ := g.SigmoidBCENorm(final, dist, weights, nil, exNorm(tname))
			add(loss, cfg.taskWeight(tname))
		}
		// Slice auxiliaries.
		if experts := st.exampleExpert[tname]; len(experts) > 0 {
			// Base expert trains on everything.
			loss, _ := g.SoftmaxCENorm(experts[0], dist, weights, exNorm(tname))
			add(loss, cfg.SliceExpertWeight*cfg.taskWeight(tname))
			for s, sliceName := range m.Prog.Slices {
				ind := m.sliceIndicator(b, sliceName)
				// Expert s+1: task loss restricted to slice members.
				sw := make([]float64, b.B)
				var any bool
				for r := range sw {
					sw[r] = weights[r] * ind[r]
					if sw[r] > 0 {
						any = true
					}
				}
				if any {
					loss, _ := g.SoftmaxCENorm(experts[s+1], dist, sw, exSliceNorm(tname, s))
					add(loss, cfg.SliceExpertWeight*cfg.taskWeight(tname))
				}
				// Membership BCE against the slice indicator.
				mw := ones(b.B)
				mt := g.NewTensor(b.B, 1)
				for r := range ind {
					mt.Set(r, 0, ind[r])
				}
				mloss, _ := g.SigmoidBCENorm(st.exampleMember[tname][s], mt, mw, nil, rowNorm())
				add(mloss, cfg.MembershipWeight)
			}
		}
	}

	// Set tasks.
	for _, tname := range m.Prog.SetTasks {
		scores := st.setScores[tname]
		tt := targets[tname]
		if scores == nil || tt == nil {
			continue
		}
		task := m.Prog.Schema.Tasks[tname]
		sb := b.Sets[task.Payload]
		if len(sb.Spans) == 0 {
			continue
		}
		flat := make([]float64, len(sb.Spans))
		segWeights := make([]float64, b.B)
		for r, di := range b.Idx {
			seg := sb.Segs[r]
			if seg.End <= seg.Start {
				continue
			}
			if len(tt.Dist[di]) == 0 || tt.Dist[di][0] == nil || tt.Weight[di][0] <= 0 {
				continue
			}
			d := tt.Dist[di][0]
			n := seg.End - seg.Start
			if len(d) != n {
				// Candidate count drifted (e.g. truncation); skip safely.
				continue
			}
			copy(flat[seg.Start:seg.End], d)
			segWeights[r] = tt.Weight[di][0]
		}
		loss, _ := g.SegmentSoftmaxCENorm(scores, sb.Segs, flat, segWeights, setNorm(tname))
		add(loss, cfg.taskWeight(tname))

		// Slice auxiliaries for set tasks.
		if experts := st.setExpert[tname]; len(experts) > 0 {
			for s, sliceName := range m.Prog.Slices {
				ind := m.sliceIndicator(b, sliceName)
				sw := make([]float64, b.B)
				var any bool
				for r := range sw {
					sw[r] = segWeights[r] * ind[r]
					if sw[r] > 0 {
						any = true
					}
				}
				if any {
					loss, _ := g.SegmentSoftmaxCENorm(experts[s], sb.Segs, flat, sw, setSliceNorm(tname, s))
					add(loss, cfg.SliceExpertWeight*cfg.taskWeight(tname))
				}
				mw := ones(b.B)
				mt := g.NewTensor(b.B, 1)
				for r := range ind {
					mt.Set(r, 0, ind[r])
				}
				mloss, _ := g.SigmoidBCENorm(st.setMember[tname][s], mt, mw, nil, rowNorm())
				add(mloss, cfg.MembershipWeight)
			}
		}
	}

	if len(losses) == 0 {
		if norms != nil {
			// A shard may hold no supervised units even though the full
			// batch does (the trainer pre-checks the batch); it simply
			// contributes zero loss and zero gradient.
			return g.Const(g.NewTensor(1, 1)), nil
		}
		return nil, fmt.Errorf("model: batch has no supervised units for any task")
	}
	return g.WeightedSum(losses, coeffs), nil
}

// sliceIndicator returns 1 per batch row belonging to the named slice.
func (m *Model) sliceIndicator(b *Batch, sliceName string) []float64 {
	out := make([]float64, b.B)
	for r, rec := range b.Recs {
		if rec.InSlice(sliceName) {
			out[r] = 1
		}
	}
	return out
}

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
