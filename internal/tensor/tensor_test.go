package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("New not zeroed")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At/Set mismatch")
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row not aliasing storage")
	}
	row[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatalf("Row write not visible")
	}
}

func TestFromSliceAndVector(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, d)
	if m.At(1, 0) != 3 {
		t.Fatalf("FromSlice layout wrong")
	}
	v := Vector(d)
	if v.Rows != 1 || v.Cols != 4 {
		t.Fatalf("Vector shape wrong")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	FromSlice(2, 3, []float64{1, 2})
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatalf("Clone shares storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("MatMul[%d]=%g want %g", i, dst.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

// MatMulATB(dst, a, b) must equal transpose(a) @ b computed naively.
func TestMatMulATBEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 3).Randn(rng, 1)
	b := New(5, 4).Randn(rng, 1)
	got := New(3, 4)
	MatMulATB(got, a, b)
	// naive
	want := New(3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for r := 0; r < 5; r++ {
				s += a.At(r, i) * b.At(r, j)
			}
			want.Set(i, j, s)
		}
	}
	if !Equal(got, want, 1e-12) {
		t.Fatalf("ATB mismatch")
	}
}

func TestMatMulABTEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(4, 3).Randn(rng, 1)
	b := New(6, 3).Randn(rng, 1)
	got := New(4, 6)
	MatMulABT(got, a, b)
	want := New(4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			var s float64
			for c := 0; c < 3; c++ {
				s += a.At(i, c) * b.At(j, c)
			}
			want.Set(i, j, s)
		}
	}
	if !Equal(got, want, 1e-12) {
		t.Fatalf("ABT mismatch")
	}
}

func TestMatMulAccumulateSemantics(t *testing.T) {
	// ATB and ABT accumulate; calling twice doubles the result.
	rng := rand.New(rand.NewSource(3))
	a := New(3, 2).Randn(rng, 1)
	b := New(3, 2).Randn(rng, 1)
	once := New(2, 2)
	MatMulATB(once, a, b)
	twice := New(2, 2)
	MatMulATB(twice, a, b)
	MatMulATB(twice, a, b)
	doubled := New(2, 2)
	Scale(doubled, once, 2)
	if !Equal(twice, doubled, 1e-12) {
		t.Fatalf("ATB does not accumulate")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	dst := New(1, 3)
	Add(dst, a, b)
	if dst.Data[2] != 9 {
		t.Fatalf("Add wrong")
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 {
		t.Fatalf("Sub wrong")
	}
	Mul(dst, a, b)
	if dst.Data[1] != 10 {
		t.Fatalf("Mul wrong")
	}
	Scale(dst, a, -2)
	if dst.Data[2] != -6 {
		t.Fatalf("Scale wrong")
	}
	AddInto(dst, a)
	if dst.Data[2] != -3 {
		t.Fatalf("AddInto wrong")
	}
	AxpyInto(dst, 3, a)
	if dst.Data[2] != 6 {
		t.Fatalf("AxpyInto wrong")
	}
}

func TestAddRowVec(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	v := FromSlice(1, 2, []float64{10, 20})
	dst := New(2, 2)
	AddRowVec(dst, a, v)
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("AddRowVec[%d]=%g want %g", i, dst.Data[i], w)
		}
	}
}

func TestApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{-1, 0, 2})
	dst := New(1, 3)
	Apply(dst, a, func(x float64) float64 { return x * x })
	if dst.Data[0] != 1 || dst.Data[2] != 4 {
		t.Fatalf("Apply wrong: %v", dst.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	dst := New(2, 3)
	SoftmaxRows(dst, a)
	// rows sum to 1
	for r := 0; r < 2; r++ {
		var s float64
		for _, v := range dst.Row(r) {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", r, s)
		}
	}
	// monotone in logits
	if !(dst.At(0, 2) > dst.At(0, 1) && dst.At(0, 1) > dst.At(0, 0)) {
		t.Fatalf("softmax not monotone")
	}
	// large logits do not overflow
	if math.Abs(dst.At(1, 0)-1.0/3.0) > 1e-12 {
		t.Fatalf("stability trick failed: %g", dst.At(1, 0))
	}
}

func TestSumDotNorms(t *testing.T) {
	a := FromSlice(1, 4, []float64{1, -2, 3, -4})
	if a.Sum() != -2 {
		t.Fatalf("Sum wrong")
	}
	b := FromSlice(1, 4, []float64{1, 1, 1, 1})
	if Dot(a, b) != -2 {
		t.Fatalf("Dot wrong")
	}
	if math.Abs(a.Norm2()-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 wrong")
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs wrong")
	}
}

func TestArgmaxRow(t *testing.T) {
	a := FromSlice(2, 3, []float64{0, 5, 2, -1, -3, -2})
	if a.ArgmaxRow(0) != 1 {
		t.Fatalf("ArgmaxRow(0) wrong")
	}
	if a.ArgmaxRow(1) != 0 {
		t.Fatalf("ArgmaxRow(1) wrong")
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := New(3, 2).Randn(rng, 1)
	b := New(3, 4).Randn(rng, 1)
	dst := New(3, 6)
	ConcatCols(dst, a, b)
	ga := New(3, 2)
	gb := New(3, 4)
	SplitColsInto(ga, gb, dst)
	if !Equal(ga, a, 1e-12) || !Equal(gb, b, 1e-12) {
		t.Fatalf("concat/split not inverse")
	}
}

func TestRandInitialisers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(50, 50).Randn(rng, 0.1)
	// mean should be near 0
	if math.Abs(m.Sum()/float64(m.Len())) > 0.01 {
		t.Fatalf("Randn mean too large")
	}
	u := New(10, 10).Uniform(rng, -1, 1)
	for _, v := range u.Data {
		if v < -1 || v > 1 {
			t.Fatalf("Uniform out of range")
		}
	}
	x := New(10, 20).Xavier(rng, 10, 20)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range x.Data {
		if v < -limit || v > limit {
			t.Fatalf("Xavier out of range")
		}
	}
	// Determinism: same seed, same values.
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	a := New(4, 4).Randn(r1, 1)
	b := New(4, 4).Randn(r2, 1)
	if !Equal(a, b, 0) {
		t.Fatalf("Randn not deterministic for fixed seed")
	}
}

func TestZeroFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.Sum() != 12 {
		t.Fatalf("Fill wrong")
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("Zero wrong")
	}
}

// Property: (A@B)@C == A@(B@C) for compatible random matrices.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4).Randn(rng, 1)
		b := New(4, 5).Randn(rng, 1)
		c := New(5, 2).Randn(rng, 1)
		ab := MatMul(New(3, 5), a, b)
		abc1 := MatMul(New(3, 2), ab, c)
		bc := MatMul(New(4, 2), b, c)
		abc2 := MatMul(New(3, 2), a, bc)
		return Equal(abc1, abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax is invariant to adding a constant to a row.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			shift = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		a := New(2, 5).Randn(rng, 2)
		s1 := SoftmaxRows(New(2, 5), a)
		shifted := Apply(New(2, 5), a, func(x float64) float64 { return x + shift })
		s2 := SoftmaxRows(New(2, 5), shifted)
		return Equal(s1, s2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(a,b) == Dot(b,a) and Norm2^2 == Dot(a,a).
func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(1, 8).Randn(rng, 1)
		b := New(1, 8).Randn(rng, 1)
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-12 {
			return false
		}
		return math.Abs(a.Norm2()*a.Norm2()-Dot(a, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(64, 64).Randn(rng, 1)
	y := New(64, 64).Randn(rng, 1)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}
