package tensor

import "math"

// Float32 transcendental kernels for the reduced-precision serve plane.
//
// The f64 serve path calls math.Exp / math.Tanh, which compute a full
// 53-bit result the float32 plane immediately rounds away. These kernels
// compute to float32 accuracy directly (Cephes-style range reduction +
// degree-6 polynomial, ~1 ulp, relative error < 2e-7), which is the same
// order as the rounding error float32 storage already introduces — well
// inside the serve parity budget of 1e-4 relative on logits — at a
// fraction of the cost per element. GRU gates evaluate two sigmoids and
// one tanh per hidden unit per timestep, so on recurrent encoders these
// dominate the non-matmul serve time.

const (
	exp32Hi = 88.3762626647949  // overflow threshold: exp(x) > MaxFloat32 above
	exp32Lo = -87.3365478515625 // underflow threshold: exp(x) < SmallestNonzero below
	log2e32 = 1.44269504088896341
	exp32C1 = 0.693359375    // ln2 split, high part
	exp32C2 = -2.12194440e-4 // ln2 split, low part
)

// Exp32 returns e**x computed to float32 accuracy (~1 ulp over the
// non-overflowing range). Out-of-range inputs saturate to +Inf / 0; NaN
// propagates.
func Exp32(x float32) float32 {
	if x != x { // NaN
		return x
	}
	if x > exp32Hi {
		return float32(math.Inf(1))
	}
	if x < exp32Lo {
		return 0
	}
	// Range reduction: x = n*ln2 + r, |r| <= ln2/2, using a two-part ln2
	// so r is exact to float32.
	n := float32(math.Floor(float64(x)*log2e32 + 0.5))
	r := x - n*exp32C1
	r -= n * exp32C2
	// exp(r) by degree-6 minimax polynomial (Cephes cephes_expf).
	z := r * r
	p := float32(1.9875691500e-4)
	p = p*r + 1.3981999507e-3
	p = p*r + 8.3334519073e-3
	p = p*r + 4.1665795894e-2
	p = p*r + 1.6666665459e-1
	p = p*r + 5.0000001201e-1
	y := p*z + r + 1
	// Scale by 2**n via exponent bits. n is within [-127, 127] here
	// because x is inside the clamp range.
	return y * math.Float32frombits(uint32(int32(n)+127)<<23)
}

// Sigmoid32 returns 1/(1+e**-x) to float32 accuracy, using the
// numerically stable split the f64 path uses (never exponentiates a
// positive argument).
func Sigmoid32(x float32) float32 {
	if x >= 0 {
		z := Exp32(-x)
		return 1 / (1 + z)
	}
	z := Exp32(x)
	return z / (1 + z)
}

// Tanh32 returns tanh(x) to float32 accuracy. |x| >= 9 saturates to
// ±1 (tanh(9) rounds to 1 in float32); tiny |x| short-circuits to x
// (error x³/3 is below float32 resolution there), which also avoids the
// cancellation in e**2x - 1.
func Tanh32(x float32) float32 {
	ax := x
	if ax < 0 {
		ax = -ax
	}
	if ax >= 9 {
		if x != x { // NaN
			return x
		}
		if x > 0 {
			return 1
		}
		return -1
	}
	if ax < 0.1 {
		// Taylor series: the e**2x-1 form cancels badly near zero, and
		// the omitted x⁷ term is below float32 resolution for |x| < 0.1.
		z := x * x
		return x * (1 - z/3 + z*z*(2.0/15.0))
	}
	e := Exp32(2 * ax)
	t := (e - 1) / (e + 1)
	if x < 0 {
		return -t
	}
	return t
}
