// Package tensor implements dense, row-major float64 tensors and the
// numerical kernels used by the nn package. It is deliberately small: the
// Overton compiler only needs 1-D and 2-D tensors (vectors, matrices) plus a
// handful of kernels (matmul, elementwise maps, row softmax, reductions).
//
// All operations are deterministic. Random initialisation takes an explicit
// *rand.Rand so callers control seeding.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 tensor. Rows and Cols describe the
// logical 2-D shape; a vector is represented as Rows=1. Data has length
// Rows*Cols and is owned by the tensor unless documented otherwise.
type Tensor struct {
	Rows int
	Cols int
	Data []float64
}

// New allocates a zeroed rows x cols tensor.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// Vector wraps data as a 1 x len(data) tensor (not copied).
func Vector(data []float64) *Tensor { return FromSlice(1, len(data), data) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Rows, t.Cols)
	copy(c.Data, t.Data)
	return c
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// At returns the element at (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set assigns the element at (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the tensor's storage.
func (t *Tensor) Row(r int) []float64 { return t.Data[r*t.Cols : (r+1)*t.Cols] }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders a compact description, eliding large tensors.
func (t *Tensor) String() string {
	if t.Len() <= 16 {
		return fmt.Sprintf("Tensor(%dx%d)%v", t.Rows, t.Cols, t.Data)
	}
	return fmt.Sprintf("Tensor(%dx%d)[%g %g ...]", t.Rows, t.Cols, t.Data[0], t.Data[1])
}

// Randn fills t with N(0, std^2) samples from rng and returns t.
func (t *Tensor) Randn(rng *rand.Rand, std float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform fills t with U(lo, hi) samples from rng and returns t.
func (t *Tensor) Uniform(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Xavier fills t with Glorot-uniform samples appropriate for a fanIn x fanOut
// weight matrix and returns t.
func (t *Tensor) Xavier(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return t.Uniform(rng, -limit, limit)
}

// checkShape panics with op context when shapes are incompatible.
func checkShape(op string, ok bool, format string, args ...any) {
	if !ok {
		panic("tensor: " + op + ": " + fmt.Sprintf(format, args...))
	}
}

// MatMulNaive computes dst = a @ b with the reference triple loop. dst must
// be m x n and distinct from a and b. Returns dst. Kept as the ground truth
// the blocked/parallel kernels in kernels.go are parity-tested against.
func MatMulNaive(dst, a, b *Tensor) *Tensor {
	checkShape("MatMul", a.Cols == b.Rows, "inner dims %d != %d", a.Cols, b.Rows)
	checkShape("MatMul", dst.Rows == a.Rows && dst.Cols == b.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	m, k, n := a.Rows, a.Cols, b.Cols
	dst.Zero()
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulATBNaive computes dst += aᵀ @ b with the reference loop; a is m x k,
// b is m x n, dst is k x n. Note it accumulates into dst.
func MatMulATBNaive(dst, a, b *Tensor) *Tensor {
	checkShape("MatMulATB", a.Rows == b.Rows, "outer dims %d != %d", a.Rows, b.Rows)
	checkShape("MatMulATB", dst.Rows == a.Cols && dst.Cols == b.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols)
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		brow := b.Data[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulABTNaive computes dst += a @ bᵀ with the reference loop; a is m x n,
// b is k x n, dst is m x k. Note it accumulates into dst.
func MatMulABTNaive(dst, a, b *Tensor) *Tensor {
	checkShape("MatMulABT", a.Cols == b.Cols, "inner dims %d != %d", a.Cols, b.Cols)
	checkShape("MatMulABT", dst.Rows == a.Rows && dst.Cols == b.Rows,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows)
	m, n, k := a.Rows, a.Cols, b.Rows
	for i := 0; i < m; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			brow := b.Data[p*n : (p+1)*n]
			var s float64
			for j, av := range arow {
				s += av * brow[j]
			}
			drow[p] += s
		}
	}
	return dst
}

// Add computes dst = a + b elementwise; shapes must match. dst may alias a or b.
func Add(dst, a, b *Tensor) *Tensor {
	checkShape("Add", a.SameShape(b) && dst.SameShape(a), "shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// AddInto accumulates src into dst (dst += src).
func AddInto(dst, src *Tensor) *Tensor {
	checkShape("AddInto", dst.SameShape(src), "shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] += v
	}
	return dst
}

// AddRowVec computes dst = a + v broadcast over rows, where v is 1 x a.Cols.
func AddRowVec(dst, a, v *Tensor) *Tensor {
	checkShape("AddRowVec", v.Rows == 1 && v.Cols == a.Cols, "vec 1x%d vs mat %dx%d", v.Cols, a.Rows, a.Cols)
	checkShape("AddRowVec", dst.SameShape(a), "dst shape mismatch")
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		drow := dst.Row(r)
		for c, bv := range v.Data {
			drow[c] = arow[c] + bv
		}
	}
	return dst
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Tensor) *Tensor {
	checkShape("Sub", a.SameShape(b) && dst.SameShape(a), "shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Mul computes dst = a * b elementwise (Hadamard product).
func Mul(dst, a, b *Tensor) *Tensor {
	checkShape("Mul", a.SameShape(b) && dst.SameShape(a), "shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale computes dst = a * c.
func Scale(dst, a *Tensor, c float64) *Tensor {
	checkShape("Scale", dst.SameShape(a), "shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * c
	}
	return dst
}

// AxpyInto accumulates dst += alpha * src.
func AxpyInto(dst *Tensor, alpha float64, src *Tensor) *Tensor {
	checkShape("AxpyInto", dst.SameShape(src), "shape mismatch")
	for i, v := range src.Data {
		dst.Data[i] += alpha * v
	}
	return dst
}

// Apply computes dst = f(a) elementwise; dst may alias a.
func Apply(dst, a *Tensor, f func(float64) float64) *Tensor {
	checkShape("Apply", dst.SameShape(a), "shape mismatch")
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
	return dst
}

// SoftmaxRows computes dst = row-wise softmax(a) with the max-subtraction
// trick for numerical stability. dst may alias a.
func SoftmaxRows(dst, a *Tensor) *Tensor {
	checkShape("SoftmaxRows", dst.SameShape(a), "shape mismatch")
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		drow := dst.Row(r)
		maxv := math.Inf(-1)
		for _, v := range arow {
			if v > maxv {
				maxv = v
			}
		}
		var z float64
		for c, v := range arow {
			e := math.Exp(v - maxv)
			drow[c] = e
			z += e
		}
		if z == 0 {
			z = 1
		}
		inv := 1 / z
		for c := range drow {
			drow[c] *= inv
		}
	}
	return dst
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Dot returns the inner product of two equally shaped tensors.
func Dot(a, b *Tensor) float64 {
	checkShape("Dot", a.SameShape(b), "shape mismatch")
	var s float64
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of all elements.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute value in t (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgmaxRow returns the column index of the maximum element in row r.
func (t *Tensor) ArgmaxRow(r int) int {
	row := t.Row(r)
	best, bestV := 0, math.Inf(-1)
	for c, v := range row {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// ConcatCols concatenates a (m x ca) and b (m x cb) into dst (m x ca+cb).
func ConcatCols(dst, a, b *Tensor) *Tensor {
	checkShape("ConcatCols", a.Rows == b.Rows, "row mismatch %d vs %d", a.Rows, b.Rows)
	checkShape("ConcatCols", dst.Rows == a.Rows && dst.Cols == a.Cols+b.Cols, "dst shape")
	for r := 0; r < a.Rows; r++ {
		drow := dst.Row(r)
		copy(drow[:a.Cols], a.Row(r))
		copy(drow[a.Cols:], b.Row(r))
	}
	return dst
}

// SplitCols splits src (m x ca+cb) into a (m x ca) and b (m x cb),
// accumulating into both (used for concat backward).
func SplitColsInto(a, b, src *Tensor) {
	checkShape("SplitColsInto", src.Rows == a.Rows && src.Rows == b.Rows, "row mismatch")
	checkShape("SplitColsInto", src.Cols == a.Cols+b.Cols, "col mismatch")
	for r := 0; r < src.Rows; r++ {
		srow := src.Row(r)
		arow := a.Row(r)
		brow := b.Row(r)
		for c := range arow {
			arow[c] += srow[c]
		}
		for c := range brow {
			brow[c] += srow[a.Cols+c]
		}
	}
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
