package tensor

import (
	"math"
	"testing"
)

// relErr32 is the relative error of got against a float64 reference.
func relErr32(got float32, want float64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got)-want) / math.Abs(want)
}

// TestExp32Accuracy sweeps the working range and pins Exp32 against
// math.Exp at a few-ulp float32 tolerance. A float32 has ~6e-8 relative
// resolution; 5e-7 allows the range-reduction rounding on top.
func TestExp32Accuracy(t *testing.T) {
	worst := 0.0
	for x0 := -87.0; x0 <= 88.0; x0 += 0.0137 {
		x := float64(float32(x0)) // quantize the input; we pin kernel error, not input rounding
		e := relErr32(Exp32(float32(x)), math.Exp(x))
		if e > worst {
			worst = e
		}
	}
	if worst > 5e-7 {
		t.Fatalf("Exp32 worst relative error %.3g, want <= 5e-7", worst)
	}
	t.Logf("Exp32 worst relative error %.3g", worst)
}

// TestExp32Edges checks saturation and special values.
func TestExp32Edges(t *testing.T) {
	if v := Exp32(0); v != 1 {
		t.Fatalf("Exp32(0) = %v", v)
	}
	if v := Exp32(200); !math.IsInf(float64(v), 1) {
		t.Fatalf("Exp32(200) = %v, want +Inf", v)
	}
	if v := Exp32(-200); v != 0 {
		t.Fatalf("Exp32(-200) = %v, want 0", v)
	}
	if v := Exp32(float32(math.NaN())); v == v {
		t.Fatalf("Exp32(NaN) = %v, want NaN", v)
	}
}

// TestSigmoid32Accuracy pins Sigmoid32 against the float64 stable form
// over the gate pre-activation range.
func TestSigmoid32Accuracy(t *testing.T) {
	worst := 0.0
	for x0 := -30.0; x0 <= 30.0; x0 += 0.0091 {
		x := float64(float32(x0))
		var want float64
		if x >= 0 {
			want = 1 / (1 + math.Exp(-x))
		} else {
			z := math.Exp(x)
			want = z / (1 + z)
		}
		e := relErr32(Sigmoid32(float32(x)), want)
		if e > worst {
			worst = e
		}
	}
	if worst > 5e-7 {
		t.Fatalf("Sigmoid32 worst relative error %.3g, want <= 5e-7", worst)
	}
}

// TestTanh32Accuracy pins Tanh32 against math.Tanh, including the tiny-x
// Taylor branch, the exp-based midrange, and saturation.
func TestTanh32Accuracy(t *testing.T) {
	worst := 0.0
	for x0 := -12.0; x0 <= 12.0; x0 += 0.0073 {
		x := float64(float32(x0))
		e := relErr32(Tanh32(float32(x)), math.Tanh(x))
		if e > worst {
			worst = e
		}
	}
	// Also sweep the Taylor/exp seam densely.
	for x0 := -0.2; x0 <= 0.2; x0 += 1e-4 {
		x := float64(float32(x0))
		e := relErr32(Tanh32(float32(x)), math.Tanh(x))
		if e > worst {
			worst = e
		}
	}
	if worst > 7e-7 {
		t.Fatalf("Tanh32 worst relative error %.3g, want <= 7e-7", worst)
	}
	if v := Tanh32(100); v != 1 {
		t.Fatalf("Tanh32(100) = %v, want 1", v)
	}
	if v := Tanh32(-100); v != -1 {
		t.Fatalf("Tanh32(-100) = %v, want -1", v)
	}
	if v := Tanh32(float32(math.NaN())); v == v {
		t.Fatalf("Tanh32(NaN) = %v, want NaN", v)
	}
	if v := Tanh32(0); v != 0 {
		t.Fatalf("Tanh32(0) = %v, want 0", v)
	}
}
