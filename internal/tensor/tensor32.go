package tensor

// Tensor32 is a dense row-major float32 matrix: the reduced-precision
// sibling of Tensor for the serving fast path. Folded projection tables
// are read-only at serve time and tolerant of float32 rounding, so
// storing them at half the width halves the cache footprint the predict
// loop streams per token. Tensor32 deliberately mirrors only the surface
// the serve path needs (construction, row views, converters, matmul);
// training stays float64.
type Tensor32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 allocates a zeroed rows x cols float32 tensor.
func New32(rows, cols int) *Tensor32 {
	return &Tensor32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (r, c).
func (t *Tensor32) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor32) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Row returns a mutable view of row r.
func (t *Tensor32) Row(r int) []float32 { return t.Data[r*t.Cols : (r+1)*t.Cols] }

// Zero clears all elements.
func (t *Tensor32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// FromF64 converts src to a freshly allocated float32 tensor (round to
// nearest, ties to even — the usual float64→float32 conversion).
func FromF64(src *Tensor) *Tensor32 {
	dst := New32(src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
	return dst
}

// ToF64 widens t into dst (allocated when nil). Widening is exact: every
// float32 is representable as a float64.
func (t *Tensor32) ToF64(dst *Tensor) *Tensor {
	if dst == nil {
		dst = New(t.Rows, t.Cols)
	}
	checkShape("ToF64", dst.Rows == t.Rows && dst.Cols == t.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, t.Rows, t.Cols)
	for i, v := range t.Data {
		dst.Data[i] = float64(v)
	}
	return dst
}

// Equal32 reports whether a and b have identical shape and elementwise
// |a-b| <= tol.
func Equal32(a, b *Tensor32, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// MatMul32Naive computes dst = a @ b with the reference triple loop: per
// output element the shared dimension is walked in ascending order. The
// blocked/parallel MatMul32 preserves this exact accumulation order, so
// the two match bit for bit (pinned by parity tests, mirroring the
// float64 kernels' contract).
func MatMul32Naive(dst, a, b *Tensor32) *Tensor32 {
	checkShape("MatMul32Naive", a.Cols == b.Rows, "inner dims %d != %d", a.Cols, b.Rows)
	checkShape("MatMul32Naive", dst.Rows == a.Rows && dst.Cols == b.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	k, n := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// MatMul32 computes dst = a @ b where a is m x k and b is k x n. dst must
// be m x n and distinct from a and b. Returns dst. Shares the float64
// kernels' structure: k-blocked streaming inner loops fanned out across
// the same bounded worker pool above the flop threshold, bit-compatible
// with MatMul32Naive.
func MatMul32(dst, a, b *Tensor32) *Tensor32 {
	checkShape("MatMul32", a.Cols == b.Rows, "inner dims %d != %d", a.Cols, b.Rows)
	checkShape("MatMul32", dst.Rows == a.Rows && dst.Cols == b.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	m, k, n := a.Rows, a.Cols, b.Cols
	if m*k*n >= parallelFlops && maxWorkers > 1 && m > 1 {
		matMul32Parallel(*dst, *a, *b, m)
	} else {
		matMul32Range(dst, a, b, 0, m)
	}
	return dst
}

// matMul32Parallel fans matMul32Range across the worker pool. It takes
// tensor headers by value so the closure captures copies: the serve path
// hands MatMul32 stack-allocated views over scratch buffers, and a
// closure capturing the caller's pointers would force every such header
// to the heap even on the serial path (the f32 plane's per-op alloc
// count is pinned by a regression test).
func matMul32Parallel(dst, a, b Tensor32, m int) {
	parallelRows(m, func(lo, hi int) { matMul32Range(&dst, &a, &b, lo, hi) })
}

// matMul32Range computes rows [lo, hi) of dst = a @ b: the float32 twin
// of matMulRange. The j loop is the 8-wide unrolled axpy32 — branch-free
// over contiguous streaming stores, shaped so a vectorising backend
// (GOAMD64=v3 lanes) or the scalar dual-issue pipeline can overlap the
// independent lanes — while the per-element accumulation still walks the
// shared dimension ascending, matching MatMul32Naive bit for bit.
func matMul32Range(dst, a, b *Tensor32, lo, hi int) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
	}
	for kk := 0; kk < k; kk += blockK {
		kEnd := kk + blockK
		if kEnd > k {
			kEnd = k
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*n : (i+1)*n]
			for p := kk; p < kEnd; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				axpy32(drow, av, b.Data[p*n:(p+1)*n])
			}
		}
	}
}

// axpy32 computes dst[j] += a * src[j], 8 lanes per iteration. dst and
// src must be the same length.
func axpy32(dst []float32, a float32, src []float32) {
	dst = dst[:len(src)]
	j := 0
	for ; j+8 <= len(src); j += 8 {
		d := dst[j : j+8 : j+8]
		s := src[j : j+8 : j+8]
		d[0] += a * s[0]
		d[1] += a * s[1]
		d[2] += a * s[2]
		d[3] += a * s[3]
		d[4] += a * s[4]
		d[5] += a * s[5]
		d[6] += a * s[6]
		d[7] += a * s[7]
	}
	for ; j < len(src); j++ {
		dst[j] += a * src[j]
	}
}

// AddRow32 computes dst[j] += src[j] (the folded-table row add), 8 lanes
// per iteration like axpy32.
func AddRow32(dst, src []float32) {
	src = src[:len(dst)]
	j := 0
	for ; j+8 <= len(dst); j += 8 {
		d := dst[j : j+8 : j+8]
		s := src[j : j+8 : j+8]
		d[0] += s[0]
		d[1] += s[1]
		d[2] += s[2]
		d[3] += s[3]
		d[4] += s[4]
		d[5] += s[5]
		d[6] += s[6]
		d[7] += s[7]
	}
	for ; j < len(dst); j++ {
		dst[j] += src[j]
	}
}

// Dot32 returns the dot product of a and b (ascending, 4 independent
// accumulators re-associated pairwise at the end; used where bit parity
// with a naive order is not required, e.g. attention scores).
func Dot32(a, b []float32) float32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+4 <= len(a); j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	var tail float32
	for ; j < len(a); j++ {
		tail += a[j] * b[j]
	}
	return (s0 + s1) + (s2 + s3) + tail
}
