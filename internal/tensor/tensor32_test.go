package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// float32 kernel parity: the blocked/parallel MatMul32 must match the
// naive reference loop bit for bit (identical accumulation order), on
// shapes that cross the fan-out threshold and ragged sizes that exercise
// the unroll remainders.

func randMat32(rng *rand.Rand, r, c int) *Tensor32 {
	t := New32(r, c)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func sparsify32(rng *rand.Rand, t *Tensor32, frac float64) {
	for i := range t.Data {
		if rng.Float64() < frac {
			t.Data[i] = 0
		}
	}
}

func TestMatMul32Parity(t *testing.T) {
	restore := maxWorkers
	maxWorkers = 4 // force the pool path even on single-CPU CI machines
	defer func() { maxWorkers = restore }()
	rng := rand.New(rand.NewSource(23))
	for _, sh := range parityShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat32(rng, m, k)
		b := randMat32(rng, k, n)
		sparsify32(rng, a, 0.2)
		got := MatMul32(New32(m, n), a, b)
		want := MatMul32Naive(New32(m, n), a, b)
		if !Equal32(got, want, 0) {
			t.Fatalf("MatMul32 %dx%dx%d diverges from naive", m, k, n)
		}
	}
}

func TestMatMul32MatchesF64WithinTolerance(t *testing.T) {
	// The f32 product of f32-rounded inputs must track the f64 product of
	// the same values at single-precision accuracy — the kernel-level
	// bound under the model-level 1e-4 parity tier.
	rng := rand.New(rand.NewSource(29))
	for _, sh := range parityShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a64 := randMat(rng, m, k)
		b64 := randMat(rng, k, n)
		a32, b32 := FromF64(a64), FromF64(b64)
		// Round the f64 inputs through f32 too, so the comparison isolates
		// accumulation error from input-rounding error.
		a32.ToF64(a64)
		b32.ToF64(b64)
		got := MatMul32(New32(m, n), a32, b32)
		want := MatMul(New(m, n), a64, b64)
		for i, v := range got.Data {
			ref := want.Data[i]
			denom := math.Max(1, math.Abs(ref))
			if math.Abs(float64(v)-ref)/denom > 1e-5*math.Sqrt(float64(k)) {
				t.Fatalf("%dx%dx%d elem %d: f32 %v vs f64 %v", m, k, n, i, v, ref)
			}
		}
	}
}

func TestConvertersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := randMat(rng, 7, 13)
	t32 := FromF64(src)
	back := t32.ToF64(nil)
	for i, v := range back.Data {
		if float32(src.Data[i]) != float32(v) {
			t.Fatalf("round trip elem %d: %v -> %v", i, src.Data[i], v)
		}
		// Widening must be exact.
		if v != float64(t32.Data[i]) {
			t.Fatalf("widening elem %d not exact", i)
		}
	}
	if t32.At(3, 4) != float32(src.At(3, 4)) {
		t.Fatalf("At mismatch")
	}
	t32.Set(3, 4, 42)
	if t32.At(3, 4) != 42 {
		t.Fatalf("Set/At mismatch")
	}
	t32.Zero()
	for _, v := range t32.Data {
		if v != 0 {
			t.Fatalf("Zero left %v", v)
		}
	}
}

func TestAddRow32AndDot32(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, n := range []int{1, 3, 8, 9, 24, 31, 32} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, n)
		var wantDot float64
		for i := range a {
			want[i] = a[i] + b[i]
			wantDot += float64(a[i]) * float64(b[i])
		}
		got := append([]float32(nil), a...)
		AddRow32(got, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d AddRow32 elem %d: %v want %v", n, i, got[i], want[i])
			}
		}
		if d := math.Abs(float64(Dot32(a, b)) - wantDot); d > 1e-4 {
			t.Fatalf("n=%d Dot32 off by %v", n, d)
		}
	}
}
