package tensor

import (
	"math/rand"
	"testing"
)

func benchMats(m, k, n int) (dst, a, b *Tensor) {
	rng := rand.New(rand.NewSource(7))
	a = New(m, k).Randn(rng, 1)
	b = New(k, n).Randn(rng, 1)
	dst = New(m, n)
	return
}

// BenchmarkMatMulServe matches the serving-path conv matmul shape.
func BenchmarkMatMulServe(bb *testing.B) {
	dst, a, b := benchMats(9, 72, 32)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMul(dst, a, b)
	}
}

// BenchmarkMatMulTrain matches the training-path conv matmul shape.
func BenchmarkMatMulTrain(bb *testing.B) {
	dst, a, b := benchMats(32*12, 72, 32)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMul(dst, a, b)
	}
}

// BenchmarkMatMulNaiveServe is the reference kernel on the serving shape.
func BenchmarkMatMulNaiveServe(bb *testing.B) {
	dst, a, b := benchMats(9, 72, 32)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulNaive(dst, a, b)
	}
}

// BenchmarkMatMulLarge exercises the parallel path on big shapes.
func BenchmarkMatMulLarge(bb *testing.B) {
	dst, a, b := benchMats(256, 256, 256)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMul(dst, a, b)
	}
}

// BenchmarkMatMulNaiveTrain is the reference kernel on the training shape.
func BenchmarkMatMulNaiveTrain(bb *testing.B) {
	dst, a, b := benchMats(32*12, 72, 32)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulNaive(dst, a, b)
	}
}

// BenchmarkMatMulNaiveLarge is the reference kernel on the large shape.
func BenchmarkMatMulNaiveLarge(bb *testing.B) {
	dst, a, b := benchMats(256, 256, 256)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulNaive(dst, a, b)
	}
}

// Gradient-kernel shapes from the training path (weight and input grads).
func BenchmarkMatMulATBTrain(bb *testing.B) {
	_, a, _ := benchMats(384, 72, 1)
	_, b, _ := benchMats(384, 32, 1)
	dst := New(72, 32)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulATB(dst, a, b)
	}
}

func BenchmarkMatMulATBNaiveTrain(bb *testing.B) {
	_, a, _ := benchMats(384, 72, 1)
	_, b, _ := benchMats(384, 32, 1)
	dst := New(72, 32)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulATBNaive(dst, a, b)
	}
}

func BenchmarkMatMulABTTrain(bb *testing.B) {
	_, a, _ := benchMats(384, 32, 1)
	_, b, _ := benchMats(72, 32, 1)
	dst := New(384, 72)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulABT(dst, a, b)
	}
}

func BenchmarkMatMulABTNaiveTrain(bb *testing.B) {
	_, a, _ := benchMats(384, 32, 1)
	_, b, _ := benchMats(72, 32, 1)
	dst := New(384, 72)
	bb.ResetTimer()
	for i := 0; i < bb.N; i++ {
		MatMulABTNaive(dst, a, b)
	}
}
