package tensor

// Arena is a pooled allocator for tensors whose lifetime is bounded by one
// forward/backward pass (tape values, gradients, dropout masks, loss
// scratch). Alloc hands out zeroed tensors carved from large chunks;
// Reset recycles every allocation at once without freeing the chunks, so a
// steady-state training or serving loop performs no per-tensor heap
// allocation after warm-up.
//
// Ownership rules (see PERFORMANCE.md):
//
//   - A tensor returned by Alloc is valid until the next Reset of its arena.
//   - Callers that need a value to survive Reset must Clone it first.
//   - An Arena is not safe for concurrent use; give each goroutine its own
//     (the model layer pools one arena per in-flight prediction).
type Arena struct {
	chunkSize int
	chunks    [][]float64
	ci        int // index of the chunk currently being carved
	off       int // offset into chunks[ci]

	hdrs []*Tensor // pooled tensor headers, reused across Reset
	nh   int       // headers handed out since the last Reset
}

// defaultChunk is the default arena chunk size in float64s (512 KiB).
const defaultChunk = 64 * 1024

// NewArena creates an arena with the default chunk size.
func NewArena() *Arena { return NewArenaSize(defaultChunk) }

// NewArenaSize creates an arena whose chunks hold chunkFloats float64s.
func NewArenaSize(chunkFloats int) *Arena {
	if chunkFloats <= 0 {
		chunkFloats = defaultChunk
	}
	return &Arena{chunkSize: chunkFloats}
}

// Alloc returns a zeroed rows x cols tensor backed by the arena.
func (a *Arena) Alloc(rows, cols int) *Tensor {
	t := a.AllocNoZero(rows, cols)
	for i := range t.Data {
		t.Data[i] = 0
	}
	return t
}

// AllocNoZero returns a rows x cols tensor backed by the arena WITHOUT
// clearing recycled contents. Only for callers that overwrite every
// element before reading (matmul outputs, elementwise map destinations).
func (a *Arena) AllocNoZero(rows, cols int) *Tensor {
	var t *Tensor
	if a.nh < len(a.hdrs) {
		t = a.hdrs[a.nh]
	} else {
		t = new(Tensor)
		a.hdrs = append(a.hdrs, t)
	}
	a.nh++
	t.Rows, t.Cols = rows, cols
	t.Data = a.allocRaw(rows * cols)
	return t
}

// allocRaw carves a slice of n float64s out of the chunk list (contents
// undefined), growing it when needed. The returned slice has capacity ==
// length so appends by callers can never bleed into neighbouring
// allocations.
func (a *Arena) allocRaw(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if a.ci < len(a.chunks) {
			ch := a.chunks[a.ci]
			if a.off+n <= len(ch) {
				s := ch[a.off : a.off+n : a.off+n]
				a.off += n
				return s
			}
			a.ci++
			a.off = 0
			continue
		}
		size := a.chunkSize
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]float64, size))
	}
}

// Reset recycles every allocation made since the previous Reset. Tensors
// previously returned by Alloc must not be used afterwards.
func (a *Arena) Reset() {
	a.ci, a.off, a.nh = 0, 0, 0
}

// Footprint returns the total float64 capacity currently held by the arena
// (for diagnostics and tests).
func (a *Arena) Footprint() int {
	var n int
	for _, ch := range a.chunks {
		n += len(ch)
	}
	return n
}
