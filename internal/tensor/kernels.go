package tensor

import (
	"runtime"
	"sync"
)

// This file holds the production matmul kernels: cache-blocked inner loops
// that fan independent output-row ranges out across a bounded worker pool
// once the problem is large enough to amortise the hand-off. The naive
// triple loops in tensor.go (MatMulNaive and friends) are kept as the
// reference implementations; the blocked/parallel kernels preserve their
// exact per-element accumulation order, so results are bit-compatible
// (parity tests pin this at 1e-12).

const (
	// parallelFlops is the m*k*n product above which a matmul fans out to
	// the worker pool. Below it the hand-off overhead dominates.
	parallelFlops = 1 << 17
	// blockK tiles the shared dimension so the active rows of b stay hot
	// in cache while many output rows stream past.
	blockK = 256
)

// maxWorkers bounds kernel parallelism to the machine.
var maxWorkers = runtime.NumCPU()

var (
	poolOnce sync.Once
	poolJobs chan poolJob
)

type poolJob struct {
	f      func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// startPool lazily starts the bounded worker pool. Workers never submit
// jobs themselves (kernels do not nest), so submission can safely block.
func startPool() {
	poolJobs = make(chan poolJob, maxWorkers)
	for i := 0; i < maxWorkers; i++ {
		go func() {
			for j := range poolJobs {
				j.f(j.lo, j.hi)
				j.wg.Done()
			}
		}()
	}
}

// parallelRows splits [0, m) into one contiguous range per worker and runs
// f on each. The calling goroutine executes the last range itself so a
// lone caller never sits idle. f must touch only rows in its range.
func parallelRows(m int, f func(lo, hi int)) {
	workers := maxWorkers
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		f(0, m)
		return
	}
	poolOnce.Do(startPool)
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	lo := 0
	for lo+chunk < m {
		wg.Add(1)
		poolJobs <- poolJob{f: f, lo: lo, hi: lo + chunk, wg: &wg}
		lo += chunk
	}
	f(lo, m)
	wg.Wait()
}

// MatMul computes dst = a @ b where a is m x k and b is k x n. dst must be
// m x n and distinct from a and b. Returns dst. Large products are blocked
// and run on the worker pool; results match MatMulNaive bit for bit.
func MatMul(dst, a, b *Tensor) *Tensor {
	checkShape("MatMul", a.Cols == b.Rows, "inner dims %d != %d", a.Cols, b.Rows)
	checkShape("MatMul", dst.Rows == a.Rows && dst.Cols == b.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	m, k, n := a.Rows, a.Cols, b.Cols
	if m*k*n >= parallelFlops && maxWorkers > 1 && m > 1 {
		parallelRows(m, func(lo, hi int) { matMulRange(dst, a, b, lo, hi) })
	} else {
		matMulRange(dst, a, b, 0, m)
	}
	return dst
}

// matMulRange computes rows [lo, hi) of dst = a @ b: the naive streaming
// loop under a k-blocked outer loop so the active slab of b stays hot in
// cache while output rows stream past. Register-tiled variants were
// benchmarked and lost on the scalar FP units this targets (the b-row
// stream dual-issues mul+add at full throughput; accumulator tiles spill);
// the zero-skip also lets dropout- and pad-sparse rows exit early. Per
// output element the shared dimension is walked in ascending order exactly
// as MatMulNaive does, so results match bit for bit.
func matMulRange(dst, a, b *Tensor, lo, hi int) {
	k, n := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
	}
	for kk := 0; kk < k; kk += blockK {
		kEnd := kk + blockK
		if kEnd > k {
			kEnd = k
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*n : (i+1)*n]
			for p := kk; p < kEnd; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				x := drow[:len(brow)]
				for j, bv := range brow {
					x[j] += av * bv
				}
			}
		}
	}
}

// MatMulATB computes dst += aᵀ @ b where a is m x k, b is m x n, dst is
// k x n. Used for weight gradients; note it accumulates into dst. Rows of
// dst (columns of a) are partitioned across the pool for large products.
func MatMulATB(dst, a, b *Tensor) *Tensor {
	checkShape("MatMulATB", a.Rows == b.Rows, "outer dims %d != %d", a.Rows, b.Rows)
	checkShape("MatMulATB", dst.Rows == a.Cols && dst.Cols == b.Cols,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols)
	m, k, n := a.Rows, a.Cols, b.Cols
	if m*k*n >= parallelFlops && maxWorkers > 1 && k > 1 {
		parallelRows(k, func(lo, hi int) { matMulATBRange(dst, a, b, lo, hi) })
	} else {
		matMulATBRange(dst, a, b, 0, k)
	}
	return dst
}

// matMulATBRange accumulates dst rows [plo, phi) of aᵀ @ b, four dst rows
// per pass over b so each b row is streamed once per quad instead of once
// per row. Per dst row the accumulation walks i ascending, matching the
// naive kernel's order.
func matMulATBRange(dst, a, b *Tensor, plo, phi int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	p := plo
	for ; p+4 <= phi; p += 4 {
		d0 := dst.Data[p*n : (p+1)*n]
		d1 := dst.Data[(p+1)*n : (p+2)*n]
		d2 := dst.Data[(p+2)*n : (p+3)*n]
		d3 := dst.Data[(p+3)*n : (p+4)*n]
		for i := 0; i < m; i++ {
			arow := a.Data[i*k : (i+1)*k]
			v0, v1, v2, v3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			brow := b.Data[i*n : (i+1)*n]
			x0, x1, x2, x3 := d0[:len(brow)], d1[:len(brow)], d2[:len(brow)], d3[:len(brow)]
			for j, bv := range brow {
				x0[j] += v0 * bv
				x1[j] += v1 * bv
				x2[j] += v2 * bv
				x3[j] += v3 * bv
			}
		}
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		brow := b.Data[i*n : (i+1)*n]
		for q := p; q < phi; q++ {
			av := arow[q]
			if av == 0 {
				continue
			}
			drow := dst.Data[q*n : (q+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulABT computes dst += a @ bᵀ where a is m x n, b is k x n, dst is
// m x k. Used for input gradients; note it accumulates into dst. Output
// rows are partitioned across the pool for large products.
func MatMulABT(dst, a, b *Tensor) *Tensor {
	checkShape("MatMulABT", a.Cols == b.Cols, "inner dims %d != %d", a.Cols, b.Cols)
	checkShape("MatMulABT", dst.Rows == a.Rows && dst.Cols == b.Rows,
		"dst %dx%d != %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows)
	m, n, k := a.Rows, a.Cols, b.Rows
	if m*k*n >= parallelFlops && maxWorkers > 1 && m > 1 {
		parallelRows(m, func(lo, hi int) { matMulABTRange(dst, a, b, lo, hi) })
	} else {
		matMulABTRange(dst, a, b, 0, m)
	}
	return dst
}

// matMulABTRange accumulates rows [lo, hi) of a @ bᵀ into dst, computing
// four dot products per pass over a's row so it is streamed once per quad.
// Each dot product sums j ascending, identical to the naive kernel.
func matMulABTRange(dst, a, b *Tensor, lo, hi int) {
	n, k := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			b0 := b.Data[p*n : (p+1)*n]
			b1 := b.Data[(p+1)*n : (p+2)*n]
			b2 := b.Data[(p+2)*n : (p+3)*n]
			b3 := b.Data[(p+3)*n : (p+4)*n]
			b0 = b0[:len(arow)]
			b1 = b1[:len(arow)]
			b2 = b2[:len(arow)]
			b3 = b3[:len(arow)]
			var s0, s1, s2, s3 float64
			for j, av := range arow {
				s0 += av * b0[j]
				s1 += av * b1[j]
				s2 += av * b2[j]
				s3 += av * b3[j]
			}
			drow[p] += s0
			drow[p+1] += s1
			drow[p+2] += s2
			drow[p+3] += s3
		}
		for ; p < k; p++ {
			brow := b.Data[p*n : (p+1)*n]
			var s float64
			for j, av := range arow {
				s += av * brow[j]
			}
			drow[p] += s
		}
	}
}
