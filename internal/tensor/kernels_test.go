package tensor

import (
	"math/rand"
	"testing"
)

// kernel parity: the blocked/parallel kernels must match the naive
// reference loops within 1e-12 on random shapes, including shapes that
// cross the parallel fan-out threshold and ragged sizes that exercise the
// remainder paths.

func randMat(rng *rand.Rand, r, c int) *Tensor {
	return New(r, c).Randn(rng, 1)
}

// sparsify zeroes a fraction of entries so the zero-skip paths run.
func sparsify(rng *rand.Rand, t *Tensor, frac float64) {
	for i := range t.Data {
		if rng.Float64() < frac {
			t.Data[i] = 0
		}
	}
}

func parityShapes() [][3]int {
	return [][3]int{
		{1, 1, 1},
		{1, 24, 32},
		{3, 7, 5},
		{4, 8, 8},
		{5, 72, 32},
		{9, 72, 32},
		{13, 31, 17},
		{64, 64, 64},
		{97, 101, 33},
		{128, 300, 40}, // crosses parallelFlops
		{384, 72, 32},  // training conv shape
	}
}

func TestMatMulParity(t *testing.T) {
	restore := maxWorkers
	maxWorkers = 4 // force the pool path even on single-CPU CI machines
	defer func() { maxWorkers = restore }()
	rng := rand.New(rand.NewSource(11))
	for _, sh := range parityShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		sparsify(rng, a, 0.2)
		got := MatMul(New(m, n), a, b)
		want := MatMulNaive(New(m, n), a, b)
		if !Equal(got, want, 1e-12) {
			t.Fatalf("MatMul %dx%dx%d diverges from naive", m, k, n)
		}
	}
}

func TestMatMulATBParity(t *testing.T) {
	restore := maxWorkers
	maxWorkers = 4
	defer func() { maxWorkers = restore }()
	rng := rand.New(rand.NewSource(12))
	for _, sh := range parityShapes() {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k)
		b := randMat(rng, m, n)
		sparsify(rng, a, 0.2)
		// Accumulation: start both from the same nonzero dst.
		seed := randMat(rng, k, n)
		got := MatMulATB(seed.Clone(), a, b)
		want := MatMulATBNaive(seed.Clone(), a, b)
		if !Equal(got, want, 1e-12) {
			t.Fatalf("MatMulATB %dx%dx%d diverges from naive", m, k, n)
		}
	}
}

func TestMatMulABTParity(t *testing.T) {
	restore := maxWorkers
	maxWorkers = 4
	defer func() { maxWorkers = restore }()
	rng := rand.New(rand.NewSource(13))
	for _, sh := range parityShapes() {
		m, n, k := sh[0], sh[1], sh[2]
		a := randMat(rng, m, n)
		b := randMat(rng, k, n)
		seed := randMat(rng, m, k)
		got := MatMulABT(seed.Clone(), a, b)
		want := MatMulABTNaive(seed.Clone(), a, b)
		if !Equal(got, want, 1e-12) {
			t.Fatalf("MatMulABT %dx%dx%d diverges from naive", m, n, k)
		}
	}
}

// TestMatMulParallelConcurrent hammers the shared worker pool from many
// goroutines at once; run with -race to catch pool misuse.
func TestMatMulParallelConcurrent(t *testing.T) {
	restore := maxWorkers
	maxWorkers = 4
	defer func() { maxWorkers = restore }()
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 128, 300)
	b := randMat(rng, 300, 40)
	want := MatMulNaive(New(128, 40), a, b)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				got := MatMul(New(128, 40), a, b)
				if !Equal(got, want, 1e-12) {
					done <- errFailed
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errFailed = errParity{}

type errParity struct{}

func (errParity) Error() string { return "parallel MatMul diverged from naive" }

func TestArenaRecycles(t *testing.T) {
	a := NewArena()
	t1 := a.Alloc(4, 8)
	for i := range t1.Data {
		t1.Data[i] = 7
	}
	foot := a.Footprint()
	a.Reset()
	t2 := a.Alloc(4, 8)
	if &t2.Data[0] != &t1.Data[0] {
		t.Fatalf("arena did not recycle storage after Reset")
	}
	for _, v := range t2.Data {
		if v != 0 {
			t.Fatalf("Alloc after Reset returned dirty memory")
		}
	}
	if a.Footprint() != foot {
		t.Fatalf("Reset changed footprint: %d -> %d", foot, a.Footprint())
	}
}

func TestArenaLargeAndOddSizes(t *testing.T) {
	a := NewArenaSize(16)
	small := a.Alloc(2, 3)
	big := a.Alloc(10, 10) // exceeds chunk size: dedicated chunk
	if small.Len() != 6 || big.Len() != 100 {
		t.Fatalf("unexpected sizes")
	}
	big.Fill(3)
	small.Fill(1)
	if big.Data[0] != 3 || small.Data[0] != 1 {
		t.Fatalf("allocations overlap")
	}
	a.Reset()
	// Same sequence must reuse both chunks without growing.
	foot := a.Footprint()
	_ = a.Alloc(2, 3)
	_ = a.Alloc(10, 10)
	if a.Footprint() != foot {
		t.Fatalf("arena grew on identical second pass: %d -> %d", foot, a.Footprint())
	}
	// AllocNoZero hands back dirty memory by contract; just check bounds.
	raw := a.AllocNoZero(1, 4)
	if len(raw.Data) != 4 || cap(raw.Data) != 4 {
		t.Fatalf("AllocNoZero wrong shape: len %d cap %d", len(raw.Data), cap(raw.Data))
	}
}

func TestArenaZeroSize(t *testing.T) {
	a := NewArena()
	e := a.Alloc(0, 5)
	if e.Len() != 0 {
		t.Fatalf("zero-size alloc has data")
	}
	a.Reset()
}
