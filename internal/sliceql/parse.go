package sliceql

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The expression language evaluated against one telemetry event (a flat
// JSON object). Values are dynamically typed: number, string, bool,
// duration, or null (absent). Field references resolve in order:
//
//  1. the special name "age" → now minus the event's "ts" (a duration);
//  2. an exact key in the event ("latency_ms", "task.Intent", ...);
//  3. "tag.<k>" → the value of tag "k=v", or true for a bare tag "k";
//  4. a bare name falls back to the same tag lookup, so the Overton-style
//     slice `intent=billing AND age<1h` reads naturally.
//
// A bare word on the right-hand side of a comparison is a string literal
// (quotes are optional when the value has no spaces); numbers, 'quoted
// strings', true/false, and Go durations (500ms, 1h30m) are literals
// everywhere. Comparisons against null are false, so a predicate can
// never match an event that lacks the field.

// kind discriminates the dynamic value type.
type kind uint8

const (
	kNull kind = iota
	kNum
	kStr
	kBool
	kDur
)

// value is one dynamically typed scalar.
type value struct {
	k kind
	f float64
	s string
	b bool
	d time.Duration
}

var nullValue = value{k: kNull}

func numValue(f float64) value       { return value{k: kNum, f: f} }
func strValue(s string) value        { return value{k: kStr, s: s} }
func boolValue(b bool) value         { return value{k: kBool, b: b} }
func durValue(d time.Duration) value { return value{k: kDur, d: d} }

// fromAny converts a decoded JSON (or Flat map) scalar. Arrays and
// objects have no scalar value and resolve to null.
func fromAny(v any) value {
	switch x := v.(type) {
	case float64:
		return numValue(x)
	case int:
		return numValue(float64(x))
	case int64:
		return numValue(float64(x))
	case string:
		return strValue(x)
	case bool:
		return boolValue(x)
	default:
		return nullValue
	}
}

// num reports the value as a float64 where that conversion is faithful
// (numbers, numeric strings, durations as milliseconds).
func (v value) num() (float64, bool) {
	switch v.k {
	case kNum:
		return v.f, true
	case kDur:
		return float64(v.d) / float64(time.Millisecond), true
	case kStr:
		f, err := strconv.ParseFloat(v.s, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// truthy is the bare-field predicate: `WHERE vip` matches events whose
// "vip" resolves to a non-null, non-false, non-zero, non-empty value.
func (v value) truthy() bool {
	switch v.k {
	case kNull:
		return false
	case kBool:
		return v.b
	case kNum:
		return v.f != 0
	case kDur:
		return v.d != 0
	case kStr:
		return v.s != "" && !strings.EqualFold(v.s, "false")
	}
	return false
}

// display renders the value for an output row.
func (v value) display() any {
	switch v.k {
	case kNum:
		return v.f
	case kStr:
		return v.s
	case kBool:
		return v.b
	case kDur:
		return v.d.String()
	default:
		return nil
	}
}

// row is one event plus the query clock ("age" needs now).
type row struct {
	m   map[string]any
	now time.Time
}

// eventTime extracts the event's "ts" (unix milliseconds).
func (r row) eventTime() (time.Time, bool) {
	ts, ok := fromAny(r.m["ts"]).num()
	if !ok {
		return time.Time{}, false
	}
	return time.UnixMilli(int64(ts)), true
}

// tagLookup resolves name against the event's "tags" array: "k=v"
// entries yield the string v, a bare entry equal to name yields true,
// absence yields null.
func tagLookup(m map[string]any, name string) value {
	raw, ok := m["tags"]
	if !ok {
		return nullValue
	}
	check := func(tag string) (value, bool) {
		if tag == name {
			return boolValue(true), true
		}
		if k, v, found := strings.Cut(tag, "="); found && k == name {
			return strValue(v), true
		}
		return nullValue, false
	}
	switch tags := raw.(type) {
	case []string:
		for _, t := range tags {
			if v, ok := check(t); ok {
				return v
			}
		}
	case []any:
		for _, t := range tags {
			if s, ok := t.(string); ok {
				if v, ok := check(s); ok {
					return v
				}
			}
		}
	}
	return nullValue
}

// resolveField implements the resolution order documented at the top of
// this file.
func resolveField(r row, name string) value {
	if name == "age" {
		t, ok := r.eventTime()
		if !ok {
			return nullValue
		}
		return durValue(r.now.Sub(t))
	}
	if v, ok := r.m[name]; ok {
		return fromAny(v)
	}
	if rest, ok := strings.CutPrefix(name, "tag."); ok {
		return tagLookup(r.m, rest)
	}
	return tagLookup(r.m, name)
}

// compare applies one comparison operator with the cross-type coercions
// the doc comment promises: null never matches; number-vs-string parses
// the string; duration-vs-number compares milliseconds.
func compare(op string, a, b value) bool {
	if a.k == kNull || b.k == kNull {
		return false
	}
	// Same-kind string and bool comparisons keep their native semantics.
	if a.k == kStr && b.k == kStr {
		return cmpOrdered(op, strings.Compare(a.s, b.s))
	}
	if a.k == kBool || b.k == kBool {
		ab, aok := asBool(a)
		bb, bok := asBool(b)
		if !aok || !bok {
			return false
		}
		switch op {
		case "=":
			return ab == bb
		case "!=":
			return ab != bb
		}
		return false
	}
	af, aok := a.num()
	bf, bok := b.num()
	if !aok || !bok {
		return false
	}
	switch {
	case af < bf:
		return cmpOrdered(op, -1)
	case af > bf:
		return cmpOrdered(op, 1)
	default:
		return cmpOrdered(op, 0)
	}
}

func asBool(v value) (bool, bool) {
	switch v.k {
	case kBool:
		return v.b, true
	case kStr:
		if strings.EqualFold(v.s, "true") {
			return true, true
		}
		if strings.EqualFold(v.s, "false") {
			return false, true
		}
	case kNum:
		return v.f != 0, true
	}
	return false, false
}

func cmpOrdered(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// --- AST ---

// expr is a boolean predicate node.
type expr interface {
	eval(r row) bool
}

type andExpr struct{ l, r expr }
type orExpr struct{ l, r expr }
type notExpr struct{ e expr }

func (e andExpr) eval(r row) bool { return e.l.eval(r) && e.r.eval(r) }
func (e orExpr) eval(r row) bool  { return e.l.eval(r) || e.r.eval(r) }
func (e notExpr) eval(r row) bool { return !e.e.eval(r) }

// operand is one side of a comparison: a field reference or a literal.
type operand struct {
	isField bool
	field   string
	lit     value
}

func (o operand) value(r row) value {
	if o.isField {
		return resolveField(r, o.field)
	}
	return o.lit
}

type cmpExpr struct {
	op   string
	l, r operand
}

func (e cmpExpr) eval(r row) bool { return compare(e.op, e.l.value(r), e.r.value(r)) }

// bareExpr is a lone operand used as a predicate (`WHERE vip`).
type bareExpr struct{ o operand }

func (e bareExpr) eval(r row) bool { return e.o.value(r).truthy() }

// --- lexer ---

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tDur
	tPunct
)

type token struct {
	k tokKind
	s string
	f float64
	d time.Duration
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentRune(c byte) bool {
	return isIdentStart(c) || c == '.' || c == '-' || (c >= '0' && c <= '9')
}

func lex(src string) ([]token, error) {
	l := lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
			l.toks = append(l.toks, token{k: tPunct, s: string(c)})
			l.pos++
		case c == '!' || c == '<' || c == '>':
			op := string(c)
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				op += "="
				l.pos++
			}
			if op == "!" {
				return nil, fmt.Errorf("sliceql: stray '!' at %d (use != or NOT)", l.pos-1)
			}
			l.toks = append(l.toks, token{k: tPunct, s: op})
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			if err := l.lexNumberOrDuration(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentRune(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{k: tIdent, s: l.src[start:l.pos]})
		default:
			return nil, fmt.Errorf("sliceql: unexpected %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{k: tEOF})
	return l.toks, nil
}

func (l *lexer) lexString(quote byte) error {
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			l.toks = append(l.toks, token{k: tStr, s: b.String()})
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return fmt.Errorf("sliceql: unterminated escape")
			}
			b.WriteByte(l.src[l.pos+1])
			l.pos += 2
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("sliceql: unterminated string")
}

// lexNumberOrDuration reads a run that starts with a digit: a float
// ("42", "1.5") or a Go duration ("500ms", "1h30m").
func (l *lexer) lexNumberOrDuration() error {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' || (c >= 'a' && c <= 'z') || c == 'µ' {
			l.pos++
			continue
		}
		break
	}
	word := l.src[start:l.pos]
	if f, err := strconv.ParseFloat(word, 64); err == nil {
		l.toks = append(l.toks, token{k: tNum, f: f, s: word})
		return nil
	}
	if d, err := time.ParseDuration(word); err == nil {
		l.toks = append(l.toks, token{k: tDur, d: d, s: word})
		return nil
	}
	return fmt.Errorf("sliceql: bad number or duration %q", word)
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.k != tEOF {
		p.pos++
	}
	return t
}

// keyword reports whether the next token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.k == tIdent && strings.EqualFold(t.s, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.k == tPunct && t.s == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdent(what string) (string, error) {
	t := p.next()
	if t.k != tIdent {
		return "", fmt.Errorf("sliceql: expected %s, got %q", what, t.s)
	}
	return t.s, nil
}

// reserved words that terminate an expression — a bare-field operand
// must not swallow them.
func isReserved(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "GROUP", "BY", "SINCE", "LIMIT", "AND", "OR", "NOT", "AS":
		return true
	}
	return false
}

// parseExpr: OR-level.
func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.keyword("NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}
	if p.punct("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.punct(")") {
			return nil, fmt.Errorf("sliceql: missing ')'")
		}
		return e, nil
	}
	return p.parseComparison()
}

// parseComparison: operand [op operand]. The left operand of a
// comparison is a field reference when it is a bare word; the right is a
// string literal when it is a bare word (so `intent=billing` needs no
// quotes).
func (p *parser) parseComparison() (expr, error) {
	l, err := p.parseOperand(true)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.k == tPunct {
		switch t.s {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseOperand(false)
			if err != nil {
				return nil, err
			}
			return cmpExpr{op: t.s, l: l, r: r}, nil
		}
	}
	return bareExpr{o: l}, nil
}

// parseOperand reads one comparison operand. asField controls how a bare
// word is read: field reference (left side) or string literal (right
// side). TRUE/FALSE are boolean literals on either side.
func (p *parser) parseOperand(asField bool) (operand, error) {
	t := p.next()
	switch t.k {
	case tNum:
		return operand{lit: numValue(t.f)}, nil
	case tDur:
		return operand{lit: durValue(t.d)}, nil
	case tStr:
		return operand{lit: strValue(t.s)}, nil
	case tIdent:
		switch strings.ToUpper(t.s) {
		case "TRUE":
			return operand{lit: boolValue(true)}, nil
		case "FALSE":
			return operand{lit: boolValue(false)}, nil
		}
		if isReserved(t.s) {
			return operand{}, fmt.Errorf("sliceql: unexpected keyword %q in expression", t.s)
		}
		if asField {
			return operand{isField: true, field: t.s}, nil
		}
		return operand{lit: strValue(t.s)}, nil
	}
	return operand{}, fmt.Errorf("sliceql: expected operand, got %q", t.s)
}

// Predicate is a compiled WHERE-style expression, the unit a slice
// definition attaches to events, stats windows, and promotion gates.
type Predicate struct {
	src string
	e   expr
}

// ParsePredicate compiles a bare boolean expression (the part after
// WHERE), e.g. `intent=billing AND age<1h`.
func ParsePredicate(src string) (*Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.k != tEOF {
		return nil, fmt.Errorf("sliceql: trailing input %q", t.s)
	}
	return &Predicate{src: src, e: e}, nil
}

// Match evaluates the predicate against one flat event; now anchors the
// special "age" field.
func (p *Predicate) Match(ev map[string]any, now time.Time) bool {
	return p.e.eval(row{m: ev, now: now})
}

// String returns the source expression the predicate was compiled from.
func (p *Predicate) String() string { return p.src }

// --- SELECT statement ---

// selKind discriminates SELECT-list items.
type selKind uint8

const (
	selStar selKind = iota
	selField
	selAgg
)

// selItem is one SELECT-list entry: `*`, a field, or an aggregate call.
type selItem struct {
	kind   selKind
	field  string  // field name, or aggregate argument
	fn     string  // COUNT, SUM, AVG, MIN, MAX, RATIO, PCT
	field2 string  // RATIO denominator
	pct    float64 // PCT quantile in [0,1]
	alias  string
}

// column names the output column: the AS alias or a canonical rendering.
func (it selItem) column() string {
	if it.alias != "" {
		return it.alias
	}
	switch it.kind {
	case selStar:
		return "event"
	case selField:
		return it.field
	}
	switch it.fn {
	case "COUNT":
		if it.field == "" {
			return "count"
		}
		return "count(" + it.field + ")"
	case "RATIO":
		return "ratio(" + it.field + "," + it.field2 + ")"
	case "PCT":
		return fmt.Sprintf("p%g(%s)", it.pct*100, it.field)
	default:
		return strings.ToLower(it.fn) + "(" + it.field + ")"
	}
}

// Query is one parsed sliceql statement:
//
//	SELECT <'*' | item[, item...]> FROM <stream>
//	  [WHERE <expr>] [GROUP BY f[, f...]] [SINCE <dur>] [LIMIT <n>]
//
// Items are fields or aggregates: COUNT(*), COUNT(f), SUM(f), AVG(f),
// MIN(f), MAX(f), P<nn>(f) (ceil nearest-rank percentile), and
// RATIO(a,b) = SUM(a)/SUM(b) — agreement is RATIO(agree,units). SINCE d
// is sugar for WHERE age <= d. Any aggregate in the list makes the whole
// query aggregating; plain fields are then only legal when they appear
// in GROUP BY.
type Query struct {
	Stream  string
	items   []selItem
	where   expr
	groupBy []string
	Since   time.Duration
	Limit   int
}

// Parse compiles one sliceql statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := parser{toks: toks}
	q := &Query{}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("sliceql: query must start with SELECT")
	}
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.items = append(q.items, it)
		if !p.punct(",") {
			break
		}
	}
	if !p.keyword("FROM") {
		return nil, fmt.Errorf("sliceql: expected FROM, got %q", p.peek().s)
	}
	if q.Stream, err = p.expectIdent("stream name"); err != nil {
		return nil, err
	}
	if p.keyword("WHERE") {
		if q.where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, fmt.Errorf("sliceql: GROUP must be followed by BY")
		}
		for {
			f, err := p.expectIdent("group field")
			if err != nil {
				return nil, err
			}
			q.groupBy = append(q.groupBy, f)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.keyword("SINCE") {
		t := p.next()
		if t.k != tDur {
			return nil, fmt.Errorf("sliceql: SINCE needs a duration, got %q", t.s)
		}
		q.Since = t.d
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.k != tNum || t.f < 0 || t.f != float64(int(t.f)) {
			return nil, fmt.Errorf("sliceql: LIMIT needs a non-negative integer, got %q", t.s)
		}
		q.Limit = int(t.f)
	}
	if t := p.peek(); t.k != tEOF {
		return nil, fmt.Errorf("sliceql: trailing input %q", t.s)
	}
	return q, q.check()
}

// parseSelectItem reads `*`, a field, or an aggregate call, each with an
// optional AS alias.
func (p *parser) parseSelectItem() (selItem, error) {
	if p.punct("*") {
		return selItem{kind: selStar}, nil
	}
	name, err := p.expectIdent("select item")
	if err != nil {
		return selItem{}, err
	}
	if isReserved(name) {
		return selItem{}, fmt.Errorf("sliceql: unexpected keyword %q in SELECT list", name)
	}
	it := selItem{kind: selField, field: name}
	if p.punct("(") {
		it, err = p.parseAggregate(name)
		if err != nil {
			return selItem{}, err
		}
	}
	if p.keyword("AS") {
		if it.alias, err = p.expectIdent("alias"); err != nil {
			return selItem{}, err
		}
	}
	return it, nil
}

// parseAggregate reads the argument list of fn( ... ).
func (p *parser) parseAggregate(fn string) (selItem, error) {
	it := selItem{kind: selAgg, fn: strings.ToUpper(fn)}
	switch it.fn {
	case "COUNT":
		if !p.punct("*") {
			f, err := p.expectIdent("COUNT argument")
			if err != nil {
				return selItem{}, err
			}
			it.field = f
		}
	case "SUM", "AVG", "MIN", "MAX":
		f, err := p.expectIdent(it.fn + " argument")
		if err != nil {
			return selItem{}, err
		}
		it.field = f
	case "RATIO":
		a, err := p.expectIdent("RATIO numerator")
		if err != nil {
			return selItem{}, err
		}
		if !p.punct(",") {
			return selItem{}, fmt.Errorf("sliceql: RATIO needs two arguments")
		}
		b, err := p.expectIdent("RATIO denominator")
		if err != nil {
			return selItem{}, err
		}
		it.field, it.field2 = a, b
	default:
		// P50, P95, P99.9 ... — quantile aggregates.
		if len(it.fn) > 1 && it.fn[0] == 'P' {
			q, err := strconv.ParseFloat(it.fn[1:], 64)
			if err == nil && q >= 0 && q <= 100 {
				f, ferr := p.expectIdent("percentile argument")
				if ferr != nil {
					return selItem{}, ferr
				}
				it.fn, it.pct, it.field = "PCT", q/100, f
				break
			}
		}
		return selItem{}, fmt.Errorf("sliceql: unknown aggregate %q", fn)
	}
	if !p.punct(")") {
		return selItem{}, fmt.Errorf("sliceql: missing ')' after %s", fn)
	}
	return it, nil
}

// check enforces the aggregate/projection split.
func (q *Query) check() error {
	agg := false
	for _, it := range q.items {
		if it.kind == selAgg {
			agg = true
		}
	}
	if !agg && len(q.groupBy) > 0 {
		return fmt.Errorf("sliceql: GROUP BY needs at least one aggregate in the SELECT list")
	}
	if agg {
		inGroup := map[string]bool{}
		for _, g := range q.groupBy {
			inGroup[g] = true
		}
		for _, it := range q.items {
			if it.kind == selStar {
				return fmt.Errorf("sliceql: '*' cannot be mixed with aggregates")
			}
			if it.kind == selField && !inGroup[it.field] {
				return fmt.Errorf("sliceql: field %q must appear in GROUP BY", it.field)
			}
		}
	}
	return nil
}
