// Package sliceql is the slice query engine over the telemetry plane: a
// small SQL dialect (SELECT / WHERE / GROUP BY / aggregates / SINCE /
// LIMIT) evaluated by streaming the rotated JSONL files the telemetry
// logger writes. It is what turns Overton-style *slices* — named
// predicates such as `intent=billing AND age<1h` — into queryable
// aggregates (agreement, error rate, latency percentiles) and, via
// deploy.Policy slice gates, into promotion holds.
//
// Two properties are load-bearing. First, per-line error isolation: a
// line that fails to decode (a torn tail left by a crash, a line being
// appended concurrently) is counted in Result.Malformed and skipped, so
// queries run safely against files under live write. Second, the engine
// holds only aggregate state (plus bounded percentile samples), so a
// query's memory cost is independent of how much telemetry is on disk.
//
// Entry points: Parse + Query.Run for programmatic use over any Source,
// QueryDir for the common directory case (POST /v1/query, `overton
// query`), and ParsePredicate + Window/ReportSlice for the in-memory
// live-slice windows embedded in /stats.
package sliceql

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Result is one query's output table plus scan accounting.
type Result struct {
	// Columns names the output columns, in SELECT-list order (group
	// fields keep their position).
	Columns []string `json:"columns"`
	// Rows are the output rows, aligned with Columns. Aggregate rows are
	// sorted by their group-by key columns.
	Rows [][]any `json:"rows"`
	// Scanned counts lines read; Matched counts lines that passed the
	// WHERE and SINCE filters; Malformed counts undecodable lines that
	// were isolated and skipped (torn tails, concurrent appends).
	Scanned   int64 `json:"scanned"`
	Matched   int64 `json:"matched"`
	Malformed int64 `json:"malformed,omitempty"`
	// Files counts stream files scanned.
	Files int `json:"files"`
	// Limited reports that LIMIT truncated the output.
	Limited bool `json:"limited,omitempty"`
}

// Source feeds raw JSONL lines of one stream to the engine, oldest
// first. fn returning an error stops the scan and propagates it.
type Source interface {
	Scan(stream string, fn func(line []byte) error) (files int, err error)
}

// DirSource scans a telemetry directory written by telemetry.Logger:
// every live file of the stream, in rotation order.
type DirSource struct {
	// Dir is the telemetry directory.
	Dir string
}

// Scan streams every line of the stream's rotated files to fn.
// Gzip-compressed segments (the telemetry logger's Compress option) are
// decompressed transparently.
func (s DirSource) Scan(stream string, fn func(line []byte) error) (int, error) {
	names, err := telemetry.StreamFiles(s.Dir, stream)
	if err != nil {
		return 0, err
	}
	for i, name := range names {
		missing, err := scanFile(filepath.Join(s.Dir, name), fn)
		if missing {
			continue // rotated away between listing and open
		}
		if err != nil {
			if errors.Is(err, errLimit) {
				return i + 1, err
			}
			return i + 1, fmt.Errorf("sliceql: %s: %w", name, err)
		}
	}
	return len(names), nil
}

// scanFile streams one segment's lines to fn, decompressing .gz names.
func scanFile(path string, fn func(line []byte) error) (missing bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return true, nil
		}
		return false, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return false, err
		}
		defer zr.Close()
		r = zr
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if err := fn(sc.Bytes()); err != nil {
			return false, err
		}
	}
	return false, sc.Err()
}

// errLimit stops a projection scan once LIMIT rows are collected.
var errLimit = errors.New("sliceql: limit reached")

// defaultProjectionLimit bounds `SELECT *`-style queries that name no
// LIMIT, keeping responses finite over large telemetry directories.
const defaultProjectionLimit = 1000

// QueryDir parses and runs one statement against a telemetry directory.
// now anchors SINCE and the "age" field (pass time.Now() outside tests).
func QueryDir(dir, statement string, now time.Time) (*Result, error) {
	q, err := Parse(statement)
	if err != nil {
		return nil, err
	}
	return q.Run(DirSource{Dir: dir}, now)
}

// Run executes the query against a source. Malformed lines are isolated
// and counted, never fatal.
func (q *Query) Run(src Source, now time.Time) (*Result, error) {
	ex := newExec(q, now)
	files, err := src.Scan(q.Stream, ex.line)
	if err != nil && !errors.Is(err, errLimit) {
		return nil, err
	}
	res := ex.finish()
	res.Files = files
	return res, nil
}

// exec is the per-run engine state.
type exec struct {
	q   *Query
	now time.Time
	res *Result

	aggregate bool
	groups    map[string]*group
	order     []string
}

// group is one GROUP BY bucket's accumulators.
type group struct {
	keys []value
	aggs []*accum
}

func newExec(q *Query, now time.Time) *exec {
	ex := &exec{q: q, now: now, res: &Result{}, groups: map[string]*group{}}
	for _, it := range q.items {
		ex.res.Columns = append(ex.res.Columns, it.column())
		if it.kind == selAgg {
			ex.aggregate = true
		}
	}
	return ex
}

// line processes one raw JSONL line: decode (isolating failures),
// filter, then aggregate or project.
func (ex *exec) line(raw []byte) error {
	ex.res.Scanned++
	if len(raw) == 0 {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		ex.res.Malformed++
		return nil
	}
	r := row{m: m, now: ex.now}
	if ex.q.Since > 0 {
		t, ok := r.eventTime()
		if !ok || ex.now.Sub(t) > ex.q.Since {
			return nil
		}
	}
	if ex.q.where != nil && !ex.q.where.eval(r) {
		return nil
	}
	ex.res.Matched++
	if ex.aggregate {
		ex.observe(r)
		return nil
	}
	return ex.project(r)
}

// project emits one raw row for a non-aggregating query.
func (ex *exec) project(r row) error {
	limit := ex.q.Limit
	if limit == 0 {
		limit = defaultProjectionLimit
	}
	out := make([]any, len(ex.q.items))
	for i, it := range ex.q.items {
		if it.kind == selStar {
			out[i] = r.m
		} else {
			out[i] = resolveField(r, it.field).display()
		}
	}
	ex.res.Rows = append(ex.res.Rows, out)
	if len(ex.res.Rows) >= limit {
		ex.res.Limited = true
		return errLimit
	}
	return nil
}

// observe routes one matching row into its group's accumulators.
func (ex *exec) observe(r row) {
	keys := make([]value, len(ex.q.groupBy))
	var kb []byte
	for i, f := range ex.q.groupBy {
		keys[i] = resolveField(r, f)
		kb = append(kb, fmt.Sprintf("%v\x00", keys[i].display())...)
	}
	g, ok := ex.groups[string(kb)]
	if !ok {
		g = &group{keys: keys}
		for _, it := range ex.q.items {
			g.aggs = append(g.aggs, newAccum(it))
		}
		ex.groups[string(kb)] = g
		ex.order = append(ex.order, string(kb))
	}
	for _, a := range g.aggs {
		a.observe(r)
	}
}

// finish materialises the result table (sorting aggregate rows by their
// group keys) and applies LIMIT to aggregate output.
func (ex *exec) finish() *Result {
	if !ex.aggregate {
		return ex.res
	}
	if len(ex.q.groupBy) == 0 && len(ex.groups) == 0 {
		// Global aggregate over an empty match set still yields one row.
		g := &group{}
		for _, it := range ex.q.items {
			g.aggs = append(g.aggs, newAccum(it))
		}
		ex.groups[""] = g
		ex.order = append(ex.order, "")
	}
	keys := ex.order
	sort.Slice(keys, func(i, j int) bool {
		return groupLess(ex.groups[keys[i]].keys, ex.groups[keys[j]].keys)
	})
	for _, k := range keys {
		g := ex.groups[k]
		out := make([]any, len(ex.q.items))
		gi := map[string]int{}
		for i, f := range ex.q.groupBy {
			gi[f] = i
		}
		for i, it := range ex.q.items {
			if it.kind == selField {
				out[i] = g.keys[gi[it.field]].display()
			} else {
				out[i] = g.aggs[i].result()
			}
		}
		ex.res.Rows = append(ex.res.Rows, out)
		if ex.q.Limit > 0 && len(ex.res.Rows) >= ex.q.Limit && len(keys) > len(ex.res.Rows) {
			ex.res.Limited = true
			break
		}
	}
	return ex.res
}

// groupLess orders group keys column by column, numerically when both
// sides are numeric, lexicographically otherwise.
func groupLess(a, b []value) bool {
	for i := range a {
		af, aok := a[i].num()
		bf, bok := b[i].num()
		if aok && bok && a[i].k == kNum && b[i].k == kNum {
			if af != bf {
				return af < bf
			}
			continue
		}
		as, bs := fmt.Sprintf("%v", a[i].display()), fmt.Sprintf("%v", b[i].display())
		if as != bs {
			return as < bs
		}
	}
	return false
}

// maxPercentileSamples bounds the memory one P<nn> aggregate holds; past
// it new samples are dropped (the result is then approximate over the
// first N matches, which keeps query memory finite by design).
const maxPercentileSamples = 1 << 17

// accum is one aggregate's running state.
type accum struct {
	it      selItem
	n       float64
	sum     float64
	sum2    float64 // RATIO denominator
	min     float64
	max     float64
	samples []float64
}

func newAccum(it selItem) *accum {
	return &accum{it: it, min: math.Inf(1), max: math.Inf(-1)}
}

func (a *accum) observe(r row) {
	switch a.it.fn {
	case "COUNT":
		if a.it.field == "" || resolveField(r, a.it.field).k != kNull {
			a.n++
		}
	case "RATIO":
		if f, ok := resolveField(r, a.it.field).num(); ok {
			a.sum += f
		}
		if f, ok := resolveField(r, a.it.field2).num(); ok {
			a.sum2 += f
		}
	default:
		f, ok := resolveField(r, a.it.field).num()
		if !ok {
			return
		}
		a.n++
		a.sum += f
		if f < a.min {
			a.min = f
		}
		if f > a.max {
			a.max = f
		}
		if a.it.fn == "PCT" && len(a.samples) < maxPercentileSamples {
			a.samples = append(a.samples, f)
		}
	}
}

func (a *accum) result() any {
	switch a.it.fn {
	case "COUNT":
		return a.n
	case "SUM":
		return a.sum
	case "AVG":
		if a.n == 0 {
			return nil
		}
		return a.sum / a.n
	case "MIN":
		if a.n == 0 {
			return nil
		}
		return a.min
	case "MAX":
		if a.n == 0 {
			return nil
		}
		return a.max
	case "RATIO":
		if a.sum2 == 0 {
			return nil
		}
		return a.sum / a.sum2
	case "PCT":
		if len(a.samples) == 0 {
			return nil
		}
		sort.Float64s(a.samples)
		return Percentile(a.samples, a.it.pct)
	}
	return nil
}

// Percentile is the ceil-based nearest-rank quantile over a sorted,
// non-empty sample set: the smallest sample such that at least p of the
// set is at or below it. Matches the serving-plane latency percentiles.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
