package sliceql

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SliceDef is one declarative slice: a name and a predicate over
// telemetry events, e.g. {Name: "billing", Expr: "intent=billing AND
// age<1h"}. Slices are attached to a deployment, aggregated live into
// /stats, and referenced by name from deploy.Policy slice gates.
type SliceDef struct {
	Name string `json:"name"`
	Expr string `json:"expr"`
}

// Slice is a compiled SliceDef.
type Slice struct {
	// Name is the slice's reference name.
	Name string
	// Pred is the compiled predicate.
	Pred *Predicate
}

// CompileSlice compiles one definition.
func CompileSlice(def SliceDef) (*Slice, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("sliceql: slice needs a name")
	}
	p, err := ParsePredicate(def.Expr)
	if err != nil {
		return nil, fmt.Errorf("sliceql: slice %q: %w", def.Name, err)
	}
	return &Slice{Name: def.Name, Pred: p}, nil
}

// CompileSlices compiles a definition list, rejecting duplicate names.
func CompileSlices(defs []SliceDef) ([]*Slice, error) {
	seen := map[string]bool{}
	out := make([]*Slice, 0, len(defs))
	for _, def := range defs {
		if seen[def.Name] {
			return nil, fmt.Errorf("sliceql: duplicate slice %q", def.Name)
		}
		seen[def.Name] = true
		s, err := CompileSlice(def)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Window is a bounded in-memory ring of recent flat telemetry events —
// the live half of the slice plane. The serving path Observes the same
// events it emits to the telemetry logger; Report aggregates a slice
// over the retained window without touching disk, which is what /stats
// and the promotion-gate evaluation read. Overwrite-oldest: the window
// is a recency bound, not a durability promise (the JSONL streams are).
type Window struct {
	mu  sync.Mutex
	buf []map[string]any
	pos int
	n   int
}

// DefaultWindowEvents is the default Window capacity.
const DefaultWindowEvents = 8192

// NewWindow returns a window retaining up to capacity events
// (DefaultWindowEvents when capacity <= 0).
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = DefaultWindowEvents
	}
	return &Window{buf: make([]map[string]any, capacity)}
}

// Observe appends one flat event, evicting the oldest when full.
func (w *Window) Observe(ev map[string]any) {
	w.mu.Lock()
	w.buf[w.pos] = ev
	w.pos = (w.pos + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Snapshot copies the retained events, oldest first.
func (w *Window) Snapshot() []map[string]any {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]map[string]any, 0, w.n)
	start := w.pos - w.n
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// Len reports how many events the window retains right now.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// SliceReport is one slice's live aggregates over a window: serving
// health from "predict" events and shadow agreement from "shadow"
// events, the numbers a slice gate judges.
type SliceReport struct {
	// Expr echoes the slice predicate.
	Expr string `json:"expr"`
	// Matched counts window events the predicate selected (any stream).
	Matched int64 `json:"matched"`
	// Predicts / Errors / ErrorRate cover the slice's served traffic.
	Predicts  int64   `json:"predicts"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// P50Millis / P95Millis are ceil nearest-rank latency percentiles
	// over the slice's served requests.
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	// Mirrored counts shadow comparison units attributed to the slice;
	// Agreement = AgreeUnits/Units. MissingUnits are units charged for
	// tasks the shadow failed to emit (full disagreement).
	Units        float64 `json:"units"`
	AgreeUnits   float64 `json:"agree_units"`
	Agreement    float64 `json:"agreement"`
	MissingUnits float64 `json:"missing_units,omitempty"`
	// ShadowErrors counts mirrored requests the shadow failed outright.
	ShadowErrors int64 `json:"shadow_errors,omitempty"`
}

// ReportSlice aggregates one slice over a set of flat events (as
// returned by Window.Snapshot). now anchors "age" in the predicate.
// shadowFilter, when non-nil, further restricts which shadow events are
// credited — the gate evaluation uses it to count only the current
// shadow version's comparisons.
func ReportSlice(events []map[string]any, s *Slice, now time.Time, shadowFilter func(map[string]any) bool) SliceReport {
	rep := SliceReport{Expr: s.Pred.String()}
	var lat []float64
	for _, ev := range events {
		if ev == nil || !s.Pred.Match(ev, now) {
			continue
		}
		rep.Matched++
		r := row{m: ev, now: now}
		switch stream, _ := ev["stream"].(string); stream {
		case "predict":
			rep.Predicts++
			if f, ok := resolveField(r, "err").num(); ok && f != 0 {
				rep.Errors++
			}
			if f, ok := resolveField(r, "latency_ms").num(); ok {
				lat = append(lat, f)
			}
		case "shadow":
			if shadowFilter != nil && !shadowFilter(ev) {
				continue
			}
			if f, ok := resolveField(r, "err").num(); ok && f != 0 {
				rep.ShadowErrors++
				continue
			}
			units, _ := resolveField(r, "units").num()
			agree, _ := resolveField(r, "agree").num()
			missing, _ := resolveField(r, "missing").num()
			rep.Units += units
			rep.AgreeUnits += agree
			rep.MissingUnits += missing
		}
	}
	if rep.Predicts > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Predicts)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		rep.P50Millis = Percentile(lat, 0.50)
		rep.P95Millis = Percentile(lat, 0.95)
	}
	if rep.Units > 0 {
		rep.Agreement = rep.AgreeUnits / rep.Units
	}
	return rep
}
