package sliceql

import (
	"reflect"
	"testing"
	"time"
)

// testNow anchors SINCE and "age" for the golden testdata: the newest
// predict event is 10 minutes old, the oldest 90 minutes.
var testNow = time.UnixMilli(1_700_007_200_000)

const testDir = "testdata/telemetry"

// TestQueryGolden runs statements against the checked-in telemetry
// directory (two rotated predict files — one holding a malformed line
// and a torn tail — plus a shadow file) and pins the full results.
func TestQueryGolden(t *testing.T) {
	cases := []struct {
		name string
		q    string
		cols []string
		rows [][]any
		// scanned/matched/malformed pin the scan accounting.
		scanned, matched, malformed int64
		limited                     bool
	}{
		{
			name:    "count all",
			q:       "SELECT COUNT(*) FROM predict",
			cols:    []string{"count"},
			rows:    [][]any{{5.0}},
			scanned: 7, matched: 5, malformed: 2,
		},
		{
			name:    "tag predicate with aggregates",
			q:       "SELECT COUNT(*), AVG(latency_ms), P95(latency_ms) FROM predict WHERE intent=billing",
			cols:    []string{"count", "avg(latency_ms)", "p95(latency_ms)"},
			rows:    [][]any{{4.0, 32.5, 50.0}},
			scanned: 7, matched: 4, malformed: 2,
		},
		{
			name:    "group by dep",
			q:       "SELECT dep, COUNT(*), MAX(latency_ms) FROM predict GROUP BY dep",
			cols:    []string{"dep", "count", "max(latency_ms)"},
			rows:    [][]any{{"factoid", 4.0, 50.0}, {"qa", 1.0, 30.0}},
			scanned: 7, matched: 5, malformed: 2,
		},
		{
			name:    "since window",
			q:       "SELECT COUNT(*) FROM predict SINCE 1h",
			cols:    []string{"count"},
			rows:    [][]any{{2.0}},
			scanned: 7, matched: 2, malformed: 2,
		},
		{
			name:    "age predicate equals since",
			q:       "SELECT COUNT(*) FROM predict WHERE age <= 1h",
			cols:    []string{"count"},
			rows:    [][]any{{2.0}},
			scanned: 7, matched: 2, malformed: 2,
		},
		{
			name:    "agreement ratio on a slice",
			q:       "SELECT RATIO(agree,units) AS agreement FROM shadow WHERE intent=billing AND err=0",
			cols:    []string{"agreement"},
			rows:    [][]any{{0.75}},
			scanned: 3, matched: 1,
		},
		{
			name: "projection with limit",
			q:    "SELECT latency_ms FROM predict WHERE vip LIMIT 1",
			cols: []string{"latency_ms"},
			rows: [][]any{{30.0}},
			// LIMIT stops the scan inside file 1, before the malformed
			// lines in file 2 are ever read.
			scanned: 3, matched: 1, malformed: 0,
			limited: true,
		},
		{
			name:    "not and grouping parens",
			q:       "SELECT COUNT(*) FROM predict WHERE NOT (intent=billing)",
			cols:    []string{"count"},
			rows:    [][]any{{1.0}},
			scanned: 7, matched: 1, malformed: 2,
		},
		{
			name:    "error rate ratio",
			q:       "SELECT RATIO(err,one) FROM predict WHERE intent=billing",
			cols:    []string{"ratio(err,one)"},
			rows:    [][]any{{nil}}, // no "one" field: denominator 0 -> null
			scanned: 7, matched: 4, malformed: 2,
		},
		{
			name:    "empty match still yields one aggregate row",
			q:       "SELECT COUNT(*), AVG(latency_ms) FROM predict WHERE intent=nope",
			cols:    []string{"count", "avg(latency_ms)"},
			rows:    [][]any{{0.0, nil}},
			scanned: 7, matched: 0, malformed: 2,
		},
		{
			name:    "missing stream scans nothing",
			q:       "SELECT COUNT(*) FROM nosuch",
			cols:    []string{"count"},
			rows:    [][]any{{0.0}},
			scanned: 0, matched: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := QueryDir(testDir, tc.q, testNow)
			if err != nil {
				t.Fatalf("QueryDir(%q): %v", tc.q, err)
			}
			if !reflect.DeepEqual(res.Columns, tc.cols) {
				t.Errorf("columns = %v, want %v", res.Columns, tc.cols)
			}
			if !reflect.DeepEqual(res.Rows, tc.rows) {
				t.Errorf("rows = %v, want %v", res.Rows, tc.rows)
			}
			if res.Scanned != tc.scanned || res.Matched != tc.matched || res.Malformed != tc.malformed {
				t.Errorf("scan accounting = (%d,%d,%d), want (%d,%d,%d)",
					res.Scanned, res.Matched, res.Malformed, tc.scanned, tc.matched, tc.malformed)
			}
			if res.Limited != tc.limited {
				t.Errorf("limited = %v, want %v", res.Limited, tc.limited)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"COUNT(*) FROM predict",
		"SELECT COUNT(*)",
		"SELECT dep FROM predict GROUP BY dep",           // GROUP BY without aggregate
		"SELECT dep, COUNT(*) FROM predict",              // plain field not in GROUP BY
		"SELECT *, COUNT(*) FROM predict",                // * mixed with aggregates
		"SELECT FROB(x) FROM predict",                    // unknown aggregate
		"SELECT COUNT(*) FROM predict WHERE a ! b",       // stray '!'
		"SELECT COUNT(*) FROM predict WHERE a = 'open",   // unterminated string
		"SELECT COUNT(*) FROM predict SINCE 12",          // SINCE wants a duration
		"SELECT COUNT(*) FROM predict LIMIT 1.5",         // fractional LIMIT
		"SELECT COUNT(*) FROM predict trailing",          // trailing input
		"SELECT RATIO(a) FROM predict",                   // RATIO arity
		"SELECT COUNT(*) FROM predict WHERE (a=1 OR b=2", // missing ')'
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) = nil error, want failure", q)
		}
	}
}

func TestPredicateSemantics(t *testing.T) {
	now := time.UnixMilli(3_600_000) // 1h after epoch
	ev := map[string]any{
		"ts":         int64(3_000_000), // 10m old
		"stream":     "predict",
		"dep":        "factoid",
		"tags":       []string{"intent=billing", "vip"},
		"latency_ms": 42.0,
		"err":        0,
		"task.Kind":  "faq",
	}
	cases := []struct {
		expr string
		want bool
	}{
		{"intent=billing", true},
		{"intent=support", false},
		{"tag.intent=billing", true},
		{"vip", true},          // bare tag -> true
		{"tag.vip=TRUE", true}, // explicit bool compare
		{"halo", false},        // absent tag
		{"latency_ms>40", true},
		{"latency_ms>=42", true},
		{"latency_ms<42", false},
		{"latency_ms!=42", false},
		{"err=0", true},
		{"missing_field=0", false}, // null never matches
		{"missing_field!=0", false},
		{"age<1h", true},
		{"age<5m", false},
		{"age>=10m", true},
		{"task.Kind=faq", true},
		{"dep='factoid'", true},
		{"intent=billing AND vip", true},
		{"intent=support OR vip", true},
		{"NOT vip", false},
		{"intent=billing AND NOT (err=1 OR latency_ms>100)", true},
	}
	for _, tc := range cases {
		p, err := ParsePredicate(tc.expr)
		if err != nil {
			t.Fatalf("ParsePredicate(%q): %v", tc.expr, err)
		}
		if got := p.Match(ev, now); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.expr, got, tc.want)
		}
		if p.String() != tc.expr {
			t.Errorf("String() = %q, want %q", p.String(), tc.expr)
		}
	}
}

func TestPercentileCeilNearestRank(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p0", []float64{7.5}, 0, 7.5},
		{"single p50", []float64{7.5}, 0.5, 7.5},
		{"single p100", []float64{7.5}, 1, 7.5},
		{"two p50 is first", []float64{1, 2}, 0.5, 1},
		{"two p51 is second", []float64{1, 2}, 0.51, 2},
		{"ten p50", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.5, 5},
		{"ten p90", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9},
		{"ten p95 rounds up", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.95, 10},
		{"ten p99", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"ten p100", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1, 10},
	}
	for _, tc := range cases {
		if got := Percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(p=%g) = %g, want %g", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestCompileSlices(t *testing.T) {
	defs := []SliceDef{
		{Name: "billing", Expr: "intent=billing"},
		{Name: "slow", Expr: "latency_ms>100"},
	}
	slices, err := CompileSlices(defs)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 2 || slices[0].Name != "billing" {
		t.Fatalf("compiled = %+v", slices)
	}
	if _, err := CompileSlices([]SliceDef{{Name: "a", Expr: "x=1"}, {Name: "a", Expr: "y=2"}}); err == nil {
		t.Error("duplicate slice name accepted")
	}
	if _, err := CompileSlices([]SliceDef{{Name: "", Expr: "x=1"}}); err == nil {
		t.Error("unnamed slice accepted")
	}
	if _, err := CompileSlices([]SliceDef{{Name: "bad", Expr: "x ="}}); err == nil {
		t.Error("unparseable slice accepted")
	}
}

func TestWindowOverwritesOldest(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 6; i++ {
		w.Observe(map[string]any{"i": i})
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	snap := w.Snapshot()
	for j, ev := range snap {
		if want := j + 2; ev["i"] != want {
			t.Errorf("snapshot[%d] = %v, want i=%d (oldest-first, oldest two evicted)", j, ev, want)
		}
	}
}

func TestReportSlice(t *testing.T) {
	now := time.UnixMilli(1_000_000)
	mk := func(stream string, extra map[string]any) map[string]any {
		m := map[string]any{"ts": int64(900_000), "stream": stream, "tags": []string{"intent=billing"}}
		for k, v := range extra {
			m[k] = v
		}
		return m
	}
	events := []map[string]any{
		mk("predict", map[string]any{"latency_ms": 10.0, "err": 0}),
		mk("predict", map[string]any{"latency_ms": 30.0, "err": 1}),
		nil, // unfilled window slot
		{"ts": int64(900_000), "stream": "predict", "tags": []string{"intent=support"}, "latency_ms": 99.0, "err": 0},
		mk("shadow", map[string]any{"agree": 3.0, "units": 4.0, "missing": 0.0, "err": 0, "shadow_version": 2}),
		mk("shadow", map[string]any{"agree": 0.0, "units": 2.0, "missing": 2.0, "err": 0, "shadow_version": 2}),
		mk("shadow", map[string]any{"agree": 5.0, "units": 5.0, "missing": 0.0, "err": 0, "shadow_version": 1}), // stale shadow
		mk("shadow", map[string]any{"err": 1, "shadow_version": 2}),
	}
	s, err := CompileSlice(SliceDef{Name: "billing", Expr: "intent=billing"})
	if err != nil {
		t.Fatal(err)
	}
	currentShadow := func(ev map[string]any) bool {
		v, _ := ev["shadow_version"].(int)
		return v == 2
	}
	rep := ReportSlice(events, s, now, currentShadow)
	if rep.Predicts != 2 || rep.Errors != 1 || rep.ErrorRate != 0.5 {
		t.Errorf("predict side = %+v", rep)
	}
	if rep.P50Millis != 10 || rep.P95Millis != 30 {
		t.Errorf("latency percentiles = p50 %g p95 %g", rep.P50Millis, rep.P95Millis)
	}
	if rep.Units != 6 || rep.AgreeUnits != 3 || rep.Agreement != 0.5 {
		t.Errorf("agreement side = %+v", rep)
	}
	if rep.MissingUnits != 2 || rep.ShadowErrors != 1 {
		t.Errorf("missing/shadow errors = %+v", rep)
	}
	// Without a filter the stale shadow's perfect agreement would inflate
	// the rate — pin that the filter is what excluded it.
	unfiltered := ReportSlice(events, s, now, nil)
	if unfiltered.Units != 11 || unfiltered.AgreeUnits != 8 {
		t.Errorf("unfiltered = %+v", unfiltered)
	}
}
