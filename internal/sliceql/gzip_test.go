package sliceql

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestQueryScansCompressedSegments drives the real pipeline: a
// telemetry logger with Compress rotates gzip segments, and a query
// over the directory must see every event — compressed history and the
// plain active segment alike.
func TestQueryScansCompressedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := telemetry.New(dir, telemetry.Options{RotateBytes: 200, MaxFiles: 64, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		l.Emit(telemetry.Event{
			Stream: "predict",
			Dep:    "factoid",
			Tags:   []string{"intent=billing"},
			Fields: map[string]any{"latency_ms": float64(i), "pad": strings.Repeat("x", 40)},
		})
	}
	l.Close()

	files, err := telemetry.StreamFiles(dir, "predict")
	if err != nil {
		t.Fatal(err)
	}
	gz := 0
	for _, name := range files {
		if strings.HasSuffix(name, ".gz") {
			gz++
		}
	}
	if gz == 0 {
		t.Fatalf("no compressed segment produced, files %v", files)
	}

	res, err := QueryDir(dir, "SELECT COUNT(*), MAX(latency_ms) FROM predict WHERE intent=billing", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 30.0 || res.Rows[0][1] != 29.0 {
		t.Fatalf("rows %v, want one row counting all 30 events across gz and plain segments", res.Rows)
	}
	if res.Files != len(files) {
		t.Fatalf("scanned %d files, want %d", res.Files, len(files))
	}
}
