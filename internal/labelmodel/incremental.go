package labelmodel

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/record"
	"repro/internal/schema"
)

// Incremental accumulates label-model sufficient statistics over a stream of
// weakly-labelled records, so a deployment's continuous-improvement loop can
// fold each drained ingest batch in O(batch) and refresh probabilistic
// labels without recombining from scratch.
//
// The key fact it exploits: the accuracy and majority estimators depend on
// the data only through the multiset of per-unit vote patterns (which
// sources voted, and what). Update deduplicates each unit's pattern into a
// counted store; Snapshot runs weighted EM over the unique patterns — in
// exact arithmetic the same iterates as full EM over every unit ever seen —
// and Snapshot.Targets replays one E-step with the converged parameters to
// emit TaskTargets for any record window. Fed the same records, the result
// matches Combine to float-rounding (pinned at 1e-6 by the parity tests).
//
// DawidSkene is not supported incrementally: its sufficient statistics are
// per-(source, true-class, vote) expected counts, which depend on the
// posteriors of every item and cannot be folded batch-by-batch.
//
// Safe for concurrent use.
type Incremental struct {
	sch *schema.Schema
	cfg CombineConfig

	mu      sync.Mutex
	tasks   map[string]*incTask
	records int64
}

// incTask is one task's accumulator: a single pattern store for multiclass
// and select tasks, one binary store per class for bitvector tasks.
type incTask struct {
	t      *schema.Task
	gran   schema.Granularity
	stores []*patternStore
}

// pvote is one (source column, vote) pair of a sparse pattern.
type pvote struct {
	src, vote int
}

// pattern is one unique vote pattern and how many units carried it.
type pattern struct {
	n     int // select: candidate count; 0 for other task types
	votes []pvote
	count float64
}

// patternStore deduplicates unit vote patterns. Source columns are assigned
// in discovery order (the stream decides); Snapshot re-sorts by name so the
// EM run is deterministic regardless of arrival order.
type patternStore struct {
	k        int // class count (2 for bitvector bits; 0 for select)
	srcIdx   map[string]int
	srcs     []string
	index    map[string]int
	pats     []pattern
	units    float64   // every unit seen, voted-on or not (coverage denominator)
	srcVotes []float64 // per-column voted-unit counts
}

func newPatternStore(k int) *patternStore {
	return &patternStore{k: k, srcIdx: map[string]int{}, index: map[string]int{}}
}

func (ps *patternStore) col(source string) int {
	if i, ok := ps.srcIdx[source]; ok {
		return i
	}
	i := len(ps.srcs)
	ps.srcIdx[source] = i
	ps.srcs = append(ps.srcs, source)
	ps.srcVotes = append(ps.srcVotes, 0)
	return i
}

// add folds one unit's sparse votes (sorted by column) into the store.
// All-abstain units are stored too: they carry prior mass in EM exactly like
// the abstain rows of a full vote matrix.
func (ps *patternStore) add(n int, votes []pvote) {
	ps.units++
	for _, v := range votes {
		ps.srcVotes[v.src]++
	}
	key := make([]byte, 0, 8+8*len(votes))
	key = strconv.AppendInt(key, int64(n), 10)
	for _, v := range votes {
		key = append(key, '|')
		key = strconv.AppendInt(key, int64(v.src), 10)
		key = append(key, ':')
		key = strconv.AppendInt(key, int64(v.vote), 10)
	}
	if i, ok := ps.index[string(key)]; ok {
		ps.pats[i].count++
		return
	}
	ps.index[string(key)] = len(ps.pats)
	ps.pats = append(ps.pats, pattern{n: n, votes: append([]pvote(nil), votes...), count: 1})
}

// sortedSources returns the store's source names sorted, plus the
// old-column -> sorted-column permutation.
func (ps *patternStore) sortedSources() ([]string, []int) {
	names := append([]string(nil), ps.srcs...)
	sort.Strings(names)
	perm := make([]int, len(ps.srcs))
	pos := make(map[string]int, len(names))
	for i, n := range names {
		pos[n] = i
	}
	for old, n := range ps.srcs {
		perm[old] = pos[n]
	}
	return names, perm
}

// coverage returns per-source voted-unit fractions.
func (ps *patternStore) coverage() map[string]float64 {
	out := make(map[string]float64, len(ps.srcs))
	for i, name := range ps.srcs {
		if ps.units > 0 {
			out[name] = ps.srcVotes[i] / ps.units
		} else {
			out[name] = 0
		}
	}
	return out
}

// storeParams is one store's converged estimate.
type storeParams struct {
	sources    []string // sorted
	acc        []float64
	prior      []float64
	accuracy   map[string]float64
	coverage   map[string]float64
	iterations int
	converged  bool
}

// estimate runs the weighted estimator over the unique patterns.
func (ps *patternStore) estimate(est Estimator, cfg Config) storeParams {
	names, perm := ps.sortedSources()
	out := storeParams{sources: names, coverage: ps.coverage()}
	if ps.k > 0 {
		vm := NewVoteMatrix(ps.k, names, len(ps.pats))
		weights := make([]float64, len(ps.pats))
		for i, p := range ps.pats {
			weights[i] = p.count
			for _, v := range p.votes {
				vm.Votes[i][perm[v.src]] = v.vote
			}
		}
		var res *Result
		if est == EstMajority {
			res = majorityVoteWeighted(vm, weights)
		} else {
			res = accuracyModelWeighted(vm, weights, cfg)
		}
		out.prior = res.ClassBalance
		out.accuracy = res.SourceAccuracy
		out.iterations = res.Iterations
		out.converged = res.Converged
		out.acc = make([]float64, len(names))
		for i, n := range names {
			out.acc[i] = res.SourceAccuracy[n]
		}
		return out
	}
	// Select store: per-pattern candidate counts.
	sv := &SelectVotes{
		Sources: names,
		Counts:  make([]int, len(ps.pats)),
		Votes:   make([][]int, len(ps.pats)),
	}
	weights := make([]float64, len(ps.pats))
	for i, p := range ps.pats {
		weights[i] = p.count
		sv.Counts[i] = p.n
		row := make([]int, len(names))
		for s := range row {
			row[s] = Abstain
		}
		for _, v := range p.votes {
			row[perm[v.src]] = v.vote
		}
		sv.Votes[i] = row
	}
	res := selectModelWeighted(sv, weights, cfg)
	out.accuracy = res.SourceAccuracy
	out.iterations = res.Iterations
	out.converged = res.Converged
	out.acc = make([]float64, len(names))
	for i, n := range names {
		out.acc[i] = res.SourceAccuracy[n]
	}
	return out
}

// NewIncremental creates an accumulator for every task of sch. Only the
// majority and accuracy estimators are supported: DawidSkene has no
// foldable sufficient statistics, and anything else is an unknown name —
// rejected rather than silently falling back to accuracy EM.
func NewIncremental(sch *schema.Schema, cfg CombineConfig) (*Incremental, error) {
	cfg = cfg.withDefaults()
	switch cfg.Estimator {
	case EstMajority, EstAccuracy:
	case EstDawidSkene:
		return nil, fmt.Errorf("labelmodel: incremental: estimator %q not supported (no foldable sufficient statistics)", cfg.Estimator)
	default:
		return nil, fmt.Errorf("labelmodel: incremental: unknown estimator %q", cfg.Estimator)
	}
	inc := &Incremental{sch: sch, cfg: cfg, tasks: map[string]*incTask{}}
	for _, tname := range sch.TaskNames() {
		t := sch.Tasks[tname]
		it := &incTask{t: t, gran: sch.Granularity(t)}
		switch t.Type {
		case schema.Multiclass:
			it.stores = []*patternStore{newPatternStore(len(t.Classes))}
		case schema.Bitvector:
			for range t.Classes {
				it.stores = append(it.stores, newPatternStore(2))
			}
		case schema.Select:
			it.stores = []*patternStore{newPatternStore(0)}
		default:
			return nil, fmt.Errorf("labelmodel: incremental: unsupported task type %q", t.Type)
		}
		inc.tasks[tname] = it
	}
	return inc, nil
}

// Records returns how many records have been folded in so far.
func (inc *Incremental) Records() int64 {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.records
}

// Update folds a batch of records into the sufficient statistics. Gold
// labels are always excluded, exactly as in Combine.
func (inc *Incremental) Update(recs []*record.Record) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	inc.records += int64(len(recs))
	var votes []pvote
	for _, r := range recs {
		for tname, it := range inc.tasks {
			switch it.t.Type {
			case schema.Multiclass:
				units := 1
				if it.gran == schema.PerToken {
					units = len(r.Payloads[it.t.Payload].Tokens)
				}
				st := it.stores[0]
				for u := 0; u < units; u++ {
					votes = votes[:0]
					for src, l := range r.Tasks[tname] {
						if src == record.GoldSource {
							continue
						}
						class := l.Class
						if it.gran == schema.PerToken {
							class = ""
							if u < len(l.Seq) {
								class = l.Seq[u]
							}
						}
						if class == "" {
							continue
						}
						if ci := it.t.ClassIndex(class); ci >= 0 {
							votes = append(votes, pvote{src: st.col(src), vote: ci})
						}
					}
					sortVotes(votes)
					st.add(0, votes)
				}
			case schema.Bitvector:
				units := 1
				if it.gran == schema.PerToken {
					units = len(r.Payloads[it.t.Payload].Tokens)
				}
				for b, class := range it.t.Classes {
					st := it.stores[b]
					for u := 0; u < units; u++ {
						votes = votes[:0]
						for src, l := range r.Tasks[tname] {
							if src == record.GoldSource || l.Kind != record.KindBits || u >= len(l.Bits) {
								continue
							}
							vote := 0
							for _, bit := range l.Bits[u] {
								if bit == class {
									vote = 1
									break
								}
							}
							votes = append(votes, pvote{src: st.col(src), vote: vote})
						}
						sortVotes(votes)
						st.add(0, votes)
					}
				}
			case schema.Select:
				n := len(r.Payloads[it.t.Payload].Set)
				st := it.stores[0]
				votes = votes[:0]
				for src, l := range r.Tasks[tname] {
					if src == record.GoldSource || l.Kind != record.KindSelect {
						continue
					}
					if l.Select >= 0 && l.Select < n {
						votes = append(votes, pvote{src: st.col(src), vote: l.Select})
					}
				}
				sortVotes(votes)
				st.add(n, votes)
			}
		}
	}
}

func sortVotes(v []pvote) {
	sort.Slice(v, func(i, j int) bool { return v[i].src < v[j].src })
}

// Snapshot runs weighted EM over the accumulated statistics and freezes the
// converged parameters. O(unique patterns), independent of stream length.
type Snapshot struct {
	sch     *schema.Schema
	cfg     CombineConfig
	Records int64
	tasks   map[string]*taskSnapshot
}

type taskSnapshot struct {
	t      *schema.Task
	gran   schema.Granularity
	params []storeParams // aligned with incTask.stores
}

// Snapshot estimates parameters from the current statistics.
func (inc *Incremental) Snapshot() *Snapshot {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	snap := &Snapshot{sch: inc.sch, cfg: inc.cfg, Records: inc.records, tasks: map[string]*taskSnapshot{}}
	for tname, it := range inc.tasks {
		ts := &taskSnapshot{t: it.t, gran: it.gran}
		for _, st := range it.stores {
			ts.params = append(ts.params, st.estimate(inc.cfg.Estimator, inc.cfg.EM))
		}
		snap.tasks[tname] = ts
	}
	return snap
}

// SourceAccuracy returns the snapshot's per-source accuracy estimate for one
// task (bitvector tasks average over bits, matching Combine).
func (s *Snapshot) SourceAccuracy(task string) map[string]float64 {
	ts := s.tasks[task]
	if ts == nil {
		return nil
	}
	out := map[string]float64{}
	for _, p := range ts.params {
		for src, a := range p.accuracy {
			out[src] += a
		}
	}
	if len(ts.params) > 1 {
		for src := range out {
			out[src] /= float64(len(ts.params))
		}
	}
	return out
}

// Targets emits probabilistic training targets for recs by replaying one
// E-step per task with the snapshot's converged parameters — the same
// construction Combine uses for its returned posteriors, so on identical
// data the two agree to float rounding.
func (s *Snapshot) Targets(recs []*record.Record) (map[string]*TaskTargets, error) {
	out := make(map[string]*TaskTargets, len(s.tasks))
	for _, tname := range s.sch.TaskNames() {
		ts := s.tasks[tname]
		if ts == nil {
			return nil, fmt.Errorf("labelmodel: snapshot: task %q not accumulated", tname)
		}
		var tt *TaskTargets
		switch ts.t.Type {
		case schema.Multiclass:
			tt = s.targetsMulticlass(recs, ts)
		case schema.Bitvector:
			tt = s.targetsBitvector(recs, ts)
		case schema.Select:
			tt = s.targetsSelect(recs, ts)
		}
		tt.SourceCoverage = map[string]float64{}
		for _, p := range ts.params {
			for src, c := range p.coverage {
				tt.SourceCoverage[src] += c
			}
		}
		if len(ts.params) > 1 {
			for src := range tt.SourceCoverage {
				tt.SourceCoverage[src] /= float64(len(ts.params))
			}
		}
		out[tname] = tt
	}
	return out, nil
}

// eStepUnit computes one unit's posterior under accuracy-model parameters:
// identical float operations to the estimator's E-step (log prior, then
// la/le per voting source in sorted-source order, then logNormalize).
func eStepUnit(lp []float64, p *storeParams, votes []pvote, k int) {
	for c := 0; c < k; c++ {
		lp[c] = logv(p.prior[c])
	}
	logK1 := math.Max(float64(k-1), 1)
	for _, v := range votes {
		la := logv(p.acc[v.src])
		le := logv((1 - p.acc[v.src]) / logK1)
		for c := 0; c < k; c++ {
			if c == v.vote {
				lp[c] += la
			} else {
				lp[c] += le
			}
		}
	}
	logNormalize(lp)
}

// majorityUnit computes one unit's majority-vote posterior (MajorityVote's
// per-item rule: argmax set splits ties evenly; no votes = uniform).
func majorityUnit(lp []float64, votes []pvote, k int) {
	for c := range lp {
		lp[c] = 0
	}
	if len(votes) == 0 {
		for c := range lp {
			lp[c] = 1 / float64(k)
		}
		return
	}
	counts := make([]float64, k)
	for _, v := range votes {
		counts[v.vote]++
	}
	maxc := 0.0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	var ties int
	for _, c := range counts {
		if c == maxc {
			ties++
		}
	}
	for c, n := range counts {
		if n == maxc {
			lp[c] = 1 / float64(ties)
		}
	}
}

// unitVotes extracts one multiclass unit's sparse votes against the sorted
// source list of p (columns index into p.sources/p.acc).
func unitVotes(r *record.Record, t *schema.Task, gran schema.Granularity, unit int, p *storeParams, dst []pvote) []pvote {
	dst = dst[:0]
	for col, src := range p.sources {
		l, ok := r.Label(t.Name, src)
		if !ok {
			continue
		}
		class := l.Class
		if gran == schema.PerToken {
			class = ""
			if unit < len(l.Seq) {
				class = l.Seq[unit]
			}
		}
		if class == "" {
			continue
		}
		if ci := t.ClassIndex(class); ci >= 0 {
			dst = append(dst, pvote{src: col, vote: ci})
		}
	}
	return dst
}

func (s *Snapshot) targetsMulticlass(recs []*record.Record, ts *taskSnapshot) *TaskTargets {
	t, gran := ts.t, ts.gran
	p := &ts.params[0]
	K := len(t.Classes)
	unitsPerRec := make([]int, len(recs))
	total := 0
	for i, r := range recs {
		n := 1
		if gran == schema.PerToken {
			n = len(r.Payloads[t.Payload].Tokens)
		}
		unitsPerRec[i] = n
		total += n
	}
	out := newTargets(t.Name, gran, unitsPerRec, K)
	flat := make([]float64, total*K)
	var votes []pvote
	idx := 0
	for i, r := range recs {
		for u := 0; u < unitsPerRec[i]; u++ {
			lp := flat[idx*K : (idx+1)*K : (idx+1)*K]
			votes = unitVotes(r, t, gran, u, p, votes)
			if s.cfg.Estimator == EstMajority {
				majorityUnit(lp, votes, K)
			} else {
				eStepUnit(lp, p, votes, K)
			}
			out.Dist[i][u] = lp
			if len(votes) > 0 {
				out.Weight[i][u] = 1
			}
			idx++
		}
	}
	if s.cfg.Rebalance {
		rebalanceTargets(out, p.prior)
	}
	out.SourceAccuracy = p.accuracy
	out.ClassBalance = p.prior
	out.Iterations = p.iterations
	out.Converged = p.converged
	return out
}

func (s *Snapshot) targetsBitvector(recs []*record.Record, ts *taskSnapshot) *TaskTargets {
	t, gran := ts.t, ts.gran
	C := len(t.Classes)
	unitsPerRec := make([]int, len(recs))
	total := 0
	for i, r := range recs {
		n := 1
		if gran == schema.PerToken {
			n = len(r.Payloads[t.Payload].Tokens)
		}
		unitsPerRec[i] = n
		total += n
	}
	out := newTargets(t.Name, gran, unitsPerRec, C)
	flat := make([]float64, total*C)
	lp := make([]float64, 2)
	var votes []pvote
	idx := 0
	for i, r := range recs {
		for u := 0; u < unitsPerRec[i]; u++ {
			anyVote := false
			dist := flat[idx*C : (idx+1)*C : (idx+1)*C]
			for b, class := range t.Classes {
				p := &ts.params[b]
				votes = votes[:0]
				for col, src := range p.sources {
					l, ok := r.Label(t.Name, src)
					if !ok || l.Kind != record.KindBits || u >= len(l.Bits) {
						continue
					}
					vote := 0
					for _, bit := range l.Bits[u] {
						if bit == class {
							vote = 1
							break
						}
					}
					votes = append(votes, pvote{src: col, vote: vote})
				}
				if len(votes) > 0 {
					anyVote = true
				}
				if s.cfg.Estimator == EstMajority {
					majorityUnit(lp, votes, 2)
				} else {
					eStepUnit(lp, p, votes, 2)
				}
				dist[b] = lp[1]
			}
			if anyVote {
				out.Dist[i][u] = dist
				out.Weight[i][u] = 1
			}
			idx++
		}
	}
	out.SourceAccuracy = map[string]float64{}
	balance := make([]float64, C)
	iters := 0
	converged := true
	for b := range t.Classes {
		p := &ts.params[b]
		for src, a := range p.accuracy {
			out.SourceAccuracy[src] += a
		}
		if len(p.prior) == 2 {
			balance[b] = p.prior[1]
		}
		iters += p.iterations
		converged = converged && p.converged
	}
	for src := range out.SourceAccuracy {
		out.SourceAccuracy[src] /= float64(C)
	}
	out.ClassBalance = balance
	out.Iterations = iters
	out.Converged = converged
	return out
}

func (s *Snapshot) targetsSelect(recs []*record.Record, ts *taskSnapshot) *TaskTargets {
	t := ts.t
	p := &ts.params[0]
	unitsPerRec := make([]int, len(recs))
	for i := range unitsPerRec {
		unitsPerRec[i] = 1
	}
	out := newTargets(t.Name, schema.PerSet, unitsPerRec, 0)
	var votes []pvote
	for i, r := range recs {
		n := len(r.Payloads[t.Payload].Set)
		if n <= 0 {
			continue
		}
		votes = votes[:0]
		for col, src := range p.sources {
			l, ok := r.Label(t.Name, src)
			if !ok || l.Kind != record.KindSelect {
				continue
			}
			if l.Select >= 0 && l.Select < n {
				votes = append(votes, pvote{src: col, vote: l.Select})
			}
		}
		if len(votes) == 0 {
			continue
		}
		lp := make([]float64, n)
		for _, v := range votes {
			la := logv(p.acc[v.src])
			le := logv((1 - p.acc[v.src]) / math.Max(float64(n-1), 1))
			for c := 0; c < n; c++ {
				if c == v.vote {
					lp[c] += la
				} else {
					lp[c] += le
				}
			}
		}
		logNormalize(lp)
		out.Dist[i][0] = lp
		out.Weight[i][0] = 1
	}
	out.SourceAccuracy = p.accuracy
	out.Iterations = p.iterations
	out.Converged = p.converged
	return out
}

// rebalanceTargets applies class-rebalancing weights over supervised units,
// mirroring applyRebalance over the flattened unit list.
func rebalanceTargets(tt *TaskTargets, balance []float64) {
	var supPost [][]float64
	type ref struct{ i, u int }
	var refs []ref
	for i := range tt.Weight {
		for u, w := range tt.Weight[i] {
			if w > 0 {
				refs = append(refs, ref{i, u})
				supPost = append(supPost, tt.Dist[i][u])
			}
		}
	}
	if len(refs) == 0 {
		return
	}
	rw := RebalanceWeights(supPost, balance)
	for j, r := range refs {
		tt.Weight[r.i][r.u] *= rw[j]
	}
}

// logv matches the estimators' guarded log.
func logv(x float64) float64 { return math.Log(x + 1e-12) }
