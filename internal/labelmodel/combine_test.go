package labelmodel

import (
	"math"
	"testing"

	"repro/internal/record"
	"repro/internal/schema"
)

const combineSchemaJSON = `{
  "payloads": {
    "tokens":   {"type": "sequence", "max_length": 8},
    "query":    {"type": "singleton", "base": ["tokens"]},
    "entities": {"type": "set", "range": "tokens"}
  },
  "tasks": {
    "POS":        {"payload": "tokens", "type": "multiclass", "classes": ["NOUN", "VERB", "DET"]},
    "EntityType": {"payload": "tokens", "type": "bitvector", "classes": ["person", "location"]},
    "Intent":     {"payload": "query", "type": "multiclass", "classes": ["A", "B"]},
    "IntentArg":  {"payload": "entities", "type": "select"}
  }
}`

func combineSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.Parse([]byte(combineSchemaJSON))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mkQueryRecord(id string, tokens []string) *record.Record {
	return &record.Record{
		ID: id,
		Payloads: map[string]record.PayloadValue{
			"tokens": {Tokens: tokens},
			"query":  {String: ""},
		},
	}
}

func TestCombineMulticlassPerExample(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	// 20 records: three sources agree on A for even, B for odd; one noisy
	// source always says A.
	for i := 0; i < 20; i++ {
		r := mkQueryRecord("r", []string{"x"})
		want := "A"
		if i%2 == 1 {
			want = "B"
		}
		r.SetLabel("Intent", "s1", record.Label{Kind: record.KindClass, Class: want})
		r.SetLabel("Intent", "s2", record.Label{Kind: record.KindClass, Class: want})
		r.SetLabel("Intent", "noisy", record.Label{Kind: record.KindClass, Class: "A"})
		// Gold must be ignored by combination: poison it.
		r.SetLabel("Intent", record.GoldSource, record.Label{Kind: record.KindClass, Class: "B"})
		recs = append(recs, r)
	}
	tt, err := Combine(recs, sch, "Intent", CombineConfig{Estimator: EstAccuracy})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Gran != schema.PerExample {
		t.Fatalf("granularity wrong: %s", tt.Gran)
	}
	if tt.SupervisedUnits() != 20 {
		t.Fatalf("supervised units %d", tt.SupervisedUnits())
	}
	// Even records -> A (index 0) strongly.
	if tt.Dist[0][0][0] < 0.8 {
		t.Fatalf("record 0 P(A) = %.3f", tt.Dist[0][0][0])
	}
	if tt.Dist[1][0][1] < 0.6 {
		t.Fatalf("record 1 P(B) = %.3f (noisy source should be down-weighted)", tt.Dist[1][0][1])
	}
	// The noisy source's estimated accuracy must be lower than s1's.
	if tt.SourceAccuracy["noisy"] >= tt.SourceAccuracy["s1"] {
		t.Fatalf("noisy %.3f >= s1 %.3f", tt.SourceAccuracy["noisy"], tt.SourceAccuracy["s1"])
	}
	if tt.SourceCoverage["s1"] != 1 {
		t.Fatalf("coverage wrong: %v", tt.SourceCoverage)
	}
	// Sources list excludes gold (gold is A-poisoned; if it leaked, even
	// records would not be confidently A).
	for src := range tt.SourceAccuracy {
		if src == record.GoldSource {
			t.Fatalf("gold leaked into combination")
		}
	}
}

func TestCombineMulticlassPerToken(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	for i := 0; i < 10; i++ {
		r := mkQueryRecord("r", []string{"the", "cat", "runs"})
		r.SetLabel("POS", "tagger1", record.Label{Kind: record.KindSeq, Seq: []string{"DET", "NOUN", "VERB"}})
		r.SetLabel("POS", "tagger2", record.Label{Kind: record.KindSeq, Seq: []string{"DET", "NOUN", ""}}) // abstains on token 2
		recs = append(recs, r)
	}
	tt, err := Combine(recs, sch, "POS", CombineConfig{Estimator: EstAccuracy})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Gran != schema.PerToken {
		t.Fatalf("granularity wrong")
	}
	if len(tt.Dist[0]) != 3 {
		t.Fatalf("units per record wrong: %d", len(tt.Dist[0]))
	}
	if tt.SupervisedUnits() != 30 {
		t.Fatalf("supervised units %d want 30", tt.SupervisedUnits())
	}
	// Token 0 should be DET (index 2).
	if tt.Dist[0][0][2] < 0.8 {
		t.Fatalf("token 0 P(DET) = %.3f", tt.Dist[0][0][2])
	}
	// Token 2 labeled only by tagger1 -> still supervised, VERB wins.
	if tt.Dist[0][2][1] < 0.6 {
		t.Fatalf("token 2 P(VERB) = %.3f", tt.Dist[0][2][1])
	}
}

func TestCombineBitvector(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	for i := 0; i < 15; i++ {
		r := mkQueryRecord("r", []string{"obama", "paris"})
		r.SetLabel("EntityType", "gaz1", record.Label{Kind: record.KindBits, Bits: [][]string{{"person"}, {"location"}}})
		r.SetLabel("EntityType", "gaz2", record.Label{Kind: record.KindBits, Bits: [][]string{{"person"}, {"person", "location"}}})
		recs = append(recs, r)
	}
	// Majority vote keeps contested bits uncertain (EM with learned priors
	// would snowball on these perfectly duplicated items).
	tt, err := Combine(recs, sch, "EntityType", CombineConfig{Estimator: EstMajority})
	if err != nil {
		t.Fatal(err)
	}
	// Token 0: both say person -> P(person) high, P(location) low.
	if tt.Dist[0][0][0] < 0.8 || tt.Dist[0][0][1] > 0.2 {
		t.Fatalf("token 0 bits wrong: %v", tt.Dist[0][0])
	}
	// Token 1: location agreed; person contested (one says yes one no).
	if tt.Dist[0][1][1] < 0.8 {
		t.Fatalf("token 1 P(location) = %.3f", tt.Dist[0][1][1])
	}
	p := tt.Dist[0][1][0]
	if p < 0.2 || p > 0.8 {
		t.Fatalf("token 1 contested P(person) = %.3f, want uncertain", p)
	}
	if tt.SupervisedUnits() != 30 {
		t.Fatalf("supervised units %d", tt.SupervisedUnits())
	}
}

func TestCombineBitvectorUnlabeledUnitsGetZeroWeight(t *testing.T) {
	sch := combineSchema(t)
	r1 := mkQueryRecord("a", []string{"x", "y"})
	r1.SetLabel("EntityType", "gaz1", record.Label{Kind: record.KindBits, Bits: [][]string{{"person"}, {}}})
	r2 := mkQueryRecord("b", []string{"z"})
	// r2 has no EntityType supervision at all.
	tt, err := Combine([]*record.Record{r1, r2}, sch, "EntityType", CombineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Weight[1][0] != 0 {
		t.Fatalf("unlabeled record got weight %v", tt.Weight[1][0])
	}
	if tt.Weight[0][0] != 1 || tt.Weight[0][1] != 1 {
		t.Fatalf("labeled units weights wrong: %v", tt.Weight[0])
	}
}

func TestCombineSelect(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	for i := 0; i < 12; i++ {
		r := mkQueryRecord("r", []string{"a", "b", "c"})
		r.Payloads["entities"] = record.PayloadValue{Set: []record.SetMember{
			{ID: "e0", Start: 0, End: 1},
			{ID: "e1", Start: 1, End: 2},
			{ID: "e2", Start: 2, End: 3},
		}}
		r.SetLabel("IntentArg", "s1", record.Label{Kind: record.KindSelect, Select: 1})
		r.SetLabel("IntentArg", "s2", record.Label{Kind: record.KindSelect, Select: 1})
		r.SetLabel("IntentArg", "prior", record.Label{Kind: record.KindSelect, Select: 0})
		recs = append(recs, r)
	}
	tt, err := Combine(recs, sch, "IntentArg", CombineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Gran != schema.PerSet {
		t.Fatalf("granularity wrong")
	}
	if len(tt.Dist[0][0]) != 3 {
		t.Fatalf("candidate distribution wrong length: %d", len(tt.Dist[0][0]))
	}
	if tt.Dist[0][0][1] < 0.6 {
		t.Fatalf("P(candidate 1) = %.3f", tt.Dist[0][0][1])
	}
	if tt.SupervisedUnits() != 12 {
		t.Fatalf("supervised units %d", tt.SupervisedUnits())
	}
}

func TestCombineRebalance(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	// 90% class A, 10% class B.
	for i := 0; i < 30; i++ {
		r := mkQueryRecord("r", []string{"x"})
		c := "A"
		if i%10 == 0 {
			c = "B"
		}
		r.SetLabel("Intent", "s1", record.Label{Kind: record.KindClass, Class: c})
		r.SetLabel("Intent", "s2", record.Label{Kind: record.KindClass, Class: c})
		recs = append(recs, r)
	}
	balanced, err := Combine(recs, sch, "Intent", CombineConfig{Rebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Combine(recs, sch, "Intent", CombineConfig{Rebalance: false})
	if err != nil {
		t.Fatal(err)
	}
	// Minority-class records should be upweighted relative to majority.
	if !(balanced.Weight[0][0] < balanced.Weight[10][0] || balanced.Weight[0][0] < balanced.Weight[20][0]) {
		// records 0,10,20 are class B
	}
	bw := balanced.Weight[10][0] // class B record
	aw := balanced.Weight[1][0]  // class A record
	if bw <= aw {
		t.Fatalf("rebalance: minority weight %.3f <= majority %.3f", bw, aw)
	}
	if plain.Weight[10][0] != plain.Weight[1][0] {
		t.Fatalf("plain weights should be equal")
	}
}

func TestCombineUnknownTask(t *testing.T) {
	sch := combineSchema(t)
	if _, err := Combine(nil, sch, "Nope", CombineConfig{}); err == nil {
		t.Fatalf("unknown task accepted")
	}
}

func TestCombineNoSupervision(t *testing.T) {
	sch := combineSchema(t)
	recs := []*record.Record{mkQueryRecord("a", []string{"x"})}
	tt, err := Combine(recs, sch, "Intent", CombineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tt.SupervisedUnits() != 0 {
		t.Fatalf("phantom supervision")
	}
	if tt.Weight[0][0] != 0 {
		t.Fatalf("unsupervised weight %v", tt.Weight[0][0])
	}
}

func TestCombineMajorityAndDawidSkeneEstimators(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	for i := 0; i < 10; i++ {
		r := mkQueryRecord("r", []string{"x"})
		r.SetLabel("Intent", "s1", record.Label{Kind: record.KindClass, Class: "A"})
		r.SetLabel("Intent", "s2", record.Label{Kind: record.KindClass, Class: "A"})
		recs = append(recs, r)
	}
	for _, est := range []Estimator{EstMajority, EstDawidSkene, EstAccuracy} {
		tt, err := Combine(recs, sch, "Intent", CombineConfig{Estimator: est})
		if err != nil {
			t.Fatalf("%s: %v", est, err)
		}
		if tt.Dist[0][0][0] < 0.8 {
			t.Fatalf("%s: P(A) = %.3f", est, tt.Dist[0][0][0])
		}
	}
}

func TestCombinedDistributionsSumToOne(t *testing.T) {
	sch := combineSchema(t)
	var recs []*record.Record
	for i := 0; i < 8; i++ {
		r := mkQueryRecord("r", []string{"a", "b"})
		r.SetLabel("POS", "t1", record.Label{Kind: record.KindSeq, Seq: []string{"DET", "NOUN"}})
		recs = append(recs, r)
	}
	tt, err := Combine(recs, sch, "POS", CombineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tt.Dist {
		for u := range tt.Dist[i] {
			if tt.Weight[i][u] == 0 {
				continue
			}
			var sum float64
			for _, p := range tt.Dist[i][u] {
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("distribution sums to %.6f", sum)
			}
		}
	}
}
