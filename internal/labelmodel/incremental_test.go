package labelmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/record"
	"repro/internal/workload"
)

// incParityTol is the parity bound between the incremental label model and a
// full recombine on the same records: the two run the same EM on the same
// sufficient statistics, differing only in float summation order.
const incParityTol = 1e-6

// TestIncrementalMatchesCombine is the acceptance test for the incremental
// label model: fed the seed workload's records in k shuffled batches, the
// accumulated sufficient statistics must reproduce full Combine's parameters
// and probabilistic labels for every task type (multiclass per-example,
// multiclass per-token, bitvector, select) within 1e-6.
func TestIncrementalMatchesCombine(t *testing.T) {
	ds := workload.StandardDataset(160, 3, 0.3)
	recs := ds.Records
	for _, est := range []Estimator{EstAccuracy, EstMajority} {
		for _, k := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%s/k=%d", est, k), func(t *testing.T) {
				// Tight EM tolerance removes stop-iteration jitter from the
				// comparison: both runs converge hard to the shared fixed
				// point, leaving only float rounding.
				cfg := CombineConfig{Estimator: est, EM: Config{Tol: 1e-9, MaxIter: 500}}
				inc, err := NewIncremental(ds.Schema, cfg)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(100*k) + 7))
				shuffled := append([]*record.Record(nil), recs...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				for b := 0; b < k; b++ {
					lo, hi := b*len(shuffled)/k, (b+1)*len(shuffled)/k
					inc.Update(shuffled[lo:hi])
				}
				if inc.Records() != int64(len(recs)) {
					t.Fatalf("accumulated %d records, want %d", inc.Records(), len(recs))
				}
				snap := inc.Snapshot()
				got, err := snap.Targets(recs)
				if err != nil {
					t.Fatal(err)
				}
				for _, tname := range ds.Schema.TaskNames() {
					want, err := Combine(recs, ds.Schema, tname, cfg)
					if err != nil {
						t.Fatal(err)
					}
					compareTargets(t, tname, want, got[tname])
				}
			})
		}
	}
}

func compareTargets(t *testing.T, task string, want, got *TaskTargets) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no incremental targets", task)
	}
	if got.Gran != want.Gran {
		t.Fatalf("%s: granularity %q, want %q", task, got.Gran, want.Gran)
	}
	if len(got.Dist) != len(want.Dist) {
		t.Fatalf("%s: %d records, want %d", task, len(got.Dist), len(want.Dist))
	}
	for src, wa := range want.SourceAccuracy {
		if ga, ok := got.SourceAccuracy[src]; !ok || math.Abs(ga-wa) > incParityTol {
			t.Fatalf("%s: source %s accuracy %v, want %v", task, src, got.SourceAccuracy[src], wa)
		}
	}
	for src, wc := range want.SourceCoverage {
		if gc, ok := got.SourceCoverage[src]; !ok || math.Abs(gc-wc) > incParityTol {
			t.Fatalf("%s: source %s coverage %v, want %v", task, src, got.SourceCoverage[src], wc)
		}
	}
	if len(got.ClassBalance) != len(want.ClassBalance) {
		t.Fatalf("%s: class balance length %d, want %d", task, len(got.ClassBalance), len(want.ClassBalance))
	}
	for k, wb := range want.ClassBalance {
		if math.Abs(got.ClassBalance[k]-wb) > incParityTol {
			t.Fatalf("%s: class balance[%d] %v, want %v", task, k, got.ClassBalance[k], wb)
		}
	}
	for i := range want.Dist {
		if len(got.Dist[i]) != len(want.Dist[i]) {
			t.Fatalf("%s: record %d has %d units, want %d", task, i, len(got.Dist[i]), len(want.Dist[i]))
		}
		for u := range want.Dist[i] {
			wd, gd := want.Dist[i][u], got.Dist[i][u]
			if (wd == nil) != (gd == nil) {
				t.Fatalf("%s: record %d unit %d: dist nil-ness mismatch (want nil=%v)", task, i, u, wd == nil)
			}
			if len(gd) != len(wd) {
				t.Fatalf("%s: record %d unit %d: dist length %d, want %d", task, i, u, len(gd), len(wd))
			}
			for k := range wd {
				if math.Abs(gd[k]-wd[k]) > incParityTol {
					t.Fatalf("%s: record %d unit %d class %d: %v, want %v", task, i, u, k, gd[k], wd[k])
				}
			}
			if math.Abs(got.Weight[i][u]-want.Weight[i][u]) > incParityTol {
				t.Fatalf("%s: record %d unit %d weight %v, want %v", task, i, u, got.Weight[i][u], want.Weight[i][u])
			}
		}
	}
	if got.SupervisedUnits() != want.SupervisedUnits() {
		t.Fatalf("%s: supervised units %d, want %d", task, got.SupervisedUnits(), want.SupervisedUnits())
	}
}

// TestIncrementalRebalanceParity covers the rebalanced-weight path: weights
// must match a full Combine with Rebalance on.
func TestIncrementalRebalanceParity(t *testing.T) {
	ds := workload.StandardDataset(120, 5, 0.25)
	cfg := CombineConfig{Estimator: EstAccuracy, Rebalance: true, EM: Config{Tol: 1e-9, MaxIter: 500}}
	inc, err := NewIncremental(ds.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc.Update(ds.Records[:40])
	inc.Update(ds.Records[40:])
	got, err := inc.Snapshot().Targets(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Combine(ds.Records, ds.Schema, "Intent", cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareTargets(t, "Intent", want, got["Intent"])
}

// TestIncrementalRejectsBadEstimators pins the documented limitations:
// full confusion matrices have no foldable sufficient statistics, and an
// unknown estimator name must not silently fall back to accuracy EM (the
// /loop API passes operator-typed strings through).
func TestIncrementalRejectsBadEstimators(t *testing.T) {
	ds := workload.StandardDataset(10, 1, 0.2)
	if _, err := NewIncremental(ds.Schema, CombineConfig{Estimator: EstDawidSkene}); err == nil {
		t.Fatal("DawidSkene accepted incrementally")
	}
	if _, err := NewIncremental(ds.Schema, CombineConfig{Estimator: "majorty"}); err == nil {
		t.Fatal("unknown estimator accepted (typo silently became accuracy EM)")
	}
	for _, est := range []Estimator{"", EstMajority, EstAccuracy} {
		if _, err := NewIncremental(ds.Schema, CombineConfig{Estimator: est}); err != nil {
			t.Fatalf("estimator %q rejected: %v", est, err)
		}
	}
}

// TestIncrementalCompresses checks the point of the pattern store: far fewer
// unique patterns than units on a realistic stream (the EM cost of Snapshot
// is bounded by patterns, not stream length).
func TestIncrementalCompresses(t *testing.T) {
	ds := workload.StandardDataset(400, 9, 0.3)
	inc, err := NewIncremental(ds.Schema, CombineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inc.Update(ds.Records)
	it := inc.tasks["Intent"]
	st := it.stores[0]
	if st.units != float64(len(ds.Records)) {
		t.Fatalf("units %v, want %d", st.units, len(ds.Records))
	}
	if len(st.pats) >= len(ds.Records)/2 {
		t.Fatalf("no compression: %d patterns over %d records", len(st.pats), len(ds.Records))
	}
	// Snapshot twice: statistics are not consumed.
	a := inc.Snapshot()
	b := inc.Snapshot()
	if a.Records != b.Records {
		t.Fatalf("snapshot consumed statistics: %d vs %d", a.Records, b.Records)
	}
}
