package labelmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthVotes generates N items with true labels drawn from balance, and
// votes from sources with the given accuracies and coverages (symmetric
// error model). Returns the matrix and the true labels.
func synthVotes(rng *rand.Rand, n, k int, accs, covs []float64, balance []float64) (*VoteMatrix, []int) {
	names := make([]string, len(accs))
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	vm := NewVoteMatrix(k, names, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		y := sampleCat(rng, balance)
		truth[i] = y
		for s := range accs {
			if rng.Float64() >= covs[s] {
				continue // abstain
			}
			if rng.Float64() < accs[s] {
				vm.Votes[i][s] = y
			} else {
				wrong := rng.Intn(k - 1)
				if wrong >= y {
					wrong++
				}
				vm.Votes[i][s] = wrong
			}
		}
	}
	return vm, truth
}

func sampleCat(rng *rand.Rand, p []float64) int {
	u := rng.Float64()
	var c float64
	for i, pi := range p {
		c += pi
		if u < c {
			return i
		}
	}
	return len(p) - 1
}

func uniformBalance(k int) []float64 {
	b := make([]float64, k)
	for i := range b {
		b[i] = 1 / float64(k)
	}
	return b
}

func accuracyOf(post [][]float64, truth []int) float64 {
	var correct int
	for i, p := range post {
		best, bv := 0, -1.0
		for k, v := range p {
			if v > bv {
				best, bv = k, v
			}
		}
		if best == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}

func TestVoteMatrixValidate(t *testing.T) {
	vm := NewVoteMatrix(3, []string{"a", "b"}, 4)
	if err := vm.Validate(); err != nil {
		t.Fatalf("fresh matrix invalid: %v", err)
	}
	vm.Votes[0][0] = 2
	if err := vm.Validate(); err != nil {
		t.Fatalf("valid vote rejected: %v", err)
	}
	vm.Votes[1][1] = 3
	if err := vm.Validate(); err == nil {
		t.Fatalf("out-of-range vote accepted")
	}
	if err := (&VoteMatrix{K: 1}).Validate(); err == nil {
		t.Fatalf("K=1 accepted")
	}
}

func TestCoverage(t *testing.T) {
	vm := NewVoteMatrix(2, []string{"a", "b"}, 4)
	vm.Votes[0][0] = 1
	vm.Votes[1][0] = 0
	cov := vm.Coverage()
	if cov["a"] != 0.5 || cov["b"] != 0 {
		t.Fatalf("coverage wrong: %v", cov)
	}
}

func TestMajorityVoteBasics(t *testing.T) {
	vm := NewVoteMatrix(3, []string{"a", "b", "c"}, 3)
	// Item 0: unanimous class 1.
	vm.Votes[0] = []int{1, 1, 1}
	// Item 1: 2-1 split.
	vm.Votes[1] = []int{0, 0, 2}
	// Item 2: no votes.
	res := MajorityVote(vm)
	if res.Posteriors[0][1] != 1 {
		t.Fatalf("unanimous wrong: %v", res.Posteriors[0])
	}
	if res.Posteriors[1][0] != 1 {
		t.Fatalf("majority wrong: %v", res.Posteriors[1])
	}
	for _, p := range res.Posteriors[2] {
		if math.Abs(p-1.0/3.0) > 1e-9 {
			t.Fatalf("no-vote posterior not uniform: %v", res.Posteriors[2])
		}
	}
}

func TestMajorityVoteTieSplit(t *testing.T) {
	vm := NewVoteMatrix(2, []string{"a", "b"}, 1)
	vm.Votes[0] = []int{0, 1}
	res := MajorityVote(vm)
	if math.Abs(res.Posteriors[0][0]-0.5) > 1e-9 {
		t.Fatalf("tie not split: %v", res.Posteriors[0])
	}
}

func TestAccuracyModelRecoversSourceAccuracies(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trueAccs := []float64{0.9, 0.75, 0.6}
	covs := []float64{0.9, 0.8, 0.7}
	vm, _ := synthVotes(rng, 4000, 4, trueAccs, covs, uniformBalance(4))
	res := AccuracyModel(vm, Config{})
	if !res.Converged {
		t.Fatalf("EM did not converge in %d iters", res.Iterations)
	}
	for i, name := range vm.Sources {
		got := res.SourceAccuracy[name]
		if math.Abs(got-trueAccs[i]) > 0.05 {
			t.Errorf("source %s: estimated accuracy %.3f, true %.3f", name, got, trueAccs[i])
		}
	}
}

func TestAccuracyModelBeatsMajorityVote(t *testing.T) {
	// Heterogeneous sources: one strong, several weak. Weighted combination
	// must beat unweighted voting — the core data-programming claim.
	rng := rand.New(rand.NewSource(7))
	accs := []float64{0.95, 0.55, 0.55, 0.55}
	covs := []float64{0.9, 0.9, 0.9, 0.9}
	vm, truth := synthVotes(rng, 3000, 3, accs, covs, uniformBalance(3))
	mv := accuracyOf(MajorityVote(vm).Posteriors, truth)
	am := accuracyOf(AccuracyModel(vm, Config{}).Posteriors, truth)
	if am <= mv {
		t.Fatalf("accuracy model %.4f not better than majority vote %.4f", am, mv)
	}
	if am < 0.9 {
		t.Fatalf("accuracy model too weak: %.4f", am)
	}
}

func TestAccuracyModelSkewedBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	balance := []float64{0.7, 0.2, 0.1}
	vm, _ := synthVotes(rng, 5000, 3, []float64{0.85, 0.8}, []float64{1, 1}, balance)
	res := AccuracyModel(vm, Config{})
	for k, b := range balance {
		if math.Abs(res.ClassBalance[k]-b) > 0.06 {
			t.Errorf("class %d balance %.3f want %.3f", k, res.ClassBalance[k], b)
		}
	}
}

func TestDawidSkeneRecoversConfusion(t *testing.T) {
	// A source that systematically confuses class 1 -> 2 but is otherwise
	// reliable; with three conditionally independent sources (two symmetric
	// plus the confused one) Dawid-Skene is identifiable and should find
	// the asymmetry.
	rng := rand.New(rand.NewSource(13))
	n := 4000
	vm := NewVoteMatrix(3, []string{"good1", "good2", "confused"}, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		y := rng.Intn(3)
		truth[i] = y
		// good1/good2: 85% accurate symmetric.
		for s := 0; s < 2; s++ {
			if rng.Float64() < 0.85 {
				vm.Votes[i][s] = y
			} else {
				vm.Votes[i][s] = (y + 1 + rng.Intn(2)) % 3
			}
		}
		// confused: class 1 reported as 2 with 70% probability.
		if y == 1 && rng.Float64() < 0.7 {
			vm.Votes[i][2] = 2
		} else {
			vm.Votes[i][2] = y
		}
	}
	res := DawidSkene(vm, Config{})
	conf := res.Confusion["confused"]
	if conf == nil {
		t.Fatalf("no confusion matrix")
	}
	if conf[1][2] < 0.55 {
		t.Errorf("confusion 1->2 = %.3f, want > 0.55", conf[1][2])
	}
	if conf[0][0] < 0.9 {
		t.Errorf("confusion 0->0 = %.3f, want > 0.9", conf[0][0])
	}
	// Posterior quality should beat majority vote on this asymmetric noise.
	mv := accuracyOf(MajorityVote(vm).Posteriors, truth)
	ds := accuracyOf(res.Posteriors, truth)
	if ds < mv-0.01 {
		t.Errorf("Dawid-Skene %.4f worse than majority %.4f", ds, mv)
	}
}

func TestSelectModelRecoversAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 3000
	sv := &SelectVotes{
		// Three sources so the accuracy parameters are identifiable.
		Sources: []string{"strong", "mid", "weak"},
		Counts:  make([]int, n),
		Votes:   make([][]int, n),
	}
	trueAcc := []float64{0.9, 0.7, 0.6}
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := 2 + rng.Intn(4) // 2..5 candidates
		sv.Counts[i] = c
		y := rng.Intn(c)
		truth[i] = y
		row := make([]int, 3)
		for s := range row {
			if rng.Float64() < trueAcc[s] {
				row[s] = y
			} else {
				wrong := rng.Intn(c - 1)
				if wrong >= y {
					wrong++
				}
				row[s] = wrong
			}
		}
		sv.Votes[i] = row
	}
	res := SelectModel(sv, Config{})
	if math.Abs(res.SourceAccuracy["strong"]-0.9) > 0.05 {
		t.Errorf("strong accuracy %.3f", res.SourceAccuracy["strong"])
	}
	if math.Abs(res.SourceAccuracy["weak"]-0.6) > 0.07 {
		t.Errorf("weak accuracy %.3f", res.SourceAccuracy["weak"])
	}
	// Posterior argmax should track the strong source.
	var correct int
	for i, p := range res.Posteriors {
		best, bv := 0, -1.0
		for c, v := range p {
			if v > bv {
				best, bv = c, v
			}
		}
		if best == truth[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.85 {
		t.Errorf("select posterior accuracy %.3f", acc)
	}
}

func TestSelectModelEmptyCandidates(t *testing.T) {
	sv := &SelectVotes{
		Sources: []string{"a"},
		Counts:  []int{0, 2},
		Votes:   [][]int{{Abstain}, {1}},
	}
	res := SelectModel(sv, Config{})
	if res.Posteriors[0] != nil {
		t.Fatalf("empty candidate set should have nil posterior")
	}
	if res.Posteriors[1][1] < 0.5 {
		t.Fatalf("vote ignored: %v", res.Posteriors[1])
	}
}

func TestRebalanceWeights(t *testing.T) {
	// Two classes, 80/20 balance: minority items get larger weights.
	post := [][]float64{{1, 0}, {1, 0}, {1, 0}, {1, 0}, {0, 1}}
	balance := []float64{0.8, 0.2}
	w := RebalanceWeights(post, balance)
	if w[4] <= w[0] {
		t.Fatalf("minority weight %.3f not larger than majority %.3f", w[4], w[0])
	}
	// Mean 1.
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum/float64(len(w))-1) > 1e-9 {
		t.Fatalf("weights not mean-1: %v", w)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vm, _ := synthVotes(rng, 500, 3, []float64{0.8, 0.7}, []float64{0.9, 0.9}, uniformBalance(3))
	r1 := AccuracyModel(vm, Config{})
	r2 := AccuracyModel(vm, Config{})
	for i := range r1.Posteriors {
		for k := range r1.Posteriors[i] {
			if r1.Posteriors[i][k] != r2.Posteriors[i][k] {
				t.Fatalf("EM not deterministic")
			}
		}
	}
}

// Property: posteriors are valid distributions for random vote matrices.
func TestPosteriorsAreDistributionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		s := 1 + rng.Intn(4)
		accs := make([]float64, s)
		covs := make([]float64, s)
		for i := range accs {
			accs[i] = 0.5 + rng.Float64()*0.45
			covs[i] = rng.Float64()
		}
		vm, _ := synthVotes(rng, 50, k, accs, covs, uniformBalance(k))
		for _, est := range []func() [][]float64{
			func() [][]float64 { return MajorityVote(vm).Posteriors },
			func() [][]float64 { return AccuracyModel(vm, Config{MaxIter: 20}).Posteriors },
			func() [][]float64 { return DawidSkene(vm, Config{MaxIter: 10}).Posteriors },
		} {
			for _, p := range est() {
				var sum float64
				for _, v := range p {
					if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
						return false
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: a unanimous non-abstaining vote wins the posterior argmax.
func TestUnanimousVoteWinsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		vm := NewVoteMatrix(k, []string{"a", "b", "c"}, 30)
		target := make([]int, 30)
		for i := range vm.Votes {
			y := rng.Intn(k)
			target[i] = y
			for s := range vm.Votes[i] {
				vm.Votes[i][s] = y
			}
		}
		res := AccuracyModel(vm, Config{MaxIter: 30})
		for i, p := range res.Posteriors {
			best, bv := 0, -1.0
			for c, v := range p {
				if v > bv {
					best, bv = c, v
				}
			}
			if best != target[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccuracyModelEM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vm, _ := synthVotes(rng, 2000, 5, []float64{0.9, 0.8, 0.7, 0.6}, []float64{0.9, 0.8, 0.7, 0.6}, uniformBalance(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AccuracyModel(vm, Config{})
	}
}
