package labelmodel

import (
	"fmt"

	"repro/internal/record"
	"repro/internal/schema"
)

// Estimator selects the combination algorithm.
type Estimator string

// Estimators.
const (
	EstMajority   Estimator = "majority"
	EstAccuracy   Estimator = "accuracy"
	EstDawidSkene Estimator = "dawid-skene"
)

// CombineConfig controls supervision combination for one task.
type CombineConfig struct {
	Estimator Estimator // default EstAccuracy
	EM        Config
	// Rebalance applies automatic class rebalancing weights (multiclass
	// tasks only).
	Rebalance bool
}

func (c CombineConfig) withDefaults() CombineConfig {
	if c.Estimator == "" {
		c.Estimator = EstAccuracy
	}
	return c
}

// TaskTargets is the label model's output for one task over a record list:
// probabilistic targets plus per-unit weights that the noise-aware trainer
// consumes directly. Records and units align with the input record order:
// per-example and select tasks have one unit per record; per-token tasks
// have one unit per token.
type TaskTargets struct {
	Task string
	Gran schema.Granularity
	// Dist[i][u] is the target distribution for unit u of record i: over
	// task classes for multiclass, per-bit on-probabilities for bitvector,
	// over candidates for select. nil when the record has no units.
	Dist [][][]float64
	// Weight[i][u] is the training weight of the unit; 0 means no
	// supervision (the unit is skipped by the loss).
	Weight [][]float64

	SourceAccuracy map[string]float64
	SourceCoverage map[string]float64
	ClassBalance   []float64
	Iterations     int
	Converged      bool
}

// SupervisedUnits counts units with positive weight.
func (t *TaskTargets) SupervisedUnits() int {
	var n int
	for _, ws := range t.Weight {
		for _, w := range ws {
			if w > 0 {
				n++
			}
		}
	}
	return n
}

// Combine runs the label model for task taskName over recs. Gold labels are
// always excluded; they exist only for evaluation.
func Combine(recs []*record.Record, sch *schema.Schema, taskName string, cfg CombineConfig) (*TaskTargets, error) {
	cfg = cfg.withDefaults()
	t, ok := sch.Tasks[taskName]
	if !ok {
		return nil, fmt.Errorf("labelmodel: task %q not in schema", taskName)
	}
	sources := taskSources(recs, taskName)
	gran := sch.Granularity(t)
	switch t.Type {
	case schema.Multiclass:
		return combineMulticlass(recs, sch, t, gran, sources, cfg)
	case schema.Bitvector:
		return combineBitvector(recs, sch, t, gran, sources, cfg)
	case schema.Select:
		return combineSelect(recs, t, sources, cfg)
	}
	return nil, fmt.Errorf("labelmodel: unsupported task type %q", t.Type)
}

// taskSources lists the non-gold sources that label taskName anywhere in
// recs, sorted for determinism.
func taskSources(recs []*record.Record, taskName string) []string {
	seen := map[string]bool{}
	for _, r := range recs {
		for src := range r.Tasks[taskName] {
			if src != record.GoldSource {
				seen[src] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// unitRef locates one prediction unit back in the record list.
type unitRef struct {
	rec  int
	unit int
}

func combineMulticlass(recs []*record.Record, sch *schema.Schema, t *schema.Task, gran schema.Granularity, sources []string, cfg CombineConfig) (*TaskTargets, error) {
	K := len(t.Classes)
	var refs []unitRef
	unitsPerRec := make([]int, len(recs))
	for i, r := range recs {
		n := 1
		if gran == schema.PerToken {
			pv := r.Payloads[t.Payload]
			n = len(pv.Tokens)
		}
		unitsPerRec[i] = n
		for u := 0; u < n; u++ {
			refs = append(refs, unitRef{rec: i, unit: u})
		}
	}
	vm := NewVoteMatrix(K, sources, len(refs))
	for idx, ref := range refs {
		r := recs[ref.rec]
		for s, src := range sources {
			l, ok := r.Label(t.Name, src)
			if !ok {
				continue
			}
			switch gran {
			case schema.PerExample:
				if ci := t.ClassIndex(l.Class); ci >= 0 {
					vm.Votes[idx][s] = ci
				}
			case schema.PerToken:
				if ref.unit < len(l.Seq) {
					if c := l.Seq[ref.unit]; c != "" {
						if ci := t.ClassIndex(c); ci >= 0 {
							vm.Votes[idx][s] = ci
						}
					}
				}
			}
		}
	}
	res := runEstimator(vm, cfg)
	weights := flatWeights(vm)
	if cfg.Rebalance {
		applyRebalance(weights, res.Posteriors, res.ClassBalance)
	}
	out := newTargets(t.Name, gran, unitsPerRec, K)
	for idx, ref := range refs {
		out.Dist[ref.rec][ref.unit] = res.Posteriors[idx]
		out.Weight[ref.rec][ref.unit] = weights[idx]
	}
	out.SourceAccuracy = res.SourceAccuracy
	out.SourceCoverage = vm.Coverage()
	out.ClassBalance = res.ClassBalance
	out.Iterations = res.Iterations
	out.Converged = res.Converged
	return out, nil
}

func combineBitvector(recs []*record.Record, sch *schema.Schema, t *schema.Task, gran schema.Granularity, sources []string, cfg CombineConfig) (*TaskTargets, error) {
	C := len(t.Classes)
	var refs []unitRef
	unitsPerRec := make([]int, len(recs))
	for i, r := range recs {
		n := 1
		if gran == schema.PerToken {
			n = len(r.Payloads[t.Payload].Tokens)
		}
		unitsPerRec[i] = n
		for u := 0; u < n; u++ {
			refs = append(refs, unitRef{rec: i, unit: u})
		}
	}
	// One binary vote matrix per bit; a source abstains on a unit when it
	// did not label that unit at all (absent row), and votes 0/1 otherwise.
	out := newTargets(t.Name, gran, unitsPerRec, C)
	accSum := make(map[string]float64, len(sources))
	covSum := make(map[string]float64, len(sources))
	balance := make([]float64, C)
	anyVote := make([]bool, len(refs))
	var iters int
	converged := true
	// One flat backing array serves every unit's per-bit distribution; the
	// vote matrix is reused (reset) across bits.
	distFlat := make([]float64, len(refs)*C)
	vm := NewVoteMatrix(2, sources, len(refs))
	for b := 0; b < C; b++ {
		if b > 0 {
			vm.ResetAbstain()
		}
		for idx, ref := range refs {
			r := recs[ref.rec]
			for s, src := range sources {
				l, ok := r.Label(t.Name, src)
				if !ok || l.Kind != record.KindBits || ref.unit >= len(l.Bits) {
					continue
				}
				anyVote[idx] = true
				vote := 0
				for _, bit := range l.Bits[ref.unit] {
					if bit == t.Classes[b] {
						vote = 1
						break
					}
				}
				vm.Votes[idx][s] = vote
			}
		}
		res := runEstimator(vm, cfg)
		for idx, ref := range refs {
			if out.Dist[ref.rec][ref.unit] == nil {
				out.Dist[ref.rec][ref.unit] = distFlat[idx*C : (idx+1)*C : (idx+1)*C]
			}
			out.Dist[ref.rec][ref.unit][b] = res.Posteriors[idx][1]
		}
		for src, a := range res.SourceAccuracy {
			accSum[src] += a
		}
		for src, c := range vm.Coverage() {
			covSum[src] += c
		}
		balance[b] = res.ClassBalance[1]
		iters += res.Iterations
		converged = converged && res.Converged
	}
	for idx, ref := range refs {
		if anyVote[idx] {
			out.Weight[ref.rec][ref.unit] = 1
		} else {
			out.Weight[ref.rec][ref.unit] = 0
			out.Dist[ref.rec][ref.unit] = nil
		}
	}
	out.SourceAccuracy = make(map[string]float64, len(sources))
	out.SourceCoverage = make(map[string]float64, len(sources))
	for _, s := range sources {
		out.SourceAccuracy[s] = accSum[s] / float64(C)
		out.SourceCoverage[s] = covSum[s] / float64(C)
	}
	out.ClassBalance = balance
	out.Iterations = iters
	out.Converged = converged
	return out, nil
}

func combineSelect(recs []*record.Record, t *schema.Task, sources []string, cfg CombineConfig) (*TaskTargets, error) {
	sv := &SelectVotes{
		Sources: sources,
		Counts:  make([]int, len(recs)),
		Votes:   make([][]int, len(recs)),
	}
	for i, r := range recs {
		pv := r.Payloads[t.Payload]
		sv.Counts[i] = len(pv.Set)
		row := make([]int, len(sources))
		for s := range row {
			row[s] = Abstain
		}
		for s, src := range sources {
			if l, ok := r.Label(t.Name, src); ok && l.Kind == record.KindSelect {
				if l.Select >= 0 && l.Select < sv.Counts[i] {
					row[s] = l.Select
				}
			}
		}
		sv.Votes[i] = row
	}
	res := SelectModel(sv, cfg.EM)
	unitsPerRec := make([]int, len(recs))
	for i := range unitsPerRec {
		unitsPerRec[i] = 1
	}
	out := newTargets(t.Name, schema.PerSet, unitsPerRec, 0)
	cov := make(map[string]float64, len(sources))
	for i := range recs {
		hasVote := false
		for _, v := range sv.Votes[i] {
			if v != Abstain {
				hasVote = true
				break
			}
		}
		if hasVote && res.Posteriors[i] != nil {
			out.Dist[i][0] = res.Posteriors[i]
			out.Weight[i][0] = 1
		}
	}
	if n := float64(len(recs)); n > 0 {
		for s, src := range sources {
			var c float64
			for i := range recs {
				if sv.Votes[i][s] != Abstain {
					c++
				}
			}
			cov[src] = c / n
		}
	}
	out.SourceAccuracy = res.SourceAccuracy
	out.SourceCoverage = cov
	out.Iterations = res.Iterations
	out.Converged = res.Converged
	return out, nil
}

func runEstimator(vm *VoteMatrix, cfg CombineConfig) *Result {
	switch cfg.Estimator {
	case EstMajority:
		return MajorityVote(vm)
	case EstDawidSkene:
		return DawidSkene(vm, cfg.EM)
	default:
		return AccuracyModel(vm, cfg.EM)
	}
}

// flatWeights returns 1 for items with at least one vote, else 0.
func flatWeights(vm *VoteMatrix) []float64 {
	w := make([]float64, len(vm.Votes))
	for i, row := range vm.Votes {
		for _, v := range row {
			if v != Abstain {
				w[i] = 1
				break
			}
		}
	}
	return w
}

// applyRebalance multiplies supervised-item weights by rebalancing factors.
func applyRebalance(weights []float64, posteriors [][]float64, balance []float64) {
	var idxs []int
	var supPost [][]float64
	for i, w := range weights {
		if w > 0 {
			idxs = append(idxs, i)
			supPost = append(supPost, posteriors[i])
		}
	}
	if len(idxs) == 0 {
		return
	}
	rw := RebalanceWeights(supPost, balance)
	for j, i := range idxs {
		weights[i] *= rw[j]
	}
}

func newTargets(task string, gran schema.Granularity, unitsPerRec []int, k int) *TaskTargets {
	t := &TaskTargets{
		Task:   task,
		Gran:   gran,
		Dist:   make([][][]float64, len(unitsPerRec)),
		Weight: make([][]float64, len(unitsPerRec)),
	}
	// Per-record rows are views into two flat backing arrays: four
	// allocations total instead of two per record.
	var total int
	for _, n := range unitsPerRec {
		total += n
	}
	distFlat := make([][]float64, total)
	weightFlat := make([]float64, total)
	off := 0
	for i, n := range unitsPerRec {
		t.Dist[i] = distFlat[off : off+n : off+n]
		t.Weight[i] = weightFlat[off : off+n : off+n]
		off += n
	}
	_ = k
	return t
}
