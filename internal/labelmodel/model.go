// Package labelmodel combines weak supervision from many conflicting,
// incomplete sources into probabilistic training labels, following the data
// programming line of work (Snorkel, Ratner et al. 2016; Snorkel DryBell,
// Bach et al. 2019) that Overton builds on: estimate each source's accuracy
// without ground truth, then compute a per-item posterior over the true
// label that downstream noise-aware losses consume.
//
// Three estimators are provided:
//
//   - MajorityVote: the standard baseline; ties split uniformly.
//   - AccuracyModel: one accuracy parameter per source with symmetric error,
//     estimated by EM (the workhorse; robust for small source counts).
//   - DawidSkene: full per-source confusion matrices estimated by EM
//     (Dawid & Skene 1979), for sources with class-dependent error.
//
// Abstention is first-class: a source that does not label an item simply
// contributes nothing to that item's posterior.
package labelmodel

import (
	"fmt"
	"math"
)

// Abstain marks a source casting no vote on an item.
const Abstain = -1

// VoteMatrix holds the votes of S sources over N items for a K-class task.
type VoteMatrix struct {
	K       int
	Sources []string
	Votes   [][]int // [item][source]; Abstain or 0..K-1
}

// NewVoteMatrix allocates an all-abstain matrix. Rows share one flat
// backing array, so construction is two allocations regardless of size.
func NewVoteMatrix(k int, sources []string, items int) *VoteMatrix {
	v := &VoteMatrix{K: k, Sources: sources, Votes: make([][]int, items)}
	S := len(sources)
	flat := make([]int, items*S)
	for i := range flat {
		flat[i] = Abstain
	}
	for i := range v.Votes {
		v.Votes[i] = flat[i*S : (i+1)*S : (i+1)*S]
	}
	return v
}

// ResetAbstain sets every vote back to Abstain so the matrix can be
// refilled (combineBitvector reuses one matrix across bits).
func (v *VoteMatrix) ResetAbstain() {
	for _, row := range v.Votes {
		for j := range row {
			row[j] = Abstain
		}
	}
}

// flatRows allocates n rows of width k sharing one backing array.
func flatRows(n, k int) [][]float64 {
	rows := make([][]float64, n)
	flat := make([]float64, n*k)
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}

// Validate checks vote ranges.
func (v *VoteMatrix) Validate() error {
	if v.K < 2 {
		return fmt.Errorf("labelmodel: need K >= 2, got %d", v.K)
	}
	for i, row := range v.Votes {
		if len(row) != len(v.Sources) {
			return fmt.Errorf("labelmodel: item %d has %d votes, want %d", i, len(row), len(v.Sources))
		}
		for s, vote := range row {
			if vote != Abstain && (vote < 0 || vote >= v.K) {
				return fmt.Errorf("labelmodel: item %d source %s: vote %d out of range", i, v.Sources[s], vote)
			}
		}
	}
	return nil
}

// Coverage returns, per source, the fraction of items it votes on.
func (v *VoteMatrix) Coverage() map[string]float64 {
	out := make(map[string]float64, len(v.Sources))
	if len(v.Votes) == 0 {
		for _, s := range v.Sources {
			out[s] = 0
		}
		return out
	}
	for s, name := range v.Sources {
		var n int
		for _, row := range v.Votes {
			if row[s] != Abstain {
				n++
			}
		}
		out[name] = float64(n) / float64(len(v.Votes))
	}
	return out
}

// Result is the output of an estimator.
type Result struct {
	// Posteriors[i][k] = P(true label of item i is k | votes).
	Posteriors [][]float64
	// SourceAccuracy is the estimated per-source accuracy (probability the
	// source is correct given it votes). For DawidSkene it is the average
	// diagonal of the confusion matrix weighted by the class balance.
	SourceAccuracy map[string]float64
	// Confusion, for DawidSkene, maps source -> K x K confusion matrix
	// (rows: true class, cols: emitted vote). Nil for other estimators.
	Confusion map[string][][]float64
	// ClassBalance is the estimated prior over classes.
	ClassBalance []float64
	// Iterations EM ran for, and whether it converged before MaxIter.
	Iterations int
	Converged  bool
}

// Config controls the EM estimators.
type Config struct {
	MaxIter   int     // default 100
	Tol       float64 // parameter-change convergence threshold, default 1e-6
	Smoothing float64 // pseudo-count, default 1.0
	// InitAccuracy seeds the accuracy parameters, default 0.7 (sources
	// assumed better than chance, the standard data-programming assumption).
	InitAccuracy float64
}

func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.Smoothing <= 0 {
		c.Smoothing = 1.0
	}
	if c.InitAccuracy <= 0 || c.InitAccuracy >= 1 {
		c.InitAccuracy = 0.7
	}
	return c
}

// MajorityVote returns per-item posteriors by unweighted voting. Items with
// no votes get a uniform posterior.
func MajorityVote(v *VoteMatrix) *Result {
	return majorityVoteWeighted(v, nil)
}

// majorityVoteWeighted is MajorityVote over weighted items: item i counts as
// weights[i] copies (nil weights = all ones). The per-item posterior is
// weight-independent; weights enter the class balance and the per-source
// agreement aggregates, which is exactly what the incremental label model's
// deduplicated vote patterns need.
func majorityVoteWeighted(v *VoteMatrix, weights []float64) *Result {
	res := &Result{
		Posteriors:     flatRows(len(v.Votes), v.K),
		SourceAccuracy: make(map[string]float64, len(v.Sources)),
		ClassBalance:   make([]float64, v.K),
	}
	counts := make([]float64, v.K)
	var totalW float64
	for i, row := range v.Votes {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		totalW += w
		for k := range counts {
			counts[k] = 0
		}
		var total float64
		for _, vote := range row {
			if vote != Abstain {
				counts[vote]++
				total++
			}
		}
		post := res.Posteriors[i]
		if total == 0 {
			for k := range post {
				post[k] = 1 / float64(v.K)
			}
		} else {
			// Probability mass on the argmax set (ties split evenly).
			maxc := 0.0
			for _, c := range counts {
				if c > maxc {
					maxc = c
				}
			}
			var ties int
			for _, c := range counts {
				if c == maxc {
					ties++
				}
			}
			for k, c := range counts {
				if c == maxc {
					post[k] = 1 / float64(ties)
				}
			}
		}
		for k, p := range post {
			res.ClassBalance[k] += w * p
		}
	}
	if totalW > 0 {
		for k := range res.ClassBalance {
			res.ClassBalance[k] /= totalW
		}
	}
	// Report empirical agreement with the majority as a crude accuracy.
	for s, name := range v.Sources {
		var agree, votes float64
		for i, row := range v.Votes {
			if row[s] == Abstain {
				continue
			}
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			votes += w
			agree += w * res.Posteriors[i][row[s]]
		}
		if votes > 0 {
			res.SourceAccuracy[name] = agree / votes
		}
	}
	return res
}

// AccuracyModel runs EM with one accuracy parameter per source and symmetric
// errors: P(vote = y | true = y) = a_s, P(vote = k != y | true = y) =
// (1 - a_s)/(K - 1).
func AccuracyModel(v *VoteMatrix, cfg Config) *Result {
	return accuracyModelWeighted(v, nil, cfg)
}

// accuracyModelWeighted is AccuracyModel over weighted items: item i counts
// as weights[i] identical copies (nil = all ones). In exact arithmetic the
// weighted run over deduplicated vote patterns produces the same EM iterates
// as the unweighted run over the expanded item list — the pattern counts are
// sufficient statistics for this model — so the incremental label model can
// accumulate a stream in O(unique patterns) and still match a full rebuild.
func accuracyModelWeighted(v *VoteMatrix, weights []float64, cfg Config) *Result {
	cfg = cfg.withDefaults()
	N, S, K := len(v.Votes), len(v.Sources), v.K
	acc := make([]float64, S)
	for s := range acc {
		acc[s] = cfg.InitAccuracy
	}
	prior := make([]float64, K)
	for k := range prior {
		prior[k] = 1 / float64(K)
	}
	post := flatRows(N, K)
	res := &Result{SourceAccuracy: make(map[string]float64, S)}
	logK1 := math.Max(float64(K-1), 1)

	// Scratch reused across iterations: the per-source log-likelihood terms
	// are functions of the parameters only, so they are computed once per
	// E-step instead of once per (item, source) pair.
	logPrior := make([]float64, K)
	la := make([]float64, S) // log P(vote == true)
	le := make([]float64, S) // log P(vote == some other class)
	newAcc := make([]float64, S)
	newPrior := make([]float64, K)
	num := make([]float64, S)
	den := make([]float64, S)

	eStep := func() {
		for k := 0; k < K; k++ {
			logPrior[k] = math.Log(prior[k] + 1e-12)
		}
		for s := 0; s < S; s++ {
			la[s] = math.Log(acc[s] + 1e-12)
			le[s] = math.Log((1-acc[s])/logK1 + 1e-12)
		}
		for i, row := range v.Votes {
			lp := post[i]
			copy(lp, logPrior)
			for s, vote := range row {
				if vote == Abstain {
					continue
				}
				for k := 0; k < K; k++ {
					if k == vote {
						lp[k] += la[s]
					} else {
						lp[k] += le[s]
					}
				}
			}
			logNormalize(lp)
		}
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		eStep()
		// M-step: one pass over the vote matrix accumulates every source.
		for s := 0; s < S; s++ {
			num[s] = cfg.Smoothing * cfg.InitAccuracy
			den[s] = cfg.Smoothing
		}
		for i, row := range v.Votes {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			lp := post[i]
			for s, vote := range row {
				if vote == Abstain {
					continue
				}
				num[s] += w * lp[vote]
				den[s] += w
			}
		}
		for s := 0; s < S; s++ {
			newAcc[s] = clampProb(num[s] / den[s])
		}
		for k := range newPrior {
			newPrior[k] = 0
		}
		for i := range post {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			for k, p := range post[i] {
				newPrior[k] += w * p
			}
		}
		var z float64
		for k := range newPrior {
			newPrior[k] += cfg.Smoothing
			z += newPrior[k]
		}
		for k := range newPrior {
			newPrior[k] /= z
		}
		// Convergence on parameter change.
		var delta float64
		for s := range acc {
			delta = math.Max(delta, math.Abs(acc[s]-newAcc[s]))
		}
		for k := range prior {
			delta = math.Max(delta, math.Abs(prior[k]-newPrior[k]))
		}
		copy(acc, newAcc)
		copy(prior, newPrior)
		res.Iterations = iter + 1
		if delta < cfg.Tol {
			res.Converged = true
			break
		}
	}
	// Final E-step with converged parameters.
	eStep()
	res.Posteriors = post
	res.ClassBalance = prior
	for s, name := range v.Sources {
		res.SourceAccuracy[name] = acc[s]
	}
	return res
}

// DawidSkene runs EM with full per-source confusion matrices.
func DawidSkene(v *VoteMatrix, cfg Config) *Result {
	cfg = cfg.withDefaults()
	N, S, K := len(v.Votes), len(v.Sources), v.K
	// Initialise posteriors from majority vote; confusion from them.
	post := MajorityVote(v).Posteriors
	conf := make([][][]float64, S) // [source][true][vote]
	prior := make([]float64, K)
	res := &Result{
		SourceAccuracy: make(map[string]float64, S),
		Confusion:      make(map[string][][]float64, S),
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// M-step from current posteriors.
		newConf := make([][][]float64, S)
		for s := 0; s < S; s++ {
			m := make([][]float64, K)
			for y := 0; y < K; y++ {
				m[y] = make([]float64, K)
				for vv := 0; vv < K; vv++ {
					m[y][vv] = cfg.Smoothing / float64(K)
					if y == vv {
						// Bias the smoothing toward the diagonal so the
						// better-than-chance assumption breaks symmetry.
						m[y][vv] = cfg.Smoothing * cfg.InitAccuracy
					}
				}
			}
			for i, row := range v.Votes {
				if row[s] == Abstain {
					continue
				}
				for y := 0; y < K; y++ {
					m[y][row[s]] += post[i][y]
				}
			}
			for y := 0; y < K; y++ {
				var z float64
				for vv := 0; vv < K; vv++ {
					z += m[y][vv]
				}
				for vv := 0; vv < K; vv++ {
					m[y][vv] /= z
				}
			}
			newConf[s] = m
		}
		newPrior := make([]float64, K)
		for i := range post {
			for k, p := range post[i] {
				newPrior[k] += p
			}
		}
		var z float64
		for k := range newPrior {
			newPrior[k] += cfg.Smoothing
			z += newPrior[k]
		}
		for k := range newPrior {
			newPrior[k] /= z
		}
		// Convergence check on parameters.
		var delta float64
		if conf[0] != nil {
			for s := range conf {
				for y := 0; y < K; y++ {
					for vv := 0; vv < K; vv++ {
						delta = math.Max(delta, math.Abs(conf[s][y][vv]-newConf[s][y][vv]))
					}
				}
			}
		} else {
			delta = 1
		}
		conf, prior = newConf, newPrior
		// E-step.
		for i, row := range v.Votes {
			lp := make([]float64, K)
			for k := 0; k < K; k++ {
				lp[k] = math.Log(prior[k] + 1e-12)
			}
			for s, vote := range row {
				if vote == Abstain {
					continue
				}
				for k := 0; k < K; k++ {
					lp[k] += math.Log(conf[s][k][vote] + 1e-12)
				}
			}
			logNormalize(lp)
			post[i] = lp
		}
		res.Iterations = iter + 1
		if delta < cfg.Tol {
			res.Converged = true
			break
		}
	}
	res.Posteriors = post
	res.ClassBalance = prior
	_ = N
	for s, name := range v.Sources {
		res.Confusion[name] = conf[s]
		var a float64
		for y := 0; y < K; y++ {
			a += prior[y] * conf[s][y][y]
		}
		res.SourceAccuracy[name] = a
	}
	return res
}

// SelectVotes holds votes for a `select` task: each item has its own number
// of candidates; a vote is a candidate index.
type SelectVotes struct {
	Sources []string
	Counts  []int   // candidates per item
	Votes   [][]int // [item][source]; Abstain or 0..Counts[i]-1
}

// SelectResult is the output of the select-task estimator.
type SelectResult struct {
	Posteriors     [][]float64 // [item][candidate]
	SourceAccuracy map[string]float64
	Iterations     int
	Converged      bool
}

// SelectModel runs accuracy-parameter EM for select tasks, where the label
// space is per-item (the candidate set). Error mass is spread uniformly over
// the other candidates of that item; the prior over candidates is uniform
// (candidate features are the model's job, not the label model's). The
// returned posteriors come from a final E-step with the converged
// accuracies, matching AccuracyModel's contract.
func SelectModel(v *SelectVotes, cfg Config) *SelectResult {
	return selectModelWeighted(v, nil, cfg)
}

// selectModelWeighted is SelectModel over weighted items (nil = all ones);
// see accuracyModelWeighted for why the incremental label model needs it.
func selectModelWeighted(v *SelectVotes, weights []float64, cfg Config) *SelectResult {
	cfg = cfg.withDefaults()
	S := len(v.Sources)
	acc := make([]float64, S)
	for s := range acc {
		acc[s] = cfg.InitAccuracy
	}
	// Posterior rows are carved once from a flat backing array sized by the
	// total candidate count and zeroed in place each E-step.
	maxN, total := 0, 0
	for _, n := range v.Counts {
		if n > 0 {
			total += n
		}
		if n > maxN {
			maxN = n
		}
	}
	post := make([][]float64, len(v.Counts))
	flat := make([]float64, total)
	off := 0
	for i, n := range v.Counts {
		if n > 0 {
			post[i] = flat[off : off+n : off+n]
			off += n
		}
	}
	// Log-likelihood terms depend only on (source, candidate count), so
	// they are tabulated once per iteration: la[s] and le[s*(maxN+1)+n].
	la := make([]float64, S)
	le := make([]float64, S*(maxN+1))
	res := &SelectResult{SourceAccuracy: make(map[string]float64, S)}
	eStep := func() {
		for s := 0; s < S; s++ {
			la[s] = math.Log(acc[s] + 1e-12)
			for n := 1; n <= maxN; n++ {
				le[s*(maxN+1)+n] = math.Log((1-acc[s])/math.Max(float64(n-1), 1) + 1e-12)
			}
		}
		for i, n := range v.Counts {
			if n <= 0 {
				continue
			}
			lp := post[i]
			for c := range lp {
				lp[c] = 0
			}
			for s, vote := range v.Votes[i] {
				if vote == Abstain || vote >= n {
					continue
				}
				les := le[s*(maxN+1)+n]
				for c := 0; c < n; c++ {
					if c == vote {
						lp[c] += la[s]
					} else {
						lp[c] += les
					}
				}
			}
			logNormalize(lp)
		}
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		eStep()
		// M-step.
		var delta float64
		for s := 0; s < S; s++ {
			num := cfg.Smoothing * cfg.InitAccuracy
			den := cfg.Smoothing
			for i := range v.Counts {
				vote := v.Votes[i][s]
				if vote == Abstain || post[i] == nil || vote >= len(post[i]) {
					continue
				}
				w := 1.0
				if weights != nil {
					w = weights[i]
				}
				num += w * post[i][vote]
				den += w
			}
			na := clampProb(num / den)
			delta = math.Max(delta, math.Abs(na-acc[s]))
			acc[s] = na
		}
		res.Iterations = iter + 1
		if delta < cfg.Tol {
			res.Converged = true
			break
		}
	}
	// Final E-step with converged accuracies, so the returned posteriors are
	// a pure function of the final parameters (the incremental label model
	// reconstructs them the same way).
	eStep()
	res.Posteriors = post
	for s, name := range v.Sources {
		res.SourceAccuracy[name] = acc[s]
	}
	return res
}

// RebalanceWeights returns per-item weights that equalise the effective
// class frequencies implied by soft posteriors: weight_i = Σ_k p_i(k) *
// (1/K) / balance_k. This is the automatic class rebalancing Overton applies
// in the loss (Section 2.2). Weights are normalised to mean 1.
func RebalanceWeights(posteriors [][]float64, balance []float64) []float64 {
	K := len(balance)
	w := make([]float64, len(posteriors))
	classW := make([]float64, K)
	for k, b := range balance {
		classW[k] = (1 / float64(K)) / math.Max(b, 1e-3)
	}
	var sum float64
	for i, p := range posteriors {
		var wi float64
		for k, pk := range p {
			wi += pk * classW[k]
		}
		w[i] = wi
		sum += wi
	}
	if sum > 0 {
		mean := sum / float64(len(w))
		for i := range w {
			w[i] /= mean
		}
	}
	return w
}

// logNormalize exponentiates and normalises a log-probability vector in
// place with the max trick.
func logNormalize(lp []float64) {
	maxv := math.Inf(-1)
	for _, v := range lp {
		if v > maxv {
			maxv = v
		}
	}
	var z float64
	for i := range lp {
		lp[i] = math.Exp(lp[i] - maxv)
		z += lp[i]
	}
	if z == 0 {
		for i := range lp {
			lp[i] = 1 / float64(len(lp))
		}
		return
	}
	for i := range lp {
		lp[i] /= z
	}
}

func clampProb(p float64) float64 {
	return math.Min(0.999, math.Max(0.001, p))
}
