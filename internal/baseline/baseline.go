// Package baseline implements the "previous production system" Overton
// replaces in Figure 3: a pipeline of per-task heuristic components (keyword
// intent classifier, rule POS tagger, gazetteer entity typer, popularity
// entity linker). The paper describes such systems as "deep models and
// heuristics that are challenging to maintain... because there is no model
// independence" — each stage is a separate hand-tuned artifact, and an
// error anywhere in the pipeline surfaces downstream, which is exactly the
// diagnostic pain the multi-component-pipelines challenge describes.
//
// The package also provides per-stage error attribution: given gold labels,
// it reports which pipeline stage was the culprit for each wrong end-to-end
// answer.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/record"
	"repro/internal/workload"
)

// Prediction is the pipeline's output for one query.
type Prediction struct {
	Intent string
	Arg    int // candidate index, -1 when no candidates
	POS    []string
	Types  [][]string
}

// Pipeline is the heuristic production stack. Each component mirrors one of
// the weak sources (in production the LFs were born from the old system's
// heuristics, which is the paper's own origin story for weak supervision).
type Pipeline struct {
	intentLF workload.KeywordIntentLF
	tagger   workload.RuleTagger
	typer    workload.GazetteerTyper
	linker   workload.PopularityPrior
	// FallbackIntent is returned when no keyword fires (production systems
	// route to a default answer source).
	FallbackIntent string
}

// New builds the default pipeline.
func New() *Pipeline {
	return &Pipeline{FallbackIntent: workload.IntentPopulation}
}

// Predict runs the pipeline on one example.
func (p *Pipeline) Predict(ex *workload.Example) Prediction {
	pred := Prediction{Arg: -1, Intent: p.FallbackIntent}
	if l, ok := p.intentLF.Label(ex, nil); ok {
		pred.Intent = l.Class
	}
	if l, ok := p.tagger.Label(ex, nil); ok {
		pred.POS = l.Seq
	}
	if l, ok := p.typer.Label(ex, nil); ok {
		pred.Types = l.Bits
	}
	if l, ok := p.linker.Label(ex, nil); ok {
		pred.Arg = l.Select
	}
	return pred
}

// Metrics are per-task baseline accuracies over a workload sample.
type Metrics struct {
	IntentAcc float64
	ArgAcc    float64
	POSAcc    float64 // token accuracy
	TypeAcc   float64 // exact-set token accuracy
	// MeanError is the mean of the four task error rates — the single
	// "product error" number used in the Figure 3 comparison.
	MeanError float64
	N         int
}

// Evaluate scores the pipeline against gold on examples.
func Evaluate(p *Pipeline, examples []*workload.Example) Metrics {
	var m Metrics
	var posCorrect, posTotal, typeCorrect, typeTotal float64
	var intentCorrect, argCorrect float64
	for _, ex := range examples {
		pred := p.Predict(ex)
		if pred.Intent == ex.Intent {
			intentCorrect++
		}
		if pred.Arg == ex.GoldArg {
			argCorrect++
		}
		for i := range ex.POS {
			posTotal++
			if i < len(pred.POS) && pred.POS[i] == ex.POS[i] {
				posCorrect++
			}
		}
		for i := range ex.Types {
			typeTotal++
			if i < len(pred.Types) && sameSet(pred.Types[i], ex.Types[i]) {
				typeCorrect++
			}
		}
	}
	n := float64(len(examples))
	if n == 0 {
		return m
	}
	m.N = len(examples)
	m.IntentAcc = intentCorrect / n
	m.ArgAcc = argCorrect / n
	if posTotal > 0 {
		m.POSAcc = posCorrect / posTotal
	}
	if typeTotal > 0 {
		m.TypeAcc = typeCorrect / typeTotal
	}
	m.MeanError = ((1 - m.IntentAcc) + (1 - m.ArgAcc) + (1 - m.POSAcc) + (1 - m.TypeAcc)) / 4
	return m
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// Stage names for error attribution.
const (
	StageIntent = "intent-classifier"
	StageLinker = "entity-linker"
	StagePOS    = "pos-tagger"
	StageTyper  = "entity-typer"
)

// Attribution counts, per pipeline stage, how many examples that stage got
// wrong — the "which task is the culprit" analysis that is painful in
// pipeline systems (Section 1) and trivial here because we hold gold.
type Attribution map[string]int

// Attribute runs the pipeline and attributes errors to stages.
func Attribute(p *Pipeline, examples []*workload.Example) Attribution {
	att := Attribution{}
	for _, ex := range examples {
		pred := p.Predict(ex)
		if pred.Intent != ex.Intent {
			att[StageIntent]++
		}
		if pred.Arg != ex.GoldArg {
			att[StageLinker]++
		}
		for i := range ex.POS {
			if i >= len(pred.POS) || pred.POS[i] != ex.POS[i] {
				att[StagePOS]++
				break
			}
		}
		for i := range ex.Types {
			if i >= len(pred.Types) || !sameSet(pred.Types[i], ex.Types[i]) {
				att[StageTyper]++
				break
			}
		}
	}
	return att
}

// String renders the attribution sorted by error count (descending).
func (a Attribution) String() string {
	type kv struct {
		stage string
		n     int
	}
	var rows []kv
	for s, n := range a {
		rows = append(rows, kv{s, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].stage < rows[j].stage
	})
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%-20s %d\n", r.stage, r.n)
	}
	return out
}

// SingleTaskVoter is the stronger legacy baseline available to high-resource
// teams: per-task, it takes a majority vote of all heuristic sources plus a
// simulated annotator-trained component of the given accuracy (a stand-in
// for the team's existing single-task supervised models). It still has no
// multitask sharing and no label model.
type SingleTaskVoter struct {
	ModelAcc float64 // accuracy of the per-task supervised component
	Seed     int64
}

// Evaluate scores the single-task voter.
func (s SingleTaskVoter) Evaluate(examples []*workload.Example) Metrics {
	rng := rand.New(rand.NewSource(s.Seed))
	p := New()
	var m Metrics
	var posCorrect, posTotal, typeCorrect, typeTotal float64
	var intentCorrect, argCorrect float64
	for _, ex := range examples {
		pred := p.Predict(ex)
		// The supervised single-task components override the heuristics
		// with probability ModelAcc of being right.
		intent := pred.Intent
		if rng.Float64() < s.ModelAcc {
			intent = ex.Intent
		}
		arg := pred.Arg
		if rng.Float64() < s.ModelAcc {
			arg = ex.GoldArg
		}
		if intent == ex.Intent {
			intentCorrect++
		}
		if arg == ex.GoldArg {
			argCorrect++
		}
		for i := range ex.POS {
			posTotal++
			tag := pred.POS[i]
			if rng.Float64() < s.ModelAcc {
				tag = ex.POS[i]
			}
			if tag == ex.POS[i] {
				posCorrect++
			}
		}
		for i := range ex.Types {
			typeTotal++
			ok := i < len(pred.Types) && sameSet(pred.Types[i], ex.Types[i])
			if rng.Float64() < s.ModelAcc {
				ok = true
			}
			if ok {
				typeCorrect++
			}
		}
	}
	n := float64(len(examples))
	if n == 0 {
		return m
	}
	m.N = len(examples)
	m.IntentAcc = intentCorrect / n
	m.ArgAcc = argCorrect / n
	m.POSAcc = posCorrect / posTotal
	m.TypeAcc = typeCorrect / typeTotal
	m.MeanError = ((1 - m.IntentAcc) + (1 - m.ArgAcc) + (1 - m.POSAcc) + (1 - m.TypeAcc)) / 4
	return m
}

// EvaluateOnRecords scores the pipeline against gold labels carried in
// records (adapter for datasets rather than raw examples).
func EvaluateOnRecords(p *Pipeline, recs []*record.Record) (Metrics, error) {
	examples, err := ExamplesFromRecords(recs)
	if err != nil {
		return Metrics{}, err
	}
	return Evaluate(p, examples), nil
}

// ExamplesFromRecords reconstructs workload examples from records carrying
// gold labels (used to run the pipeline over stored datasets).
func ExamplesFromRecords(recs []*record.Record) ([]*workload.Example, error) {
	var out []*workload.Example
	for _, r := range recs {
		ex := &workload.Example{
			Tokens:     r.Payloads["tokens"].Tokens,
			Candidates: r.Payloads["entities"].Set,
		}
		g, ok := r.Gold(workload.TaskIntent)
		if !ok {
			return nil, fmt.Errorf("baseline: record %s lacks gold intent", r.ID)
		}
		ex.Intent = g.Class
		if g, ok := r.Gold(workload.TaskIntentArg); ok {
			ex.GoldArg = g.Select
		}
		if g, ok := r.Gold(workload.TaskPOS); ok {
			ex.POS = g.Seq
		}
		if g, ok := r.Gold(workload.TaskEntityType); ok {
			ex.Types = g.Bits
		}
		out = append(out, ex)
	}
	return out, nil
}
