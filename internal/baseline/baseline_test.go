package baseline

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func sample(n int, seed int64) []*workload.Example {
	return workload.Generate(workload.GenConfig{Seed: seed, N: n})
}

func TestPipelinePredictShapes(t *testing.T) {
	p := New()
	for _, ex := range sample(50, 1) {
		pred := p.Predict(ex)
		if len(pred.POS) != len(ex.Tokens) {
			t.Fatalf("POS length wrong")
		}
		if len(pred.Types) != len(ex.Tokens) {
			t.Fatalf("Types length wrong")
		}
		if pred.Arg < 0 || pred.Arg >= len(ex.Candidates) {
			t.Fatalf("Arg out of range")
		}
		if pred.Intent == "" {
			t.Fatalf("no intent predicted")
		}
	}
}

func TestPipelineAccuracyBands(t *testing.T) {
	// The heuristic pipeline must be clearly better than chance but leave
	// substantial headroom for Overton (that gap is Figure 3).
	m := Evaluate(New(), sample(2000, 2))
	if m.IntentAcc < 0.6 || m.IntentAcc > 0.97 {
		t.Fatalf("intent accuracy %.3f outside band", m.IntentAcc)
	}
	if m.ArgAcc < 0.5 || m.ArgAcc > 0.97 {
		t.Fatalf("arg accuracy %.3f outside band", m.ArgAcc)
	}
	if m.POSAcc < 0.6 || m.POSAcc > 0.97 {
		t.Fatalf("POS accuracy %.3f outside band", m.POSAcc)
	}
	if m.MeanError < 0.03 || m.MeanError > 0.4 {
		t.Fatalf("mean error %.3f outside band", m.MeanError)
	}
	if m.N != 2000 {
		t.Fatalf("N wrong")
	}
}

func TestPipelineFailsOnPriorBreaking(t *testing.T) {
	p := New()
	examples := sample(1500, 3)
	var pbTotal, pbWrong int
	for _, ex := range examples {
		if !ex.PriorBreaking {
			continue
		}
		pbTotal++
		if p.Predict(ex).Arg != ex.GoldArg {
			pbWrong++
		}
	}
	if pbTotal == 0 {
		t.Fatalf("no prior-breaking examples")
	}
	if pbWrong != pbTotal {
		t.Fatalf("popularity linker should fail on every prior-breaking example: %d/%d", pbWrong, pbTotal)
	}
}

func TestAttribution(t *testing.T) {
	att := Attribute(New(), sample(800, 4))
	// POS stage must show errors (rule tagger defaults entities to NOUN).
	if att[StagePOS] == 0 {
		t.Fatalf("no POS errors attributed")
	}
	if att[StageLinker] == 0 {
		t.Fatalf("no linker errors attributed")
	}
	s := att.String()
	if !strings.Contains(s, StagePOS) || !strings.Contains(s, StageLinker) {
		t.Fatalf("attribution string incomplete: %s", s)
	}
	// Sorted descending.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 2 {
		t.Fatalf("attribution too short")
	}
}

func TestSingleTaskVoterImprovesOnPipeline(t *testing.T) {
	examples := sample(1500, 5)
	plain := Evaluate(New(), examples)
	strong := SingleTaskVoter{ModelAcc: 0.7, Seed: 6}.Evaluate(examples)
	if strong.MeanError >= plain.MeanError {
		t.Fatalf("single-task voter %.4f should beat plain pipeline %.4f", strong.MeanError, plain.MeanError)
	}
}

func TestEvaluateOnRecordsMatchesEvaluate(t *testing.T) {
	examples := sample(300, 7)
	direct := Evaluate(New(), examples)
	var recs []*struct{}
	_ = recs
	ds := workload.BuildDataset(examples, workload.BuildConfig{Seed: 7})
	viaRecords, err := EvaluateOnRecords(New(), ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if diff := direct.MeanError - viaRecords.MeanError; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("record adapter drifts: %.6f vs %.6f", direct.MeanError, viaRecords.MeanError)
	}
}

func TestEmptyEvaluate(t *testing.T) {
	m := Evaluate(New(), nil)
	if m.N != 0 || m.MeanError != 0 {
		t.Fatalf("empty evaluate wrong: %+v", m)
	}
}
