package deploy

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/record"
)

func stubID(i int) string { return fmt.Sprintf("rec-%d", i) }

func stubRecord(i int) *record.Record { return &record.Record{ID: stubID(i)} }

// TestPercentile pins the quantile read on the edge cases: empty window,
// single sample, and the documented sorted-input contract.
func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty window: got %v, want 0", got)
	}
	if got := percentile([]float64{}, 0.99); got != 0 {
		t.Fatalf("empty slice: got %v, want 0", got)
	}
	// A single sample is every percentile.
	for _, p := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := percentile([]float64{7.5}, p); got != 7.5 {
			t.Fatalf("single sample p=%v: got %v, want 7.5", p, got)
		}
	}
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 of 1..10: got %v, want 5", got)
	}
	if got := percentile(sorted, 0); got != 1 {
		t.Fatalf("p0: got %v, want 1", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Fatalf("p100: got %v, want 10", got)
	}
	// Unsorted input violates the contract: the nearest-rank read returns
	// whatever sits at the rank index, NOT the quantile. This pin
	// documents why snapshot() must sort before calling.
	unsorted := []float64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5}
	if got := percentile(unsorted, 0.5); got == 5 {
		t.Fatalf("unsorted input accidentally produced the true median; the contract pin is meaningless")
	}
}

// TestPercentileWindowSizes is the table the ceil-based nearest-rank
// formula is pinned by, across the window sizes the serving plane
// actually sees: a single sample, two samples, a small window, and the
// full 4096-sample ring. The floor variant this replaced under-reported
// every tail: p95 over 10 samples read the 90th percentile and p99 over
// the full ring read the 98.99th — several of these rows fail under it.
func TestPercentileWindowSizes(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"size1 p50", []float64{5}, 0.50, 5},
		{"size1 p99", []float64{5}, 0.99, 5},
		{"size2 p50 lower", seq(2), 0.50, 1},
		{"size2 p95 upper", seq(2), 0.95, 2},
		{"size2 p99 upper", seq(2), 0.99, 2},
		{"size10 p50", seq(10), 0.50, 5},
		{"size10 p90", seq(10), 0.90, 9},
		{"size10 p95 must round up", seq(10), 0.95, 10},
		{"size10 p99", seq(10), 0.99, 10},
		{"size4096 p50", seq(4096), 0.50, 2048},
		{"size4096 p95", seq(4096), 0.95, 3892},
		{"size4096 p99 not 4055", seq(4096), 0.99, 4056},
		{"size4096 p100", seq(4096), 1, 4096},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(n=%d, p=%g) = %g, want %g",
				tc.name, len(tc.sorted), tc.p, got, tc.want)
		}
	}

	// The same table holds through the ring: a fully wrapped ring whose
	// surviving window is exactly 1..4096 must report the same tail.
	l := newLatencyStats()
	for i := 0; i < 1000; i++ {
		l.recordLatency(7) // first epoch, fully evicted below
	}
	for i := 1; i <= maxLatencySamples; i++ {
		l.recordLatency(float64(i))
	}
	var st Stats
	l.snapshot(&st)
	if st.P50Millis != 2048 || st.P95Millis != 3892 || st.P99Millis != 4056 {
		t.Errorf("wrapped ring percentiles = p50 %g p95 %g p99 %g, want 2048/3892/4056",
			st.P50Millis, st.P95Millis, st.P99Millis)
	}
}

// TestLatencyRingWraparound pushes more samples than the ring holds and
// checks the snapshot window stays bounded, drops the oldest samples, and
// keeps counting total requests.
func TestLatencyRingWraparound(t *testing.T) {
	l := newLatencyStats()
	// Fill the whole ring with high values, then wrap with low ones.
	for i := 0; i < maxLatencySamples; i++ {
		l.recordLatency(1000)
	}
	for i := 0; i < maxLatencySamples/2; i++ {
		l.recordLatency(1)
	}
	var st Stats
	l.snapshot(&st)
	if st.Requests != int64(maxLatencySamples+maxLatencySamples/2) {
		t.Fatalf("requests %d", st.Requests)
	}
	if l.n != maxLatencySamples {
		t.Fatalf("ring grew past its window: %d", l.n)
	}
	// Half the window is now 1ms, so the median must be 1, while the tail
	// still sees the surviving 1000ms half.
	if st.P50Millis != 1 {
		t.Fatalf("p50 after wrap: got %v, want 1 (old samples not evicted?)", st.P50Millis)
	}
	if st.P99Millis != 1000 {
		t.Fatalf("p99 after wrap: got %v, want 1000", st.P99Millis)
	}

	// Wrap the rest of the way: the 1000ms epoch must be fully evicted.
	for i := 0; i < maxLatencySamples/2; i++ {
		l.recordLatency(2)
	}
	l.snapshot(&st)
	if st.P99Millis > 2 {
		t.Fatalf("p99 after full wrap: got %v, want <=2", st.P99Millis)
	}
}

// TestServedCountersExcludeClientErrors pins the split the auto-rollback
// policy depends on: client-side rejections (RecordError) raise the public
// request/error counters but never the served counters, so client garbage
// cannot read as a post-promotion model regression.
func TestServedCountersExcludeClientErrors(t *testing.T) {
	l := newLatencyStats()
	l.recordLatency(1)    // served, ok
	l.recordError()       // client rejection
	l.recordServedError() // reached Predict, failed
	var st Stats
	l.snapshot(&st)
	if st.Requests != 3 || st.Errors != 2 {
		t.Fatalf("public counters: %d requests / %d errors, want 3/2", st.Requests, st.Errors)
	}
	served, serr := l.servedCounters()
	if served != 2 || serr != 1 {
		t.Fatalf("served counters: %d/%d, want 2/1", served, serr)
	}
}

// TestRecordBufferWraparound checks overwrite-oldest semantics and
// arrival-order drains across the wrap point, including the per-append
// overwrite count (the drop must be reported to the caller, not swallowed).
func TestRecordBufferWraparound(t *testing.T) {
	b := newRecordBuffer(4)
	for i := 0; i < 6; i++ {
		want := 0
		if i >= 4 {
			want = 1 // window full: this append overwrites the oldest
		}
		if got := b.append(stubRecord(i)); got != want {
			t.Fatalf("append %d overwrote %d, want %d", i, got, want)
		}
	}
	ingested, buffered, dropped := b.stats()
	if ingested != 6 || buffered != 4 || dropped != 2 {
		t.Fatalf("stats after wrap: ingested=%d buffered=%d dropped=%d", ingested, buffered, dropped)
	}
	// A multi-record append across the wrap reports its own drops.
	b2 := newRecordBuffer(4)
	if got := b2.append(stubRecord(0), stubRecord(1), stubRecord(2)); got != 0 {
		t.Fatalf("under-capacity append overwrote %d", got)
	}
	if got := b2.append(stubRecord(3), stubRecord(4), stubRecord(5)); got != 2 {
		t.Fatalf("wrapping append overwrote %d, want 2", got)
	}
	if _, _, dropped := b2.stats(); dropped != 2 {
		t.Fatalf("cumulative dropped %d, want 2", dropped)
	}
	out := b.drain()
	if len(out) != 4 {
		t.Fatalf("drained %d, want 4", len(out))
	}
	for i, r := range out {
		if want := stubID(i + 2); r.ID != want {
			t.Fatalf("drain order wrong at %d: got %s, want %s", i, r.ID, want)
		}
	}
	if _, buffered, _ := b.stats(); buffered != 0 {
		t.Fatalf("drain did not clear: %d", buffered)
	}
	if b.drain() != nil {
		t.Fatalf("second drain not empty")
	}
}

// TestStatsReportPrecision: the /stats surface must report the primary's
// serving precision, SetPrecision must flip it live (primary and shadow),
// and an invalid precision must be rejected without changing anything.
func TestStatsReportPrecision(t *testing.T) {
	d := New("factoid", freshModel(t, 1), 1)
	defer d.Close()
	if got := d.Stats().Precision; got != "f64" {
		t.Fatalf("default precision %q, want f64", got)
	}
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	if err := d.SetPrecision(model.PrecisionF32); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Precision; got != "f32" {
		t.Fatalf("precision %q after SetPrecision, want f32", got)
	}
	d.mu.RLock()
	shadowPrec := d.shadow.Precision()
	d.mu.RUnlock()
	if shadowPrec != model.PrecisionF32 {
		t.Fatalf("shadow precision %q, want f32", shadowPrec)
	}
	if err := d.SetPrecision("int8"); err == nil {
		t.Fatalf("SetPrecision accepted int8")
	}
	if got := d.Stats().Precision; got != "f32" {
		t.Fatalf("rejected precision changed the deployment to %q", got)
	}
}
