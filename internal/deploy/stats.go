package deploy

import (
	"math"
	"sort"
	"sync"

	"repro/internal/monitor"
	"repro/internal/sliceql"
)

// maxLatencySamples bounds the per-deployment latency ring buffer.
const maxLatencySamples = 4096

// Stats is one deployment's SLA + shadow profile, exposed at
// /v1/models/{name}/stats (and at /stats for the default deployment).
type Stats struct {
	Name          string `json:"name,omitempty"`
	Version       int    `json:"version,omitempty"`
	ShadowVersion int    `json:"shadow_version,omitempty"`
	// Precision is the primary model's serving precision ("f64" or
	// "f32") so operators can audit which deployments run the
	// reduced-precision plane.
	Precision string `json:"precision,omitempty"`

	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`

	Ingested int64 `json:"ingested,omitempty"`
	Buffered int   `json:"buffered,omitempty"`
	Dropped  int64 `json:"dropped,omitempty"`

	Promotions int64 `json:"promotions,omitempty"`
	Rollbacks  int64 `json:"rollbacks,omitempty"`

	// Health: recovered model panics on the primary and shadow lanes under
	// the current primary, and whether the deployment has quarantined
	// itself (panic budget exhausted; requests shed with 503 until a new
	// primary is installed).
	Panics       int64 `json:"panics,omitempty"`
	ShadowPanics int64 `json:"shadow_panics,omitempty"`
	Quarantined  bool  `json:"quarantined,omitempty"`

	// Admission profile: the configured limits (nil when unlimited), the
	// cumulative admitted/shed counters, and the current in-flight work.
	// Requests above counts admitted traffic plus client-side rejections;
	// offered load is Requests + Load.Shed.
	Limits   *Limits             `json:"limits,omitempty"`
	Load     *monitor.LoadReport `json:"load,omitempty"`
	InFlight int64               `json:"in_flight,omitempty"`

	Shadow *monitor.ShadowReport `json:"shadow,omitempty"`

	// Slices are the live slice aggregates (SetSlices) over the
	// deployment's in-memory observation window — agreement, error rate,
	// and latency per declared slice, keyed by slice name.
	Slices map[string]sliceql.SliceReport `json:"slices,omitempty"`

	// Alerts are the slice alert webhook counters (SetAlerts), nil when
	// no alerts are configured.
	Alerts *AlertStatus `json:"alerts,omitempty"`
}

// latencyStats is the O(1)-per-request latency/error collector: a
// fixed-size ring of millisecond samples plus request/error counters.
// Alongside the public counters it tracks the served subset — requests that
// actually reached Predict — separately from client-side rejections
// (malformed payloads recorded via RecordError), because the auto-rollback
// policy must judge the model on traffic it served, not on client garbage.
type latencyStats struct {
	mu           sync.Mutex
	ring         []float64 // milliseconds
	pos          int       // next write position
	n            int       // live samples (caps at maxLatencySamples)
	scratch      []float64 // reused sort buffer for snapshot
	requests     int64
	errors       int64
	served       int64 // requests that reached Predict
	servedErrors int64 // Predict failures (subset of errors)
}

func newLatencyStats() *latencyStats {
	return &latencyStats{
		ring:    make([]float64, maxLatencySamples),
		scratch: make([]float64, 0, maxLatencySamples),
	}
}

func (l *latencyStats) recordLatency(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests++
	l.served++
	l.ring[l.pos] = ms
	l.pos++
	if l.pos == len(l.ring) {
		l.pos = 0
	}
	if l.n < len(l.ring) {
		l.n++
	}
}

// recordError counts a request rejected before reaching Predict.
func (l *latencyStats) recordError() {
	l.mu.Lock()
	l.requests++
	l.errors++
	l.mu.Unlock()
}

// recordServedError counts a request that reached Predict and failed there.
func (l *latencyStats) recordServedError() {
	l.mu.Lock()
	l.requests++
	l.errors++
	l.served++
	l.servedErrors++
	l.mu.Unlock()
}

// servedCounters reads the served-traffic counters without touching (or
// sorting) the latency ring — the improvement loop polls this every tick.
func (l *latencyStats) servedCounters() (served, errors int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.served, l.servedErrors
}

// snapshot fills the latency fields of st from a reused scratch copy of
// the live ring window.
func (l *latencyStats) snapshot(st *Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st.Requests = l.requests
	st.Errors = l.errors
	if l.n > 0 {
		sorted := append(l.scratch[:0], l.ring[:l.n]...)
		sort.Float64s(sorted)
		st.P50Millis = percentile(sorted, 0.50)
		st.P95Millis = percentile(sorted, 0.95)
		st.P99Millis = percentile(sorted, 0.99)
	}
}

// percentile reads the p-quantile from an ascending-sorted sample window
// using ceil-based nearest-rank: the smallest sample with at least a p
// fraction of the window at or below it (idx = ceil(p*n)-1). The floor
// variant this replaced biased tails low — p99 over the full 4096-sample
// ring read the 98.99th percentile, and over a 10-sample window read the
// 90th. The input must be sorted; an unsorted window yields an arbitrary
// sample, not the quantile. Empty input returns 0.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
