package deploy

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/telemetry"
)

// Registry owns a fleet of deployments and designates one as the default
// target for the legacy single-model endpoints. Safe for concurrent use;
// lookups on the serving hot path take a read lock only.
type Registry struct {
	mu      sync.RWMutex
	deps    map[string]*Deployment
	order   []string // registration order, for stable listings
	def     string   // default deployment name
	budget  *Budget  // fleet-wide in-flight cap (nil = unlimited)
	persist Persister
	tel     *telemetry.Logger // fleet telemetry plane (nil = off)
}

// persistEvent journals a registry-level event (no-op without a
// persister). Callers hold r.mu, which serialises registry mutations.
func (r *Registry) persistEvent(ev Event, m *model.Model) error {
	if r.persist == nil {
		return nil
	}
	return r.persist.PersistEvent(ev, m)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{deps: map[string]*Deployment{}}
}

// Add registers d under its name. The first deployment added becomes the
// default. Names are unique; re-adding is an error (retire with Close and
// use Swap/Promote to change what a name serves). With a persister
// attached, the deploy event — and the deployment's current primary
// snapshot — is made durable before registration; a persist failure
// fails the Add with the registry unchanged.
func (r *Registry) Add(d *Deployment) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := d.Name()
	if name == "" {
		return fmt.Errorf("deploy: registry: empty deployment name")
	}
	if _, ok := r.deps[name]; ok {
		return fmt.Errorf("deploy: registry: deployment %q already registered", name)
	}
	if r.persist != nil {
		m, version := d.primary()
		if err := r.persistEvent(Event{Type: EventDeploy, Dep: name, Version: version}, m); err != nil {
			return err
		}
	}
	r.deps[name] = d
	r.order = append(r.order, name)
	if r.def == "" {
		r.def = name
	}
	d.attachBudget(r.budget)
	d.setPersister(r.persist)
	d.setTelemetry(r.tel)
	return nil
}

// SetConcurrencyBudget caps total in-flight predict work across every
// deployment in the registry (current and future) at n concurrent
// requests; n <= 0 removes the cap. Admissions beyond the budget are
// shed (ShedReasonBudget), never queued — the fleet-wide backstop behind
// the per-deployment limits. Requests in flight when the budget changes
// release against the budget they were admitted under.
// With a persister attached the budget change is journaled (best-effort:
// the budget is a protective cap, not data — a journal miss here cannot
// lose a record or a model, so the cap still applies in memory).
func (r *Registry) SetConcurrencyBudget(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_ = r.persistEvent(Event{Type: EventBudget, Budget: n}, nil)
	r.budget = NewBudget(n)
	for _, d := range r.deps {
		d.attachBudget(r.budget)
	}
}

// ConcurrencyBudget returns the fleet-wide budget (nil when unlimited).
func (r *Registry) ConcurrencyBudget() *Budget {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.budget
}

// Get returns the deployment registered under name.
func (r *Registry) Get(name string) (*Deployment, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.deps[name]
	return d, ok
}

// Default returns the default deployment (nil when the registry is empty).
func (r *Registry) Default() *Deployment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.deps[r.def]
}

// SetDefault changes which deployment backs the legacy endpoints. With a
// persister attached the change is journaled first; a persist failure
// leaves the default unchanged.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.deps[name]; !ok {
		return fmt.Errorf("deploy: registry: no deployment %q", name)
	}
	if err := r.persistEvent(Event{Type: EventSetDefault, Dep: name}, nil); err != nil {
		return err
	}
	r.def = name
	return nil
}

// Names returns the registered deployment names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// All returns the deployments in registration order.
func (r *Registry) All() []*Deployment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Deployment, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.deps[name])
	}
	return out
}

// Close closes every deployment in the registry.
func (r *Registry) Close() {
	for _, d := range r.All() {
		d.Close()
	}
}
