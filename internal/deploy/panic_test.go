package deploy

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/record"
)

// TestPredictContainsModelPanic pins the containment contract: a model
// panic inside one inference costs exactly that request — typed
// *ModelPanicError back to the caller, process alive, deployment still
// serving once the fault clears.
func TestPredictContainsModelPanic(t *testing.T) {
	m := freshModel(t, 1)
	d := New("panicky", m, 1, WithPanicBudget(-1))
	defer d.Close()
	rec := goodRecord(t, m)

	fi := faultinject.NewRegistry()
	fi.Arm("deploy.predict.panicky", 1, faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("boom")})
	faultinject.Enable(fi)
	defer faultinject.Disable()

	_, _, err := d.Predict(rec)
	var perr *ModelPanicError
	if !errors.As(err, &perr) {
		t.Fatalf("want *ModelPanicError, got %v", err)
	}
	if perr.Deployment != "panicky" || len(perr.Stack) == 0 {
		t.Fatalf("panic error missing context: %+v", perr)
	}
	if p, _ := d.Panics(); p != 1 {
		t.Fatalf("primary panic count = %d, want 1", p)
	}

	// The fault was a one-shot: the deployment must serve again.
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatalf("deployment did not recover after contained panic: %v", err)
	}
	if d.Quarantined() {
		t.Fatal("disabled budget must never quarantine")
	}
}

// TestPanicBudgetQuarantines drives a deployment past its panic budget
// and asserts the self-quarantine semantics: typed 503-mapped shed,
// counted in the load series, cleared by installing a new primary.
func TestPanicBudgetQuarantines(t *testing.T) {
	m := freshModel(t, 1)
	d := New("flaky", m, 1, WithPanicBudget(2))
	defer d.Close()
	rec := goodRecord(t, m)

	fi := faultinject.NewRegistry()
	fi.ArmEvery("deploy.predict.flaky", faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("segv")})
	faultinject.Enable(fi)
	defer faultinject.Disable()

	for i := 0; i < 2; i++ {
		if _, _, err := d.Predict(rec); err == nil {
			t.Fatal("panicking model served successfully")
		}
	}
	if !d.Quarantined() {
		t.Fatal("budget of 2 exhausted but not quarantined")
	}

	// Quarantined requests shed before touching the model.
	_, _, err := d.Predict(rec)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("want ErrQuarantined, got %v", err)
	}
	var qerr *QuarantineError
	if !errors.As(err, &qerr) || qerr.Panics < 2 {
		t.Fatalf("quarantine error missing context: %v", err)
	}
	st := d.Stats()
	if !st.Quarantined || st.Panics < 2 || st.Load == nil || st.Load.ShedQuarantine == 0 {
		t.Fatalf("stats missing quarantine profile: %+v", st)
	}

	// A new primary clears the quarantine (self-healing via promote).
	faultinject.Disable()
	if err := d.Swap(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	if d.Quarantined() {
		t.Fatal("swap did not clear quarantine")
	}
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatalf("recovered deployment failed: %v", err)
	}
}

// TestShadowPanicNeverAffectsPrimary pins the shadow-lane isolation: a
// shadow model that panics on every mirrored request is counted in its
// own series, never errors the primary response, and never quarantines
// the deployment.
func TestShadowPanicNeverAffectsPrimary(t *testing.T) {
	m := freshModel(t, 1)
	d := New("shadowed", m, 1, WithPanicBudget(1))
	defer d.Close()
	rec := goodRecord(t, m)

	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	fi := faultinject.NewRegistry()
	fi.ArmEvery("deploy.shadow.shadowed", faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("shadow boom")})
	faultinject.Enable(fi)
	defer faultinject.Disable()

	for i := 0; i < 8; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatalf("shadow panic leaked into primary response: %v", err)
		}
	}
	d.FlushShadow()
	if primary, shadow := d.Panics(); primary != 0 || shadow == 0 {
		t.Fatalf("panic counts wrong: primary=%d shadow=%d", primary, shadow)
	}
	if d.Quarantined() {
		t.Fatal("shadow panics quarantined the deployment")
	}
	st := d.Stats()
	if st.Shadow == nil || st.Shadow.Errors == 0 {
		t.Fatalf("shadow panics not recorded as comparison errors: %+v", st.Shadow)
	}
}

// TestBatchFallbackChargesPoisonOnce pins the budget accounting for the
// per-record fallback: one poison record in a multi-record batch panics
// the batched pass AND its own fallback pass, but must cost exactly one
// budget hit — otherwise every poison request costs two and quarantine
// trips at half the configured tolerance.
func TestBatchFallbackChargesPoisonOnce(t *testing.T) {
	m := freshModel(t, 1)
	d := New("poisoned", m, 1, WithPanicBudget(2))
	defer d.Close()
	rec := goodRecord(t, m)

	fi := faultinject.NewRegistry()
	// Hit 1 is the batched pass over all three records; hits 2-4 are the
	// per-record fallback passes. Arming 1 and 3 makes the second record
	// the poison one: it panics both times it runs.
	fi.Arm("deploy.predict.poisoned", 1, faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("poison")})
	fi.Arm("deploy.predict.poisoned", 3, faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("poison")})
	faultinject.Enable(fi)
	defer faultinject.Disable()

	jobs := make([]*predictJob, 3)
	for i := range jobs {
		jobs[i] = &predictJob{rec: rec, m: m, resp: make(chan predictResult, 1)}
	}
	d.runBatch(jobs)
	var served, panicked int
	for _, j := range jobs {
		res := <-j.resp
		var perr *ModelPanicError
		switch {
		case res.err == nil:
			served++
		case errors.As(res.err, &perr):
			panicked++
		default:
			t.Fatalf("unexpected error: %v", res.err)
		}
	}
	if served != 2 || panicked != 1 {
		t.Fatalf("served=%d panicked=%d, want 2 served and only the poison record failed", served, panicked)
	}
	if p, _ := d.Panics(); p != 1 {
		t.Fatalf("panic count = %d, want 1 (batched pass must not double-charge the fallback)", p)
	}
	if d.Quarantined() {
		t.Fatal("one poison request exhausted a budget of 2")
	}
}

// TestQuarantineIsolation is the blast-radius acceptance test: one
// deployment's model panics its way into quarantine while its healthy
// neighbour in the same registry keeps serving with zero errors.
func TestQuarantineIsolation(t *testing.T) {
	reg := NewRegistry()
	sick := New("sick", freshModel(t, 1), 1, WithPanicBudget(1))
	healthy := New("healthy", freshModel(t, 2), 1)
	for _, d := range []*Deployment{sick, healthy} {
		if err := reg.Add(d); err != nil {
			t.Fatal(err)
		}
		defer d.Close()
	}
	rec := goodRecord(t, sick.m)

	fi := faultinject.NewRegistry()
	fi.ArmEvery("deploy.predict.sick", faultinject.Fault{Kind: faultinject.KindPanic, Err: errors.New("sick boom")})
	faultinject.Enable(fi)
	defer faultinject.Disable()

	if _, _, err := sick.Predict(rec); err == nil {
		t.Fatal("sick deployment served successfully")
	}
	if !sick.Quarantined() {
		t.Fatal("sick deployment not quarantined")
	}
	var healthyErrs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				if _, _, err := healthy.Predict(rec); err != nil {
					healthyErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := healthyErrs.Load(); n != 0 {
		t.Fatalf("healthy neighbour saw %d errors while sick was quarantined", n)
	}
	if st := healthy.Stats(); st.Errors != 0 || st.Quarantined {
		t.Fatalf("healthy neighbour stats polluted: %+v", st)
	}
}

// journalRecorder is a Persister that records every event it is handed,
// flagging any that arrive after the deployment was closed.
type journalRecorder struct {
	mu     sync.Mutex
	events []Event
	closed atomic.Bool
	late   atomic.Int64
}

func (j *journalRecorder) PersistEvent(ev Event, m *model.Model) error {
	if j.closed.Load() {
		j.late.Add(1)
	}
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.mu.Unlock()
	return nil
}
func (j *journalRecorder) AppendIngest(dep string, recs []*record.Record) error { return nil }
func (j *journalRecorder) CheckpointIngest(dep string, mark int64) error        { return nil }

// TestNoEventJournaledAfterClose races every journaling mutator — Swap,
// SetShadow/Promote, SetLimits, StartLoop/StopLoop, a running improvement
// loop's own promote — against Close, and asserts the linearization
// contract the durable store depends on: once Close returns, not one
// further lifecycle event reaches the persister. Run under -race this
// also proves the lock protocol itself is clean.
func TestNoEventJournaledAfterClose(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		j := &journalRecorder{}
		reg := NewRegistry()
		reg.SetPersister(j)
		d := New("raced", freshModel(t, 1), 1)
		if err := reg.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := d.StartLoop(LoopConfig{Interval: time.Microsecond * 50}); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(3)
		go func() { // lifecycle mutator lane
			defer wg.Done()
			<-start
			for v := 2; ; v++ {
				if err := d.Swap(freshModel(t, int64(v)), v); errors.Is(err, ErrClosed) {
					return
				}
				if err := d.SetLimits(Limits{QPS: float64(v)}); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
		go func() { // shadow/promote lane
			defer wg.Done()
			<-start
			for v := 100; ; v++ {
				if err := d.SetShadow(freshModel(t, int64(v)), v); errors.Is(err, ErrClosed) {
					return
				}
				if _, err := d.Promote(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
		go func() { // close lane: the instant Close returns, journaling must stop
			defer wg.Done()
			<-start
			d.Close()
			j.closed.Store(true)
		}()
		close(start)
		wg.Wait()
		if n := j.late.Load(); n != 0 {
			t.Fatalf("iter %d: %d events journaled after Close returned", iter, n)
		}
	}
}
