package deploy

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/labelmodel"
	"repro/internal/monitor"
	"repro/internal/record"
	"repro/internal/train"
)

// Continuous-improvement controller: the loop that closes Overton's
// monitor-then-improve cycle per deployment. Each tick it (1) drains the
// ingest buffer and folds the drained batch into an incremental label model
// (sufficient-statistics EM, no full recombine), (2) when enough fresh
// supervision has accumulated and no candidate is in flight, fine-tunes a
// Clone() of the live primary against the refreshed probabilistic labels and
// installs it as the shadow, and (3) runs the promotion policy over the
// shadow's mirrored-traffic comparison window — promoting, holding, or
// rolling back with no human in the loop.

// Loop defaults.
const (
	defaultLoopInterval    = 500 * time.Millisecond
	defaultMinRetrainBatch = 32
	defaultWindowCap       = 2048
)

// LoopConfig configures a deployment's continuous-improvement controller.
type LoopConfig struct {
	// Interval between controller ticks (default 500ms).
	Interval time.Duration
	// Policy gates promotion and rollback.
	Policy Policy
	// MinRetrainBatch is how many freshly drained records must accumulate
	// before a new candidate is fine-tuned (default 32).
	MinRetrainBatch int
	// WindowCap bounds the fine-tune window of most-recent ingested records
	// (default 2048). The incremental label model is unbounded — its
	// sufficient statistics compress — but gradient passes pay per record.
	WindowCap int
	// Estimator for the incremental label model (default accuracy EM;
	// DawidSkene is rejected — it has no foldable sufficient statistics).
	Estimator labelmodel.Estimator
	// Rebalance applies automatic class rebalancing to fine-tune targets.
	Rebalance bool
	// FineTune bounds the per-candidate gradient pass. Its Workers field
	// selects the data-parallel shard count per step (0 = min(NumCPU,
	// batch size)); `overton serve -train-workers` plumbs it here.
	FineTune train.FineTuneConfig
	// Seed makes candidate fine-tunes reproducible.
	Seed int64
}

func (c LoopConfig) withDefaults() LoopConfig {
	if c.Interval <= 0 {
		c.Interval = defaultLoopInterval
	}
	if c.MinRetrainBatch <= 0 {
		c.MinRetrainBatch = defaultMinRetrainBatch
	}
	if c.WindowCap <= 0 {
		c.WindowCap = defaultWindowCap
	}
	c.Policy = c.Policy.withDefaults()
	return c
}

// LoopStatus is a point-in-time snapshot of a deployment's controller,
// exposed at GET /v1/models/{name}/loop.
type LoopStatus struct {
	Running bool `json:"running"`
	// State is "idle" (no candidate), "shadowing" (candidate mirroring
	// traffic), or "watching" (fresh promotion inside its rollback window).
	State       string `json:"state,omitempty"`
	Ticks       int64  `json:"ticks"`
	Accumulated int64  `json:"accumulated"` // records folded into the label model
	Window      int    `json:"window"`      // fine-tune window size
	Pending     int    `json:"pending"`     // drained records since last candidate
	Retrains    int64  `json:"retrains"`
	Promotions  int64  `json:"promotions"`
	Rollbacks   int64  `json:"rollbacks"`
	LastGate    string `json:"last_gate,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	// ShedRate is the fraction of offered load admission control shed over
	// the last tick window — the overload signal the promote gate holds on.
	ShedRate float64 `json:"shed_rate,omitempty"`
	// Slices are the last tick's per-slice gate verdicts (only present
	// when the policy configures SliceGates).
	Slices []SliceGateResult `json:"slices,omitempty"`
}

// controller runs one deployment's improvement loop.
type controller struct {
	d   *Deployment
	cfg LoopConfig
	inc *labelmodel.Incremental

	// Loop-goroutine-owned state.
	window      []*record.Record
	pending     int
	ps          *policyState
	nextVersion int
	// lastLoad is the admission snapshot at the previous tick; the delta
	// against it is the shed-rate window the promote gate observes.
	lastLoad monitor.LoadReport

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu sync.Mutex
	st LoopStatus
}

// StartLoop starts the deployment's continuous-improvement controller. One
// loop per deployment: starting while one runs is an error. A closed
// deployment returns ErrClosed. The loop stops on StopLoop or Close. With
// a persister attached, the start (and its config) is journaled before
// the loop runs: a crashed-and-recovered fleet restarts its loops with
// the policy they were running under. Process shutdown (Close) does not
// journal a stop — only an explicit StopLoop does — which is exactly what
// makes loops resume across restarts.
func (d *Deployment) StartLoop(cfg LoopConfig) error {
	d.loopMu.Lock()
	defer d.loopMu.Unlock()
	if d.Closed() {
		return ErrClosed
	}
	if d.loop != nil {
		return fmt.Errorf("deploy %s: improvement loop already running", d.name)
	}
	cfg = cfg.withDefaults()
	inc, err := labelmodel.NewIncremental(d.Schema(), labelmodel.CombineConfig{
		Estimator: cfg.Estimator,
		Rebalance: cfg.Rebalance,
	})
	if err != nil {
		return fmt.Errorf("deploy %s: %w", d.name, err)
	}
	loopCfg := cfg
	if err := d.persistEvent(Event{Type: EventLoopStart, Dep: d.name, Loop: &loopCfg}, nil); err != nil {
		return err
	}
	c := &controller{
		d:    d,
		cfg:  cfg,
		inc:  inc,
		ps:   newPolicyState(cfg.Policy),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		// Seed the load window at the current counters: the first tick's
		// delta must cover the first interval, not the deployment's whole
		// pre-loop history (a long-resolved shed spike must not hold the
		// gate).
		lastLoad: d.Load(),
	}
	c.st.Running = true
	c.st.State = "idle"
	d.loop = c
	go c.run()
	return nil
}

// StopLoop stops the controller (if one is running) and waits for its
// goroutine to exit. Idempotent; safe to race with Close and StartLoop.
// The controller stays registered until it has fully exited, so a
// concurrent StartLoop cannot run a second loop alongside a stopping one —
// it fails with "already running" until the stop completes. The loop's
// final status (counters included) stays readable via LoopStatus.
//
// An explicit stop is journaled (best-effort) so a recovered fleet does
// not restart a loop the operator turned off; stopping via Close is not —
// shutdown must preserve the loop-running state for recovery.
func (d *Deployment) StopLoop() {
	d.loopMu.Lock()
	c := d.loop
	if c != nil && !d.Closed() {
		// Under loopMu, re-checked against close: Close passes through
		// loopMu (stopLoopForClose), so no stop event lands after it
		// returns.
		_ = d.persistEvent(Event{Type: EventLoopStop, Dep: d.name}, nil)
	}
	d.loopMu.Unlock()
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
	d.detachLoop(c)
}

// LoopStatus returns the controller's status. Running is false when no loop
// has been started (or it was stopped); counters survive until the next
// StartLoop, so a stopped loop's history remains readable.
func (d *Deployment) LoopStatus() LoopStatus {
	d.loopMu.Lock()
	c := d.loop
	st := d.lastLoop
	d.loopMu.Unlock()
	if c == nil {
		return st
	}
	return c.status()
}

// stopLoopForClose waits out the controller during Close. The controller
// goroutine exits on its own via d.closed; Close only needs to wait so
// that "closed deployment" implies "no controller goroutine". Passing
// through loopMu is also Close's barrier against StartLoop/StopLoop
// journaling after Close returns. No loop-stop event is journaled here:
// shutdown preserves the loop-running state so recovery restarts it.
func (d *Deployment) stopLoopForClose() {
	d.loopMu.Lock()
	c := d.loop
	d.loopMu.Unlock()
	if c == nil {
		return
	}
	d.detachLoop(c)
}

// detachLoop waits for c to exit, then unregisters it and preserves its
// final status. Guarded on identity so concurrent StopLoop/Close callers
// (or a stop racing a later restart) clean up exactly once.
func (d *Deployment) detachLoop(c *controller) {
	<-c.done
	d.loopMu.Lock()
	if d.loop == c {
		d.loop = nil
		d.lastLoop = c.status()
	}
	d.loopMu.Unlock()
}

func (c *controller) status() LoopStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

func (c *controller) run() {
	defer func() {
		c.mu.Lock()
		c.st.Running = false
		c.mu.Unlock()
		close(c.done)
	}()
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			c.tick()
		case <-c.stop:
			return
		case <-c.d.closed:
			return
		}
	}
}

// tick runs one controller cycle: fold drained ingest, maybe build a
// candidate, then let the policy judge the shadow window.
func (c *controller) tick() {
	// 1. Fold freshly ingested supervision into the sufficient statistics
	// and the bounded fine-tune window. The ingest WAL is checkpointed
	// only after the fold: a crash between drain and checkpoint replays
	// the batch on recovery (at-least-once into the label model — its
	// sufficient statistics tolerate a duplicate fold; losing supervision
	// it does not).
	if batch, mark := c.d.drainMarked(); len(batch) > 0 {
		c.inc.Update(batch)
		c.window = append(c.window, batch...)
		if over := len(c.window) - c.cfg.WindowCap; over > 0 {
			n := copy(c.window, c.window[over:])
			for i := n; i < len(c.window); i++ {
				c.window[i] = nil // release for GC
			}
			c.window = c.window[:n]
		}
		c.pending += len(batch)
		c.d.checkpointIngest(mark)
	}

	// 2. Build a candidate when idle: no shadow in flight, no promotion
	// being watched, and enough fresh supervision since the last build.
	_, hasShadow := c.d.shadowInfo()
	var lastErr string
	if !hasShadow && !c.ps.watching() && c.pending >= c.cfg.MinRetrainBatch && supervisedCount(c.window) > 0 {
		if err := c.retrain(); err != nil {
			lastErr = err.Error()
			// Do not retry the same window every tick on a systematic
			// failure; wait for fresh data.
			c.pending = 0
		} else {
			c.pending = 0
			hasShadow = true
		}
	}

	// 3. Policy: judge the shadow's mirrored-traffic window. FlushShadow
	// barriers in-flight mirrors so the gate sees a settled window. The
	// observation is served-traffic only (no latency-ring sort, no client
	// rejections in the regression signal).
	c.d.FlushShadow()
	shadowRep, served, servedErrors := c.d.loopObservation()
	load := c.d.Load()
	loadDelta := load.Delta(c.lastLoad)
	c.lastLoad = load
	sliceResults := c.d.evalSliceGates(c.cfg.Policy.SliceGates)
	dec, why := c.ps.step(policyInputs{
		shadow:   hasShadow,
		gate:     monitor.EvaluateGate(shadowRep, c.cfg.Policy.gateConfig()),
		requests: served,
		errors:   servedErrors,
		load:     loadDelta,
		slices:   sliceResults,
	})
	var promoted, rolledBack bool
	switch dec {
	case decisionPromote:
		if v, err := c.d.Promote(); err != nil {
			lastErr = err.Error()
			c.ps.abortPromote()
		} else {
			promoted = true
			c.d.emitLifecycle("promote", map[string]any{"version": v, "reason": why})
		}
	case decisionRollback:
		if v, err := c.d.Rollback(); err != nil {
			lastErr = err.Error()
		} else {
			rolledBack = true
			c.d.emitLifecycle("rollback", map[string]any{"version": v, "reason": why})
		}
	}

	c.mu.Lock()
	c.st.Ticks++
	c.st.Accumulated = c.inc.Records()
	c.st.Window = len(c.window)
	c.st.Pending = c.pending
	c.st.ShedRate = loadDelta.ShedRate()
	c.st.Slices = sliceResults
	c.st.LastGate = fmt.Sprintf("%s: %s", dec, why)
	if promoted {
		c.st.Promotions++
	}
	if rolledBack {
		c.st.Rollbacks++
	}
	if lastErr != "" {
		c.st.LastError = lastErr
	}
	switch {
	case c.ps.watching(): // a successful promote always arms the window
		c.st.State = "watching"
	case promoted || rolledBack || !hasShadow:
		c.st.State = "idle"
	default:
		c.st.State = "shadowing"
	}
	c.mu.Unlock()
}

// retrain snapshots the incremental label model, fine-tunes a clone of the
// live primary against the window's refreshed probabilistic labels, and
// installs it as the shadow candidate.
func (c *controller) retrain() error {
	snap := c.inc.Snapshot()
	targets, err := snap.Targets(c.window)
	if err != nil {
		return err
	}
	primary, version := c.d.primary()
	clone, err := primary.Clone()
	if err != nil {
		return err
	}
	ft := c.cfg.FineTune
	c.mu.Lock()
	retrains := c.st.Retrains
	c.mu.Unlock()
	ft.Seed = c.cfg.Seed + retrains
	if _, err := train.FineTune(clone, c.window, targets, ft); err != nil {
		return err
	}
	if c.nextVersion <= version {
		c.nextVersion = version + 1
	}
	if err := c.d.SetShadow(clone, c.nextVersion); err != nil {
		return err
	}
	c.d.emitLifecycle("retrain", map[string]any{"version": c.nextVersion})
	c.nextVersion++
	c.mu.Lock()
	c.st.Retrains++
	c.mu.Unlock()
	return nil
}

// supervisedCount counts records carrying at least one non-gold label — the
// ones a fine-tune pass can actually learn from.
func supervisedCount(recs []*record.Record) int {
	var n int
	for _, r := range recs {
		for _, tl := range r.Tasks {
			hit := false
			for src := range tl {
				if src != record.GoldSource {
					hit = true
					break
				}
			}
			if hit {
				n++
				break
			}
		}
	}
	return n
}
