package deploy

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/train"
)

// labelledRecord builds a live-traffic record carrying weak Intent
// supervision from two sources — the stream the improvement loop learns
// from.
func labelledRecord(t testing.TB, m *model.Model, intent string) *record.Record {
	t.Helper()
	rec := goodRecord(t, m)
	rec.SetLabel("Intent", "weak1", record.Label{Kind: record.KindClass, Class: intent})
	rec.SetLabel("Intent", "weak2", record.Label{Kind: record.KindClass, Class: intent})
	return rec
}

// waitGoroutines retries until the live goroutine count drops back to the
// baseline (background predictors/mirrors/controllers need a moment to
// unwind after Close).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d live, want <= %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestControllerClosedLoop drives the full improvement cycle without HTTP:
// streamed ingest accumulates, the controller retrains a candidate from the
// incremental label model, mirrored predict traffic passes the gates, the
// policy promotes — and the deployment ends on a higher primary version
// with no leaked goroutines.
func TestControllerClosedLoop(t *testing.T) {
	m := freshModel(t, 1)
	// Warm the shared compute pool so its goroutines land in the baseline.
	if _, err := m.PredictOne(goodRecord(t, m)); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	d := New("factoid", m, 1)
	rec := goodRecord(t, m)
	cfg := LoopConfig{
		Interval:        2 * time.Millisecond,
		MinRetrainBatch: 24,
		Policy: Policy{
			MinMirrored:           6,
			MinAgreement:          0.5,
			Hysteresis:            2,
			RollbackWindow:        2,
			MinRegressionRequests: 1 << 30, // regression path exercised in policy tests
		},
		FineTune: train.FineTuneConfig{Epochs: 1, LR: 0.001},
	}
	if err := d.StartLoop(cfg); err != nil {
		t.Fatal(err)
	}
	if err := d.StartLoop(cfg); err == nil {
		t.Fatal("second StartLoop accepted while the first is running")
	}

	// Ingest a bounded stream: enough for exactly one retrain
	// (24 <= total < 2*24), so at most one promotion can ever fire.
	total := 0
	deadline := time.Now().Add(30 * time.Second)
	for d.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion: stats=%+v loop=%+v", d.Stats(), d.LoopStatus())
		}
		if total < 40 {
			if _, err := d.Ingest(labelledRecord(t, m, "Height")); err != nil {
				t.Fatal(err)
			}
			total++
		}
		// Live traffic: feeds the shadow comparison window once a candidate
		// is installed.
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}

	st := d.Stats()
	if st.Version <= 1 {
		t.Fatalf("promotion did not raise the primary version: %+v", st)
	}
	if st.Promotions != 1 {
		t.Fatalf("promotions = %d, want exactly 1", st.Promotions)
	}
	ls := d.LoopStatus()
	if !ls.Running || ls.Retrains != 1 || ls.Promotions != 1 || ls.Accumulated == 0 {
		t.Fatalf("loop status wrong: %+v", ls)
	}

	// Close mid-loop: requests fail with ErrClosed, the controller goroutine
	// exits (Close waits for it), and its final status stays readable.
	d.Close()
	if _, _, err := d.Predict(rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close: %v, want ErrClosed", err)
	}
	if _, err := d.Ingest(rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: %v, want ErrClosed", err)
	}
	ls = d.LoopStatus()
	if ls.Running || ls.Promotions != 1 {
		t.Fatalf("post-Close loop status wrong: %+v", ls)
	}
	waitGoroutines(t, base)
}

// TestControllerStartStopRace hammers StartLoop/StopLoop concurrently: the
// one-loop-per-deployment invariant must hold while a stopping controller
// is still winding down (a StartLoop that lands mid-stop fails with
// "already running" rather than running a second loop alongside it).
func TestControllerStartStopRace(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := d.StartLoop(LoopConfig{Interval: time.Millisecond})
				if err != nil && !strings.Contains(err.Error(), "already running") {
					t.Errorf("StartLoop: %v", err)
					return
				}
				d.StopLoop()
			}
		}()
	}
	wg.Wait()
	d.StopLoop()
	if ls := d.LoopStatus(); ls.Running {
		t.Fatalf("loop still running after the storm: %+v", ls)
	}
}

// TestControllerStopRestart pins StopLoop semantics: it waits the goroutine
// out, is idempotent, and a stopped deployment can start a fresh loop.
func TestControllerStopRestart(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.StartLoop(LoopConfig{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// Let it tick at least once.
	deadline := time.Now().Add(5 * time.Second)
	for d.LoopStatus().Ticks == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	d.StopLoop()
	d.StopLoop() // idempotent
	if ls := d.LoopStatus(); ls.Running {
		t.Fatalf("loop still running after StopLoop: %+v", ls)
	}
	if err := d.StartLoop(LoopConfig{Interval: time.Millisecond}); err != nil {
		t.Fatalf("restart after StopLoop: %v", err)
	}
	d.StopLoop()
}
