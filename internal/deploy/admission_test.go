package deploy

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/monitor"
)

// TestFleetAdmissionIsolation is the acceptance test for admission
// control: deployment "hot" is driven far past its QPS limit by a
// goroutine storm while deployment "healthy" (unlimited) takes
// concurrent traffic. Every healthy predict must succeed, every hot
// request must either succeed or shed with the typed error, and the
// shed/admit counters must account for every request exactly. Run under
// -race in CI.
func TestFleetAdmissionIsolation(t *testing.T) {
	mHot := freshModel(t, 1)
	mOK := freshModel(t, 2)
	hot := New("hot", mHot, 1, WithLimits(Limits{QPS: 25, Burst: 4}))
	healthy := New("healthy", mOK, 1)
	defer hot.Close()
	defer healthy.Close()
	reg := NewRegistry()
	for _, d := range []*Deployment{hot, healthy} {
		if err := reg.Add(d); err != nil {
			t.Fatal(err)
		}
	}

	const stormers = 4
	const perStormer = 100
	var hotOK, hotShed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < stormers; i++ {
		rec := goodRecord(t, mHot)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perStormer; j++ {
				_, _, err := hot.Predict(rec)
				switch {
				case err == nil:
					hotOK.Add(1)
				case errors.Is(err, ErrShed):
					var shed *ShedError
					if !errors.As(err, &shed) || shed.Reason != ShedReasonQPS {
						t.Errorf("hot shed = %v, want typed qps shed", err)
					}
					hotShed.Add(1)
				default:
					t.Errorf("hot predict: %v", err)
				}
			}
		}()
	}

	// The healthy neighbour's traffic runs while the storm rages; its
	// success rate must be 100%.
	recOK := goodRecord(t, mOK)
	const healthyN = 60
	for i := 0; i < healthyN; i++ {
		if _, _, err := healthy.Predict(recOK); err != nil {
			t.Fatalf("healthy predict %d failed mid-storm: %v", i, err)
		}
	}
	wg.Wait()

	// Exact accounting: every hot request is either admitted or shed, and
	// the deployment's load series agrees with the client-side tallies.
	if total := hotOK.Load() + hotShed.Load(); total != stormers*perStormer {
		t.Fatalf("hot outcomes %d, want %d", total, stormers*perStormer)
	}
	if hotShed.Load() == 0 {
		t.Fatal("storm did not shed: the QPS limit never engaged")
	}
	load := hot.Load()
	if load.Admitted != hotOK.Load() || load.Shed != hotShed.Load() || load.ShedQPS != load.Shed {
		t.Fatalf("hot load = %+v, want admitted=%d shed=%d (all qps)",
			load, hotOK.Load(), hotShed.Load())
	}
	st := hot.Stats()
	if st.Load == nil || *st.Load != load {
		t.Fatalf("hot Stats.Load = %+v, want %+v", st.Load, load)
	}
	// Sheds never reached Predict: serving stats count only admitted work.
	if st.Requests != hotOK.Load() || st.Errors != 0 {
		t.Fatalf("hot Requests/Errors = %d/%d, want %d/0", st.Requests, st.Errors, hotOK.Load())
	}

	hl := healthy.Load()
	if hl.Admitted != healthyN || hl.Shed != 0 {
		t.Fatalf("healthy load = %+v, want %d admitted / 0 shed", hl, healthyN)
	}
	hst := healthy.Stats()
	if hst.Requests != healthyN || hst.Errors != 0 {
		t.Fatalf("healthy Requests/Errors = %d/%d, want %d/0", hst.Requests, hst.Errors, healthyN)
	}
	if hot.InFlight() != 0 || healthy.InFlight() != 0 {
		t.Fatalf("in-flight after drain = %d/%d, want 0/0", hot.InFlight(), healthy.InFlight())
	}
}

// TestAdmissionPolicyOverloadHold pins the monitor wiring: a windowed
// shed rate above MaxPromoteShedRate holds the promote gate without
// resetting the hysteresis streak, and promotion proceeds once the
// overload clears.
func TestAdmissionPolicyOverloadHold(t *testing.T) {
	pol := Policy{MinMirrored: 1, MinAgreement: 0.5, Hysteresis: 2}
	ps := newPolicyState(pol)
	pass := policyInputs{
		shadow: true,
		gate:   gateOf(pol, window(40, 38, 40)),
		load:   monitor.LoadReport{Admitted: 90, Shed: 10},
	}
	if dec, _ := ps.step(pass); dec != decisionHold {
		t.Fatal("first pass must hold for hysteresis")
	}
	overloaded := pass
	overloaded.load = monitor.LoadReport{Admitted: 20, Shed: 80}
	dec, why := ps.step(overloaded)
	if dec != decisionHold {
		t.Fatalf("overloaded tick = %v (%s), want hold", dec, why)
	}
	if ps.streak != 1 {
		t.Fatalf("overload hold reset the streak to %d, want 1 preserved", ps.streak)
	}
	if dec, why := ps.step(pass); dec != decisionPromote {
		t.Fatalf("post-overload tick = %v (%s), want promote (streak preserved)", dec, why)
	}
}
