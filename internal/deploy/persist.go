package deploy

import (
	"repro/internal/model"
	"repro/internal/record"
)

// Durability hooks. A Registry (and every Deployment in it) can carry a
// Persister — implemented by internal/fleetstate — that is consulted
// *before* each lifecycle mutation applies: the mutation's event (and,
// when it introduces a model, the model snapshot) must be durable before
// the in-memory state changes, so a crash at any instant leaves the
// journal describing either the pre- or the post-mutation fleet, never a
// half-applied one. A persist failure (disk error) fails the mutation
// and leaves the deployment unchanged.
//
// Hooks are invoked with the deployment's mutation lock held, so the
// journal order matches the apply order, and Close linearises against
// them: once Close returns, no further event can be persisted for that
// deployment.

// Lifecycle event types, as they appear in the fleet manifest journal.
const (
	// EventDeploy records a deployment entering the registry (carries the
	// initial model snapshot).
	EventDeploy = "deploy"
	// EventSwap records an out-of-band primary replacement (carries the
	// new model snapshot).
	EventSwap = "swap"
	// EventSetShadow records a shadow install (carries the candidate
	// snapshot) or, with Clear set, a shadow removal.
	EventSetShadow = "set-shadow"
	// EventPromote records the shadow becoming the primary.
	EventPromote = "promote"
	// EventRollback records the previous primary being restored.
	EventRollback = "rollback"
	// EventLimits records an admission-limits change.
	EventLimits = "limits"
	// EventLoopStart records the continuous-improvement loop starting
	// (carries the loop config, so recovery restarts it).
	EventLoopStart = "loop-start"
	// EventLoopStop records an explicit loop stop (process shutdown does
	// not journal one — a recovered fleet resumes its loops).
	EventLoopStop = "loop-stop"
	// EventSetDefault records the default deployment changing.
	EventSetDefault = "set-default"
	// EventBudget records the fleet-wide concurrency budget changing.
	EventBudget = "budget"
	// EventCheckpoint marks a clean shutdown: everything before it was
	// flushed and fsynced.
	EventCheckpoint = "checkpoint"
)

// Event is one fleet lifecycle mutation as recorded in the manifest
// journal. Fields beyond Type/Dep are populated per event type; Seq and
// Snap are assigned by the persister.
type Event struct {
	// Seq is the journal sequence number (assigned by the persister).
	Seq int64 `json:"seq,omitempty"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Dep is the deployment name (empty for registry-level events).
	Dep string `json:"dep,omitempty"`
	// Version is the model version the event introduces or activates.
	Version int `json:"version,omitempty"`
	// Snap is the snapshot filename backing Version (persister-assigned).
	Snap string `json:"snap,omitempty"`
	// Clear marks a set-shadow event that removed the shadow.
	Clear bool `json:"clear,omitempty"`
	// Limits carries the new admission limits for EventLimits.
	Limits *Limits `json:"limits,omitempty"`
	// Budget carries the new fleet-wide cap for EventBudget.
	Budget int `json:"budget,omitempty"`
	// Loop carries the controller config for EventLoopStart.
	Loop *LoopConfig `json:"loop,omitempty"`
}

// Persister makes fleet state durable. Implementations must be safe for
// concurrent use across deployments; calls for one deployment are
// serialised by that deployment's locks.
type Persister interface {
	// PersistEvent durably records ev. For events that introduce a model
	// (deploy, swap, non-clearing set-shadow), m is that model, and the
	// persister must make its snapshot durable before journaling the
	// event that references it. m is nil for all other events.
	PersistEvent(ev Event, m *model.Model) error
	// AppendIngest durably appends recs to the deployment's ingest WAL,
	// in order, before they are considered accepted.
	AppendIngest(dep string, recs []*record.Record) error
	// CheckpointIngest marks every WAL record with sequence <= mark
	// (sequences count accepted records from 1) as processed; a
	// subsequent recovery replays only records after the mark.
	CheckpointIngest(dep string, mark int64) error
}

// persisterBox wraps the interface so it can live in an atomic.Pointer.
type persisterBox struct{ p Persister }

// persister returns the deployment's persister (nil when none).
func (d *Deployment) persister() Persister {
	if b := d.persist.Load(); b != nil {
		return b.p
	}
	return nil
}

// setPersister attaches p (the registry propagates it). No events are
// emitted — attachment itself is not a lifecycle mutation, which is what
// lets recovery rebuild a fleet and then attach the store without
// re-journaling history.
func (d *Deployment) setPersister(p Persister) {
	if p == nil {
		d.persist.Store(nil)
		return
	}
	d.persist.Store(&persisterBox{p: p})
}

// persistEvent runs the persister hook for ev (no-op without one).
// Callers hold the lock that serialises the mutation being recorded.
func (d *Deployment) persistEvent(ev Event, m *model.Model) error {
	p := d.persister()
	if p == nil {
		return nil
	}
	return p.PersistEvent(ev, m)
}

// SetPersister attaches p to the registry and every current deployment;
// future Add calls propagate it automatically. Attachment emits no
// events (see Deployment.setPersister); pass nil to detach.
func (r *Registry) SetPersister(p Persister) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.persist = p
	for _, d := range r.deps {
		d.setPersister(p)
	}
}

// Persister returns the registry's attached persister (nil when none).
func (r *Registry) Persister() Persister {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.persist
}
