package deploy

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sliceql"
)

// alertSink is a scripted webhook endpoint: it records every delivered
// AlertEvent and can fail the first N posts to exercise retry.
type alertSink struct {
	ts       *httptest.Server
	posts    atomic.Int64
	failures atomic.Int64 // fail this many posts with a 500 before accepting
	events   chan AlertEvent
}

func newAlertSink(t *testing.T) *alertSink {
	t.Helper()
	s := &alertSink{events: make(chan AlertEvent, 16)}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.posts.Add(1)
		if n <= s.failures.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		var ev AlertEvent
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("webhook received undecodable body: %v", err)
		}
		select {
		case s.events <- ev:
		default:
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func waitAlert(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAlertValidation(t *testing.T) {
	d := New("factoid", freshModel(t, 1), 1)
	defer d.Close()
	for _, bad := range [][]SliceAlert{
		{{URL: "http://x", MaxErrorRate: 0.5}},       // no slice
		{{Slice: "s", MaxErrorRate: 0.5}},            // no url
		{{Slice: "s", URL: "http://x"}},              // no threshold
		{{Slice: "s", URL: "http://x", MinUnits: 3}}, // MinUnits alone is not a threshold
	} {
		if err := d.SetAlerts(bad); err == nil {
			t.Fatalf("invalid alert accepted: %+v", bad)
		}
	}
	if st := d.AlertStatus(); st != nil {
		t.Fatalf("rejected alerts left state behind: %+v", st)
	}
}

func TestAlertFiresRetriesAndRearms(t *testing.T) {
	sink := newAlertSink(t)
	sink.failures.Store(2) // first delivery needs all 3 attempts

	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.SetSlices([]sliceql.SliceDef{{Name: "billing", Expr: "intent=billing"}}); err != nil {
		t.Fatal(err)
	}
	d.alertInterval = 10 * time.Millisecond
	if err := d.SetAlerts([]SliceAlert{{Slice: "billing", MaxErrorRate: 0.5, URL: sink.ts.URL}}); err != nil {
		t.Fatal(err)
	}

	rec := goodRecord(t, m)
	rec.Tags = []string{"intent=billing"}

	// Breach: every predict fails, so the slice error rate hits 1.0.
	faultinject.Enable(faultinject.NewRegistry().ArmEvery(
		"deploy.predict.factoid", faultinject.Fault{Err: errors.New("injected model failure")}))
	for i := 0; i < 5; i++ {
		if _, _, err := d.Predict(rec); err == nil {
			t.Fatal("injected failure did not fail the predict")
		}
	}
	faultinject.Disable()

	// The crossing fires exactly once and survives two webhook 500s.
	var ev AlertEvent
	select {
	case ev = <-sink.events:
	case <-time.After(10 * time.Second):
		t.Fatal("alert never delivered")
	}
	if ev.Dep != "factoid" || ev.Slice != "billing" || ev.ErrorRate <= 0.5 || ev.Reason == "" {
		t.Fatalf("alert event %+v", ev)
	}
	if got := sink.posts.Load(); got != 3 {
		t.Fatalf("%d webhook posts, want 3 (two failed attempts + success)", got)
	}
	waitAlert(t, func() bool {
		st := d.AlertStatus()
		return st != nil && st.Fired == 1 && st.Delivered == 1
	}, "counters to settle at fired=1 delivered=1")

	// Edge trigger: a persisting breach does not fire again.
	time.Sleep(100 * time.Millisecond) // several evaluation intervals
	if st := d.AlertStatus(); st.Fired != 1 {
		t.Fatalf("persisting breach re-fired: %+v", st)
	}

	// Recovery re-arms: enough healthy traffic drags the windowed error
	// rate under threshold, then a fresh breach fires a second alert.
	for i := 0; i < 20; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	waitAlert(t, func() bool {
		rep := d.sliceReports()["billing"]
		return rep.ErrorRate < 0.5
	}, "window to recover under threshold")
	time.Sleep(50 * time.Millisecond) // let an evaluation observe health
	faultinject.Enable(faultinject.NewRegistry().ArmEvery(
		"deploy.predict.factoid", faultinject.Fault{Err: errors.New("injected model failure")}))
	defer faultinject.Disable()
	for i := 0; i < 40; i++ {
		_, _, _ = d.Predict(rec)
	}
	waitAlert(t, func() bool { return d.AlertStatus().Fired == 2 }, "re-armed alert to fire")

	// The counters ride along on the deployment's stats surface.
	if st := d.Stats(); st.Alerts == nil || st.Alerts.Fired != 2 {
		t.Fatalf("Stats().Alerts = %+v, want the alert counters", st.Alerts)
	}
}

func TestAlertOnUndefinedSliceIsInert(t *testing.T) {
	sink := newAlertSink(t)
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.SetSlices([]sliceql.SliceDef{{Name: "billing", Expr: "intent=billing"}}); err != nil {
		t.Fatal(err)
	}
	d.alertInterval = 5 * time.Millisecond
	// Alerts are advisory: naming a missing slice must not fire (or
	// fail-closed like gates do) — it just never matches a report.
	if err := d.SetAlerts([]SliceAlert{{Slice: "no-such-slice", MaxErrorRate: 0.001, URL: sink.ts.URL}}); err != nil {
		t.Fatal(err)
	}
	rec := goodRecord(t, m)
	rec.Tags = []string{"intent=billing"}
	for i := 0; i < 5; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if st := d.AlertStatus(); st.Fired != 0 || sink.posts.Load() != 0 {
		t.Fatalf("undefined-slice alert fired: %+v (%d posts)", st, sink.posts.Load())
	}

	// Removing alerts clears the status surface.
	if err := d.SetAlerts(nil); err != nil {
		t.Fatal(err)
	}
	if st := d.AlertStatus(); st != nil {
		t.Fatalf("cleared alerts still report status: %+v", st)
	}
}

func TestAlertDeliveryFailureIsCountedNotFatal(t *testing.T) {
	sink := newAlertSink(t)
	sink.failures.Store(1 << 30) // webhook never accepts

	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.SetSlices([]sliceql.SliceDef{{Name: "billing", Expr: "intent=billing"}}); err != nil {
		t.Fatal(err)
	}
	d.alertInterval = 10 * time.Millisecond
	if err := d.SetAlerts([]SliceAlert{{Slice: "billing", MaxErrorRate: 0.5, URL: sink.ts.URL}}); err != nil {
		t.Fatal(err)
	}
	rec := goodRecord(t, m)
	rec.Tags = []string{"intent=billing"}
	faultinject.Enable(faultinject.NewRegistry().ArmEvery(
		"deploy.predict.factoid", faultinject.Fault{Err: errors.New("injected model failure")}))
	for i := 0; i < 5; i++ {
		_, _, _ = d.Predict(rec)
	}
	faultinject.Disable()

	waitAlert(t, func() bool {
		st := d.AlertStatus()
		return st != nil && st.Failed == 1 && st.LastError != ""
	}, "abandoned delivery to be counted")
	if got := sink.posts.Load(); got != 3 {
		t.Fatalf("%d webhook posts, want all 3 attempts spent", got)
	}
	// Serving never depended on the webhook: the deployment still answers.
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatal(err)
	}
}
