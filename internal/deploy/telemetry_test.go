package deploy

import (
	"strings"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sliceql"
	"repro/internal/telemetry"
	"repro/internal/train"
)

// TestTelemetryEmissionEndToEnd drives real traffic through a deployment
// with both sinks attached and checks the events land in the JSONL
// streams (queryable via sliceql) and in the live slice window (visible
// in Stats).
func TestTelemetryEmissionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	l, err := telemetry.New(dir, telemetry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	m := freshModel(t, 1)
	reg := NewRegistry()
	defer reg.Close()
	reg.SetTelemetry(l) // attached before Add: Add must fan it out
	d := New("factoid", m, 1)
	if err := reg.Add(d); err != nil {
		t.Fatal(err)
	}
	if err := d.SetSlices([]sliceql.SliceDef{{Name: "billing", Expr: "intent=billing"}}); err != nil {
		t.Fatal(err)
	}
	// Same-seed shadow: agreement on mirrored traffic is exactly 1.
	if err := d.SetShadow(freshModel(t, 1), 2); err != nil {
		t.Fatal(err)
	}

	rec := goodRecord(t, m)
	rec.Tags = []string{"intent=billing", "vip"}
	for i := 0; i < 6; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	d.FlushShadow()
	l.Flush()

	res, err := sliceql.QueryDir(dir, "SELECT COUNT(*), MIN(latency_ms), RATIO(err,version) FROM predict WHERE intent=billing AND dep=factoid", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 6.0 {
		t.Fatalf("predict events = %v, want 6", res.Rows[0][0])
	}
	res, err = sliceql.QueryDir(dir, "SELECT RATIO(agree,units) FROM shadow WHERE intent=billing AND err=0", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 1.0 {
		t.Fatalf("same-seed shadow agreement over JSONL = %v, want 1", res.Rows[0][0])
	}
	if res.Matched == 0 {
		t.Fatal("no shadow comparison events were logged")
	}

	// The predicted class is a queryable dimension.
	res, err = sliceql.QueryDir(dir, "SELECT task.Intent, COUNT(*) FROM predict GROUP BY task.Intent", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Rows[0][0] == nil {
		t.Fatalf("task.Intent not logged: %+v", res)
	}

	// The live window aggregated the same traffic into Stats.
	st := d.Stats()
	rep, ok := st.Slices["billing"]
	if !ok {
		t.Fatalf("Stats missing slice report: %+v", st.Slices)
	}
	if rep.Predicts != 6 || rep.Errors != 0 || rep.Agreement != 1 || rep.Units == 0 {
		t.Fatalf("live slice report = %+v", rep)
	}
	if rep.P95Millis <= 0 {
		t.Fatalf("slice latency percentile not populated: %+v", rep)
	}

	// Lifecycle stream: a promote lands as an event.
	if _, err := d.Promote(); err != nil {
		t.Fatal(err)
	}
	d.emitLifecycle("promote", map[string]any{"version": 2})
	l.Flush()
	res, err = sliceql.QueryDir(dir, "SELECT COUNT(*) FROM lifecycle WHERE action=promote", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] == 0.0 {
		t.Fatal("promote not visible on the lifecycle stream")
	}

	// Detaching the logger stops emission without touching serving.
	reg.SetTelemetry(nil)
	before := l.Stats()[telemetry.StreamPredict].Emitted
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if after := l.Stats()[telemetry.StreamPredict].Emitted; after != before {
		t.Fatalf("detached logger still received events: %d -> %d", before, after)
	}
}

// TestSliceGateEvaluation pins evalSliceGates: threshold order,
// fail-closed on undefined slices, and the shadow-version filter that
// keeps a replaced candidate's comparisons from vouching for the
// current one.
func TestSliceGateEvaluation(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.SetSlices([]sliceql.SliceDef{{Name: "billing", Expr: "intent=billing"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}

	rec := goodRecord(t, m)
	rec.Tags = []string{"intent=billing"}

	// A stale candidate's perfect comparisons (version 1) plus the current
	// candidate's poor ones (version 2).
	d.emitShadowComparison(rec, 1, map[string]monitor.TaskComparison{
		"Intent": {Agree: 50, Units: 50},
	})
	d.emitShadowComparison(rec, 2, map[string]monitor.TaskComparison{
		"Intent": {Agree: 1, Units: 4},
	})

	results := d.evalSliceGates([]SliceGate{{Slice: "billing", MinAgreement: 0.9, MinUnits: 1}})
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	r := results[0]
	if r.Pass {
		t.Fatalf("gate passed on 25%% agreement: %+v", r)
	}
	if r.Units != 4 || r.Agreement != 0.25 {
		t.Fatalf("stale shadow's units leaked into the verdict: %+v", r)
	}

	// Not enough evidence: MinUnits holds before agreement is judged.
	r = d.evalSliceGates([]SliceGate{{Slice: "billing", MinAgreement: 0.9, MinUnits: 100}})[0]
	if r.Pass || !strings.Contains(r.Reason, "units") {
		t.Fatalf("MinUnits verdict = %+v", r)
	}

	// Fail-closed: a gate naming an undefined slice must hold promotion.
	r = d.evalSliceGates([]SliceGate{{Slice: "typo"}})[0]
	if r.Pass || !strings.Contains(r.Reason, "not defined") {
		t.Fatalf("undefined slice verdict = %+v", r)
	}

	// Healthy current-candidate evidence passes.
	d.emitShadowComparison(rec, 2, map[string]monitor.TaskComparison{
		"Intent": {Agree: 96, Units: 96},
	})
	r = d.evalSliceGates([]SliceGate{{Slice: "billing", MinAgreement: 0.9, MinUnits: 10}})[0]
	if !r.Pass {
		t.Fatalf("healthy slice gate failed: %+v", r)
	}
}

// TestPolicySliceGateResetsStreak: a failing slice gate holds the
// promotion AND resets the hysteresis streak, exactly like the global
// gate — a candidate flapping on a slice never accumulates passes.
func TestPolicySliceGateResetsStreak(t *testing.T) {
	ps := newPolicyState(Policy{Hysteresis: 2, MinAgreement: 0.5})
	passGate := monitor.GateResult{Pass: true, Agreement: 1, Mirrored: 100}
	pass := policyInputs{shadow: true, gate: passGate}
	failSlice := policyInputs{shadow: true, gate: passGate, slices: []SliceGateResult{
		{Slice: "billing", Pass: false, Reason: "agreement 0.250 < min 0.900 over 4 units"},
	}}

	if dec, _ := ps.step(pass); dec != decisionHold {
		t.Fatal("first pass must hold (hysteresis 2)")
	}
	dec, why := ps.step(failSlice)
	if dec != decisionHold || !strings.Contains(why, `slice "billing"`) {
		t.Fatalf("slice fail: dec=%v why=%q", dec, why)
	}
	if ps.streak != 0 {
		t.Fatalf("streak not reset by slice gate: %d", ps.streak)
	}
	// Two clean passes are needed again from scratch.
	if dec, _ := ps.step(pass); dec != decisionHold {
		t.Fatal("pass after reset must restart the streak")
	}
	if dec, _ := ps.step(pass); dec != decisionPromote {
		t.Fatal("second consecutive pass must promote")
	}
}

// TestControllerSliceGateHoldsPromotion runs the real improvement loop
// with a slice gate that cannot be satisfied and shows the promotion is
// held for exactly that reason — then restarts the loop with an
// achievable gate and shows the same candidate promotes. The slice gate
// is demonstrably the only thing standing between the candidate and the
// primary slot.
func TestControllerSliceGateHoldsPromotion(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.SetSlices([]sliceql.SliceDef{{Name: "all", Expr: "err=0"}}); err != nil {
		t.Fatal(err)
	}
	rec := goodRecord(t, m)
	policy := Policy{
		MinMirrored:           6,
		MinAgreement:          0.5,
		Hysteresis:            2,
		RollbackWindow:        2,
		MinRegressionRequests: 1 << 30,
		SliceGates:            []SliceGate{{Slice: "all", MinUnits: 1e12}}, // unreachable
	}
	cfg := LoopConfig{
		Interval:        2 * time.Millisecond,
		MinRetrainBatch: 24,
		Policy:          policy,
		FineTune:        train.FineTuneConfig{Epochs: 1, LR: 0.001},
	}
	if err := d.StartLoop(cfg); err != nil {
		t.Fatal(err)
	}

	// Feed ingest until a candidate exists, then keep traffic flowing so
	// the global shadow gate passes — the slice gate must still hold.
	total := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("slice hold never observed: stats=%+v loop=%+v", d.Stats(), d.LoopStatus())
		}
		if total < 40 {
			if _, err := d.Ingest(labelledRecord(t, m, "Height")); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
		ls := d.LoopStatus()
		if ls.Retrains >= 1 && strings.Contains(ls.LastGate, `slice "all"`) {
			if len(ls.Slices) != 1 || ls.Slices[0].Pass {
				t.Fatalf("slice verdict missing from status: %+v", ls)
			}
			break
		}
	}
	if p := d.Stats().Promotions; p != 0 {
		t.Fatalf("promotion happened under an unsatisfiable slice gate: %d", p)
	}
	d.StopLoop()

	// Same candidate, same policy — but a satisfiable slice gate. The
	// mirrored traffic that was already flowing now clears it.
	policy.SliceGates = []SliceGate{{Slice: "all", MinUnits: 1, MinAgreement: 0.1}}
	cfg.Policy = policy
	if err := d.StartLoop(cfg); err != nil {
		t.Fatal(err)
	}
	for d.Stats().Promotions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion under achievable slice gate: %+v", d.LoopStatus())
		}
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	d.StopLoop()
	if v := d.Version(); v <= 1 {
		t.Fatalf("promotion did not raise the version: %d", v)
	}
}
