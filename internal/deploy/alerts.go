package deploy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Slice alert webhooks: the alerting half of the slice plane. A
// SliceAlert names a live slice (SetSlices) and a threshold; when the
// slice's in-memory window crosses it, the deployment fires a POST at
// the configured URL. Evaluation runs on its own goroutine — never the
// controller tick, never the serve path — and delivery is asynchronous
// with bounded retry (3 attempts, exponential backoff with jitter), so
// a slow or dead webhook endpoint costs a goroutine, not a tick.
//
// Alerts are edge-triggered with re-arm hysteresis: an alert fires once
// when its slice crosses the threshold and will not fire again until
// the slice has been observed healthy, so a persistently bad slice
// produces one page, not one per evaluation interval.

// Alert evaluation and delivery defaults.
const (
	defaultAlertInterval   = time.Second
	alertDeliveryAttempts  = 3
	alertBackoffBase       = 200 * time.Millisecond
	defaultAlertHTTPTimout = 5 * time.Second
)

// SliceAlert is one slice-crossing webhook definition. At least one
// threshold must be set; a crossing on any of them fires the alert.
type SliceAlert struct {
	// Slice names a slice installed via SetSlices. An alert naming an
	// undefined slice never fires (the slice has no window to judge) —
	// unlike gates, alerts are advisory, so a typo is inert rather than
	// fail-closed.
	Slice string `json:"slice"`
	// MaxErrorRate fires when the slice's served error rate exceeds it
	// (0 disables). Judged only when the window holds predicts.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
	// MinAgreement fires when shadow agreement over the slice drops
	// below it (0 disables). Judged only when the window holds at least
	// MinUnits comparison units (or any units when MinUnits is 0).
	MinAgreement float64 `json:"min_agreement,omitempty"`
	// MinUnits is the comparison-unit evidence floor for MinAgreement.
	MinUnits float64 `json:"min_units,omitempty"`
	// URL receives the alert as a JSON POST.
	URL string `json:"url"`
}

// validate rejects an alert that could never fire or has nowhere to go.
func (a SliceAlert) validate() error {
	if a.Slice == "" {
		return fmt.Errorf("deploy: alert needs a slice name")
	}
	if a.URL == "" {
		return fmt.Errorf("deploy: alert on slice %q needs a url", a.Slice)
	}
	if a.MaxErrorRate <= 0 && a.MinAgreement <= 0 {
		return fmt.Errorf("deploy: alert on slice %q needs a threshold", a.Slice)
	}
	return nil
}

// AlertEvent is the JSON body POSTed to an alert's URL.
type AlertEvent struct {
	Dep    string `json:"dep"`
	Slice  string `json:"slice"`
	Reason string `json:"reason"`
	// The slice window numbers at the moment of crossing.
	ErrorRate float64 `json:"error_rate"`
	Agreement float64 `json:"agreement"`
	Units     float64 `json:"units"`
	TS        int64   `json:"ts"` // unix milliseconds
}

// AlertStatus is the alert subsystem's counter snapshot, surfaced in
// Stats.Alerts while alerts are configured.
type AlertStatus struct {
	// Alerts echoes the installed definitions.
	Alerts []SliceAlert `json:"alerts"`
	// Fired counts threshold crossings (each starts one delivery).
	Fired int64 `json:"fired"`
	// Delivered counts webhook POSTs acknowledged with a 2xx.
	Delivered int64 `json:"delivered"`
	// Failed counts deliveries abandoned after every attempt failed.
	Failed int64 `json:"failed,omitempty"`
	// LastError is the most recent delivery failure, for /stats triage.
	LastError string `json:"last_error,omitempty"`
}

// alerter is one running alert evaluator: a ticker goroutine judging the
// live slice window, plus one short-lived goroutine per delivery.
type alerter struct {
	d      *Deployment
	alerts []SliceAlert
	stop   chan struct{}
	done   chan struct{}

	fired, delivered, failed atomic.Int64
	errMu                    sync.Mutex
	lastErr                  string

	deliveries sync.WaitGroup
}

// SetAlerts installs (or with an empty list removes) the deployment's
// slice alert webhooks, replacing any previous set. Alert state restarts
// armed: a slice already over threshold fires on the first evaluation.
func (d *Deployment) SetAlerts(alerts []SliceAlert) error {
	for _, a := range alerts {
		if err := a.validate(); err != nil {
			return err
		}
	}
	d.alertMu.Lock()
	defer d.alertMu.Unlock()
	if d.Closed() {
		return ErrClosed
	}
	d.stopAlerterLocked()
	if len(alerts) == 0 {
		return nil
	}
	a := &alerter{
		d:      d,
		alerts: append([]SliceAlert(nil), alerts...),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	d.alerter = a
	go a.run()
	return nil
}

// AlertDefs returns the installed alert definitions (nil when none).
func (d *Deployment) AlertDefs() []SliceAlert {
	d.alertMu.Lock()
	defer d.alertMu.Unlock()
	if d.alerter == nil {
		return nil
	}
	return append([]SliceAlert(nil), d.alerter.alerts...)
}

// AlertStatus snapshots the alert counters (nil when no alerts are
// configured).
func (d *Deployment) AlertStatus() *AlertStatus {
	d.alertMu.Lock()
	a := d.alerter
	d.alertMu.Unlock()
	if a == nil {
		return nil
	}
	a.errMu.Lock()
	lastErr := a.lastErr
	a.errMu.Unlock()
	return &AlertStatus{
		Alerts:    append([]SliceAlert(nil), a.alerts...),
		Fired:     a.fired.Load(),
		Delivered: a.delivered.Load(),
		Failed:    a.failed.Load(),
		LastError: lastErr,
	}
}

// stopAlertsForClose stops the alert evaluator; Close calls it so a
// closed deployment leaks neither the ticker nor delivery goroutines.
func (d *Deployment) stopAlertsForClose() {
	d.alertMu.Lock()
	d.stopAlerterLocked()
	d.alertMu.Unlock()
}

// stopAlerterLocked stops the running alerter (if any) and waits for its
// evaluation goroutine and in-flight deliveries to finish. Caller holds
// alertMu.
func (d *Deployment) stopAlerterLocked() {
	if d.alerter == nil {
		return
	}
	close(d.alerter.stop)
	<-d.alerter.done
	d.alerter.deliveries.Wait()
	d.alerter = nil
}

// run is the evaluation loop: every interval, judge each alert against
// the live slice window and fire crossings.
func (a *alerter) run() {
	defer close(a.done)
	interval := a.d.alertInterval
	if interval <= 0 {
		interval = defaultAlertInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	firing := make(map[int]bool, len(a.alerts))
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			a.evaluate(firing)
		}
	}
}

// evaluate judges every alert once. firing carries the edge-trigger
// state across evaluations: index -> currently over threshold.
func (a *alerter) evaluate(firing map[int]bool) {
	reports := a.d.sliceReports()
	if reports == nil {
		return
	}
	for i, al := range a.alerts {
		rep, ok := reports[al.Slice]
		if !ok {
			continue
		}
		reason := ""
		switch {
		case al.MaxErrorRate > 0 && rep.Predicts > 0 && rep.ErrorRate > al.MaxErrorRate:
			reason = fmt.Sprintf("error rate %.3f > max %.3f over %d requests", rep.ErrorRate, al.MaxErrorRate, rep.Predicts)
		case al.MinAgreement > 0 && rep.Units > 0 && rep.Units >= al.MinUnits && rep.Agreement < al.MinAgreement:
			reason = fmt.Sprintf("agreement %.3f < min %.3f over %.0f units", rep.Agreement, al.MinAgreement, rep.Units)
		}
		if reason == "" {
			firing[i] = false // healthy again: re-arm
			continue
		}
		if firing[i] {
			continue // already fired this excursion
		}
		firing[i] = true
		a.fired.Add(1)
		ev := AlertEvent{
			Dep:       a.d.name,
			Slice:     al.Slice,
			Reason:    reason,
			ErrorRate: rep.ErrorRate,
			Agreement: rep.Agreement,
			Units:     rep.Units,
			TS:        a.d.now().UnixMilli(),
		}
		a.d.emitLifecycle("alert", map[string]any{
			"slice":  al.Slice,
			"reason": reason,
		})
		a.deliveries.Add(1)
		go a.deliver(al.URL, ev)
	}
}

// deliver POSTs one alert event with bounded retry: 3 attempts,
// exponential backoff with jitter. Runs on its own goroutine so a slow
// endpoint never backs up evaluation, let alone the controller tick.
func (a *alerter) deliver(url string, ev AlertEvent) {
	defer a.deliveries.Done()
	body, err := json.Marshal(ev)
	if err != nil {
		a.failed.Add(1)
		a.setLastErr(err.Error())
		return
	}
	client := a.d.alertClient
	if client == nil {
		client = &http.Client{Timeout: defaultAlertHTTPTimout}
	}
	var lastErr string
	for attempt := 0; attempt < alertDeliveryAttempts; attempt++ {
		if attempt > 0 {
			backoff := alertBackoffBase << (attempt - 1)
			backoff += time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-a.stop:
				a.failed.Add(1)
				a.setLastErr(lastErr)
				return
			case <-time.After(backoff):
			}
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err.Error()
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			a.delivered.Add(1)
			return
		}
		lastErr = fmt.Sprintf("webhook %s: status %d", url, resp.StatusCode)
	}
	a.failed.Add(1)
	a.setLastErr(lastErr)
}

func (a *alerter) setLastErr(msg string) {
	a.errMu.Lock()
	a.lastErr = msg
	a.errMu.Unlock()
}
