package deploy

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/compile"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/workload"
)

func freshModel(t testing.TB, seed int64) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, Dropout: 0, BatchSize: 8,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func goodRecord(t testing.TB, m *model.Model) *record.Record {
	t.Helper()
	rec := &record.Record{Payloads: map[string]record.PayloadValue{
		"tokens":   {Tokens: []string{"how", "tall", "is", "obama"}},
		"query":    {String: "how tall is obama"},
		"entities": {Set: []record.SetMember{{ID: "Barack_Obama", Start: 3, End: 4}}},
	}}
	if err := record.Validate(rec, m.Prog.Schema); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestDeploymentPredictAndStats(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()

	rec := goodRecord(t, m)
	out, version, err := d.Predict(rec)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || out["Intent"].Class == "" {
		t.Fatalf("predict wrong: version=%d out=%v", version, out)
	}
	st := d.Stats()
	if st.Name != "factoid" || st.Requests != 1 || st.Errors != 0 || st.P50Millis <= 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
}

// TestLifecycleEdges pins the Close/Swap corner cases: double-Close,
// Swap-after-Close, Predict-after-Close, and Close with in-flight jobs must
// neither panic nor deadlock.
func TestLifecycleEdges(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1, WithMaxWait(time.Second), WithBatchSize(64))
	rec := goodRecord(t, m)

	// Park requests in the batch window, then close under them.
	const inflight = 4
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = d.Predict(rec)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		d.Close()
		d.Close() // double-Close must be a no-op
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked")
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight Predict still blocked after Close")
	}
	for i, err := range errs {
		// Either the batch ran before Close (nil) or the caller was
		// released with ErrClosed; blocking forever is the only failure.
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("request %d: unexpected error %v", i, err)
		}
	}

	// Post-Close API calls must stay safe and explicit.
	if err := d.Swap(freshModel(t, 2), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Swap after Close: got %v, want ErrClosed", err)
	}
	if err := d.SetShadow(freshModel(t, 2), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("SetShadow after Close: got %v, want ErrClosed", err)
	}
	if _, _, err := d.Predict(rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close: got %v, want ErrClosed", err)
	}
	if _, err := d.Promote(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Promote after Close: got %v, want ErrClosed", err)
	}
	if _, err := d.Ingest(rec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ingest after Close: got %v, want ErrClosed", err)
	}
	if err := d.StartLoop(LoopConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("StartLoop after Close: got %v, want ErrClosed", err)
	}
}

func TestShadowPromoteRollback(t *testing.T) {
	primary := freshModel(t, 1)
	candidate := freshModel(t, 99) // different seed -> different outputs
	d := New("factoid", primary, 1)
	defer d.Close()
	rec := goodRecord(t, primary)

	if _, err := d.Promote(); err == nil {
		t.Fatal("promote with no shadow must fail")
	}
	if _, err := d.Rollback(); err == nil {
		t.Fatal("rollback with no history must fail")
	}
	if err := d.SetShadow(candidate, 2); err != nil {
		t.Fatal(err)
	}

	// Mirrored traffic accumulates comparison stats.
	for i := 0; i < 8; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatal(err)
		}
	}
	d.FlushShadow()
	st := d.Stats()
	if st.ShadowVersion != 2 || st.Shadow == nil {
		t.Fatalf("shadow not reflected in stats: %+v", st)
	}
	if st.Shadow.Mirrored+st.Shadow.Dropped+st.Shadow.Errors != 8 {
		t.Fatalf("mirror accounting wrong: %+v", st.Shadow)
	}
	if st.Shadow.Mirrored > 0 && len(st.Shadow.Tasks) == 0 {
		t.Fatalf("mirrored requests produced no per-task agreement: %+v", st.Shadow)
	}

	// Promote: candidate becomes primary, shadow slot empties.
	version, err := d.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || d.Version() != 2 {
		t.Fatalf("promote version: %d", version)
	}
	st = d.Stats()
	if st.ShadowVersion != 0 || st.Shadow != nil || st.Promotions != 1 {
		t.Fatalf("post-promote stats wrong: %+v", st)
	}
	outAfter, v, err := d.Predict(rec)
	if err != nil || v != 2 {
		t.Fatalf("predict after promote: v=%d err=%v", v, err)
	}

	// Rollback restores the old primary.
	version, err = d.Rollback()
	if err != nil || version != 1 {
		t.Fatalf("rollback: v=%d err=%v", version, err)
	}
	outBack, v, err := d.Predict(rec)
	if err != nil || v != 1 {
		t.Fatalf("predict after rollback: v=%d err=%v", v, err)
	}
	// Sanity: the two versions genuinely disagree somewhere, so promote/
	// rollback demonstrably switched models (not just version labels).
	same := true
	for task, o := range outAfter {
		if o.Class != outBack[task].Class || o.Select != outBack[task].Select {
			same = false
		}
	}
	if same {
		t.Log("warning: seed-1 and seed-99 models agreed on the probe record; version labels still verified")
	}
}

// TestFlushShadowConcurrentWithTraffic races FlushShadow against live
// mirroring. The old sync.WaitGroup implementation could panic here
// ("Add called concurrently with Wait"); the cond-based counter must not.
func TestFlushShadowConcurrentWithTraffic(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()
	if err := d.SetShadow(freshModel(t, 2), 2); err != nil {
		t.Fatal(err)
	}
	rec := goodRecord(t, m)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := d.Predict(rec); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		d.FlushShadow() // must never panic or deadlock mid-traffic
	}
	wg.Wait()
	d.FlushShadow()
	st := d.Stats()
	if st.Shadow == nil || st.Shadow.Mirrored+st.Shadow.Dropped+st.Shadow.Errors != 100 {
		t.Fatalf("mirror accounting after flush storm: %+v", st.Shadow)
	}
}

func TestSwapRejectsForeignSignature(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1)
	defer d.Close()

	// A model compiled from a different schema must be rejected.
	other := workload.FactoidSchema()
	delete(other.Tasks, "POS")
	prog, err := compile.Plan(other, schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, BatchSize: 8,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	foreign, err := model.New(prog, &compile.Resources{TokenVocab: workload.Vocabulary(kb), EntityVocab: ents}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Swap(foreign, 2); err == nil {
		t.Fatal("swap accepted a model with a different signature")
	}
	if err := d.SetShadow(foreign, 2); err == nil {
		t.Fatal("shadow accepted a model with a different signature")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	a := New("a", freshModel(t, 1), 1)
	b := New("b", freshModel(t, 2), 1)
	defer reg.Close()
	if err := reg.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(New("a", freshModel(t, 3), 1)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if reg.Default() != a {
		t.Fatal("first deployment should be default")
	}
	if err := reg.SetDefault("b"); err != nil || reg.Default() != b {
		t.Fatalf("SetDefault: %v", err)
	}
	if err := reg.SetDefault("nope"); err == nil {
		t.Fatal("SetDefault accepted unknown name")
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names: %v", got)
	}
	reg.Close()
	if !a.Closed() || !b.Closed() {
		t.Fatal("registry Close did not close deployments")
	}
}

func TestIngestDrain(t *testing.T) {
	m := freshModel(t, 1)
	d := New("factoid", m, 1, WithBufferCap(8))
	defer d.Close()
	rec := goodRecord(t, m)
	for i := 0; i < 10; i++ {
		overwrote, err := d.Ingest(rec)
		if err != nil {
			t.Fatal(err)
		}
		// The first 8 fit; each of the last 2 overwrites one oldest record,
		// and the caller is told so per call (nothing dropped silently).
		want := 0
		if i >= 8 {
			want = 1
		}
		if overwrote != want {
			t.Fatalf("ingest %d overwrote %d, want %d", i, overwrote, want)
		}
	}
	st := d.Stats()
	if st.Ingested != 10 || st.Buffered != 8 || st.Dropped != 2 {
		t.Fatalf("ingest stats wrong: %+v", st)
	}
	if ing, buf, drop := d.IngestStats(); ing != 10 || buf != 8 || drop != 2 {
		t.Fatalf("IngestStats disagrees with Stats: %d/%d/%d", ing, buf, drop)
	}
	if got := d.Drain(); len(got) != 8 {
		t.Fatalf("drained %d, want 8", len(got))
	}
}
