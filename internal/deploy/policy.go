package deploy

import (
	"fmt"

	"repro/internal/monitor"
)

// Policy configures shadow-driven auto-promotion: when the continuous-
// improvement controller may promote a shadow candidate, and when it must
// roll a fresh promotion back. This is Overton's "zero-coding" deployment
// step as a state machine — no human approves the promote; the gates do.
type Policy struct {
	// MinMirrored is the minimum number of mirrored comparisons in the
	// shadow window before the gate is evaluated at all (default 32).
	MinMirrored int64 `json:"min_mirrored,omitempty"`
	// MinAgreement is the minimum per-task agreement rate with the primary
	// on mirrored traffic (worst task gates; default 0.9).
	MinAgreement float64 `json:"min_agreement,omitempty"`
	// MaxShadowErrorRate bounds shadow prediction failures in the window
	// (0 disables).
	MaxShadowErrorRate float64 `json:"max_shadow_error_rate,omitempty"`
	// Hysteresis is how many consecutive passing gate evaluations are
	// required before promoting (default 2). A flapping candidate that
	// alternates pass/fail never accumulates the streak.
	Hysteresis int `json:"hysteresis,omitempty"`
	// RollbackWindow is how many controller ticks after a promotion the
	// deployment is watched for regression (default 4). While watching, no
	// new candidate is built or promoted.
	RollbackWindow int `json:"rollback_window,omitempty"`
	// MaxRegressionErrorRate is the serving error rate over the post-
	// promotion window that triggers the (single) auto-rollback
	// (default 0.5).
	MaxRegressionErrorRate float64 `json:"max_regression_error_rate,omitempty"`
	// MinRegressionRequests is how many requests the post-promotion window
	// must contain before the regression rate is trusted (default 8) — an
	// empty window has a 0/0 error rate, which must not roll back.
	MinRegressionRequests int64 `json:"min_regression_requests,omitempty"`
	// MaxPromoteShedRate holds promotions while admission control is
	// shedding more than this fraction of the deployment's offered load
	// over the evaluation window (default 0.5; set to 1 to promote under
	// any overload). Swapping primaries mid-overload is operationally
	// unsound: the rollback window would judge the fresh primary on
	// saturated, unrepresentative traffic. The hold does not reset the
	// hysteresis streak — overload says nothing about the candidate.
	MaxPromoteShedRate float64 `json:"max_promote_shed_rate,omitempty"`
	// SliceGates are per-slice promotion conditions over the deployment's
	// live slice windows (SetSlices): the global agreement gate can hide
	// a candidate that regresses on a thin, named slice, so each listed
	// slice must independently pass before a promote. A gate naming an
	// undefined slice fails closed. A failing slice gate resets the
	// hysteresis streak, like the global gate.
	SliceGates []SliceGate `json:"slice_gates,omitempty"`
}

func (p Policy) withDefaults() Policy {
	if p.MinMirrored <= 0 {
		p.MinMirrored = 32
	}
	if p.MinAgreement <= 0 {
		p.MinAgreement = 0.9
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = 2
	}
	if p.RollbackWindow <= 0 {
		p.RollbackWindow = 4
	}
	if p.MaxRegressionErrorRate <= 0 {
		p.MaxRegressionErrorRate = 0.5
	}
	if p.MinRegressionRequests <= 0 {
		p.MinRegressionRequests = 8
	}
	if p.MaxPromoteShedRate <= 0 {
		p.MaxPromoteShedRate = 0.5
	}
	return p
}

// gateConfig is the shadow-window gate derived from the policy.
func (p Policy) gateConfig() monitor.GateConfig {
	return monitor.GateConfig{
		MinMirrored:  p.MinMirrored,
		MinAgreement: p.MinAgreement,
		MaxErrorRate: p.MaxShadowErrorRate,
	}
}

// decision is one tick's verdict.
type decision int

const (
	decisionHold decision = iota
	decisionPromote
	decisionRollback
)

func (d decision) String() string {
	switch d {
	case decisionPromote:
		return "promote"
	case decisionRollback:
		return "rollback"
	}
	return "hold"
}

// policyInputs is everything one evaluation observes: whether a shadow is
// installed, the gate verdict over its comparison window, and the
// deployment's cumulative served-traffic counters — requests that reached
// Predict, not client-side rejections — for post-promotion regression
// detection.
type policyInputs struct {
	shadow   bool
	gate     monitor.GateResult
	requests int64
	errors   int64
	// load is the admission-counter movement over the evaluation window
	// (not cumulative): the shed-rate signal the promote gate observes.
	load monitor.LoadReport
	// slices are the per-slice gate verdicts (evalSliceGates); every one
	// must pass for the tick to count toward the hysteresis streak.
	slices []SliceGateResult
}

// policyState is the promotion state machine. Not safe for concurrent use;
// the controller owns it.
type policyState struct {
	p      Policy
	streak int // consecutive passing gate evaluations
	// watch > 0 means a promotion is inside its rollback window; base* are
	// the deployment counters frozen at promotion time.
	watch        int
	baseRequests int64
	baseErrors   int64
	rolledBack   bool
}

func newPolicyState(p Policy) *policyState {
	return &policyState{p: p.withDefaults()}
}

// watching reports whether a promotion is inside its rollback window.
func (ps *policyState) watching() bool { return ps.watch > 0 }

// step advances the state machine one tick and returns the decision plus a
// human-readable reason. Exactly one promotion can be pending per window,
// and a regressing promotion rolls back exactly once.
func (ps *policyState) step(in policyInputs) (decision, string) {
	if ps.watch > 0 {
		ps.watch--
		dreq := in.requests - ps.baseRequests
		derr := in.errors - ps.baseErrors
		if dreq >= ps.p.MinRegressionRequests {
			if rate := float64(derr) / float64(dreq); rate > ps.p.MaxRegressionErrorRate {
				if !ps.rolledBack {
					ps.rolledBack = true
					ps.watch = 0
					return decisionRollback, fmt.Sprintf("error rate %.3f over %d post-promote requests", rate, dreq)
				}
			}
		}
		return decisionHold, fmt.Sprintf("watching rollback window (%d ticks left)", ps.watch)
	}
	if !in.shadow {
		ps.streak = 0
		return decisionHold, "no shadow candidate"
	}
	if rate := in.load.ShedRate(); rate > ps.p.MaxPromoteShedRate {
		// Overload hold: no gate evaluation, no streak reset — the shed
		// rate says the deployment is saturated, not that the candidate
		// is bad.
		return decisionHold, fmt.Sprintf("overloaded: shedding %.0f%% of offered load (%d/%d this window)",
			100*rate, in.load.Shed, in.load.Offered())
	}
	if !in.gate.Pass {
		ps.streak = 0
		return decisionHold, in.gate.Reason
	}
	for _, sg := range in.slices {
		if !sg.Pass {
			ps.streak = 0
			return decisionHold, fmt.Sprintf("slice %q: %s", sg.Slice, sg.Reason)
		}
	}
	ps.streak++
	if ps.streak < ps.p.Hysteresis {
		return decisionHold, fmt.Sprintf("gate pass %d/%d", ps.streak, ps.p.Hysteresis)
	}
	ps.streak = 0
	ps.watch = ps.p.RollbackWindow
	ps.rolledBack = false
	ps.baseRequests, ps.baseErrors = in.requests, in.errors
	return decisionPromote, fmt.Sprintf("gates held for %d evaluations (agreement %.3f over %d mirrored)",
		ps.p.Hysteresis, in.gate.Agreement, in.gate.Mirrored)
}

// abortPromote unwinds the state committed by a decisionPromote whose
// Promote call then failed (e.g. an operator promoted or cleared the shadow
// between the gate evaluation and the call): the machine must not watch a
// rollback window for a promotion that never happened.
func (ps *policyState) abortPromote() {
	ps.watch = 0
	ps.streak = 0
}
