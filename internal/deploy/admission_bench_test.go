package deploy

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/record"
)

// BenchmarkFleetAdmission measures the two numbers admission control
// must pin (see PERFORMANCE.md):
//
//   - the limiter's overhead on the predict hot path — "unlimited" (no
//     limits configured) vs "admitted" (generous limits: bucket consulted
//     and depth checked on every request) must be within noise;
//   - "shed" — the cost of rejecting a request, which is what an
//     overloaded deployment pays per excess request instead of a predict;
//   - neighbour isolation — a healthy deployment's p99 with a quiet
//     neighbour ("neighbour-quiet") vs with a neighbour driven past its
//     QPS limit by a backoff-on-429 storm ("neighbour-storm"): the
//     storm's excess load converts to cheap sheds, so the healthy p99
//     must not degrade the way it does when the hot deployment is
//     unlimited ("neighbour-storm-unlimited").
func BenchmarkFleetAdmission(b *testing.B) {
	b.Run("unlimited", func(b *testing.B) {
		m := freshModel(b, 1)
		d := New("bench", m, 1)
		defer d.Close()
		benchPredicts(b, d, goodRecord(b, m))
	})
	b.Run("admitted", func(b *testing.B) {
		m := freshModel(b, 1)
		// Limits far above the benchmark's rate: every request runs the
		// full admission path (depth check + token bucket) and is admitted.
		d := New("bench", m, 1, WithLimits(Limits{QPS: 1e9, Burst: 1 << 30, QueueDepth: 1 << 30}))
		defer d.Close()
		benchPredicts(b, d, goodRecord(b, m))
	})
	b.Run("shed", func(b *testing.B) {
		m := freshModel(b, 1)
		d := New("bench", m, 1, WithLimits(Limits{QPS: 1e-9, Burst: 1}))
		defer d.Close()
		rec := goodRecord(b, m)
		d.Predict(rec) // consume the burst
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := d.Predict(rec); !errors.Is(err, ErrShed) {
				b.Fatalf("want shed, got %v", err)
			}
		}
	})
	b.Run("neighbour-quiet", func(b *testing.B) {
		benchNeighbour(b, nil)
	})
	b.Run("neighbour-storm", func(b *testing.B) {
		benchNeighbour(b, &Limits{QPS: 50, Burst: 8})
	})
	b.Run("neighbour-storm-unlimited", func(b *testing.B) {
		benchNeighbour(b, &Limits{})
	})
}

// benchPredicts measures sequential Predict latency on d.
func benchPredicts(b *testing.B, d *Deployment, rec *record.Record) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchNeighbour measures the healthy deployment's predict latency (p99
// reported as p99-ms) while a neighbour deployment takes storm traffic:
// nil hotLimits = no storm (quiet baseline), zero-value limits = an
// unlimited hot neighbour (every storm request runs a real predict), and
// configured limits = admission control converting the excess into sheds.
// Storm clients back off briefly when shed, like a real 429-respecting
// client.
func benchNeighbour(b *testing.B, hotLimits *Limits) {
	mHealthy := freshModel(b, 1)
	healthy := New("healthy", mHealthy, 1)
	defer healthy.Close()

	var stop chan struct{}
	var wg sync.WaitGroup
	if hotLimits != nil {
		mHot := freshModel(b, 2)
		var opts []Option
		if !hotLimits.unlimited() {
			opts = append(opts, WithLimits(*hotLimits))
		}
		hot := New("hot", mHot, 1, opts...)
		defer hot.Close()
		stop = make(chan struct{})
		const stormers = 4
		for i := 0; i < stormers; i++ {
			rec := goodRecord(b, mHot)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, _, err := hot.Predict(rec); errors.Is(err, ErrShed) {
						// A well-behaved client backs off on 429.
						time.Sleep(500 * time.Microsecond)
					}
				}
			}()
		}
	}

	rec := goodRecord(b, mHealthy)
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, _, err := healthy.Predict(rec); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	if stop != nil {
		close(stop)
		wg.Wait()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[int(0.99*float64(len(lat)-1))]
	b.ReportMetric(float64(p99.Microseconds())/1000.0, "p99-ms")
	// The worst single request: on a saturated host the damage an
	// unlimited neighbour does lives beyond p99, in multi-ms stalls.
	b.ReportMetric(float64(lat[len(lat)-1].Microseconds())/1000.0, "max-ms")
}
