package deploy

import (
	"testing"

	"repro/internal/monitor"
)

// gateOf evaluates the policy's gate over a synthetic shadow window,
// exercising the real monitor gate rather than a stub.
func gateOf(p Policy, rep *monitor.ShadowReport) monitor.GateResult {
	return monitor.EvaluateGate(rep, p.withDefaults().gateConfig())
}

func window(mirrored int64, agree, units float64) *monitor.ShadowReport {
	return &monitor.ShadowReport{
		Mirrored: mirrored,
		Tasks:    map[string]monitor.ShadowTaskAgreement{"Intent": {Units: units, Agree: agree}},
	}
}

// TestPolicyStateMachine drives the promotion state machine through its
// edge cases tick by tick: insufficient traffic, NaN/empty agreement
// windows, flapping candidates against hysteresis, and the single-rollback
// guarantee inside the regression window.
func TestPolicyStateMachine(t *testing.T) {
	pol := Policy{
		MinMirrored:            10,
		MinAgreement:           0.9,
		Hysteresis:             2,
		RollbackWindow:         3,
		MaxRegressionErrorRate: 0.5,
		MinRegressionRequests:  4,
	}
	type tick struct {
		shadow   bool
		rep      *monitor.ShadowReport
		requests int64
		errors   int64
		want     decision
	}
	cases := []struct {
		name  string
		ticks []tick
	}{
		{
			name: "no shadow never promotes",
			ticks: []tick{
				{shadow: false, want: decisionHold},
				{shadow: false, want: decisionHold},
			},
		},
		{
			name: "insufficient mirrored traffic holds",
			ticks: []tick{
				{shadow: true, rep: window(9, 9, 9), want: decisionHold},
				{shadow: true, rep: window(9, 9, 9), want: decisionHold},
				{shadow: true, rep: window(9, 9, 9), want: decisionHold},
			},
		},
		{
			name: "nil window holds",
			ticks: []tick{
				{shadow: true, rep: nil, want: decisionHold},
				{shadow: true, rep: nil, want: decisionHold},
			},
		},
		{
			name: "empty agreement window (0 units, NaN rate) holds",
			ticks: []tick{
				{shadow: true, rep: window(50, 0, 0), want: decisionHold},
				{shadow: true, rep: window(50, 0, 0), want: decisionHold},
				{shadow: true, rep: window(50, 0, 0), want: decisionHold},
			},
		},
		{
			name: "gates held for hysteresis promote once",
			ticks: []tick{
				{shadow: true, rep: window(20, 19, 20), want: decisionHold}, // pass 1/2
				{shadow: true, rep: window(40, 38, 40), want: decisionPromote},
			},
		},
		{
			name: "flapping shadow never accumulates the streak",
			ticks: []tick{
				{shadow: true, rep: window(20, 19, 20), want: decisionHold}, // pass 1/2
				{shadow: true, rep: window(40, 20, 40), want: decisionHold}, // fail resets
				{shadow: true, rep: window(60, 58, 60), want: decisionHold}, // pass 1/2
				{shadow: true, rep: window(80, 40, 80), want: decisionHold}, // fail resets
				{shadow: true, rep: window(99, 97, 99), want: decisionHold}, // pass 1/2 again
			},
		},
		{
			name: "regression in rollback window triggers exactly one rollback",
			ticks: []tick{
				{shadow: true, rep: window(20, 20, 20), requests: 100, want: decisionHold},
				{shadow: true, rep: window(40, 40, 40), requests: 120, want: decisionPromote},
				// Inside the window: error storm (6 errors / 10 requests).
				{requests: 130, errors: 6, want: decisionRollback},
				// Still erroring: the machine must not roll back twice.
				{requests: 140, errors: 12, want: decisionHold},
				{requests: 150, errors: 20, want: decisionHold},
			},
		},
		{
			name: "healthy promotion survives its rollback window",
			ticks: []tick{
				{shadow: true, rep: window(20, 20, 20), requests: 100, want: decisionHold},
				{shadow: true, rep: window(40, 40, 40), requests: 120, want: decisionPromote},
				{requests: 200, errors: 1, want: decisionHold}, // watching 1/3
				{requests: 300, errors: 1, want: decisionHold}, // watching 2/3
				{requests: 400, errors: 1, want: decisionHold}, // watching 3/3
				// Window over: a fresh passing shadow can promote again.
				{shadow: true, rep: window(20, 20, 20), requests: 500, want: decisionHold},
				{shadow: true, rep: window(40, 40, 40), requests: 520, want: decisionPromote},
			},
		},
		{
			name: "tiny post-promote window (0/0 rate) does not roll back",
			ticks: []tick{
				{shadow: true, rep: window(20, 20, 20), requests: 100, want: decisionHold},
				{shadow: true, rep: window(40, 40, 40), requests: 100, want: decisionPromote},
				// Only 2 requests since promote — below MinRegressionRequests,
				// even though both errored.
				{requests: 102, errors: 2, want: decisionHold},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := newPolicyState(pol)
			for i, tk := range tc.ticks {
				// Error counters are cumulative from deployment start; the
				// scripted values start at the promote tick's base.
				got, why := ps.step(policyInputs{
					shadow:   tk.shadow,
					gate:     gateOf(pol, tk.rep),
					requests: tk.requests,
					errors:   tk.errors,
				})
				if got != tk.want {
					t.Fatalf("tick %d: decision %v (%s), want %v", i, got, why, tk.want)
				}
			}
		})
	}
}

// TestPolicyDefaults pins the zero-value policy to sane production gates.
func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.MinMirrored <= 0 || p.MinAgreement <= 0 || p.Hysteresis <= 0 ||
		p.RollbackWindow <= 0 || p.MaxRegressionErrorRate <= 0 || p.MinRegressionRequests <= 0 ||
		p.MaxPromoteShedRate <= 0 {
		t.Fatalf("zero-value policy left a gate disabled: %+v", p)
	}
	// Hysteresis must be at least 2: a single lucky window should never
	// promote on its own.
	if p.Hysteresis < 2 {
		t.Fatalf("default hysteresis %d allows one-shot promotion", p.Hysteresis)
	}
}
