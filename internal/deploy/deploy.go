// Package deploy implements Overton's deployment registry: a fleet of
// named, versioned model deployments behind one serving front. Each
// Deployment owns a model, its schema-derived serving signature, its own
// micro-batch collector (reusing the pooled inference sessions of
// internal/model), per-deployment SLA stats, a bounded ingest buffer for
// streaming supervision, and optionally a shadow candidate that receives
// mirrored live traffic. Shadow outputs are compared against the primary's
// and accumulated in a monitor.ShadowSeries, so a retrained model is
// evaluated on production traffic before an atomic Promote — the paper's
// monitor-then-improve loop as a serving primitive. Rollback restores the
// previous primary.
//
// Serving code depends only on the signature, never on model internals:
// Swap, SetShadow, and Promote verify the incoming model serves the same
// signature, which is exactly the model-independence contract that lets
// retrained or re-tuned models deploy without serving changes.
package deploy

import (
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/record"
	"repro/internal/schema"
)

// Batching defaults; tune with WithBatchSize / WithMaxWait.
const (
	defaultBatchSize = 16
	defaultMaxWait   = 2 * time.Millisecond
	// jobQueueDepth bounds requests waiting for the collector.
	jobQueueDepth = 256
	// shadowLaneWidth bounds concurrently mirrored shadow predictions;
	// excess mirrors are shed (and counted) so shadow traffic can never
	// backpressure the primary path.
	shadowLaneWidth = 4
)

// ErrClosed is returned for requests against a closed deployment.
var ErrClosed = errors.New("deploy: deployment closed")

// Deployment is one named, versioned serving unit.
type Deployment struct {
	name string

	mu          sync.RWMutex
	m           *model.Model
	version     int
	prev        *model.Model // previous primary, kept for Rollback
	prevVersion int
	shadow      *model.Model // candidate receiving mirrored traffic
	shadowVer   int
	promotions  int64
	rollbacks   int64

	batchSize int
	maxWait   time.Duration
	jobs      chan *predictJob
	closed    chan struct{}
	closeOnce sync.Once

	shadowSem chan struct{}
	// shadowMu/shadowCond/shadowInflight track in-flight mirror
	// goroutines. A plain WaitGroup is unusable here: mirror() calls Add
	// while FlushShadow Waits, the documented WaitGroup misuse.
	shadowMu       sync.Mutex
	shadowCond     *sync.Cond
	shadowInflight int
	// series is the current comparison epoch. SetShadow and Promote swap
	// in a fresh series rather than resetting, so a mirror goroutine
	// started under an old shadow records into the old epoch's (now
	// discarded) series instead of polluting the new one.
	series *monitor.ShadowSeries

	lat *latencyStats
	buf *recordBuffer

	// Admission control (limits.go): the hot path reads one atomic
	// pointer; admitMu serialises writers (SetLimits, budget attachment).
	admitMu       sync.Mutex
	admission     atomic.Pointer[admissionState]
	inflight      atomic.Int64 // queued + executing predicts
	load          *monitor.LoadSeries
	initialLimits Limits // captured by WithLimits for New

	bufferCap int
	now       func() time.Time

	// loopMu guards the continuous-improvement controller (see
	// controller.go); lastLoop preserves a stopped loop's final status.
	loopMu   sync.Mutex
	loop     *controller
	lastLoop LoopStatus

	// Durability (persist.go): the attached persister, and ingestMu,
	// which makes "append to the WAL" and "append to the ingest buffer"
	// one atomic step so the WAL watermark captured at drain time is
	// exact.
	persist  atomic.Pointer[persisterBox]
	ingestMu sync.Mutex

	// Panic containment (panic.go): primary/shadow panic counts under the
	// current primary and the self-quarantine flag.
	panics       atomic.Int64
	shadowPanics atomic.Int64
	quarantined  atomic.Bool
	panicBudget  int

	// Observation sinks (telemetry.go): the fleet telemetry logger and
	// the live slice window, both nil/empty unless attached.
	telemetrySinks

	// Slice alert webhooks (alerts.go): the running evaluator plus the
	// test-injectable evaluation interval and HTTP client.
	alertMu       sync.Mutex
	alerter       *alerter
	alertInterval time.Duration
	alertClient   *http.Client
}

// Option customises a Deployment.
type Option func(*Deployment)

// WithBatchSize sets the micro-batcher's maximum batch size (default 16).
func WithBatchSize(n int) Option {
	return func(d *Deployment) {
		if n > 0 {
			d.batchSize = n
		}
	}
}

// WithMaxWait sets how long the collector waits for stragglers after the
// first request of a batch arrives (default 2ms). Zero disables waiting:
// each batch is whatever is already queued.
func WithMaxWait(wait time.Duration) Option {
	return func(d *Deployment) { d.maxWait = wait }
}

// WithBufferCap sets the ingest buffer capacity (default 4096 records).
func WithBufferCap(n int) Option {
	return func(d *Deployment) { d.bufferCap = n }
}

// New creates a deployment serving m under name/version and starts its
// batch collector. Call Close to stop the collector when retiring the
// deployment.
func New(name string, m *model.Model, version int, opts ...Option) *Deployment {
	d := &Deployment{
		name:        name,
		m:           m,
		version:     version,
		batchSize:   defaultBatchSize,
		maxWait:     defaultMaxWait,
		jobs:        make(chan *predictJob, jobQueueDepth),
		closed:      make(chan struct{}),
		shadowSem:   make(chan struct{}, shadowLaneWidth),
		series:      monitor.NewShadowSeries(),
		lat:         newLatencyStats(),
		load:        monitor.NewLoadSeries(),
		now:         time.Now,
		panicBudget: defaultPanicBudget,
	}
	for _, o := range opts {
		o(d)
	}
	d.shadowCond = sync.NewCond(&d.shadowMu)
	d.buf = newRecordBuffer(d.bufferCap)
	// Invalid construction-time limits cannot be reported (Option has no
	// error path); fall back to unlimited. SetLimits validates.
	norm, err := d.initialLimits.normalize()
	if err != nil {
		norm = Limits{}
	}
	d.storeAdmission(norm, nil)
	go d.collect()
	return d
}

// Name returns the deployment's registry name.
func (d *Deployment) Name() string { return d.name }

// Version returns the current primary model version.
func (d *Deployment) Version() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// Schema returns the serving schema of the current primary.
func (d *Deployment) Schema() *schema.Schema {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.m.Prog.Schema
}

// Signature returns the serving signature of the current primary.
func (d *Deployment) Signature() *schema.Signature {
	return d.Schema().Signature()
}

// Info returns the primary model's artifact metadata.
func (d *Deployment) Info() model.Info {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.m.Info()
}

// Close stops the batch collector and the continuous-improvement controller
// (when one is running), waiting for the controller goroutine to exit — a
// closed deployment leaks nothing. In-flight requests receive errors;
// subsequent requests are rejected. Safe to call more than once, and safe
// to race with Predict, Swap, Ingest, and StartLoop/StopLoop.
func (d *Deployment) Close() {
	d.closeOnce.Do(func() { close(d.closed) })
	// Lock barriers: every persisting mutation re-checks d.closed under
	// the lock it mutates under, so passing through both locks here
	// guarantees that once Close returns, no further lifecycle event can
	// be journaled for this deployment — a mutation either completed
	// (and journaled) before this point or will observe closed.
	d.mu.Lock()
	_ = d.version
	d.mu.Unlock()
	d.admitMu.Lock()
	_ = d.initialLimits
	d.admitMu.Unlock()
	d.stopLoopForClose()
	d.stopAlertsForClose()
}

// Closed reports whether the deployment has been closed.
func (d *Deployment) Closed() bool {
	select {
	case <-d.closed:
		return true
	default:
		return false
	}
}

// checkSignature verifies m serves the deployment's current signature.
func (d *Deployment) checkSignature(m *model.Model) error {
	if m == nil {
		return fmt.Errorf("deploy %s: nil model", d.name)
	}
	cur := d.m.Prog.Schema.Signature()
	next := m.Prog.Schema.Signature()
	if !reflect.DeepEqual(cur, next) {
		return fmt.Errorf("deploy %s: model signature differs from the deployed signature", d.name)
	}
	return nil
}

// Swap replaces the served model atomically (deploying a new version
// out-of-band). The previous primary is retained for Rollback. The
// incoming model must serve the same signature. Swapping a closed
// deployment returns ErrClosed — it must never panic, since deploy
// automation can race retirement. A new primary clears any quarantine.
// With a persister attached, the swap event (and the incoming model's
// snapshot) is made durable before the swap applies; a persist failure
// fails the swap with the deployment unchanged.
func (d *Deployment) Swap(m *model.Model, version int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Closed() {
		return ErrClosed
	}
	if err := d.checkSignature(m); err != nil {
		return err
	}
	if err := d.persistEvent(Event{Type: EventSwap, Dep: d.name, Version: version}, m); err != nil {
		return err
	}
	d.prev, d.prevVersion = d.m, d.version
	d.m, d.version = m, version
	d.resetHealth()
	return nil
}

// SetShadow installs (or, with a nil model, removes) the shadow candidate.
// Mirrored-traffic comparison restarts from zero, as does the shadow
// panic count. With a persister attached, the candidate's snapshot is
// durable before the install applies.
func (d *Deployment) SetShadow(m *model.Model, version int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Closed() {
		return ErrClosed
	}
	if m == nil {
		if err := d.persistEvent(Event{Type: EventSetShadow, Dep: d.name, Clear: true}, nil); err != nil {
			return err
		}
		d.shadow, d.shadowVer = nil, 0
		d.series = monitor.NewShadowSeries()
		d.shadowPanics.Store(0)
		return nil
	}
	if err := d.checkSignature(m); err != nil {
		return err
	}
	if err := d.persistEvent(Event{Type: EventSetShadow, Dep: d.name, Version: version}, m); err != nil {
		return err
	}
	d.shadow, d.shadowVer = m, version
	d.series = monitor.NewShadowSeries()
	d.shadowPanics.Store(0)
	return nil
}

// Promote atomically makes the shadow candidate the primary. The old
// primary is retained for Rollback; the shadow slot empties and its
// comparison series resets (a promotion starts a new epoch). The fresh
// primary starts unquarantined with a zero panic count. With a persister
// attached, the promote event is journaled before it applies — the
// candidate's snapshot was already made durable by SetShadow, so a crash
// at any instant recovers to the pre- or post-promote version.
func (d *Deployment) Promote() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Closed() {
		return 0, ErrClosed
	}
	if d.shadow == nil {
		return 0, fmt.Errorf("deploy %s: no shadow to promote", d.name)
	}
	if err := d.persistEvent(Event{Type: EventPromote, Dep: d.name, Version: d.shadowVer}, nil); err != nil {
		return 0, err
	}
	d.prev, d.prevVersion = d.m, d.version
	d.m, d.version = d.shadow, d.shadowVer
	d.shadow, d.shadowVer = nil, 0
	d.promotions++
	d.series = monitor.NewShadowSeries()
	d.resetHealth()
	return d.version, nil
}

// Rollback atomically restores the previous primary (the one displaced by
// the last Swap or Promote), clearing any quarantine.
func (d *Deployment) Rollback() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Closed() {
		return 0, ErrClosed
	}
	if d.prev == nil {
		return 0, fmt.Errorf("deploy %s: nothing to roll back to", d.name)
	}
	if err := d.persistEvent(Event{Type: EventRollback, Dep: d.name, Version: d.prevVersion}, nil); err != nil {
		return 0, err
	}
	d.m, d.version, d.prev, d.prevVersion = d.prev, d.prevVersion, d.m, d.version
	d.rollbacks++
	d.resetHealth()
	return d.version, nil
}

// Predict runs one validated record through the deployment's micro-batch
// collector and, when a shadow is installed, mirrors the request to it in
// the background. Returns the output and the version that served it.
//
// Admission control runs first: a quarantined deployment (see
// WithPanicBudget) sheds with a *QuarantineError — errors.Is(err,
// ErrQuarantined), HTTP 503 upstream — and a request past the
// deployment's QPS or queue-depth limits (or the registry-wide
// concurrency budget) returns a *ShedError — errors.Is(err, ErrShed) —
// before touching the model or the queue, so overload sheds instead of
// queueing. Shed requests are counted in the deployment's load series,
// not its served/error stats.
func (d *Deployment) Predict(rec *record.Record) (model.Output, int, error) {
	if q := d.checkQuarantine(); q != nil {
		if d.observing() {
			d.emitShed(rec, "quarantine")
		}
		return nil, 0, q
	}
	budget, shed := d.admit()
	if shed != nil {
		if d.observing() {
			d.emitShed(rec, shed.Reason)
		}
		return nil, 0, shed
	}
	defer d.release(budget)
	start := d.now()
	d.mu.RLock()
	m, version := d.m, d.version
	shadow, shadowVer, series := d.shadow, d.shadowVer, d.series
	d.mu.RUnlock()

	job := &predictJob{rec: rec, m: m, resp: make(chan predictResult, 1)}
	select {
	case d.jobs <- job:
	case <-d.closed:
		d.lat.recordServedError()
		return nil, version, ErrClosed
	}
	var res predictResult
	select {
	case res = <-job.resp:
	case <-d.closed:
		d.lat.recordServedError()
		return nil, version, ErrClosed
	}
	if res.err != nil {
		d.lat.recordServedError()
		if d.observing() {
			d.emitPredict(rec, version, float64(d.now().Sub(start).Microseconds())/1000.0, true, nil)
		}
		return nil, version, res.err
	}
	if shadow != nil {
		d.mirror(shadow, shadowVer, series, rec, res.out)
	}
	ms := float64(d.now().Sub(start).Microseconds()) / 1000.0
	d.lat.recordLatency(ms)
	if d.observing() {
		d.emitPredict(rec, version, ms, false, res.out)
	}
	return res.out, version, nil
}

// RecordError counts a request that failed before reaching Predict
// (malformed payloads, schema violations) against this deployment's stats.
func (d *Deployment) RecordError() { d.lat.recordError() }

// mirror runs the shadow prediction on a bounded background lane and feeds
// the comparison into the series of the epoch the request was served
// under (a concurrent SetShadow/Promote swaps in a fresh series; this
// late mirror then lands in the discarded one). When every lane slot is
// busy the mirror is shed and counted — the primary path never waits on
// shadow work.
func (d *Deployment) mirror(shadow *model.Model, shadowVer int, series *monitor.ShadowSeries, rec *record.Record, primary model.Output) {
	select {
	case d.shadowSem <- struct{}{}:
	default:
		series.ObserveDropped()
		return
	}
	d.shadowMu.Lock()
	d.shadowInflight++
	d.shadowMu.Unlock()
	go func() {
		defer func() {
			<-d.shadowSem
			d.shadowMu.Lock()
			d.shadowInflight--
			if d.shadowInflight == 0 {
				d.shadowCond.Broadcast()
			}
			d.shadowMu.Unlock()
		}()
		out, err := d.safeShadowPredict(shadow, rec)
		if err != nil {
			series.ObserveError()
			if d.observing() {
				d.emitShadowError(rec, shadowVer)
			}
			return
		}
		comps := series.Observe(primary, out)
		if d.observing() {
			d.emitShadowComparison(rec, shadowVer, comps)
		}
	}()
}

// FlushShadow blocks until every in-flight mirrored prediction has been
// recorded — used before reading comparison stats at a decision point
// (and by tests). Safe to call concurrently with live mirroring.
func (d *Deployment) FlushShadow() {
	d.shadowMu.Lock()
	for d.shadowInflight > 0 {
		d.shadowCond.Wait()
	}
	d.shadowMu.Unlock()
}

// Ingest appends validated records to the deployment's buffer for later
// fine-tuning or label-model updates, returning how many previously
// buffered records this call overwrote (streaming windows overwrite the
// oldest when full; callers surface the count instead of dropping it
// silently). A closed deployment rejects ingestion — Close's contract is
// that subsequent requests fail, and a closed deployment's buffer will
// never be drained.
//
// With a persister attached, the records are appended to the durable
// ingest WAL before the buffer accepts them (write-ahead): a WAL failure
// rejects the ingest so the producer knows the records are not durable,
// and a crash replays every accepted-but-unprocessed record on recovery.
func (d *Deployment) Ingest(recs ...*record.Record) (int, error) {
	if d.Closed() {
		return 0, ErrClosed
	}
	p := d.persister()
	if p == nil {
		return d.buf.append(recs...), nil
	}
	// ingestMu makes WAL append + buffer append one step, so the
	// buffer's accepted-record count stays exactly the WAL sequence.
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
	if err := p.AppendIngest(d.name, recs); err != nil {
		return 0, fmt.Errorf("deploy %s: ingest wal: %w", d.name, err)
	}
	return d.buf.append(recs...), nil
}

// RestoreIngest refills the ingest buffer with records replayed from a
// durable WAL, without re-persisting them. Recovery only (fleetstate
// replays the unprocessed WAL tail through here before attaching the
// store); on a deployment with a persister attached, use Ingest.
func (d *Deployment) RestoreIngest(recs ...*record.Record) {
	d.buf.append(recs...)
}

// IngestStats returns the buffer counters without touching the latency
// ring (Stats sorts the whole sample window; the ingest path only needs
// these three numbers).
func (d *Deployment) IngestStats() (ingested int64, buffered int, dropped int64) {
	return d.buf.stats()
}

// Drain returns the buffered ingested records in arrival order and clears
// the buffer; the caller (a fine-tuning pipeline) takes ownership. With a
// persister attached, the ingest WAL is checkpointed at the drain's
// watermark immediately — Drain hands ownership (and so durability
// responsibility) to the caller. The in-process improvement loop instead
// uses drainMarked and checkpoints only after it has folded the records
// into its incremental update, so a crash mid-update replays them.
func (d *Deployment) Drain() []*record.Record {
	recs, mark := d.drainMarked()
	if p := d.persister(); p != nil {
		_ = p.CheckpointIngest(d.name, mark)
	}
	return recs
}

// drainMarked drains the buffer and returns the WAL watermark covering
// the drained records, without checkpointing. The ingestMu exchange
// guarantees no Ingest is between its WAL append and its buffer append,
// so the returned mark is exact.
func (d *Deployment) drainMarked() ([]*record.Record, int64) {
	d.ingestMu.Lock()
	defer d.ingestMu.Unlock()
	return d.buf.drainCount()
}

// checkpointIngest checkpoints the ingest WAL at mark (no-op without a
// persister). Called by the improvement loop after it has durably
// consumed a drained batch.
func (d *Deployment) checkpointIngest(mark int64) {
	if p := d.persister(); p != nil {
		_ = p.CheckpointIngest(d.name, mark)
	}
}

// primary returns the current primary model and its version.
func (d *Deployment) primary() (*model.Model, int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.m, d.version
}

// ModelArtifact serialises the primary (or, with shadow set, the
// installed shadow) to its Save byte form, returning the artifact and
// the version it carries — the payload the cluster tier frames with
// fleetstate's checksummed snapshot header and ships between replicas.
func (d *Deployment) ModelArtifact(shadow bool) ([]byte, int, error) {
	d.mu.RLock()
	m, ver := d.m, d.version
	if shadow {
		m, ver = d.shadow, d.shadowVer
	}
	d.mu.RUnlock()
	if m == nil {
		return nil, 0, fmt.Errorf("deploy %s: no shadow installed", d.name)
	}
	b, err := m.Bytes()
	if err != nil {
		return nil, 0, fmt.Errorf("deploy %s: serialise model: %w", d.name, err)
	}
	return b, ver, nil
}

// SetPrecision switches the serving precision of the primary (and the
// installed shadow, so mirrored comparisons run on the same plane the
// candidate would serve at if promoted). Safe to call while serving:
// precision is an atomic model attribute and in-flight batches finish on
// the plane they started on.
func (d *Deployment) SetPrecision(p model.Precision) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.m.SetPrecision(p); err != nil {
		return err
	}
	if d.shadow != nil {
		if err := d.shadow.SetPrecision(p); err != nil {
			return err
		}
	}
	return nil
}

// shadowInfo reports the installed shadow's version (0, false when none).
func (d *Deployment) shadowInfo() (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.shadowVer, d.shadow != nil
}

// loopObservation is the improvement loop's per-tick read: the shadow
// comparison window (nil when no shadow) and the served-traffic counters.
// Deliberately cheaper than Stats — no latency-ring sort — and scoped to
// requests the model actually served, so client-side rejections cannot
// masquerade as a post-promotion regression.
func (d *Deployment) loopObservation() (shadow *monitor.ShadowReport, served, servedErrors int64) {
	d.mu.RLock()
	var series *monitor.ShadowSeries
	if d.shadow != nil {
		series = d.series
	}
	d.mu.RUnlock()
	if series != nil {
		shadow = series.Snapshot()
	}
	served, servedErrors = d.lat.servedCounters()
	return shadow, served, servedErrors
}

// Stats snapshots the deployment's serving profile.
func (d *Deployment) Stats() Stats {
	d.mu.RLock()
	st := Stats{
		Name:          d.name,
		Version:       d.version,
		ShadowVersion: d.shadowVer,
		Precision:     string(d.m.Precision()),
		Promotions:    d.promotions,
		Rollbacks:     d.rollbacks,
	}
	var series *monitor.ShadowSeries
	if d.shadow != nil {
		series = d.series
	}
	d.mu.RUnlock()
	d.lat.snapshot(&st)
	st.Ingested, st.Buffered, st.Dropped = d.buf.stats()
	if series != nil {
		st.Shadow = series.Snapshot()
	}
	if lim := d.Limits(); !lim.unlimited() {
		st.Limits = &lim
	}
	if load := d.load.Snapshot(); load.Offered() > 0 {
		st.Load = &load
	}
	st.InFlight = d.inflight.Load()
	st.Panics, st.ShadowPanics = d.panics.Load(), d.shadowPanics.Load()
	st.Quarantined = d.quarantined.Load()
	st.Slices = d.sliceReports()
	st.Alerts = d.AlertStatus()
	return st
}

// predictJob carries one validated request through the micro-batcher,
// pinned to the model snapshot it was validated against so a mid-flight
// Swap cannot run it (or report provenance) under a different model.
type predictJob struct {
	rec  *record.Record
	m    *model.Model
	resp chan predictResult
}

type predictResult struct {
	out model.Output
	err error
}

// collect is the micro-batch loop: take the first job, opportunistically
// drain whatever else is already queued, then hand the batch to a
// predictor goroutine (bounded by a GOMAXPROCS-wide semaphore) so batches
// overlap on multi-core hosts — Model.Predict is concurrency-safe via its
// pooled sessions. The MaxWait straggler window only applies when every
// predictor slot is busy: an idle deployment dispatches a lone request
// immediately (no latency floor), while a saturated one amortises the wait
// it would spend blocked on a slot anyway into a bigger batch.
func (d *Deployment) collect() {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for {
		select {
		case j := <-d.jobs:
			batch := make([]*predictJob, 0, d.batchSize)
			batch = append(batch, j)
		drain:
			for len(batch) < d.batchSize {
				select {
				case j2 := <-d.jobs:
					batch = append(batch, j2)
				default:
					break drain
				}
			}
			select {
			case sem <- struct{}{}:
				// Free predictor: run what we have right now.
			default:
				// All predictors busy; gather stragglers while waiting.
				if d.maxWait > 0 && d.batchSize > 1 {
					timer := time.NewTimer(d.maxWait)
				fill:
					for len(batch) < d.batchSize {
						select {
						case j2 := <-d.jobs:
							batch = append(batch, j2)
						case <-timer.C:
							break fill
						}
					}
					timer.Stop()
				}
				sem <- struct{}{}
			}
			go func(batch []*predictJob) {
				defer func() { <-sem }()
				d.runBatch(batch)
			}(batch)
		case <-d.closed:
			// Fail any queued jobs so no caller blocks forever;
			// already-dispatched batches finish on their own goroutines.
			// A job enqueued after this drain is answered by its caller's
			// own closed-channel select, so nothing can deadlock.
			for {
				select {
				case j := <-d.jobs:
					j.resp <- predictResult{err: ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// runBatch predicts one micro-batch. Jobs run under the model snapshot
// they were validated against (a mid-window Swap splits the batch into
// per-model runs). If a batched pass fails (e.g. one record is missing a
// required payload the schema validation does not cover), it falls back to
// per-record passes so a single bad request cannot poison the others
// sharing its batch. Both passes run with panic containment (panic.go): a
// panicking model fails its own requests with *ModelPanicError, never the
// worker goroutine.
func (d *Deployment) runBatch(batch []*predictJob) {
	for start := 0; start < len(batch); {
		m := batch[start].m
		end := start + 1
		for end < len(batch) && batch[end].m == m {
			end++
		}
		run := batch[start:end]
		recs := make([]*record.Record, len(run))
		for i, j := range run {
			recs[i] = j.rec
		}
		outs, err := d.safePredict(m, recs)
		switch {
		case err == nil:
			for i, j := range run {
				j.resp <- predictResult{out: outs[i]}
			}
		case len(run) == 1:
			// No fallback will re-run this request, so the batched-pass
			// panic is charged here.
			var perr *ModelPanicError
			if errors.As(err, &perr) {
				d.countPanic()
			}
			run[0].resp <- predictResult{err: err}
		default:
			// Per-record fallback. The batched-pass panic is deliberately
			// not charged: the record that caused it panics again in
			// safePredictOne and is charged exactly once there, so one
			// poison request costs one budget hit.
			for _, j := range run {
				out, err := d.safePredictOne(m, j.rec)
				j.resp <- predictResult{out: out, err: err}
			}
		}
		start = end
	}
}
