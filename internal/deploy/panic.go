package deploy

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/record"
)

// Panic containment. A model is arbitrary numeric code over
// attacker-shaped inputs; a panic inside one inference must cost exactly
// the requests sharing that inference — never the process, and never a
// neighbouring deployment. Every model invocation on the serving path
// (the batched predict, its per-record fallback, and the shadow mirror
// lane) runs under a recover that converts the panic into a typed
// *ModelPanicError. Panics on the primary lane are counted; when a
// deployment exhausts its configurable panic budget it quarantines
// itself — subsequent requests shed with ErrQuarantined (HTTP 503)
// instead of reaching the model — while the rest of the fleet keeps
// serving. Installing a different primary (Swap, Promote, Rollback)
// clears the quarantine and the panic count: with -auto-improve, a
// deployment whose model panics its way into quarantine can heal itself
// by promoting the next candidate. Shadow panics are counted separately
// and never quarantine the deployment (the shadow lane already may not
// affect the primary).

// defaultPanicBudget is how many primary-lane model panics quarantine a
// deployment when WithPanicBudget is not used.
const defaultPanicBudget = 3

// ErrQuarantined is the sentinel for requests shed because the
// deployment quarantined itself after repeated model panics. Use
// errors.Is(err, ErrQuarantined); the concrete *QuarantineError carries
// the deployment and its panic count.
var ErrQuarantined = errors.New("deploy: deployment quarantined after repeated model panics")

// QuarantineError reports a request shed by a quarantined deployment.
// It unwraps to ErrQuarantined and maps to HTTP 503 at the serving
// front.
type QuarantineError struct {
	// Deployment is the quarantined deployment's registry name.
	Deployment string
	// Panics is the primary-lane panic count that exhausted the budget.
	Panics int64
}

// Error formats the quarantine with its panic count.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("deploy %s: quarantined after %d model panics", e.Deployment, e.Panics)
}

// Is reports target == ErrQuarantined so errors.Is works across the wrap.
func (e *QuarantineError) Is(target error) bool { return target == ErrQuarantined }

// ModelPanicError reports a panic recovered from a model invocation. The
// request that triggered it receives this error; the process and the
// other requests in flight are unaffected.
type ModelPanicError struct {
	// Deployment is the deployment whose model panicked.
	Deployment string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error formats the panic with its value.
func (e *ModelPanicError) Error() string {
	return fmt.Sprintf("deploy %s: model panicked: %v", e.Deployment, e.Value)
}

// WithPanicBudget sets how many primary-lane model panics quarantine the
// deployment (default 3). n < 0 disables quarantining (panics are still
// contained and counted); n == 0 keeps the default.
func WithPanicBudget(n int) Option {
	return func(d *Deployment) {
		if n != 0 {
			d.panicBudget = n
		}
	}
}

// Quarantined reports whether the deployment has quarantined itself.
func (d *Deployment) Quarantined() bool { return d.quarantined.Load() }

// Panics returns the primary-lane and shadow-lane model panic counts
// under the current primary (reset when the primary changes).
func (d *Deployment) Panics() (primary, shadow int64) {
	return d.panics.Load(), d.shadowPanics.Load()
}

// panicError converts a recovered panic value into the typed error
// without charging the panic budget.
func (d *Deployment) panicError(v any) *ModelPanicError {
	return &ModelPanicError{Deployment: d.name, Value: v, Stack: debug.Stack()}
}

// countPanic charges one primary-lane panic against the budget and
// quarantines the deployment once it is exhausted. The trip (the
// false→true transition only) is logged on the lifecycle telemetry
// stream.
func (d *Deployment) countPanic() {
	n := d.panics.Add(1)
	if d.panicBudget > 0 && n >= int64(d.panicBudget) {
		if !d.quarantined.Swap(true) {
			d.emitLifecycle("quarantine", map[string]any{"panics": n})
		}
	}
}

// notePanic converts a recovered primary-lane panic value into the typed
// error and charges it against the budget.
func (d *Deployment) notePanic(v any) *ModelPanicError {
	perr := d.panicError(v)
	d.countPanic()
	return perr
}

// resetHealth clears the panic count and quarantine — called under d.mu
// whenever a different primary is installed.
func (d *Deployment) resetHealth() {
	d.panics.Store(0)
	d.quarantined.Store(false)
}

// checkQuarantine sheds the request when the deployment is quarantined.
func (d *Deployment) checkQuarantine() *QuarantineError {
	if !d.quarantined.Load() {
		return nil
	}
	d.load.ObserveShed(monitor.ShedQuarantine)
	return &QuarantineError{Deployment: d.name, Panics: d.panics.Load()}
}

// safePredict runs one batched inference with panic containment. The
// faultinject site "deploy.predict.<name>" lets tests inject panics and
// errors exactly here — the same frame a real model panic unwinds to.
// A batched-pass panic is NOT charged against the budget here: runBatch
// charges it only when no per-record fallback will re-run the batch, so
// one poison record costs one budget hit, not two.
func (d *Deployment) safePredict(m *model.Model, recs []*record.Record) (outs []model.Output, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = d.panicError(v)
		}
	}()
	if err := faultinject.Fire("deploy.predict." + d.name); err != nil {
		return nil, err
	}
	return m.Predict(recs)
}

// safePredictOne is safePredict for the per-record fallback lane.
func (d *Deployment) safePredictOne(m *model.Model, rec *record.Record) (out model.Output, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = d.notePanic(v)
		}
	}()
	if err := faultinject.Fire("deploy.predict." + d.name); err != nil {
		return nil, err
	}
	return m.PredictOne(rec)
}

// safeShadowPredict runs one mirrored shadow inference with panic
// containment. Shadow panics count in their own series and never
// quarantine the deployment.
func (d *Deployment) safeShadowPredict(shadow *model.Model, rec *record.Record) (out model.Output, err error) {
	defer func() {
		if v := recover(); v != nil {
			d.shadowPanics.Add(1)
			err = &ModelPanicError{Deployment: d.name, Value: v, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Fire("deploy.shadow." + d.name); err != nil {
		return nil, err
	}
	return shadow.PredictOne(rec)
}
