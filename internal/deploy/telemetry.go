package deploy

import (
	"fmt"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/record"
	"repro/internal/sliceql"
	"repro/internal/telemetry"
)

// Telemetry emission and live slices. A deployment can have two
// observation sinks attached, both fed from the same hook points on the
// serving path:
//
//   - a telemetry.Logger (attached fleet-wide via Registry.SetTelemetry)
//     that persists every event to the rotated JSONL streams the sliceql
//     engine queries offline, and
//   - a set of compiled slice definitions (SetSlices) whose bounded
//     in-memory window aggregates the same events live into the /stats
//     surface and the policy's slice gates.
//
// Both sinks are strictly off the latency path: with neither attached
// the serving hot path pays two atomic nil loads; with a logger attached
// the event is queued non-blocking (dropped and counted if the queue is
// full); the slice window is a mutex-guarded ring append.

// sliceState is one immutable generation of compiled slices plus its
// live window; SetSlices swaps whole generations atomically.
type sliceState struct {
	defs     []sliceql.SliceDef
	compiled []*sliceql.Slice
	win      *sliceql.Window
}

// SetTelemetry attaches the fleet's telemetry logger to every current
// and future deployment (nil detaches). Mirrors the persister pattern:
// the registry owns the plumbing; deployments just emit.
func (r *Registry) SetTelemetry(l *telemetry.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tel = l
	for _, d := range r.deps {
		d.setTelemetry(l)
	}
}

// Telemetry returns the attached fleet telemetry logger (nil when
// telemetry is off) — the serving front uses it to answer /v1/query.
func (r *Registry) Telemetry() *telemetry.Logger {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tel
}

// setTelemetry attaches (or with nil detaches) the logger.
func (d *Deployment) setTelemetry(l *telemetry.Logger) {
	d.tel.Store(l)
}

// SetSlices installs (or with an empty list removes) the deployment's
// live slice definitions. The definitions are compiled up front —
// a bad predicate is rejected here, never at serving time — and the
// observation window restarts empty: a slice set change begins a new
// aggregation epoch.
func (d *Deployment) SetSlices(defs []sliceql.SliceDef) error {
	if len(defs) == 0 {
		d.slices.Store(nil)
		return nil
	}
	compiled, err := sliceql.CompileSlices(defs)
	if err != nil {
		return fmt.Errorf("deploy %s: %w", d.name, err)
	}
	d.slices.Store(&sliceState{
		defs:     append([]sliceql.SliceDef(nil), defs...),
		compiled: compiled,
		win:      sliceql.NewWindow(0),
	})
	return nil
}

// SliceDefs returns the installed slice definitions (nil when none).
func (d *Deployment) SliceDefs() []sliceql.SliceDef {
	ss := d.slices.Load()
	if ss == nil {
		return nil
	}
	return append([]sliceql.SliceDef(nil), ss.defs...)
}

// sliceReports aggregates every installed slice over the live window —
// the Slices map in Stats.
func (d *Deployment) sliceReports() map[string]sliceql.SliceReport {
	ss := d.slices.Load()
	if ss == nil {
		return nil
	}
	events := ss.win.Snapshot()
	now := d.now()
	out := make(map[string]sliceql.SliceReport, len(ss.compiled))
	for _, s := range ss.compiled {
		out[s.Name] = sliceql.ReportSlice(events, s, now, nil)
	}
	return out
}

// observing reports whether any observation sink is attached — the
// hot-path guard that keeps event construction (a map allocation) off
// un-observed deployments.
func (d *Deployment) observing() bool {
	return d.tel.Load() != nil || d.slices.Load() != nil
}

// emit timestamps one event and fans it to the attached sinks.
func (d *Deployment) emit(ev telemetry.Event) {
	ss := d.slices.Load()
	l := d.tel.Load()
	if ss == nil && l == nil {
		return
	}
	ev.Dep = d.name
	if ev.TS.IsZero() {
		ev.TS = d.now()
	}
	if ss != nil {
		ss.win.Observe(ev.Flat())
	}
	if l != nil {
		l.Emit(ev)
	}
}

// eventTags merges a record's tags and slice memberships into one event
// tag list (slice names behave as bare tags in predicates).
func eventTags(rec *record.Record) []string {
	if rec == nil || (len(rec.Tags) == 0 && len(rec.Slices) == 0) {
		return nil
	}
	if len(rec.Slices) == 0 {
		return rec.Tags
	}
	tags := make([]string, 0, len(rec.Tags)+len(rec.Slices))
	tags = append(tags, rec.Tags...)
	return append(tags, rec.Slices...)
}

// emitPredict logs one served request on StreamPredict: latency, serving
// version, error flag, and the predicted class per classification task
// (so slices can select on model decisions, e.g. `task.Intent=refund`).
func (d *Deployment) emitPredict(rec *record.Record, version int, ms float64, failed bool, out model.Output) {
	errFlag := 0
	if failed {
		errFlag = 1
	}
	fields := map[string]any{
		"latency_ms": ms,
		"version":    version,
		"err":        errFlag,
	}
	for task, o := range out {
		if o.Class != "" {
			fields["task."+task] = o.Class
		}
	}
	d.emit(telemetry.Event{Stream: telemetry.StreamPredict, Tags: eventTags(rec), Fields: fields})
}

// emitShadowComparison logs one mirrored request's per-task agreement on
// StreamShadow — one event per task, carrying the same tags as the
// served request so slice predicates select shadow evidence the same way
// they select traffic.
func (d *Deployment) emitShadowComparison(rec *record.Record, shadowVer int, comps map[string]monitor.TaskComparison) {
	tags := eventTags(rec)
	for task, c := range comps {
		missing := 0.0
		if c.Missing {
			missing = c.Units
		}
		d.emit(telemetry.Event{Stream: telemetry.StreamShadow, Tags: tags, Fields: map[string]any{
			"task":           task,
			"agree":          c.Agree,
			"units":          c.Units,
			"missing":        missing,
			"err":            0,
			"shadow_version": shadowVer,
		}})
	}
}

// emitShadowError logs a mirrored request whose shadow prediction failed.
func (d *Deployment) emitShadowError(rec *record.Record, shadowVer int) {
	d.emit(telemetry.Event{Stream: telemetry.StreamShadow, Tags: eventTags(rec), Fields: map[string]any{
		"err":            1,
		"shadow_version": shadowVer,
	}})
}

// emitShed logs one shed request on StreamAdmission with its cause.
func (d *Deployment) emitShed(rec *record.Record, reason string) {
	d.emit(telemetry.Event{Stream: telemetry.StreamAdmission, Tags: eventTags(rec), Fields: map[string]any{
		"reason": reason,
	}})
}

// emitLifecycle logs one improvement-loop or health transition on
// StreamLifecycle.
func (d *Deployment) emitLifecycle(action string, fields map[string]any) {
	if fields == nil {
		fields = map[string]any{}
	}
	fields["action"] = action
	d.emit(telemetry.Event{Stream: telemetry.StreamLifecycle, Fields: fields})
}

// SliceGate is one slice-scoped promotion condition in a Policy: the
// named slice's live window must look healthy for the candidate to
// promote. Zero thresholds disable their check; a gate with only a name
// holds promotion solely when the slice is undefined (fail-closed
// wiring check).
type SliceGate struct {
	// Slice names a slice installed via SetSlices. A gate naming an
	// undefined slice fails closed — a typo must hold promotion, not
	// silently approve it.
	Slice string `json:"slice"`
	// MinAgreement is the minimum shadow agreement over the slice's
	// mirrored comparisons (0 disables). Evaluated only when the slice
	// window holds comparison units; combine with MinUnits to demand
	// evidence.
	MinAgreement float64 `json:"min_agreement,omitempty"`
	// MinUnits is the minimum number of comparison units the slice window
	// must hold before the candidate may promote (0 accepts an empty
	// window) — the guard against promoting on no slice evidence.
	MinUnits float64 `json:"min_units,omitempty"`
	// MaxErrorRate holds promotion while the slice's served error rate
	// exceeds it (0 disables) — a slice-scoped health hold, like the
	// fleet shed-rate hold.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// SliceGateResult is one slice gate's verdict for a tick, surfaced in
// LoopStatus.
type SliceGateResult struct {
	Slice string `json:"slice"`
	Pass  bool   `json:"pass"`
	// Reason explains a failing verdict.
	Reason string `json:"reason,omitempty"`
	// Agreement/Units/ErrorRate echo the numbers the verdict judged.
	Agreement float64 `json:"agreement"`
	Units     float64 `json:"units"`
	ErrorRate float64 `json:"error_rate"`
}

// evalSliceGates judges every configured slice gate against the live
// slice window, crediting only the current shadow version's comparisons
// (events from a replaced candidate must not vouch for this one).
func (d *Deployment) evalSliceGates(gates []SliceGate) []SliceGateResult {
	if len(gates) == 0 {
		return nil
	}
	ss := d.slices.Load()
	var events []map[string]any
	if ss != nil {
		events = ss.win.Snapshot()
	}
	now := d.now()
	shadowVer, _ := d.shadowInfo()
	sameShadow := func(ev map[string]any) bool {
		v, ok := ev["shadow_version"]
		if !ok {
			return false
		}
		switch x := v.(type) {
		case int:
			return x == shadowVer
		case float64:
			return int(x) == shadowVer
		}
		return false
	}
	results := make([]SliceGateResult, 0, len(gates))
	for _, g := range gates {
		res := SliceGateResult{Slice: g.Slice}
		var sl *sliceql.Slice
		if ss != nil {
			for _, s := range ss.compiled {
				if s.Name == g.Slice {
					sl = s
					break
				}
			}
		}
		if sl == nil {
			res.Reason = "slice not defined on this deployment"
			results = append(results, res)
			continue
		}
		rep := sliceql.ReportSlice(events, sl, now, sameShadow)
		res.Agreement, res.Units, res.ErrorRate = rep.Agreement, rep.Units, rep.ErrorRate
		switch {
		case g.MinUnits > 0 && rep.Units < g.MinUnits:
			res.Reason = fmt.Sprintf("%.0f comparison units < min %.0f", rep.Units, g.MinUnits)
		case g.MinAgreement > 0 && rep.Units > 0 && rep.Agreement < g.MinAgreement:
			res.Reason = fmt.Sprintf("agreement %.3f < min %.3f over %.0f units", rep.Agreement, g.MinAgreement, rep.Units)
		case g.MaxErrorRate > 0 && rep.Predicts > 0 && rep.ErrorRate > g.MaxErrorRate:
			res.Reason = fmt.Sprintf("error rate %.3f > max %.3f over %d requests", rep.ErrorRate, g.MaxErrorRate, rep.Predicts)
		default:
			res.Pass = true
		}
		results = append(results, res)
	}
	return results
}

// telemetrySinks is the pair of atomic sink slots embedded in
// Deployment (kept here so deploy.go stays focused on the serving path).
type telemetrySinks struct {
	tel    atomic.Pointer[telemetry.Logger]
	slices atomic.Pointer[sliceState]
}
