package deploy

import (
	"sync"

	"repro/internal/record"
)

// defaultBufferCap bounds a deployment's ingest buffer.
const defaultBufferCap = 4096

// recordBuffer is a bounded sliding window over a deployment's ingested
// records: when full, the newest record overwrites the oldest (streaming
// semantics — later fine-tuning wants the freshest traffic) and the drop
// is counted. All methods are safe for concurrent use.
type recordBuffer struct {
	mu       sync.Mutex
	buf      []*record.Record // ring storage, len == capacity
	pos      int              // next write position
	n        int              // live records (caps at len(buf))
	ingested int64            // total accepted since creation
	dropped  int64            // overwritten before being drained
}

func newRecordBuffer(capacity int) *recordBuffer {
	if capacity <= 0 {
		capacity = defaultBufferCap
	}
	return &recordBuffer{buf: make([]*record.Record, capacity)}
}

// append accepts recs into the window and returns how many previously
// buffered records this call overwrote, so per-request accounting (the
// ingest endpoint's response) can report its own drops rather than the
// buffer's lifetime total.
func (b *recordBuffer) append(recs ...*record.Record) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var overwrote int
	for _, r := range recs {
		if b.n == len(b.buf) {
			overwrote++ // overwriting the oldest live record
		} else {
			b.n++
		}
		b.buf[b.pos] = r
		b.pos++
		if b.pos == len(b.buf) {
			b.pos = 0
		}
	}
	b.dropped += int64(overwrote)
	b.ingested += int64(len(recs))
	return overwrote
}

// drain returns the buffered records in arrival order and clears the
// window (the fine-tuning pipeline takes ownership).
func (b *recordBuffer) drain() []*record.Record {
	recs, _ := b.drainCount()
	return recs
}

// drainCount is drain plus the buffer's cumulative accepted-record count
// at the instant of the drain — the WAL watermark: every accepted record
// with sequence <= ingested has either been returned by a drain or was
// overwritten (dropped) inside the window, so a persister may checkpoint
// its ingest WAL at this mark once the drained records are consumed.
func (b *recordBuffer) drainCount() ([]*record.Record, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == 0 {
		return nil, b.ingested
	}
	out := make([]*record.Record, 0, b.n)
	start := b.pos - b.n
	if start < 0 {
		start += len(b.buf)
	}
	for i := 0; i < b.n; i++ {
		j := start + i
		if j >= len(b.buf) {
			j -= len(b.buf)
		}
		out = append(out, b.buf[j])
		b.buf[j] = nil // release for GC
	}
	b.pos, b.n = 0, 0
	return out, b.ingested
}

func (b *recordBuffer) stats() (ingested int64, buffered int, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ingested, b.n, b.dropped
}
