package deploy

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
)

// Admission control: the registry-level guard that keeps one hot
// deployment from starving the fleet. Every Predict passes an admission
// check before it may touch the micro-batch queue; a request that fails
// the check is shed immediately (typed ShedError, HTTP 429 upstream) —
// never queued — so overload converts to fast, counted rejections
// instead of unbounded latency. Three independent checks, in the order
// that keeps the accounting honest (the token bucket last, so only a
// request that will actually run consumes a token):
//
//  1. queue depth — the deployment's in-flight work (queued + executing)
//     is at its configured bound;
//  2. budget — the registry-wide in-flight cap is exhausted;
//  3. QPS — the deployment's token bucket is empty.
//
// An unlimited deployment (no Limits, no Budget) pays only an atomic
// in-flight count and one atomic admit count on the hot path.

// ErrShed is the sentinel for requests rejected by admission control.
// Use errors.Is(err, ErrShed); the concrete *ShedError carries the cause
// and a retry hint.
var ErrShed = errors.New("deploy: request shed by admission control")

// Shed causes, as they appear in ShedError.Reason and the per-cause
// counters of a deployment's load series.
const (
	// ShedReasonQueue: the deployment's in-flight work was at QueueDepth.
	ShedReasonQueue = "queue"
	// ShedReasonBudget: the registry-wide concurrency budget was full.
	ShedReasonBudget = "budget"
	// ShedReasonQPS: the deployment's token bucket was empty.
	ShedReasonQPS = "qps"
)

// defaultRetryAfter is the retry hint for queue-depth and budget sheds,
// where there is no refill schedule to compute one from: in-flight work
// drains on the scale of a few batch windows.
const defaultRetryAfter = 50 * time.Millisecond

// ShedError reports a request rejected by admission control. It unwraps
// to ErrShed and maps to HTTP 429 + Retry-After at the serving front.
type ShedError struct {
	// Deployment is the registry name of the shedding deployment.
	Deployment string
	// Reason is one of ShedReasonQueue, ShedReasonQPS, ShedReasonBudget.
	Reason string
	// RetryAfter is the suggested client backoff: the token-bucket refill
	// time for QPS sheds, defaultRetryAfter otherwise.
	RetryAfter time.Duration
}

// Error formats the shed with its cause and retry hint.
func (e *ShedError) Error() string {
	return fmt.Sprintf("deploy %s: shed (%s), retry after %v", e.Deployment, e.Reason, e.RetryAfter)
}

// Is reports target == ErrShed so errors.Is works across the wrap.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// Limits is one deployment's admission configuration. The zero value is
// fully unlimited; each field independently disables its check at zero.
// Configured at construction with WithLimits, swapped at runtime with
// SetLimits, and exposed over POST /v1/models/{name}/limits.
type Limits struct {
	// QPS is the sustained admitted-requests-per-second rate (token
	// bucket refill rate). 0 = no rate limit.
	QPS float64 `json:"qps,omitempty"`
	// Burst is the token bucket capacity — how far above QPS a short
	// spike may go. 0 defaults to ceil(QPS) (min 1) when QPS is set.
	Burst int `json:"burst,omitempty"`
	// QueueDepth bounds the deployment's in-flight predict work (queued +
	// executing); an admission attempt beyond it is shed, not queued.
	// 0 = unbounded (the micro-batch channel still blocks at its own
	// capacity; keep QueueDepth at or below it for shed-don't-queue
	// semantics — see OPERATIONS.md).
	QueueDepth int `json:"queue_depth,omitempty"`
}

// normalize applies defaulting (Burst from QPS) and rejects nonsense.
func (l Limits) normalize() (Limits, error) {
	if l.QPS < 0 || math.IsNaN(l.QPS) || math.IsInf(l.QPS, 0) {
		return l, fmt.Errorf("deploy: limits: qps %v must be a finite non-negative number", l.QPS)
	}
	if l.Burst < 0 {
		return l, fmt.Errorf("deploy: limits: burst %d must be non-negative", l.Burst)
	}
	if l.QueueDepth < 0 {
		return l, fmt.Errorf("deploy: limits: queue_depth %d must be non-negative", l.QueueDepth)
	}
	if l.QPS > 0 && l.Burst == 0 {
		l.Burst = int(math.Ceil(l.QPS))
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l, nil
}

// unlimited reports whether every check is disabled.
func (l Limits) unlimited() bool { return l.QPS <= 0 && l.QueueDepth <= 0 }

// tokenBucket is a standard token-bucket rate limiter with an injected
// clock (tests drive refill timing deterministically). Safe for
// concurrent use.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket returns a bucket starting full (a fresh limit admits
// its whole burst immediately).
func newTokenBucket(qps float64, burst int, now func() time.Time) *tokenBucket {
	return &tokenBucket{
		rate:   qps,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now(),
		now:    now,
	}
}

// admit consumes one token if available. When it cannot, it returns the
// time until the bucket will have refilled one token — the client's
// Retry-After hint.
func (b *tokenBucket) admit() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Budget caps total in-flight predict work across a fleet — the
// registry-wide backstop behind the per-deployment limits, so that even
// many individually-within-limits deployments cannot oversubscribe the
// host. Acquire never blocks: over-budget admissions are shed. The zero
// Budget must not be used; NewBudget validates the cap.
type Budget struct {
	capacity int64
	inflight atomic.Int64
}

// NewBudget returns a budget admitting at most n concurrent requests;
// nil (no budget) when n <= 0.
func NewBudget(n int) *Budget {
	if n <= 0 {
		return nil
	}
	return &Budget{capacity: int64(n)}
}

// TryAcquire claims one in-flight slot, reporting false (and claiming
// nothing) when the budget is full.
func (b *Budget) TryAcquire() bool {
	if b.inflight.Add(1) > b.capacity {
		b.inflight.Add(-1)
		return false
	}
	return true
}

// Release returns a slot claimed by TryAcquire.
func (b *Budget) Release() { b.inflight.Add(-1) }

// InFlight is the number of currently claimed slots.
func (b *Budget) InFlight() int64 { return b.inflight.Load() }

// Cap is the budget's capacity.
func (b *Budget) Cap() int64 { return b.capacity }

// admissionState is the swappable admission configuration: SetLimits and
// the registry's budget attachment build a fresh state and store it
// atomically, so the hot path reads one pointer with no lock.
type admissionState struct {
	limits Limits
	bucket *tokenBucket // nil when QPS == 0
	budget *Budget      // nil when no registry budget
}

// WithLimits configures admission control at construction. Options have
// no error path, so invalid limits fall back to unlimited; use SetLimits
// for validated runtime changes.
func WithLimits(l Limits) Option {
	return func(d *Deployment) { d.initialLimits = l }
}

// SetLimits swaps the deployment's admission limits at runtime. The
// token bucket restarts full (a fresh burst); shed/admit counters are
// cumulative and survive the swap. A closed deployment returns ErrClosed.
// With a persister attached the limits change is journaled before it
// applies, so a recovered fleet enforces the limits it was running with.
func (d *Deployment) SetLimits(l Limits) error {
	norm, err := l.normalize()
	if err != nil {
		return err
	}
	d.admitMu.Lock()
	defer d.admitMu.Unlock()
	// Re-checked under admitMu: Close passes through this lock after
	// closing, so no limits event can be journaled after Close returns.
	if d.Closed() {
		return ErrClosed
	}
	lim := norm
	if err := d.persistEvent(Event{Type: EventLimits, Dep: d.name, Limits: &lim}, nil); err != nil {
		return err
	}
	d.storeAdmission(norm, d.admission.Load().budget)
	return nil
}

// Limits returns the deployment's current admission limits (the zero
// value when unlimited).
func (d *Deployment) Limits() Limits { return d.admission.Load().limits }

// Load snapshots the deployment's admission counters.
func (d *Deployment) Load() monitor.LoadReport { return d.load.Snapshot() }

// InFlight is the deployment's current in-flight predict work (queued +
// executing requests).
func (d *Deployment) InFlight() int64 { return d.inflight.Load() }

// attachBudget attaches (or, with nil, detaches) the registry-wide
// concurrency budget; the deployment's own limits are preserved.
func (d *Deployment) attachBudget(b *Budget) {
	d.admitMu.Lock()
	defer d.admitMu.Unlock()
	d.storeAdmission(d.admission.Load().limits, b)
}

// storeAdmission publishes a fresh admission state. Callers hold
// d.admitMu; normalization already happened.
func (d *Deployment) storeAdmission(l Limits, b *Budget) {
	st := &admissionState{limits: l, budget: b}
	if l.QPS > 0 {
		st.bucket = newTokenBucket(l.QPS, l.Burst, d.now)
	}
	d.admission.Store(st)
}

// admit runs the admission checks for one predict. On success it has
// claimed the in-flight slot (and a budget slot when budgeted) and
// returns the budget to release; the caller must call release with it
// exactly once. On failure it returns the typed shed.
//
// Every claim is add-then-undo (never read-then-add), so concurrent
// admissions cannot overshoot QueueDepth or the budget; and the token
// bucket is consulted last, so a request shed by depth or budget never
// consumes a QPS token (the bucket meters admitted work, and a token
// drained by a doomed request would make later traffic shed as "qps"
// when the rate was never the problem).
func (d *Deployment) admit() (*Budget, *ShedError) {
	st := d.admission.Load()
	n := d.inflight.Add(1)
	if depth := st.limits.QueueDepth; depth > 0 && n > int64(depth) {
		d.inflight.Add(-1)
		d.load.ObserveShed(monitor.ShedQueue)
		return nil, &ShedError{Deployment: d.name, Reason: ShedReasonQueue, RetryAfter: defaultRetryAfter}
	}
	if st.budget != nil && !st.budget.TryAcquire() {
		d.inflight.Add(-1)
		d.load.ObserveShed(monitor.ShedBudget)
		return nil, &ShedError{Deployment: d.name, Reason: ShedReasonBudget, RetryAfter: defaultRetryAfter}
	}
	if st.bucket != nil {
		if ok, retry := st.bucket.admit(); !ok {
			if st.budget != nil {
				st.budget.Release()
			}
			d.inflight.Add(-1)
			d.load.ObserveShed(monitor.ShedQPS)
			return nil, &ShedError{Deployment: d.name, Reason: ShedReasonQPS, RetryAfter: retry}
		}
	}
	d.load.ObserveAdmit()
	return st.budget, nil
}

// release returns the slots claimed by a successful admit.
func (d *Deployment) release(b *Budget) {
	d.inflight.Add(-1)
	if b != nil {
		b.Release()
	}
}
