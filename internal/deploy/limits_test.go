package deploy

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for deterministic token-bucket refill
// timing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTokenBucketTable pins the bucket's edge cases against an injected
// clock: burst exhaustion, refill timing, refill capping at burst, and
// the Retry-After hint when empty.
func TestTokenBucketTable(t *testing.T) {
	type step struct {
		advance   time.Duration
		wantAdmit bool
		// wantRetry is checked only on denied steps (0 = don't check).
		wantRetry time.Duration
	}
	cases := []struct {
		name  string
		qps   float64
		burst int
		steps []step
	}{
		{
			name: "burst exhaustion", qps: 1, burst: 3,
			steps: []step{
				{wantAdmit: true}, {wantAdmit: true}, {wantAdmit: true},
				{wantAdmit: false, wantRetry: time.Second},
			},
		},
		{
			name: "refill timing", qps: 10, burst: 1,
			steps: []step{
				{wantAdmit: true},
				{wantAdmit: false, wantRetry: 100 * time.Millisecond},
				{advance: 50 * time.Millisecond, wantAdmit: false, wantRetry: 50 * time.Millisecond},
				{advance: 50 * time.Millisecond, wantAdmit: true},
				{wantAdmit: false, wantRetry: 100 * time.Millisecond},
			},
		},
		{
			name: "refill caps at burst", qps: 100, burst: 2,
			steps: []step{
				{wantAdmit: true}, {wantAdmit: true}, {wantAdmit: false},
				// A long idle period must refill to burst, not beyond.
				{advance: time.Hour, wantAdmit: true},
				{wantAdmit: true},
				{wantAdmit: false, wantRetry: 10 * time.Millisecond},
			},
		},
		{
			name: "fractional refill accumulates", qps: 2, burst: 1,
			steps: []step{
				{wantAdmit: true},
				{advance: 250 * time.Millisecond, wantAdmit: false, wantRetry: 250 * time.Millisecond},
				{advance: 250 * time.Millisecond, wantAdmit: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := newTokenBucket(tc.qps, tc.burst, clk.now)
			for i, s := range tc.steps {
				clk.advance(s.advance)
				ok, retry := b.admit()
				if ok != s.wantAdmit {
					t.Fatalf("step %d: admit = %v, want %v", i, ok, s.wantAdmit)
				}
				if !ok && s.wantRetry > 0 {
					if diff := retry - s.wantRetry; diff < -time.Millisecond || diff > time.Millisecond {
						t.Fatalf("step %d: retryAfter = %v, want ~%v", i, retry, s.wantRetry)
					}
				}
			}
		})
	}
}

// TestLimitsNormalize pins Burst defaulting and validation.
func TestLimitsNormalize(t *testing.T) {
	cases := []struct {
		name    string
		in      Limits
		want    Limits
		wantErr bool
	}{
		{name: "zero is unlimited", in: Limits{}, want: Limits{}},
		{name: "burst defaults to ceil qps", in: Limits{QPS: 2.5}, want: Limits{QPS: 2.5, Burst: 3}},
		{name: "sub-1 qps gets burst 1", in: Limits{QPS: 0.25}, want: Limits{QPS: 0.25, Burst: 1}},
		{name: "explicit burst kept", in: Limits{QPS: 100, Burst: 5}, want: Limits{QPS: 100, Burst: 5}},
		{name: "depth alone", in: Limits{QueueDepth: 8}, want: Limits{QueueDepth: 8}},
		{name: "negative qps", in: Limits{QPS: -1}, wantErr: true},
		{name: "NaN qps", in: Limits{QPS: math.NaN()}, wantErr: true},
		{name: "Inf qps", in: Limits{QPS: math.Inf(1)}, wantErr: true},
		{name: "negative burst", in: Limits{QPS: 1, Burst: -2}, wantErr: true},
		{name: "negative depth", in: Limits{QueueDepth: -1}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.in.normalize()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("normalize(%+v) = %+v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// TestZeroLimitsAreUnlimited pins that a zero Limits value disables every
// check: no bucket is consulted and any request volume is admitted.
func TestZeroLimitsAreUnlimited(t *testing.T) {
	m := freshModel(t, 1)
	d := New("unlimited", m, 1, WithLimits(Limits{}))
	defer d.Close()
	rec := goodRecord(t, m)
	const n = 200
	for i := 0; i < n; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
	}
	load := d.Load()
	if load.Admitted != n || load.Shed != 0 {
		t.Fatalf("load = %+v, want %d admitted / 0 shed", load, n)
	}
	if st := d.Stats(); st.Limits != nil {
		t.Fatalf("Stats.Limits = %+v, want nil for an unlimited deployment", st.Limits)
	}
}

// TestQPSLimitShedsDeterministically drives a deployment through an
// injected clock: the burst admits, then every request sheds until the
// bucket refills — with exact shed-counter accounting.
func TestQPSLimitShedsDeterministically(t *testing.T) {
	m := freshModel(t, 1)
	d := New("limited", m, 1)
	defer d.Close()
	clk := newFakeClock()
	d.now = clk.now // rebuilt bucket below picks up the fake clock
	if err := d.SetLimits(Limits{QPS: 10, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	rec := goodRecord(t, m)

	predict := func() error { _, _, err := d.Predict(rec); return err }
	for i := 0; i < 2; i++ {
		if err := predict(); err != nil {
			t.Fatalf("burst predict %d: %v", i, err)
		}
	}
	err := predict()
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrShed) {
		t.Fatalf("over-burst predict err = %v, want *ShedError wrapping ErrShed", err)
	}
	if shed.Reason != ShedReasonQPS || shed.Deployment != "limited" {
		t.Fatalf("shed = %+v, want qps shed from limited", shed)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > 100*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want (0, 100ms]", shed.RetryAfter)
	}
	clk.advance(100 * time.Millisecond) // one token refills
	if err := predict(); err != nil {
		t.Fatalf("post-refill predict: %v", err)
	}
	if err := predict(); !errors.Is(err, ErrShed) {
		t.Fatalf("drained-again predict err = %v, want shed", err)
	}

	load := d.Load()
	if load.Admitted != 3 || load.Shed != 2 || load.ShedQPS != 2 || load.ShedQueue != 0 || load.ShedBudget != 0 {
		t.Fatalf("load = %+v, want 3 admitted / 2 shed (both qps)", load)
	}
	st := d.Stats()
	if st.Load == nil || *st.Load != load {
		t.Fatalf("Stats.Load = %+v, want %+v", st.Load, load)
	}
	if st.Limits == nil || st.Limits.QPS != 10 || st.Limits.Burst != 2 {
		t.Fatalf("Stats.Limits = %+v, want qps=10 burst=2", st.Limits)
	}
	// Shed requests never reached Predict: served stats must not count them.
	if st.Requests != 3 || st.Errors != 0 {
		t.Fatalf("Requests/Errors = %d/%d, want 3/0 (sheds excluded)", st.Requests, st.Errors)
	}
}

// TestQueueDepthShed pins the queue-depth check: when in-flight work sits
// at the configured depth, the next admission sheds instead of queueing.
func TestQueueDepthShed(t *testing.T) {
	m := freshModel(t, 1)
	d := New("depth", m, 1, WithLimits(Limits{QueueDepth: 1}))
	defer d.Close()
	rec := goodRecord(t, m)

	// Sequential traffic never exceeds depth 1.
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatal(err)
	}
	// Simulate a stuck in-flight request; the next admission must shed.
	d.inflight.Add(1)
	_, _, err := d.Predict(rec)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedReasonQueue {
		t.Fatalf("at-depth predict err = %v, want queue shed", err)
	}
	d.inflight.Add(-1)
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatalf("after-drain predict: %v", err)
	}
	load := d.Load()
	if load.Admitted != 2 || load.ShedQueue != 1 || load.Shed != 1 {
		t.Fatalf("load = %+v, want 2 admitted / 1 queue shed", load)
	}
}

// TestSetLimitsRuntimeSwap pins the runtime swap: limits apply to the
// next request, swapping to zero restores unlimited, counters survive,
// and a closed deployment rejects the call.
func TestSetLimitsRuntimeSwap(t *testing.T) {
	m := freshModel(t, 1)
	d := New("swap", m, 1)
	defer d.Close()
	clk := newFakeClock()
	d.now = clk.now
	rec := goodRecord(t, m)

	if err := d.SetLimits(Limits{QPS: 5, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Predict(rec); !errors.Is(err, ErrShed) {
		t.Fatalf("want shed under qps=5 burst=1, got %v", err)
	}
	if err := d.SetLimits(Limits{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := d.Predict(rec); err != nil {
			t.Fatalf("unlimited predict %d: %v", i, err)
		}
	}
	if load := d.Load(); load.Admitted != 51 || load.Shed != 1 {
		t.Fatalf("load = %+v, want counters to survive the swap (51 admitted / 1 shed)", load)
	}
	if err := d.SetLimits(Limits{QPS: -1}); err == nil {
		t.Fatal("SetLimits(-1 qps) must reject")
	}
	d.Close()
	if err := d.SetLimits(Limits{QPS: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SetLimits on closed = %v, want ErrClosed", err)
	}
}

// TestBudget pins the registry-wide concurrency budget: acquire/release
// semantics, attachment to current and future deployments, and the
// budget shed path.
func TestBudget(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Fatal("NewBudget(0) must be nil (unlimited)")
	}
	b := NewBudget(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("budget of 2 must admit two")
	}
	if b.TryAcquire() {
		t.Fatal("third acquire must fail")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("post-release acquire must succeed")
	}
	if b.InFlight() != 2 || b.Cap() != 2 {
		t.Fatalf("InFlight/Cap = %d/%d, want 2/2", b.InFlight(), b.Cap())
	}

	m := freshModel(t, 1)
	reg := NewRegistry()
	d1 := New("one", m, 1)
	defer d1.Close()
	if err := reg.Add(d1); err != nil {
		t.Fatal(err)
	}
	reg.SetConcurrencyBudget(1)
	d2 := New("two", freshModel(t, 2), 1)
	defer d2.Close()
	if err := reg.Add(d2); err != nil { // added after: budget still attaches
		t.Fatal(err)
	}
	rec := goodRecord(t, m)

	// Steal the only slot: every deployment in the fleet must now shed.
	fb := reg.ConcurrencyBudget()
	if !fb.TryAcquire() {
		t.Fatal("fresh fleet budget must admit")
	}
	for _, d := range []*Deployment{d1, d2} {
		_, _, err := d.Predict(rec)
		var shed *ShedError
		if !errors.As(err, &shed) || shed.Reason != ShedReasonBudget {
			t.Fatalf("%s over-budget err = %v, want budget shed", d.Name(), err)
		}
	}
	fb.Release()
	if _, _, err := d1.Predict(rec); err != nil {
		t.Fatalf("post-release predict: %v", err)
	}
	if load := d1.Load(); load.ShedBudget != 1 {
		t.Fatalf("d1 load = %+v, want 1 budget shed", load)
	}
	// Removing the cap restores unlimited admission.
	reg.SetConcurrencyBudget(0)
	if reg.ConcurrencyBudget() != nil {
		t.Fatal("SetConcurrencyBudget(0) must clear the budget")
	}
	if _, _, err := d2.Predict(rec); err != nil {
		t.Fatalf("uncapped predict: %v", err)
	}
}

// TestBudgetShedDoesNotConsumeQPSToken pins the check ordering: a
// request shed by the fleet budget must leave the deployment's token
// bucket untouched, so capacity freed later is not mis-charged to the
// rate limit.
func TestBudgetShedDoesNotConsumeQPSToken(t *testing.T) {
	m := freshModel(t, 1)
	reg := NewRegistry()
	d := New("metered", m, 1)
	defer d.Close()
	if err := reg.Add(d); err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	d.now = clk.now
	// Burst 1 with a bucket that cannot refill during the test: exactly
	// one token exists.
	if err := d.SetLimits(Limits{QPS: 1e-9, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	reg.SetConcurrencyBudget(1)
	rec := goodRecord(t, m)

	// Exhaust the budget and shed twice: the single token must survive.
	fb := reg.ConcurrencyBudget()
	fb.TryAcquire()
	for i := 0; i < 2; i++ {
		var shed *ShedError
		if _, _, err := d.Predict(rec); !errors.As(err, &shed) || shed.Reason != ShedReasonBudget {
			t.Fatalf("predict %d = %v, want budget shed", i, err)
		}
	}
	fb.Release()
	// The budget is free again and the token was never consumed.
	if _, _, err := d.Predict(rec); err != nil {
		t.Fatalf("post-release predict: %v (budget sheds leaked the QPS token)", err)
	}
	// Now the bucket really is empty: the next shed is a qps shed, and it
	// must release the budget slot it briefly held (otherwise the budget
	// leaks instead).
	var shed *ShedError
	if _, _, err := d.Predict(rec); !errors.As(err, &shed) || shed.Reason != ShedReasonQPS {
		t.Fatalf("drained predict = %v, want qps shed", shed)
	}
	if fb.InFlight() != 0 {
		t.Fatalf("budget in-flight = %d after qps shed, want 0 (slot must be released)", fb.InFlight())
	}
	load := d.Load()
	if load.Admitted != 1 || load.ShedBudget != 2 || load.ShedQPS != 1 {
		t.Fatalf("load = %+v, want 1 admitted / 2 budget / 1 qps", load)
	}
}
