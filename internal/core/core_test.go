package core

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/compile"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/train"
	"repro/internal/workload"
)

func trained(t *testing.T, ds *record.Dataset, epochs int, seed int64) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-16", Encoder: "CNN", Hidden: 16,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.02, Epochs: epochs, Dropout: 0, BatchSize: 32,
	}
	prog, err := compile.Plan(ds.Schema, choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if epochs > 0 {
		if _, err := train.Run(m, ds, train.Config{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestDeployFirstVersion(t *testing.T) {
	ds := workload.StandardDataset(200, 1, 0.2)
	store, err := artifact.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	m := trained(t, ds, 6, 3)
	srv := serve.New(trained(t, ds, 0, 99), "factoid", 0) // placeholder model
	d := &Deployer{Store: store, Server: srv}
	dec, err := d.Deploy("factoid", m, ds, record.TagTest, artifact.Metadata{"rev": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Deployed || dec.Version.Version != 1 {
		t.Fatalf("first deploy failed: %+v", dec)
	}
	if dec.Comparison != nil {
		t.Fatalf("first deploy should have no comparison")
	}
	if len(dec.Report.Overall) == 0 {
		t.Fatalf("no candidate report")
	}
}

func TestDeployBlocksRegression(t *testing.T) {
	ds := workload.StandardDataset(200, 5, 0.2)
	store, err := artifact.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	good := trained(t, ds, 8, 3)
	d := &Deployer{Store: store, Threshold: 0.05}
	if dec, err := d.Deploy("factoid", good, ds, record.TagTest, nil); err != nil || !dec.Deployed {
		t.Fatalf("good deploy failed: %v %+v", err, dec)
	}
	// Candidate: an untrained model — a guaranteed regression.
	bad := trained(t, ds, 0, 77)
	dec, err := d.Deploy("factoid", bad, ds, record.TagTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Deployed {
		t.Fatalf("regression deployed: %s", dec.Reason)
	}
	if dec.Comparison == nil || len(dec.Comparison.Regressions) == 0 {
		t.Fatalf("no regression recorded")
	}
	if !strings.Contains(dec.Reason, "blocked") {
		t.Fatalf("reason wrong: %s", dec.Reason)
	}
	// Store still has only the good version.
	vs, err := store.Versions("factoid")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("blocked deploy still published: %d versions", len(vs))
	}
}

func TestDeploySecondGoodVersionAndRollback(t *testing.T) {
	ds := workload.StandardDataset(200, 7, 0.2)
	store, err := artifact.Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(trained(t, ds, 0, 99), "factoid", 0)
	d := &Deployer{Store: store, Server: srv}
	v1 := trained(t, ds, 6, 3)
	if _, err := d.Deploy("factoid", v1, ds, record.TagTest, nil); err != nil {
		t.Fatal(err)
	}
	// An equal-quality candidate (same weights) must pass the gate and
	// become version 2.
	dec, err := d.Deploy("factoid", v1, ds, record.TagTest, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Deployed || dec.Version.Version != 2 {
		t.Fatalf("v2 deploy failed: %+v (reason %s)", dec, dec.Reason)
	}
	// Rollback to v1.
	vi, err := d.Rollback("factoid", 1)
	if err != nil {
		t.Fatal(err)
	}
	if vi.Version != 1 {
		t.Fatalf("rollback wrong version: %d", vi.Version)
	}
}

func TestDeployerNeedsStore(t *testing.T) {
	d := &Deployer{}
	if _, err := d.Deploy("x", nil, nil, "", nil); err == nil {
		t.Fatalf("missing store accepted")
	}
	if _, err := d.Rollback("x", 0); err == nil {
		t.Fatalf("rollback without store accepted")
	}
}
