// Package core implements Overton's modeling-to-deployment pipeline
// (Section 2.4): the paper's teams saw quality regressions when a separate
// deployment team re-tuned models, so Overton owns the whole path — it
// builds the deployable artifact itself, gates the rollout on a fine-grained
// regression comparison against the currently served version, publishes to
// the versioned artifact store, and hot-swaps the server.
package core

import (
	"bytes"
	"fmt"

	"repro/internal/artifact"
	"repro/internal/model"
	"repro/internal/monitor"
	"repro/internal/record"
	"repro/internal/serve"
)

// Deployer gates and executes model rollouts.
type Deployer struct {
	Store  *artifact.Store
	Server *serve.Server // optional; when set, successful deploys hot-swap it
	// Threshold is the maximum tolerated drop of any per-tag primary
	// metric (default 0.05).
	Threshold float64
}

// Decision records one deploy attempt.
type Decision struct {
	Deployed   bool
	Version    artifact.VersionInfo
	Report     *monitor.Report
	Comparison *monitor.Comparison // nil for the first version
	Reason     string
}

// Deploy evaluates candidate against the currently served version of name
// on ds (population evalTag), refuses the rollout when any per-tag quality
// drop exceeds Threshold, and otherwise publishes and (when a server is
// attached) swaps.
func (d *Deployer) Deploy(name string, candidate *model.Model, ds *record.Dataset, evalTag string, meta artifact.Metadata) (*Decision, error) {
	if d.Store == nil {
		return nil, fmt.Errorf("core: deployer needs an artifact store")
	}
	threshold := d.Threshold
	if threshold <= 0 {
		threshold = 0.05
	}
	candReport, err := monitor.Build(candidate, ds, monitor.Config{Name: name + "-candidate", EvalTag: evalTag})
	if err != nil {
		return nil, fmt.Errorf("core: candidate report: %w", err)
	}
	dec := &Decision{Report: candReport}

	// Compare against the live version when one exists.
	if blob, _, err := d.Store.Get(name, 0); err == nil {
		current, err := model.Load(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("core: load current version: %w", err)
		}
		curReport, err := monitor.Build(current, ds, monitor.Config{Name: name + "-live", EvalTag: evalTag})
		if err != nil {
			return nil, fmt.Errorf("core: live report: %w", err)
		}
		dec.Comparison = monitor.Compare(curReport, candReport, threshold)
		if n := len(dec.Comparison.Regressions); n > 0 {
			r := dec.Comparison.Regressions[0]
			dec.Reason = fmt.Sprintf("blocked: %d regression(s), worst %s/%s %.3f -> %.3f",
				n, r.Tag, r.Task, r.Before, r.After)
			return dec, nil
		}
	}

	blob, err := candidate.Bytes()
	if err != nil {
		return nil, fmt.Errorf("core: serialize: %w", err)
	}
	vi, err := d.Store.Put(name, blob, meta)
	if err != nil {
		return nil, err
	}
	dec.Deployed = true
	dec.Version = vi
	dec.Reason = fmt.Sprintf("deployed version %d", vi.Version)
	if d.Server != nil {
		if err := d.Server.Swap(candidate, vi.Version); err != nil {
			// The artifact is published but the server still runs the old
			// model; report the split state instead of claiming success.
			dec.Deployed = false
			dec.Reason = fmt.Sprintf("published version %d but hot-swap failed: %v", vi.Version, err)
			return dec, fmt.Errorf("core: hot-swap after publish: %w", err)
		}
	}
	return dec, nil
}

// Rollback re-serves an earlier version from the store (version 0 = latest).
func (d *Deployer) Rollback(name string, version int) (artifact.VersionInfo, error) {
	if d.Store == nil {
		return artifact.VersionInfo{}, fmt.Errorf("core: deployer needs an artifact store")
	}
	blob, vi, err := d.Store.Get(name, version)
	if err != nil {
		return artifact.VersionInfo{}, err
	}
	m, err := model.Load(bytes.NewReader(blob))
	if err != nil {
		return artifact.VersionInfo{}, fmt.Errorf("core: load version %d: %w", vi.Version, err)
	}
	if d.Server != nil {
		if err := d.Server.Swap(m, vi.Version); err != nil {
			return vi, fmt.Errorf("core: rollback swap: %w", err)
		}
	}
	return vi, nil
}
