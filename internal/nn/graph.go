// Package nn implements a small define-by-run automatic-differentiation
// engine and the neural-network building blocks Overton's compiler emits:
// embeddings, linear layers, CNN and GRU sequence encoders, span attention,
// masked pooling, slice-expert mixing, and fused noise-aware losses.
//
// The design is a tape: every operation appends a Node to the Graph; Backward
// walks the tape in reverse calling each node's backward closure, which
// accumulates gradients into its inputs. Parameters are persistent Nodes that
// live outside any tape; their gradients accumulate until an optimizer step
// consumes and zeroes them.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Node is a value in the computation graph together with its gradient and
// the closure that propagates gradients to its inputs.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	backward     func()
	name         string
}

// RequiresGrad reports whether gradients flow through this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Name returns the optional debug name of the node.
func (n *Node) Name() string { return n.name }

// ensureGrad lazily allocates the gradient buffer.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
	}
	return n.Grad
}

// ZeroGrad clears the accumulated gradient (keeps the buffer).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// Graph is a gradient tape. A fresh Graph is created per forward pass
// (per mini-batch); parameters are shared across graphs.
type Graph struct {
	tape []*Node

	// Training toggles train-time behaviour (dropout). Inference graphs
	// leave it false.
	Training bool

	// rng drives stochastic ops (dropout masks). Nil means no stochastic
	// ops may be used.
	rng *rand.Rand
}

// NewGraph creates a tape. rng may be nil for inference-only graphs.
func NewGraph(training bool, rng *rand.Rand) *Graph {
	return &Graph{Training: training, rng: rng}
}

// NumNodes returns the number of tape entries (for tests/diagnostics).
func (g *Graph) NumNodes() int { return len(g.tape) }

// add registers a new tape node. inputs determine requiresGrad propagation.
func (g *Graph) add(val *tensor.Tensor, backward func(), inputs ...*Node) *Node {
	n := &Node{Value: val}
	for _, in := range inputs {
		if in != nil && in.requiresGrad {
			n.requiresGrad = true
			break
		}
	}
	if n.requiresGrad {
		n.backward = backward
	}
	g.tape = append(g.tape, n)
	return n
}

// Const wraps a tensor as a constant leaf (no gradient).
func (g *Graph) Const(t *tensor.Tensor) *Node {
	n := &Node{Value: t}
	g.tape = append(g.tape, n)
	return n
}

// Backward runs reverse-mode differentiation from the scalar node loss.
// The loss node must be 1x1.
func (g *Graph) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward requires scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	loss.ensureGrad().Fill(1)
	for i := len(g.tape) - 1; i >= 0; i-- {
		n := g.tape[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// Param is a named, persistent, trainable tensor.
type Param struct {
	Name   string
	Node   *Node
	Frozen bool // excluded from optimizer updates (e.g. pinned pretrained embeddings)
}

// ParamSet owns the parameters of a model, in creation order.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet creates an empty parameter registry.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// New registers a rows x cols parameter initialised by init (may be nil for
// zeros). Panics if the name is already taken.
func (ps *ParamSet) New(name string, rows, cols int, init func(*tensor.Tensor)) *Param {
	if _, dup := ps.byName[name]; dup {
		panic("nn: duplicate parameter " + name)
	}
	t := tensor.New(rows, cols)
	if init != nil {
		init(t)
	}
	p := &Param{
		Name: name,
		Node: &Node{Value: t, requiresGrad: true, name: name},
	}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// Get returns the named parameter or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// All returns parameters in creation order.
func (ps *ParamSet) All() []*Param { return ps.params }

// Trainable returns the non-frozen parameters in creation order.
func (ps *ParamSet) Trainable() []*Param {
	var out []*Param
	for _, p := range ps.params {
		if !p.Frozen {
			out = append(out, p)
		}
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func (ps *ParamSet) ZeroGrads() {
	for _, p := range ps.params {
		p.Node.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters.
func (ps *ParamSet) NumParams() int {
	var n int
	for _, p := range ps.params {
		n += p.Node.Value.Len()
	}
	return n
}

// Xavier returns an initialiser closure for a fanIn x fanOut weight.
func Xavier(rng *rand.Rand, fanIn, fanOut int) func(*tensor.Tensor) {
	return func(t *tensor.Tensor) { t.Xavier(rng, fanIn, fanOut) }
}

// Randn returns an N(0, std²) initialiser closure.
func Randn(rng *rand.Rand, std float64) func(*tensor.Tensor) {
	return func(t *tensor.Tensor) { t.Randn(rng, std) }
}
