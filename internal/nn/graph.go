// Package nn implements a small define-by-run automatic-differentiation
// engine and the neural-network building blocks Overton's compiler emits:
// embeddings, linear layers, CNN and GRU sequence encoders, span attention,
// masked pooling, slice-expert mixing, and fused noise-aware losses.
//
// The design is a tape: every operation appends a Node to the Graph; Backward
// walks the tape in reverse calling each node's backward closure, which
// accumulates gradients into its inputs. Parameters are persistent Nodes that
// live outside any tape; their gradients accumulate until an optimizer step
// consumes and zeroes them.
//
// Graphs are reusable: Reset recycles the tape's Node structs, and when the
// graph owns a tensor.Arena every tape value, lazily-created gradient, and
// op scratch tensor is pooled too, so a steady-state train or serve loop
// performs no per-node heap allocation after warm-up.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Node is a value in the computation graph together with its gradient and
// the closure that propagates gradients to its inputs.
type Node struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	requiresGrad bool
	backward     func()
	name         string

	// owner is the graph whose allocator backs this node's lazily-created
	// gradient. Nil for parameter nodes, whose gradients must persist
	// across tapes and therefore always come from the heap.
	owner *Graph
}

// RequiresGrad reports whether gradients flow through this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Name returns the optional debug name of the node.
func (n *Node) Name() string { return n.name }

// ensureGrad lazily allocates the gradient buffer.
func (n *Node) ensureGrad() *tensor.Tensor {
	if n.Grad == nil {
		if n.owner != nil {
			n.Grad = n.owner.NewTensor(n.Value.Rows, n.Value.Cols)
		} else {
			n.Grad = tensor.New(n.Value.Rows, n.Value.Cols)
		}
	}
	return n.Grad
}

// ZeroGrad clears the accumulated gradient (keeps the buffer).
func (n *Node) ZeroGrad() {
	if n.Grad != nil {
		n.Grad.Zero()
	}
}

// Graph is a gradient tape. Parameters are shared across graphs. A Graph may
// be reused across mini-batches via Reset; giving it an Arena additionally
// pools all tape tensor storage.
type Graph struct {
	// nodes is the pooled node store; nodes[:used] is the live tape.
	nodes []*Node
	used  int

	arena *tensor.Arena

	// Training toggles train-time behaviour (dropout). Inference graphs
	// leave it false.
	Training bool

	// nograd disables gradient tracking entirely: no node requires grad
	// and no backward closures are built. Serving-path graphs use this.
	nograd bool

	// rng drives stochastic ops (dropout masks). Nil means no stochastic
	// ops may be used.
	rng *rand.Rand

	// Keyed dropout state (SetDropoutKeys/SetDropoutSalt): when keys are
	// installed, Dropout draws each row's mask from a counter-based
	// splitmix64 stream seeded by (row's record key, per-step salt, call
	// index, within-record row) instead of consuming rng. Masks then
	// depend only on record identity — not batch position, shard split,
	// or padded length — which is what makes data-parallel training
	// reproducible with dropout on.
	dropKeys    []uint64
	dropRowsPer int
	dropSalt    uint64
	dropCall    uint32
}

// NewGraph creates a tape. rng may be nil for inference-only graphs.
func NewGraph(training bool, rng *rand.Rand) *Graph {
	return &Graph{Training: training, rng: rng}
}

// NewGraphArena creates a tape whose tensors (values, gradients, scratch)
// are carved from arena. The caller owns the arena's lifecycle through
// Reset; tensors read out of the graph are invalid after Reset.
func NewGraphArena(training bool, rng *rand.Rand, arena *tensor.Arena) *Graph {
	return &Graph{Training: training, rng: rng, arena: arena}
}

// NewInferenceGraph creates a no-grad, non-training tape backed by arena.
// No backward closures are allocated; Backward on it is a no-op walk.
func NewInferenceGraph(arena *tensor.Arena) *Graph {
	return &Graph{arena: arena, nograd: true}
}

// NumNodes returns the number of tape entries (for tests/diagnostics).
func (g *Graph) NumNodes() int { return g.used }

// SetRand points the graph's stochastic ops (dropout) at rng. Reused
// training graphs call this per step so the caller controls seeding.
func (g *Graph) SetRand(rng *rand.Rand) { g.rng = rng }

// NoGrad reports whether the graph skips gradient tracking entirely
// (serving-path graphs). Callers may use cheaper value-only computations.
func (g *Graph) NoGrad() bool { return g.nograd }

// SetDropoutKeys switches Dropout onto record-keyed deterministic streams
// for the current pass: row r of a dropped tensor whose row count equals
// len(keys)*rowsPerKey draws its mask from a stream seeded by
// (keys[r/rowsPerKey], salt, dropout-call index, r%rowsPerKey). Resets
// the per-pass call counter; nil keys revert to the rng path. Callers
// install the batch's record keys at the top of each forward pass.
func (g *Graph) SetDropoutKeys(keys []uint64, rowsPerKey int) {
	g.dropKeys, g.dropRowsPer, g.dropCall = keys, rowsPerKey, 0
}

// SetDropoutSalt installs the per-step salt mixed into keyed dropout
// streams, so masks vary across optimisation steps while staying
// reproducible for a given (step, record) pair.
func (g *Graph) SetDropoutSalt(salt uint64) { g.dropSalt = salt }

// NewTensor allocates a zeroed rows x cols tensor from the graph's arena,
// or the heap when the graph has none. Ops use it for every tape-owned
// tensor that is read before being fully written (accumulator outputs).
func (g *Graph) NewTensor(rows, cols int) *tensor.Tensor {
	if g.arena != nil {
		return g.arena.Alloc(rows, cols)
	}
	return tensor.New(rows, cols)
}

// newTensorRaw allocates a tensor whose contents are undefined; only ops
// that overwrite every element of their output before reading it may use
// it (elementwise maps, matmul destinations, full-copy gathers).
func (g *Graph) newTensorRaw(rows, cols int) *tensor.Tensor {
	if g.arena != nil {
		return g.arena.AllocNoZero(rows, cols)
	}
	return tensor.New(rows, cols)
}

// Reset recycles the tape (and the arena, when present) so the graph can
// run another forward/backward pass without reallocating. Nodes and tensors
// obtained from the graph before Reset must not be used afterwards;
// parameter nodes and their gradients are unaffected.
func (g *Graph) Reset() {
	for i := 0; i < g.used; i++ {
		n := g.nodes[i]
		n.Value, n.Grad, n.backward = nil, nil, nil
		n.requiresGrad = false
		n.name = ""
	}
	g.used = 0
	if g.arena != nil {
		g.arena.Reset()
	}
}

// newNode takes a pooled node (or grows the pool) and appends it to the tape.
func (g *Graph) newNode(val *tensor.Tensor) *Node {
	var n *Node
	if g.used < len(g.nodes) {
		n = g.nodes[g.used]
	} else {
		n = &Node{}
		g.nodes = append(g.nodes, n)
	}
	g.used++
	n.Value = val
	n.owner = g
	return n
}

// add registers a new tape node; inputs determine requiresGrad propagation.
// Callers attach the backward closure only when n.requiresGrad is set, which
// keeps no-grad passes free of closure allocations:
//
//	n := g.add(out, a, b)
//	if n.requiresGrad {
//		n.backward = func() { ... }
//	}
func (g *Graph) add(val *tensor.Tensor, inputs ...*Node) *Node {
	n := g.newNode(val)
	if !g.nograd {
		for _, in := range inputs {
			if in != nil && in.requiresGrad {
				n.requiresGrad = true
				break
			}
		}
	}
	return n
}

// Const wraps a tensor as a constant leaf (no gradient).
func (g *Graph) Const(t *tensor.Tensor) *Node {
	return g.newNode(t)
}

// Backward runs reverse-mode differentiation from the scalar node loss.
// The loss node must be 1x1.
func (g *Graph) Backward(loss *Node) {
	if loss.Value.Rows != 1 || loss.Value.Cols != 1 {
		panic(fmt.Sprintf("nn: Backward requires scalar loss, got %dx%d", loss.Value.Rows, loss.Value.Cols))
	}
	loss.ensureGrad().Fill(1)
	for i := g.used - 1; i >= 0; i-- {
		n := g.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward()
		}
	}
}

// Param is a named, persistent, trainable tensor.
type Param struct {
	Name   string
	Node   *Node
	Frozen bool // excluded from optimizer updates (e.g. pinned pretrained embeddings)
}

// ParamSet owns the parameters of a model, in creation order.
type ParamSet struct {
	params []*Param
	byName map[string]*Param
}

// NewParamSet creates an empty parameter registry.
func NewParamSet() *ParamSet {
	return &ParamSet{byName: make(map[string]*Param)}
}

// New registers a rows x cols parameter initialised by init (may be nil for
// zeros). Panics if the name is already taken.
func (ps *ParamSet) New(name string, rows, cols int, init func(*tensor.Tensor)) *Param {
	if _, dup := ps.byName[name]; dup {
		panic("nn: duplicate parameter " + name)
	}
	t := tensor.New(rows, cols)
	if init != nil {
		init(t)
	}
	p := &Param{
		Name: name,
		Node: &Node{Value: t, requiresGrad: true, name: name},
	}
	ps.params = append(ps.params, p)
	ps.byName[name] = p
	return p
}

// Get returns the named parameter or nil.
func (ps *ParamSet) Get(name string) *Param { return ps.byName[name] }

// All returns parameters in creation order.
func (ps *ParamSet) All() []*Param { return ps.params }

// Trainable returns the non-frozen parameters in creation order.
func (ps *ParamSet) Trainable() []*Param {
	var out []*Param
	for _, p := range ps.params {
		if !p.Frozen {
			out = append(out, p)
		}
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func (ps *ParamSet) ZeroGrads() {
	for _, p := range ps.params {
		p.Node.ZeroGrad()
	}
}

// AliasValues rebinds every parameter of ps to share primary's value
// storage while keeping its own Node — and therefore its own lazily
// allocated gradient accumulator. This is the per-worker accumulator the
// data-parallel trainer builds on: W worker views alias one primary's
// weights, each backward pass accumulates into its view's private heap
// grads, and the fused all-reduce in internal/opt sums the views back into
// the primary. Sets must match element-wise by name and shape.
func (ps *ParamSet) AliasValues(primary *ParamSet) error {
	if len(ps.params) != len(primary.params) {
		return fmt.Errorf("nn: AliasValues: %d params vs %d", len(ps.params), len(primary.params))
	}
	for i, p := range ps.params {
		src := primary.params[i]
		if p.Name != src.Name {
			return fmt.Errorf("nn: AliasValues: param %d is %q vs %q", i, p.Name, src.Name)
		}
		if !src.Node.Value.SameShape(p.Node.Value) {
			return fmt.Errorf("nn: AliasValues: param %q shape mismatch", p.Name)
		}
		p.Node.Value = src.Node.Value
		// A correctly-shaped accumulator is kept (zeroed) rather than
		// dropped: pooled worker views re-alias on reuse, and keeping the
		// heap grads makes the re-bind allocation-free. Fresh views have
		// no accumulator yet and stay lazy.
		if g := p.Node.Grad; g != nil && g.SameShape(src.Node.Value) {
			g.Zero()
		} else {
			p.Node.Grad = nil
		}
		p.Frozen = src.Frozen
	}
	return nil
}

// Grads returns each parameter's gradient accumulator in creation order
// (nil for parameters no backward pass has touched yet). The data-parallel
// reduce consumes one such slice per worker view; indices align across
// views because parameter creation is deterministic.
func (ps *ParamSet) Grads() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ps.params))
	for i, p := range ps.params {
		out[i] = p.Node.Grad
	}
	return out
}

// NumParams returns the total number of scalar parameters.
func (ps *ParamSet) NumParams() int {
	var n int
	for _, p := range ps.params {
		n += p.Node.Value.Len()
	}
	return n
}

// Xavier returns an initialiser closure for a fanIn x fanOut weight.
func Xavier(rng *rand.Rand, fanIn, fanOut int) func(*tensor.Tensor) {
	return func(t *tensor.Tensor) { t.Xavier(rng, fanIn, fanOut) }
}

// Randn returns an N(0, std²) initialiser closure.
func Randn(rng *rand.Rand, std float64) func(*tensor.Tensor) {
	return func(t *tensor.Tensor) { t.Randn(rng, std) }
}
