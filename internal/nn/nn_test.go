package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buildInput returns a deterministic test tensor.
func buildInput(rows, cols int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return tensor.New(rows, cols).Randn(rng, 1)
}

func TestGradCheckLinearTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	lin := NewLinear(ps, "lin", 3, 4, rng)
	out := NewLinear(ps, "out", 4, 2, rng)
	x := buildInput(5, 3, 2)
	targets := tensor.New(5, 2)
	for r := 0; r < 5; r++ {
		targets.Set(r, r%2, 1)
	}
	w := []float64{1, 1, 0.5, 1, 2} // non-uniform weights exercise weighting
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		h := g.Tanh(lin.Forward(g, g.Const(x)))
		logits := out.Forward(g, h)
		loss, _ := g.SoftmaxCE(logits, targets, w)
		return g, loss
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckReLUSigmoidBCE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	lin := NewLinear(ps, "lin", 4, 3, rng)
	x := buildInput(6, 4, 4)
	targets := tensor.New(6, 3)
	tr := rand.New(rand.NewSource(5))
	for i := range targets.Data {
		if tr.Float64() < 0.4 {
			targets.Data[i] = 1
		}
	}
	mask := tensor.New(6, 3)
	mask.Fill(1)
	mask.Set(2, 1, 0) // partially observed bit
	w := []float64{1, 0, 1, 1, 0.25, 1}
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		h := g.ReLU(lin.Forward(g, g.Const(x)))
		loss, _ := g.SigmoidBCE(h, targets, w, mask)
		return g, loss
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckSoftmaxMulConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := NewParamSet()
	a := ps.New("a", 3, 4, Randn(rng, 1))
	b := ps.New("b", 3, 4, Randn(rng, 1))
	c := ps.New("c", 8, 1, Randn(rng, 1))
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		sm := g.Softmax(a.Node)
		prod := g.Mul(sm, g.Sigmoid(b.Node))
		cat := g.Concat(prod, g.Scale(sm, 0.5))
		s := g.MatMul(cat, c.Node)
		return g, g.Sum(s)
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckEmbeddingPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := NewParamSet()
	emb := NewEmbedding(ps, "emb", 10, 4, rng)
	proj := NewLinear(ps, "proj", 4, 3, rng)
	B, L := 2, 3
	ids := []int{1, 2, 3, 4, 5, 0} // second example padded at last position
	mask := []float64{1, 1, 1, 1, 1, 0}
	targets := tensor.New(B, 3)
	targets.Set(0, 0, 1)
	targets.Set(1, 2, 1)
	w := []float64{1, 1}
	for _, pool := range []string{"mean", "max"} {
		pool := pool
		build := func() (*Graph, *Node) {
			g := NewGraph(false, nil)
			x := emb.Forward(g, ids)
			var pooled *Node
			if pool == "mean" {
				pooled = g.MaskedMeanPool(x, mask, B, L)
			} else {
				pooled = g.MaskedMaxPool(x, mask, B, L)
			}
			logits := proj.Forward(g, pooled)
			loss, _ := g.SoftmaxCE(logits, targets, w)
			return g, loss
		}
		if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
			t.Fatalf("pool=%s: %v", pool, err)
		}
	}
}

func TestGradCheckSpanPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := NewParamSet()
	emb := NewEmbedding(ps, "emb", 12, 4, rng)
	q := ps.New("q", 1, 4, Randn(rng, 1))
	score := NewLinear(ps, "score", 4, 1, rng)
	B, L := 2, 4
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8}
	spans := []Span{
		{Example: 0, Start: 0, End: 2},
		{Example: 0, Start: 1, End: 4},
		{Example: 1, Start: 2, End: 3},
	}
	segs := []Segment{{Start: 0, End: 2}, {Start: 2, End: 3}}
	targets := []float64{1, 0, 1}
	w := []float64{1, 1}
	for _, mode := range []string{"mean", "attn"} {
		mode := mode
		build := func() (*Graph, *Node) {
			g := NewGraph(false, nil)
			x := emb.Forward(g, ids)
			var pooled *Node
			if mode == "mean" {
				pooled = g.SpanMeanPool(x, spans, L)
			} else {
				pooled = g.SpanAttnPool(x, spans, L, q.Node)
			}
			scores := score.Forward(g, pooled)
			loss, _ := g.SegmentSoftmaxCE(scores, segs, targets, w)
			return g, loss
		}
		if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
			t.Fatalf("mode=%s: %v", mode, err)
		}
		_ = B
	}
}

func TestGradCheckConv1D(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ps := NewParamSet()
	emb := NewEmbedding(ps, "emb", 10, 3, rng)
	conv := NewConv1D(ps, "conv", 3, 4, rng)
	head := NewLinear(ps, "head", 4, 2, rng)
	B, L := 2, 3
	ids := []int{1, 2, 3, 4, 5, 6}
	targets := tensor.New(B*L, 2)
	for r := 0; r < B*L; r++ {
		targets.Set(r, r%2, 1)
	}
	w := []float64{1, 1, 1, 1, 0, 1}
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		x := emb.Forward(g, ids)
		h := g.ReLU(conv.Forward(g, x, B, L))
		logits := head.Forward(g, h)
		loss, _ := g.SoftmaxCE(logits, targets, w)
		return g, loss
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckGRU(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ps := NewParamSet()
	emb := NewEmbedding(ps, "emb", 8, 3, rng)
	gru := NewGRU(ps, "gru", 3, 4, rng)
	head := NewLinear(ps, "head", 4, 2, rng)
	B, L := 2, 3
	ids := []int{1, 2, 3, 4, 5, 0}
	mask := []float64{1, 1, 1, 1, 1, 0}
	targets := tensor.New(B*L, 2)
	for r := 0; r < B*L; r++ {
		targets.Set(r, (r+1)%2, 1)
	}
	w := []float64{1, 1, 1, 1, 1, 0}
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		x := emb.Forward(g, ids)
		h := gru.Forward(g, x, mask, B, L)
		logits := head.Forward(g, h)
		loss, _ := g.SoftmaxCE(logits, targets, w)
		return g, loss
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckBiGRU(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ps := NewParamSet()
	emb := NewEmbedding(ps, "emb", 8, 2, rng)
	bi := NewBiGRU(ps, "bi", 2, 3, rng)
	head := NewLinear(ps, "head", 6, 2, rng)
	B, L := 1, 3
	ids := []int{1, 2, 3}
	mask := []float64{1, 1, 1}
	targets := tensor.New(B*L, 2)
	for r := 0; r < B*L; r++ {
		targets.Set(r, 0, 1)
	}
	w := []float64{1, 1, 1}
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		x := emb.Forward(g, ids)
		h := bi.Forward(g, x, mask, B, L)
		logits := head.Forward(g, h)
		loss, _ := g.SoftmaxCE(logits, targets, w)
		return g, loss
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckMixExperts(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ps := NewParamSet()
	base := ps.New("base", 3, 4, Randn(rng, 1))
	e1 := ps.New("e1", 3, 4, Randn(rng, 1))
	e2 := ps.New("e2", 3, 4, Randn(rng, 1))
	wts := ps.New("wts", 3, 3, Randn(rng, 1))
	head := NewLinear(ps, "head", 4, 2, rng)
	targets := tensor.New(3, 2)
	for r := 0; r < 3; r++ {
		targets.Set(r, r%2, 1)
	}
	w := []float64{1, 1, 1}
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		a := g.Softmax(wts.Node)
		mixed := g.MixExperts(a, []*Node{base.Node, e1.Node, e2.Node})
		logits := head.Forward(g, mixed)
		loss, _ := g.SoftmaxCE(logits, targets, w)
		return g, loss
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestGradCheckMulColVec(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := NewParamSet()
	x := ps.New("x", 3, 4, Randn(rng, 1))
	col := ps.New("col", 3, 1, Randn(rng, 1))
	build := func() (*Graph, *Node) {
		g := NewGraph(false, nil)
		return g, g.Sum(g.Tanh(g.MulColVec(x.Node, g.Sigmoid(col.Node))))
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCEValues(t *testing.T) {
	g := NewGraph(false, nil)
	ps := NewParamSet()
	logits := ps.New("l", 1, 2, nil)
	logits.Node.Value.Data[0] = 0
	logits.Node.Value.Data[1] = 0
	targets := tensor.FromSlice(1, 2, []float64{1, 0})
	loss, probs := g.SoftmaxCE(logits.Node, targets, []float64{1})
	if math.Abs(loss.Value.Data[0]-math.Log(2)) > 1e-9 {
		t.Fatalf("uniform logits CE = %g, want ln2", loss.Value.Data[0])
	}
	if math.Abs(probs.At(0, 0)-0.5) > 1e-12 {
		t.Fatalf("probs wrong")
	}
}

func TestSoftmaxCEZeroWeightRowsIgnored(t *testing.T) {
	g := NewGraph(false, nil)
	ps := NewParamSet()
	logits := ps.New("l", 2, 2, nil)
	logits.Node.Value.Data = []float64{5, -5, 0, 0}
	targets := tensor.FromSlice(2, 2, []float64{0, 1, 1, 0})
	// Row 0 has terrible prediction but weight 0; loss must be ln2 from row 1.
	loss, _ := g.SoftmaxCE(logits.Node, targets, []float64{0, 1})
	if math.Abs(loss.Value.Data[0]-math.Log(2)) > 1e-9 {
		t.Fatalf("weight-0 row leaked into loss: %g", loss.Value.Data[0])
	}
	g.Backward(loss)
	grad := logits.Node.Grad
	if grad.At(0, 0) != 0 || grad.At(0, 1) != 0 {
		t.Fatalf("weight-0 row got gradient: %v", grad.Row(0))
	}
}

func TestSegmentSoftmaxProbsSumToOne(t *testing.T) {
	g := NewGraph(false, nil)
	ps := NewParamSet()
	scores := ps.New("s", 5, 1, Randn(rand.New(rand.NewSource(23)), 2))
	segs := []Segment{{0, 3}, {3, 5}}
	targets := []float64{1, 0, 0, 0, 1}
	_, probs := g.SegmentSoftmaxCE(scores.Node, segs, targets, []float64{1, 1})
	s1 := probs[0] + probs[1] + probs[2]
	s2 := probs[3] + probs[4]
	if math.Abs(s1-1) > 1e-9 || math.Abs(s2-1) > 1e-9 {
		t.Fatalf("segment probs don't sum to 1: %g %g", s1, s2)
	}
}

func TestDropoutInferenceIdentity(t *testing.T) {
	g := NewGraph(false, nil)
	x := g.Const(buildInput(4, 4, 31))
	y := g.Dropout(x, 0.5)
	if y != x {
		t.Fatalf("inference dropout must be identity")
	}
}

func TestDropoutTrainingMaskAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := NewGraph(true, rng)
	in := tensor.New(100, 10)
	in.Fill(1)
	x := g.Const(in)
	y := g.Dropout(x, 0.4)
	var zeros, scaled int
	for _, v := range y.Value.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-1/0.6) < 1e-12:
			scaled++
		default:
			t.Fatalf("unexpected dropout value %g", v)
		}
	}
	frac := float64(zeros) / float64(len(y.Value.Data))
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("dropout fraction %g not near 0.4", frac)
	}
}

func TestStackTimestepsLayout(t *testing.T) {
	g := NewGraph(false, nil)
	B, L, H := 2, 3, 2
	hs := make([]*Node, L)
	for tt := 0; tt < L; tt++ {
		m := tensor.New(B, H)
		for b := 0; b < B; b++ {
			m.Set(b, 0, float64(b*10+tt))
		}
		hs[tt] = g.Const(m)
	}
	out := g.StackTimesteps(hs, B)
	for b := 0; b < B; b++ {
		for tt := 0; tt < L; tt++ {
			if out.Value.At(b*L+tt, 0) != float64(b*10+tt) {
				t.Fatalf("layout wrong at b=%d t=%d", b, tt)
			}
		}
	}
}

func TestShiftRowsBoundaries(t *testing.T) {
	g := NewGraph(false, nil)
	B, L := 2, 3
	in := tensor.New(B*L, 1)
	for i := range in.Data {
		in.Data[i] = float64(i + 1) // 1..6
	}
	x := g.Const(in)
	right := g.ShiftRows(x, B, L, 1) // token t sees t-1
	// example 0: [0,1,2]; example 1: [0,4,5]
	want := []float64{0, 1, 2, 0, 4, 5}
	for i, w := range want {
		if right.Value.Data[i] != w {
			t.Fatalf("shift+1[%d]=%g want %g", i, right.Value.Data[i], w)
		}
	}
	left := g.ShiftRows(x, B, L, -1)
	want = []float64{2, 3, 0, 5, 6, 0}
	for i, w := range want {
		if left.Value.Data[i] != w {
			t.Fatalf("shift-1[%d]=%g want %g", i, left.Value.Data[i], w)
		}
	}
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ps := NewParamSet()
	emb := NewEmbedding(ps, "emb", 4, 2, rng)
	g := NewGraph(false, nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	emb.Forward(g, []int{4})
}

func TestFrozenPretrainedEmbeddingGetsNoGrad(t *testing.T) {
	ps := NewParamSet()
	vecs := buildInput(5, 3, 37)
	emb := NewPretrainedEmbedding(ps, "pre", vecs, true)
	if !emb.Table.Frozen {
		t.Fatalf("not frozen")
	}
	g := NewGraph(false, nil)
	x := emb.Forward(g, []int{0, 1})
	loss := g.Sum(x)
	g.Backward(loss)
	if emb.Table.Node.Grad != nil && emb.Table.Node.Grad.MaxAbs() != 0 {
		t.Fatalf("frozen embedding received gradient")
	}
	if len(ps.Trainable()) != 0 {
		t.Fatalf("frozen param listed as trainable")
	}
}

func TestParamSetDuplicatePanics(t *testing.T) {
	ps := NewParamSet()
	ps.New("x", 1, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ps.New("x", 1, 1, nil)
}

func TestParamSetAccounting(t *testing.T) {
	ps := NewParamSet()
	ps.New("a", 2, 3, nil)
	p := ps.New("b", 4, 1, nil)
	p.Frozen = true
	if ps.NumParams() != 10 {
		t.Fatalf("NumParams = %d", ps.NumParams())
	}
	if len(ps.All()) != 2 || len(ps.Trainable()) != 1 {
		t.Fatalf("All/Trainable wrong")
	}
	if ps.Get("a") == nil || ps.Get("zzz") != nil {
		t.Fatalf("Get wrong")
	}
}

func TestWeightedSum(t *testing.T) {
	g := NewGraph(false, nil)
	mk := func(v float64) *Node {
		t := tensor.New(1, 1)
		t.Data[0] = v
		return g.Const(t)
	}
	out := g.WeightedSum([]*Node{mk(2), mk(3)}, []float64{0.5, 2})
	if out.Value.Data[0] != 7 {
		t.Fatalf("WeightedSum = %g", out.Value.Data[0])
	}
	empty := g.WeightedSum(nil, nil)
	if empty.Value.Data[0] != 0 {
		t.Fatalf("empty WeightedSum nonzero")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	g := NewGraph(false, nil)
	ps := NewParamSet()
	x := ps.New("x", 2, 2, nil)
	y := g.Tanh(x.Node)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	g.Backward(y)
}

func TestGradAccumulationAcrossGraphs(t *testing.T) {
	// Two forward/backward passes without ZeroGrads must accumulate.
	ps := NewParamSet()
	x := ps.New("x", 1, 1, nil)
	x.Node.Value.Data[0] = 2
	run := func() {
		g := NewGraph(false, nil)
		y := g.Mul(x.Node, x.Node) // y = x², dy/dx = 2x = 4
		g.Backward(g.Sum(y))
	}
	run()
	if math.Abs(x.Node.Grad.Data[0]-4) > 1e-12 {
		t.Fatalf("first grad %g", x.Node.Grad.Data[0])
	}
	run()
	if math.Abs(x.Node.Grad.Data[0]-8) > 1e-12 {
		t.Fatalf("accumulated grad %g want 8", x.Node.Grad.Data[0])
	}
	ps.ZeroGrads()
	if x.Node.Grad.Data[0] != 0 {
		t.Fatalf("ZeroGrads failed")
	}
}

// TestDropoutKeyedInvariance: with dropout keys installed, a record's mask
// must depend only on (key, salt, call index, within-record row) — not on
// its batch position or the batch's padded length. This is the property
// that makes data-parallel training reproducible with dropout on.
func TestDropoutKeyedInvariance(t *testing.T) {
	const cols = 7
	maskOf := func(keys []uint64, rowsPer int, salt uint64, calls int) []*tensor.Tensor {
		g := NewGraph(true, nil) // keyed path must not touch the rng
		g.SetDropoutKeys(keys, rowsPer)
		g.SetDropoutSalt(salt)
		var out []*tensor.Tensor
		for c := 0; c < calls; c++ {
			in := tensor.New(len(keys)*rowsPer, cols)
			in.Fill(1) // x == 1 makes the output the mask itself
			out = append(out, g.Dropout(g.Const(in), 0.4).Value)
		}
		return out
	}

	// Record k2 sits at batch position 1 with padded length 3 in A, and
	// alone with padded length 5 in B. Rows it owns must match.
	const k1, k2, salt = 0xdeadbeef, 0xfeedface, 42
	a := maskOf([]uint64{k1, k2}, 3, salt, 2)
	b := maskOf([]uint64{k2}, 5, salt, 2)
	for call := 0; call < 2; call++ {
		for r := 0; r < 3; r++ {
			for c := 0; c < cols; c++ {
				if a[call].At(3+r, c) != b[call].At(r, c) {
					t.Fatalf("call %d row %d col %d: mask differs across batch shapes", call, r, c)
				}
			}
		}
	}
	// Distinct calls within a pass draw distinct masks.
	if tensor.Equal(a[0], a[1], 0) {
		t.Fatalf("call 0 and call 1 produced identical masks")
	}
	// A different salt reshuffles the masks.
	c := maskOf([]uint64{k1, k2}, 3, 43, 1)
	if tensor.Equal(a[0], c[0], 0) {
		t.Fatalf("different salts produced identical masks")
	}
	// SetDropoutKeys resets the call counter: a fresh pass replays call 0.
	d := maskOf([]uint64{k1, k2}, 3, salt, 1)
	if !tensor.Equal(a[0], d[0], 0) {
		t.Fatalf("fresh pass did not replay call 0's mask")
	}
	// Without keys the rng path still works (and panics without an rng).
	g := NewGraph(true, rand.New(rand.NewSource(1)))
	in := tensor.New(4, cols)
	in.Fill(1)
	if y := g.Dropout(g.Const(in), 0.4); y.Value.Rows != 4 {
		t.Fatalf("rng fallback broken")
	}
}
