package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

const probEps = 1e-12

// SoftmaxCE computes the weighted mean cross-entropy between row-wise
// softmax(logits) and soft target distributions. weights has one entry per
// row; rows with weight 0 contribute nothing (used for missing labels and
// slice masks). The loss is normalised by the total weight. It returns the
// scalar loss node and the softmax probabilities (for metrics; not part of
// the graph).
//
// Soft targets are how Overton consumes the label model's probabilistic
// labels: the gradient is w/W * (p - t), the classic noise-aware loss.
func (g *Graph) SoftmaxCE(logits *Node, targets *tensor.Tensor, weights []float64) (*Node, *tensor.Tensor) {
	return g.SoftmaxCENorm(logits, targets, weights, -1)
}

// SoftmaxCENorm is SoftmaxCE with an externally supplied weight
// normaliser. norm < 0 keeps the default behaviour (normalise by the sum
// of weights in this call); norm >= 0 divides by norm instead. Sharded
// data-parallel training uses this: each worker computes its shard's loss
// against the full batch's total weight, so the shard losses and gradients
// sum exactly to the serial full-batch quantities.
func (g *Graph) SoftmaxCENorm(logits *Node, targets *tensor.Tensor, weights []float64, norm float64) (*Node, *tensor.Tensor) {
	m, C := logits.Value.Rows, logits.Value.Cols
	if targets.Rows != m || targets.Cols != C {
		panic(fmt.Sprintf("nn: SoftmaxCE targets %dx%d vs logits %dx%d", targets.Rows, targets.Cols, m, C))
	}
	if len(weights) != m {
		panic("nn: SoftmaxCE weights length mismatch")
	}
	probs := tensor.SoftmaxRows(g.newTensorRaw(m, C), logits.Value)
	var totalW, loss float64
	for r := 0; r < m; r++ {
		w := weights[r]
		if w <= 0 {
			continue
		}
		totalW += w
		prow := probs.Row(r)
		trow := targets.Row(r)
		var ce float64
		for c, t := range trow {
			if t > 0 {
				ce -= t * math.Log(prow[c]+probEps)
			}
		}
		loss += w * ce
	}
	if norm >= 0 {
		totalW = norm
	}
	if totalW > 0 {
		loss /= totalW
	} else {
		loss = 0
	}
	out := g.NewTensor(1, 1)
	out.Data[0] = loss
	n := g.add(out, logits)
	if n.requiresGrad {
		n.backward = func() {
			if !logits.requiresGrad || totalW == 0 {
				return
			}
			up := n.Grad.Data[0]
			lg := logits.ensureGrad()
			for r := 0; r < m; r++ {
				w := weights[r]
				if w <= 0 {
					continue
				}
				f := up * w / totalW
				prow := probs.Row(r)
				trow := targets.Row(r)
				grow := lg.Row(r)
				for c := range grow {
					grow[c] += f * (prow[c] - trow[c])
				}
			}
		}
	}
	return n, probs
}

// SigmoidBCE computes the weighted mean binary cross-entropy between
// sigmoid(logits) and targets in [0,1], elementwise over a (m x C) bitvector
// task. weights has one entry per row; the per-row loss is the mean over the
// C bits. elemMask, if non-nil, zeroes individual (row, bit) contributions
// (for partially observed bitvectors). Returns the loss node and sigmoid
// probabilities.
func (g *Graph) SigmoidBCE(logits *Node, targets *tensor.Tensor, weights []float64, elemMask *tensor.Tensor) (*Node, *tensor.Tensor) {
	return g.SigmoidBCENorm(logits, targets, weights, elemMask, -1)
}

// SigmoidBCENorm is SigmoidBCE with an externally supplied weight
// normaliser (see SoftmaxCENorm).
func (g *Graph) SigmoidBCENorm(logits *Node, targets *tensor.Tensor, weights []float64, elemMask *tensor.Tensor, norm float64) (*Node, *tensor.Tensor) {
	m, C := logits.Value.Rows, logits.Value.Cols
	if targets.Rows != m || targets.Cols != C {
		panic("nn: SigmoidBCE target shape mismatch")
	}
	if len(weights) != m {
		panic("nn: SigmoidBCE weights length mismatch")
	}
	if elemMask != nil && (elemMask.Rows != m || elemMask.Cols != C) {
		panic("nn: SigmoidBCE mask shape mismatch")
	}
	probs := tensor.Apply(g.newTensorRaw(m, C), logits.Value, sigmoid)
	var totalW, loss float64
	for r := 0; r < m; r++ {
		w := weights[r]
		if w <= 0 {
			continue
		}
		totalW += w
		prow := probs.Row(r)
		trow := targets.Row(r)
		var rowLoss float64
		var cnt float64
		for c, t := range trow {
			if elemMask != nil && elemMask.At(r, c) <= 0 {
				continue
			}
			p := prow[c]
			rowLoss -= t*math.Log(p+probEps) + (1-t)*math.Log(1-p+probEps)
			cnt++
		}
		if cnt > 0 {
			loss += w * rowLoss / cnt
		}
	}
	if norm >= 0 {
		totalW = norm
	}
	if totalW > 0 {
		loss /= totalW
	} else {
		loss = 0
	}
	out := g.NewTensor(1, 1)
	out.Data[0] = loss
	n := g.add(out, logits)
	if n.requiresGrad {
		n.backward = func() {
			if !logits.requiresGrad || totalW == 0 {
				return
			}
			up := n.Grad.Data[0]
			lg := logits.ensureGrad()
			for r := 0; r < m; r++ {
				w := weights[r]
				if w <= 0 {
					continue
				}
				var cnt float64
				if elemMask == nil {
					cnt = float64(C)
				} else {
					for c := 0; c < C; c++ {
						if elemMask.At(r, c) > 0 {
							cnt++
						}
					}
				}
				if cnt == 0 {
					continue
				}
				f := up * w / (totalW * cnt)
				prow := probs.Row(r)
				trow := targets.Row(r)
				grow := lg.Row(r)
				for c := range grow {
					if elemMask != nil && elemMask.At(r, c) <= 0 {
						continue
					}
					grow[c] += f * (prow[c] - trow[c])
				}
			}
		}
	}
	return n, probs
}

// Segment identifies a contiguous run [Start, End) of candidate rows that
// belong to one `select` example.
type Segment struct {
	Start int
	End   int
}

// SegmentSoftmaxCE scores a `select` task: scores is N x 1 (one score per
// candidate across the whole batch), segments group candidates by example,
// targets is a length-N soft distribution that sums to 1 within each
// segment, weights has one entry per segment. Returns the scalar loss and
// the per-candidate softmax probabilities.
func (g *Graph) SegmentSoftmaxCE(scores *Node, segments []Segment, targets []float64, weights []float64) (*Node, []float64) {
	return g.SegmentSoftmaxCENorm(scores, segments, targets, weights, -1)
}

// SegmentSoftmaxCENorm is SegmentSoftmaxCE with an externally supplied
// weight normaliser (see SoftmaxCENorm).
func (g *Graph) SegmentSoftmaxCENorm(scores *Node, segments []Segment, targets []float64, weights []float64, norm float64) (*Node, []float64) {
	N := scores.Value.Rows
	if scores.Value.Cols != 1 {
		panic("nn: SegmentSoftmaxCE scores must be Nx1")
	}
	if len(targets) != N {
		panic("nn: SegmentSoftmaxCE targets length mismatch")
	}
	if len(weights) != len(segments) {
		panic("nn: SegmentSoftmaxCE weights length mismatch")
	}
	probs := make([]float64, N)
	var totalW, loss float64
	for si, seg := range segments {
		w := weights[si]
		width := seg.End - seg.Start
		if width <= 0 {
			continue
		}
		maxv := math.Inf(-1)
		for i := seg.Start; i < seg.End; i++ {
			if v := scores.Value.Data[i]; v > maxv {
				maxv = v
			}
		}
		var z float64
		for i := seg.Start; i < seg.End; i++ {
			probs[i] = math.Exp(scores.Value.Data[i] - maxv)
			z += probs[i]
		}
		for i := seg.Start; i < seg.End; i++ {
			probs[i] /= z
		}
		if w <= 0 {
			continue
		}
		totalW += w
		var ce float64
		for i := seg.Start; i < seg.End; i++ {
			if targets[i] > 0 {
				ce -= targets[i] * math.Log(probs[i]+probEps)
			}
		}
		loss += w * ce
	}
	if norm >= 0 {
		totalW = norm
	}
	if totalW > 0 {
		loss /= totalW
	} else {
		loss = 0
	}
	out := g.NewTensor(1, 1)
	out.Data[0] = loss
	n := g.add(out, scores)
	if n.requiresGrad {
		segCopy := append([]Segment(nil), segments...)
		n.backward = func() {
			if !scores.requiresGrad || totalW == 0 {
				return
			}
			up := n.Grad.Data[0]
			sg := scores.ensureGrad()
			for si, seg := range segCopy {
				w := weights[si]
				if w <= 0 || seg.End <= seg.Start {
					continue
				}
				f := up * w / totalW
				for i := seg.Start; i < seg.End; i++ {
					sg.Data[i] += f * (probs[i] - targets[i])
				}
			}
		}
	}
	return n, probs
}

// WeightedSum returns Σ_i coeffs[i] * losses[i] as a scalar node. Used to
// combine per-task and per-slice losses into the multitask objective.
func (g *Graph) WeightedSum(losses []*Node, coeffs []float64) *Node {
	if len(losses) != len(coeffs) {
		panic("nn: WeightedSum length mismatch")
	}
	if len(losses) == 0 {
		return g.Const(g.NewTensor(1, 1))
	}
	acc := g.Scale(losses[0], coeffs[0])
	for i := 1; i < len(losses); i++ {
		acc = g.Add(acc, g.Scale(losses[i], coeffs[i]))
	}
	return acc
}
