package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MatMul returns a @ b.
func (g *Graph) MatMul(a, b *Node) *Node {
	out := tensor.MatMul(g.newTensorRaw(a.Value.Rows, b.Value.Cols), a.Value, b.Value)
	n := g.add(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				tensor.MatMulABT(a.ensureGrad(), n.Grad, b.Value)
			}
			if b.requiresGrad {
				tensor.MatMulATB(b.ensureGrad(), a.Value, n.Grad)
			}
		}
	}
	return n
}

// Add returns a + b (same shape).
func (g *Graph) Add(a, b *Node) *Node {
	out := tensor.Add(g.newTensorRaw(a.Value.Rows, a.Value.Cols), a.Value, b.Value)
	n := g.add(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				tensor.AddInto(a.ensureGrad(), n.Grad)
			}
			if b.requiresGrad {
				tensor.AddInto(b.ensureGrad(), n.Grad)
			}
		}
	}
	return n
}

// AddBias returns x + b broadcast over rows; b must be 1 x x.Cols.
func (g *Graph) AddBias(x, b *Node) *Node {
	out := tensor.AddRowVec(g.newTensorRaw(x.Value.Rows, x.Value.Cols), x.Value, b.Value)
	n := g.add(out, x, b)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				tensor.AddInto(x.ensureGrad(), n.Grad)
			}
			if b.requiresGrad {
				bg := b.ensureGrad()
				for r := 0; r < n.Grad.Rows; r++ {
					row := n.Grad.Row(r)
					for c, v := range row {
						bg.Data[c] += v
					}
				}
			}
		}
	}
	return n
}

// Mul returns the elementwise product a * b.
func (g *Graph) Mul(a, b *Node) *Node {
	out := tensor.Mul(g.newTensorRaw(a.Value.Rows, a.Value.Cols), a.Value, b.Value)
	n := g.add(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			if a.requiresGrad {
				ag := a.ensureGrad()
				for i, gv := range n.Grad.Data {
					ag.Data[i] += gv * b.Value.Data[i]
				}
			}
			if b.requiresGrad {
				bg := b.ensureGrad()
				for i, gv := range n.Grad.Data {
					bg.Data[i] += gv * a.Value.Data[i]
				}
			}
		}
	}
	return n
}

// MulColVec returns x scaled row-wise by col: out[r,c] = x[r,c] * col[r,0].
// col must be x.Rows x 1. Used for masking recurrent state updates.
func (g *Graph) MulColVec(x, col *Node) *Node {
	if col.Value.Rows != x.Value.Rows || col.Value.Cols != 1 {
		panic(fmt.Sprintf("nn: MulColVec col %dx%d vs x %dx%d", col.Value.Rows, col.Value.Cols, x.Value.Rows, x.Value.Cols))
	}
	out := g.newTensorRaw(x.Value.Rows, x.Value.Cols)
	for r := 0; r < x.Value.Rows; r++ {
		m := col.Value.Data[r]
		xrow := x.Value.Row(r)
		orow := out.Row(r)
		for c, v := range xrow {
			orow[c] = v * m
		}
	}
	n := g.add(out, x, col)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				xg := x.ensureGrad()
				for r := 0; r < x.Value.Rows; r++ {
					m := col.Value.Data[r]
					grow := n.Grad.Row(r)
					xrow := xg.Row(r)
					for c, v := range grow {
						xrow[c] += v * m
					}
				}
			}
			if col.requiresGrad {
				cg := col.ensureGrad()
				for r := 0; r < x.Value.Rows; r++ {
					grow := n.Grad.Row(r)
					xrow := x.Value.Row(r)
					var s float64
					for c, v := range grow {
						s += v * xrow[c]
					}
					cg.Data[r] += s
				}
			}
		}
	}
	return n
}

// Scale returns x * c for a constant c.
func (g *Graph) Scale(x *Node, c float64) *Node {
	out := tensor.Scale(g.newTensorRaw(x.Value.Rows, x.Value.Cols), x.Value, c)
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				tensor.AxpyInto(x.ensureGrad(), c, n.Grad)
			}
		}
	}
	return n
}

// AddConst returns x + c elementwise for a constant c.
func (g *Graph) AddConst(x *Node, c float64) *Node {
	out := tensor.Apply(g.newTensorRaw(x.Value.Rows, x.Value.Cols), x.Value, func(v float64) float64 { return v + c })
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				tensor.AddInto(x.ensureGrad(), n.Grad)
			}
		}
	}
	return n
}

// unary builds an elementwise op given f and its derivative expressed in
// terms of the output value y.
func (g *Graph) unary(x *Node, f func(float64) float64, dfdy func(y float64) float64) *Node {
	out := tensor.Apply(g.newTensorRaw(x.Value.Rows, x.Value.Cols), x.Value, f)
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				xg := x.ensureGrad()
				for i, gv := range n.Grad.Data {
					xg.Data[i] += gv * dfdy(n.Value.Data[i])
				}
			}
		}
	}
	return n
}

// Tanh returns tanh(x) elementwise.
func (g *Graph) Tanh(x *Node) *Node {
	return g.unary(x, math.Tanh, func(y float64) float64 { return 1 - y*y })
}

// Sigmoid returns 1/(1+exp(-x)) elementwise.
func (g *Graph) Sigmoid(x *Node) *Node {
	return g.unary(x, sigmoid, func(y float64) float64 { return y * (1 - y) })
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		z := math.Exp(-v)
		return 1 / (1 + z)
	}
	z := math.Exp(v)
	return z / (1 + z)
}

// ReLU returns max(x, 0) elementwise.
func (g *Graph) ReLU(x *Node) *Node {
	return g.unary(x,
		func(v float64) float64 { return math.Max(v, 0) },
		func(y float64) float64 {
			if y > 0 {
				return 1
			}
			return 0
		})
}

// Dropout zeroes each element with probability p at training time and
// rescales survivors by 1/(1-p) (inverted dropout). At inference it is the
// identity. With dropout keys installed (SetDropoutKeys) and a row count
// matching the keyed batch, the mask comes from per-record counter streams
// instead of the graph rng — bitwise identical however the batch is
// sharded or padded; otherwise the mask consumes the graph rng.
func (g *Graph) Dropout(x *Node, p float64) *Node {
	if !g.Training || p <= 0 {
		return x
	}
	keep := 1 - p
	mask := g.newTensorRaw(x.Value.Rows, x.Value.Cols)
	if g.dropRowsPer > 0 && x.Value.Rows == len(g.dropKeys)*g.dropRowsPer {
		call := g.dropCall
		g.dropCall++
		for r := 0; r < x.Value.Rows; r++ {
			// Seed by record identity, per-step salt, which dropout call
			// this is, and the within-record row — everything EXCEPT
			// batch position and padded length.
			seed := mix64(g.dropKeys[r/g.dropRowsPer] ^ g.dropSalt)
			seed = mix64(seed ^ uint64(call)<<32 ^ uint64(r%g.dropRowsPer))
			row := mask.Row(r)
			for c := range row {
				seed += 0x9E3779B97F4A7C15
				if float64(mix64(seed)>>11)*0x1p-53 < keep {
					row[c] = 1 / keep
				} else {
					row[c] = 0
				}
			}
		}
	} else {
		if g.rng == nil {
			panic("nn: Dropout on a graph without rng")
		}
		for i := range mask.Data {
			if g.rng.Float64() < keep {
				mask.Data[i] = 1 / keep
			} else {
				mask.Data[i] = 0
			}
		}
	}
	out := tensor.Mul(g.newTensorRaw(x.Value.Rows, x.Value.Cols), x.Value, mask)
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				xg := x.ensureGrad()
				for i, gv := range n.Grad.Data {
					xg.Data[i] += gv * mask.Data[i]
				}
			}
		}
	}
	return n
}

// mix64 is the splitmix64 output finalizer: a cheap, high-quality bijective
// mixer used to derive keyed dropout streams from (key, salt, call, row)
// without touching the graph rng.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Concat concatenates a and b along columns.
func (g *Graph) Concat(a, b *Node) *Node {
	out := tensor.ConcatCols(g.newTensorRaw(a.Value.Rows, a.Value.Cols+b.Value.Cols), a.Value, b.Value)
	n := g.add(out, a, b)
	if n.requiresGrad {
		n.backward = func() {
			ca := a.Value.Cols
			if a.requiresGrad {
				ag := a.ensureGrad()
				for r := 0; r < out.Rows; r++ {
					grow := n.Grad.Row(r)
					arow := ag.Row(r)
					for c := range arow {
						arow[c] += grow[c]
					}
				}
			}
			if b.requiresGrad {
				bg := b.ensureGrad()
				for r := 0; r < out.Rows; r++ {
					grow := n.Grad.Row(r)
					brow := bg.Row(r)
					for c := range brow {
						brow[c] += grow[ca+c]
					}
				}
			}
		}
	}
	return n
}

// Concat3 concatenates three nodes along columns.
func (g *Graph) Concat3(a, b, c *Node) *Node { return g.Concat(g.Concat(a, b), c) }

// GatherRows selects rows ids from x: out[i] = x[ids[i]]. Backward
// scatter-adds. Works both for embedding lookup (x = parameter matrix) and
// timestep selection. ids must stay unchanged until Backward has run.
func (g *Graph) GatherRows(x *Node, ids []int) *Node {
	out := g.newTensorRaw(len(ids), x.Value.Cols)
	for i, id := range ids {
		copy(out.Row(i), x.Value.Row(id))
	}
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				xg := x.ensureGrad()
				for i, id := range ids {
					grow := n.Grad.Row(i)
					xrow := xg.Row(id)
					for c, v := range grow {
						xrow[c] += v
					}
				}
			}
		}
	}
	return n
}

// StackTimesteps assembles per-timestep hidden states hs[t] (each B x H)
// into a (B*L) x H tensor laid out example-major: row b*L+t = hs[t].Row(b).
func (g *Graph) StackTimesteps(hs []*Node, B int) *Node {
	L := len(hs)
	if L == 0 {
		panic("nn: StackTimesteps with no steps")
	}
	H := hs[0].Value.Cols
	out := g.newTensorRaw(B*L, H)
	for t, h := range hs {
		if h.Value.Rows != B || h.Value.Cols != H {
			panic("nn: StackTimesteps shape mismatch")
		}
		for b := 0; b < B; b++ {
			copy(out.Row(b*L+t), h.Value.Row(b))
		}
	}
	n := g.add(out, hs...)
	if n.requiresGrad {
		steps := append([]*Node(nil), hs...)
		n.backward = func() {
			for t, h := range steps {
				if !h.requiresGrad {
					continue
				}
				hg := h.ensureGrad()
				for b := 0; b < B; b++ {
					grow := n.Grad.Row(b*L + t)
					hrow := hg.Row(b)
					for c, v := range grow {
						hrow[c] += v
					}
				}
			}
		}
	}
	return n
}

// ShiftRows shifts token rows within each example segment by offset
// positions (out row (b,t) = x row (b, t-offset), zero where out of range).
// x must be (B*L) x d laid out example-major. Used to build CNN windows.
func (g *Graph) ShiftRows(x *Node, B, L, offset int) *Node {
	if x.Value.Rows != B*L {
		panic(fmt.Sprintf("nn: ShiftRows rows %d != B*L %d", x.Value.Rows, B*L))
	}
	out := g.NewTensor(x.Value.Rows, x.Value.Cols)
	for b := 0; b < B; b++ {
		for t := 0; t < L; t++ {
			src := t - offset
			if src < 0 || src >= L {
				continue
			}
			copy(out.Row(b*L+t), x.Value.Row(b*L+src))
		}
	}
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				xg := x.ensureGrad()
				for b := 0; b < B; b++ {
					for t := 0; t < L; t++ {
						src := t - offset
						if src < 0 || src >= L {
							continue
						}
						grow := n.Grad.Row(b*L + t)
						xrow := xg.Row(b*L + src)
						for c, v := range grow {
							xrow[c] += v
						}
					}
				}
			}
		}
	}
	return n
}

// Softmax returns row-wise softmax(x), differentiable.
func (g *Graph) Softmax(x *Node) *Node {
	out := tensor.SoftmaxRows(g.newTensorRaw(x.Value.Rows, x.Value.Cols), x.Value)
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				xg := x.ensureGrad()
				for r := 0; r < out.Rows; r++ {
					yrow := out.Row(r)
					grow := n.Grad.Row(r)
					var dot float64
					for c, y := range yrow {
						dot += y * grow[c]
					}
					xrow := xg.Row(r)
					for c, y := range yrow {
						xrow[c] += y * (grow[c] - dot)
					}
				}
			}
		}
	}
	return n
}

// Sum returns the scalar (1x1) sum of all elements of x.
func (g *Graph) Sum(x *Node) *Node {
	out := g.newTensorRaw(1, 1)
	out.Data[0] = x.Value.Sum()
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if x.requiresGrad {
				up := n.Grad.Data[0]
				xg := x.ensureGrad()
				for i := range xg.Data {
					xg.Data[i] += up
				}
			}
		}
	}
	return n
}

// MixExperts combines per-expert representations with per-row weights:
// out[b] = Σ_s weights[b,s] * experts[s][b]. weights is B x S; every expert
// is B x H. This is the slice-combination primitive from slice-based
// learning (Chen et al., NeurIPS 2019).
func (g *Graph) MixExperts(weights *Node, experts []*Node) *Node {
	S := len(experts)
	if weights.Value.Cols != S {
		panic(fmt.Sprintf("nn: MixExperts %d experts vs %d weight cols", S, weights.Value.Cols))
	}
	B := weights.Value.Rows
	H := experts[0].Value.Cols
	out := g.NewTensor(B, H)
	for s, e := range experts {
		if e.Value.Rows != B || e.Value.Cols != H {
			panic("nn: MixExperts expert shape mismatch")
		}
		for b := 0; b < B; b++ {
			w := weights.Value.At(b, s)
			if w == 0 {
				continue
			}
			erow := e.Value.Row(b)
			orow := out.Row(b)
			for c, v := range erow {
				orow[c] += w * v
			}
		}
	}
	inputs := append([]*Node{weights}, experts...)
	n := g.add(out, inputs...)
	if n.requiresGrad {
		exps := inputs[1:]
		n.backward = func() {
			for s, e := range exps {
				for b := 0; b < B; b++ {
					grow := n.Grad.Row(b)
					w := weights.Value.At(b, s)
					if e.requiresGrad {
						erow := e.ensureGrad().Row(b)
						for c, v := range grow {
							erow[c] += w * v
						}
					}
					if weights.requiresGrad {
						evrow := e.Value.Row(b)
						var dot float64
						for c, v := range grow {
							dot += v * evrow[c]
						}
						weights.ensureGrad().Data[b*S+s] += dot
					}
				}
			}
		}
	}
	return n
}
