package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// arenaNet builds a small but representative network (linear -> tanh ->
// linear -> softmax CE) on graph g.
func arenaNet(g *Graph, lin, out *Linear, x, targets *tensor.Tensor, w []float64) *Node {
	h := g.Tanh(lin.Forward(g, g.Const(x)))
	logits := out.Forward(g, h)
	loss, _ := g.SoftmaxCE(logits, targets, w)
	return loss
}

// TestGradCheckArenaGraph runs the finite-difference gradient check on an
// arena-backed graph that is Reset and reused across every build call —
// the exact allocation pattern of the training loop.
func TestGradCheckArenaGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := NewParamSet()
	lin := NewLinear(ps, "lin", 3, 4, rng)
	out := NewLinear(ps, "out", 4, 2, rng)
	x := buildInput(5, 3, 2)
	targets := tensor.New(5, 2)
	for r := 0; r < 5; r++ {
		targets.Set(r, r%2, 1)
	}
	w := []float64{1, 1, 0.5, 1, 2}

	arena := tensor.NewArena()
	g := NewGraphArena(false, nil, arena)
	build := func() (*Graph, *Node) {
		g.Reset()
		return g, arenaNet(g, lin, out, x, targets, w)
	}
	if _, err := GradCheck(ps.All(), build, 1e-5); err != nil {
		t.Fatal(err)
	}
}

// TestArenaGraphMatchesHeapGraph pins exact agreement between the pooled
// and the plain allocation paths: same network, same loss, same gradients.
func TestArenaGraphMatchesHeapGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := NewParamSet()
	lin := NewLinear(ps, "lin", 4, 6, rng)
	out := NewLinear(ps, "out", 6, 3, rng)
	x := buildInput(7, 4, 9)
	targets := tensor.New(7, 3)
	for r := 0; r < 7; r++ {
		targets.Set(r, r%3, 1)
	}
	w := []float64{1, 1, 1, 0.5, 2, 1, 1}

	run := func(g *Graph) (float64, map[string][]float64) {
		ps.ZeroGrads()
		loss := arenaNet(g, lin, out, x, targets, w)
		g.Backward(loss)
		grads := map[string][]float64{}
		for _, p := range ps.All() {
			grads[p.Name] = append([]float64(nil), p.Node.Grad.Data...)
		}
		return loss.Value.Data[0], grads
	}

	heapLoss, heapGrads := run(NewGraph(false, nil))

	arena := tensor.NewArena()
	g := NewGraphArena(false, nil, arena)
	// Run several passes on the same graph to prove Reset recycling does
	// not corrupt values or gradients.
	for pass := 0; pass < 3; pass++ {
		g.Reset()
		loss, grads := run(g)
		if math.Abs(loss-heapLoss) > 1e-12 {
			t.Fatalf("pass %d: arena loss %g != heap loss %g", pass, loss, heapLoss)
		}
		for name, hg := range heapGrads {
			ag := grads[name]
			for i := range hg {
				if math.Abs(hg[i]-ag[i]) > 1e-12 {
					t.Fatalf("pass %d: grad %s[%d] arena %g heap %g", pass, name, i, ag[i], hg[i])
				}
			}
		}
	}
}

// TestInferenceGraphNoGrad verifies the serving-path graph computes the
// same values as a training-capable graph while allocating no gradients
// and no backward closures.
func TestInferenceGraphNoGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := NewParamSet()
	lin := NewLinear(ps, "lin", 3, 4, rng)
	x := buildInput(6, 3, 4)

	gT := NewGraph(false, nil)
	want := gT.Tanh(lin.Forward(gT, gT.Const(x)))

	arena := tensor.NewArena()
	gI := NewInferenceGraph(arena)
	got := gI.Tanh(lin.Forward(gI, gI.Const(x)))
	if !gI.NoGrad() {
		t.Fatalf("inference graph reports NoGrad() == false")
	}
	if !tensor.Equal(got.Value, want.Value, 0) {
		t.Fatalf("inference graph values diverge from training graph")
	}
	if got.RequiresGrad() {
		t.Fatalf("inference node requires grad")
	}
	for i := 0; i < gI.used; i++ {
		if gI.nodes[i].backward != nil {
			t.Fatalf("inference graph allocated a backward closure")
		}
	}
}

// TestGraphResetReusesNodes pins the tape-recycling contract: after Reset,
// the same Node structs are handed out again and NumNodes restarts at 0.
func TestGraphResetReusesNodes(t *testing.T) {
	arena := tensor.NewArena()
	g := NewGraphArena(false, nil, arena)
	a := g.Const(buildInput(2, 2, 1))
	b := g.Const(buildInput(2, 2, 2))
	first := g.Add(a, b)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	g.Reset()
	if g.NumNodes() != 0 {
		t.Fatalf("NumNodes after Reset = %d, want 0", g.NumNodes())
	}
	a2 := g.Const(buildInput(2, 2, 1))
	if a2 != a {
		t.Fatalf("Reset did not recycle node structs")
	}
	_ = first
}
