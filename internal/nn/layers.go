package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Embedding maps integer ids to learned (or frozen pretrained) rows of a
// V x D table.
type Embedding struct {
	Table *Param
	V, D  int
}

// NewEmbedding registers a V x D embedding table under name.
func NewEmbedding(ps *ParamSet, name string, V, D int, rng *rand.Rand) *Embedding {
	return &Embedding{
		Table: ps.New(name, V, D, Randn(rng, 0.1)),
		V:     V,
		D:     D,
	}
}

// NewPretrainedEmbedding registers an embedding initialised from vectors
// (V x D). If frozen, the optimizer will not update it (the paper's "pinned"
// resources).
func NewPretrainedEmbedding(ps *ParamSet, name string, vectors *tensor.Tensor, frozen bool) *Embedding {
	p := ps.New(name, vectors.Rows, vectors.Cols, func(t *tensor.Tensor) { copy(t.Data, vectors.Data) })
	p.Frozen = frozen
	if frozen {
		p.Node.requiresGrad = false
	}
	return &Embedding{Table: p, V: vectors.Rows, D: vectors.Cols}
}

// Forward looks up ids. Out-of-range ids panic (callers map OOV to a
// reserved id).
func (e *Embedding) Forward(g *Graph, ids []int) *Node {
	for _, id := range ids {
		if id < 0 || id >= e.V {
			panic(fmt.Sprintf("nn: embedding id %d out of range [0,%d)", id, e.V))
		}
	}
	return g.GatherRows(e.Table.Node, ids)
}

// Linear is a fully connected layer y = x @ W + b.
type Linear struct {
	W *Param
	B *Param
}

// NewLinear registers an in x out linear layer with Xavier init.
func NewLinear(ps *ParamSet, name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: ps.New(name+".W", in, out, Xavier(rng, in, out)),
		B: ps.New(name+".b", 1, out, nil),
	}
}

// Forward applies the affine map.
func (l *Linear) Forward(g *Graph, x *Node) *Node {
	return g.AddBias(g.MatMul(x, l.W.Node), l.B.Node)
}

// Conv1D is a width-3 1-D convolution over token sequences followed by no
// activation (callers add one). Input is (B*L) x in, output (B*L) x out.
type Conv1D struct {
	W       *Param // (3*in) x out
	B       *Param
	In, Out int
}

// NewConv1D registers a kernel-3 convolution.
func NewConv1D(ps *ParamSet, name string, in, out int, rng *rand.Rand) *Conv1D {
	return &Conv1D{
		W:   ps.New(name+".W", 3*in, out, Xavier(rng, 3*in, out)),
		B:   ps.New(name+".b", 1, out, nil),
		In:  in,
		Out: out,
	}
}

// Forward convolves x (B*L x in, example-major) with zero padding at example
// boundaries.
func (c *Conv1D) Forward(g *Graph, x *Node, B, L int) *Node {
	prev := g.ShiftRows(x, B, L, 1)  // token t sees t-1
	next := g.ShiftRows(x, B, L, -1) // token t sees t+1
	win := g.Concat3(prev, x, next)
	return g.AddBias(g.MatMul(win, c.W.Node), c.B.Node)
}

// GRU is a gated recurrent unit over token sequences. Input (B*L) x in,
// output (B*L) x hidden, both example-major. The update is masked so hidden
// state does not change on padded positions.
type GRU struct {
	Wz, Wr, Wh *Param // (in+hidden) x hidden
	Bz, Br, Bh *Param
	In, Hidden int
	reverse    bool
}

// NewGRU registers a forward GRU.
func NewGRU(ps *ParamSet, name string, in, hidden int, rng *rand.Rand) *GRU {
	return newGRU(ps, name, in, hidden, rng, false)
}

// NewReverseGRU registers a GRU that scans right-to-left.
func NewReverseGRU(ps *ParamSet, name string, in, hidden int, rng *rand.Rand) *GRU {
	return newGRU(ps, name, in, hidden, rng, true)
}

func newGRU(ps *ParamSet, name string, in, hidden int, rng *rand.Rand, reverse bool) *GRU {
	k := in + hidden
	return &GRU{
		Wz:      ps.New(name+".Wz", k, hidden, Xavier(rng, k, hidden)),
		Wr:      ps.New(name+".Wr", k, hidden, Xavier(rng, k, hidden)),
		Wh:      ps.New(name+".Wh", k, hidden, Xavier(rng, k, hidden)),
		Bz:      ps.New(name+".bz", 1, hidden, nil),
		Br:      ps.New(name+".br", 1, hidden, nil),
		Bh:      ps.New(name+".bh", 1, hidden, nil),
		In:      in,
		Hidden:  hidden,
		reverse: reverse,
	}
}

// Forward runs the GRU over a batch. x is (B*L) x in example-major; mask has
// length B*L with 1 for real tokens, 0 for padding. Returns (B*L) x hidden.
func (r *GRU) Forward(g *Graph, x *Node, mask []float64, B, L int) *Node {
	if x.Value.Rows != B*L {
		panic(fmt.Sprintf("nn: GRU rows %d != B*L %d", x.Value.Rows, B*L))
	}
	h := g.Const(g.NewTensor(B, r.Hidden)) // h0 = 0
	hs := make([]*Node, L)
	order := make([]int, L)
	for t := 0; t < L; t++ {
		if r.reverse {
			order[t] = L - 1 - t
		} else {
			order[t] = t
		}
	}
	ids := make([]int, B)
	for _, t := range order {
		for b := 0; b < B; b++ {
			ids[b] = b*L + t
		}
		xt := g.GatherRows(x, append([]int(nil), ids...))
		xh := g.Concat(xt, h)
		z := g.Sigmoid(g.AddBias(g.MatMul(xh, r.Wz.Node), r.Bz.Node))
		rt := g.Sigmoid(g.AddBias(g.MatMul(xh, r.Wr.Node), r.Br.Node))
		xrh := g.Concat(xt, g.Mul(rt, h))
		hTilde := g.Tanh(g.AddBias(g.MatMul(xrh, r.Wh.Node), r.Bh.Node))
		// hNew = (1-z)*h + z*hTilde
		oneMinusZ := g.AddConst(g.Scale(z, -1), 1)
		hNew := g.Add(g.Mul(oneMinusZ, h), g.Mul(z, hTilde))
		// Mask padded positions: keep previous state where mask == 0.
		mcol := g.NewTensor(B, 1)
		for b := 0; b < B; b++ {
			mcol.Data[b] = mask[b*L+t]
		}
		mNode := g.Const(mcol)
		invM := g.NewTensor(B, 1)
		for b := 0; b < B; b++ {
			invM.Data[b] = 1 - mcol.Data[b]
		}
		h = g.Add(g.MulColVec(hNew, mNode), g.MulColVec(h, g.Const(invM)))
		hs[t] = h
	}
	// Reorder so hs[t] corresponds to timestep t regardless of direction.
	ordered := make([]*Node, L)
	for i, t := range order {
		ordered[t] = hs[i]
	}
	return g.StackTimesteps(ordered, B)
}

// BiGRU concatenates a forward and a reverse GRU.
type BiGRU struct {
	Fwd *GRU
	Bwd *GRU
}

// NewBiGRU registers a bidirectional GRU; output width is 2*hidden.
func NewBiGRU(ps *ParamSet, name string, in, hidden int, rng *rand.Rand) *BiGRU {
	return &BiGRU{
		Fwd: NewGRU(ps, name+".fwd", in, hidden, rng),
		Bwd: NewReverseGRU(ps, name+".bwd", in, hidden, rng),
	}
}

// Forward returns (B*L) x 2*hidden.
func (b *BiGRU) Forward(g *Graph, x *Node, mask []float64, B, L int) *Node {
	return g.Concat(b.Fwd.Forward(g, x, mask, B, L), b.Bwd.Forward(g, x, mask, B, L))
}
