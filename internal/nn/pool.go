package nn

import (
	"fmt"
	"math"
)

// Span references a contiguous token range [Start, End) inside example
// Example of a batch. Token rows are laid out example-major: row = b*L + t.
type Span struct {
	Example int
	Start   int
	End     int
}

// MaskedMeanPool pools token rows (B*L x d, example-major) to example rows
// (B x d) by averaging positions with mask[b*L+t] > 0. Examples whose mask is
// all zero pool to the zero vector.
func (g *Graph) MaskedMeanPool(x *Node, mask []float64, B, L int) *Node {
	if x.Value.Rows != B*L {
		panic(fmt.Sprintf("nn: MaskedMeanPool rows %d != B*L %d", x.Value.Rows, B*L))
	}
	if len(mask) != B*L {
		panic("nn: MaskedMeanPool mask length mismatch")
	}
	d := x.Value.Cols
	out := g.NewTensor(B, d)
	countsT := g.NewTensor(1, B)
	counts := countsT.Data
	for b := 0; b < B; b++ {
		orow := out.Row(b)
		for t := 0; t < L; t++ {
			m := mask[b*L+t]
			if m <= 0 {
				continue
			}
			counts[b] += m
			xrow := x.Value.Row(b*L + t)
			for c, v := range xrow {
				orow[c] += m * v
			}
		}
		if counts[b] > 0 {
			inv := 1 / counts[b]
			for c := range orow {
				orow[c] *= inv
			}
		}
	}
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if !x.requiresGrad {
				return
			}
			xg := x.ensureGrad()
			for b := 0; b < B; b++ {
				if counts[b] == 0 {
					continue
				}
				inv := 1 / counts[b]
				grow := n.Grad.Row(b)
				for t := 0; t < L; t++ {
					m := mask[b*L+t]
					if m <= 0 {
						continue
					}
					xrow := xg.Row(b*L + t)
					f := m * inv
					for c, v := range grow {
						xrow[c] += f * v
					}
				}
			}
		}
	}
	return n
}

// MaskedMaxPool pools token rows to example rows taking the per-dimension
// maximum over positions with mask > 0. Fully masked examples pool to zero.
func (g *Graph) MaskedMaxPool(x *Node, mask []float64, B, L int) *Node {
	if x.Value.Rows != B*L {
		panic(fmt.Sprintf("nn: MaskedMaxPool rows %d != B*L %d", x.Value.Rows, B*L))
	}
	d := x.Value.Cols
	out := g.NewTensor(B, d)
	// Winning row per (example, dim); only tracked when gradients will flow.
	needGrad := !g.nograd && x.requiresGrad
	var argmax []int
	if needGrad {
		argmax = make([]int, B*d)
		for i := range argmax {
			argmax[i] = -1
		}
	}
	for b := 0; b < B; b++ {
		orow := out.Row(b)
		seen := false
		for t := 0; t < L; t++ {
			if mask[b*L+t] <= 0 {
				continue
			}
			xrow := x.Value.Row(b*L + t)
			if !seen {
				for c, v := range xrow {
					orow[c] = v
					if needGrad {
						argmax[b*d+c] = b*L + t
					}
				}
				seen = true
				continue
			}
			for c, v := range xrow {
				if v > orow[c] {
					orow[c] = v
					if needGrad {
						argmax[b*d+c] = b*L + t
					}
				}
			}
		}
	}
	n := g.add(out, x)
	if n.requiresGrad {
		n.backward = func() {
			if !x.requiresGrad {
				return
			}
			xg := x.ensureGrad()
			for b := 0; b < B; b++ {
				grow := n.Grad.Row(b)
				for c, v := range grow {
					row := argmax[b*d+c]
					if row >= 0 {
						xg.Data[row*d+c] += v
					}
				}
			}
		}
	}
	return n
}

// SpanMeanPool pools token rows (B*L x d) to one row per span by averaging
// the span's token representations. Empty spans pool to zero.
func (g *Graph) SpanMeanPool(x *Node, spans []Span, L int) *Node {
	d := x.Value.Cols
	out := g.NewTensor(len(spans), d)
	for i, sp := range spans {
		width := sp.End - sp.Start
		if width <= 0 {
			continue
		}
		orow := out.Row(i)
		for t := sp.Start; t < sp.End; t++ {
			xrow := x.Value.Row(sp.Example*L + t)
			for c, v := range xrow {
				orow[c] += v
			}
		}
		inv := 1 / float64(width)
		for c := range orow {
			orow[c] *= inv
		}
	}
	n := g.add(out, x)
	if n.requiresGrad {
		spanCopy := append([]Span(nil), spans...)
		n.backward = func() {
			if !x.requiresGrad {
				return
			}
			xg := x.ensureGrad()
			for i, sp := range spanCopy {
				width := sp.End - sp.Start
				if width <= 0 {
					continue
				}
				inv := 1 / float64(width)
				grow := n.Grad.Row(i)
				for t := sp.Start; t < sp.End; t++ {
					xrow := xg.Row(sp.Example*L + t)
					for c, v := range grow {
						xrow[c] += inv * v
					}
				}
			}
		}
	}
	return n
}

// SpanAttnPool pools each span with single-head dot-product attention using
// the learned query vector q (1 x d): a_t = softmax_t(x_t · q), out = Σ a_t x_t.
// This is the lightweight stand-in for the paper's multi-headed attention
// payload aggregation. Empty spans pool to zero.
func (g *Graph) SpanAttnPool(x *Node, spans []Span, L int, q *Node) *Node {
	d := x.Value.Cols
	if q.Value.Rows != 1 || q.Value.Cols != d {
		panic(fmt.Sprintf("nn: SpanAttnPool q shape %dx%d want 1x%d", q.Value.Rows, q.Value.Cols, d))
	}
	out := g.NewTensor(len(spans), d)
	attn := make([][]float64, len(spans)) // cached attention weights per span
	scale := 1 / math.Sqrt(float64(d))
	for i, sp := range spans {
		width := sp.End - sp.Start
		if width <= 0 {
			continue
		}
		scores := make([]float64, width)
		maxv := math.Inf(-1)
		for k := 0; k < width; k++ {
			xrow := x.Value.Row(sp.Example*L + sp.Start + k)
			var s float64
			for c, v := range xrow {
				s += v * q.Value.Data[c]
			}
			scores[k] = s * scale
			if scores[k] > maxv {
				maxv = scores[k]
			}
		}
		var z float64
		for k := range scores {
			scores[k] = math.Exp(scores[k] - maxv)
			z += scores[k]
		}
		for k := range scores {
			scores[k] /= z
		}
		attn[i] = scores
		orow := out.Row(i)
		for k := 0; k < width; k++ {
			xrow := x.Value.Row(sp.Example*L + sp.Start + k)
			a := scores[k]
			for c, v := range xrow {
				orow[c] += a * v
			}
		}
	}
	n := g.add(out, x, q)
	if n.requiresGrad {
		spanCopy := append([]Span(nil), spans...)
		n.backward = func() {
			for i, sp := range spanCopy {
				width := sp.End - sp.Start
				if width <= 0 {
					continue
				}
				grow := n.Grad.Row(i)
				a := attn[i]
				// dL/da_k = grad · x_k
				dA := make([]float64, width)
				for k := 0; k < width; k++ {
					xrow := x.Value.Row(sp.Example*L + sp.Start + k)
					var s float64
					for c, v := range grow {
						s += v * xrow[c]
					}
					dA[k] = s
				}
				// softmax backward: dscore_k = a_k (dA_k - Σ_j a_j dA_j)
				var dot float64
				for k := 0; k < width; k++ {
					dot += a[k] * dA[k]
				}
				for k := 0; k < width; k++ {
					dScore := a[k] * (dA[k] - dot) * scale
					xrow := x.Value.Row(sp.Example*L + sp.Start + k)
					if x.requiresGrad {
						xgrow := x.ensureGrad().Row(sp.Example*L + sp.Start + k)
						// direct term: a_k * grad
						for c, v := range grow {
							xgrow[c] += a[k] * v
						}
						// score term: dScore * q
						for c := range xgrow {
							xgrow[c] += dScore * q.Value.Data[c]
						}
					}
					if q.requiresGrad {
						qg := q.ensureGrad()
						for c := range qg.Data {
							qg.Data[c] += dScore * xrow[c]
						}
					}
				}
			}
		}
	}
	return n
}
