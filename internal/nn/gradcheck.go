package nn

import (
	"fmt"
	"math"
)

// GradCheck verifies backprop gradients against central finite differences.
// build must construct a fresh graph and return the scalar loss node; it is
// called many times with perturbed parameter values, so it must be
// deterministic (no dropout, fixed inputs). params are the parameters to
// check. Returns the maximum relative error observed.
//
// This is a test utility but lives in the package proper so integration
// tests of higher-level packages (compile, model) can reuse it.
func GradCheck(params []*Param, build func() (*Graph, *Node), eps float64) (float64, error) {
	// Analytic gradients.
	for _, p := range params {
		p.Node.ZeroGrad()
	}
	g, loss := build()
	g.Backward(loss)
	analytic := make(map[string][]float64, len(params))
	for _, p := range params {
		grad := make([]float64, p.Node.Value.Len())
		if p.Node.Grad != nil {
			copy(grad, p.Node.Grad.Data)
		}
		analytic[p.Name] = grad
	}

	var maxRel float64
	for _, p := range params {
		data := p.Node.Value.Data
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			_, lp := build()
			fPlus := lp.Value.Data[0]
			data[i] = orig - eps
			_, lm := build()
			fMinus := lm.Value.Data[0]
			data[i] = orig

			numeric := (fPlus - fMinus) / (2 * eps)
			a := analytic[p.Name][i]
			denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(a))
			rel := math.Abs(numeric-a) / denom
			if rel > maxRel {
				maxRel = rel
			}
			if rel > 2e-3 && math.Abs(numeric-a) > 1e-5 {
				return maxRel, fmt.Errorf("nn: gradcheck %s[%d]: analytic %.8g numeric %.8g rel %.3g",
					p.Name, i, a, numeric, rel)
			}
		}
	}
	return maxRel, nil
}
