// Package compile turns an Overton schema plus one tuning Choice into a
// Program: the typed plan of the multitask network (which payload feeds
// which encoder, which task hangs off which representation, where slice
// capacity is attached). The Program is the analog of the parameterized
// TensorFlow program the paper's compiler emits — internal/model
// instantiates it into an executable network, and Describe renders it for
// humans (the black boxes and red search choices of Figure 2b).
package compile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/tensor"
)

// ContextualEncoder is a frozen pretrained contextual token encoder dropped
// in as a payload (the BERT-sim resource).
type ContextualEncoder interface {
	Dim() int
	Encode(tokens []string) *tensor.Tensor
}

// Resources are the external assets a compiled model may consume.
type Resources struct {
	// TokenVocab lists the token vocabulary (without reserved slots); the
	// model adds pad/OOV.
	TokenVocab []string
	// EntityVocab lists the KB entity ids appearing in set payloads.
	EntityVocab []string
	// StaticVectors optionally initialises the token embedding
	// (rows must align with the model's internal vocab; use
	// embeddings.PretrainStatic with the same vocab). Required when the
	// choice's embedding family is "pretrained".
	StaticVectors *tensor.Tensor
	// Contextual optionally provides frozen contextual features; required
	// when the choice's embedding family is "bertsim".
	Contextual ContextualEncoder
}

// Program is the compiled plan.
type Program struct {
	Schema *schema.Schema
	Choice schema.Choice

	// Payload roles discovered from the schema.
	TokenPayload string   // the sequence payload feeding the encoder
	QueryPayload string   // singleton payload aggregating the tokens ("" if none)
	SetPayloads  []string // set payloads ranging over the tokens

	// Task groups by prediction granularity.
	TokenTasks   []string
	ExampleTasks []string
	SetTasks     []string

	// Slices the model allocates per-slice capacity for (slice-based
	// learning); empty means a plain multitask model.
	Slices []string
	// SliceTasks are the tasks that receive slice experts (default: all
	// example and set tasks when Slices is non-empty).
	SliceTasks []string

	// Derived dimensions.
	EmbDim     int // learned token embedding width
	ContextDim int // contextual feature width (0 = unused)
	EncoderOut int // token representation width after the encoder
	MaxLen     int // sequence padding length
}

// EmbeddingFamily splits a tuning embedding name like "hash-32" into family
// and dimension.
func EmbeddingFamily(name string) (family string, dim int, err error) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return "", 0, fmt.Errorf("compile: embedding %q: want <family>-<dim>", name)
	}
	dim, err = strconv.Atoi(name[i+1:])
	if err != nil || dim <= 0 {
		return "", 0, fmt.Errorf("compile: embedding %q: bad dimension", name)
	}
	family = name[:i]
	switch family {
	case "hash", "pretrained", "bertsim":
		return family, dim, nil
	}
	return "", 0, fmt.Errorf("compile: unknown embedding family %q", family)
}

// Plan validates the schema against this model family and assigns payload
// roles. slices lists the slice names to allocate capacity for.
func Plan(sch *schema.Schema, choice schema.Choice, slices []string) (*Program, error) {
	p := &Program{Schema: sch, Choice: choice, Slices: append([]string(nil), slices...)}

	for _, name := range sch.PayloadNames() {
		pl := sch.Payloads[name]
		switch pl.Type {
		case schema.Sequence:
			if p.TokenPayload != "" {
				return nil, fmt.Errorf("compile: multiple sequence payloads (%s, %s) not supported", p.TokenPayload, name)
			}
			p.TokenPayload = name
			p.MaxLen = pl.MaxLength
		case schema.Set:
			p.SetPayloads = append(p.SetPayloads, name)
		case schema.Singleton:
			if p.QueryPayload != "" {
				return nil, fmt.Errorf("compile: multiple singleton payloads (%s, %s) not supported", p.QueryPayload, name)
			}
			p.QueryPayload = name
		}
	}
	if p.TokenPayload == "" {
		return nil, fmt.Errorf("compile: schema needs a sequence payload")
	}
	for _, sp := range p.SetPayloads {
		if sch.Payloads[sp].Range != p.TokenPayload {
			return nil, fmt.Errorf("compile: set payload %q must range over %q", sp, p.TokenPayload)
		}
	}

	for _, name := range sch.TaskNames() {
		t := sch.Tasks[name]
		switch sch.Granularity(t) {
		case schema.PerToken:
			if t.Payload != p.TokenPayload {
				return nil, fmt.Errorf("compile: token task %q on unexpected payload %q", name, t.Payload)
			}
			p.TokenTasks = append(p.TokenTasks, name)
		case schema.PerExample:
			if t.Payload != p.QueryPayload {
				return nil, fmt.Errorf("compile: example task %q on unexpected payload %q", name, t.Payload)
			}
			p.ExampleTasks = append(p.ExampleTasks, name)
		case schema.PerSet:
			p.SetTasks = append(p.SetTasks, name)
		}
	}

	family, dim, err := EmbeddingFamily(choice.Embedding)
	if err != nil {
		return nil, err
	}
	p.EmbDim = dim
	if family == "bertsim" {
		p.ContextDim = dim // resolved against the actual encoder at model build
	}
	switch choice.Encoder {
	case "BOW":
		p.EncoderOut = p.tokenInputDim()
	case "CNN", "GRU":
		p.EncoderOut = choice.Hidden
	case "BiGRU":
		p.EncoderOut = 2 * choice.Hidden
	default:
		return nil, fmt.Errorf("compile: unknown encoder %q", choice.Encoder)
	}

	if len(p.Slices) > 0 {
		p.SliceTasks = append(append([]string(nil), p.ExampleTasks...), p.SetTasks...)
		sort.Strings(p.SliceTasks)
	}
	return p, nil
}

// tokenInputDim is the width of the embedded token input (learned +
// contextual features).
func (p *Program) tokenInputDim() int { return p.EmbDim + p.ContextDim }

// Describe renders the compiled program: the fixed schema-derived structure
// in plain text with the searched choices marked. This is what `overton
// compile` prints.
func (p *Program) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program (compiled from schema; [*] = selected by model search)\n")
	fmt.Fprintf(&sb, "  payload %-10s sequence(max_len=%d)\n", p.TokenPayload, p.MaxLen)
	fmt.Fprintf(&sb, "    embed   [*] %s -> %d dims", p.Choice.Embedding, p.EmbDim)
	if p.ContextDim > 0 {
		fmt.Fprintf(&sb, " (+%d frozen contextual)", p.ContextDim)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "    encode  [*] %s -> %d dims (hidden=%d, dropout=%g)\n",
		p.Choice.Encoder, p.EncoderOut, p.Choice.Hidden, p.Choice.Dropout)
	if p.QueryPayload != "" {
		fmt.Fprintf(&sb, "  payload %-10s singleton = %s-pool[*](%s)\n", p.QueryPayload, p.Choice.QueryAgg, p.TokenPayload)
	}
	for _, sp := range p.SetPayloads {
		fmt.Fprintf(&sb, "  payload %-10s set = [span-%s[*](%s) ; entity-embedding ; %s]\n",
			sp, p.Choice.EntityAgg, p.TokenPayload, p.QueryPayload)
	}
	for _, t := range p.TokenTasks {
		task := p.Schema.Tasks[t]
		fmt.Fprintf(&sb, "  task    %-10s %s over %s (%d classes) <- %s\n",
			t, task.Type, "tokens", len(task.Classes), p.TokenPayload)
	}
	for _, t := range p.ExampleTasks {
		task := p.Schema.Tasks[t]
		fmt.Fprintf(&sb, "  task    %-10s %s (%d classes) <- %s%s\n",
			t, task.Type, len(task.Classes), p.QueryPayload, p.sliceNote(t))
	}
	for _, t := range p.SetTasks {
		task := p.Schema.Tasks[t]
		fmt.Fprintf(&sb, "  task    %-10s %s <- %s%s\n", t, task.Type, task.Payload, p.sliceNote(t))
	}
	if len(p.Slices) > 0 {
		fmt.Fprintf(&sb, "  slices  %s (membership heads + experts + attention combination)\n",
			strings.Join(p.Slices, ", "))
	}
	fmt.Fprintf(&sb, "  train   lr=%g epochs=%d batch=%d\n", p.Choice.LR, p.Choice.Epochs, p.Choice.BatchSize)
	return sb.String()
}

func (p *Program) sliceNote(task string) string {
	for _, t := range p.SliceTasks {
		if t == task {
			return " [sliced]"
		}
	}
	return ""
}

// HasSliceTask reports whether task receives slice capacity.
func (p *Program) HasSliceTask(task string) bool {
	for _, t := range p.SliceTasks {
		if t == task {
			return true
		}
	}
	return false
}
