package compile

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/workload"
)

func factoidSchema(t *testing.T) *schema.Schema {
	t.Helper()
	return workload.FactoidSchema()
}

func defaultChoice() schema.Choice {
	return schema.Choice{
		Embedding: "hash-16", Encoder: "CNN", Hidden: 24,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 3, Dropout: 0, BatchSize: 8,
	}
}

func TestEmbeddingFamily(t *testing.T) {
	cases := []struct {
		in     string
		family string
		dim    int
		ok     bool
	}{
		{"hash-32", "hash", 32, true},
		{"pretrained-64", "pretrained", 64, true},
		{"bertsim-48", "bertsim", 48, true},
		{"glove300", "", 0, false},
		{"hash-", "", 0, false},
		{"hash-0", "", 0, false},
		{"magic-16", "", 0, false},
	}
	for _, tc := range cases {
		f, d, err := EmbeddingFamily(tc.in)
		if tc.ok && (err != nil || f != tc.family || d != tc.dim) {
			t.Errorf("%s: got (%s,%d,%v)", tc.in, f, d, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.in)
		}
	}
}

func TestPlanAssignsRoles(t *testing.T) {
	p, err := Plan(factoidSchema(t), defaultChoice(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.TokenPayload != "tokens" || p.QueryPayload != "query" {
		t.Fatalf("payload roles wrong: %+v", p)
	}
	if len(p.SetPayloads) != 1 || p.SetPayloads[0] != "entities" {
		t.Fatalf("set payloads wrong")
	}
	if len(p.TokenTasks) != 2 || len(p.ExampleTasks) != 1 || len(p.SetTasks) != 1 {
		t.Fatalf("task groups wrong: %v %v %v", p.TokenTasks, p.ExampleTasks, p.SetTasks)
	}
	if p.MaxLen != 12 || p.EmbDim != 16 {
		t.Fatalf("dims wrong: maxlen=%d emb=%d", p.MaxLen, p.EmbDim)
	}
	if p.EncoderOut != 24 { // CNN -> hidden
		t.Fatalf("encoder out %d", p.EncoderOut)
	}
	if len(p.SliceTasks) != 0 {
		t.Fatalf("no slices requested but SliceTasks = %v", p.SliceTasks)
	}
}

func TestPlanEncoderDims(t *testing.T) {
	sch := factoidSchema(t)
	for _, tc := range []struct {
		enc string
		out int
	}{
		{"BOW", 16}, {"CNN", 24}, {"GRU", 24}, {"BiGRU", 48},
	} {
		c := defaultChoice()
		c.Encoder = tc.enc
		p, err := Plan(sch, c, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.enc, err)
		}
		if p.EncoderOut != tc.out {
			t.Errorf("%s: EncoderOut %d want %d", tc.enc, p.EncoderOut, tc.out)
		}
	}
	c := defaultChoice()
	c.Encoder = "Transformer"
	if _, err := Plan(sch, c, nil); err == nil {
		t.Fatalf("unknown encoder accepted")
	}
}

func TestPlanSlices(t *testing.T) {
	p, err := Plan(factoidSchema(t), defaultChoice(), []string{"nutrition", "disambig"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slices) != 2 {
		t.Fatalf("slices lost")
	}
	// Example and set tasks are sliced; token tasks are not.
	if !p.HasSliceTask("Intent") || !p.HasSliceTask("IntentArg") {
		t.Fatalf("slice tasks wrong: %v", p.SliceTasks)
	}
	if p.HasSliceTask("POS") {
		t.Fatalf("token task should not be sliced")
	}
}

func TestPlanRejectsBadSchemas(t *testing.T) {
	// Two sequence payloads.
	js := `{
	  "payloads": {
	    "a": {"type": "sequence", "max_length": 4},
	    "b": {"type": "sequence", "max_length": 4}
	  },
	  "tasks": {"T": {"payload": "a", "type": "multiclass", "classes": ["x","y"]}}
	}`
	sch, err := schema.Parse([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(sch, defaultChoice(), nil); err == nil || !strings.Contains(err.Error(), "multiple sequence") {
		t.Fatalf("two sequences accepted: %v", err)
	}
	// No sequence payload.
	js2 := `{
	  "payloads": {"q": {"type": "singleton"}},
	  "tasks": {"T": {"payload": "q", "type": "multiclass", "classes": ["x","y"]}}
	}`
	sch2, err := schema.Parse([]byte(js2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(sch2, defaultChoice(), nil); err == nil {
		t.Fatalf("schema without sequence accepted")
	}
	// Bad embedding spec.
	c := defaultChoice()
	c.Embedding = "bogus"
	if _, err := Plan(factoidSchema(t), c, nil); err == nil {
		t.Fatalf("bad embedding accepted")
	}
}

func TestDescribeMentionsAllParts(t *testing.T) {
	p, err := Plan(factoidSchema(t), defaultChoice(), []string{"disambig"})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{"tokens", "query", "entities", "POS", "EntityType", "Intent", "IntentArg",
		"CNN", "hash-16", "[sliced]", "disambig", "lr=0.01"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}
