// Package train implements Overton's noise-aware multitask trainer: it
// combines supervision with the label model, batches records, optimises the
// compiled model with Adam under the tuning choice's hyperparameters, and
// tracks dev quality for model selection (the "Train & Tune Models" box of
// Figure 1).
package train

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/labelmodel"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/record"
)

// Config controls one training run. Epochs, LR, batch size and dropout come
// from the model's tuning choice; Config adds the supervision knobs.
type Config struct {
	Seed int64
	// Estimator for supervision combination (default: accuracy model).
	Estimator labelmodel.Estimator
	// Rebalance applies automatic class rebalancing.
	Rebalance bool
	// Loss weighting across tasks and slice components.
	Loss model.LossConfig
	// ClipNorm bounds the global gradient norm (default 5).
	ClipNorm float64
	// Workers is the data-parallel shard count per training step: each
	// batch is split across this many worker sessions whose gradients are
	// all-reduced into one fused optimizer step. 0 defaults to
	// min(NumCPU, batch size); 1 trains serially. Results are
	// reproducible run-to-run at any fixed value.
	Workers int
	// EarlyStopPatience stops after this many epochs without dev
	// improvement (0 = train all epochs).
	EarlyStopPatience int
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// Report summarises a training run.
type Report struct {
	Epochs      int
	TrainLoss   []float64 // mean loss per epoch
	DevScore    []float64 // mean primary metric on dev per epoch (NaN-free; -1 when no dev)
	BestEpoch   int
	BestDev     float64
	FinalDev    map[string]metrics.TaskMetrics
	Supervision map[string]*labelmodel.TaskTargets
}

// CombineSupervision runs the label model for every task over the train+dev
// records of ds (test supervision is gold-only by construction).
func CombineSupervision(ds *record.Dataset, cfg Config) (map[string]*labelmodel.TaskTargets, error) {
	targets := make(map[string]*labelmodel.TaskTargets, len(ds.Schema.Tasks))
	for _, tname := range ds.Schema.TaskNames() {
		tt, err := labelmodel.Combine(ds.Records, ds.Schema, tname, labelmodel.CombineConfig{
			Estimator: cfg.Estimator,
			Rebalance: cfg.Rebalance,
		})
		if err != nil {
			return nil, fmt.Errorf("train: combine %s: %w", tname, err)
		}
		targets[tname] = tt
	}
	return targets, nil
}

// Run trains m on ds: combines supervision, then optimises for the choice's
// epoch budget, evaluating on the dev tag after each epoch.
func Run(m *model.Model, ds *record.Dataset, cfg Config) (*Report, error) {
	targets, err := CombineSupervision(ds, cfg)
	if err != nil {
		return nil, err
	}
	return RunWithTargets(m, ds, targets, cfg)
}

// RunWithTargets trains against precomputed supervision targets (used by
// scaling experiments that downsample supervision without recombining).
func RunWithTargets(m *model.Model, ds *record.Dataset, targets map[string]*labelmodel.TaskTargets, cfg Config) (*Report, error) {
	cfg.ClipNorm = effectiveClipNorm(cfg.ClipNorm)
	choice := m.Prog.Choice
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Train indices: records tagged train that have any supervised unit.
	var trainIdx []int
	for i, r := range ds.Records {
		if !r.HasTag(record.TagTrain) {
			continue
		}
		if hasSupervision(targets, i) {
			trainIdx = append(trainIdx, i)
		}
	}
	if len(trainIdx) == 0 {
		return nil, fmt.Errorf("train: no supervised training records")
	}
	dev := ds.WithTag(record.TagDev)

	rep := &Report{Supervision: targets, BestEpoch: -1, BestDev: -1}
	optimizer := opt.NewAdam(m.PS.All())
	bestParams := map[string][]float64{}

	// Data-parallel step: shard each batch across worker sessions and
	// all-reduce into one fused optimizer step. One worker falls back to
	// the serial TrainStep (bitwise-identical either way).
	step := m.TrainStep
	if workers := resolveWorkers(cfg.Workers, choice.BatchSize); workers > 1 {
		pt, err := model.NewParallelTrainer(m, workers)
		if err != nil {
			return nil, err
		}
		defer pt.Close()
		step = pt.TrainStep
	}

	for epoch := 0; epoch < choice.Epochs; epoch++ {
		order := append([]int(nil), trainIdx...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var nBatches float64
		for start := 0; start < len(order); start += choice.BatchSize {
			end := start + choice.BatchSize
			if end > len(order) {
				end = len(order)
			}
			idx := order[start:end]
			recs := make([]*record.Record, len(idx))
			for i, j := range idx {
				recs[i] = ds.Records[j]
			}
			loss, err := step(recs, idx, targets, cfg.Loss, optimizer, choice.LR, cfg.ClipNorm, rng)
			if err != nil {
				return nil, err
			}
			epochLoss += loss
			nBatches++
		}
		meanLoss := epochLoss / nBatches
		rep.TrainLoss = append(rep.TrainLoss, meanLoss)
		rep.Epochs = epoch + 1

		devScore := -1.0
		if len(dev) > 0 {
			ms, err := m.Evaluate(dev)
			if err != nil {
				return nil, err
			}
			devScore = metrics.MeanPrimary(ms)
		}
		rep.DevScore = append(rep.DevScore, devScore)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  dev %.4f\n", epoch, meanLoss, devScore)
		}
		if devScore > rep.BestDev {
			rep.BestDev = devScore
			rep.BestEpoch = epoch
			snapshotParams(m, bestParams)
		}
		if cfg.EarlyStopPatience > 0 && epoch-rep.BestEpoch >= cfg.EarlyStopPatience {
			break
		}
	}
	// Restore the best dev checkpoint (when dev existed).
	if rep.BestEpoch >= 0 && len(bestParams) > 0 && len(dev) > 0 {
		restoreParams(m, bestParams)
	}
	if len(dev) > 0 {
		ms, err := m.Evaluate(dev)
		if err != nil {
			return nil, err
		}
		rep.FinalDev = ms
	}
	// Drop the training session's pooled buffers: the returned model is
	// typically kept for serving, which must not pin training-sized arenas.
	m.EndTraining()
	return rep, nil
}

func hasSupervision(targets map[string]*labelmodel.TaskTargets, i int) bool {
	for _, tt := range targets {
		if tt == nil || i >= len(tt.Weight) {
			continue
		}
		for _, w := range tt.Weight[i] {
			if w > 0 {
				return true
			}
		}
	}
	return false
}

func snapshotParams(m *model.Model, dst map[string][]float64) {
	for _, p := range m.PS.All() {
		buf := dst[p.Name]
		if buf == nil {
			buf = make([]float64, p.Node.Value.Len())
			dst[p.Name] = buf
		}
		copy(buf, p.Node.Value.Data)
	}
}

func restoreParams(m *model.Model, src map[string][]float64) {
	for _, p := range m.PS.All() {
		if buf, ok := src[p.Name]; ok {
			copy(p.Node.Value.Data, buf)
		}
	}
	// Direct parameter writes invalidate the model's derived caches.
	m.ParamsChanged()
}
