package train

import (
	"fmt"
	"math/rand"

	"repro/internal/labelmodel"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/record"
)

// FineTuneConfig bounds an incremental fine-tune pass: a deployment's
// continuous-improvement loop runs this on a Clone() of the live primary
// against refreshed probabilistic labels, so it must be cheap, bounded, and
// dev-free (live ingest has no dev split; the shadow gate on mirrored
// production traffic is the model selection step).
type FineTuneConfig struct {
	// Epochs over the window (default 1).
	Epochs int
	// LR overrides the tuning choice's learning rate; 0 keeps it. Fine-tune
	// callers typically want a fraction of the from-scratch rate.
	LR float64
	// BatchSize overrides the tuning choice's batch size; 0 keeps it.
	BatchSize int
	// ClipNorm bounds the global gradient norm (default 5).
	ClipNorm float64
	// Workers is the data-parallel shard count per step (see
	// Config.Workers): 0 defaults to min(NumCPU, batch size), 1 is serial.
	Workers int
	// Loss weighting across tasks and slice components.
	Loss model.LossConfig
	Seed int64
}

// FineTuneReport summarises one fine-tune pass.
type FineTuneReport struct {
	Records int // supervised records optimised over
	Steps   int
	Loss    float64 // mean batch loss of the final epoch
}

// FineTune optimises m in place against precomputed probabilistic targets
// over recs (targets[task].Dist/Weight aligned with recs indices, as
// produced by labelmodel.Snapshot.Targets or Combine). Unlike Run it has no
// dev evaluation, no early stopping, and no checkpoint restore — a bounded
// gradient pass, nothing more. The model's training buffers are released on
// return so the result can go straight to serving.
func FineTune(m *model.Model, recs []*record.Record, targets map[string]*labelmodel.TaskTargets, cfg FineTuneConfig) (*FineTuneReport, error) {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	cfg.ClipNorm = effectiveClipNorm(cfg.ClipNorm)
	choice := m.Prog.Choice
	lr := choice.LR
	if cfg.LR > 0 {
		lr = cfg.LR
	}
	batchSize := choice.BatchSize
	if cfg.BatchSize > 0 {
		batchSize = cfg.BatchSize
	}
	if batchSize <= 0 {
		batchSize = 8
	}

	var idx []int
	for i := range recs {
		if hasSupervision(targets, i) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("train: fine-tune: no supervised records in window")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	optimizer := opt.NewAdam(m.PS.All())
	rep := &FineTuneReport{Records: len(idx)}
	step := m.TrainStep
	if workers := resolveWorkers(cfg.Workers, batchSize); workers > 1 {
		pt, err := model.NewParallelTrainer(m, workers)
		if err != nil {
			return nil, fmt.Errorf("train: fine-tune: %w", err)
		}
		defer pt.Close()
		step = pt.TrainStep
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := append([]int(nil), idx...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var nBatches float64
		for start := 0; start < len(order); start += batchSize {
			end := start + batchSize
			if end > len(order) {
				end = len(order)
			}
			ids := order[start:end]
			batch := make([]*record.Record, len(ids))
			for i, j := range ids {
				batch[i] = recs[j]
			}
			loss, err := step(batch, ids, targets, cfg.Loss, optimizer, lr, cfg.ClipNorm, rng)
			if err != nil {
				return nil, fmt.Errorf("train: fine-tune: %w", err)
			}
			epochLoss += loss
			nBatches++
			rep.Steps++
		}
		rep.Loss = epochLoss / nBatches
	}
	// The caller serves this model next; drop training-sized arenas.
	m.EndTraining()
	return rep, nil
}
