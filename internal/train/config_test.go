package train

import (
	"runtime"
	"testing"
)

func TestEffectiveClipNorm(t *testing.T) {
	if got := effectiveClipNorm(0); got != 5 {
		t.Fatalf("default clip norm %v want 5", got)
	}
	if got := effectiveClipNorm(2.5); got != 2.5 {
		t.Fatalf("explicit clip norm %v want 2.5", got)
	}
	if got := effectiveClipNorm(-1); got != -1 {
		t.Fatalf("negative (disabled) clip norm %v want -1", got)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(3, 32); got != 3 {
		t.Fatalf("explicit workers %d want 3", got)
	}
	// Negative means serial, not the NumCPU default.
	if got := resolveWorkers(-1, 32); got != 1 {
		t.Fatalf("negative workers %d want 1", got)
	}
	want := runtime.NumCPU()
	if want > 8 {
		want = 8
	}
	if got := resolveWorkers(0, 8); got != want {
		t.Fatalf("default workers %d want min(NumCPU, 8) = %d", got, want)
	}
	if got := resolveWorkers(0, 0); got != runtime.NumCPU() {
		t.Fatalf("default workers with unknown batch %d want NumCPU", got)
	}
}
