package train

import (
	"math"
	"testing"

	"repro/internal/compile"
	"repro/internal/labelmodel"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/workload"
)

func testChoice() schema.Choice {
	return schema.Choice{
		Embedding: "hash-24", Encoder: "CNN", Hidden: 32,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.02, Epochs: 10, Dropout: 0, BatchSize: 32,
	}
}

func buildModel(t *testing.T, choice schema.Choice, slices []string, seed int64) *model.Model {
	t.Helper()
	prog, err := compile.Plan(workload.FactoidSchema(), choice, slices)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainLearnsWorkload(t *testing.T) {
	ds := workload.StandardDataset(700, 42, 0.2)
	m := buildModel(t, testChoice(), nil, 7)
	rep, err := Run(m, ds, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 10 {
		t.Fatalf("epochs %d", rep.Epochs)
	}
	// Loss decreases substantially.
	if rep.TrainLoss[len(rep.TrainLoss)-1] >= rep.TrainLoss[0]*0.8 {
		t.Fatalf("loss barely moved: %v", rep.TrainLoss)
	}
	// Test-set quality: the trained model must clearly beat chance on all
	// tasks and reach strong quality on the easy ones.
	test := ds.WithTag(record.TagTest)
	ms, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("test metrics: Intent=%.3f POS=%.3f EntityType(F1)=%.3f IntentArg=%.3f mean=%.3f",
		ms["Intent"].Primary, ms["POS"].Primary, ms["EntityType"].Primary, ms["IntentArg"].Primary,
		metrics.MeanPrimary(ms))
	if ms["Intent"].Primary < 0.85 {
		t.Errorf("Intent accuracy %.3f < 0.85", ms["Intent"].Primary)
	}
	if ms["POS"].Primary < 0.9 {
		t.Errorf("POS accuracy %.3f < 0.9", ms["POS"].Primary)
	}
	if ms["EntityType"].Primary < 0.7 {
		t.Errorf("EntityType F1 %.3f < 0.7", ms["EntityType"].Primary)
	}
	if ms["IntentArg"].Primary < 0.78 {
		t.Errorf("IntentArg accuracy %.3f < 0.78", ms["IntentArg"].Primary)
	}
	// Dev tracking populated.
	if rep.BestEpoch < 0 || rep.BestDev <= 0 || len(rep.FinalDev) == 0 {
		t.Fatalf("dev tracking missing: %+v", rep)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	run := func() []float64 {
		ds := workload.StandardDataset(120, 5, 0.2)
		c := testChoice()
		c.Epochs = 2
		m := buildModel(t, c, nil, 3)
		rep, err := Run(m, ds, Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return rep.TrainLoss
	}
	a := run()
	b := run()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("training not deterministic: %v vs %v", a, b)
		}
	}
}

func TestEarlyStopping(t *testing.T) {
	ds := workload.StandardDataset(150, 13, 0.2)
	c := testChoice()
	c.Epochs = 30
	m := buildModel(t, c, nil, 3)
	rep, err := Run(m, ds, Config{Seed: 9, EarlyStopPatience: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs >= 30 {
		t.Logf("early stopping never fired (dev kept improving) — acceptable but unusual")
	}
	if rep.BestEpoch > rep.Epochs-1 {
		t.Fatalf("best epoch out of range")
	}
}

func TestRunWithDownsampledTargets(t *testing.T) {
	// Zero out supervision on most records; training must still work on
	// the remainder (the Figure 4a scaling harness path).
	ds := workload.StandardDataset(200, 17, 0.2)
	cfg := Config{Seed: 3}
	targets, err := CombineSupervision(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for i := range ds.Records {
		if i%4 != 0 {
			for _, tt := range targets {
				for u := range tt.Weight[i] {
					tt.Weight[i][u] = 0
				}
			}
		} else {
			kept++
		}
	}
	c := testChoice()
	c.Epochs = 2
	m := buildModel(t, c, nil, 5)
	rep, err := RunWithTargets(m, ds, targets, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 2 {
		t.Fatalf("epochs wrong")
	}
}

func TestNoSupervisionErrors(t *testing.T) {
	ds := workload.StandardDataset(30, 19, 0.2)
	// Strip all non-gold labels.
	for _, r := range ds.Records {
		for task, tl := range r.Tasks {
			for src := range tl {
				if src != record.GoldSource {
					delete(r.Tasks[task], src)
				}
			}
		}
	}
	m := buildModel(t, testChoice(), nil, 3)
	if _, err := Run(m, ds, Config{Seed: 1}); err == nil {
		t.Fatalf("training with no supervision should fail")
	}
}

// TestRunWorkersMatchesSerial: train.Run with the data-parallel engine
// (W=2 and W=4) must track the serial (Workers=1) loss trajectory within
// 1e-9, and a repeated W run must be bitwise deterministic.
func TestRunWorkersMatchesSerial(t *testing.T) {
	run := func(workers int) []float64 {
		ds := workload.StandardDataset(120, 5, 0.2)
		c := testChoice()
		c.Epochs = 2
		m := buildModel(t, c, nil, 3)
		rep, err := Run(m, ds, Config{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep.TrainLoss
	}
	serial := run(1)
	for _, w := range []int{2, 4} {
		par := run(w)
		for i := range serial {
			if math.Abs(serial[i]-par[i]) > 1e-9 {
				t.Fatalf("W=%d epoch %d loss diverged: %v vs %v", w, i, serial[i], par[i])
			}
		}
	}
	a, b := run(4), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("W=4 training not deterministic: %v vs %v", a, b)
		}
	}
}

// TestFineTuneWorkersMatchesSerial: the bounded fine-tune pass (the
// improvement loop's gradient step) must produce the same loss and
// near-identical parameters under the data-parallel engine.
func TestFineTuneWorkersMatchesSerial(t *testing.T) {
	ds := workload.StandardDataset(80, 7, 0.2)
	targets, err := CombineSupervision(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := buildModel(t, testChoice(), nil, 3)
	if _, err := Run(base, ds, Config{Seed: 9, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	ft := func(workers int) (*FineTuneReport, *model.Model) {
		m, err := base.Clone()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := FineTune(m, ds.Records, targets, FineTuneConfig{Epochs: 2, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep, m
	}
	repS, mS := ft(1)
	repP, mP := ft(4)
	if math.Abs(repS.Loss-repP.Loss) > 1e-9 {
		t.Fatalf("fine-tune loss diverged: %v vs %v", repS.Loss, repP.Loss)
	}
	if repS.Steps != repP.Steps || repS.Records != repP.Records {
		t.Fatalf("fine-tune accounting diverged: %+v vs %+v", repS, repP)
	}
	for _, p := range mS.PS.All() {
		q := mP.PS.Get(p.Name)
		for j, v := range p.Node.Value.Data {
			if math.Abs(v-q.Node.Value.Data[j]) > 1e-9 {
				t.Fatalf("param %s[%d] diverged", p.Name, j)
			}
		}
	}
}

func TestCombineSupervisionCoversAllTasks(t *testing.T) {
	ds := workload.StandardDataset(100, 23, 0.2)
	targets, err := CombineSupervision(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"POS", "EntityType", "Intent", "IntentArg"} {
		tt := targets[task]
		if tt == nil {
			t.Fatalf("no targets for %s", task)
		}
		if tt.SupervisedUnits() == 0 {
			t.Fatalf("%s has no supervised units", task)
		}
	}
	// Source-accuracy estimates exist for the intent sources and are all
	// better than chance (the data-programming precondition holds).
	intent := targets["Intent"]
	for _, src := range []string{"kwintent", "templ", "crowd"} {
		acc, ok := intent.SourceAccuracy[src]
		if !ok {
			t.Fatalf("no accuracy estimate for %s", src)
		}
		if acc < 0.5 {
			t.Errorf("%s estimated below chance: %.3f", src, acc)
		}
	}
	_ = labelmodel.EstAccuracy
}
