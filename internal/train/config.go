package train

import "runtime"

// effectiveClipNorm applies the trainer-wide ClipNorm default: 0 means
// "clip the global gradient norm at 5"; negative disables clipping. Run,
// FineTune, and therefore the data-parallel path all resolve the default
// through this one helper so the serial and parallel trainers cannot
// diverge on it.
func effectiveClipNorm(v float64) float64 {
	if v == 0 {
		return 5
	}
	return v
}

// resolveWorkers applies the Workers default for data-parallel training:
// 0 (unset) means min(NumCPU, batchSize) — one shard per core, but never
// more shards than a batch has records; explicit values are clamped to at
// least 1.
func resolveWorkers(workers, batchSize int) int {
	if workers != 0 {
		if workers < 1 {
			return 1
		}
		return workers
	}
	w := runtime.NumCPU()
	if batchSize > 0 && w > batchSize {
		w = batchSize
	}
	if w < 1 {
		w = 1
	}
	return w
}
