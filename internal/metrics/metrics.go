// Package metrics implements the evaluation primitives behind Overton's
// fine-grained quality monitoring: accuracy, precision/recall/F1 (binary,
// micro, macro), and confusion matrices, all over plain counts so callers
// can slice them by tag.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Accuracy returns correct/total (0 when total is 0).
func Accuracy(correct, total float64) float64 {
	if total == 0 {
		return 0
	}
	return correct / total
}

// PRF1 bundles precision, recall and F1.
type PRF1 struct {
	Precision float64
	Recall    float64
	F1        float64
}

// BinaryPRF1 computes precision/recall/F1 from confusion counts.
func BinaryPRF1(tp, fp, fn float64) PRF1 {
	var p, r, f float64
	if tp+fp > 0 {
		p = tp / (tp + fp)
	}
	if tp+fn > 0 {
		r = tp / (tp + fn)
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF1{Precision: p, Recall: r, F1: f}
}

// Counter accumulates binary confusion counts.
type Counter struct {
	TP, FP, FN, TN float64
}

// Add records one (gold, predicted) binary observation.
func (c *Counter) Add(gold, pred bool) {
	switch {
	case gold && pred:
		c.TP++
	case !gold && pred:
		c.FP++
	case gold && !pred:
		c.FN++
	default:
		c.TN++
	}
}

// PRF1 computes precision/recall/F1 from the accumulated counts.
func (c *Counter) PRF1() PRF1 { return BinaryPRF1(c.TP, c.FP, c.FN) }

// Total returns the number of observations.
func (c *Counter) Total() float64 { return c.TP + c.FP + c.FN + c.TN }

// Confusion is a multiclass confusion matrix.
type Confusion struct {
	Classes []string
	Counts  [][]float64 // [gold][pred]
}

// NewConfusion allocates a matrix over the class list.
func NewConfusion(classes []string) *Confusion {
	c := &Confusion{Classes: classes, Counts: make([][]float64, len(classes))}
	for i := range c.Counts {
		c.Counts[i] = make([]float64, len(classes))
	}
	return c
}

// Add records one observation by class index.
func (c *Confusion) Add(gold, pred int) { c.Counts[gold][pred]++ }

// Total returns the number of observations.
func (c *Confusion) Total() float64 {
	var t float64
	for _, row := range c.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy returns the trace ratio.
func (c *Confusion) Accuracy() float64 {
	var correct float64
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return Accuracy(correct, c.Total())
}

// ClassPRF1 returns one-vs-rest precision/recall/F1 for class k.
func (c *Confusion) ClassPRF1(k int) PRF1 {
	var tp, fp, fn float64
	tp = c.Counts[k][k]
	for i := range c.Counts {
		if i != k {
			fp += c.Counts[i][k]
			fn += c.Counts[k][i]
		}
	}
	return BinaryPRF1(tp, fp, fn)
}

// MacroF1 averages per-class F1 over classes that occur in gold.
func (c *Confusion) MacroF1() float64 {
	var sum, n float64
	for k := range c.Classes {
		var goldCount float64
		for j := range c.Counts[k] {
			goldCount += c.Counts[k][j]
		}
		if goldCount == 0 {
			continue
		}
		sum += c.ClassPRF1(k).F1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// String renders the matrix with class labels.
func (c *Confusion) String() string {
	var sb strings.Builder
	width := 6
	for _, cl := range c.Classes {
		if len(cl) > width {
			width = len(cl)
		}
	}
	fmt.Fprintf(&sb, "%*s", width+1, "")
	for _, cl := range c.Classes {
		fmt.Fprintf(&sb, " %*s", width, cl)
	}
	sb.WriteByte('\n')
	for i, cl := range c.Classes {
		fmt.Fprintf(&sb, "%*s:", width, cl)
		for j := range c.Classes {
			fmt.Fprintf(&sb, " %*.0f", width, c.Counts[i][j])
		}
		sb.WriteByte('\n')
		_ = i
	}
	return sb.String()
}

// TaskMetrics is the scalar quality summary for one task.
type TaskMetrics struct {
	Task string
	// Primary is the headline number: accuracy for multiclass/select,
	// micro-F1 for bitvector.
	Primary float64
	// Name of the primary metric ("accuracy" or "f1").
	PrimaryName string
	Accuracy    float64
	F1          PRF1
	N           float64
	Confusion   *Confusion // multiclass tasks only
}

// String renders a one-line summary.
func (t TaskMetrics) String() string {
	return fmt.Sprintf("%-12s %s=%.4f n=%.0f", t.Task, t.PrimaryName, t.Primary, t.N)
}

// MeanPrimary averages the primary metric across tasks (the single product
// quality number used in Figure 3; its complement is the product error).
func MeanPrimary(ms map[string]TaskMetrics) float64 {
	if len(ms) == 0 {
		return 0
	}
	var sum float64
	for _, name := range SortedTasks(ms) {
		sum += ms[name].Primary
	}
	return sum / float64(len(ms))
}

// MeanError is 1 - MeanPrimary.
func MeanError(ms map[string]TaskMetrics) float64 { return 1 - MeanPrimary(ms) }

// SortedTasks returns task names sorted (for stable report rendering).
func SortedTasks(ms map[string]TaskMetrics) []string {
	out := make([]string, 0, len(ms))
	for t := range ms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
