package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	if Accuracy(3, 4) != 0.75 {
		t.Fatalf("Accuracy wrong")
	}
	if Accuracy(0, 0) != 0 {
		t.Fatalf("empty Accuracy should be 0")
	}
}

func TestBinaryPRF1(t *testing.T) {
	m := BinaryPRF1(8, 2, 4)
	if math.Abs(m.Precision-0.8) > 1e-12 {
		t.Fatalf("P wrong: %g", m.Precision)
	}
	if math.Abs(m.Recall-8.0/12.0) > 1e-12 {
		t.Fatalf("R wrong: %g", m.Recall)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Fatalf("F1 wrong: %g want %g", m.F1, wantF1)
	}
	// Degenerate cases don't NaN.
	z := BinaryPRF1(0, 0, 0)
	if z.Precision != 0 || z.Recall != 0 || z.F1 != 0 {
		t.Fatalf("degenerate PRF1 wrong: %+v", z)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(true, true)   // TP
	c.Add(true, false)  // FN
	c.Add(false, true)  // FP
	c.Add(false, false) // TN
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("counter wrong: %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("total wrong")
	}
	m := c.PRF1()
	if m.Precision != 0.5 || m.Recall != 0.5 || m.F1 != 0.5 {
		t.Fatalf("PRF1 wrong: %+v", m)
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion([]string{"a", "b", "c"})
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	c.Add(2, 0)
	if c.Total() != 5 {
		t.Fatalf("total wrong")
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-12 {
		t.Fatalf("accuracy %g", c.Accuracy())
	}
	// Class a: tp=2, fp=1 (from c), fn=1 (to b).
	m := c.ClassPRF1(0)
	if math.Abs(m.Precision-2.0/3.0) > 1e-12 || math.Abs(m.Recall-2.0/3.0) > 1e-12 {
		t.Fatalf("class PRF1 wrong: %+v", m)
	}
	if c.MacroF1() <= 0 || c.MacroF1() > 1 {
		t.Fatalf("macro F1 out of range")
	}
	s := c.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "2") {
		t.Fatalf("render wrong:\n%s", s)
	}
}

func TestMacroF1IgnoresAbsentClasses(t *testing.T) {
	c := NewConfusion([]string{"a", "b", "never"})
	c.Add(0, 0)
	c.Add(1, 1)
	if c.MacroF1() != 1 {
		t.Fatalf("absent gold class should not drag macro F1: %g", c.MacroF1())
	}
}

func TestMeanPrimaryAndError(t *testing.T) {
	ms := map[string]TaskMetrics{
		"A": {Task: "A", Primary: 0.9},
		"B": {Task: "B", Primary: 0.7},
	}
	if math.Abs(MeanPrimary(ms)-0.8) > 1e-12 {
		t.Fatalf("MeanPrimary wrong")
	}
	if math.Abs(MeanError(ms)-0.2) > 1e-12 {
		t.Fatalf("MeanError wrong")
	}
	if MeanPrimary(nil) != 0 {
		t.Fatalf("empty MeanPrimary wrong")
	}
	names := SortedTasks(ms)
	if names[0] != "A" || names[1] != "B" {
		t.Fatalf("SortedTasks wrong")
	}
}

func TestTaskMetricsString(t *testing.T) {
	m := TaskMetrics{Task: "Intent", Primary: 0.95, PrimaryName: "accuracy", N: 100}
	s := m.String()
	if !strings.Contains(s, "Intent") || !strings.Contains(s, "0.95") {
		t.Fatalf("render wrong: %s", s)
	}
}

// Property: F1 is the harmonic mean of P and R, bounded by both.
func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		m := BinaryPRF1(float64(tp), float64(fp), float64(fn))
		if m.F1 < 0 || m.F1 > 1 {
			return false
		}
		maxPR := math.Max(m.Precision, m.Recall)
		minPR := math.Min(m.Precision, m.Recall)
		return m.F1 <= maxPR+1e-12 && m.F1 >= minPR*0-1e-12 && m.F1 <= 1 && minPR >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: confusion accuracy equals manual trace computation.
func TestConfusionAccuracyProperty(t *testing.T) {
	f := func(obs []uint8) bool {
		c := NewConfusion([]string{"x", "y", "z"})
		var correct, total float64
		for _, o := range obs {
			g := int(o) % 3
			p := int(o/3) % 3
			c.Add(g, p)
			total++
			if g == p {
				correct++
			}
		}
		want := 0.0
		if total > 0 {
			want = correct / total
		}
		return math.Abs(c.Accuracy()-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
