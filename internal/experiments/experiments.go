// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 3) plus the slice claim of Section 2.2 and
// the ablations DESIGN.md calls out:
//
//   - Figure 3: end-to-end error reduction vs. the previous production
//     system across four resource levels, with weak-supervision share.
//   - Figure 4a: relative quality vs. weak-supervision scale (1x..32x) for
//     the three task granularities (singleton, sequence, set).
//   - Figure 4b: with-BERT vs. without-BERT relative quality per scale.
//   - Slice: the ">50 point" improvement on a rare complex-disambiguation
//     slice with the same training data (slice-based learning).
//   - Ablations: label model vs. majority vote, multitask vs. single-task,
//     search vs. default, rebalancing.
//
// Absolute numbers are not expected to match the paper (the substrate is a
// synthetic workload and a from-scratch trainer); the reproduced artifact
// is the *shape*: who wins, by roughly what factor, where crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/labelmodel"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/train"
	"repro/internal/workload"
)

// Options size the experiments. Quick() is CI-sized; Full() produces the
// EXPERIMENTS.md numbers.
type Options struct {
	Seed int64
	// Figure 3.
	Fig3Scale float64 // multiplies preset training sizes
	// Figure 4a/4b.
	Fig4Base   int   // 1x training-record count
	Fig4Scales []int // e.g. 1,2,4,8,16,32
	// Slice experiment.
	SliceN int
	// Shared training.
	Epochs int
	Log    io.Writer
}

// Quick returns CI-sized options (~tens of seconds total).
func Quick() Options {
	return Options{
		Seed:       1,
		Fig3Scale:  0.35,
		Fig4Base:   60,
		Fig4Scales: []int{1, 4, 16},
		SliceN:     900,
		Epochs:     10,
	}
}

// Full returns the paper-shaped options used for EXPERIMENTS.md. The 1x
// base is small enough that every task granularity has visible headroom at
// 1x (the paper's 1x ≈ 30K production examples are similarly far from its
// tasks' ceilings).
func Full() Options {
	return Options{
		Seed:       1,
		Fig3Scale:  1.0,
		Fig4Base:   60,
		Fig4Scales: []int{1, 2, 4, 8, 16, 32},
		SliceN:     2400,
		Epochs:     15,
	}
}

// defaultChoice is the fixed tuning point experiments train with (search is
// its own ablation; fixing the architecture isolates the variable under
// study, as the paper does).
func defaultChoice(epochs int) schema.Choice {
	return schema.Choice{
		Embedding: "hash-24", Encoder: "CNN", Hidden: 32,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.02, Epochs: epochs, Dropout: 0, BatchSize: 32,
	}
}

// epochsFor scales the epoch budget so every run gets at least minSteps
// optimisation steps regardless of dataset size — small-data points train
// to convergence instead of being starved (the paper trains each point of
// its scaling study fully).
func epochsFor(nTrain, baseEpochs int) int {
	const (
		minSteps  = 400
		batchSize = 32
		maxEpochs = 150
	)
	if nTrain <= 0 {
		return baseEpochs
	}
	stepsPerEpoch := (nTrain + batchSize - 1) / batchSize
	needed := (minSteps + stepsPerEpoch - 1) / stepsPerEpoch
	e := baseEpochs
	if needed > e {
		e = needed
	}
	if e > maxEpochs {
		e = maxEpochs
	}
	return e
}

// factoidResources builds model resources from the workload KB.
func factoidResources() *compile.Resources {
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	return &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}
}

// buildModel compiles and initialises a model for the factoid schema.
func buildModel(choice schema.Choice, slices []string, res *compile.Resources, seed int64) (*model.Model, error) {
	prog, err := compile.Plan(workload.FactoidSchema(), choice, slices)
	if err != nil {
		return nil, err
	}
	return model.New(prog, res, seed)
}

// trainModel runs the standard noise-aware training.
func trainModel(m *model.Model, ds *record.Dataset, seed int64, log io.Writer) error {
	_, err := train.Run(m, ds, train.Config{Seed: seed, Log: log})
	return err
}

// trainModelWithTargets trains on precomputed (possibly downsampled)
// supervision.
func trainModelWithTargets(m *model.Model, ds *record.Dataset, targets map[string]*labelmodel.TaskTargets, seed int64) error {
	_, err := train.RunWithTargets(m, ds, targets, train.Config{Seed: seed})
	return err
}

// testMetrics evaluates on the gold test split.
func testMetrics(m *model.Model, ds *record.Dataset) (map[string]metrics.TaskMetrics, error) {
	return m.Evaluate(ds.WithTag(record.TagTest))
}

// oracleBlend upgrades outputs toward gold with probability acc per task
// per record — the stand-in for a team's existing per-task supervised
// models (used for the high-resource previous system in Figure 3).
func oracleBlend(outs []model.Output, recs []*record.Record, acc float64, seed int64) []model.Output {
	rng := rand.New(rand.NewSource(seed))
	blended := make([]model.Output, len(outs))
	for i, out := range outs {
		rec := recs[i]
		no := model.Output{}
		for task, to := range out {
			gold, ok := rec.Gold(task)
			if ok && rng.Float64() < acc {
				no[task] = goldOutput(task, gold, to)
			} else {
				no[task] = to
			}
		}
		blended[i] = no
	}
	return blended
}

// goldOutput shapes a gold label as a prediction output.
func goldOutput(task string, gold record.Label, like model.TaskOutput) model.TaskOutput {
	switch gold.Kind {
	case record.KindClass:
		return model.TaskOutput{Class: gold.Class}
	case record.KindSeq:
		return model.TaskOutput{TokenClasses: gold.Seq}
	case record.KindBits:
		return model.TaskOutput{TokenBits: gold.Bits}
	case record.KindSelect:
		return model.TaskOutput{Select: gold.Select}
	}
	return like
}

// logf writes progress when a log is configured.
func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
