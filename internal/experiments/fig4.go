package experiments

import (
	"fmt"
	"io"

	"repro/internal/compile"
	"repro/internal/embeddings"
	"repro/internal/labelmodel"
	"repro/internal/record"
	"repro/internal/train"
	"repro/internal/workload"
)

// Fig4Tasks are the three representative tasks by payload granularity, as
// the paper obfuscates them: singleton, sequence, set.
var Fig4Tasks = map[string]string{
	"singleton": workload.TaskIntent,
	"sequence":  workload.TaskEntityType,
	"set":       workload.TaskIntentArg,
}

// ScalingPoint is one x-position of Figure 4a/4b.
type ScalingPoint struct {
	Scale int `json:"scale"`
	// Absolute holds the primary metric per granularity name.
	Absolute map[string]float64 `json:"absolute"`
	// Relative is Absolute divided by the 1x value (the paper's y-axis).
	Relative map[string]float64 `json:"relative"`
}

// scalingDataset builds one dataset big enough for the largest scale and
// the shared, nested supervision-downsampling plan. Returns the dataset,
// the combined targets, and the ordered train-record indices.
func scalingDataset(opts Options) (*record.Dataset, map[string]*labelmodel.TaskTargets, []int, error) {
	maxScale := 1
	for _, s := range opts.Fig4Scales {
		if s > maxScale {
			maxScale = s
		}
	}
	total := int(float64(opts.Fig4Base*maxScale) / 0.7) // train fraction 0.7
	ds := workload.StandardDataset(total, opts.Seed+40, 0.2)
	targets, err := train.CombineSupervision(ds, train.Config{})
	if err != nil {
		return nil, nil, nil, err
	}
	var trainIdx []int
	for i, r := range ds.Records {
		if r.HasTag(record.TagTrain) {
			trainIdx = append(trainIdx, i)
		}
	}
	return ds, targets, trainIdx, nil
}

// downsampleTargets returns a copy of targets with supervision weights
// zeroed outside the first keep train records (nested subsets: 1x ⊂ 2x ⊂ …).
func downsampleTargets(targets map[string]*labelmodel.TaskTargets, trainIdx []int, keep int) map[string]*labelmodel.TaskTargets {
	drop := map[int]bool{}
	for i, idx := range trainIdx {
		if i >= keep {
			drop[idx] = true
		}
	}
	out := make(map[string]*labelmodel.TaskTargets, len(targets))
	for task, tt := range targets {
		c := &labelmodel.TaskTargets{
			Task:           tt.Task,
			Gran:           tt.Gran,
			Dist:           tt.Dist,
			Weight:         make([][]float64, len(tt.Weight)),
			SourceAccuracy: tt.SourceAccuracy,
			SourceCoverage: tt.SourceCoverage,
			ClassBalance:   tt.ClassBalance,
		}
		for i, ws := range tt.Weight {
			if drop[i] {
				c.Weight[i] = make([]float64, len(ws))
			} else {
				c.Weight[i] = ws
			}
		}
		out[task] = c
	}
	return out
}

// Figure4a reproduces relative quality vs weak-supervision scale.
func Figure4a(opts Options) ([]ScalingPoint, error) {
	ds, targets, trainIdx, err := scalingDataset(opts)
	if err != nil {
		return nil, err
	}
	res := factoidResources()
	var points []ScalingPoint
	var base map[string]float64
	for _, scale := range opts.Fig4Scales {
		keep := opts.Fig4Base * scale
		sub := downsampleTargets(targets, trainIdx, keep)
		m, err := buildModel(defaultChoice(epochsFor(keep, opts.Epochs)), nil, res, opts.Seed+50+int64(scale))
		if err != nil {
			return nil, err
		}
		if err := trainModelWithTargets(m, ds, sub, opts.Seed+60+int64(scale)); err != nil {
			return nil, err
		}
		ms, err := testMetrics(m, ds)
		if err != nil {
			return nil, err
		}
		pt := ScalingPoint{Scale: scale, Absolute: map[string]float64{}, Relative: map[string]float64{}}
		for gran, task := range Fig4Tasks {
			pt.Absolute[gran] = ms[task].Primary
		}
		if base == nil {
			base = pt.Absolute
		}
		for gran := range Fig4Tasks {
			if base[gran] > 0 {
				pt.Relative[gran] = pt.Absolute[gran] / base[gran]
			}
		}
		logf(opts.Log, "fig4a: scale %2dx  singleton=%.3f sequence=%.3f set=%.3f",
			scale, pt.Absolute["singleton"], pt.Absolute["sequence"], pt.Absolute["set"])
		points = append(points, pt)
	}
	return points, nil
}

// Fig4bPoint is one x-position of Figure 4b: the with-BERT / without-BERT
// quality ratio per granularity.
type Fig4bPoint struct {
	Scale   int                `json:"scale"`
	Without map[string]float64 `json:"without"`
	With    map[string]float64 `json:"with"`
	Ratio   map[string]float64 `json:"ratio"` // with / without
}

// Figure4b reproduces the pretraining study: for each scale, train the
// production model with standard (hash) embeddings and with the frozen
// BERT-sim contextual encoder dropped in as an extra payload, then compare.
func Figure4b(opts Options) ([]Fig4bPoint, error) {
	ds, targets, trainIdx, err := scalingDataset(opts)
	if err != nil {
		return nil, err
	}
	res := factoidResources()

	// Pretrain BERT-sim once on a large unlabeled corpus (raw text is
	// cheap; that is the premise of pretraining).
	corpus := workload.Corpus(4000, opts.Seed+70)
	vocab := embeddings.NewVocab(res.TokenVocab)
	enc := embeddings.PretrainBERTSim(corpus, vocab, embeddings.BERTSimConfig{
		Dim: 24, Hidden: 48, Epochs: 4, Seed: opts.Seed + 71,
	})
	resBert := &compile.Resources{
		TokenVocab:  res.TokenVocab,
		EntityVocab: res.EntityVocab,
		Contextual:  enc,
	}

	var points []Fig4bPoint
	for _, scale := range opts.Fig4Scales {
		keep := opts.Fig4Base * scale
		sub := downsampleTargets(targets, trainIdx, keep)

		runOne := func(useBert bool) (map[string]float64, error) {
			c := defaultChoice(epochsFor(keep, opts.Epochs))
			r := res
			if useBert {
				c.Embedding = "bertsim-24"
				r = resBert
			}
			m, err := buildModel(c, nil, r, opts.Seed+80+int64(scale))
			if err != nil {
				return nil, err
			}
			if err := trainModelWithTargets(m, ds, sub, opts.Seed+90+int64(scale)); err != nil {
				return nil, err
			}
			ms, err := testMetrics(m, ds)
			if err != nil {
				return nil, err
			}
			out := map[string]float64{}
			for gran, task := range Fig4Tasks {
				out[gran] = ms[task].Primary
			}
			return out, nil
		}
		without, err := runOne(false)
		if err != nil {
			return nil, err
		}
		with, err := runOne(true)
		if err != nil {
			return nil, err
		}
		pt := Fig4bPoint{Scale: scale, Without: without, With: with, Ratio: map[string]float64{}}
		for gran := range Fig4Tasks {
			if without[gran] > 0 {
				pt.Ratio[gran] = with[gran] / without[gran]
			}
		}
		logf(opts.Log, "fig4b: scale %2dx  ratio singleton=%.3f sequence=%.3f set=%.3f",
			scale, pt.Ratio["singleton"], pt.Ratio["sequence"], pt.Ratio["set"])
		points = append(points, pt)
	}
	return points, nil
}

// RenderFigure4a prints the scaling series.
func RenderFigure4a(w io.Writer, points []ScalingPoint) {
	fmt.Fprintln(w, "Figure 4a: relative test quality vs weak-supervision scale (1x baseline)")
	fmt.Fprintf(w, "%-6s  %-22s  %-22s  %-22s\n", "Scale", "singleton (Intent acc)", "sequence (Type F1)", "set (Arg acc)")
	for _, p := range points {
		fmt.Fprintf(w, "%4dx   %6.3f (rel %6.3f)     %6.3f (rel %6.3f)     %6.3f (rel %6.3f)\n",
			p.Scale,
			p.Absolute["singleton"], p.Relative["singleton"],
			p.Absolute["sequence"], p.Relative["sequence"],
			p.Absolute["set"], p.Relative["set"])
	}
}

// RenderFigure4b prints the pretraining comparison.
func RenderFigure4b(w io.Writer, points []Fig4bPoint) {
	fmt.Fprintln(w, "Figure 4b: with-BERT / without-BERT relative quality per scale")
	fmt.Fprintf(w, "%-6s  %-10s  %-10s  %-10s\n", "Scale", "singleton", "sequence", "set")
	for _, p := range points {
		fmt.Fprintf(w, "%4dx   %8.3f    %8.3f    %8.3f\n",
			p.Scale, p.Ratio["singleton"], p.Ratio["sequence"], p.Ratio["set"])
	}
}
