package experiments

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/workload"
)

// Fig3Row is one product row of Figure 3.
type Fig3Row struct {
	Product           string  `json:"product"`
	Resourcing        string  `json:"resourcing"`
	BaselineErr       float64 `json:"baseline_err"`
	OvertonErr        float64 `json:"overton_err"`
	ErrorReductionPct float64 `json:"error_reduction_pct"` // (1 - overton/baseline) * 100
	Factor            float64 `json:"factor"`              // baseline/overton
	WeakPct           float64 `json:"weak_pct"`
}

// baselineOutputs runs the heuristic production pipeline over records
// carrying gold payloads and shapes its predictions as model outputs so
// both systems share one scorer.
func baselineOutputs(recs []*record.Record) ([]model.Output, error) {
	examples, err := baseline.ExamplesFromRecords(recs)
	if err != nil {
		return nil, err
	}
	p := baseline.New()
	outs := make([]model.Output, len(examples))
	for i, ex := range examples {
		pred := p.Predict(ex)
		outs[i] = model.Output{
			workload.TaskIntent:     {Class: pred.Intent},
			workload.TaskPOS:        {TokenClasses: pred.POS},
			workload.TaskEntityType: {TokenBits: pred.Types},
			workload.TaskIntentArg:  {Select: pred.Arg},
		}
	}
	return outs, nil
}

// Figure3 reproduces the error-reduction table. The four presets mirror the
// paper's products: the high-resource team's previous system includes
// per-task supervised components (oracle blend), so its baseline is much
// stronger; low-resource teams ran bare heuristics.
func Figure3(opts Options) ([]Fig3Row, error) {
	sch := workload.FactoidSchema()
	res := factoidResources()
	var rows []Fig3Row
	for _, preset := range workload.ResourcePresets() {
		p := preset
		p.TrainN = int(float64(p.TrainN) * opts.Fig3Scale)
		if p.TrainN < 150 {
			p.TrainN = 150
		}
		ds := workload.BuildPreset(p)
		test := ds.WithTag(record.TagTest)
		logf(opts.Log, "fig3: %s (%s): %d records, %d test", p.Name, p.Resourcing, len(ds.Records), len(test))

		// Previous production system.
		bOuts, err := baselineOutputs(test)
		if err != nil {
			return nil, err
		}
		// The high-resource product's legacy stack included supervised
		// single-task models; medium products had partial coverage.
		switch p.Resourcing {
		case "High":
			bOuts = oracleBlend(bOuts, test, 0.55, p.Seed+5)
		case "Medium":
			bOuts = oracleBlend(bOuts, test, 0.15, p.Seed+5)
		}
		bMetrics := model.ScoreOutputs(sch, test, bOuts)
		baselineErr := metrics.MeanError(bMetrics)

		// Overton.
		nTrain := len(ds.WithTag(record.TagTrain))
		m, err := buildModel(defaultChoice(epochsFor(nTrain, opts.Epochs)), nil, res, p.Seed+9)
		if err != nil {
			return nil, err
		}
		if err := trainModel(m, ds, p.Seed+11, nil); err != nil {
			return nil, err
		}
		oMetrics, err := testMetrics(m, ds)
		if err != nil {
			return nil, err
		}
		overtonErr := metrics.MeanError(oMetrics)

		row := Fig3Row{
			Product:     p.Name,
			Resourcing:  p.Resourcing,
			BaselineErr: baselineErr,
			OvertonErr:  overtonErr,
			WeakPct:     100 * workload.WeakFraction(ds),
		}
		if baselineErr > 0 && overtonErr > 0 {
			row.ErrorReductionPct = 100 * (1 - overtonErr/baselineErr)
			row.Factor = baselineErr / overtonErr
		}
		logf(opts.Log, "fig3: %s baselineErr=%.4f overtonErr=%.4f factor=%.2fx weak=%.0f%%",
			p.Name, baselineErr, overtonErr, row.Factor, row.WeakPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure3 prints the table in the paper's format.
func RenderFigure3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: error reduction vs previous system, and weak supervision share")
	fmt.Fprintf(w, "%-10s  %-10s  %-22s  %s\n", "Product", "Resourcing", "Error Reduction", "Weak Supervision")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s  %-10s  %4.0f%% (%.1fx) fewer errs  %3.0f%%\n",
			r.Product, r.Resourcing, r.ErrorReductionPct, r.Factor, r.WeakPct)
	}
}
