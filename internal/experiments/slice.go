package experiments

import (
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/workload"
)

// SliceResult compares three systems on the complex-disambiguation slice:
// the previous production linker (popularity prior), Overton without slice
// capacity, and Overton with slice-based learning — all trained/configured
// on the same data. Section 2.2's claim ("a production system improved its
// performance on a slice of complex but rare disambiguations by over 50
// points of F1 using the same training data") is reproduced as the
// production-vs-sliced-Overton gap on the prior-breaking core, where the
// popularity prior is wrong by construction. Our select task reports
// accuracy rather than the paper's F1 — see EXPERIMENTS.md.
type SliceResult struct {
	// IntentArg accuracy of the previous production system.
	BaselineOverall float64 `json:"baseline_overall"`
	BaselineSlice   float64 `json:"baseline_slice"`
	BaselineHard    float64 `json:"baseline_hard"`
	// IntentArg accuracy on the whole test set.
	OverallWithout float64 `json:"overall_without"`
	OverallWith    float64 `json:"overall_with"`
	// IntentArg accuracy on the disambiguation slice (test only).
	SliceWithout float64 `json:"slice_without"`
	SliceWith    float64 `json:"slice_with"`
	// IntentArg accuracy on the prior-breaking hard core of the slice.
	HardWithout float64 `json:"hard_without"`
	HardWith    float64 `json:"hard_with"`
	// Sizes for context.
	SliceFrac float64 `json:"slice_frac"`
	HardFrac  float64 `json:"hard_frac"`
}

// SliceExperiment trains twice on identical data — once plain, once with
// slice capacity on the disambiguation and nutrition slices — and measures
// fine-grained IntentArg quality against the previous production system.
func SliceExperiment(opts Options) (*SliceResult, error) {
	// Thin annotator coverage keeps the slice hard: the popularity prior
	// dominates combined supervision except where the type-match LF fires.
	examples := workload.Generate(workload.GenConfig{
		Seed:           opts.Seed + 300,
		N:              opts.SliceN,
		AmbiguousRate:  0.35,
		PriorBreakRate: 0.3,
	})
	ds := workload.BuildDataset(examples, workload.BuildConfig{
		Seed:    opts.Seed + 300,
		Sources: workload.DefaultSources(0.05),
	})
	res := factoidResources()
	test := ds.WithTag(record.TagTest)
	var sliceTest, hardTest []*record.Record
	for _, r := range test {
		if r.InSlice(workload.SliceDisambig) {
			sliceTest = append(sliceTest, r)
		}
		if r.HasTag("priorbreak") {
			hardTest = append(hardTest, r)
		}
	}
	logf(opts.Log, "slice: %d test, %d in disambig slice, %d prior-breaking",
		len(test), len(sliceTest), len(hardTest))

	populations := [][]*record.Record{test, sliceTest, hardTest}

	// Previous production system (popularity-prior linker).
	baselineAcc := func(recs []*record.Record) (float64, error) {
		outs, err := baselineOutputs(recs)
		if err != nil {
			return 0, err
		}
		ms := model.ScoreOutputs(ds.Schema, recs, outs)
		return ms[workload.TaskIntentArg].Primary, nil
	}

	nTrain := len(ds.WithTag(record.TagTrain))
	run := func(slices []string) (overall, slice, hard float64, err error) {
		m, err := buildModel(defaultChoice(epochsFor(nTrain, opts.Epochs)), slices, res, opts.Seed+310)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := trainModel(m, ds, opts.Seed+311, nil); err != nil {
			return 0, 0, 0, err
		}
		vals := make([]float64, len(populations))
		for i, recs := range populations {
			ms, err := m.Evaluate(recs)
			if err != nil {
				return 0, 0, 0, err
			}
			vals[i] = ms[workload.TaskIntentArg].Primary
		}
		return vals[0], vals[1], vals[2], nil
	}

	out := &SliceResult{
		SliceFrac: float64(len(sliceTest)) / float64(len(test)),
		HardFrac:  float64(len(hardTest)) / float64(len(test)),
	}
	var err error
	if out.BaselineOverall, err = baselineAcc(test); err != nil {
		return nil, err
	}
	if out.BaselineSlice, err = baselineAcc(sliceTest); err != nil {
		return nil, err
	}
	if out.BaselineHard, err = baselineAcc(hardTest); err != nil {
		return nil, err
	}
	out.OverallWithout, out.SliceWithout, out.HardWithout, err = run(nil)
	if err != nil {
		return nil, err
	}
	out.OverallWith, out.SliceWith, out.HardWith, err = run([]string{workload.SliceDisambig, workload.SliceNutrition})
	if err != nil {
		return nil, err
	}
	logf(opts.Log, "slice: baseline hard=%.3f  overton hard %.3f->%.3f  slice %.3f->%.3f  overall %.3f->%.3f",
		out.BaselineHard, out.HardWithout, out.HardWith, out.SliceWithout, out.SliceWith,
		out.OverallWithout, out.OverallWith)
	return out, nil
}

// RenderSlice prints the three-system slice comparison.
func RenderSlice(w io.Writer, r *SliceResult) {
	fmt.Fprintln(w, "Slice-based learning on the complex-disambiguation slice (IntentArg accuracy)")
	fmt.Fprintf(w, "%-28s  %-11s  %-11s  %-11s  %s\n",
		"Population", "production", "no slices", "sliced", "sliced vs production")
	row := func(name string, b, without, with float64) {
		fmt.Fprintf(w, "%-28s  %9.3f    %9.3f    %9.3f    %+6.1f points\n",
			name, b, without, with, 100*(with-b))
	}
	row("all test", r.BaselineOverall, r.OverallWithout, r.OverallWith)
	row(fmt.Sprintf("disambig slice (%.0f%%)", 100*r.SliceFrac), r.BaselineSlice, r.SliceWithout, r.SliceWith)
	row(fmt.Sprintf("prior-breaking core (%.0f%%)", 100*r.HardFrac), r.BaselineHard, r.HardWithout, r.HardWith)
}
