package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// quickOpts trims Quick() further for unit-test speed.
func quickOpts() Options {
	o := Quick()
	o.Fig3Scale = 0.25
	o.Fig4Base = 50
	o.Fig4Scales = []int{1, 8}
	o.SliceN = 700
	o.Epochs = 8
	return o
}

func verbose() Options {
	o := quickOpts()
	if testing.Verbose() {
		o.Log = os.Stderr
	}
	return o
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(verbose())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// Overton must reduce errors on every product (factor > 1).
		if r.Factor <= 1.0 {
			t.Errorf("%s: factor %.2f <= 1 (overton %.4f vs baseline %.4f)",
				r.Product, r.Factor, r.OvertonErr, r.BaselineErr)
		}
		if r.WeakPct < 50 || r.WeakPct > 100 {
			t.Errorf("%s: weak%% %.1f out of range", r.Product, r.WeakPct)
		}
	}
	// Weak supervision share rises as resources fall (High < Low).
	if rows[0].WeakPct >= rows[3].WeakPct {
		t.Errorf("weak%% should rise from High (%.1f) to Low (%.1f)", rows[0].WeakPct, rows[3].WeakPct)
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, rows)
	if !strings.Contains(buf.String(), "fewer errs") {
		t.Fatalf("render wrong:\n%s", buf.String())
	}
	t.Logf("\n%s", buf.String())
}

func TestFigure4aShape(t *testing.T) {
	points, err := Figure4a(verbose())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points: %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.Scale != 1 {
		t.Fatalf("first point not 1x")
	}
	// More weak supervision must improve quality for at least two of the
	// three granularities, and never collapse any of them.
	improved := 0
	for gran := range Fig4Tasks {
		if last.Relative[gran] > 1.005 {
			improved++
		}
		if last.Relative[gran] < 0.9 {
			t.Errorf("%s collapsed with more data: rel %.3f", gran, last.Relative[gran])
		}
	}
	if improved < 2 {
		t.Errorf("scaling should improve >= 2 granularities, improved %d (rel: %v)", improved, last.Relative)
	}
	var buf bytes.Buffer
	RenderFigure4a(&buf, points)
	t.Logf("\n%s", buf.String())
}

func TestFigure4bShape(t *testing.T) {
	points, err := Figure4b(verbose())
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	// At the largest weak-supervision scale, pretraining buys little: all
	// ratios inside a modest band around 1.0 (the paper's ~2% band; we
	// allow 6% at CI scale).
	for gran, ratio := range last.Ratio {
		if ratio < 0.94 || ratio > 1.06 {
			t.Errorf("%s: large-scale with/without ratio %.3f outside band", gran, ratio)
		}
	}
	var buf bytes.Buffer
	RenderFigure4b(&buf, points)
	t.Logf("\n%s", buf.String())
}

func TestSliceExperimentShape(t *testing.T) {
	res, err := SliceExperiment(verbose())
	if err != nil {
		t.Fatal(err)
	}
	// The previous production system is wrong on every prior-breaking
	// reading by construction; sliced Overton must beat it by a large
	// margin on that hard core (the paper's ">50 points" claim; we require
	// >= 40 at CI scale).
	if gain := 100 * (res.HardWith - res.BaselineHard); gain < 40 {
		t.Errorf("hard-core gain vs production %.1f points < 40", gain)
	}
	// Slice capacity must not collapse quality anywhere.
	if res.OverallWith < res.OverallWithout-0.05 {
		t.Errorf("overall quality collapsed: %.3f -> %.3f", res.OverallWithout, res.OverallWith)
	}
	if res.SliceWith < res.SliceWithout-0.05 {
		t.Errorf("slice quality collapsed: %.3f -> %.3f", res.SliceWithout, res.SliceWith)
	}
	var buf bytes.Buffer
	RenderSlice(&buf, res)
	t.Logf("\n%s", buf.String())
}

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations(verbose())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Study+"/"+r.Variant] = r.MeanQuality
	}
	// The label model must not lose to majority vote.
	if byKey["label-model/accuracy"] < byKey["label-model/majority"]-0.02 {
		t.Errorf("accuracy label model %.4f worse than majority %.4f",
			byKey["label-model/accuracy"], byKey["label-model/majority"])
	}
	// Search must not lose to the default choice.
	if byKey["search/random-search(6)"] < byKey["search/default-choice"]-0.02 {
		t.Errorf("search %.4f worse than default %.4f",
			byKey["search/random-search(6)"], byKey["search/default-choice"])
	}
	var buf bytes.Buffer
	RenderAblations(&buf, rows)
	t.Logf("\n%s", buf.String())
}
