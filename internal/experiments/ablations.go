package experiments

import (
	"fmt"
	"io"

	"repro/internal/labelmodel"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/search"
	"repro/internal/train"
	"repro/internal/workload"
)

// AblationRow is one variant of one ablation study.
type AblationRow struct {
	Study   string `json:"study"`
	Variant string `json:"variant"`
	// MeanQuality is the mean primary metric on the test set (or the
	// per-task metric for the single-task study).
	MeanQuality float64 `json:"mean_quality"`
	Notes       string  `json:"notes,omitempty"`
}

// Ablations runs the design-choice studies DESIGN.md commits to:
// (i) supervision combination estimator, (ii) multitask vs single-task,
// (iii) model search vs default choice, (iv) class rebalancing.
func Ablations(opts Options) ([]AblationRow, error) {
	n := int(2000 * opts.Fig3Scale)
	if n < 400 {
		n = 400
	}
	ds := workload.StandardDataset(n, opts.Seed+500, 0.1)
	res := factoidResources()
	var rows []AblationRow

	// (i) Label model estimators.
	for _, est := range []labelmodel.Estimator{labelmodel.EstMajority, labelmodel.EstAccuracy, labelmodel.EstDawidSkene} {
		m, err := buildModel(defaultChoice(opts.Epochs), nil, res, opts.Seed+501)
		if err != nil {
			return nil, err
		}
		if _, err := train.Run(m, ds, train.Config{Seed: opts.Seed + 502, Estimator: est}); err != nil {
			return nil, err
		}
		ms, err := testMetrics(m, ds)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Study: "label-model", Variant: string(est),
			MeanQuality: metrics.MeanPrimary(ms),
		})
		logf(opts.Log, "ablation label-model/%s: %.4f", est, metrics.MeanPrimary(ms))
	}

	// (ii) Multitask vs single-task: train one model per task with the
	// other task losses zeroed, then compare each task against the full
	// multitask model.
	multi, err := buildModel(defaultChoice(opts.Epochs), nil, res, opts.Seed+510)
	if err != nil {
		return nil, err
	}
	if _, err := train.Run(multi, ds, train.Config{Seed: opts.Seed + 511}); err != nil {
		return nil, err
	}
	multiMs, err := testMetrics(multi, ds)
	if err != nil {
		return nil, err
	}
	for _, task := range []string{workload.TaskIntent, workload.TaskIntentArg} {
		weights := map[string]float64{workload.TaskPOS: 0, workload.TaskEntityType: 0, workload.TaskIntent: 0, workload.TaskIntentArg: 0}
		weights[task] = 1
		single, err := buildModel(defaultChoice(opts.Epochs), nil, res, opts.Seed+510)
		if err != nil {
			return nil, err
		}
		if _, err := train.Run(single, ds, train.Config{
			Seed: opts.Seed + 511,
			Loss: model.LossConfig{TaskWeights: weights},
		}); err != nil {
			return nil, err
		}
		singleMs, err := testMetrics(single, ds)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			AblationRow{Study: "multitask", Variant: task + "/multitask", MeanQuality: multiMs[task].Primary},
			AblationRow{Study: "multitask", Variant: task + "/single-task", MeanQuality: singleMs[task].Primary},
		)
		logf(opts.Log, "ablation multitask/%s: multi %.4f single %.4f",
			task, multiMs[task].Primary, singleMs[task].Primary)
	}

	// (iii) Search vs default architecture.
	rows = append(rows, AblationRow{
		Study: "search", Variant: "default-choice",
		MeanQuality: metrics.MeanPrimary(multiMs),
		Notes:       defaultChoice(opts.Epochs).String(),
	})
	tun := &schema.Tuning{
		Embeddings: []string{"hash-24", "hash-32"},
		Encoders:   []string{"BOW", "CNN", "GRU"},
		Hidden:     []int{24, 32},
		QueryAgg:   []string{"mean", "max"},
		EntityAgg:  []string{"mean", "attn"},
		LR:         []float64{0.02, 0.01},
		Epochs:     []int{opts.Epochs},
		Dropout:    []float64{0},
		BatchSize:  []int{32},
	}
	sres, best, err := search.Run(ds, search.Config{
		Tuning:    tun,
		Budget:    6,
		Seed:      opts.Seed + 520,
		Resources: res,
		Train:     train.Config{},
	})
	if err != nil {
		return nil, err
	}
	bestMs, err := testMetrics(best, ds)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Study: "search", Variant: "random-search(6)",
		MeanQuality: metrics.MeanPrimary(bestMs),
		Notes:       sres.Best.Choice.String(),
	})
	logf(opts.Log, "ablation search: default %.4f searched %.4f",
		metrics.MeanPrimary(multiMs), metrics.MeanPrimary(bestMs))

	// (iv) Rebalancing.
	for _, reb := range []bool{false, true} {
		m, err := buildModel(defaultChoice(opts.Epochs), nil, res, opts.Seed+530)
		if err != nil {
			return nil, err
		}
		if _, err := train.Run(m, ds, train.Config{Seed: opts.Seed + 531, Rebalance: reb}); err != nil {
			return nil, err
		}
		ms, err := testMetrics(m, ds)
		if err != nil {
			return nil, err
		}
		variant := "off"
		if reb {
			variant = "on"
		}
		rows = append(rows, AblationRow{Study: "rebalance", Variant: variant, MeanQuality: metrics.MeanPrimary(ms)})
		logf(opts.Log, "ablation rebalance/%s: %.4f", variant, metrics.MeanPrimary(ms))
	}
	return rows, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations (mean test quality unless noted)")
	fmt.Fprintf(w, "%-14s  %-26s  %-10s  %s\n", "Study", "Variant", "Quality", "Notes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s  %-26s  %8.4f    %s\n", r.Study, r.Variant, r.MeanQuality, r.Notes)
	}
}
