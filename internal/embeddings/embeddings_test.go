package embeddings

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/workload"
)

func TestVocabBasics(t *testing.T) {
	v := NewVocab([]string{"hello", "world", "hello"})
	if v.Size() != 4 { // pad + oov + 2
		t.Fatalf("Size = %d", v.Size())
	}
	if v.ID(PadToken) != PadID || v.ID(OOVToken) != OOVID {
		t.Fatalf("reserved ids wrong")
	}
	if v.ID("hello") != 2 || v.ID("world") != 3 {
		t.Fatalf("ids wrong")
	}
	if v.ID("unknown") != OOVID {
		t.Fatalf("OOV fallback wrong")
	}
	if v.Token(2) != "hello" {
		t.Fatalf("Token wrong")
	}
	ids := v.Encode([]string{"world", "nope"})
	if ids[0] != 3 || ids[1] != OOVID {
		t.Fatalf("Encode wrong: %v", ids)
	}
	toks := v.Tokens()
	toks[0] = "mutated"
	if v.Token(0) == "mutated" {
		t.Fatalf("Tokens leaks internal state")
	}
}

func TestHashVectorsDeterministicAndPadZero(t *testing.T) {
	v := NewVocab([]string{"a", "b", "c"})
	h1 := HashVectors(v, 8, 42)
	h2 := HashVectors(v, 8, 42)
	if !tensor.Equal(h1, h2, 0) {
		t.Fatalf("hash vectors not deterministic")
	}
	h3 := HashVectors(v, 8, 43)
	if tensor.Equal(h1, h3, 1e-12) {
		t.Fatalf("different seeds gave identical vectors")
	}
	for _, x := range h1.Row(PadID) {
		if x != 0 {
			t.Fatalf("pad row not zero")
		}
	}
	// Vectors differ per token.
	if tensor.Equal(tensor.Vector(h1.Row(2)), tensor.Vector(h1.Row(3)), 1e-9) {
		t.Fatalf("token vectors identical")
	}
}

func TestPretrainStaticCapturesCooccurrence(t *testing.T) {
	// "paris" and "london" share contexts ("weather in X"); "pizza" appears
	// in a different frame. Their embeddings should reflect that.
	corpus := [][]string{}
	for i := 0; i < 40; i++ {
		corpus = append(corpus,
			[]string{"weather", "in", "paris"},
			[]string{"weather", "in", "london"},
			[]string{"calories", "in", "a", "pizza"},
			[]string{"calories", "in", "a", "salmon"},
		)
	}
	v := NewVocab([]string{"weather", "in", "paris", "london", "calories", "a", "pizza", "salmon"})
	emb := PretrainStatic(corpus, v, 16, 2, 7)
	cos := func(a, b []float64) float64 {
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		return dot / (math.Sqrt(na)*math.Sqrt(nb) + 1e-12)
	}
	parisLondon := cos(emb.Row(v.ID("paris")), emb.Row(v.ID("london")))
	parisPizza := cos(emb.Row(v.ID("paris")), emb.Row(v.ID("pizza")))
	if parisLondon <= parisPizza {
		t.Fatalf("paris~london %.3f should exceed paris~pizza %.3f", parisLondon, parisPizza)
	}
	// Unseen tokens fall back to hash vectors (non-zero).
	v2 := NewVocab([]string{"weather", "neverseen"})
	emb2 := PretrainStatic(corpus, v2, 8, 2, 7)
	if tensor.Vector(emb2.Row(v2.ID("neverseen"))).Norm2() == 0 {
		t.Fatalf("unseen token has zero vector")
	}
}

func TestPretrainStaticDeterministic(t *testing.T) {
	corpus := workload.Corpus(60, 3)
	v := NewVocab(workload.Vocabulary(workload.DefaultKB()))
	a := PretrainStatic(corpus, v, 12, 2, 9)
	b := PretrainStatic(corpus, v, 12, 2, 9)
	if !tensor.Equal(a, b, 0) {
		t.Fatalf("static pretraining not deterministic")
	}
}

func TestBERTSimPretrainsAndFreezes(t *testing.T) {
	corpus := workload.Corpus(150, 5)
	v := NewVocab(workload.Vocabulary(workload.DefaultKB()))
	b := PretrainBERTSim(corpus, v, BERTSimConfig{Dim: 16, Hidden: 16, Epochs: 2, Seed: 11})
	if b.FinalLoss <= 0 {
		t.Fatalf("no training happened")
	}
	// Random-chance masked-token loss is ln(V); training must beat it
	// comfortably.
	chance := math.Log(float64(v.Size()))
	if b.FinalLoss > chance*0.8 {
		t.Fatalf("masked LM loss %.3f did not improve on chance %.3f", b.FinalLoss, chance)
	}
	// All parameters frozen after pretraining.
	for _, p := range b.ps.All() {
		if !p.Frozen {
			t.Fatalf("param %s not frozen", p.Name)
		}
	}
}

func TestBERTSimEncodeIsContextual(t *testing.T) {
	corpus := workload.Corpus(150, 5)
	v := NewVocab(workload.Vocabulary(workload.DefaultKB()))
	b := PretrainBERTSim(corpus, v, BERTSimConfig{Dim: 16, Hidden: 16, Epochs: 1, Seed: 13})
	// Same token in different contexts must get different vectors.
	e1 := b.Encode([]string{"calories", "in", "turkey"})
	e2 := b.Encode([]string{"capital", "of", "turkey"})
	turkey1 := tensor.Vector(append([]float64(nil), e1.Row(2)...))
	turkey2 := tensor.Vector(append([]float64(nil), e2.Row(2)...))
	if tensor.Equal(turkey1, turkey2, 1e-9) {
		t.Fatalf("encoder is not contextual")
	}
	// Deterministic encoding.
	e3 := b.Encode([]string{"calories", "in", "turkey"})
	if !tensor.Equal(e1, e3, 0) {
		t.Fatalf("Encode not deterministic")
	}
	if b.Dim() != 16 || e1.Rows != 3 || e1.Cols != 16 {
		t.Fatalf("shape wrong")
	}
	// Empty input.
	if e := b.Encode(nil); e.Rows != 0 {
		t.Fatalf("empty encode wrong")
	}
}

func TestBERTSimDeterministicPretraining(t *testing.T) {
	corpus := workload.Corpus(60, 5)
	v := NewVocab(workload.Vocabulary(workload.DefaultKB()))
	b1 := PretrainBERTSim(corpus, v, BERTSimConfig{Dim: 8, Hidden: 8, Epochs: 1, Seed: 17})
	b2 := PretrainBERTSim(corpus, v, BERTSimConfig{Dim: 8, Hidden: 8, Epochs: 1, Seed: 17})
	e1 := b1.Encode([]string{"weather", "in", "paris"})
	e2 := b2.Encode([]string{"weather", "in", "paris"})
	if !tensor.Equal(e1, e2, 0) {
		t.Fatalf("pretraining not deterministic")
	}
}
