// Package embeddings provides the token-representation resources the
// Overton compiler can "simply load as payloads" (Section 2.4): hash-seeded
// learnable embeddings, static embeddings pretrained on an unlabeled corpus
// via PPMI co-occurrence + random projection (the GloVe/word2vec stand-in),
// and BERTSim — a small contextual encoder pretrained with a masked-token
// objective (the BERT-Large stand-in for the Figure 4b study; see DESIGN.md
// substitution table).
package embeddings

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Reserved vocabulary slots.
const (
	PadID = 0 // padding token
	OOVID = 1 // out-of-vocabulary token
)

// PadToken and OOVToken are the reserved surface forms.
const (
	PadToken = "<pad>"
	OOVToken = "<oov>"
)

// Vocab maps tokens to dense ids with reserved pad/OOV slots.
type Vocab struct {
	tokens []string
	ids    map[string]int
}

// NewVocab builds a vocabulary from the given tokens (deduplicated, order
// preserved after the reserved slots).
func NewVocab(tokens []string) *Vocab {
	v := &Vocab{ids: make(map[string]int, len(tokens)+2)}
	v.add(PadToken)
	v.add(OOVToken)
	for _, t := range tokens {
		v.add(t)
	}
	return v
}

func (v *Vocab) add(tok string) {
	if _, ok := v.ids[tok]; ok {
		return
	}
	v.ids[tok] = len(v.tokens)
	v.tokens = append(v.tokens, tok)
}

// Size returns the vocabulary size including reserved slots.
func (v *Vocab) Size() int { return len(v.tokens) }

// ID returns the id of tok, or OOVID.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return OOVID
}

// Token returns the surface form of id (panics when out of range).
func (v *Vocab) Token(id int) string { return v.tokens[id] }

// Encode maps tokens to ids.
func (v *Vocab) Encode(tokens []string) []int {
	out := make([]int, len(tokens))
	for i, t := range tokens {
		out[i] = v.ID(t)
	}
	return out
}

// Tokens returns a copy of the vocabulary in id order.
func (v *Vocab) Tokens() []string { return append([]string(nil), v.tokens...) }

// HashVectors produces deterministic pseudo-random unit-ish vectors per
// token: the hash-embedding initialisation ("hash-<dim>" in tuning specs).
// Rows align with vocab ids; the pad row is zero.
func HashVectors(v *Vocab, dim int, seed int64) *tensor.Tensor {
	out := tensor.New(v.Size(), dim)
	for id := 1; id < v.Size(); id++ { // leave pad at zero
		h := fnv.New64a()
		fmt.Fprintf(h, "%d:%s", seed, v.Token(id))
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		row := out.Row(id)
		for c := range row {
			row[c] = rng.NormFloat64() * 0.1
		}
	}
	return out
}

// PretrainStatic builds static embeddings from an unlabeled corpus: a
// positive-PMI co-occurrence matrix (window-based) followed by a seeded
// Gaussian random projection to dim. Tokens that never occur fall back to
// hash vectors. This is the "pretrained word embeddings" resource
// ("pretrained-<dim>").
func PretrainStatic(corpus [][]string, v *Vocab, dim, window int, seed int64) *tensor.Tensor {
	if window <= 0 {
		window = 2
	}
	V := v.Size()
	// Co-occurrence counts (sparse).
	cooc := make([]map[int]float64, V)
	tokCount := make([]float64, V)
	var total float64
	for _, sent := range corpus {
		ids := v.Encode(sent)
		for i, a := range ids {
			tokCount[a]++
			total++
			for j := i - window; j <= i+window; j++ {
				if j < 0 || j >= len(ids) || j == i {
					continue
				}
				b := ids[j]
				if cooc[a] == nil {
					cooc[a] = make(map[int]float64)
				}
				cooc[a][b]++
			}
		}
	}
	// PPMI rows projected through a fixed Gaussian matrix.
	rng := rand.New(rand.NewSource(seed))
	proj := tensor.New(V, dim).Randn(rng, 1/math.Sqrt(float64(dim)))
	out := tensor.New(V, dim)
	pairTotal := 0.0
	for _, m := range cooc {
		for _, c := range m {
			pairTotal += c
		}
	}
	if pairTotal == 0 {
		pairTotal = 1
	}
	for a := 0; a < V; a++ {
		if cooc[a] == nil {
			continue
		}
		row := out.Row(a)
		// Deterministic iteration over context ids.
		ctxIDs := make([]int, 0, len(cooc[a]))
		for b := range cooc[a] {
			ctxIDs = append(ctxIDs, b)
		}
		sort.Ints(ctxIDs)
		for _, b := range ctxIDs {
			pab := cooc[a][b] / pairTotal
			pa := tokCount[a] / total
			pb := tokCount[b] / total
			pmi := math.Log(pab / (pa*pb + 1e-12))
			if pmi <= 0 {
				continue
			}
			prow := proj.Row(b)
			for c := range row {
				row[c] += pmi * prow[c]
			}
		}
		// L2 normalise to keep scales comparable.
		var norm float64
		for _, x := range row {
			norm += x * x
		}
		if norm > 0 {
			inv := 1 / math.Sqrt(norm)
			for c := range row {
				row[c] *= inv
			}
			// match hash-vector scale
			for c := range row {
				row[c] *= 0.3
			}
		}
	}
	// Fallback for unseen tokens.
	hash := HashVectors(v, dim, seed+1)
	for a := 1; a < V; a++ {
		if tokCount[a] == 0 {
			copy(out.Row(a), hash.Row(a))
		}
	}
	return out
}

// BERTSimConfig configures masked-token pretraining.
type BERTSimConfig struct {
	Dim    int // embedding & output dim (default 32)
	Hidden int // encoder width (default 32)
	Epochs int // passes over the corpus (default 3)
	LR     float64
	Mask   float64 // masking rate (default 0.15)
	Seed   int64
}

func (c BERTSimConfig) withDefaults() BERTSimConfig {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.Mask <= 0 {
		c.Mask = 0.15
	}
	return c
}

// BERTSim is a contextual token encoder pretrained with a masked-token
// objective over an unlabeled corpus. After pretraining it is frozen and
// dropped in as an additional token payload ("bertsim-<dim>").
type BERTSim struct {
	vocab *Vocab
	cfg   BERTSimConfig
	ps    *nn.ParamSet
	emb   *nn.Embedding
	conv  *nn.Conv1D
	conv2 *nn.Conv1D
	// FinalLoss is the last pretraining epoch's mean masked-token loss
	// (diagnostics).
	FinalLoss float64
}

// PretrainBERTSim trains the encoder on corpus. Deterministic given cfg.Seed.
func PretrainBERTSim(corpus [][]string, v *Vocab, cfg BERTSimConfig) *BERTSim {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ps := nn.NewParamSet()
	b := &BERTSim{
		vocab: v,
		cfg:   cfg,
		ps:    ps,
		emb:   nn.NewEmbedding(ps, "bertsim.emb", v.Size(), cfg.Dim, rng),
		conv:  nn.NewConv1D(ps, "bertsim.conv1", cfg.Dim, cfg.Hidden, rng),
		conv2: nn.NewConv1D(ps, "bertsim.conv2", cfg.Hidden, cfg.Dim, rng),
	}
	head := nn.NewLinear(ps, "bertsim.mlm", cfg.Dim, v.Size(), rng)
	optim := opt.NewAdam(ps.All())

	maskID := OOVID // reuse OOV as the [MASK] token
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		var batches float64
		order := rng.Perm(len(corpus))
		for _, si := range order {
			sent := corpus[si]
			if len(sent) == 0 {
				continue
			}
			ids := v.Encode(sent)
			masked := append([]int(nil), ids...)
			targets := tensor.New(len(ids), v.Size())
			weights := make([]float64, len(ids))
			var nMasked int
			for i := range masked {
				if rng.Float64() < cfg.Mask {
					targets.Set(i, ids[i], 1)
					weights[i] = 1
					masked[i] = maskID
					nMasked++
				}
			}
			if nMasked == 0 {
				continue
			}
			g := nn.NewGraph(true, rng)
			h := b.encode(g, masked, len(ids))
			logits := head.Forward(g, h)
			loss, _ := g.SoftmaxCE(logits, targets, weights)
			g.Backward(loss)
			opt.ClipGradNorm(ps.All(), 5)
			optim.Step(cfg.LR)
			step++
			epochLoss += loss.Value.Data[0]
			batches++
		}
		if batches > 0 {
			b.FinalLoss = epochLoss / batches
		}
	}
	// Freeze: the encoder is a fixed resource from here on.
	for _, p := range ps.All() {
		p.Frozen = true
	}
	return b
}

// encode runs the two-layer convolutional context encoder for one sentence.
func (b *BERTSim) encode(g *nn.Graph, ids []int, L int) *nn.Node {
	x := b.emb.Forward(g, ids)
	h := g.ReLU(b.conv.Forward(g, x, 1, L))
	return g.Add(b.conv2.Forward(g, h, 1, L), x) // residual back to dim
}

// Dim returns the contextual vector width.
func (b *BERTSim) Dim() int { return b.cfg.Dim }

// Encode returns frozen contextual vectors for tokens (len(tokens) x Dim).
func (b *BERTSim) Encode(tokens []string) *tensor.Tensor {
	if len(tokens) == 0 {
		return tensor.New(0, b.cfg.Dim)
	}
	ids := b.vocab.Encode(tokens)
	g := nn.NewGraph(false, nil)
	h := b.encode(g, ids, len(ids))
	return h.Value.Clone()
}
