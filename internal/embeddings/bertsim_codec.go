package embeddings

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// bertsimState is the gob snapshot of a frozen BERTSim encoder.
type bertsimState struct {
	Cfg         BERTSimConfig
	VocabTokens []string // without reserved slots
	Params      map[string]*tensor.Tensor
	FinalLoss   float64
}

// State captures the encoder for serialization.
func (b *BERTSim) state() *bertsimState {
	st := &bertsimState{
		Cfg:       b.cfg,
		FinalLoss: b.FinalLoss,
		Params:    map[string]*tensor.Tensor{},
	}
	toks := b.vocab.Tokens()
	if len(toks) >= 2 {
		st.VocabTokens = toks[2:]
	}
	for _, p := range b.ps.All() {
		st.Params[p.Name] = p.Node.Value
	}
	return st
}

// bertsimFromState rebuilds a frozen encoder from a snapshot.
func bertsimFromState(st *bertsimState) (*BERTSim, error) {
	cfg := st.Cfg.withDefaults()
	v := NewVocab(st.VocabTokens)
	rng := rand.New(rand.NewSource(0)) // init overwritten below
	ps := nn.NewParamSet()
	b := &BERTSim{
		vocab:     v,
		cfg:       cfg,
		ps:        ps,
		emb:       nn.NewEmbedding(ps, "bertsim.emb", v.Size(), cfg.Dim, rng),
		conv:      nn.NewConv1D(ps, "bertsim.conv1", cfg.Dim, cfg.Hidden, rng),
		conv2:     nn.NewConv1D(ps, "bertsim.conv2", cfg.Hidden, cfg.Dim, rng),
		FinalLoss: st.FinalLoss,
	}
	// The masked-LM head exists only during pretraining; it is not part of
	// the snapshot's required parameters but may be present in older blobs.
	for _, p := range ps.All() {
		saved, ok := st.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("embeddings: bertsim blob missing %q", p.Name)
		}
		if !saved.SameShape(p.Node.Value) {
			return nil, fmt.Errorf("embeddings: bertsim param %q shape mismatch", p.Name)
		}
		copy(p.Node.Value.Data, saved.Data)
		p.Frozen = true
	}
	return b, nil
}

// BERTSimCodec implements the model package's ContextualCodec hook for
// BERTSim encoders. Register it with model.RegisterContextualCodec at
// program start (the overton façade does this).
type BERTSimCodec struct{}

// Encode implements the codec.
func (BERTSimCodec) Encode(enc compile.ContextualEncoder) ([]byte, error) {
	b, ok := enc.(*BERTSim)
	if !ok {
		return nil, fmt.Errorf("embeddings: codec supports *BERTSim, got %T", enc)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b.state()); err != nil {
		return nil, fmt.Errorf("embeddings: encode bertsim: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode implements the codec.
func (BERTSimCodec) Decode(blob []byte) (compile.ContextualEncoder, error) {
	var st bertsimState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&st); err != nil {
		return nil, fmt.Errorf("embeddings: decode bertsim: %w", err)
	}
	return bertsimFromState(&st)
}

// Interface check against the compile-level contract.
var _ compile.ContextualEncoder = (*BERTSim)(nil)
