// Package monitor implements Overton's fine-grained quality monitoring: the
// per-tag and per-slice reports engineers live in (Section 2.2), source
// quality diagnostics (label-model estimates next to gold agreement), and
// model-version comparison with regression detection — the week-to-week
// battle of improving fine-grained quality for important subsets.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/labelmodel"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/record"
)

// SourceQuality pairs the label model's estimate of a source with its
// empirical agreement against gold (where gold exists).
type SourceQuality struct {
	Source       string  `json:"source"`
	EstimatedAcc float64 `json:"estimated_acc"`
	Coverage     float64 `json:"coverage"`
	GoldAcc      float64 `json:"gold_acc"`
	GoldN        float64 `json:"gold_n"`
}

// Report is a full quality report for one model over one dataset.
type Report struct {
	Name    string                         `json:"name"`
	Overall map[string]metrics.TaskMetrics `json:"overall"`
	// PerTag maps tag -> task -> metrics, for every requested tag
	// (slices are tags, so slice monitoring comes for free).
	PerTag map[string]map[string]metrics.TaskMetrics `json:"per_tag"`
	// TagCounts records how many records carry each tag.
	TagCounts map[string]int `json:"tag_counts"`
	// Sources maps task -> per-source quality diagnostics.
	Sources map[string][]SourceQuality `json:"sources,omitempty"`
}

// Config controls report construction.
type Config struct {
	Name string
	// Tags to break down by; nil means every tag present in the data.
	Tags []string
	// EvalTag restricts the evaluation population (typically "test");
	// empty evaluates over all records.
	EvalTag string
	// Targets, when provided, adds label-model source estimates to the
	// source-quality section.
	Targets map[string]*labelmodel.TaskTargets
}

// Build evaluates m over ds and assembles the report.
func Build(m *model.Model, ds *record.Dataset, cfg Config) (*Report, error) {
	pop := ds.Records
	if cfg.EvalTag != "" {
		pop = ds.WithTag(cfg.EvalTag)
	}
	overall, err := m.Evaluate(pop)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Name:      cfg.Name,
		Overall:   overall,
		PerTag:    map[string]map[string]metrics.TaskMetrics{},
		TagCounts: map[string]int{},
	}
	tags := cfg.Tags
	if tags == nil {
		tags = ds.Tags()
	}
	for _, tag := range tags {
		var sub []*record.Record
		for _, r := range pop {
			if r.HasTag(tag) {
				sub = append(sub, r)
			}
		}
		rep.TagCounts[tag] = len(sub)
		if len(sub) == 0 {
			continue
		}
		ms, err := m.Evaluate(sub)
		if err != nil {
			return nil, err
		}
		rep.PerTag[tag] = ms
	}
	rep.Sources = sourceQuality(ds, cfg.Targets)
	return rep, nil
}

// sourceQuality computes per-source gold agreement plus label-model
// estimates when available.
func sourceQuality(ds *record.Dataset, targets map[string]*labelmodel.TaskTargets) map[string][]SourceQuality {
	type agg struct {
		correct, n float64
		votes      float64
	}
	perTask := map[string]map[string]*agg{}
	var total float64
	for _, r := range ds.Records {
		total++
		for task, tl := range r.Tasks {
			gold, hasGold := tl[record.GoldSource]
			for src, l := range tl {
				if src == record.GoldSource {
					continue
				}
				if perTask[task] == nil {
					perTask[task] = map[string]*agg{}
				}
				a := perTask[task][src]
				if a == nil {
					a = &agg{}
					perTask[task][src] = a
				}
				a.votes++
				if !hasGold {
					continue
				}
				c, n := labelAgreement(gold, l)
				a.correct += c
				a.n += n
			}
		}
	}
	out := map[string][]SourceQuality{}
	for task, srcs := range perTask {
		var rows []SourceQuality
		for src, a := range srcs {
			sq := SourceQuality{Source: src}
			if a.n > 0 {
				sq.GoldAcc = a.correct / a.n
				sq.GoldN = a.n
			}
			if total > 0 {
				sq.Coverage = a.votes / total
			}
			if tt := targets[task]; tt != nil {
				sq.EstimatedAcc = tt.SourceAccuracy[src]
				if cov, ok := tt.SourceCoverage[src]; ok {
					sq.Coverage = cov
				}
			}
			rows = append(rows, sq)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Source < rows[j].Source })
		out[task] = rows
	}
	return out
}

// labelAgreement scores one source label against gold, returning (correct
// units, total units).
func labelAgreement(gold, l record.Label) (float64, float64) {
	switch gold.Kind {
	case record.KindClass:
		if l.Kind != record.KindClass {
			return 0, 0
		}
		if l.Class == gold.Class {
			return 1, 1
		}
		return 0, 1
	case record.KindSelect:
		if l.Kind != record.KindSelect {
			return 0, 0
		}
		if l.Select == gold.Select {
			return 1, 1
		}
		return 0, 1
	case record.KindSeq:
		if l.Kind != record.KindSeq {
			return 0, 0
		}
		var c, n float64
		for i, g := range gold.Seq {
			if i >= len(l.Seq) || l.Seq[i] == "" {
				continue
			}
			n++
			if l.Seq[i] == g {
				c++
			}
		}
		return c, n
	case record.KindBits:
		if l.Kind != record.KindBits {
			return 0, 0
		}
		var c, n float64
		for i, grow := range gold.Bits {
			if i >= len(l.Bits) {
				break
			}
			n++
			if sameStrSet(grow, l.Bits[i]) {
				c++
			}
		}
		return c, n
	}
	return 0, 0
}

func sameStrSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// Render writes the report as human-readable text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== quality report: %s ===\n", r.Name)
	fmt.Fprintln(w, "overall:")
	for _, task := range metrics.SortedTasks(r.Overall) {
		fmt.Fprintf(w, "  %s\n", r.Overall[task])
	}
	var tags []string
	for t := range r.PerTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		fmt.Fprintf(w, "tag %s (%d records):\n", tag, r.TagCounts[tag])
		for _, task := range metrics.SortedTasks(r.PerTag[tag]) {
			fmt.Fprintf(w, "  %s\n", r.PerTag[tag][task])
		}
	}
	if len(r.Sources) > 0 {
		fmt.Fprintln(w, "sources:")
		var taskNames []string
		for t := range r.Sources {
			taskNames = append(taskNames, t)
		}
		sort.Strings(taskNames)
		for _, task := range taskNames {
			for _, sq := range r.Sources[task] {
				fmt.Fprintf(w, "  %-12s %-10s est=%.3f gold=%.3f cov=%.3f\n",
					task, sq.Source, sq.EstimatedAcc, sq.GoldAcc, sq.Coverage)
			}
		}
	}
}

// JSON renders the report as JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// WriteCSV exports per-tag task metrics as CSV (tag, task, metric, value, n)
// — the Pandas-friendly export path.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "tag,task,metric,value,n"); err != nil {
		return err
	}
	emit := func(tag string, ms map[string]metrics.TaskMetrics) {
		for _, task := range metrics.SortedTasks(ms) {
			m := ms[task]
			fmt.Fprintf(w, "%s,%s,%s,%.6f,%.0f\n", tag, task, m.PrimaryName, m.Primary, m.N)
		}
	}
	emit("__overall__", r.Overall)
	var tags []string
	for t := range r.PerTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		emit(tag, r.PerTag[tag])
	}
	return nil
}

// Delta is one task's quality change between two reports on one tag.
type Delta struct {
	Tag    string  `json:"tag"`
	Task   string  `json:"task"`
	Before float64 `json:"before"`
	After  float64 `json:"after"`
	Change float64 `json:"change"`
}

// Comparison is the result of comparing two model versions.
type Comparison struct {
	Deltas []Delta `json:"deltas"`
	// Regressions are deltas whose drop exceeds the threshold.
	Regressions []Delta `json:"regressions"`
}

// Compare diffs two reports tag-by-tag and flags regressions larger than
// threshold (absolute drop in the primary metric). This is the guardrail
// for "quality regressions as deployment teams tune models" (Section 2.4).
func Compare(before, after *Report, threshold float64) *Comparison {
	cmp := &Comparison{}
	addDeltas := func(tag string, b, a map[string]metrics.TaskMetrics) {
		for _, task := range metrics.SortedTasks(b) {
			bm, ok1 := b[task]
			am, ok2 := a[task]
			if !ok1 || !ok2 || bm.N == 0 || am.N == 0 {
				continue
			}
			d := Delta{Tag: tag, Task: task, Before: bm.Primary, After: am.Primary, Change: am.Primary - bm.Primary}
			cmp.Deltas = append(cmp.Deltas, d)
			if d.Change < -threshold {
				cmp.Regressions = append(cmp.Regressions, d)
			}
		}
	}
	addDeltas("__overall__", before.Overall, after.Overall)
	var tags []string
	for t := range before.PerTag {
		if _, ok := after.PerTag[t]; ok {
			tags = append(tags, t)
		}
	}
	sort.Strings(tags)
	for _, tag := range tags {
		addDeltas(tag, before.PerTag[tag], after.PerTag[tag])
	}
	return cmp
}
