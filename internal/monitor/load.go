package monitor

import "sync/atomic"

// ShedCause says why admission control rejected a request: the
// deployment's token bucket was empty (ShedQPS), its micro-batch queue
// was at its configured depth (ShedQueue), the registry-wide concurrency
// budget was exhausted (ShedBudget), or the deployment quarantined
// itself after exhausting its panic budget (ShedQuarantine).
type ShedCause int

// The admission shed causes, in the order they are checked on the
// predict path (quarantine first — a quarantined deployment sheds
// before any limit accounting).
const (
	ShedQueue ShedCause = iota
	ShedQPS
	ShedBudget
	ShedQuarantine
)

// LoadSeries accumulates a deployment's admission outcomes — admitted
// versus shed, with a per-cause shed breakdown — so overload is visible
// the same way shadow disagreement is: as a monitored series that both
// operators (via /stats) and the improvement-loop gates (via windowed
// deltas) can act on. All methods are safe for concurrent use and cost
// one atomic add on the serving hot path.
type LoadSeries struct {
	admitted       atomic.Int64
	shedQPS        atomic.Int64
	shedQueue      atomic.Int64
	shedBudget     atomic.Int64
	shedQuarantine atomic.Int64
}

// NewLoadSeries returns an empty series.
func NewLoadSeries() *LoadSeries { return &LoadSeries{} }

// ObserveAdmit records one admitted request.
func (s *LoadSeries) ObserveAdmit() { s.admitted.Add(1) }

// ObserveShed records one request shed for the given cause.
func (s *LoadSeries) ObserveShed(c ShedCause) {
	switch c {
	case ShedQPS:
		s.shedQPS.Add(1)
	case ShedQueue:
		s.shedQueue.Add(1)
	case ShedQuarantine:
		s.shedQuarantine.Add(1)
	default:
		s.shedBudget.Add(1)
	}
}

// LoadReport is a point-in-time snapshot of a LoadSeries: cumulative
// admitted/shed counters plus the per-cause breakdown.
type LoadReport struct {
	Admitted       int64 `json:"admitted"`
	Shed           int64 `json:"shed"`
	ShedQPS        int64 `json:"shed_qps,omitempty"`
	ShedQueue      int64 `json:"shed_queue,omitempty"`
	ShedBudget     int64 `json:"shed_budget,omitempty"`
	ShedQuarantine int64 `json:"shed_quarantine,omitempty"`
}

// Snapshot reads the current counters. Counter reads are individually
// atomic; under concurrent traffic the totals may straddle a request, the
// same (harmless) skew the latency ring accepts.
func (s *LoadSeries) Snapshot() LoadReport {
	qps, queue, budget := s.shedQPS.Load(), s.shedQueue.Load(), s.shedBudget.Load()
	quarantine := s.shedQuarantine.Load()
	return LoadReport{
		Admitted:       s.admitted.Load(),
		Shed:           qps + queue + budget + quarantine,
		ShedQPS:        qps,
		ShedQueue:      queue,
		ShedBudget:     budget,
		ShedQuarantine: quarantine,
	}
}

// Offered is the total offered load the report covers: admitted + shed.
func (r LoadReport) Offered() int64 { return r.Admitted + r.Shed }

// ShedRate is the fraction of offered load that was shed, 0 on an empty
// report (no traffic is not overload).
func (r LoadReport) ShedRate() float64 {
	if off := r.Offered(); off > 0 {
		return float64(r.Shed) / float64(off)
	}
	return 0
}

// Delta returns the counter movement since an earlier snapshot of the
// same series — the windowed view the improvement-loop gates evaluate, so
// a long-resolved overload spike cannot hold promotions forever.
func (r LoadReport) Delta(prev LoadReport) LoadReport {
	return LoadReport{
		Admitted:       r.Admitted - prev.Admitted,
		Shed:           r.Shed - prev.Shed,
		ShedQPS:        r.ShedQPS - prev.ShedQPS,
		ShedQueue:      r.ShedQueue - prev.ShedQueue,
		ShedBudget:     r.ShedBudget - prev.ShedBudget,
		ShedQuarantine: r.ShedQuarantine - prev.ShedQuarantine,
	}
}
