package monitor

import (
	"sync"

	"repro/internal/model"
)

// ShadowSeries accumulates live-traffic agreement between a deployment's
// primary model and its shadow candidate. Every mirrored request contributes
// per-task agreement units (one unit per example-level decision, one per
// token for sequence tasks), so a candidate's behavioural drift is visible
// in /stats before it is promoted — the monitor-then-improve loop of
// Section 2.4 applied to serving.
//
// Safe for concurrent use; mirrored predictions run on background
// goroutines.
type ShadowSeries struct {
	mu       sync.Mutex
	mirrored int64
	errors   int64
	dropped  int64
	tasks    map[string]*shadowAgg
}

type shadowAgg struct {
	agree, units float64
	missing      int64
}

// NewShadowSeries returns an empty series.
func NewShadowSeries() *ShadowSeries {
	return &ShadowSeries{tasks: map[string]*shadowAgg{}}
}

// TaskComparison is one task's contribution from a single mirrored
// request — the per-event record the telemetry plane logs next to the
// accumulated series.
type TaskComparison struct {
	// Agree and Units are the request's agreement units for the task.
	Agree float64
	Units float64
	// Missing marks a task the primary emitted but the shadow did not;
	// its Units are charged as full disagreement (Agree = 0).
	Missing bool
}

// Observe records one mirrored request — the primary's output next to
// the shadow's output for the same record — and returns the per-task
// comparisons it accumulated. A task present in the primary but absent
// from the shadow is counted as full disagreement over the primary's
// units (a candidate that fails to emit a task must not inflate its
// agreement; it used to be silently skipped, which let exactly that
// candidate pass the promotion gate).
func (s *ShadowSeries) Observe(primary, shadow model.Output) map[string]TaskComparison {
	comps := make(map[string]TaskComparison, len(primary))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mirrored++
	for task, p := range primary {
		a := s.tasks[task]
		if a == nil {
			a = &shadowAgg{}
			s.tasks[task] = a
		}
		var c TaskComparison
		if sh, ok := shadow[task]; ok {
			c.Agree, c.Units = outputAgreement(p, sh)
		} else {
			c.Units = primaryUnits(p)
			c.Missing = true
			a.missing++
		}
		a.agree += c.Agree
		a.units += c.Units
		comps[task] = c
	}
	return comps
}

// primaryUnits is the unit weight of one primary task output — the
// disagreement charged when the shadow omits the task entirely.
func primaryUnits(p model.TaskOutput) float64 {
	switch {
	case p.Class != "":
		return 1
	case len(p.TokenClasses) > 0:
		return float64(len(p.TokenClasses))
	case len(p.TokenBits) > 0:
		return float64(len(p.TokenBits))
	default:
		return 1 // Select task
	}
}

// ObserveError records a mirrored request whose shadow prediction failed.
func (s *ShadowSeries) ObserveError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

// ObserveDropped records a mirrored request that was shed because the
// shadow lane was saturated (shadow traffic must never backpressure the
// primary path).
func (s *ShadowSeries) ObserveDropped() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

// Reset clears the series — called on promotion, when a new comparison
// epoch begins.
func (s *ShadowSeries) Reset() {
	s.mu.Lock()
	s.mirrored, s.errors, s.dropped = 0, 0, 0
	clear(s.tasks)
	s.mu.Unlock()
}

// ShadowTaskAgreement is one task's accumulated agreement.
type ShadowTaskAgreement struct {
	Units float64 `json:"units"`
	Agree float64 `json:"agree"`
	Rate  float64 `json:"rate"`
	// Missing counts mirrored requests where the shadow omitted this task
	// (each charged as full disagreement over the primary's units).
	Missing int64 `json:"missing,omitempty"`
}

// ShadowReport is a point-in-time snapshot of a shadow comparison.
type ShadowReport struct {
	Mirrored int64 `json:"mirrored"`
	Errors   int64 `json:"errors,omitempty"`
	Dropped  int64 `json:"dropped,omitempty"`
	// MissingTasks totals, across tasks, the mirrored requests where the
	// shadow failed to emit a task the primary emitted — agreement
	// already prices these in as disagreement; the counter makes the
	// cause visible.
	MissingTasks int64                          `json:"missing_tasks,omitempty"`
	Tasks        map[string]ShadowTaskAgreement `json:"tasks,omitempty"`
}

// Snapshot returns the current comparison state.
func (s *ShadowSeries) Snapshot() *ShadowReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &ShadowReport{Mirrored: s.mirrored, Errors: s.errors, Dropped: s.dropped}
	if len(s.tasks) > 0 {
		rep.Tasks = make(map[string]ShadowTaskAgreement, len(s.tasks))
		for task, a := range s.tasks {
			ta := ShadowTaskAgreement{Units: a.units, Agree: a.agree, Missing: a.missing}
			if a.units > 0 {
				ta.Rate = a.agree / a.units
			}
			rep.MissingTasks += a.missing
			rep.Tasks[task] = ta
		}
	}
	return rep
}

// outputAgreement scores two predictions for the same task, returning
// (agreeing units, total units). The output kind is inferred from the
// populated fields — both outputs come from models serving the same
// signature, so kinds always match. Token tasks take their unit count
// from the LONGER sequence: positions one side failed to emit are
// disagreement units, so a shadow that truncates its output cannot
// inflate its rate.
func outputAgreement(a, b model.TaskOutput) (float64, float64) {
	switch {
	case a.Class != "" || b.Class != "":
		if a.Class == b.Class {
			return 1, 1
		}
		return 0, 1
	case len(a.TokenClasses) > 0 || len(b.TokenClasses) > 0:
		n, total := minMax(len(a.TokenClasses), len(b.TokenClasses))
		var agree float64
		for i := 0; i < n; i++ {
			if a.TokenClasses[i] == b.TokenClasses[i] {
				agree++
			}
		}
		return agree, float64(total)
	case len(a.TokenBits) > 0 || len(b.TokenBits) > 0:
		n, total := minMax(len(a.TokenBits), len(b.TokenBits))
		var agree float64
		for i := 0; i < n; i++ {
			if sameStrSet(a.TokenBits[i], b.TokenBits[i]) {
				agree++
			}
		}
		return agree, float64(total)
	default:
		// Select task (including the empty-set Select == -1 case).
		if a.Select == b.Select {
			return 1, 1
		}
		return 0, 1
	}
}

func minMax(a, b int) (int, int) {
	if a < b {
		return a, b
	}
	return b, a
}
