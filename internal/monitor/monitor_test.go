package monitor

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/train"
	"repro/internal/workload"
)

func trainedModel(t *testing.T, ds *record.Dataset, epochs int) (*model.Model, map[string]interface{}) {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-16", Encoder: "CNN", Hidden: 24,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.02, Epochs: epochs, Dropout: 0, BatchSize: 32,
	}
	prog, err := compile.Plan(ds.Schema, choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(m, ds, train.Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return m, nil
}

func TestBuildReport(t *testing.T) {
	ds := workload.StandardDataset(250, 7, 0.2)
	m, _ := trainedModel(t, ds, 5)
	targets, err := train.CombineSupervision(ds, train.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Build(m, ds, Config{
		Name:    "factoid-v1",
		EvalTag: record.TagTest,
		Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Overall) != 4 {
		t.Fatalf("overall tasks: %d", len(rep.Overall))
	}
	// Slices appear as tags with their own metrics.
	if _, ok := rep.PerTag[workload.SliceDisambig]; !ok {
		t.Fatalf("disambig slice missing from per-tag report; tags=%v", rep.TagCounts)
	}
	// Source diagnostics: estimated accuracies present for intent sources.
	intentSources := rep.Sources[workload.TaskIntent]
	if len(intentSources) == 0 {
		t.Fatalf("no intent source quality rows")
	}
	foundKw := false
	for _, sq := range intentSources {
		if sq.Source == "kwintent" {
			foundKw = true
			if sq.EstimatedAcc <= 0 || sq.GoldAcc <= 0 {
				t.Fatalf("kwintent diagnostics empty: %+v", sq)
			}
		}
	}
	if !foundKw {
		t.Fatalf("kwintent missing from diagnostics")
	}
}

func TestRenderAndCSVAndJSON(t *testing.T) {
	ds := workload.StandardDataset(120, 11, 0.2)
	m, _ := trainedModel(t, ds, 2)
	rep, err := Build(m, ds, Config{Name: "r", EvalTag: record.TagTest})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	rep.Render(&text)
	for _, want := range []string{"quality report", "Intent", "tag "} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, text.String())
		}
	}
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "tag,task,metric,value,n" {
		t.Fatalf("csv header wrong")
	}
	if len(lines) < 5 {
		t.Fatalf("csv too short")
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed Report
	if err := json.Unmarshal(js, &parsed); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
	if parsed.Name != "r" {
		t.Fatalf("json lost name")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	mkReport := func(intentAcc, sliceAcc float64) *Report {
		return &Report{
			Overall: map[string]metrics.TaskMetrics{
				"Intent": {Task: "Intent", Primary: intentAcc, N: 100},
			},
			PerTag: map[string]map[string]metrics.TaskMetrics{
				"nutrition": {
					"Intent": {Task: "Intent", Primary: sliceAcc, N: 20},
				},
			},
		}
	}
	before := mkReport(0.95, 0.9)
	after := mkReport(0.96, 0.7) // overall up, slice down 20 points
	cmp := Compare(before, after, 0.05)
	if len(cmp.Deltas) != 2 {
		t.Fatalf("deltas: %d", len(cmp.Deltas))
	}
	if len(cmp.Regressions) != 1 {
		t.Fatalf("regressions: %+v", cmp.Regressions)
	}
	reg := cmp.Regressions[0]
	if reg.Tag != "nutrition" || reg.Change > -0.19 {
		t.Fatalf("wrong regression flagged: %+v", reg)
	}
	// No regression when within threshold.
	cmp2 := Compare(before, mkReport(0.94, 0.89), 0.05)
	if len(cmp2.Regressions) != 0 {
		t.Fatalf("false positive regression")
	}
}

func TestCompareSkipsEmptyCells(t *testing.T) {
	a := &Report{Overall: map[string]metrics.TaskMetrics{"T": {Task: "T", Primary: 0.5, N: 0}}}
	b := &Report{Overall: map[string]metrics.TaskMetrics{"T": {Task: "T", Primary: 0.1, N: 10}}}
	cmp := Compare(a, b, 0.01)
	if len(cmp.Deltas) != 0 {
		t.Fatalf("zero-N cell compared")
	}
}
