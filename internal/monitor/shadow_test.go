package monitor

import (
	"testing"

	"repro/internal/model"
)

func TestShadowSeriesAgreement(t *testing.T) {
	s := NewShadowSeries()

	// Perfect agreement on a class task, partial on a token task.
	s.Observe(
		model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "V", "PROPN"}},
		},
		model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "N", "PROPN"}},
		},
	)
	// Disagreement on class, agreement on a select task.
	s.Observe(
		model.Output{"Intent": {Class: "height"}, "IntentArg": {Select: 1, SelectProbs: []float64{0.3, 0.7}}},
		model.Output{"Intent": {Class: "capital"}, "IntentArg": {Select: 1, SelectProbs: []float64{0.4, 0.6}}},
	)
	s.ObserveError()
	s.ObserveDropped()

	rep := s.Snapshot()
	if rep.Mirrored != 2 || rep.Errors != 1 || rep.Dropped != 1 {
		t.Fatalf("counters wrong: %+v", rep)
	}
	if got := rep.Tasks["Intent"]; got.Units != 2 || got.Agree != 1 || got.Rate != 0.5 {
		t.Fatalf("Intent agreement wrong: %+v", got)
	}
	if got := rep.Tasks["POS"]; got.Units != 4 || got.Agree != 3 {
		t.Fatalf("POS agreement wrong: %+v", got)
	}
	if got := rep.Tasks["IntentArg"]; got.Units != 1 || got.Agree != 1 {
		t.Fatalf("IntentArg agreement wrong: %+v", got)
	}

	s.Reset()
	rep = s.Snapshot()
	if rep.Mirrored != 0 || len(rep.Tasks) != 0 {
		t.Fatalf("reset did not clear: %+v", rep)
	}
}

// TestShadowMissingTaskCountsAsDisagreement pins the fix for
// shadow-agreement inflation: a task the primary emitted but the shadow
// did not is charged as full disagreement over the primary's units, for
// every output kind, and surfaced in the per-task Missing counter and
// the report's MissingTasks total.
func TestShadowMissingTaskCountsAsDisagreement(t *testing.T) {
	s := NewShadowSeries()
	comps := s.Observe(
		model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "V", "PROPN"}},
			"Bits":   {TokenBits: [][]string{{"a"}, {"b"}}},
			"Sel":    {Select: 1},
		},
		model.Output{"Intent": {Class: "height"}}, // shadow dropped 3 tasks
	)
	want := map[string]TaskComparison{
		"Intent": {Agree: 1, Units: 1},
		"POS":    {Units: 4, Missing: true},
		"Bits":   {Units: 2, Missing: true},
		"Sel":    {Units: 1, Missing: true},
	}
	for task, w := range want {
		if got := comps[task]; got != w {
			t.Errorf("comparison[%s] = %+v, want %+v", task, got, w)
		}
	}

	rep := s.Snapshot()
	if rep.MissingTasks != 3 {
		t.Errorf("MissingTasks = %d, want 3", rep.MissingTasks)
	}
	if got := rep.Tasks["POS"]; got.Units != 4 || got.Agree != 0 || got.Rate != 0 || got.Missing != 1 {
		t.Errorf("POS aggregate = %+v, want 4 units of pure disagreement", got)
	}
	if got := rep.Tasks["Intent"]; got.Missing != 0 || got.Rate != 1 {
		t.Errorf("Intent aggregate = %+v", got)
	}
}

// TestShadowTruncatedTokensCountMissingPositions: token tasks take their
// unit count from the longer sequence, so a shadow that truncates its
// token output pays the missing positions as disagreement.
func TestShadowTruncatedTokensCountMissingPositions(t *testing.T) {
	s := NewShadowSeries()
	s.Observe(
		model.Output{"POS": {TokenClasses: []string{"WH", "ADJ", "V", "PROPN"}}},
		model.Output{"POS": {TokenClasses: []string{"WH", "ADJ"}}},
	)
	if got := s.Snapshot().Tasks["POS"]; got.Units != 4 || got.Agree != 2 || got.Rate != 0.5 {
		t.Fatalf("truncated shadow aggregate = %+v, want 2/4", got)
	}
}

// TestGateFailsOnShadowDroppedTask is the gate-level pin for the
// inflation fix: a shadow that agrees perfectly on the tasks it emits
// but drops an entire task head must NOT pass EvaluateGate on
// agreement. Before the fix the missing task was silently skipped, the
// worst-task agreement read 1.0, and exactly this candidate promoted.
func TestGateFailsOnShadowDroppedTask(t *testing.T) {
	cfg := GateConfig{MinMirrored: 5, MinAgreement: 0.9}

	dropped := NewShadowSeries()
	complete := NewShadowSeries()
	for i := 0; i < 10; i++ {
		primary := model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "V", "PROPN"}},
		}
		dropped.Observe(primary, model.Output{"Intent": {Class: "height"}})
		complete.Observe(primary, model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "V", "PROPN"}},
		})
	}

	// Control: the same traffic with every task emitted passes — the only
	// difference below is the dropped head.
	if res := EvaluateGate(complete.Snapshot(), cfg); !res.Pass {
		t.Fatalf("control gate failed: %+v", res)
	}
	res := EvaluateGate(dropped.Snapshot(), cfg)
	if res.Pass {
		t.Fatalf("gate passed a shadow that never emitted POS: %+v", res)
	}
	if res.Agreement != 0 {
		t.Errorf("worst-task agreement = %g, want 0 (POS all-missing)", res.Agreement)
	}
}

func TestShadowSeriesBitsAndEmptySelect(t *testing.T) {
	s := NewShadowSeries()
	s.Observe(
		model.Output{
			"Bits": {TokenBits: [][]string{{"a", "b"}, {"c"}}},
			"Sel":  {Select: -1},
		},
		model.Output{
			"Bits": {TokenBits: [][]string{{"b", "a"}, {}}},
			"Sel":  {Select: -1},
		},
	)
	rep := s.Snapshot()
	if got := rep.Tasks["Bits"]; got.Units != 2 || got.Agree != 1 {
		t.Fatalf("Bits agreement wrong: %+v", got)
	}
	if got := rep.Tasks["Sel"]; got.Units != 1 || got.Agree != 1 {
		t.Fatalf("empty-set select should agree: %+v", got)
	}
}
