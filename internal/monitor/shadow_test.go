package monitor

import (
	"testing"

	"repro/internal/model"
)

func TestShadowSeriesAgreement(t *testing.T) {
	s := NewShadowSeries()

	// Perfect agreement on a class task, partial on a token task.
	s.Observe(
		model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "V", "PROPN"}},
		},
		model.Output{
			"Intent": {Class: "height"},
			"POS":    {TokenClasses: []string{"WH", "ADJ", "N", "PROPN"}},
		},
	)
	// Disagreement on class, agreement on a select task.
	s.Observe(
		model.Output{"Intent": {Class: "height"}, "IntentArg": {Select: 1, SelectProbs: []float64{0.3, 0.7}}},
		model.Output{"Intent": {Class: "capital"}, "IntentArg": {Select: 1, SelectProbs: []float64{0.4, 0.6}}},
	)
	s.ObserveError()
	s.ObserveDropped()

	rep := s.Snapshot()
	if rep.Mirrored != 2 || rep.Errors != 1 || rep.Dropped != 1 {
		t.Fatalf("counters wrong: %+v", rep)
	}
	if got := rep.Tasks["Intent"]; got.Units != 2 || got.Agree != 1 || got.Rate != 0.5 {
		t.Fatalf("Intent agreement wrong: %+v", got)
	}
	if got := rep.Tasks["POS"]; got.Units != 4 || got.Agree != 3 {
		t.Fatalf("POS agreement wrong: %+v", got)
	}
	if got := rep.Tasks["IntentArg"]; got.Units != 1 || got.Agree != 1 {
		t.Fatalf("IntentArg agreement wrong: %+v", got)
	}

	s.Reset()
	rep = s.Snapshot()
	if rep.Mirrored != 0 || len(rep.Tasks) != 0 {
		t.Fatalf("reset did not clear: %+v", rep)
	}
}

func TestShadowSeriesBitsAndEmptySelect(t *testing.T) {
	s := NewShadowSeries()
	s.Observe(
		model.Output{
			"Bits": {TokenBits: [][]string{{"a", "b"}, {"c"}}},
			"Sel":  {Select: -1},
		},
		model.Output{
			"Bits": {TokenBits: [][]string{{"b", "a"}, {}}},
			"Sel":  {Select: -1},
		},
	)
	rep := s.Snapshot()
	if got := rep.Tasks["Bits"]; got.Units != 2 || got.Agree != 1 {
		t.Fatalf("Bits agreement wrong: %+v", got)
	}
	if got := rep.Tasks["Sel"]; got.Units != 1 || got.Agree != 1 {
		t.Fatalf("empty-set select should agree: %+v", got)
	}
}
