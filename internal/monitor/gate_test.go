package monitor

import (
	"encoding/json"
	"math"
	"testing"
)

func TestEvaluateGate(t *testing.T) {
	cfg := GateConfig{MinMirrored: 10, MinAgreement: 0.9, MaxErrorRate: 0.2}
	cases := []struct {
		name   string
		rep    *ShadowReport
		cfg    GateConfig
		pass   bool
		reason string
	}{
		{name: "nil report", rep: nil, cfg: cfg, pass: false, reason: "no shadow comparison window"},
		{
			name: "insufficient traffic",
			rep:  &ShadowReport{Mirrored: 9, Tasks: map[string]ShadowTaskAgreement{"T": {Units: 9, Agree: 9}}},
			cfg:  cfg, pass: false, reason: "mirrored 9 < min 10",
		},
		{
			name: "empty tasks map fails closed",
			rep:  &ShadowReport{Mirrored: 50},
			cfg:  cfg, pass: false, reason: "no agreement units in window",
		},
		{
			name: "zero-unit tasks fail closed (NaN guard)",
			rep:  &ShadowReport{Mirrored: 50, Tasks: map[string]ShadowTaskAgreement{"T": {Units: 0, Agree: 0}}},
			cfg:  cfg, pass: false, reason: "no agreement units in window",
		},
		{
			name: "worst task gates",
			rep: &ShadowReport{Mirrored: 50, Tasks: map[string]ShadowTaskAgreement{
				"good": {Units: 50, Agree: 50},
				"bad":  {Units: 50, Agree: 40},
			}},
			cfg: cfg, pass: false, reason: "agreement 0.800 < min 0.900",
		},
		{
			name: "error rate gates",
			rep: &ShadowReport{Mirrored: 40, Errors: 20,
				Tasks: map[string]ShadowTaskAgreement{"T": {Units: 40, Agree: 40}}},
			cfg: cfg, pass: false, reason: "shadow error rate 0.333 > max 0.200",
		},
		{
			name: "pass",
			rep: &ShadowReport{Mirrored: 50, Errors: 1, Tasks: map[string]ShadowTaskAgreement{
				"a": {Units: 100, Agree: 95},
				"b": {Units: 10, Agree: 10},
			}},
			cfg: cfg, pass: true,
		},
		{
			name: "defaults require one comparison",
			rep:  &ShadowReport{},
			cfg:  GateConfig{}, pass: false, reason: "mirrored 0 < min 1",
		},
		{
			name: "zero thresholds pass any nonempty window",
			rep:  &ShadowReport{Mirrored: 1, Tasks: map[string]ShadowTaskAgreement{"T": {Units: 1, Agree: 0}}},
			cfg:  GateConfig{}, pass: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := EvaluateGate(tc.rep, tc.cfg)
			if got.Pass != tc.pass {
				t.Fatalf("pass=%v, want %v (%+v)", got.Pass, tc.pass, got)
			}
			if !tc.pass && got.Reason != tc.reason {
				t.Fatalf("reason %q, want %q", got.Reason, tc.reason)
			}
			if tc.pass && got.Reason != "" {
				t.Fatalf("pass with reason %q", got.Reason)
			}
		})
	}
}

// TestEvaluateGateMarshalsOnEmptyWindow pins the NaN guard: a window with
// traffic but no agreement units must yield a JSON-encodable result
// (json.Marshal rejects NaN).
func TestEvaluateGateMarshalsOnEmptyWindow(t *testing.T) {
	got := EvaluateGate(&ShadowReport{Mirrored: 50}, GateConfig{MinMirrored: 1})
	if got.Pass || got.Agreement != 0 {
		t.Fatalf("empty window result: %+v", got)
	}
	if _, err := json.Marshal(got); err != nil {
		t.Fatalf("gate result not marshalable: %v", err)
	}
}

func TestEvaluateGateWorstAgreement(t *testing.T) {
	rep := &ShadowReport{Mirrored: 10, Tasks: map[string]ShadowTaskAgreement{
		"a": {Units: 10, Agree: 9},
		"b": {Units: 10, Agree: 5},
		"c": {Units: 0, Agree: 0}, // ignored, not NaN-poisoning
	}}
	got := EvaluateGate(rep, GateConfig{MinMirrored: 1})
	if !got.Pass || math.Abs(got.Agreement-0.5) > 1e-12 {
		t.Fatalf("worst agreement: %+v", got)
	}
}
