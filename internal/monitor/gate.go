package monitor

import (
	"fmt"
	"math"
)

// GateConfig is a promotion gate over a shadow comparison window: the
// candidate must have seen enough mirrored production traffic, agree with
// the primary at or above the threshold on every task, and keep its own
// prediction error rate bounded. Zero values disable the corresponding
// check except MinMirrored, which always requires at least one comparison —
// promoting on an empty window is never sane.
type GateConfig struct {
	// MinMirrored is the minimum number of mirrored comparisons (default 1).
	MinMirrored int64 `json:"min_mirrored,omitempty"`
	// MinAgreement is the minimum per-task agreement rate in [0,1]; the gate
	// uses the worst task, so one regressing task blocks promotion.
	MinAgreement float64 `json:"min_agreement,omitempty"`
	// MaxErrorRate bounds shadow prediction failures:
	// errors / (mirrored + errors). Zero disables.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// GateResult is one evaluation of a gate against a shadow window.
type GateResult struct {
	Pass bool `json:"pass"`
	// Reason explains a failure (empty on pass).
	Reason string `json:"reason,omitempty"`
	// Agreement is the worst per-task agreement rate observed; 0 when no
	// task had any agreement units (the Reason says so — a NaN here would
	// poison json.Marshal, which rejects NaN).
	Agreement float64 `json:"agreement,omitempty"`
	Mirrored  int64   `json:"mirrored"`
}

// EvaluateGate checks one shadow comparison window against cfg. It is
// deliberately paranoid about degenerate windows: a nil report, zero
// mirrored traffic, tasks with zero agreement units, and NaN rates all fail
// closed — the promotion loop holds rather than promoting on garbage.
func EvaluateGate(rep *ShadowReport, cfg GateConfig) GateResult {
	if cfg.MinMirrored <= 0 {
		cfg.MinMirrored = 1
	}
	if rep == nil {
		return GateResult{Reason: "no shadow comparison window"}
	}
	res := GateResult{Mirrored: rep.Mirrored}
	if rep.Mirrored < cfg.MinMirrored {
		res.Reason = fmt.Sprintf("mirrored %d < min %d", rep.Mirrored, cfg.MinMirrored)
		return res
	}
	if cfg.MaxErrorRate > 0 {
		total := float64(rep.Mirrored + rep.Errors)
		if rate := float64(rep.Errors) / total; rate > cfg.MaxErrorRate {
			res.Reason = fmt.Sprintf("shadow error rate %.3f > max %.3f", rate, cfg.MaxErrorRate)
			return res
		}
	}
	worst := math.NaN()
	for _, ta := range rep.Tasks {
		if ta.Units <= 0 {
			continue
		}
		rate := ta.Agree / ta.Units
		if math.IsNaN(worst) || rate < worst {
			worst = rate
		}
	}
	if math.IsNaN(worst) {
		res.Reason = "no agreement units in window"
		return res
	}
	res.Agreement = worst
	if worst < cfg.MinAgreement {
		res.Reason = fmt.Sprintf("agreement %.3f < min %.3f", worst, cfg.MinAgreement)
		return res
	}
	res.Pass = true
	return res
}
