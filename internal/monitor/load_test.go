package monitor

import (
	"sync"
	"testing"
)

// TestLoadSeriesAccounting pins the counter plumbing: per-cause shed
// breakdown, totals, offered load, rates, and windowed deltas.
func TestLoadSeriesAccounting(t *testing.T) {
	s := NewLoadSeries()
	for i := 0; i < 6; i++ {
		s.ObserveAdmit()
	}
	s.ObserveShed(ShedQPS)
	s.ObserveShed(ShedQPS)
	s.ObserveShed(ShedQueue)
	s.ObserveShed(ShedBudget)

	rep := s.Snapshot()
	want := LoadReport{Admitted: 6, Shed: 4, ShedQPS: 2, ShedQueue: 1, ShedBudget: 1}
	if rep != want {
		t.Fatalf("snapshot = %+v, want %+v", rep, want)
	}
	if rep.Offered() != 10 {
		t.Fatalf("Offered = %d, want 10", rep.Offered())
	}
	if rate := rep.ShedRate(); rate != 0.4 {
		t.Fatalf("ShedRate = %v, want 0.4", rate)
	}

	// A window with only new admissions has shed rate 0.
	s.ObserveAdmit()
	s.ObserveAdmit()
	delta := s.Snapshot().Delta(rep)
	if delta.Admitted != 2 || delta.Shed != 0 || delta.ShedRate() != 0 {
		t.Fatalf("delta = %+v, want 2 admitted / 0 shed", delta)
	}
}

// TestLoadSeriesEmpty pins the degenerate cases: an empty series is not
// overloaded (rate 0, not NaN).
func TestLoadSeriesEmpty(t *testing.T) {
	rep := NewLoadSeries().Snapshot()
	if rep.Offered() != 0 || rep.ShedRate() != 0 {
		t.Fatalf("empty series = %+v (rate %v), want all-zero", rep, rep.ShedRate())
	}
}

// TestLoadSeriesConcurrent drives the series from many goroutines (run
// with -race in CI) and checks the totals balance.
func TestLoadSeriesConcurrent(t *testing.T) {
	s := NewLoadSeries()
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%4 == 0 {
					s.ObserveShed(ShedCause(w % 3))
				} else {
					s.ObserveAdmit()
				}
			}
		}(w)
	}
	wg.Wait()
	rep := s.Snapshot()
	if rep.Offered() != workers*per {
		t.Fatalf("offered = %d, want %d", rep.Offered(), workers*per)
	}
	if rep.Shed != rep.ShedQPS+rep.ShedQueue+rep.ShedBudget {
		t.Fatalf("shed breakdown does not sum: %+v", rep)
	}
}
