package record

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/schema"
)

const testSchemaJSON = `{
  "payloads": {
    "tokens":   {"type": "sequence", "max_length": 16},
    "query":    {"type": "singleton", "base": ["tokens"]},
    "entities": {"type": "set", "range": "tokens"}
  },
  "tasks": {
    "POS":        {"payload": "tokens", "type": "multiclass",
                   "classes": ["NOUN", "VERB", "ADJ", "ADV", "ADP", "DET"]},
    "EntityType": {"payload": "tokens", "type": "bitvector",
                   "classes": ["person", "location", "country"]},
    "Intent":     {"payload": "query", "type": "multiclass",
                   "classes": ["Height", "Capital", "President"]},
    "IntentArg":  {"payload": "entities", "type": "select"}
  }
}`

// paperRecordJSON is (a compressed version of) the example data record in
// Figure 2a.
const paperRecordJSON = `{
  "id": "q1",
  "payloads": {
    "tokens": ["How", "tall", "is", "the", "president"],
    "query": "How tall is the president",
    "entities": {
      "0": {"id": "President_(title)", "range": [4, 5]},
      "1": {"id": "United_States", "range": [3, 5]}
    }
  },
  "tasks": {
    "POS": {"spacy": ["ADV", "ADJ", "VERB", "DET", "NOUN"]},
    "EntityType": {"eproj": [[], [], [], [], ["person"]]},
    "Intent": {"weak1": "President", "weak2": "Height", "crowd": "Height"},
    "IntentArg": {"weak1": 1, "weak2": 0, "crowd": 0}
  },
  "tags": ["train", "nutrition"],
  "slices": ["nutrition"]
}`

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s, err := schema.Parse([]byte(testSchemaJSON))
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

func TestParsePaperRecord(t *testing.T) {
	sch := testSchema(t)
	r, err := ParseRecord([]byte(paperRecordJSON), sch)
	if err != nil {
		t.Fatalf("ParseRecord: %v", err)
	}
	if r.ID != "q1" {
		t.Fatalf("id wrong")
	}
	if got := r.Payloads["tokens"].Tokens; len(got) != 5 || got[1] != "tall" {
		t.Fatalf("tokens wrong: %v", got)
	}
	ents := r.Payloads["entities"].Set
	if len(ents) != 2 || ents[0].ID != "President_(title)" || ents[0].Start != 4 || ents[0].End != 5 {
		t.Fatalf("entities wrong: %+v", ents)
	}
	if l, ok := r.Label("Intent", "weak2"); !ok || l.Class != "Height" {
		t.Fatalf("Intent weak2 wrong: %+v", l)
	}
	if l, ok := r.Label("IntentArg", "weak1"); !ok || l.Select != 1 {
		t.Fatalf("IntentArg weak1 wrong")
	}
	if l, ok := r.Label("EntityType", "eproj"); !ok || len(l.Bits) != 5 || l.Bits[4][0] != "person" {
		t.Fatalf("EntityType wrong: %+v", l)
	}
	if !r.HasTag("nutrition") || !r.InSlice("nutrition") || r.InSlice("zzz") {
		t.Fatalf("tags/slices wrong")
	}
	if err := Validate(r, sch); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	sch := testSchema(t)
	r, err := ParseRecord([]byte(paperRecordJSON), sch)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalRecord(r, sch)
	if err != nil {
		t.Fatalf("MarshalRecord: %v", err)
	}
	r2, err := ParseRecord(data, sch)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(r2.Payloads["entities"].Set) != 2 {
		t.Fatalf("entities lost in round trip")
	}
	if l, ok := r2.Label("Intent", "crowd"); !ok || l.Class != "Height" {
		t.Fatalf("labels lost in round trip")
	}
	if l, ok := r2.Label("EntityType", "eproj"); !ok || len(l.Bits) != 5 {
		t.Fatalf("bitvector lost in round trip: %+v", l)
	}
}

func TestNullPayload(t *testing.T) {
	sch := testSchema(t)
	js := `{"payloads": {"tokens": ["hi"], "query": null}}`
	r, err := ParseRecord([]byte(js), sch)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Payloads["query"].Null {
		t.Fatalf("null payload not recognised")
	}
	if err := Validate(r, sch); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSequenceTruncation(t *testing.T) {
	sch := testSchema(t)
	long := `{"payloads": {"tokens": ["a","b","c","d","e","f","g","h","i","j","k","l","m","n","o","p","q","r"]}}`
	r, err := ParseRecord([]byte(long), sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Payloads["tokens"].Tokens) != 16 {
		t.Fatalf("not truncated to max_length: %d", len(r.Payloads["tokens"].Tokens))
	}
}

func TestParseErrors(t *testing.T) {
	sch := testSchema(t)
	cases := []struct{ name, js, want string }{
		{"unknown payload", `{"payloads": {"zzz": "x"}}`, "not in schema"},
		{"unknown task", `{"payloads": {}, "tasks": {"Zzz": {"s": "x"}}}`, "not in schema"},
		{"wrong singleton shape", `{"payloads": {"query": ["a"]}}`, "singleton wants string"},
		{"wrong sequence shape", `{"payloads": {"tokens": "abc"}}`, "string array"},
		{"wrong select shape", `{"payloads": {}, "tasks": {"IntentArg": {"w": "zero"}}}`, "candidate index"},
		{"bad set key", `{"payloads": {"entities": {"x": {"id": "a", "range": [0,1]}}}}`, "not an index"},
	}
	for _, tc := range cases {
		_, err := ParseRecord([]byte(tc.js), sch)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	sch := testSchema(t)
	cases := []struct{ name, js, want string }{
		{"unknown class", `{"payloads": {"query": "x"}, "tasks": {"Intent": {"w": "Weather"}}}`, "unknown class"},
		{"seq label length", `{"payloads": {"tokens": ["a","b"]}, "tasks": {"POS": {"w": ["NOUN"]}}}`, "!= 2 tokens"},
		{"unknown pos class", `{"payloads": {"tokens": ["a"]}, "tasks": {"POS": {"w": ["XYZ"]}}}`, "unknown class"},
		{"unknown bit", `{"payloads": {"tokens": ["a"]}, "tasks": {"EntityType": {"w": [["alien"]]}}}`, "unknown bit"},
		{"select out of range", `{"payloads": {"entities": {"0": {"id": "a", "range": [0,1]}}, "tokens": ["x"]}, "tasks": {"IntentArg": {"w": 3}}}`, "out of range"},
		{"span out of range", `{"payloads": {"entities": {"0": {"id": "a", "range": [0,5]}}, "tokens": ["x"]}}`, "span end"},
		{"negative span", `{"payloads": {"entities": {"0": {"id": "a", "range": [2,1]}}}}`, "bad span"},
	}
	for _, tc := range cases {
		r, err := ParseRecord([]byte(tc.js), sch)
		if err != nil {
			t.Errorf("%s: unexpected parse error %v", tc.name, err)
			continue
		}
		err = Validate(r, sch)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestGoldSourceHelpers(t *testing.T) {
	sch := testSchema(t)
	r, _ := ParseRecord([]byte(`{"payloads": {"query": "x"}}`), sch)
	r.SetLabel("Intent", GoldSource, Label{Kind: KindClass, Class: "Height"})
	r.SetLabel("Intent", "weak1", Label{Kind: KindClass, Class: "Capital"})
	if g, ok := r.Gold("Intent"); !ok || g.Class != "Height" {
		t.Fatalf("Gold() wrong")
	}
	if _, ok := r.Gold("POS"); ok {
		t.Fatalf("Gold on unlabeled task should be absent")
	}
}

func TestDatasetLoadSaveRoundTrip(t *testing.T) {
	sch := testSchema(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.jsonl")
	content := paperRecordJSON2Lines()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(path, sch)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(ds.Records) != 2 {
		t.Fatalf("want 2 records got %d", len(ds.Records))
	}
	out := filepath.Join(dir, "out.jsonl")
	if err := ds.Save(out); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ds2, err := Load(out, sch)
	if err != nil {
		t.Fatalf("re-Load: %v", err)
	}
	if len(ds2.Records) != 2 {
		t.Fatalf("round trip lost records")
	}
}

// paperRecordJSON2Lines flattens the pretty-printed record to single lines.
func paperRecordJSON2Lines() string {
	one := strings.ReplaceAll(paperRecordJSON, "\n", " ")
	two := strings.ReplaceAll(one, `"id": "q1"`, `"id": "q2"`)
	return one + "\n" + two + "\n"
}

func TestDatasetQueries(t *testing.T) {
	sch := testSchema(t)
	ds := &Dataset{Schema: sch}
	mk := func(id string, tags, slices []string) *Record {
		r := &Record{ID: id, Payloads: map[string]PayloadValue{}}
		for _, tg := range tags {
			r.AddTag(tg)
		}
		for _, sl := range slices {
			r.AddSlice(sl)
		}
		return r
	}
	ds.Records = []*Record{
		mk("a", []string{TagTrain}, []string{"nutrition"}),
		mk("b", []string{TagTest}, nil),
		mk("c", []string{TagTrain, "aug"}, nil),
	}
	ds.Records[0].SetLabel("Intent", "weak1", Label{Kind: KindClass, Class: "Height"})
	ds.Records[1].SetLabel("Intent", GoldSource, Label{Kind: KindClass, Class: "Capital"})

	if got := ds.WithTag(TagTrain); len(got) != 2 {
		t.Fatalf("WithTag train: %d", len(got))
	}
	if got := ds.InSlice("nutrition"); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("InSlice wrong")
	}
	tags := ds.Tags()
	want := []string{"aug", "nutrition", "test", "train"}
	if len(tags) != len(want) {
		t.Fatalf("Tags: %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("Tags[%d]=%s want %s", i, tags[i], want[i])
		}
	}
	if sn := ds.SliceNames(); len(sn) != 1 || sn[0] != "nutrition" {
		t.Fatalf("SliceNames wrong: %v", sn)
	}
	// Sources excludes gold.
	if srcs := ds.Sources(); len(srcs) != 1 || srcs[0] != "weak1" {
		t.Fatalf("Sources wrong: %v", srcs)
	}
}

func TestSplitTagsDeterministicAndComplete(t *testing.T) {
	sch := testSchema(t)
	mkDS := func() *Dataset {
		ds := &Dataset{Schema: sch}
		for i := 0; i < 1000; i++ {
			ds.Records = append(ds.Records, &Record{ID: string(rune('a' + i%26))})
		}
		return ds
	}
	d1 := mkDS()
	d1.SplitTags(0.7, 0.1, 42)
	d2 := mkDS()
	d2.SplitTags(0.7, 0.1, 42)
	var train, dev, test int
	for i, r := range d1.Records {
		if !r.HasTag(TagTrain) && !r.HasTag(TagDev) && !r.HasTag(TagTest) {
			t.Fatalf("record %d unassigned", i)
		}
		if strings.Join(r.Tags, ",") != strings.Join(d2.Records[i].Tags, ",") {
			t.Fatalf("split not deterministic at %d", i)
		}
		switch {
		case r.HasTag(TagTrain):
			train++
		case r.HasTag(TagDev):
			dev++
		default:
			test++
		}
	}
	if train < 600 || train > 800 || dev < 50 || dev > 170 || test < 120 {
		t.Fatalf("split fractions off: %d/%d/%d", train, dev, test)
	}
	// Pre-tagged records keep their tag.
	d3 := mkDS()
	d3.Records[0].AddTag(TagTest)
	d3.SplitTags(1.0, 0, 1)
	if !d3.Records[0].HasTag(TagTest) || d3.Records[0].HasTag(TagTrain) {
		t.Fatalf("pre-assigned tag overridden")
	}
}

func TestSplitTagsPanicsOnBadFractions(t *testing.T) {
	ds := &Dataset{}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	ds.SplitTags(0.9, 0.5, 1)
}

func TestAddTagIdempotent(t *testing.T) {
	r := &Record{}
	r.AddTag("x")
	r.AddTag("x")
	if len(r.Tags) != 1 {
		t.Fatalf("AddTag not idempotent")
	}
	r.AddSlice("s")
	r.AddSlice("s")
	if len(r.Slices) != 1 || len(r.Tags) != 2 {
		t.Fatalf("AddSlice wrong: tags=%v slices=%v", r.Tags, r.Slices)
	}
}
