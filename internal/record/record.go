// Package record implements Overton's data file: one JSON record per line,
// each carrying payload values, multi-source task supervision, tags, and
// slices. The data file is the engineer's primary interface — supervision
// is refined by editing data, never model code.
//
// Supervision semantics: every task label is attributed to a named source
// ("spacy", "weak1", "crowd", ...). Sources may conflict and may abstain
// (be absent). The reserved source "gold" holds curated evaluation labels;
// the label model never consumes it for training.
package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"repro/internal/schema"
)

// GoldSource is the reserved source name for curated evaluation labels.
const GoldSource = "gold"

// Default tags partitioning the data file (the system-defined tags from
// Section 2.2).
const (
	TagTrain = "train"
	TagDev   = "dev"
	TagTest  = "test"
)

// SetMember is one candidate in a set payload: a KB id plus the token span
// [Start, End) it references in the range payload.
type SetMember struct {
	ID    string `json:"id"`
	Start int    `json:"-"`
	End   int    `json:"-"`
}

// setMemberJSON is the wire form matching the paper ("range": [start, end]).
type setMemberJSON struct {
	ID    string `json:"id"`
	Range [2]int `json:"range"`
}

// PayloadValue is the value of one payload in one record. Exactly one field
// is populated depending on the payload's schema type; a payload may also be
// entirely null.
type PayloadValue struct {
	String string      // singleton
	Tokens []string    // sequence
	Set    []SetMember // set
	Null   bool
}

// LabelKind discriminates the Label union.
type LabelKind int

// Label kinds.
const (
	KindNone   LabelKind = iota
	KindClass            // multiclass over a singleton: one class name
	KindSeq              // multiclass over a sequence: one class per token
	KindBits             // bitvector: per token (or single row), list of set bits
	KindSelect           // select: index of the chosen set member
)

// Label is one source's annotation for one task on one record.
type Label struct {
	Kind   LabelKind
	Class  string
	Seq    []string
	Bits   [][]string
	Select int
}

// TaskLabels maps source name to that source's label.
type TaskLabels map[string]Label

// Record is one example in the data file.
type Record struct {
	ID       string
	Payloads map[string]PayloadValue
	Tasks    map[string]TaskLabels
	Tags     []string
	Slices   []string
}

// HasTag reports whether the record carries tag.
func (r *Record) HasTag(tag string) bool {
	for _, t := range r.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// InSlice reports whether the record belongs to slice name.
func (r *Record) InSlice(name string) bool {
	for _, s := range r.Slices {
		if s == name {
			return true
		}
	}
	return false
}

// AddTag appends tag if not already present.
func (r *Record) AddTag(tag string) {
	if !r.HasTag(tag) {
		r.Tags = append(r.Tags, tag)
	}
}

// AddSlice marks the record as a member of slice name (and tags it, since
// every slice is also a tag per Section 2.2).
func (r *Record) AddSlice(name string) {
	if !r.InSlice(name) {
		r.Slices = append(r.Slices, name)
	}
	r.AddTag(name)
}

// Label returns the label from source for task, if present.
func (r *Record) Label(task, source string) (Label, bool) {
	tl, ok := r.Tasks[task]
	if !ok {
		return Label{}, false
	}
	l, ok := tl[source]
	return l, ok
}

// Gold returns the curated gold label for task, if present.
func (r *Record) Gold(task string) (Label, bool) { return r.Label(task, GoldSource) }

// SetLabel records a label from source for task.
func (r *Record) SetLabel(task, source string, l Label) {
	if r.Tasks == nil {
		r.Tasks = make(map[string]TaskLabels)
	}
	if r.Tasks[task] == nil {
		r.Tasks[task] = make(TaskLabels)
	}
	r.Tasks[task][source] = l
}

// recordJSON is the wire format of one line of the data file.
type recordJSON struct {
	ID       string                                `json:"id,omitempty"`
	Payloads map[string]json.RawMessage            `json:"payloads"`
	Tasks    map[string]map[string]json.RawMessage `json:"tasks,omitempty"`
	Tags     []string                              `json:"tags,omitempty"`
	Slices   []string                              `json:"slices,omitempty"`
}

// ParseRecord decodes one JSON record, shaping payloads and labels according
// to sch.
func ParseRecord(data []byte, sch *schema.Schema) (*Record, error) {
	var rj recordJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return nil, fmt.Errorf("record: parse: %w", err)
	}
	r := &Record{
		ID:       rj.ID,
		Payloads: make(map[string]PayloadValue, len(rj.Payloads)),
		Tasks:    make(map[string]TaskLabels, len(rj.Tasks)),
		Tags:     rj.Tags,
		Slices:   rj.Slices,
	}
	for name, raw := range rj.Payloads {
		p, ok := sch.Payloads[name]
		if !ok {
			return nil, fmt.Errorf("record %s: payload %q not in schema", r.ID, name)
		}
		pv, err := parsePayloadValue(raw, p)
		if err != nil {
			return nil, fmt.Errorf("record %s: payload %q: %w", r.ID, name, err)
		}
		r.Payloads[name] = pv
	}
	tasks, err := ParseTasks(rj.Tasks, sch)
	if err != nil {
		return nil, fmt.Errorf("record %s: %w", r.ID, err)
	}
	for taskName, tl := range tasks {
		r.Tasks[taskName] = tl
	}
	return r, nil
}

// ParseTasks decodes multi-source task supervision in wire form against sch.
// This is the half of ParseRecord that streaming ingestion needs when
// payloads arrive separately via ParsePayloads: ingested records can carry
// labels (weak sources, crowd corrections) for later fine-tuning without a
// marshal round trip.
func ParseTasks(tasks map[string]map[string]json.RawMessage, sch *schema.Schema) (map[string]TaskLabels, error) {
	out := make(map[string]TaskLabels, len(tasks))
	for taskName, sources := range tasks {
		t, ok := sch.Tasks[taskName]
		if !ok {
			return nil, fmt.Errorf("task %q not in schema", taskName)
		}
		tl := make(TaskLabels, len(sources))
		for src, raw := range sources {
			l, err := parseLabel(raw, t, sch)
			if err != nil {
				return nil, fmt.Errorf("task %q source %q: %w", taskName, src, err)
			}
			tl[src] = l
		}
		out[taskName] = tl
	}
	return out, nil
}

// ParsePayloads builds a record directly from already-decoded payload
// values, shaping them against sch. This is the serving path: the HTTP
// handler's JSON decode feeds straight in, with no re-encode round trip.
// The record carries payloads only (no tasks, tags, or slices).
func ParsePayloads(payloads map[string]json.RawMessage, sch *schema.Schema) (*Record, error) {
	r := &Record{Payloads: make(map[string]PayloadValue, len(payloads))}
	for name, raw := range payloads {
		p, ok := sch.Payloads[name]
		if !ok {
			return nil, fmt.Errorf("record: payload %q not in schema", name)
		}
		pv, err := parsePayloadValue(raw, p)
		if err != nil {
			return nil, fmt.Errorf("record: payload %q: %w", name, err)
		}
		r.Payloads[name] = pv
	}
	return r, nil
}

func parsePayloadValue(raw json.RawMessage, p *schema.Payload) (PayloadValue, error) {
	if string(raw) == "null" {
		return PayloadValue{Null: true}, nil
	}
	switch p.Type {
	case schema.Singleton:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return PayloadValue{}, fmt.Errorf("singleton wants string: %w", err)
		}
		return PayloadValue{String: s}, nil
	case schema.Sequence:
		var toks []string
		if err := json.Unmarshal(raw, &toks); err != nil {
			return PayloadValue{}, fmt.Errorf("sequence wants string array: %w", err)
		}
		if len(toks) > p.MaxLength {
			toks = toks[:p.MaxLength] // truncate overlong sequences
		}
		return PayloadValue{Tokens: toks}, nil
	case schema.Set:
		// Paper-style map {"0": {...}, "1": {...}} or plain array.
		var asMap map[string]setMemberJSON
		if err := json.Unmarshal(raw, &asMap); err == nil {
			keys := make([]int, 0, len(asMap))
			byKey := make(map[int]setMemberJSON, len(asMap))
			for k, v := range asMap {
				i, err := strconv.Atoi(k)
				if err != nil {
					return PayloadValue{}, fmt.Errorf("set key %q not an index", k)
				}
				keys = append(keys, i)
				byKey[i] = v
			}
			sort.Ints(keys)
			members := make([]SetMember, 0, len(keys))
			for _, k := range keys {
				m := byKey[k]
				members = append(members, SetMember{ID: m.ID, Start: m.Range[0], End: m.Range[1]})
			}
			return PayloadValue{Set: members}, nil
		}
		var asArr []setMemberJSON
		if err := json.Unmarshal(raw, &asArr); err != nil {
			return PayloadValue{}, fmt.Errorf("set wants map or array of members: %w", err)
		}
		members := make([]SetMember, 0, len(asArr))
		for _, m := range asArr {
			members = append(members, SetMember{ID: m.ID, Start: m.Range[0], End: m.Range[1]})
		}
		return PayloadValue{Set: members}, nil
	}
	return PayloadValue{}, fmt.Errorf("unknown payload type %q", p.Type)
}

func parseLabel(raw json.RawMessage, t *schema.Task, sch *schema.Schema) (Label, error) {
	gran := sch.Granularity(t)
	switch t.Type {
	case schema.Multiclass:
		if gran == schema.PerExample {
			var c string
			if err := json.Unmarshal(raw, &c); err != nil {
				return Label{}, fmt.Errorf("multiclass singleton wants string: %w", err)
			}
			return Label{Kind: KindClass, Class: c}, nil
		}
		var seq []string
		if err := json.Unmarshal(raw, &seq); err != nil {
			return Label{}, fmt.Errorf("multiclass sequence wants string array: %w", err)
		}
		return Label{Kind: KindSeq, Seq: seq}, nil
	case schema.Bitvector:
		if gran == schema.PerExample {
			var bits []string
			if err := json.Unmarshal(raw, &bits); err != nil {
				return Label{}, fmt.Errorf("bitvector singleton wants string array: %w", err)
			}
			return Label{Kind: KindBits, Bits: [][]string{bits}}, nil
		}
		var rows [][]string
		if err := json.Unmarshal(raw, &rows); err != nil {
			return Label{}, fmt.Errorf("bitvector sequence wants array of string arrays: %w", err)
		}
		return Label{Kind: KindBits, Bits: rows}, nil
	case schema.Select:
		var idx int
		if err := json.Unmarshal(raw, &idx); err != nil {
			return Label{}, fmt.Errorf("select wants candidate index: %w", err)
		}
		return Label{Kind: KindSelect, Select: idx}, nil
	}
	return Label{}, fmt.Errorf("unknown task type %q", t.Type)
}

// MarshalRecord renders r as one JSON line matching the paper's wire format.
func MarshalRecord(r *Record, sch *schema.Schema) ([]byte, error) {
	rj := recordJSON{
		ID:       r.ID,
		Payloads: make(map[string]json.RawMessage, len(r.Payloads)),
		Tags:     r.Tags,
		Slices:   r.Slices,
	}
	for name, pv := range r.Payloads {
		p, ok := sch.Payloads[name]
		if !ok {
			return nil, fmt.Errorf("record %s: payload %q not in schema", r.ID, name)
		}
		raw, err := marshalPayloadValue(pv, p)
		if err != nil {
			return nil, err
		}
		rj.Payloads[name] = raw
	}
	if len(r.Tasks) > 0 {
		rj.Tasks = make(map[string]map[string]json.RawMessage, len(r.Tasks))
		for taskName, sources := range r.Tasks {
			m := make(map[string]json.RawMessage, len(sources))
			for src, l := range sources {
				raw, err := marshalLabel(l)
				if err != nil {
					return nil, fmt.Errorf("record %s: task %q source %q: %w", r.ID, taskName, src, err)
				}
				m[src] = raw
			}
			rj.Tasks[taskName] = m
		}
	}
	return json.Marshal(rj)
}

func marshalPayloadValue(pv PayloadValue, p *schema.Payload) (json.RawMessage, error) {
	if pv.Null {
		return json.RawMessage("null"), nil
	}
	switch p.Type {
	case schema.Singleton:
		return json.Marshal(pv.String)
	case schema.Sequence:
		return json.Marshal(pv.Tokens)
	case schema.Set:
		m := make(map[string]setMemberJSON, len(pv.Set))
		for i, s := range pv.Set {
			m[strconv.Itoa(i)] = setMemberJSON{ID: s.ID, Range: [2]int{s.Start, s.End}}
		}
		return json.Marshal(m)
	}
	return nil, fmt.Errorf("unknown payload type %q", p.Type)
}

func marshalLabel(l Label) (json.RawMessage, error) {
	switch l.Kind {
	case KindClass:
		return json.Marshal(l.Class)
	case KindSeq:
		return json.Marshal(l.Seq)
	case KindBits:
		if len(l.Bits) == 1 {
			// Singleton bitvector round-trips as a flat list.
			return json.Marshal(l.Bits[0])
		}
		return json.Marshal(l.Bits)
	case KindSelect:
		return json.Marshal(l.Select)
	}
	return nil, fmt.Errorf("cannot marshal label of kind %d", l.Kind)
}

// Validate checks r against sch: payload shapes, span bounds, label class
// membership, select indices in range.
func Validate(r *Record, sch *schema.Schema) error {
	for name, pv := range r.Payloads {
		p, ok := sch.Payloads[name]
		if !ok {
			return fmt.Errorf("record %s: payload %q not in schema", r.ID, name)
		}
		if pv.Null {
			continue
		}
		if p.Type == schema.Set {
			rangeLen := -1
			if rp, ok := r.Payloads[p.Range]; ok && !rp.Null {
				rangeLen = len(rp.Tokens)
			}
			for i, m := range pv.Set {
				if m.Start < 0 || m.End < m.Start {
					return fmt.Errorf("record %s: payload %q member %d: bad span [%d,%d)", r.ID, name, i, m.Start, m.End)
				}
				if rangeLen >= 0 && m.End > rangeLen {
					return fmt.Errorf("record %s: payload %q member %d: span end %d > %d tokens", r.ID, name, i, m.End, rangeLen)
				}
			}
		}
	}
	for taskName, sources := range r.Tasks {
		t, ok := sch.Tasks[taskName]
		if !ok {
			return fmt.Errorf("record %s: task %q not in schema", r.ID, taskName)
		}
		for src, l := range sources {
			if err := validateLabel(r, l, t, sch); err != nil {
				return fmt.Errorf("record %s: task %q source %q: %w", r.ID, taskName, src, err)
			}
		}
	}
	return nil
}

func validateLabel(r *Record, l Label, t *schema.Task, sch *schema.Schema) error {
	gran := sch.Granularity(t)
	tokenCount := -1
	if p := sch.Payloads[t.Payload]; p != nil && p.Type == schema.Sequence {
		if pv, ok := r.Payloads[t.Payload]; ok && !pv.Null {
			tokenCount = len(pv.Tokens)
		}
	}
	switch t.Type {
	case schema.Multiclass:
		if gran == schema.PerExample {
			if l.Kind != KindClass {
				return fmt.Errorf("want class label, got kind %d", l.Kind)
			}
			if t.ClassIndex(l.Class) < 0 {
				return fmt.Errorf("unknown class %q", l.Class)
			}
			return nil
		}
		if l.Kind != KindSeq {
			return fmt.Errorf("want per-token labels, got kind %d", l.Kind)
		}
		if tokenCount >= 0 && len(l.Seq) != tokenCount {
			return fmt.Errorf("label length %d != %d tokens", len(l.Seq), tokenCount)
		}
		for i, c := range l.Seq {
			if c != "" && t.ClassIndex(c) < 0 {
				return fmt.Errorf("token %d: unknown class %q", i, c)
			}
		}
		return nil
	case schema.Bitvector:
		if l.Kind != KindBits {
			return fmt.Errorf("want bitvector label, got kind %d", l.Kind)
		}
		if gran == schema.PerToken && tokenCount >= 0 && len(l.Bits) != tokenCount {
			return fmt.Errorf("label rows %d != %d tokens", len(l.Bits), tokenCount)
		}
		for i, row := range l.Bits {
			for _, b := range row {
				if t.ClassIndex(b) < 0 {
					return fmt.Errorf("row %d: unknown bit %q", i, b)
				}
			}
		}
		return nil
	case schema.Select:
		if l.Kind != KindSelect {
			return fmt.Errorf("want select label, got kind %d", l.Kind)
		}
		if pv, ok := r.Payloads[t.Payload]; ok && !pv.Null {
			if l.Select < 0 || l.Select >= len(pv.Set) {
				return fmt.Errorf("select index %d out of range [0,%d)", l.Select, len(pv.Set))
			}
		}
		return nil
	}
	return fmt.Errorf("unknown task type %q", t.Type)
}

// Dataset is an in-memory collection of records under one schema.
type Dataset struct {
	Schema  *schema.Schema
	Records []*Record
}

// Load reads a JSONL data file.
func Load(path string, sch *schema.Schema) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	defer f.Close()
	return LoadReader(f, sch)
}

// LoadReader reads JSONL records from r.
func LoadReader(r io.Reader, sch *schema.Schema) (*Dataset, error) {
	ds := &Dataset{Schema: sch}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		rec, err := ParseRecord(text, sch)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if err := Validate(rec, sch); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		ds.Records = append(ds.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("record: scan: %w", err)
	}
	return ds, nil
}

// Save writes the dataset as JSONL to path.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("record: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for _, rec := range d.Records {
		data, err := MarshalRecord(rec, d.Schema)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return fmt.Errorf("record: write: %w", err)
		}
	}
	return w.Flush()
}

// WithTag returns the records carrying tag, preserving order.
func (d *Dataset) WithTag(tag string) []*Record {
	var out []*Record
	for _, r := range d.Records {
		if r.HasTag(tag) {
			out = append(out, r)
		}
	}
	return out
}

// InSlice returns the records belonging to the named slice.
func (d *Dataset) InSlice(name string) []*Record {
	var out []*Record
	for _, r := range d.Records {
		if r.InSlice(name) {
			out = append(out, r)
		}
	}
	return out
}

// Tags returns all distinct tags in the dataset, sorted.
func (d *Dataset) Tags() []string {
	seen := map[string]bool{}
	for _, r := range d.Records {
		for _, t := range r.Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// SliceNames returns all distinct slice names, sorted.
func (d *Dataset) SliceNames() []string {
	seen := map[string]bool{}
	for _, r := range d.Records {
		for _, s := range r.Slices {
			seen[s] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Sources returns all distinct supervision source names (excluding gold),
// sorted.
func (d *Dataset) Sources() []string {
	seen := map[string]bool{}
	for _, r := range d.Records {
		for _, tl := range r.Tasks {
			for src := range tl {
				if src != GoldSource {
					seen[src] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SplitTags assigns the default train/dev/test tags deterministically by a
// hash of record index under seed, with the given fractions (test gets the
// remainder). Records that already carry one of the three tags keep it.
func (d *Dataset) SplitTags(trainFrac, devFrac float64, seed int64) {
	if trainFrac < 0 || devFrac < 0 || trainFrac+devFrac > 1 {
		panic("record: bad split fractions")
	}
	for i, r := range d.Records {
		if r.HasTag(TagTrain) || r.HasTag(TagDev) || r.HasTag(TagTest) {
			continue
		}
		u := splitHash(uint64(i), uint64(seed))
		switch {
		case u < trainFrac:
			r.AddTag(TagTrain)
		case u < trainFrac+devFrac:
			r.AddTag(TagDev)
		default:
			r.AddTag(TagTest)
		}
	}
}

// splitHash maps (i, seed) to a uniform [0,1) value (splitmix64 finaliser).
func splitHash(i, seed uint64) float64 {
	z := i + seed*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
