package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/record"
	"repro/internal/schema"
)

// Example is one generated query with full ground truth (the generator's
// internal view; BuildDataset converts it to a data-file record where gold
// is only an evaluation source).
type Example struct {
	Tokens []string
	POS    []string   // gold POS per token
	Types  [][]string // gold entity-type bits per token
	Intent string

	Candidates []record.SetMember
	GoldArg    int // index into Candidates

	EntityID     string
	MentionStart int
	MentionEnd   int

	// Ambiguous: the mention alias names >= 2 KB entities.
	Ambiguous bool
	// PriorBreaking: the gold candidate is not the popularity-prior argmax
	// (the hard core of the disambiguation slice).
	PriorBreaking bool
	// Augmented marks examples produced by a data-augmentation policy
	// rather than sampled traffic (lineage tracking).
	Augmented bool
}

// Query returns the detokenised query string.
func (e *Example) Query() string { return strings.Join(e.Tokens, " ") }

// GenConfig controls query generation.
type GenConfig struct {
	Seed int64
	N    int
	// AmbiguousRate is the probability of using an ambiguous alias when the
	// sampled intent admits one (default 0.35).
	AmbiguousRate float64
	// PriorBreakRate is, among ambiguous mentions, the probability that the
	// gold reading breaks the popularity prior (default 0.3).
	PriorBreakRate float64
	// DistractorRate is the probability of injecting one spurious candidate
	// (candidate-generator noise; default 0.2).
	DistractorRate float64
	// KB defaults to DefaultKB().
	KB *KB
}

func (c GenConfig) withDefaults() GenConfig {
	if c.AmbiguousRate == 0 {
		c.AmbiguousRate = 0.35
	}
	if c.PriorBreakRate == 0 {
		c.PriorBreakRate = 0.3
	}
	if c.DistractorRate == 0 {
		c.DistractorRate = 0.2
	}
	if c.KB == nil {
		c.KB = DefaultKB()
	}
	return c
}

// entityChoice is a (entity, alias) pair an intent can use.
type entityChoice struct {
	ent   *Entity
	alias string
}

// Generator produces examples deterministically from a seed.
type Generator struct {
	cfg GenConfig
	rng *rand.Rand
	kb  *KB
	// per intent: ambiguous prior-winning, ambiguous prior-breaking, and
	// unambiguous (entity, alias) pools.
	priorWin   map[string][]entityChoice
	priorBreak map[string][]entityChoice
	unambig    map[string][]entityChoice
}

// NewGenerator builds the per-intent sampling pools.
func NewGenerator(cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		kb:         cfg.KB,
		priorWin:   map[string][]entityChoice{},
		priorBreak: map[string][]entityChoice{},
		unambig:    map[string][]entityChoice{},
	}
	for _, spec := range IntentSpecs {
		for _, e := range g.kb.Entities {
			ok := false
			for _, t := range spec.ArgTypes {
				if e.HasType(t) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
			for _, alias := range e.Aliases {
				sharing := g.kb.ByAlias(alias)
				ch := entityChoice{ent: e, alias: alias}
				switch {
				case len(sharing) < 2:
					g.unambig[spec.Name] = append(g.unambig[spec.Name], ch)
				case sharing[0] == e:
					g.priorWin[spec.Name] = append(g.priorWin[spec.Name], ch)
				default:
					g.priorBreak[spec.Name] = append(g.priorBreak[spec.Name], ch)
				}
			}
		}
	}
	return g
}

// Generate produces cfg.N examples.
func Generate(cfg GenConfig) []*Example {
	g := NewGenerator(cfg)
	out := make([]*Example, 0, g.cfg.N)
	for i := 0; i < g.cfg.N; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Next generates one example.
func (g *Generator) Next() *Example {
	spec := &IntentSpecs[g.rng.Intn(len(IntentSpecs))]
	tmpl := spec.Templates[g.rng.Intn(len(spec.Templates))]

	// Choose the gold (entity, alias) pair.
	var pools []entityChoice
	useAmbig := g.rng.Float64() < g.cfg.AmbiguousRate &&
		(len(g.priorWin[spec.Name]) > 0 || len(g.priorBreak[spec.Name]) > 0)
	if useAmbig {
		if g.rng.Float64() < g.cfg.PriorBreakRate && len(g.priorBreak[spec.Name]) > 0 {
			pools = g.priorBreak[spec.Name]
		} else if len(g.priorWin[spec.Name]) > 0 {
			pools = g.priorWin[spec.Name]
		} else {
			pools = g.priorBreak[spec.Name]
		}
	} else {
		pools = g.unambig[spec.Name]
		if len(pools) == 0 {
			pools = append(g.priorWin[spec.Name], g.priorBreak[spec.Name]...)
		}
	}
	choice := pools[g.rng.Intn(len(pools))]

	return g.build(spec, tmpl, choice)
}

// build assembles the example for a fixed (intent, template, entity/alias).
func (g *Generator) build(spec *IntentSpec, tmpl Template, choice entityChoice) *Example {
	aliasToks := strings.Fields(choice.alias)
	ex := &Example{Intent: spec.Name, EntityID: choice.ent.ID}
	for i, w := range tmpl.Words {
		if w == "{E}" {
			ex.MentionStart = len(ex.Tokens)
			for _, at := range aliasToks {
				ex.Tokens = append(ex.Tokens, at)
				if choice.ent.HasType(TypeFood) {
					ex.POS = append(ex.POS, POSNoun)
				} else {
					ex.POS = append(ex.POS, POSPropn)
				}
			}
			ex.MentionEnd = len(ex.Tokens)
			continue
		}
		ex.Tokens = append(ex.Tokens, w)
		ex.POS = append(ex.POS, tmpl.Tags[i])
	}

	// Gold entity-type bits: mention tokens carry the gold entity's types.
	ex.Types = make([][]string, len(ex.Tokens))
	for i := range ex.Types {
		ex.Types[i] = []string{}
	}
	for i := ex.MentionStart; i < ex.MentionEnd; i++ {
		ex.Types[i] = append([]string(nil), choice.ent.Types...)
	}

	// Candidate set: alias matches over the mention span and all subspans,
	// plus optional distractor noise.
	ex.Candidates, ex.GoldArg = g.candidates(ex, choice)
	ex.Ambiguous = len(g.kb.ByAlias(choice.alias)) >= 2

	// Prior-breaking: gold is not the max-popularity candidate.
	best, bestPop := -1, -1.0
	for i, c := range ex.Candidates {
		if e := g.kb.Get(c.ID); e != nil && e.Popularity > bestPop {
			best, bestPop = i, e.Popularity
		}
	}
	ex.PriorBreaking = best != ex.GoldArg
	return ex
}

// candidates enumerates entity candidates for the mention: every KB entity
// whose alias exactly matches the mention span or one of its subspans, plus
// (with DistractorRate) one spurious candidate elsewhere in the query.
func (g *Generator) candidates(ex *Example, choice entityChoice) ([]record.SetMember, int) {
	type cand struct {
		m record.SetMember
	}
	var cands []cand
	seen := map[string]bool{}
	addMatches := func(start, end int) {
		text := strings.Join(ex.Tokens[start:end], " ")
		for _, e := range g.kb.ByAlias(text) {
			key := fmt.Sprintf("%s@%d:%d", e.ID, start, end)
			if seen[key] {
				continue
			}
			seen[key] = true
			cands = append(cands, cand{m: record.SetMember{ID: e.ID, Start: start, End: end}})
		}
	}
	for start := ex.MentionStart; start < ex.MentionEnd; start++ {
		for end := start + 1; end <= ex.MentionEnd; end++ {
			addMatches(start, end)
		}
	}
	// Distractor: a random entity attached to a random non-mention token.
	if g.rng.Float64() < g.cfg.DistractorRate && ex.MentionStart > 0 {
		pos := g.rng.Intn(ex.MentionStart)
		e := g.kb.Entities[g.rng.Intn(len(g.kb.Entities))]
		key := fmt.Sprintf("%s@%d:%d", e.ID, pos, pos+1)
		if !seen[key] {
			seen[key] = true
			cands = append(cands, cand{m: record.SetMember{ID: e.ID, Start: pos, End: pos + 1}})
		}
	}
	// Deterministic shuffle so gold position carries no signal.
	g.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	goldArg := -1
	members := make([]record.SetMember, len(cands))
	for i, c := range cands {
		members[i] = c.m
		if c.m.ID == choice.ent.ID && c.m.Start == ex.MentionStart && c.m.End == ex.MentionEnd {
			goldArg = i
		}
	}
	if goldArg < 0 {
		panic("workload: gold candidate missing from candidate set")
	}
	return members, goldArg
}

// InSliceNutrition reports nutrition-slice membership. Like a production
// slice function, it looks only at the input.
func InSliceNutrition(tokens []string) bool {
	for _, t := range tokens {
		if t == "calories" {
			return true
		}
	}
	return false
}

// InSliceDisambig reports disambiguation-slice membership: some mention span
// has two or more candidate entities (input-computable from the candidate
// set).
func InSliceDisambig(cands []record.SetMember) bool {
	bySpan := map[[2]int]int{}
	for _, c := range cands {
		bySpan[[2]int{c.Start, c.End}]++
	}
	spans := 0
	for _, n := range bySpan {
		if n >= 1 {
			spans++
		}
	}
	// Multiple alias readings at overlapping spans, or one span with
	// multiple entities.
	for _, n := range bySpan {
		if n >= 2 {
			return true
		}
	}
	return spans >= 2
}

// InSliceLongQuery reports long-query slice membership.
func InSliceLongQuery(tokens []string) bool { return len(tokens) >= 7 }

// ToRecord converts an example to a data-file record with gold labels under
// the reserved gold source and slice/tag annotations. Weak sources are added
// separately (see ApplySources).
func (ex *Example) ToRecord(id string) *record.Record {
	r := &record.Record{
		ID: id,
		Payloads: map[string]record.PayloadValue{
			"tokens":   {Tokens: ex.Tokens},
			"query":    {String: ex.Query()},
			"entities": {Set: ex.Candidates},
		},
	}
	r.SetLabel(TaskPOS, record.GoldSource, record.Label{Kind: record.KindSeq, Seq: ex.POS})
	r.SetLabel(TaskEntityType, record.GoldSource, record.Label{Kind: record.KindBits, Bits: ex.Types})
	r.SetLabel(TaskIntent, record.GoldSource, record.Label{Kind: record.KindClass, Class: ex.Intent})
	r.SetLabel(TaskIntentArg, record.GoldSource, record.Label{Kind: record.KindSelect, Select: ex.GoldArg})
	if InSliceNutrition(ex.Tokens) {
		r.AddSlice(SliceNutrition)
	}
	if InSliceDisambig(ex.Candidates) {
		r.AddSlice(SliceDisambig)
	}
	if InSliceLongQuery(ex.Tokens) {
		r.AddSlice(SliceLongQuery)
	}
	if ex.PriorBreaking {
		r.AddTag("priorbreak") // diagnostic tag (not a slice)
	}
	if ex.Augmented {
		r.AddTag("augment") // lineage: created by an augmentation policy
	}
	return r
}

// FactoidSchema parses the workload schema (panics on programmer error —
// the constant is tested).
func FactoidSchema() *schema.Schema {
	s, err := schema.Parse([]byte(SchemaJSON))
	if err != nil {
		panic("workload: bad embedded schema: " + err.Error())
	}
	return s
}

// Corpus generates n unlabeled tokenised queries for embedding pretraining
// (the raw-text resource the paper's pretrained models consume).
func Corpus(n int, seed int64) [][]string {
	g := NewGenerator(GenConfig{Seed: seed, N: n})
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		out[i] = g.Next().Tokens
	}
	return out
}

// Vocabulary returns every token the generator can emit, sorted: template
// literals plus alias tokens.
func Vocabulary(kb *KB) []string {
	seen := map[string]bool{}
	for _, spec := range IntentSpecs {
		for _, tmpl := range spec.Templates {
			for _, w := range tmpl.Words {
				if w != "{E}" {
					seen[w] = true
				}
			}
		}
	}
	for _, e := range kb.Entities {
		for _, a := range e.Aliases {
			for _, t := range strings.Fields(a) {
				seen[t] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
