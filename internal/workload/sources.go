package workload

import (
	"math/rand"

	"repro/internal/record"
)

// sharedKB backs the heuristic sources that need KB lookups (gazetteer,
// popularity prior). The KB is immutable, so sharing is safe.
var sharedKB = DefaultKB()

// Source is one weak supervision source: given an example it may emit a
// label for its task or abstain. Sources receive the generator's ground
// truth only to simulate annotators of known accuracy; heuristic sources
// look exclusively at the input, exactly like production labeling functions.
type Source interface {
	Name() string
	Task() string
	// Label returns the source's label and whether it voted. rng drives the
	// source's stochastic behaviour (noise, coverage) deterministically.
	Label(ex *Example, rng *rand.Rand) (record.Label, bool)
}

// ---------------------------------------------------------------------------
// Intent sources.

// KeywordIntentLF maps trigger tokens to intents by scanning left to right.
// It is deliberately imperfect, the way real keyword LFs are:
//
//   - "many" fires before "calories", so long-form calorie questions
//     ("how many calories in a …") are systematically mislabeled Population;
//   - it has no trigger for "height", "age" or "population", so the long
//     forms of those intents get no label (coverage gap).
type KeywordIntentLF struct{}

// Name implements Source.
func (KeywordIntentLF) Name() string { return "kwintent" }

// Task implements Source.
func (KeywordIntentLF) Task() string { return TaskIntent }

var keywordTriggers = []struct {
	token  string
	intent string
}{
	{"tall", IntentHeight},
	{"old", IntentAge},
	{"capital", IntentCapital},
	{"many", IntentPopulation}, // the engineered systematic error
	{"people", IntentPopulation},
	{"calories", IntentCalories},
	{"married", IntentSpouse},
	{"spouse", IntentSpouse},
	{"weather", IntentWeather},
	{"anthem", IntentAnthem},
}

// Label implements Source.
func (KeywordIntentLF) Label(ex *Example, _ *rand.Rand) (record.Label, bool) {
	for _, trig := range keywordTriggers {
		for _, tok := range ex.Tokens {
			if tok == trig.token {
				return record.Label{Kind: record.KindClass, Class: trig.intent}, true
			}
		}
	}
	return record.Label{}, false
}

// TemplateIntentLF memorises the first (long-form) template of each intent
// and matches the query prefix against it; it abstains on short forms.
// A small iid noise rate models template drift.
type TemplateIntentLF struct {
	Noise float64 // probability of emitting a uniformly random intent
}

// Name implements Source.
func (TemplateIntentLF) Name() string { return "templ" }

// Task implements Source.
func (TemplateIntentLF) Task() string { return TaskIntent }

// Label implements Source.
func (s TemplateIntentLF) Label(ex *Example, rng *rand.Rand) (record.Label, bool) {
	for _, spec := range IntentSpecs {
		tmpl := spec.Templates[0]
		if matchesTemplatePrefix(ex.Tokens, tmpl) {
			intent := spec.Name
			if rng.Float64() < s.Noise {
				intent = Intents[rng.Intn(len(Intents))]
			}
			return record.Label{Kind: record.KindClass, Class: intent}, true
		}
	}
	return record.Label{}, false
}

// matchesTemplatePrefix checks that the literal prefix (tokens before {E})
// matches the query.
func matchesTemplatePrefix(tokens []string, tmpl Template) bool {
	for i, w := range tmpl.Words {
		if w == "{E}" {
			return true
		}
		if i >= len(tokens) || tokens[i] != w {
			return false
		}
	}
	return true
}

// CrowdSource simulates human annotators: gold with a given accuracy and
// coverage. It implements the paper's "annotator labels filtered and altered
// by programmatic quality control".
type CrowdSource struct {
	SourceName string
	ForTask    string
	Accuracy   float64
	Coverage   float64
}

// Name implements Source.
func (c CrowdSource) Name() string { return c.SourceName }

// Task implements Source.
func (c CrowdSource) Task() string { return c.ForTask }

// Label implements Source.
func (c CrowdSource) Label(ex *Example, rng *rand.Rand) (record.Label, bool) {
	if ex.Augmented {
		return record.Label{}, false // annotators never see synthetic data
	}
	if rng.Float64() >= c.Coverage {
		return record.Label{}, false
	}
	switch c.ForTask {
	case TaskIntent:
		intent := ex.Intent
		if rng.Float64() >= c.Accuracy {
			intent = Intents[rng.Intn(len(Intents))]
		}
		return record.Label{Kind: record.KindClass, Class: intent}, true
	case TaskIntentArg:
		arg := ex.GoldArg
		if rng.Float64() >= c.Accuracy && len(ex.Candidates) > 1 {
			wrong := rng.Intn(len(ex.Candidates) - 1)
			if wrong >= arg {
				wrong++
			}
			arg = wrong
		}
		return record.Label{Kind: record.KindSelect, Select: arg}, true
	case TaskPOS:
		seq := make([]string, len(ex.POS))
		for i, tag := range ex.POS {
			if rng.Float64() < c.Accuracy {
				seq[i] = tag
			} else {
				seq[i] = POSTags[rng.Intn(len(POSTags))]
			}
		}
		return record.Label{Kind: record.KindSeq, Seq: seq}, true
	case TaskEntityType:
		bits := make([][]string, len(ex.Types))
		for i, row := range ex.Types {
			var out []string
			for _, b := range row {
				if rng.Float64() < c.Accuracy {
					out = append(out, b)
				}
			}
			if rng.Float64() >= c.Accuracy && len(out) == 0 && rng.Float64() < 0.1 {
				out = append(out, EntityTypes[rng.Intn(len(EntityTypes))])
			}
			if out == nil {
				out = []string{}
			}
			bits[i] = out
		}
		return record.Label{Kind: record.KindBits, Bits: bits}, true
	}
	return record.Label{}, false
}

// ---------------------------------------------------------------------------
// POS sources.

// RuleTagger tags function words from a fixed dictionary and defaults
// everything else to NOUN — systematically wrong on PROPN entity tokens
// (the classic cheap-tagger failure mode).
type RuleTagger struct{}

// Name implements Source.
func (RuleTagger) Name() string { return "ruletag" }

// Task implements Source.
func (RuleTagger) Task() string { return TaskPOS }

var functionWordTags = map[string]string{
	"how": POSAdv, "tall": POSAdj, "old": POSAdj, "many": POSAdj,
	"is": POSVerb, "live": POSVerb,
	"the": POSDet, "a": POSDet,
	"of": POSAdp, "in": POSAdp, "to": POSAdp,
	"what": POSPron, "who": POSPron,
	"national": POSAdj, "married": POSAdj,
	"capital": POSNoun, "height": POSNoun, "age": POSNoun, "people": POSNoun,
	"population": POSNoun, "calories": POSNoun, "spouse": POSNoun,
	"weather": POSNoun, "anthem": POSNoun,
}

// Label implements Source.
func (RuleTagger) Label(ex *Example, _ *rand.Rand) (record.Label, bool) {
	seq := make([]string, len(ex.Tokens))
	for i, tok := range ex.Tokens {
		if tag, ok := functionWordTags[tok]; ok {
			seq[i] = tag
		} else {
			seq[i] = POSNoun
		}
	}
	return record.Label{Kind: record.KindSeq, Seq: seq}, true
}

// NoisyTagger is gold POS with iid corruption — the "spacy" source in the
// paper's example record.
type NoisyTagger struct {
	SourceName string
	Noise      float64
	Coverage   float64
}

// Name implements Source.
func (s NoisyTagger) Name() string { return s.SourceName }

// Task implements Source.
func (NoisyTagger) Task() string { return TaskPOS }

// Label implements Source.
func (s NoisyTagger) Label(ex *Example, rng *rand.Rand) (record.Label, bool) {
	if s.Coverage > 0 && rng.Float64() >= s.Coverage {
		return record.Label{}, false
	}
	seq := make([]string, len(ex.POS))
	for i, tag := range ex.POS {
		if rng.Float64() < s.Noise {
			seq[i] = POSTags[rng.Intn(len(POSTags))]
		} else {
			seq[i] = tag
		}
	}
	return record.Label{Kind: record.KindSeq, Seq: seq}, true
}

// ---------------------------------------------------------------------------
// EntityType sources.

// GazetteerTyper emits, for every token covered by a candidate span, the
// union of types over all candidate entities covering it — the "eproj"
// source of the paper's example. On ambiguous mentions it systematically
// over-labels (e.g. "turkey" gets both country and food).
type GazetteerTyper struct{}

// Name implements Source.
func (GazetteerTyper) Name() string { return "eproj" }

// Task implements Source.
func (GazetteerTyper) Task() string { return TaskEntityType }

// Label implements Source.
func (GazetteerTyper) Label(ex *Example, _ *rand.Rand) (record.Label, bool) {
	kb := sharedKB
	bits := make([][]string, len(ex.Tokens))
	for i := range bits {
		bits[i] = []string{}
	}
	for _, c := range ex.Candidates {
		e := kb.Get(c.ID)
		if e == nil {
			continue
		}
		for pos := c.Start; pos < c.End && pos < len(bits); pos++ {
			for _, t := range e.Types {
				if !containsStr(bits[pos], t) {
					bits[pos] = append(bits[pos], t)
				}
			}
		}
	}
	return record.Label{Kind: record.KindBits, Bits: bits}, true
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// IntentArg sources.

// PopularityPrior picks the candidate with the highest KB popularity — the
// production prior that is wrong by construction on the prior-breaking
// disambiguation slice.
type PopularityPrior struct{}

// Name implements Source.
func (PopularityPrior) Name() string { return "pop" }

// Task implements Source.
func (PopularityPrior) Task() string { return TaskIntentArg }

// Label implements Source.
func (PopularityPrior) Label(ex *Example, _ *rand.Rand) (record.Label, bool) {
	if len(ex.Candidates) == 0 {
		return record.Label{}, false
	}
	kb := sharedKB
	best, bestPop := 0, -1.0
	for i, c := range ex.Candidates {
		if e := kb.Get(c.ID); e != nil && e.Popularity > bestPop {
			best, bestPop = i, e.Popularity
		}
	}
	return record.Label{Kind: record.KindSelect, Select: best}, true
}

// LongestSpan picks the candidate with the widest span (ties: latest
// start, then candidate order) — a decent heuristic because the true
// mention is usually the longest alias match, and in question frames the
// argument follows the function words, so later spans beat spurious early
// matches.
type LongestSpan struct{}

// Name implements Source.
func (LongestSpan) Name() string { return "longspan" }

// Task implements Source.
func (LongestSpan) Task() string { return TaskIntentArg }

// Label implements Source.
func (LongestSpan) Label(ex *Example, _ *rand.Rand) (record.Label, bool) {
	if len(ex.Candidates) == 0 {
		return record.Label{}, false
	}
	best := 0
	for i, c := range ex.Candidates {
		b := ex.Candidates[best]
		w, bw := c.End-c.Start, b.End-b.Start
		if w > bw || (w == bw && c.Start > b.Start) {
			best = i
		}
	}
	return record.Label{Kind: record.KindSelect, Select: best}, true
}

// TypeMatchLF links entities by intent/type compatibility: it guesses the
// intent with the keyword LF, then picks the most popular candidate whose
// entity types satisfy the intent's argument constraint. It abstains when no
// keyword fires or no candidate is compatible. Crucially it inherits the
// keyword LF's systematic error ("how many calories in a turkey" is guessed
// Population, so the country is chosen) — correlated LF noise, exactly what
// the label model must cope with in production.
type TypeMatchLF struct{}

// Name implements Source.
func (TypeMatchLF) Name() string { return "typematch" }

// Task implements Source.
func (TypeMatchLF) Task() string { return TaskIntentArg }

// Label implements Source.
func (TypeMatchLF) Label(ex *Example, rng *rand.Rand) (record.Label, bool) {
	if len(ex.Candidates) == 0 {
		return record.Label{}, false
	}
	kw, ok := KeywordIntentLF{}.Label(ex, rng)
	if !ok {
		return record.Label{}, false
	}
	spec := intentSpec(kw.Class)
	if spec == nil {
		return record.Label{}, false
	}
	best, bestPop := -1, -1.0
	for i, c := range ex.Candidates {
		e := sharedKB.Get(c.ID)
		if e == nil {
			continue
		}
		compatible := false
		for _, at := range spec.ArgTypes {
			if e.HasType(at) {
				compatible = true
				break
			}
		}
		if compatible && e.Popularity > bestPop {
			best, bestPop = i, e.Popularity
		}
	}
	if best < 0 {
		return record.Label{}, false
	}
	return record.Label{Kind: record.KindSelect, Select: best}, true
}

// ---------------------------------------------------------------------------
// Source sets.

// DefaultSources returns the standard weak-source battery plus simulated
// crowd sources with the given coverage on Intent and IntentArg (crowdCov 0
// disables crowd entirely — the paper's "no traditional training data"
// regime).
func DefaultSources(crowdCov float64) []Source {
	srcs := []Source{
		KeywordIntentLF{},
		TemplateIntentLF{Noise: 0.05},
		RuleTagger{},
		NoisyTagger{SourceName: "spacy", Noise: 0.05, Coverage: 0.95},
		// A second statistical tagger breaks the two-source identifiability
		// tie against ruletag's systematic NOUN default on entity tokens.
		NoisyTagger{SourceName: "udtag", Noise: 0.12, Coverage: 0.8},
		GazetteerTyper{},
		// Programmatic type curation: imperfect but unbiased, countering
		// the gazetteer's systematic union over-labeling.
		CrowdSource{SourceName: "typist", ForTask: TaskEntityType, Accuracy: 0.85, Coverage: 0.6},
		PopularityPrior{},
		LongestSpan{},
		TypeMatchLF{},
	}
	if crowdCov > 0 {
		srcs = append(srcs,
			CrowdSource{SourceName: "crowd", ForTask: TaskIntent, Accuracy: 0.95, Coverage: crowdCov},
			CrowdSource{SourceName: "crowdarg", ForTask: TaskIntentArg, Accuracy: 0.95, Coverage: crowdCov},
		)
	}
	return srcs
}

// WeakSourceNames lists sources counted as weak supervision (everything
// except simulated annotators) — used for the Figure 3 weak-supervision
// share.
func WeakSourceNames() map[string]bool {
	return map[string]bool{
		"kwintent": true, "templ": true, "ruletag": true, "spacy": true,
		"udtag": true, "eproj": true, "typist": true, "pop": true,
		"longspan": true, "typematch": true, "augment": true,
	}
}

// ApplySources runs every source over every (example, record) pair, labeling
// only records tagged train or dev (test supervision stays gold-only, as in
// production: curated test sets). The rng must be seeded by the caller.
func ApplySources(examples []*Example, recs []*record.Record, sources []Source, rng *rand.Rand) {
	for i, ex := range examples {
		r := recs[i]
		if r.HasTag(record.TagTest) {
			continue
		}
		for _, s := range sources {
			if l, ok := s.Label(ex, rng); ok {
				r.SetLabel(s.Task(), s.Name(), l)
			}
		}
	}
}

// WeakFraction computes the share of non-gold labels coming from weak
// sources (vs. simulated annotators) across the dataset — the
// "Amount of Weak Supervision" column of Figure 3.
func WeakFraction(ds *record.Dataset) float64 {
	weak := WeakSourceNames()
	var w, total float64
	for _, r := range ds.Records {
		for _, tl := range r.Tasks {
			for src := range tl {
				if src == record.GoldSource {
					continue
				}
				total++
				if weak[src] {
					w++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return w / total
}
