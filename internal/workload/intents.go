package workload

// POS tag set (the POS task's classes).
const (
	POSNoun  = "NOUN"
	POSPropn = "PROPN"
	POSVerb  = "VERB"
	POSAdj   = "ADJ"
	POSAdv   = "ADV"
	POSAdp   = "ADP"
	POSDet   = "DET"
	POSPron  = "PRON"
)

// POSTags lists the POS classes in canonical order.
var POSTags = []string{POSNoun, POSPropn, POSVerb, POSAdj, POSAdv, POSAdp, POSDet, POSPron}

// Intent names (the Intent task's classes).
const (
	IntentHeight     = "Height"
	IntentAge        = "Age"
	IntentCapital    = "Capital"
	IntentPopulation = "Population"
	IntentCalories   = "Calories"
	IntentSpouse     = "Spouse"
	IntentWeather    = "Weather"
	IntentAnthem     = "Anthem"
)

// Intents lists the intent classes in canonical order.
var Intents = []string{IntentHeight, IntentAge, IntentCapital, IntentPopulation, IntentCalories, IntentSpouse, IntentWeather, IntentAnthem}

// Template is one surface pattern for an intent. Words contains literal
// tokens with "{E}" marking the entity slot; Tags is the gold POS for each
// literal token (the slot's tags come from the entity).
type Template struct {
	Words []string
	Tags  []string
}

// IntentSpec couples an intent with its templates and the entity types it
// accepts as its argument.
type IntentSpec struct {
	Name      string
	Templates []Template
	ArgTypes  []string // gold entity must have one of these types
}

// IntentSpecs defines the workload grammar. Note the engineered confusions:
// Calories and Population share the "how many" prefix, Weather and Capital
// share the "what is the X of/in" frame — these are what the weak keyword
// labeler gets wrong and the trained model must resolve.
var IntentSpecs = []IntentSpec{
	{
		Name: IntentHeight,
		Templates: []Template{
			{Words: []string{"how", "tall", "is", "{E}"}, Tags: []string{POSAdv, POSAdj, POSVerb}},
			{Words: []string{"what", "is", "the", "height", "of", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypePerson},
	},
	{
		Name: IntentAge,
		Templates: []Template{
			{Words: []string{"how", "old", "is", "{E}"}, Tags: []string{POSAdv, POSAdj, POSVerb}},
			{Words: []string{"what", "is", "the", "age", "of", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypePerson},
	},
	{
		Name: IntentCapital,
		Templates: []Template{
			{Words: []string{"what", "is", "the", "capital", "of", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSNoun, POSAdp}},
			{Words: []string{"capital", "of", "{E}"}, Tags: []string{POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypeCountry, TypeState},
	},
	{
		Name: IntentPopulation,
		Templates: []Template{
			{Words: []string{"how", "many", "people", "live", "in", "{E}"}, Tags: []string{POSAdv, POSAdj, POSNoun, POSVerb, POSAdp}},
			{Words: []string{"what", "is", "the", "population", "of", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypeCountry, TypeCity, TypeState},
	},
	{
		Name: IntentCalories,
		Templates: []Template{
			{Words: []string{"how", "many", "calories", "in", "a", "{E}"}, Tags: []string{POSAdv, POSAdj, POSNoun, POSAdp, POSDet}},
			{Words: []string{"calories", "in", "{E}"}, Tags: []string{POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypeFood},
	},
	{
		Name: IntentSpouse,
		Templates: []Template{
			{Words: []string{"who", "is", "married", "to", "{E}"}, Tags: []string{POSPron, POSVerb, POSAdj, POSAdp}},
			{Words: []string{"who", "is", "the", "spouse", "of", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypePerson},
	},
	{
		Name: IntentWeather,
		Templates: []Template{
			{Words: []string{"what", "is", "the", "weather", "in", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSNoun, POSAdp}},
			{Words: []string{"weather", "in", "{E}"}, Tags: []string{POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypeCity, TypeState},
	},
	{
		Name: IntentAnthem,
		Templates: []Template{
			{Words: []string{"what", "is", "the", "national", "anthem", "of", "{E}"}, Tags: []string{POSPron, POSVerb, POSDet, POSAdj, POSNoun, POSAdp}},
			{Words: []string{"anthem", "of", "{E}"}, Tags: []string{POSNoun, POSAdp}},
		},
		ArgTypes: []string{TypeCountry},
	},
}

// intentSpec returns the spec for name (nil if unknown).
func intentSpec(name string) *IntentSpec {
	for i := range IntentSpecs {
		if IntentSpecs[i].Name == name {
			return &IntentSpecs[i]
		}
	}
	return nil
}

// MaxQueryLen is the schema's tokens max_length: the longest template (7
// literal tokens) plus the longest alias (2 tokens) with margin.
const MaxQueryLen = 12

// SchemaJSON is the factoid application's Overton schema — the running
// example of the paper (Figure 2a) instantiated for this workload.
const SchemaJSON = `{
  "payloads": {
    "tokens":   {"type": "sequence", "max_length": 12},
    "query":    {"type": "singleton", "base": ["tokens"]},
    "entities": {"type": "set", "range": "tokens"}
  },
  "tasks": {
    "POS": {
      "payload": "tokens", "type": "multiclass",
      "classes": ["NOUN", "PROPN", "VERB", "ADJ", "ADV", "ADP", "DET", "PRON"]
    },
    "EntityType": {
      "payload": "tokens", "type": "bitvector",
      "classes": ["person", "location", "country", "city", "state", "food", "org"]
    },
    "Intent": {
      "payload": "query", "type": "multiclass",
      "classes": ["Height", "Age", "Capital", "Population", "Calories", "Spouse", "Weather", "Anthem"]
    },
    "IntentArg": {"payload": "entities", "type": "select"}
  }
}`

// Task names of the factoid schema.
const (
	TaskPOS        = "POS"
	TaskEntityType = "EntityType"
	TaskIntent     = "Intent"
	TaskIntentArg  = "IntentArg"
)

// Slice names defined by the workload's engineer (Section 2.2: slices are
// heuristic, input-computable subsets an engineer cares about).
const (
	SliceNutrition = "nutrition" // nutrition-related queries
	SliceDisambig  = "disambig"  // queries with an ambiguous entity mention
	SliceLongQuery = "longquery" // long-form phrasings
)
