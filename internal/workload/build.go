package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/record"
)

// BuildConfig controls dataset assembly from generated examples.
type BuildConfig struct {
	Seed      int64
	Sources   []Source
	TrainFrac float64 // default 0.7
	DevFrac   float64 // default 0.1
}

func (c BuildConfig) withDefaults() BuildConfig {
	if c.TrainFrac == 0 {
		c.TrainFrac = 0.7
	}
	if c.DevFrac == 0 {
		c.DevFrac = 0.1
	}
	return c
}

// BuildDataset converts examples into a data-file dataset: gold labels on
// every record (evaluation only), default train/dev/test tags, slice tags,
// and weak supervision applied to train/dev records.
func BuildDataset(examples []*Example, cfg BuildConfig) *record.Dataset {
	cfg = cfg.withDefaults()
	sch := FactoidSchema()
	ds := &record.Dataset{Schema: sch}
	recs := make([]*record.Record, len(examples))
	for i, ex := range examples {
		recs[i] = ex.ToRecord(fmt.Sprintf("q%06d", i))
	}
	ds.Records = recs
	ds.SplitTags(cfg.TrainFrac, cfg.DevFrac, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	ApplySources(examples, recs, cfg.Sources, rng)
	return ds
}

// StandardDataset generates a ready-to-train dataset in one call: n
// examples, the default source battery with the given crowd coverage, and
// default splits. This is the entry point examples and tests use.
func StandardDataset(n int, seed int64, crowdCov float64) *record.Dataset {
	examples := Generate(GenConfig{Seed: seed, N: n})
	return BuildDataset(examples, BuildConfig{
		Seed:    seed,
		Sources: DefaultSources(crowdCov),
	})
}

// ResourcePreset configures one product row of Figure 3: how much data and
// annotator budget the team has, and how strong its previous production
// system was.
type ResourcePreset struct {
	Name       string
	Resourcing string // "High", "Medium", "Low"
	// TrainN is the number of generated examples (before split).
	TrainN int
	// CrowdCoverage on Intent/IntentArg; higher = more traditional
	// supervision, lower weak-supervision share.
	CrowdCoverage float64
	// AugmentRate adds augmented examples (a weak source).
	AugmentRate float64
	// ExtraNoise degrades the weak LFs (smaller teams run noisier LFs).
	ExtraNoise float64
	// Seed for the preset's generator.
	Seed int64
}

// ResourcePresets mirrors the four products of Figure 3. Coverage values
// are calibrated so the weak-supervision share lands near the paper's
// 80/96/98/99 percent column.
func ResourcePresets() []ResourcePreset {
	return []ResourcePreset{
		{Name: "product-A", Resourcing: "High", TrainN: 2400, CrowdCoverage: 0.60, AugmentRate: 0.15, ExtraNoise: 0, Seed: 101},
		{Name: "product-B", Resourcing: "Medium", TrainN: 1600, CrowdCoverage: 0.10, AugmentRate: 0.15, ExtraNoise: 0, Seed: 202},
		{Name: "product-C", Resourcing: "Medium", TrainN: 1200, CrowdCoverage: 0.05, AugmentRate: 0.10, ExtraNoise: 0.03, Seed: 303},
		{Name: "product-D", Resourcing: "Low", TrainN: 700, CrowdCoverage: 0.02, AugmentRate: 0, ExtraNoise: 0.08, Seed: 404},
	}
}

// BuildPreset materialises a preset into a dataset (with augmentation
// applied as extra weakly-labeled examples).
func BuildPreset(p ResourcePreset) *record.Dataset {
	examples := Generate(GenConfig{Seed: p.Seed, N: p.TrainN})
	if p.AugmentRate > 0 {
		aug := AugmentAliasSwap(examples, p.AugmentRate, nil, p.Seed+7)
		examples = append(examples, aug...)
	}
	sources := []Source{
		KeywordIntentLF{},
		TemplateIntentLF{Noise: 0.05 + p.ExtraNoise},
		RuleTagger{},
		NoisyTagger{SourceName: "spacy", Noise: 0.05 + p.ExtraNoise, Coverage: 0.95},
		NoisyTagger{SourceName: "udtag", Noise: 0.12 + p.ExtraNoise, Coverage: 0.8},
		GazetteerTyper{},
		CrowdSource{SourceName: "typist", ForTask: TaskEntityType, Accuracy: 0.85 - p.ExtraNoise, Coverage: 0.6},
		PopularityPrior{},
		LongestSpan{},
		TypeMatchLF{},
	}
	if p.CrowdCoverage > 0 {
		sources = append(sources,
			CrowdSource{SourceName: "crowd", ForTask: TaskIntent, Accuracy: 0.95, Coverage: p.CrowdCoverage},
			CrowdSource{SourceName: "crowdarg", ForTask: TaskIntentArg, Accuracy: 0.95, Coverage: p.CrowdCoverage},
		)
	}
	if p.AugmentRate > 0 {
		sources = append(sources, AugmentSource{ForTask: TaskIntent}, AugmentSource{ForTask: TaskIntentArg})
	}
	return BuildDataset(examples, BuildConfig{Seed: p.Seed, Sources: sources})
}
