package workload

import (
	"math/rand"
	"strings"

	"repro/internal/record"
)

// AugmentAliasSwap produces new examples by re-rendering existing ones with
// a different alias of the same gold entity (e.g. "obama" -> "barack
// obama"). All gold structure — POS, types, candidates, gold argument — is
// recomputed for the new surface form, which is exactly what makes alias
// swap a safe augmentation policy (Ratner et al. 2017 learn such policies;
// here the engineer supplies one). Labels carry the "augment" source so
// lineage is tracked.
func AugmentAliasSwap(examples []*Example, rate float64, kb *KB, seed int64) []*Example {
	if kb == nil {
		kb = sharedKB
	}
	rng := rand.New(rand.NewSource(seed))
	g := NewGenerator(GenConfig{Seed: seed, KB: kb})
	var out []*Example
	for _, ex := range examples {
		if rng.Float64() >= rate {
			continue
		}
		e := kb.Get(ex.EntityID)
		if e == nil || len(e.Aliases) < 2 {
			continue
		}
		cur := strings.Join(ex.Tokens[ex.MentionStart:ex.MentionEnd], " ")
		var alts []string
		for _, a := range e.Aliases {
			if a != cur {
				alts = append(alts, a)
			}
		}
		if len(alts) == 0 {
			continue
		}
		alias := alts[rng.Intn(len(alts))]
		spec := intentSpec(ex.Intent)
		if spec == nil {
			continue
		}
		tmpl, ok := templateOf(spec, ex)
		if !ok {
			continue
		}
		na := g.build(spec, tmpl, entityChoice{ent: e, alias: alias})
		na.Augmented = true
		out = append(out, na)
	}
	return out
}

// templateOf recovers which template produced ex by matching the literal
// prefix and suffix around the mention.
func templateOf(spec *IntentSpec, ex *Example) (Template, bool) {
	for _, tmpl := range spec.Templates {
		lits := 0
		for _, w := range tmpl.Words {
			if w != "{E}" {
				lits++
			}
		}
		if lits != len(ex.Tokens)-(ex.MentionEnd-ex.MentionStart) {
			continue
		}
		if matchesTemplatePrefix(ex.Tokens, tmpl) {
			return tmpl, true
		}
	}
	return Template{}, false
}

// AugmentSource labels augmented records with their own gold (the policy
// knows the truth of what it generated) under the "augment" source name, so
// the label model can learn how trustworthy augmentation is.
type AugmentSource struct {
	ForTask string
}

// Name implements Source.
func (AugmentSource) Name() string { return "augment" }

// Task implements Source.
func (a AugmentSource) Task() string { return a.ForTask }

// Label implements Source.
func (a AugmentSource) Label(ex *Example, _ *rand.Rand) (record.Label, bool) {
	if !ex.Augmented {
		return record.Label{}, false // only labels data it generated
	}
	switch a.ForTask {
	case TaskIntent:
		return record.Label{Kind: record.KindClass, Class: ex.Intent}, true
	case TaskIntentArg:
		return record.Label{Kind: record.KindSelect, Select: ex.GoldArg}, true
	case TaskPOS:
		return record.Label{Kind: record.KindSeq, Seq: append([]string(nil), ex.POS...)}, true
	case TaskEntityType:
		bits := make([][]string, len(ex.Types))
		for i, row := range ex.Types {
			bits[i] = append([]string(nil), row...)
		}
		return record.Label{Kind: record.KindBits, Bits: bits}, true
	}
	return record.Label{}, false
}
