// Package workload implements the synthetic factoid-question-answering
// universe used to exercise Overton end to end: an entity knowledge base
// with controllable ambiguity, intent templates with part-of-speech ground
// truth, candidate-entity generation, weak supervision sources (heuristic
// labeling functions, gazetteers, simulated annotators), data augmentation,
// slice definitions, and the resource-level presets behind the paper's
// evaluation (Figure 3).
//
// The paper's workload is production Siri traffic, which we cannot ship;
// this generator reproduces its *structure* — multi-task records over
// tokens/query/entities payloads with conflicting multi-source supervision —
// with known ground truth so that relative quality claims are auditable
// (see DESIGN.md, substitution table).
package workload

import "sort"

// Entity types (the EntityType task's bitvector classes).
const (
	TypePerson   = "person"
	TypeLocation = "location"
	TypeCountry  = "country"
	TypeCity     = "city"
	TypeState    = "state"
	TypeFood     = "food"
	TypeOrg      = "org"
)

// EntityTypes lists the bitvector classes in canonical order.
var EntityTypes = []string{TypePerson, TypeLocation, TypeCountry, TypeCity, TypeState, TypeFood, TypeOrg}

// Entity is one knowledge-base entry.
type Entity struct {
	ID         string
	Aliases    []string // lower-case surface forms, space-separated tokens
	Types      []string
	Popularity float64 // candidate-prior strength in [0,1]
}

// HasType reports whether the entity carries type t.
func (e *Entity) HasType(t string) bool {
	for _, x := range e.Types {
		if x == t {
			return true
		}
	}
	return false
}

// KB is the entity knowledge base with alias lookup.
type KB struct {
	Entities []*Entity
	byID     map[string]*Entity
	byAlias  map[string][]*Entity // alias -> entities sharing it, by descending popularity
}

// NewKB indexes entities.
func NewKB(entities []*Entity) *KB {
	kb := &KB{
		Entities: entities,
		byID:     make(map[string]*Entity, len(entities)),
		byAlias:  make(map[string][]*Entity),
	}
	for _, e := range entities {
		kb.byID[e.ID] = e
		for _, a := range e.Aliases {
			kb.byAlias[a] = append(kb.byAlias[a], e)
		}
	}
	for _, list := range kb.byAlias {
		sort.Slice(list, func(i, j int) bool {
			if list[i].Popularity != list[j].Popularity {
				return list[i].Popularity > list[j].Popularity
			}
			return list[i].ID < list[j].ID
		})
	}
	return kb
}

// Get returns the entity with the given id, or nil.
func (kb *KB) Get(id string) *Entity { return kb.byID[id] }

// ByAlias returns the entities sharing alias, most popular first.
func (kb *KB) ByAlias(alias string) []*Entity { return kb.byAlias[alias] }

// WithType returns entities carrying type t, in KB order.
func (kb *KB) WithType(t string) []*Entity {
	var out []*Entity
	for _, e := range kb.Entities {
		if e.HasType(t) {
			out = append(out, e)
		}
	}
	return out
}

// AmbiguousAliases returns aliases shared by two or more entities, sorted.
func (kb *KB) AmbiguousAliases() []string {
	var out []string
	for a, es := range kb.byAlias {
		if len(es) >= 2 {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// DefaultKB builds the standard factoid knowledge base. Ambiguity is
// deliberate: "washington", "georgia", "turkey", "jordan", "paris", "apple"
// and "amazon" each name multiple entities with a clear popularity prior, so
// prior-breaking readings form the complex-disambiguation slice.
func DefaultKB() *KB {
	return NewKB([]*Entity{
		// People.
		{ID: "George_Washington", Aliases: []string{"george washington", "washington"}, Types: []string{TypePerson}, Popularity: 0.55},
		{ID: "Barack_Obama", Aliases: []string{"barack obama", "obama"}, Types: []string{TypePerson}, Popularity: 0.9},
		{ID: "Michael_Jordan", Aliases: []string{"michael jordan", "jordan"}, Types: []string{TypePerson}, Popularity: 0.9},
		{ID: "Paris_Hilton", Aliases: []string{"paris hilton"}, Types: []string{TypePerson}, Popularity: 0.4},
		{ID: "LeBron_James", Aliases: []string{"lebron james", "lebron"}, Types: []string{TypePerson}, Popularity: 0.85},
		{ID: "Taylor_Swift", Aliases: []string{"taylor swift"}, Types: []string{TypePerson}, Popularity: 0.9},
		{ID: "Albert_Einstein", Aliases: []string{"albert einstein", "einstein"}, Types: []string{TypePerson}, Popularity: 0.85},
		{ID: "Serena_Williams", Aliases: []string{"serena williams", "serena"}, Types: []string{TypePerson}, Popularity: 0.8},
		// Countries.
		{ID: "United_States", Aliases: []string{"united states", "america"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.95},
		{ID: "Georgia_(country)", Aliases: []string{"georgia"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.45},
		{ID: "Turkey_(country)", Aliases: []string{"turkey"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.85},
		{ID: "Jordan_(country)", Aliases: []string{"jordan"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.6},
		{ID: "France", Aliases: []string{"france"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.9},
		{ID: "China", Aliases: []string{"china"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.9},
		{ID: "India", Aliases: []string{"india"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.9},
		{ID: "Japan", Aliases: []string{"japan"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.9},
		{ID: "Egypt", Aliases: []string{"egypt"}, Types: []string{TypeCountry, TypeLocation}, Popularity: 0.85},
		// Cities.
		{ID: "Washington_DC", Aliases: []string{"washington dc", "washington"}, Types: []string{TypeCity, TypeLocation}, Popularity: 0.9},
		{ID: "Paris", Aliases: []string{"paris"}, Types: []string{TypeCity, TypeLocation}, Popularity: 0.95},
		{ID: "London", Aliases: []string{"london"}, Types: []string{TypeCity, TypeLocation}, Popularity: 0.9},
		{ID: "Tokyo", Aliases: []string{"tokyo"}, Types: []string{TypeCity, TypeLocation}, Popularity: 0.9},
		{ID: "Cairo", Aliases: []string{"cairo"}, Types: []string{TypeCity, TypeLocation}, Popularity: 0.8},
		{ID: "Phoenix", Aliases: []string{"phoenix"}, Types: []string{TypeCity, TypeLocation}, Popularity: 0.75},
		// States.
		{ID: "Georgia_(US_state)", Aliases: []string{"georgia"}, Types: []string{TypeState, TypeLocation}, Popularity: 0.8},
		{ID: "Washington_(state)", Aliases: []string{"washington state", "washington"}, Types: []string{TypeState, TypeLocation}, Popularity: 0.35},
		{ID: "Texas", Aliases: []string{"texas"}, Types: []string{TypeState, TypeLocation}, Popularity: 0.85},
		{ID: "Florida", Aliases: []string{"florida"}, Types: []string{TypeState, TypeLocation}, Popularity: 0.85},
		// Foods.
		{ID: "Turkey_(food)", Aliases: []string{"turkey"}, Types: []string{TypeFood}, Popularity: 0.5},
		{ID: "Apple_(food)", Aliases: []string{"apple"}, Types: []string{TypeFood}, Popularity: 0.55},
		{ID: "Orange_(food)", Aliases: []string{"orange"}, Types: []string{TypeFood}, Popularity: 0.7},
		{ID: "Rice", Aliases: []string{"rice"}, Types: []string{TypeFood}, Popularity: 0.7},
		{ID: "Pizza", Aliases: []string{"pizza"}, Types: []string{TypeFood}, Popularity: 0.8},
		{ID: "Salmon", Aliases: []string{"salmon"}, Types: []string{TypeFood}, Popularity: 0.7},
		{ID: "Broccoli", Aliases: []string{"broccoli"}, Types: []string{TypeFood}, Popularity: 0.6},
		{ID: "Chicken_(food)", Aliases: []string{"chicken"}, Types: []string{TypeFood}, Popularity: 0.75},
		// Organisations.
		{ID: "Apple_Inc", Aliases: []string{"apple"}, Types: []string{TypeOrg}, Popularity: 0.9},
		{ID: "Amazon_Inc", Aliases: []string{"amazon"}, Types: []string{TypeOrg}, Popularity: 0.9},
		{ID: "Nike", Aliases: []string{"nike"}, Types: []string{TypeOrg}, Popularity: 0.8},
		// Geography odds and ends.
		{ID: "Amazon_River", Aliases: []string{"amazon river", "amazon"}, Types: []string{TypeLocation}, Popularity: 0.5},
	})
}
