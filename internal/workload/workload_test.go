package workload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/record"
	"repro/internal/schema"
)

func TestDefaultKBIndexes(t *testing.T) {
	kb := DefaultKB()
	if kb.Get("Paris") == nil || kb.Get("Nope") != nil {
		t.Fatalf("Get wrong")
	}
	// Ambiguous aliases exist and are sorted by popularity.
	wash := kb.ByAlias("washington")
	if len(wash) < 3 {
		t.Fatalf("washington should be 3-way ambiguous, got %d", len(wash))
	}
	for i := 1; i < len(wash); i++ {
		if wash[i].Popularity > wash[i-1].Popularity {
			t.Fatalf("ByAlias not sorted by popularity")
		}
	}
	if wash[0].ID != "Washington_DC" {
		t.Fatalf("washington prior winner = %s", wash[0].ID)
	}
	amb := kb.AmbiguousAliases()
	found := map[string]bool{}
	for _, a := range amb {
		found[a] = true
	}
	for _, want := range []string{"washington", "georgia", "turkey", "jordan", "apple", "amazon"} {
		if !found[want] {
			t.Errorf("alias %q not ambiguous", want)
		}
	}
	foods := kb.WithType(TypeFood)
	if len(foods) < 5 {
		t.Fatalf("too few foods: %d", len(foods))
	}
}

func TestFactoidSchemaValid(t *testing.T) {
	sch := FactoidSchema()
	if len(sch.Tasks) != 4 {
		t.Fatalf("schema tasks: %d", len(sch.Tasks))
	}
	if sch.Granularity(sch.Tasks[TaskIntent]) != schema.PerExample {
		t.Fatalf("Intent granularity wrong")
	}
	if sch.Granularity(sch.Tasks[TaskIntentArg]) != schema.PerSet {
		t.Fatalf("IntentArg granularity wrong")
	}
}

func TestIntentSpecsWellFormed(t *testing.T) {
	for _, spec := range IntentSpecs {
		if len(spec.Templates) == 0 || len(spec.ArgTypes) == 0 {
			t.Fatalf("spec %s incomplete", spec.Name)
		}
		for _, tmpl := range spec.Templates {
			var slots, lits int
			for _, w := range tmpl.Words {
				if w == "{E}" {
					slots++
				} else {
					lits++
				}
			}
			if slots != 1 {
				t.Fatalf("%s template must have exactly one slot", spec.Name)
			}
			if lits != len(tmpl.Tags) {
				t.Fatalf("%s template tags mismatch: %d literals %d tags", spec.Name, lits, len(tmpl.Tags))
			}
		}
		// Every intent has compatible entities in the KB.
		kb := DefaultKB()
		var n int
		for _, at := range spec.ArgTypes {
			n += len(kb.WithType(at))
		}
		if n == 0 {
			t.Fatalf("%s has no compatible entities", spec.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Seed: 5, N: 50})
	b := Generate(GenConfig{Seed: 5, N: 50})
	for i := range a {
		if a[i].Query() != b[i].Query() || a[i].Intent != b[i].Intent || a[i].GoldArg != b[i].GoldArg {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := Generate(GenConfig{Seed: 6, N: 50})
	same := 0
	for i := range a {
		if a[i].Query() == c[i].Query() {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical data")
	}
}

func TestGeneratedExamplesWellFormed(t *testing.T) {
	examples := Generate(GenConfig{Seed: 9, N: 300})
	kb := DefaultKB()
	for i, ex := range examples {
		if len(ex.Tokens) == 0 || len(ex.Tokens) > MaxQueryLen {
			t.Fatalf("ex %d: bad token count %d", i, len(ex.Tokens))
		}
		if len(ex.POS) != len(ex.Tokens) || len(ex.Types) != len(ex.Tokens) {
			t.Fatalf("ex %d: label lengths wrong", i)
		}
		if ex.GoldArg < 0 || ex.GoldArg >= len(ex.Candidates) {
			t.Fatalf("ex %d: gold arg out of range", i)
		}
		gold := ex.Candidates[ex.GoldArg]
		if gold.ID != ex.EntityID {
			t.Fatalf("ex %d: gold candidate id mismatch", i)
		}
		if gold.Start != ex.MentionStart || gold.End != ex.MentionEnd {
			t.Fatalf("ex %d: gold span mismatch", i)
		}
		// Mention tokens carry entity types; non-mention tokens don't.
		for p := range ex.Tokens {
			inMention := p >= ex.MentionStart && p < ex.MentionEnd
			if inMention && len(ex.Types[p]) == 0 {
				t.Fatalf("ex %d: mention token %d has no types", i, p)
			}
			if !inMention && len(ex.Types[p]) != 0 {
				t.Fatalf("ex %d: non-mention token %d has types", i, p)
			}
		}
		// Intent's arg-type constraint holds.
		spec := intentSpec(ex.Intent)
		e := kb.Get(ex.EntityID)
		ok := false
		for _, at := range spec.ArgTypes {
			if e.HasType(at) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("ex %d: entity %s incompatible with intent %s", i, ex.EntityID, ex.Intent)
		}
		// Candidate spans are within bounds.
		for _, c := range ex.Candidates {
			if c.Start < 0 || c.End > len(ex.Tokens) || c.Start >= c.End {
				t.Fatalf("ex %d: bad candidate span", i)
			}
		}
	}
}

func TestAmbiguityAndPriorBreakRates(t *testing.T) {
	examples := Generate(GenConfig{Seed: 11, N: 2000, AmbiguousRate: 0.4, PriorBreakRate: 0.35})
	var amb, pb int
	for _, ex := range examples {
		if ex.Ambiguous {
			amb++
		}
		if ex.PriorBreaking {
			pb++
		}
	}
	ambFrac := float64(amb) / float64(len(examples))
	if ambFrac < 0.2 || ambFrac > 0.6 {
		t.Fatalf("ambiguous fraction %.3f out of band", ambFrac)
	}
	if pb == 0 {
		t.Fatalf("no prior-breaking examples generated")
	}
	if pb >= amb+200 {
		t.Fatalf("prior-breaking (%d) should be smaller than ambiguous (%d)", pb, amb)
	}
}

func TestPriorBreakingMeansPopPriorWrong(t *testing.T) {
	examples := Generate(GenConfig{Seed: 13, N: 500})
	var checked int
	for _, ex := range examples {
		l, ok := PopularityPrior{}.Label(ex, nil)
		if !ok {
			continue
		}
		correct := l.Select == ex.GoldArg
		if ex.PriorBreaking && correct {
			t.Fatalf("prior-breaking example solved by popularity prior")
		}
		if !ex.PriorBreaking && !correct {
			t.Fatalf("non-prior-breaking example missed by popularity prior")
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("nothing checked")
	}
}

func TestSourceAccuracies(t *testing.T) {
	// Measure each source's empirical accuracy/coverage on a large sample;
	// they must be better than chance but imperfect (weak supervision).
	examples := Generate(GenConfig{Seed: 17, N: 2000})
	rng := rand.New(rand.NewSource(99))
	type stat struct{ correct, votes, n float64 }
	stats := map[string]*stat{}
	for _, src := range DefaultSources(0.3) {
		stats[src.Name()] = &stat{}
	}
	for _, ex := range examples {
		for _, src := range DefaultSources(0.3) {
			st := stats[src.Name()]
			st.n++
			l, ok := src.Label(ex, rng)
			if !ok {
				continue
			}
			st.votes++
			switch src.Task() {
			case TaskIntent:
				if l.Class == ex.Intent {
					st.correct++
				}
			case TaskIntentArg:
				if l.Select == ex.GoldArg {
					st.correct++
				}
			case TaskPOS:
				var c, tot float64
				for i := range ex.POS {
					tot++
					if l.Seq[i] == ex.POS[i] {
						c++
					}
				}
				st.correct += c / tot
			case TaskEntityType:
				var c, tot float64
				for i := range ex.Types {
					tot++
					if sameStringSet(l.Bits[i], ex.Types[i]) {
						c++
					}
				}
				st.correct += c / tot
			}
		}
	}
	checks := map[string][2]float64{ // name -> {min accuracy, max accuracy}
		"kwintent": {0.6, 0.95},
		"templ":    {0.85, 1.0},
		"ruletag":  {0.5, 0.95},
		"spacy":    {0.9, 1.0},
		"pop":      {0.5, 0.95},
		"longspan": {0.5, 1.0},
		"crowd":    {0.85, 1.0},
	}
	for name, band := range checks {
		st := stats[name]
		if st.votes == 0 {
			t.Fatalf("%s never voted", name)
		}
		acc := st.correct / st.votes
		if acc < band[0] || acc > band[1] {
			t.Errorf("%s accuracy %.3f outside [%.2f, %.2f]", name, acc, band[0], band[1])
		}
	}
	// Keyword LF must have a real coverage gap (missing triggers).
	if cov := stats["kwintent"].votes / stats["kwintent"].n; cov > 0.97 || cov < 0.5 {
		t.Errorf("kwintent coverage %.3f not in expected band", cov)
	}
	// Crowd coverage honours the knob.
	if cov := stats["crowd"].votes / stats["crowd"].n; cov < 0.2 || cov > 0.4 {
		t.Errorf("crowd coverage %.3f, want ~0.3", cov)
	}
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func TestKeywordLFSystematicError(t *testing.T) {
	// "how many calories in a X" must be mislabeled Population.
	g := NewGenerator(GenConfig{Seed: 1})
	spec := intentSpec(IntentCalories)
	ex := g.build(spec, spec.Templates[0], entityChoice{ent: DefaultKB().Get("Pizza"), alias: "pizza"})
	l, ok := KeywordIntentLF{}.Label(ex, nil)
	if !ok || l.Class != IntentPopulation {
		t.Fatalf("expected systematic Population mislabel, got %v ok=%v", l.Class, ok)
	}
	// Short form is labeled correctly ("calories" fires).
	ex2 := g.build(spec, spec.Templates[1], entityChoice{ent: DefaultKB().Get("Pizza"), alias: "pizza"})
	l2, ok2 := KeywordIntentLF{}.Label(ex2, nil)
	if !ok2 || l2.Class != IntentCalories {
		t.Fatalf("short calories form wrong: %v", l2.Class)
	}
}

func TestGazetteerOverLabelsAmbiguous(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 1})
	spec := intentSpec(IntentCalories)
	kb := DefaultKB()
	ex := g.build(spec, spec.Templates[1], entityChoice{ent: kb.Get("Turkey_(food)"), alias: "turkey"})
	l, _ := GazetteerTyper{}.Label(ex, nil)
	bits := l.Bits[ex.MentionStart]
	if !containsStr(bits, TypeFood) || !containsStr(bits, TypeCountry) {
		t.Fatalf("gazetteer should over-label turkey with food+country, got %v", bits)
	}
}

func TestToRecordValidatesAndTagsSlices(t *testing.T) {
	sch := FactoidSchema()
	examples := Generate(GenConfig{Seed: 21, N: 200})
	var nutrition, disambig int
	for i, ex := range examples {
		r := ex.ToRecord("x")
		if err := record.Validate(r, sch); err != nil {
			t.Fatalf("ex %d invalid: %v", i, err)
		}
		if ex.Intent == IntentCalories && !r.InSlice(SliceNutrition) {
			// every calories template contains the token "calories"
			t.Fatalf("calories query not in nutrition slice: %q", ex.Query())
		}
		if r.InSlice(SliceNutrition) {
			nutrition++
		}
		if r.InSlice(SliceDisambig) {
			disambig++
		}
		if ex.PriorBreaking && !r.InSlice(SliceDisambig) {
			t.Fatalf("prior-breaking example not in disambig slice")
		}
	}
	if nutrition == 0 || disambig == 0 {
		t.Fatalf("slices empty: nutrition=%d disambig=%d", nutrition, disambig)
	}
}

func TestBuildDatasetEndToEnd(t *testing.T) {
	ds := StandardDataset(300, 31, 0.2)
	if len(ds.Records) != 300 {
		t.Fatalf("record count %d", len(ds.Records))
	}
	train := ds.WithTag(record.TagTrain)
	test := ds.WithTag(record.TagTest)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("split empty: %d/%d", len(train), len(test))
	}
	// Most train records carry weak Intent supervision (some templates have
	// no LF coverage by design); every train record carries weak POS and
	// IntentArg labels (those sources have full coverage).
	var intentCovered int
	for _, r := range train {
		if len(r.Tasks[TaskIntent]) >= 2 { // gold + at least one source
			intentCovered++
		}
		if len(r.Tasks[TaskPOS]) < 2 || len(r.Tasks[TaskIntentArg]) < 2 {
			t.Fatalf("train record lacks full-coverage weak sources")
		}
	}
	if frac := float64(intentCovered) / float64(len(train)); frac < 0.6 {
		t.Fatalf("intent weak coverage %.3f too low", frac)
	}
	for _, r := range test {
		for task, tl := range r.Tasks {
			for src := range tl {
				if src != record.GoldSource {
					t.Fatalf("test record has non-gold label %s/%s", task, src)
				}
			}
		}
	}
	// Weak fraction: with crowd coverage 0.2 most labels are weak.
	wf := WeakFraction(ds)
	if wf < 0.7 || wf > 1 {
		t.Fatalf("weak fraction %.3f", wf)
	}
}

func TestWeakFractionTracksCrowdCoverage(t *testing.T) {
	low := WeakFraction(StandardDataset(400, 41, 0.02))
	high := WeakFraction(StandardDataset(400, 41, 0.8))
	if low <= high {
		t.Fatalf("weak fraction should fall with crowd coverage: low-crowd %.3f, high-crowd %.3f", low, high)
	}
	if low < 0.95 {
		t.Fatalf("near-zero crowd should give >95%% weak supervision, got %.3f", low)
	}
}

func TestAugmentAliasSwap(t *testing.T) {
	examples := Generate(GenConfig{Seed: 43, N: 400})
	aug := AugmentAliasSwap(examples, 0.5, nil, 44)
	if len(aug) == 0 {
		t.Fatalf("no augmented examples")
	}
	kb := DefaultKB()
	sch := FactoidSchema()
	for i, na := range aug {
		if !na.Augmented {
			t.Fatalf("aug %d not marked", i)
		}
		// Gold structure is internally consistent.
		if na.Candidates[na.GoldArg].ID != na.EntityID {
			t.Fatalf("aug %d: inconsistent gold", i)
		}
		if err := record.Validate(na.ToRecord("a"), sch); err != nil {
			t.Fatalf("aug %d invalid: %v", i, err)
		}
		_ = kb
	}
	// AugmentSource labels augmented examples only.
	src := AugmentSource{ForTask: TaskIntent}
	if _, ok := src.Label(examples[0], nil); ok {
		t.Fatalf("AugmentSource labeled organic data")
	}
	if l, ok := src.Label(aug[0], nil); !ok || l.Class != aug[0].Intent {
		t.Fatalf("AugmentSource wrong on augmented data")
	}
}

func TestCorpusAndVocabulary(t *testing.T) {
	corpus := Corpus(50, 51)
	if len(corpus) != 50 || len(corpus[0]) == 0 {
		t.Fatalf("corpus wrong")
	}
	vocab := Vocabulary(DefaultKB())
	if len(vocab) < 40 {
		t.Fatalf("vocabulary too small: %d", len(vocab))
	}
	inVocab := map[string]bool{}
	for _, w := range vocab {
		inVocab[w] = true
	}
	for _, sent := range corpus {
		for _, tok := range sent {
			if !inVocab[tok] {
				t.Fatalf("corpus token %q not in vocabulary", tok)
			}
		}
	}
	// Sorted.
	for i := 1; i < len(vocab); i++ {
		if vocab[i] < vocab[i-1] {
			t.Fatalf("vocabulary not sorted")
		}
	}
}

func TestResourcePresetsBuild(t *testing.T) {
	presets := ResourcePresets()
	if len(presets) != 4 {
		t.Fatalf("want 4 presets")
	}
	// Build the smallest preset end to end and check the weak fraction
	// direction: the low-resource preset must be almost entirely weak.
	low := presets[3]
	ds := BuildPreset(low)
	if wf := WeakFraction(ds); wf < 0.95 {
		t.Fatalf("low-resource preset weak fraction %.3f", wf)
	}
	high := presets[0]
	high.TrainN = 400 // shrink for test speed
	ds2 := BuildPreset(high)
	if wfHigh := WeakFraction(ds2); wfHigh >= 0.97 {
		t.Fatalf("high-resource preset should have materially more crowd labels (weak=%.3f)", wfHigh)
	}
}

func TestTemplateOfRecovery(t *testing.T) {
	g := NewGenerator(GenConfig{Seed: 61})
	for _, spec := range IntentSpecs {
		for ti, tmpl := range spec.Templates {
			kb := DefaultKB()
			var ent *Entity
			for _, e := range kb.Entities {
				for _, at := range spec.ArgTypes {
					if e.HasType(at) {
						ent = e
						break
					}
				}
				if ent != nil {
					break
				}
			}
			ex := g.build(&spec, tmpl, entityChoice{ent: ent, alias: ent.Aliases[0]})
			got, ok := templateOf(&spec, ex)
			if !ok {
				t.Fatalf("%s template %d not recovered", spec.Name, ti)
			}
			if strings.Join(got.Words, " ") != strings.Join(tmpl.Words, " ") {
				t.Fatalf("%s template %d mismatched", spec.Name, ti)
			}
		}
	}
}
