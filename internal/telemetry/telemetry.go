// Package telemetry is the structured observability plane behind the
// fleet: an asynchronous, bounded-buffer JSONL logger that records served
// traffic, shadow comparisons, admission sheds, and improvement-loop
// transitions as size-rotated line streams under a telemetry directory —
// the raw material the sliceql query engine (and any external JSONL
// tooling) aggregates into fine-grained slices.
//
// The emission contract is the serving path's: Emit never blocks and
// never returns an error. Events queue on a bounded channel consumed by
// one background writer goroutine; when the queue is full the event is
// dropped and counted, so a slow or failing disk degrades observability,
// never Predict latency. Per-stream emitted/written/dropped/error
// counters are readable at any time via Stats.
//
// Layout under the telemetry directory: one file set per stream, named
// <stream>-<seq>.jsonl with zero-padded sequence numbers, so a plain
// lexicographic sort is also chronological order. The highest-numbered
// file is active; when it crosses the rotation threshold the writer
// starts <seq+1> and deletes the oldest files past the retention bound.
// Lines are plain JSON (no CRC framing — unlike the fleet journal,
// telemetry is observability, not state): a torn tail left by a crash is
// handled twice over, once by the logger, which truncates a partial
// final line when it reopens a file for append (so new lines never merge
// into the fragment), and once by the query side, which isolates and
// counts undecodable lines instead of aborting the scan.
package telemetry

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Canonical stream names the deployment hooks emit into. Emit accepts
// any well-formed stream name; these are the ones the serving plane
// produces (and OPERATIONS.md documents).
const (
	// StreamPredict records one line per served (or failed-in-model)
	// predict request: latency, version, error flag, request tags, and
	// the predicted class per classification task.
	StreamPredict = "predict"
	// StreamShadow records one line per (mirrored request, task) shadow
	// comparison: agreement units, plus request-level shadow errors.
	StreamShadow = "shadow"
	// StreamAdmission records one line per shed request with its cause.
	StreamAdmission = "admission"
	// StreamLifecycle records improvement-loop transitions (retrain,
	// promote, rollback) and quarantine trips.
	StreamLifecycle = "lifecycle"
	// StreamRoute records one line per routed request at the cluster
	// router: replica chosen, attempts, failovers, latency, final code.
	StreamRoute = "route"
)

// Event is one telemetry record. Reserved top-level keys on the wire are
// "ts" (unix milliseconds), "stream", "dep", and "tags"; Fields are
// flattened next to them (a field using a reserved name is dropped).
type Event struct {
	// TS is the event time; the zero value is stamped at Emit.
	TS time.Time
	// Stream selects the file set ("predict", "shadow", ...). Must be
	// non-empty and contain only [a-z0-9_-]; anything else is dropped
	// (and counted against the pseudo-stream "invalid").
	Stream string
	// Dep is the deployment the event belongs to.
	Dep string
	// Tags are the request's free-form tags ("intent=billing", "vip").
	Tags []string
	// Fields are the event's measurements and dimensions.
	Fields map[string]any
}

// Flat renders the event as the flat map its JSONL line encodes — the
// shape the sliceql engine evaluates predicates against. Reserved keys
// win over same-named fields.
func (e Event) Flat() map[string]any {
	m := make(map[string]any, len(e.Fields)+4)
	for k, v := range e.Fields {
		m[k] = v
	}
	m["ts"] = e.TS.UnixMilli()
	m["stream"] = e.Stream
	if e.Dep != "" {
		m["dep"] = e.Dep
	}
	if len(e.Tags) > 0 {
		m["tags"] = e.Tags
	}
	return m
}

// Options tunes a Logger. The zero value uses the defaults noted on each
// field.
type Options struct {
	// RotateBytes is the per-file size threshold that starts a new
	// sequence file (default 4 MiB).
	RotateBytes int64
	// MaxFiles bounds how many files one stream keeps, active included
	// (default 8); the oldest are deleted past it. Retention is
	// therefore RotateBytes*MaxFiles bytes per stream — see MaxAge for
	// the time bound.
	MaxFiles int
	// MaxAge, when positive, additionally deletes rotated (non-active)
	// segments whose modification time is older than the bound. Applied
	// at every rotation and flush barrier. Zero keeps count-only
	// retention.
	MaxAge time.Duration
	// Compress gzip-compresses a segment when it is rotated out of
	// active duty (<stream>-<seq>.jsonl.gz, written atomically). The
	// query side scans compressed and plain segments transparently.
	Compress bool
	// BufferDepth is the pending-event queue capacity shared by all
	// streams (default 1024); events past it are dropped and counted.
	BufferDepth int
	// Now is the clock used to stamp events (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.RotateBytes <= 0 {
		o.RotateBytes = 4 << 20
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = 8
	}
	if o.BufferDepth <= 0 {
		o.BufferDepth = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// StreamStats is one stream's counter snapshot.
type StreamStats struct {
	// Emitted counts events accepted onto the queue.
	Emitted int64 `json:"emitted"`
	// Written counts lines durably appended to the stream's files.
	Written int64 `json:"written"`
	// Dropped counts events discarded because the queue was full (or the
	// logger was closed) — the price of never blocking the serve path.
	Dropped int64 `json:"dropped,omitempty"`
	// WriteErrors counts lines lost to disk errors (the writer logs on,
	// it never wedges — telemetry is not state).
	WriteErrors int64 `json:"write_errors,omitempty"`
	// Rotations counts file rollovers.
	Rotations int64 `json:"rotations,omitempty"`
}

// counters is the atomic backing of StreamStats, shared between the
// emitting goroutines and the writer.
type counters struct {
	emitted, written, dropped, writeErrors, rotations atomic.Int64
}

// stream is the writer-goroutine-owned file state of one stream.
type stream struct {
	name  string
	f     *os.File
	seq   int
	size  int64
	files []string // live file names, oldest first (includes active)
}

// Logger is the asynchronous JSONL telemetry writer. Safe for concurrent
// use; Emit is wait-free with respect to the disk.
type Logger struct {
	dir string
	opt Options

	ch      chan Event
	flushCh chan chan struct{}
	stop    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
	stopOne sync.Once

	streams map[string]*stream // writer-goroutine-owned
	ctrMu   sync.Mutex
	ctrs    map[string]*counters
}

// New opens (creating if needed) a telemetry logger rooted at dir and
// starts its writer goroutine. Existing stream files are continued —
// the next line appends after the last intact one; a torn final line
// left by a crash is truncated away first.
func New(dir string, opt Options) (*Logger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	opt = opt.withDefaults()
	l := &Logger{
		dir:     dir,
		opt:     opt,
		ch:      make(chan Event, opt.BufferDepth),
		flushCh: make(chan chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		streams: map[string]*stream{},
		ctrs:    map[string]*counters{},
	}
	go l.run()
	return l, nil
}

// Dir returns the directory the logger writes under — the root a
// sliceql DirSource (or POST /v1/query) reads from.
func (l *Logger) Dir() string { return l.dir }

// counter returns (creating if needed) the named stream's counters.
func (l *Logger) counter(stream string) *counters {
	l.ctrMu.Lock()
	defer l.ctrMu.Unlock()
	c, ok := l.ctrs[stream]
	if !ok {
		c = &counters{}
		l.ctrs[stream] = c
	}
	return c
}

// validStream reports whether name is a well-formed stream name.
func validStream(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Emit queues one event for the background writer. It never blocks: a
// full queue (or a closed logger) drops the event and counts the drop.
// A zero TS is stamped with the logger's clock here, at emission.
func (l *Logger) Emit(ev Event) {
	if !validStream(ev.Stream) {
		l.counter("invalid").dropped.Add(1)
		return
	}
	c := l.counter(ev.Stream)
	if l.closed.Load() {
		c.dropped.Add(1)
		return
	}
	if ev.TS.IsZero() {
		ev.TS = l.opt.Now()
	}
	select {
	case l.ch <- ev:
		c.emitted.Add(1)
	default:
		c.dropped.Add(1)
	}
}

// Flush blocks until every event queued before the call is written and
// the active files are synced — for tests and for read-your-writes
// queries; the serve path never calls it. A closed logger flushes as a
// no-op.
func (l *Logger) Flush() {
	ack := make(chan struct{})
	select {
	case l.flushCh <- ack:
		<-ack
	case <-l.done:
	}
}

// Close drains the queue, syncs and closes every stream file, and stops
// the writer. Emit calls after Close drop (and count). Safe to call
// more than once.
func (l *Logger) Close() {
	l.closed.Store(true)
	l.stopOne.Do(func() { close(l.stop) })
	<-l.done
}

// Stats snapshots every stream's counters.
func (l *Logger) Stats() map[string]StreamStats {
	l.ctrMu.Lock()
	defer l.ctrMu.Unlock()
	out := make(map[string]StreamStats, len(l.ctrs))
	for name, c := range l.ctrs {
		out[name] = StreamStats{
			Emitted:     c.emitted.Load(),
			Written:     c.written.Load(),
			Dropped:     c.dropped.Load(),
			WriteErrors: c.writeErrors.Load(),
			Rotations:   c.rotations.Load(),
		}
	}
	return out
}

// run is the writer goroutine: drain events, serve flush barriers, and
// on stop drain what is queued before closing the files.
func (l *Logger) run() {
	defer close(l.done)
	for {
		select {
		case ev := <-l.ch:
			l.write(ev)
		case ack := <-l.flushCh:
			l.drain()
			l.syncAll()
			close(ack)
		case <-l.stop:
			l.drain()
			l.closeAll()
			return
		}
	}
}

// drain writes everything currently queued without blocking for more.
func (l *Logger) drain() {
	for {
		select {
		case ev := <-l.ch:
			l.write(ev)
		default:
			return
		}
	}
}

// write appends one event line to its stream, rotating first when the
// active file is full. Disk failures are counted and skipped — the
// writer never wedges.
func (l *Logger) write(ev Event) {
	c := l.counter(ev.Stream)
	s, err := l.openStream(ev.Stream)
	if err != nil {
		c.writeErrors.Add(1)
		return
	}
	body, err := json.Marshal(ev.Flat())
	if err != nil {
		c.writeErrors.Add(1)
		return
	}
	line := append(body, '\n')
	if s.size > 0 && s.size+int64(len(line)) > l.opt.RotateBytes {
		if err := l.rotate(s); err != nil {
			c.writeErrors.Add(1)
			return
		}
		c.rotations.Add(1)
	}
	if err := appendLine(s, ev.Stream, line); err != nil {
		c.writeErrors.Add(1)
		return
	}
	s.size += int64(len(line))
	c.written.Add(1)
}

// appendLine writes one line to the stream's active file. The
// faultinject site "telemetry.append.<stream>" injects disk errors and
// torn line writes — the torn case leaves exactly the partial tail a
// crash mid-append leaves, which reopening must truncate and queries
// must isolate.
func appendLine(s *stream, name string, line []byte) error {
	if keep, f := faultinject.Torn("telemetry.append." + name); f != nil {
		if f.Kind == faultinject.KindTorn {
			if keep > len(line) {
				keep = len(line)
			}
			_, _ = s.f.Write(line[:keep])
			_ = s.f.Sync()
			return f.Error()
		}
		return f.Error()
	}
	_, err := s.f.Write(line)
	return err
}

// streamFilePrefix/suffix frame the on-disk names: <stream>-<seq>.jsonl,
// plus a .gz suffix once a rotated segment is compressed.
const (
	streamSuffix = ".jsonl"
	gzSuffix     = ".gz"
)

// fileName renders one stream file name; the zero-padded sequence makes
// lexicographic order chronological.
func fileName(stream string, seq int) string {
	return fmt.Sprintf("%s-%08d%s", stream, seq, streamSuffix)
}

// StreamFiles lists the live file names of one stream under dir, oldest
// first — the scan order the query engine uses. Compressed (.jsonl.gz)
// and plain segments are listed alike; when both forms of one sequence
// exist (a crash between compress-rename and removing the original) the
// compressed one wins — it was renamed into place whole, so the two
// hold identical lines.
func StreamFiles(dir, stream string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	prefix := stream + "-"
	bySeq := map[int]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) {
			continue
		}
		if !strings.HasSuffix(name, streamSuffix) && !strings.HasSuffix(name, streamSuffix+gzSuffix) {
			continue
		}
		seq, err := parseSeq(name, stream)
		if err != nil {
			continue
		}
		if prev, ok := bySeq[seq]; !ok || strings.HasSuffix(name, gzSuffix) && !strings.HasSuffix(prev, gzSuffix) {
			bySeq[seq] = name
		}
	}
	seqs := make([]int, 0, len(bySeq))
	for seq := range bySeq {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	names := make([]string, len(seqs))
	for i, seq := range seqs {
		names[i] = bySeq[seq]
	}
	return names, nil
}

// parseSeq extracts the sequence number from a stream file name (plain
// or compressed).
func parseSeq(name, stream string) (int, error) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, stream+"-"), gzSuffix)
	mid = strings.TrimSuffix(mid, streamSuffix)
	var seq int
	if _, err := fmt.Sscanf(mid, "%d", &seq); err != nil || len(mid) != 8 {
		return 0, fmt.Errorf("telemetry: not a stream file: %s", name)
	}
	return seq, nil
}

// openStream returns (opening or creating as needed) the stream's
// active file, continuing the highest existing sequence and truncating
// a torn final line so the next append starts on a clean line.
func (l *Logger) openStream(name string) (*stream, error) {
	if s, ok := l.streams[name]; ok {
		return s, nil
	}
	files, err := StreamFiles(l.dir, name)
	if err != nil {
		return nil, err
	}
	s := &stream{name: name, seq: 1, files: files}
	if n := len(files); n > 0 {
		if s.seq, err = parseSeq(files[n-1], name); err != nil {
			return nil, err
		}
		if strings.HasSuffix(files[n-1], gzSuffix) {
			// Every existing segment is compressed (closed); appending
			// into a .gz is impossible, so start the next sequence.
			s.seq++
			s.files = append(s.files, fileName(name, s.seq))
		}
	} else {
		s.files = []string{fileName(name, s.seq)}
	}
	path := filepath.Join(l.dir, fileName(name, s.seq))
	size, err := truncateTornTail(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s.f, s.size = f, size
	l.streams[name] = s
	return s, nil
}

// truncateTornTail drops a partial final line (no trailing newline) left
// by a crash mid-append, returning the resulting file size. A missing
// file is size 0.
func truncateTornTail(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("telemetry: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return int64(len(data)), nil
	}
	keep := int64(bytes.LastIndexByte(data, '\n') + 1)
	if err := os.Truncate(path, keep); err != nil {
		return 0, fmt.Errorf("telemetry: truncate torn tail: %w", err)
	}
	return keep, nil
}

// rotate closes the active file, opens the next sequence, and applies
// retention (count and age bounds) plus optional compression of the
// segment that just went cold.
func (l *Logger) rotate(s *stream) error {
	_ = s.f.Sync()
	_ = s.f.Close()
	closed := fileName(s.name, s.seq)
	s.seq++
	path := filepath.Join(l.dir, fileName(s.name, s.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		delete(l.streams, s.name) // reopen from scratch next write
		return fmt.Errorf("telemetry: rotate: %w", err)
	}
	s.f, s.size = f, 0
	if l.opt.Compress {
		if gz, err := compressSegment(l.dir, closed); err == nil {
			s.files[len(s.files)-1] = gz
		}
		// On failure the plain segment stays — still scannable.
	}
	s.files = append(s.files, fileName(s.name, s.seq))
	for len(s.files) > l.opt.MaxFiles {
		_ = os.Remove(filepath.Join(l.dir, s.files[0]))
		s.files = s.files[1:]
	}
	l.purgeAged(s)
	return nil
}

// compressSegment gzips one rotated segment in place: the .gz is
// written whole to a temp file and renamed next to the original, which
// is then removed. A crash between rename and remove leaves both forms;
// StreamFiles dedupes in the compressed one's favour.
func compressSegment(dir, name string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return "", err
	}
	if err := zw.Close(); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-gz-*")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	gzName := name + gzSuffix
	if err := os.Rename(tmpName, filepath.Join(dir, gzName)); err != nil {
		return "", err
	}
	_ = os.Remove(filepath.Join(dir, name))
	return gzName, nil
}

// purgeAged deletes rotated (non-active) segments older than MaxAge,
// judged by file modification time against the logger's clock.
func (l *Logger) purgeAged(s *stream) {
	if l.opt.MaxAge <= 0 {
		return
	}
	cutoff := l.opt.Now().Add(-l.opt.MaxAge)
	for len(s.files) > 1 { // never the active segment
		path := filepath.Join(l.dir, s.files[0])
		info, err := os.Stat(path)
		if err != nil {
			if os.IsNotExist(err) {
				s.files = s.files[1:]
				continue
			}
			return
		}
		if !info.ModTime().Before(cutoff) {
			return // oldest-first: everything after is younger still
		}
		_ = os.Remove(path)
		s.files = s.files[1:]
	}
}

// syncAll fsyncs every open stream file (flush barrier) and applies the
// age bound, so retention advances even on a stream too quiet to
// rotate.
func (l *Logger) syncAll() {
	for _, s := range l.streams {
		if s.f != nil {
			_ = s.f.Sync()
		}
		l.purgeAged(s)
	}
}

// closeAll syncs and closes every stream file.
func (l *Logger) closeAll() {
	for name, s := range l.streams {
		if s.f != nil {
			_ = s.f.Sync()
			_ = s.f.Close()
		}
		delete(l.streams, name)
	}
}
