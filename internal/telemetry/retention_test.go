package telemetry_test

import (
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// readAnyLines reads every line of every live stream file, oldest file
// first, decompressing gzip segments.
func readAnyLines(t *testing.T, dir, stream string) []string {
	t.Helper()
	files, err := telemetry.StreamFiles(dir, stream)
	if err != nil {
		t.Fatalf("StreamFiles: %v", err)
	}
	var lines []string
	for _, name := range files {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		var data []byte
		if strings.HasSuffix(name, ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				t.Fatalf("gzip %s: %v", name, err)
			}
			buf := make([]byte, 1<<20)
			for {
				n, err := zr.Read(buf)
				data = append(data, buf[:n]...)
				if err != nil {
					break
				}
			}
			zr.Close()
		} else {
			data, err = os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		for _, ln := range strings.Split(string(data), "\n") {
			if ln != "" {
				lines = append(lines, ln)
			}
		}
	}
	return lines
}

func TestCompressRotatedSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := telemetry.New(dir, telemetry.Options{RotateBytes: 200, MaxFiles: 64, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 40; i++ {
		l.Emit(telemetry.Event{Stream: "predict", Dep: "d", Fields: map[string]any{"i": i, "pad": strings.Repeat("x", 40)}})
	}
	l.Flush()

	files, err := telemetry.StreamFiles(dir, "predict")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected rotation under a 200-byte threshold, files %v", files)
	}
	// Every rotated (non-active) segment is compressed; only the active
	// segment stays plain.
	for i, name := range files {
		gz := strings.HasSuffix(name, ".gz")
		if i < len(files)-1 && !gz {
			t.Errorf("rotated segment %s not compressed", name)
		}
		if i == len(files)-1 && gz {
			t.Errorf("active segment %s compressed", name)
		}
	}
	// No event lost to compression, and every line still parses.
	lines := readAnyLines(t, dir, "predict")
	if len(lines) != 40 {
		t.Fatalf("%d lines survive, want 40", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("malformed line %q: %v", ln, err)
		}
	}
}

func TestCompressedSequenceContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := telemetry.New(dir, telemetry.Options{RotateBytes: 120, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"pad": strings.Repeat("x", 40), "run": 1}})
	}
	l.Close()
	first, _ := telemetry.StreamFiles(dir, "predict")

	l2, err := telemetry.New(dir, telemetry.Options{RotateBytes: 120, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	l2.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"run": 2}})
	l2.Close()
	second, _ := telemetry.StreamFiles(dir, "predict")

	if len(first) == 0 || len(second) < len(first) {
		t.Fatalf("reopen lost files: %v -> %v", first, second)
	}
	// The reopened logger must not clobber a compressed segment by
	// reusing its sequence number.
	seen := map[string]bool{}
	for _, name := range second {
		base := strings.TrimSuffix(strings.TrimSuffix(name, ".gz"), ".jsonl")
		if seen[base] {
			t.Fatalf("sequence number reused across reopen: %v", second)
		}
		seen[base] = true
	}
}

func TestMaxAgePurgesOldSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := telemetry.New(dir, telemetry.Options{RotateBytes: 200, MaxFiles: 64, MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 40; i++ {
		l.Emit(telemetry.Event{Stream: "predict", Dep: "d", Fields: map[string]any{"i": i, "pad": strings.Repeat("x", 40)}})
	}
	l.Flush()

	files, err := telemetry.StreamFiles(dir, "predict")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected several rotated segments, files %v", files)
	}
	// Backdate everything but the active segment past the retention
	// horizon; the next flush barrier applies the purge.
	old := time.Now().Add(-2 * time.Hour)
	for _, name := range files[:len(files)-1] {
		if err := os.Chtimes(filepath.Join(dir, name), old, old); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()

	after, err := telemetry.StreamFiles(dir, "predict")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 {
		t.Fatalf("%d files survive an expired MaxAge, want only the active segment: %v", len(after), after)
	}
	// The active segment is never purged, however old: the stream must
	// stay writable.
	if after[0] != files[len(files)-1] {
		t.Fatalf("active segment %s purged (survivors %v)", files[len(files)-1], after)
	}
}
