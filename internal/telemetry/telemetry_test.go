package telemetry_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// readLines returns every line of every file of one stream, oldest file
// first.
func readLines(t *testing.T, dir, stream string) []string {
	t.Helper()
	files, err := telemetry.StreamFiles(dir, stream)
	if err != nil {
		t.Fatalf("StreamFiles: %v", err)
	}
	var lines []string
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for _, ln := range strings.Split(string(data), "\n") {
			if ln != "" {
				lines = append(lines, ln)
			}
		}
	}
	return lines
}

func TestEmitWriteRead(t *testing.T) {
	dir := t.TempDir()
	now := time.UnixMilli(1_700_000_000_000)
	l, err := telemetry.New(dir, telemetry.Options{Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	l.Emit(telemetry.Event{
		Stream: telemetry.StreamPredict,
		Dep:    "factoid",
		Tags:   []string{"intent=billing", "vip"},
		Fields: map[string]any{"latency_ms": 3.5, "err": 0},
	})
	l.Flush()

	lines := readLines(t, dir, telemetry.StreamPredict)
	if len(lines) != 1 {
		t.Fatalf("want 1 line, got %d", len(lines))
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if m["stream"] != "predict" || m["dep"] != "factoid" {
		t.Errorf("stream/dep wrong: %v", m)
	}
	if m["ts"] != float64(now.UnixMilli()) {
		t.Errorf("ts = %v, want stamped %d", m["ts"], now.UnixMilli())
	}
	if m["latency_ms"] != 3.5 {
		t.Errorf("latency_ms = %v", m["latency_ms"])
	}
	tags, _ := m["tags"].([]any)
	if len(tags) != 2 || tags[0] != "intent=billing" {
		t.Errorf("tags = %v", m["tags"])
	}

	st := l.Stats()[telemetry.StreamPredict]
	if st.Emitted != 1 || st.Written != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := telemetry.New(dir, telemetry.Options{RotateBytes: 200, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 50; i++ {
		l.Emit(telemetry.Event{Stream: "predict", Dep: "d", Fields: map[string]any{"i": i, "pad": strings.Repeat("x", 40)}})
	}
	l.Flush()

	files, err := telemetry.StreamFiles(dir, "predict")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) > 3 {
		t.Fatalf("retention: %d files live, want 1..3: %v", len(files), files)
	}
	for i := 1; i < len(files); i++ {
		if files[i-1] >= files[i] {
			t.Errorf("files not in order: %v", files)
		}
	}
	st := l.Stats()["predict"]
	if st.Rotations == 0 {
		t.Error("expected rotations under a 200-byte threshold")
	}
	if st.Written != 50 {
		t.Errorf("written = %d, want 50", st.Written)
	}
	// Every surviving line still parses.
	for _, ln := range readLines(t, dir, "predict") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("malformed surviving line %q: %v", ln, err)
		}
	}
}

func TestSequenceContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := telemetry.New(dir, telemetry.Options{RotateBytes: 120})
	for i := 0; i < 10; i++ {
		l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"pad": strings.Repeat("x", 40), "run": 1}})
	}
	l.Close()
	first, _ := telemetry.StreamFiles(dir, "predict")

	l2, _ := telemetry.New(dir, telemetry.Options{RotateBytes: 120})
	l2.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"run": 2}})
	l2.Close()
	second, _ := telemetry.StreamFiles(dir, "predict")

	if len(first) == 0 || len(second) < len(first) {
		t.Fatalf("reopen lost files: %v -> %v", first, second)
	}
	if second[len(second)-1] < first[len(first)-1] {
		t.Errorf("sequence went backwards: %v -> %v", first, second)
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := telemetry.New(dir, telemetry.Options{})
	l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 1}})
	l.Close()

	files, _ := telemetry.StreamFiles(dir, "predict")
	if len(files) != 1 {
		t.Fatalf("want 1 file, got %v", files)
	}
	active := filepath.Join(dir, files[0])
	// Simulate a crash mid-append: a partial line with no newline.
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"i":2,"half`)
	f.Close()

	l2, _ := telemetry.New(dir, telemetry.Options{})
	l2.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 3}})
	l2.Close()

	lines := readLines(t, dir, "predict")
	if len(lines) != 2 {
		t.Fatalf("want 2 intact lines (fragment truncated), got %d: %q", len(lines), lines)
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q not JSON after torn-tail reopen: %v", ln, err)
		}
	}
}

func TestTornFaultInjectionThenRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := faultinject.NewRegistry()
	// The second append is torn after 7 bytes — the partial the logger
	// must truncate when it reopens the stream.
	reg.Arm("telemetry.append.predict", 2, faultinject.Fault{Kind: faultinject.KindTorn, Bytes: 7})
	faultinject.Enable(reg)
	defer faultinject.Disable()

	l, _ := telemetry.New(dir, telemetry.Options{})
	l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 1}})
	l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 2}})
	l.Close()
	st := l.Stats()["predict"]
	if st.WriteErrors != 1 {
		t.Fatalf("torn write not counted: %+v", st)
	}

	faultinject.Disable()
	l2, _ := telemetry.New(dir, telemetry.Options{})
	l2.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 3}})
	l2.Close()

	lines := readLines(t, dir, "predict")
	if len(lines) != 2 {
		t.Fatalf("want 2 intact lines, got %d: %q", len(lines), lines)
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q not JSON: %v", ln, err)
		}
	}
}

func TestWriteErrorsNeverWedgeWriter(t *testing.T) {
	dir := t.TempDir()
	reg := faultinject.NewRegistry()
	reg.ArmEvery("telemetry.append.predict", faultinject.Fault{Kind: faultinject.KindError})
	faultinject.Enable(reg)
	defer faultinject.Disable()

	l, _ := telemetry.New(dir, telemetry.Options{})
	for i := 0; i < 5; i++ {
		l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": i}})
	}
	l.Flush()
	st := l.Stats()["predict"]
	if st.WriteErrors != 5 || st.Written != 0 {
		t.Fatalf("stats = %+v, want 5 write errors, 0 written", st)
	}

	faultinject.Disable()
	l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 99}})
	l.Flush()
	if st := l.Stats()["predict"]; st.Written != 1 {
		t.Fatalf("writer wedged after disk errors: %+v", st)
	}
	l.Close()
}

func TestDropsAfterCloseAndInvalidStream(t *testing.T) {
	dir := t.TempDir()
	l, _ := telemetry.New(dir, telemetry.Options{})
	l.Emit(telemetry.Event{Stream: "Not A Stream!", Fields: map[string]any{"i": 1}})
	if st := l.Stats()["invalid"]; st.Dropped != 1 {
		t.Errorf("invalid-stream drop not counted: %+v", st)
	}
	l.Close()
	l.Emit(telemetry.Event{Stream: "predict", Fields: map[string]any{"i": 1}})
	if st := l.Stats()["predict"]; st.Dropped != 1 {
		t.Errorf("post-close drop not counted: %+v", st)
	}
	l.Close() // idempotent
}

// TestConcurrentEmitFlushStats exercises the emit/flush/stats surface
// from many goroutines with rotation forced on — the race detector is
// the assertion.
func TestConcurrentEmitFlushStats(t *testing.T) {
	dir := t.TempDir()
	l, _ := telemetry.New(dir, telemetry.Options{RotateBytes: 256, MaxFiles: 2, BufferDepth: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Emit(telemetry.Event{Stream: "predict", Dep: "d", Fields: map[string]any{"g": g, "i": i}})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			l.Flush()
			l.Stats()
			telemetry.StreamFiles(dir, "predict")
		}
	}()
	wg.Wait()
	l.Close()
	st := l.Stats()["predict"]
	if st.Emitted+st.Dropped != 800 {
		t.Errorf("emitted %d + dropped %d != 800", st.Emitted, st.Dropped)
	}
	if st.Written != st.Emitted {
		t.Errorf("written %d != emitted %d after Close", st.Written, st.Emitted)
	}
}
