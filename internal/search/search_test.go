package search

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/train"
	"repro/internal/workload"
)

func testResources() *compile.Resources {
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	return &compile.Resources{TokenVocab: workload.Vocabulary(kb), EntityVocab: ents}
}

// smallTuning is a 4-point grid so tests stay fast.
func smallTuning() *schema.Tuning {
	return &schema.Tuning{
		Embeddings: []string{"hash-16"},
		Encoders:   []string{"BOW", "CNN"},
		Hidden:     []int{16},
		QueryAgg:   []string{"mean"},
		EntityAgg:  []string{"mean"},
		LR:         []float64{0.02, 0.005},
		Epochs:     []int{4},
		Dropout:    []float64{0},
		BatchSize:  []int{32},
	}
}

func TestRandomSearchFindsWorkingModel(t *testing.T) {
	ds := workload.StandardDataset(200, 3, 0.2)
	var log bytes.Buffer
	res, m, err := Run(ds, Config{
		Tuning:    smallTuning(),
		Budget:    4,
		Seed:      7,
		Resources: testResources(),
		Log:       &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 {
		t.Fatalf("trials %d", len(res.Trials))
	}
	if res.Best.DevScore <= 0.3 {
		t.Fatalf("best dev score %.3f too low", res.Best.DevScore)
	}
	for _, tr := range res.Trials {
		if tr.Err != nil {
			t.Fatalf("trial %d failed: %v", tr.Index, tr.Err)
		}
	}
	if m == nil {
		t.Fatalf("no model returned")
	}
	// Best trial is the max.
	for _, tr := range res.Trials {
		if tr.DevScore > res.Best.DevScore {
			t.Fatalf("best is not max")
		}
	}
	if !strings.Contains(log.String(), "trial") {
		t.Fatalf("no log output")
	}
	// The returned model predicts.
	outs, err := m.Predict(ds.WithTag(record.TagTest)[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("predict wrong")
	}
}

func TestSearchDeterministic(t *testing.T) {
	run := func() []float64 {
		ds := workload.StandardDataset(120, 5, 0.2)
		res, _, err := Run(ds, Config{
			Tuning:    smallTuning(),
			Budget:    3,
			Seed:      11,
			Parallel:  2, // parallelism must not affect results
			Resources: testResources(),
		})
		if err != nil {
			t.Fatal(err)
		}
		scores := make([]float64, len(res.Trials))
		for i, tr := range res.Trials {
			scores[i] = tr.DevScore
		}
		return scores
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("trial counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("search not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSuccessiveHalving(t *testing.T) {
	ds := workload.StandardDataset(150, 13, 0.2)
	res, m, err := Run(ds, Config{
		Tuning:    smallTuning(),
		Budget:    4,
		Halving:   true,
		Seed:      17,
		Resources: testResources(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || res.Best.DevScore <= 0 {
		t.Fatalf("halving produced no model")
	}
	if len(res.Trials) != 4 {
		t.Fatalf("halving lost trials: %d", len(res.Trials))
	}
}

func TestBudgetCappedAtGrid(t *testing.T) {
	ds := workload.StandardDataset(80, 19, 0.2)
	tun := smallTuning()
	res, _, err := Run(ds, Config{
		Tuning:    tun,
		Budget:    100, // grid only has 4 points
		Seed:      23,
		Resources: testResources(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != tun.Size() {
		t.Fatalf("budget not capped: %d trials", len(res.Trials))
	}
	// No duplicate choices.
	seen := map[string]bool{}
	for _, tr := range res.Trials {
		key := tr.Choice.String()
		if seen[key] {
			t.Fatalf("duplicate choice sampled: %s", key)
		}
		seen[key] = true
	}
}

func TestSearchSharedSupervision(t *testing.T) {
	// Search must work when training config requests rebalancing and a
	// specific estimator (the supervision path is computed once).
	ds := workload.StandardDataset(100, 29, 0.2)
	_, m, err := Run(ds, Config{
		Tuning:    smallTuning(),
		Budget:    2,
		Seed:      31,
		Resources: testResources(),
		Train:     train.Config{Rebalance: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatalf("no model")
	}
}
