// Package search implements Overton's coarse-grained model search: random
// search (optionally with successive halving) over the named blocks of a
// tuning spec — encoder family, embedding source, width, aggregation,
// learning rate — never over fine-grained connections (the paper explicitly
// rejects NAS-style search as low-value for this workload; Section 4).
//
// The search trains candidate models on the combined supervision (computed
// once, shared across trials) and selects on the dev tag's mean primary
// metric. Trials run on a bounded worker pool and are deterministic given
// the seed.
package search

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/compile"
	"repro/internal/labelmodel"
	"repro/internal/model"
	"repro/internal/record"
	"repro/internal/schema"
	"repro/internal/train"
)

// Config controls a search run.
type Config struct {
	Tuning *schema.Tuning
	// Budget is the number of configurations to sample (default 8; capped
	// at the grid size).
	Budget int
	// Halving enables successive halving: trials first run at a quarter of
	// their epoch budget, the top half advance to half, the final
	// contender retrains at full budget.
	Halving bool
	// Parallel bounds concurrent trials (default 1; deterministic
	// regardless of value).
	Parallel int
	Seed     int64
	// Slices to compile slice capacity for.
	Slices []string
	// Resources for model construction.
	Resources *compile.Resources
	// Train carries the supervision/loss configuration shared by trials.
	Train train.Config
	// Log, when non-nil, receives one line per finished trial.
	Log io.Writer
}

// Trial is one evaluated configuration.
type Trial struct {
	Index    int
	Choice   schema.Choice
	DevScore float64
	Err      error
}

// Result summarises a search.
type Result struct {
	Best   Trial
	Trials []Trial
}

// Run searches and returns the result plus the best model retrained at its
// full epoch budget.
func Run(ds *record.Dataset, cfg Config) (*Result, *model.Model, error) {
	if cfg.Tuning == nil {
		cfg.Tuning = schema.DefaultTuning()
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 8
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	gridSize := cfg.Tuning.Size()
	if cfg.Budget > gridSize {
		cfg.Budget = gridSize
	}

	// Combine supervision once; identical for every trial.
	targets, err := train.CombineSupervision(ds, cfg.Train)
	if err != nil {
		return nil, nil, err
	}

	choices := sampleChoices(cfg.Tuning, cfg.Budget, cfg.Seed)
	var trials []Trial
	if cfg.Halving {
		trials = runHalving(ds, targets, choices, cfg)
	} else {
		trials = runAll(ds, targets, choices, cfg, 1.0)
	}
	sort.Slice(trials, func(i, j int) bool { return trials[i].Index < trials[j].Index })

	res := &Result{Trials: trials, Best: Trial{DevScore: -1, Index: -1}}
	for _, tr := range trials {
		if tr.Err == nil && tr.DevScore > res.Best.DevScore {
			res.Best = tr
		}
	}
	if res.Best.Index < 0 {
		return res, nil, fmt.Errorf("search: every trial failed")
	}

	// Retrain the winner at full budget for the final artifact.
	m, _, err := trainOne(ds, targets, res.Best.Choice, cfg, 1.0, res.Best.Index)
	if err != nil {
		return res, nil, err
	}
	return res, m, nil
}

// sampleChoices picks budget distinct grid points deterministically.
func sampleChoices(t *schema.Tuning, budget int, seed int64) []schema.Choice {
	rng := rand.New(rand.NewSource(seed))
	size := t.Size()
	perm := rng.Perm(size)
	choices := make([]schema.Choice, 0, budget)
	for _, gi := range perm[:budget] {
		choices = append(choices, t.At(gi))
	}
	return choices
}

// runAll trains every choice at epochFrac of its epoch budget.
func runAll(ds *record.Dataset, targets map[string]*labelmodel.TaskTargets, choices []schema.Choice, cfg Config, epochFrac float64) []Trial {
	trials := make([]Trial, len(choices))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallel)
	var mu sync.Mutex
	for i, c := range choices {
		wg.Add(1)
		go func(i int, c schema.Choice) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, score, err := trainOne(ds, targets, c, cfg, epochFrac, i)
			trials[i] = Trial{Index: i, Choice: c, DevScore: score, Err: err}
			if cfg.Log != nil {
				mu.Lock()
				if err != nil {
					fmt.Fprintf(cfg.Log, "trial %2d  FAILED %v  (%s)\n", i, err, c)
				} else {
					fmt.Fprintf(cfg.Log, "trial %2d  dev %.4f  (%s)\n", i, score, c)
				}
				mu.Unlock()
			}
		}(i, c)
	}
	wg.Wait()
	return trials
}

// runHalving runs successive halving rounds at increasing epoch fractions.
func runHalving(ds *record.Dataset, targets map[string]*labelmodel.TaskTargets, choices []schema.Choice, cfg Config) []Trial {
	type entry struct {
		idx    int
		choice schema.Choice
	}
	alive := make([]entry, len(choices))
	for i, c := range choices {
		alive[i] = entry{idx: i, choice: c}
	}
	results := make(map[int]Trial, len(choices))
	frac := 0.25
	for len(alive) > 1 {
		cs := make([]schema.Choice, len(alive))
		for i, e := range alive {
			cs[i] = e.choice
		}
		trials := runAll(ds, targets, cs, cfg, frac)
		// Map back to original indices and keep the top half.
		type scored struct {
			e     entry
			t     Trial
			score float64
		}
		var ss []scored
		for i, tr := range trials {
			tr.Index = alive[i].idx
			tr.Choice = alive[i].choice
			results[alive[i].idx] = tr
			score := tr.DevScore
			if tr.Err != nil {
				score = -1
			}
			ss = append(ss, scored{e: alive[i], t: tr, score: score})
		}
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].score != ss[j].score {
				return ss[i].score > ss[j].score
			}
			return ss[i].e.idx < ss[j].e.idx
		})
		keep := (len(ss) + 1) / 2
		alive = alive[:0]
		for _, s := range ss[:keep] {
			if s.t.Err == nil {
				alive = append(alive, s.e)
			}
		}
		if frac >= 1.0 {
			break
		}
		frac *= 2
		if frac > 1 {
			frac = 1
		}
	}
	out := make([]Trial, 0, len(results))
	for _, tr := range results {
		out = append(out, tr)
	}
	return out
}

// trainOne builds and trains one candidate, returning the model and its
// dev score.
func trainOne(ds *record.Dataset, targets map[string]*labelmodel.TaskTargets, choice schema.Choice, cfg Config, epochFrac float64, trialIdx int) (*model.Model, float64, error) {
	c := choice
	if epochFrac < 1 {
		c.Epochs = int(float64(c.Epochs) * epochFrac)
		if c.Epochs < 1 {
			c.Epochs = 1
		}
	}
	prog, err := compile.Plan(ds.Schema, c, cfg.Slices)
	if err != nil {
		return nil, -1, err
	}
	m, err := model.New(prog, cfg.Resources, cfg.Seed+int64(trialIdx)*1000)
	if err != nil {
		return nil, -1, err
	}
	tcfg := cfg.Train
	tcfg.Seed = cfg.Seed + int64(trialIdx)*1000 + 1
	rep, err := train.RunWithTargets(m, ds, targets, tcfg)
	if err != nil {
		return nil, -1, err
	}
	return m, rep.BestDev, nil
}
