package serve

import (
	"context"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestDrainOrdering pins the graceful-shutdown contract the cluster
// tier leans on: readiness flips to 503 before the listener drains, so
// routers pull the replica out of rotation while its in-flight requests
// finish; every in-flight request completes (200) before Shutdown
// returns; and no new connection is admitted once the drain completes.
func TestDrainOrdering(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	sv := New(freshModel(t), "factoid", 1)
	defer sv.Close()
	srv := &http.Server{Handler: sv.Handler()}
	go func() { _ = srv.Serve(ln) }()

	// Slow every predict down so requests are reliably in flight when the
	// drain begins.
	faultinject.Enable(faultinject.NewRegistry().ArmEvery(
		"deploy.predict.factoid", faultinject.Fault{Kind: faultinject.KindDelay, Delay: 300 * time.Millisecond}))
	defer faultinject.Disable()

	base := "http://" + addr
	const inflight = 3
	type outcome struct {
		status int
		done   time.Time
	}
	results := make([]outcome, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/models/factoid/predict", "application/json", strings.NewReader(goodBody))
			if err != nil {
				return // status stays 0: the drain cut us off
			}
			resp.Body.Close()
			results[i] = outcome{status: resp.StatusCode, done: time.Now()}
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // requests are inside the 300ms delay now

	// Step 1 of the SIGTERM sequence: stop admitting (readiness down,
	// liveness up) while the listener still serves.
	sv.SetReady(false)
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz %d after SetReady(false), want 503", resp.StatusCode)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz %d while draining — a draining process is alive", resp.StatusCode)
	}

	// Step 2: drain. Shutdown must wait for the in-flight predicts.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	shutdownReturned := time.Now()
	wg.Wait()
	for i, res := range results {
		if res.status != http.StatusOK {
			t.Fatalf("in-flight request %d got status %d, want 200 (drain must not cut running work)", i, res.status)
		}
		if res.done.After(shutdownReturned) {
			t.Fatalf("in-flight request %d completed after Shutdown returned", i)
		}
	}

	// Step 3: the drained listener admits nothing new.
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("new connection accepted after Shutdown returned")
	}
}
