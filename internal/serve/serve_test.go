package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/model"
	"repro/internal/schema"
	"repro/internal/workload"
)

func freshModel(t testing.TB) *model.Model {
	t.Helper()
	choice := schema.Choice{
		Embedding: "hash-8", Encoder: "BOW", Hidden: 8,
		QueryAgg: "mean", EntityAgg: "mean",
		LR: 0.01, Epochs: 1, Dropout: 0, BatchSize: 8,
	}
	prog, err := compile.Plan(workload.FactoidSchema(), choice, nil)
	if err != nil {
		t.Fatal(err)
	}
	kb := workload.DefaultKB()
	var ents []string
	for _, e := range kb.Entities {
		ents = append(ents, e.ID)
	}
	m, err := model.New(prog, &compile.Resources{
		TokenVocab:  workload.Vocabulary(kb),
		EntityVocab: ents,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const goodBody = `{
  "payloads": {
    "tokens": ["how", "tall", "is", "obama"],
    "query": "how tall is obama",
    "entities": {"0": {"id": "Barack_Obama", "range": [3, 4]}}
  }
}`

func TestPredictEndpoint(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(goodBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr struct {
		Model   string                     `json:"model"`
		Version int                        `json:"version"`
		Outputs map[string]json.RawMessage `json:"outputs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "factoid" || pr.Version != 1 {
		t.Fatalf("provenance wrong: %+v", pr)
	}
	for _, task := range []string{"POS", "EntityType", "Intent", "IntentArg"} {
		if _, ok := pr.Outputs[task]; !ok {
			t.Fatalf("missing %s in outputs", task)
		}
	}
}

func TestPredictRejectsBadInputs(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"not json", "{{{"},
		{"unknown payload", `{"payloads": {"bogus": "x"}}`},
		{"bad shape", `{"payloads": {"tokens": "not-an-array"}}`},
		{"bad span", `{"payloads": {"tokens": ["a"], "entities": {"0": {"id": "X", "range": [0, 5]}}}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// GET not allowed.
	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: %d", resp.StatusCode)
	}
}

func TestSignatureEndpoint(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/signature")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sig schema.Signature
	if err := json.NewDecoder(resp.Body).Decode(&sig); err != nil {
		t.Fatal(err)
	}
	if len(sig.Inputs) != 3 || len(sig.Outputs) != 4 {
		t.Fatalf("signature wrong: %d/%d", len(sig.Inputs), len(sig.Outputs))
	}
}

func TestHealthAndStats(t *testing.T) {
	srv := New(freshModel(t), "factoid", 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	// Generate traffic then read stats.
	for i := 0; i < 5; i++ {
		r, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(goodBody))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	r, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 6 || st.Errors != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.P50Millis <= 0 || st.P99Millis < st.P50Millis {
		t.Fatalf("latency percentiles wrong: %+v", st)
	}
}

func TestSwapModel(t *testing.T) {
	m1 := freshModel(t)
	srv := New(m1, "factoid", 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m2 := freshModel(t)
	srv.Swap(m2, 2)
	resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(goodBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 2 {
		t.Fatalf("swap not visible: version %d", pr.Version)
	}
}
